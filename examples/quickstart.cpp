/**
 * @file
 * Quickstart: assemble a small SRISC program from text, run it on the VM
 * with the MICA profiler attached, and print its microarchitecture-
 * independent characteristics — the library's core loop in ~60 lines.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 *
 * With `--trace out/quickstart_trace.json` the quickstart additionally
 * runs the full experiment pipeline at a tiny operating point under the
 * tracing layer and exports a Chrome trace-event JSON (open it in
 * chrome://tracing or https://ui.perfetto.dev) plus a metrics summary —
 * see docs/OBSERVABILITY.md.
 */

#include <cstdio>
#include <string>

#include "asm/assembler.hh"
#include "core/pipeline.hh"
#include "mica/metrics.hh"
#include "mica/profiler.hh"
#include "obs/trace.hh"
#include "vm/cpu.hh"

namespace {

/** Traced mini-experiment: every pipeline stage plus the GA in one trace. */
int
runTraced(const std::string &trace_path)
{
    using namespace mica;

    // Own the scope here (instead of config.trace_path) so the GA stage,
    // which runs after runFullExperiment returns, lands in the same trace.
    obs::TraceScope trace(trace_path);

    core::ExperimentConfig cfg;
    cfg.interval_instructions = 2000;
    cfg.interval_scale = 0.02;
    cfg.samples_per_benchmark = 20;
    cfg.kmeans_k = 24;
    cfg.kmeans_restarts = 2;
    cfg.num_prominent = 12;
    cfg.cache_dir.clear(); // always run live so the trace has real work
    // Explicit thread count (not 0): even on a single-core host this
    // routes work through the shared pool, so the trace demonstrates the
    // pool.task spans and per-worker metrics. Results are identical for
    // any value — see docs/PERFORMANCE.md.
    cfg.threads = 4;

    std::printf("running the traced mini-pipeline...\n");
    const auto out = core::runFullExperiment(cfg);
    const auto keys = core::selectKeyCharacteristics(out, 4);

    std::printf("characterized %zu intervals, %zu PCs, %zu clusters, "
                "%zu key characteristics (fitness %.3f)\n",
                out.characterization.intervals.size(),
                out.analysis.pca_components,
                out.analysis.clustering.centers.rows(),
                keys.selected.size(), keys.fitness);
    std::printf("trace: %s\nmetrics: %s\n", trace_path.c_str(),
                obs::TraceScope::metricsPathFor(trace_path).c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mica;

    if (argc == 3 && std::string(argv[1]) == "--trace")
        return runTraced(argv[2]);

    // A toy workload with two phases: a memory-streaming loop and an
    // ALU-only loop, alternating forever.
    const char *source = R"(
        .data
        buf:    .zero 32768
        .text
    top:
        ; phase 1: stream through the buffer
        addi x5, x0, buf
        addi x6, x0, 2048
    stream:
        ld   x7, 0(x5)
        add  x8, x8, x7
        sd   x8, 8(x5)
        addi x5, x5, 16
        addi x6, x6, -1
        bne  x6, x0, stream
        ; phase 2: integer arithmetic only
        addi x6, x0, 4096
    alu:
        add  x8, x8, x7
        xor  x7, x7, x8
        slli x9, x8, 3
        addi x6, x6, -1
        bne  x6, x0, alu
        jal  x0, top
    )";

    // 1. Assemble.
    const isa::Program program = assembler::assemble(source, "quickstart");
    std::printf("assembled %zu instructions, %zu data bytes\n\n",
                program.code.size(), program.data.size());

    // 2. Run under the profiler: 10K-instruction intervals, 80K budget.
    vm::Cpu cpu(program);
    profiler::MicaProfiler profiler(10000);
    const vm::RunResult result = cpu.run(80000, &profiler);
    std::printf("executed %llu instructions -> %zu intervals\n\n",
                static_cast<unsigned long long>(result.executed),
                profiler.intervals().size());

    // 3. Inspect a few characteristics per interval: the two phases are
    // plainly visible in the time-varying metrics.
    namespace m = metrics::midx;
    std::printf("%-9s %9s %9s %9s %9s %9s\n", "interval", "mem_read",
                "mem_write", "ilp_w64", "branches", "data64B");
    for (std::size_t i = 0; i < profiler.intervals().size(); ++i) {
        const auto &v = profiler.intervals()[i];
        std::printf("%-9zu %9.3f %9.3f %9.2f %9.3f %9.0f\n", i,
                    v[m::MixMemRead], v[m::MixMemWrite], v[m::Ilp64],
                    v[m::MixCondBranch], v[m::DataFootprint64B]);
    }

    std::printf("\nthe aggregate view would blur these two phases into "
                "one average — the paper's core argument.\n");
    return 0;
}
