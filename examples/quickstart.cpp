/**
 * @file
 * Quickstart: assemble a small SRISC program from text, run it on the VM
 * with the MICA profiler attached, and print its microarchitecture-
 * independent characteristics — the library's core loop in ~60 lines.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 *
 * With `--trace out/quickstart_trace.json` the quickstart additionally
 * runs the full experiment pipeline at a tiny operating point under the
 * tracing layer and exports a Chrome trace-event JSON (open it in
 * chrome://tracing or https://ui.perfetto.dev) plus a metrics summary —
 * see docs/OBSERVABILITY.md.
 *
 * Model workflow (docs/MODEL.md):
 *   quickstart --save-model out/phase_model.bin    freeze the mini space
 *   quickstart --check-model out/phase_model.bin   reload + bitwise check
 *   quickstart --model out/phase_model.bin         place the toy program
 *                                                  into the frozen space
 *                                                  (no PCA/k-means rerun)
 *
 * Both model-consuming forms accept the shared --copy/--mmap loader
 * flags (model_cli.hh); results are bit-identical on either loader.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "asm/assembler.hh"
#include "core/model_export.hh"
#include "core/pipeline.hh"
#include "mica/metrics.hh"
#include "mica/profiler.hh"
#include "model/reader.hh"
#include "model_cli.hh"
#include "obs/trace.hh"
#include "vm/cpu.hh"

namespace {

/**
 * A toy workload with two phases: a memory-streaming loop and an ALU-only
 * loop, alternating forever.
 */
const char *kToySource = R"(
    .data
    buf:    .zero 32768
    .text
top:
    ; phase 1: stream through the buffer
    addi x5, x0, buf
    addi x6, x0, 2048
stream:
    ld   x7, 0(x5)
    add  x8, x8, x7
    sd   x8, 8(x5)
    addi x5, x5, 16
    addi x6, x6, -1
    bne  x6, x0, stream
    ; phase 2: integer arithmetic only
    addi x6, x0, 4096
alu:
    add  x8, x8, x7
    xor  x7, x7, x8
    slli x9, x8, 3
    addi x6, x6, -1
    bne  x6, x0, alu
    jal  x0, top
)";

/**
 * The mini operating point shared by --trace / --save-model /
 * --check-model. The latter two must agree exactly: the check compares
 * the loaded model's analysis key against this config before reprojecting.
 */
mica::core::ExperimentConfig
miniConfig()
{
    mica::core::ExperimentConfig cfg;
    cfg.interval_instructions = 2000;
    cfg.interval_scale = 0.02;
    cfg.samples_per_benchmark = 20;
    cfg.kmeans_k = 24;
    cfg.kmeans_restarts = 2;
    cfg.num_prominent = 12;
    // Explicit thread count (not 0): even on a single-core host this
    // routes work through the shared pool. Results are identical for any
    // value — see docs/PERFORMANCE.md.
    cfg.threads = 4;
    return cfg;
}

/** Traced mini-experiment: every pipeline stage plus the GA in one trace. */
int
runTraced(const std::string &trace_path)
{
    using namespace mica;

    // Own the scope here (instead of config.trace_path) so the GA stage,
    // which runs after runFullExperiment returns, lands in the same trace.
    obs::TraceScope trace(trace_path);

    core::ExperimentConfig cfg = miniConfig();
    cfg.cache_dir.clear(); // always run live so the trace has real work

    std::printf("running the traced mini-pipeline...\n");
    const auto out = core::runFullExperiment(cfg);
    const auto keys = core::selectKeyCharacteristics(out, 4);

    std::printf("characterized %zu intervals, %zu PCs, %zu clusters, "
                "%zu key characteristics (fitness %.3f)\n",
                out.characterization.intervals.size(),
                out.analysis.pca_components,
                out.analysis.clustering.centers.rows(),
                keys.selected.size(), keys.fitness);
    std::printf("trace: %s\nmetrics: %s\n", trace_path.c_str(),
                obs::TraceScope::metricsPathFor(trace_path).c_str());
    return 0;
}

/**
 * Run the mini pipeline and freeze it into a PhaseModel: the pipeline
 * emits the model itself via config.model_path, then the GA runs and the
 * model is re-saved with the selected key characteristics embedded.
 */
int
runSaveModel(const std::string &path)
{
    using namespace mica;

    core::ExperimentConfig cfg = miniConfig();
    cfg.model_path = path;

    std::printf("running the mini-pipeline (model -> %s)...\n",
                path.c_str());
    const auto out = core::runFullExperiment(cfg);
    const auto keys = core::selectKeyCharacteristics(out, 4);
    const model::PhaseModel m = core::buildPhaseModel(out, keys);
    m.save(path);

    std::printf("saved model: %zu training rows, %zu PCs "
                "(%.1f%% variance), %zu clusters, %zu key "
                "characteristics, analysis key %016llx\n",
                static_cast<std::size_t>(m.training_rows), m.components(),
                m.pca_explained * 100.0, m.numClusters(),
                m.key_characteristics.size(),
                static_cast<unsigned long long>(m.analysis_key));
    return 0;
}

/**
 * The CI hard gate: reload the model, re-run the training pipeline, and
 * require the reloaded model's projection of the training sample to be
 * bit-identical to the in-memory analysis. Exit 1 on any deviation.
 */
int
runCheckModel(const mica::examples::ModelFlags &flags)
{
    using namespace mica;

    const auto reader = examples::openModelOrExit("quickstart", flags);
    const model::PhaseModel &m = reader->meta();
    const core::ExperimentConfig cfg = miniConfig();
    if (m.analysis_key != cfg.analysisKey()) {
        std::fprintf(stderr,
                     "model check: FAILED — analysis key %016llx does not "
                     "match this build's mini config (%016llx)\n",
                     static_cast<unsigned long long>(m.analysis_key),
                     static_cast<unsigned long long>(cfg.analysisKey()));
        return 1;
    }

    const auto out = core::runFullExperiment(cfg);
    const model::Projection proj = reader->placeBatch(out.sampled.data);

    const auto &want = out.analysis.reduced;
    const bool reduced_ok =
        proj.reduced.rows() == want.rows() &&
        proj.reduced.cols() == want.cols() &&
        std::memcmp(proj.reduced.data().data(), want.data().data(),
                    want.data().size() * sizeof(double)) == 0;
    const bool assign_ok =
        proj.assignment == out.analysis.clustering.assignment;
    if (!reduced_ok || !assign_ok) {
        std::fprintf(stderr,
                     "model check: FAILED — reloaded projection deviates "
                     "(reduced %s, assignments %s)\n",
                     reduced_ok ? "ok" : "MISMATCH",
                     assign_ok ? "ok" : "MISMATCH");
        return 1;
    }
    std::printf("model check: bitwise identical (%zu rows x %zu PCs, "
                "%zu clusters, %s loader)\n",
                proj.reduced.rows(), proj.reduced.cols(),
                reader->numClusters(),
                reader->zeroCopy() ? "zero-copy" : "copying");
    return 0;
}

/**
 * Place the toy two-phase program into a frozen space: characterize it at
 * the model's interval length and project — no PCA or k-means runs.
 */
int
runWithModel(const mica::examples::ModelFlags &flags)
{
    using namespace mica;

    const auto reader = examples::openModelOrExit("quickstart", flags);
    const model::PhaseModel &m = reader->meta();
    std::printf("loaded model: %zu clusters, %zu PCs, trained on %zu "
                "benchmarks\n",
                reader->numClusters(), reader->components(),
                m.benchmark_ids.size());

    const isa::Program program =
        assembler::assemble(kToySource, "quickstart");
    vm::Cpu cpu(program);
    profiler::MicaProfiler profiler(m.interval_instructions);
    cpu.run(m.interval_instructions * 8, &profiler);

    stats::Matrix data(0, 0);
    for (const auto &v : profiler.intervals())
        data.appendRow(v);
    const model::Projection proj = reader->placeBatch(data);
    for (std::size_t i = 0; i < proj.assignment.size(); ++i) {
        const std::size_t c = proj.assignment[i];
        std::printf("interval %zu -> cluster %zu (%s, weight %.1f%%, "
                    "distance %.3f)\n",
                    i, c, std::string(clusterKindName(m.cluster_kinds[c]))
                              .c_str(),
                    m.clusterWeight(c) * 100.0, std::sqrt(proj.dist2[i]));
    }

    const model::WorkloadAssessment a = reader->assessWorkload(proj);
    std::printf("\ntoy program vs frozen space: %zu/%zu clusters covered, "
                "%.0f%% shared behaviour, %.0f%% novel, mean distance "
                "%.3f\n",
                a.clusters_covered, reader->numClusters(),
                a.shared_fraction * 100.0, a.novel_fraction * 100.0,
                a.mean_distance);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mica;

    if (argc == 3 && std::string(argv[1]) == "--trace")
        return runTraced(argv[2]);
    if (argc == 3 && std::string(argv[1]) == "--save-model")
        return runSaveModel(argv[2]);
    if (argc >= 3 && (std::string(argv[1]) == "--check-model" ||
                      std::string(argv[1]) == "--model")) {
        examples::ModelFlags flags;
        flags.path = argv[2];
        for (int i = 3; i < argc; ++i) {
            if (!examples::consumeModelFlag(flags, argc, argv, i)) {
                std::fprintf(stderr,
                             "usage: quickstart %s <path> [--copy|--mmap]\n",
                             argv[1]);
                return 2;
            }
        }
        return std::string(argv[1]) == "--check-model"
                   ? runCheckModel(flags)
                   : runWithModel(flags);
    }

    // 1. Assemble the toy two-phase workload.
    const isa::Program program =
        assembler::assemble(kToySource, "quickstart");
    std::printf("assembled %zu instructions, %zu data bytes\n\n",
                program.code.size(), program.data.size());

    // 2. Run under the profiler: 10K-instruction intervals, 80K budget.
    vm::Cpu cpu(program);
    profiler::MicaProfiler profiler(10000);
    const vm::RunResult result = cpu.run(80000, &profiler);
    std::printf("executed %llu instructions -> %zu intervals\n\n",
                static_cast<unsigned long long>(result.executed),
                profiler.intervals().size());

    // 3. Inspect a few characteristics per interval: the two phases are
    // plainly visible in the time-varying metrics.
    namespace m = metrics::midx;
    std::printf("%-9s %9s %9s %9s %9s %9s\n", "interval", "mem_read",
                "mem_write", "ilp_w64", "branches", "data64B");
    for (std::size_t i = 0; i < profiler.intervals().size(); ++i) {
        const auto &v = profiler.intervals()[i];
        std::printf("%-9zu %9.3f %9.3f %9.2f %9.3f %9.0f\n", i,
                    v[m::MixMemRead], v[m::MixMemWrite], v[m::Ilp64],
                    v[m::MixCondBranch], v[m::DataFootprint64B]);
    }

    std::printf("\nthe aggregate view would blur these two phases into "
                "one average — the paper's core argument.\n");
    return 0;
}
