/**
 * @file
 * Phase-query serving frontend: answer placement and coverage queries
 * over a shared frozen model from a stream of interval characteristic
 * vectors, batching rows through the fused placeBatch kernel so thousands
 * of queries amortize one normalize→PCA→rescale pass (the zero-copy mmap
 * loader keeps N serving processes sharing one page-cache copy of the
 * matrices).
 *
 * The served model lives in a model::LiveModel slot and can be hot-swapped
 * without dropping or mixing in-flight work: each wave of rows is placed
 * against the generation-tagged snapshot that was current when the wave
 * began, a swap only takes effect at the next wave boundary, and every
 * reply carries the generation that produced it (docs/SERVING.md).
 *
 * Line protocol (stdin → stdout, one JSON object per answered line):
 *   p comma-separated doubles            CSV row: one interval vector
 *   {"values":[...]; optional "id":"x"}  same, NDJSON flavour
 *   #assess                              coverage summary over all rows
 *                                        served so far on the current
 *                                        generation (Figures 4-6 analogue
 *                                        for the live stream)
 *   #reload                              finish the in-flight wave on the
 *                                        old generation, then reopen the
 *                                        model file and swap
 *   empty line                           ignored
 * SIGHUP requests the same reload out-of-band (checked between lines; a
 * failed reload keeps the old generation serving either way).
 * Every non-empty line gets exactly one reply, in input order:
 *   {"seq":N,"gen":G,"cluster":C,"dist2":D}   placed row
 *   {"seq":N,"gen":G,"error":"..."}           malformed input (serving
 *                                             continues)
 *   {"seq":N,"gen":G,"assessment":{...}}      #assess reply
 *   {"seq":N,"gen":G,"reloaded":true}         #reload reply (G = new)
 *
 * Usage:
 *   phase_serve --model <path> [--copy|--mmap] [--batch N] [--threads N]
 *               [--trace out.json]          serve stdin until EOF
 *   phase_serve --model <path> --gen N [--seed S]
 *               deterministically synthesize N CSV rows near the model's
 *               training distribution (for piping into a server)
 *   phase_serve --demo                      self-contained: train a tiny
 *                                           model, re-save aligned, serve
 *                                           a generated stream with a
 *                                           mid-stream hot reload, and
 *                                           cross-check the two load
 *                                           paths bitwise
 */

#include <charconv>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "ann/center_index.hh"
#include "core/pipeline.hh"
#include "model/live_model.hh"
#include "model/reader.hh"
#include "model_cli.hh"
#include "obs/trace.hh"
#include "stats/rng.hh"

namespace {

using namespace mica;

/** Set by SIGHUP; the serving loop checks it between lines. */
volatile std::sig_atomic_t g_reload_requested = 0;

void
onReloadSignal(int)
{
    g_reload_requested = 1;
}

struct ServeOptions
{
    std::size_t batch = 512;
    unsigned threads = 0;
    /**
     * Approximate placement through the snapshot's ann::CenterIndex
     * (built at load/hot-swap over the frozen centers). Off by default:
     * serving stays exact and byte-identical to previous releases.
     * When on, every row reply carries an "approx" provenance field.
     */
    bool ann = false;
    std::size_t beam = 0; ///< --beam override; 0 = index default
};

struct ServeTotals
{
    std::uint64_t requests = 0; ///< answered lines (rows/errors/directives)
    std::uint64_t rows = 0;     ///< successfully placed rows
    std::uint64_t errors = 0;   ///< malformed lines
    std::uint64_t reloads = 0;  ///< successful hot-swaps
};

/** Escape a string for embedding in a JSON string literal. */
std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20)
            c = ' ';
        out.push_back(c);
    }
    return out;
}

bool
parseDouble(std::string_view s, double &out)
{
    const char *begin = s.data();
    const char *end = s.data() + s.size();
    const auto [ptr, ec] = std::from_chars(begin, end, out);
    return ec == std::errc{} && ptr == end;
}

/** Parse a CSV line of exactly `want` doubles. Returns an error or "". */
std::string
parseCsvRow(std::string_view line, std::size_t want,
            std::vector<double> &out)
{
    out.clear();
    std::size_t pos = 0;
    while (pos <= line.size()) {
        std::size_t comma = line.find(',', pos);
        if (comma == std::string_view::npos)
            comma = line.size();
        std::string_view field = line.substr(pos, comma - pos);
        while (!field.empty() && (field.front() == ' ' ||
                                  field.front() == '\t'))
            field.remove_prefix(1);
        while (!field.empty() &&
               (field.back() == ' ' || field.back() == '\t'))
            field.remove_suffix(1);
        double v = 0.0;
        if (!parseDouble(field, v))
            return "bad number in CSV field " +
                   std::to_string(out.size());
        out.push_back(v);
        if (comma == line.size())
            break;
        pos = comma + 1;
    }
    if (out.size() != want)
        return "expected " + std::to_string(want) + " values, got " +
               std::to_string(out.size());
    return "";
}

/**
 * Parse the NDJSON flavour: {"values":[v,...]} with an optional flat
 * "id":"..." string (no escapes). Deliberately minimal — the protocol is
 * machine-generated lines, not arbitrary JSON.
 */
std::string
parseJsonRow(std::string_view line, std::size_t want,
             std::vector<double> &out, std::string &id)
{
    out.clear();
    id.clear();
    const std::size_t values_key = line.find("\"values\"");
    if (values_key == std::string_view::npos)
        return "missing \"values\" key";
    const std::size_t open = line.find('[', values_key);
    const std::size_t close = line.find(']', values_key);
    if (open == std::string_view::npos || close == std::string_view::npos ||
        close < open)
        return "missing values array";
    std::size_t pos = open + 1;
    while (pos < close) {
        while (pos < close && (line[pos] == ' ' || line[pos] == ','))
            ++pos;
        if (pos >= close)
            break;
        std::size_t end = pos;
        while (end < close && line[end] != ',' && line[end] != ' ')
            ++end;
        double v = 0.0;
        if (!parseDouble(line.substr(pos, end - pos), v))
            return "bad number in values array";
        out.push_back(v);
        pos = end;
    }
    if (out.size() != want)
        return "expected " + std::to_string(want) + " values, got " +
               std::to_string(out.size());
    const std::size_t id_key = line.find("\"id\"");
    if (id_key != std::string_view::npos) {
        const std::size_t colon = line.find(':', id_key + 4);
        const std::size_t q1 = line.find('"', colon + 1);
        if (colon == std::string_view::npos ||
            q1 == std::string_view::npos)
            return "malformed id";
        const std::size_t q2 = line.find('"', q1 + 1);
        if (q2 == std::string_view::npos)
            return "malformed id";
        id = std::string(line.substr(q1 + 1, q2 - q1 - 1));
    }
    return "";
}

void
printAssessment(FILE *out, std::uint64_t seq, std::uint64_t gen,
                const model::WorkloadAssessment &a)
{
    std::fprintf(out,
                 "{\"seq\":%" PRIu64 ",\"gen\":%" PRIu64
                 ",\"assessment\":{\"rows\":%zu,"
                 "\"clusters_covered\":%zu,\"coverage_fraction\":%.17g,"
                 "\"shared_fraction\":%.17g,\"novel_fraction\":%.17g,"
                 "\"mean_distance\":%.17g,\"max_distance\":%.17g}}\n",
                 seq, gen, a.rows, a.clusters_covered, a.coverage_fraction,
                 a.shared_fraction, a.novel_fraction, a.mean_distance,
                 a.max_distance);
}

/**
 * The serving loop: accumulate up to opts.batch rows, place each wave
 * with one placeBatch call (the kernel fans rows out over the shared
 * thread pool), and answer every line in input order. Each wave runs
 * entirely against the generation snapshot pinned when the previous wave
 * flushed; `#reload` / SIGHUP swap the live slot only at wave boundaries,
 * so no reply ever mixes generations.
 */
ServeTotals
serveLoop(model::LiveModel &live, const examples::ModelFlags &flags,
          std::istream &in, FILE *out, const ServeOptions &opts)
{
    struct Entry
    {
        enum class Kind { Row, Error, Assess } kind = Kind::Row;
        std::uint64_t seq = 0;
        std::size_t row = 0;     ///< index into the wave (Kind::Row)
        std::string id;          ///< optional row label (Kind::Row)
        std::string error;       ///< message (Kind::Error)
    };

    ServeTotals totals;
    std::uint64_t seq = 0;

    // The pinned snapshot: everything in the current wave — parsing
    // width, placement, replies — consults this one generation.
    model::LiveModel::Snapshot snap = live.current();
    std::size_t p = snap.reader->columns();

    // Accumulated placements feed #assess over everything served so far
    // on the current generation (distances against different centers are
    // not comparable, so a swap resets the accumulator).
    model::Projection served;
    std::uint64_t served_gen = snap.generation;

    stats::Matrix wave(0, 0);
    std::vector<Entry> entries;

    stats::ProjectOptions popts;
    popts.threads = opts.threads;
    popts.block_rows = 64; // fine-grained enough for small serving waves

    // Per-wave provenance: true when this wave's rows went through the
    // graph search (a fallback-mode index is the exact scan, so rows
    // placed through it are exact and reported as such).
    bool wave_approx = false;

    auto flush = [&] {
        model::Projection proj;
        if (wave.rows() > 0) {
            const obs::GaugeTimer timer("serve.batch_seconds");
            obs::gauge("serve.batch_rows",
                       static_cast<double>(wave.rows()));
            // ANN opt-in: place through the snapshot's index — but only
            // when its generation tag matches the snapshot's, so a stale
            // index is never consulted (LiveModel swaps them atomically;
            // this guards the invariant rather than trusting it).
            popts.finder = nullptr;
            wave_approx = false;
            if (snap.index != nullptr &&
                snap.index->generation() == snap.generation) {
                popts.finder = snap.index.get();
                wave_approx = snap.index->graphMode();
            }
            proj = snap.reader->placeBatch(wave, popts);
            obs::count("serve.rows_projected",
                       static_cast<double>(wave.rows()));
            served.assignment.insert(served.assignment.end(),
                                     proj.assignment.begin(),
                                     proj.assignment.end());
            served.dist2.insert(served.dist2.end(), proj.dist2.begin(),
                                proj.dist2.end());
        }
        // One in-order walk: replies keep exactly the input line order no
        // matter how rows, errors and directives interleave in the wave.
        for (const Entry &e : entries) {
            switch (e.kind) {
              case Entry::Kind::Row:
                std::fprintf(out, "{\"seq\":%" PRIu64 ",\"gen\":%" PRIu64
                             ",", e.seq, snap.generation);
                if (!e.id.empty())
                    std::fprintf(out, "\"id\":\"%s\",",
                                 jsonEscape(e.id).c_str());
                std::fprintf(out, "\"cluster\":%zu,\"dist2\":%.17g%s}\n",
                             proj.assignment[e.row], proj.dist2[e.row],
                             opts.ann ? (wave_approx ? ",\"approx\":true"
                                                     : ",\"approx\":false")
                                      : "");
                ++totals.rows;
                break;
              case Entry::Kind::Error:
                std::fprintf(out, "{\"seq\":%" PRIu64 ",\"gen\":%" PRIu64
                             ",\"error\":\"%s\"}\n",
                             e.seq, snap.generation,
                             jsonEscape(e.error).c_str());
                ++totals.errors;
                break;
              case Entry::Kind::Assess:
                printAssessment(out, e.seq, snap.generation,
                                snap.reader->assessWorkload(served));
                break;
            }
        }
        wave = stats::Matrix(0, 0);
        entries.clear();
        std::fflush(out);
        // Wave boundary: pick up the latest published generation. The
        // wave just answered completed entirely on the old snapshot.
        snap = live.current();
        p = snap.reader->columns();
        if (snap.generation != served_gen) {
            served = model::Projection{};
            served_gen = snap.generation;
        }
    };

    // Drain the in-flight wave on the old generation, then reopen the
    // model file and swap. Returns "" on success; on failure the old
    // generation stays current and serving continues.
    auto reload = [&]() -> std::string {
        flush();
        try {
            live.load(flags.path, flags.open);
        } catch (const model::ModelError &e) {
            return e.what();
        }
        ++totals.reloads;
        flush(); // empty wave: just repins the new generation
        return "";
    };

    std::string line;
    std::vector<double> values;
    std::string id;
    while (std::getline(in, line)) {
        if (g_reload_requested) {
            g_reload_requested = 0;
            const std::string err = reload();
            if (err.empty())
                std::fprintf(stderr,
                             "phase_serve: SIGHUP reload -> generation %"
                             PRIu64 "\n", snap.generation);
            else
                std::fprintf(stderr,
                             "phase_serve: SIGHUP reload failed: %s\n",
                             err.c_str());
        }
        std::string_view sv = line;
        if (!sv.empty() && sv.back() == '\r')
            sv.remove_suffix(1);
        if (sv.empty())
            continue;
        ++seq;
        ++totals.requests;
        obs::count("serve.requests");

        if (sv.rfind("#reload", 0) == 0) {
            const std::string err = reload();
            if (err.empty())
                std::fprintf(out, "{\"seq\":%" PRIu64 ",\"gen\":%" PRIu64
                             ",\"reloaded\":true}\n", seq,
                             snap.generation);
            else
                std::fprintf(out, "{\"seq\":%" PRIu64 ",\"gen\":%" PRIu64
                             ",\"error\":\"reload failed: %s\"}\n", seq,
                             snap.generation, jsonEscape(err).c_str());
            std::fflush(out);
            continue;
        }

        if (sv.rfind("#assess", 0) == 0) {
            Entry e;
            e.kind = Entry::Kind::Assess;
            e.seq = seq;
            entries.push_back(std::move(e));
            flush();
            continue;
        }

        std::string error;
        id.clear();
        if (sv.front() == '{')
            error = parseJsonRow(sv, p, values, id);
        else
            error = parseCsvRow(sv, p, values);

        Entry e;
        e.seq = seq;
        if (!error.empty()) {
            e.kind = Entry::Kind::Error;
            e.error = std::move(error);
        } else {
            e.kind = Entry::Kind::Row;
            e.row = wave.rows();
            e.id = id;
            wave.appendRow(values);
        }
        entries.push_back(std::move(e));
        if (wave.rows() >= opts.batch)
            flush();
    }
    flush();
    return totals;
}

/**
 * Deterministically synthesize `n` CSV rows near the model's training
 * distribution: each row perturbs a prominent-phase raw representative
 * (cycled; the norm means when the model has none) by a fraction of the
 * per-column training stddev.
 */
std::string
generateRows(const model::PhaseModel &m, stats::MatrixView prominent_raw,
             std::size_t n, std::uint64_t seed)
{
    const std::size_t p = m.columns();
    stats::Rng rng(seed);
    std::string out;
    char buf[64];
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t c = 0; c < p; ++c) {
            double base;
            if (prominent_raw.rows() > 0)
                base = prominent_raw.at(i % prominent_raw.rows(), c);
            else
                base = m.norm_mean[c];
            const double v =
                base + 0.25 * m.norm_stddev[c] * rng.nextGaussian();
            std::snprintf(buf, sizeof buf, "%.17g", v);
            if (c > 0)
                out.push_back(',');
            out += buf;
        }
        out.push_back('\n');
    }
    return out;
}

int
runGen(const examples::ModelFlags &flags, std::size_t n,
       std::uint64_t seed)
{
    const auto reader = examples::openModelOrExit("phase_serve", flags);
    const std::string rows =
        generateRows(reader->meta(), reader->prominentRaw(), n, seed);
    std::fwrite(rows.data(), 1, rows.size(), stdout);
    return 0;
}

/**
 * Self-contained smoke path (used by ctest): train a tiny model, re-save
 * it with aligned sections, serve a generated stream with a mid-stream
 * `#reload` hot-swap, and require the copy and mmap load paths to place
 * every row bit-identically.
 */
int
runDemo()
{
    core::ExperimentConfig cfg;
    cfg.interval_instructions = 2000;
    cfg.interval_scale = 0.02;
    cfg.samples_per_benchmark = 20;
    cfg.kmeans_k = 24;
    cfg.kmeans_restarts = 2;
    cfg.num_prominent = 12;
    cfg.threads = 4;
    cfg.cache_dir = "out/cache";
    cfg.model_path = "out/phase_serve_demo.bin";

    std::fprintf(stderr, "training a tiny model -> %s ...\n",
                 cfg.model_path.c_str());
    (void)core::runFullExperiment(cfg);

    const model::PhaseModel m = model::PhaseModel::load(cfg.model_path);
    const std::string aligned_path = "out/phase_serve_demo_aligned.bin";
    model::SaveOptions save_opts;
    save_opts.align_sections = true;
    m.save(aligned_path, save_opts);

    examples::ModelFlags flags;
    flags.path = aligned_path;
    flags.open.mode = model::OpenMode::Mmap;

    model::LiveModel live;
    live.load(flags.path, flags.open); // generation 1
    const model::LiveModel::Snapshot first = live.current();
    std::fprintf(stderr,
                 "serving generation %" PRIu64 " via mmap view "
                 "(zero-copy: %s)\n", first.generation,
                 first.reader->zeroCopy() ? "yes" : "no");

    // 128 rows on generation 1, a hot reload, 128 more on generation 2.
    std::string input = generateRows(m, m.prominent_raw.view(), 128, 42);
    input += "#assess\n";
    input += "#reload\n";
    input += generateRows(m, m.prominent_raw.view(), 128, 43);
    input += "#assess\n";
    std::istringstream in(input);
    ServeOptions opts;
    opts.batch = 64;
    opts.threads = 2;
    const ServeTotals totals = serveLoop(live, flags, in, stdout, opts);
    if (totals.rows != 256 || totals.errors != 0 || totals.reloads != 1 ||
        live.generation() != 2) {
        std::fprintf(stderr,
                     "demo: expected 256 clean rows + 1 reload, served %"
                     PRIu64 " (%" PRIu64 " errors, %" PRIu64
                     " reloads, generation %" PRIu64 ")\n",
                     totals.rows, totals.errors, totals.reloads,
                     live.generation());
        return 1;
    }

    // Cross-check the two load paths bitwise on the same rows.
    std::istringstream again(input);
    stats::Matrix rows(0, 0);
    std::string line;
    std::vector<double> values;
    while (std::getline(again, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        if (!parseCsvRow(line, m.columns(), values).empty())
            return 1;
        rows.appendRow(values);
    }
    const auto copy_reader =
        model::open(aligned_path, {model::OpenMode::Copy});
    const model::Projection via_copy = copy_reader->placeBatch(rows);
    const auto view_reader =
        model::open(aligned_path, {model::OpenMode::Mmap});
    stats::ProjectOptions popts;
    popts.threads = 3;
    popts.block_rows = 17;
    const model::Projection via_view = view_reader->placeBatch(rows, popts);
    const bool identical =
        via_copy.assignment == via_view.assignment &&
        std::memcmp(via_copy.reduced.data().data(),
                    via_view.reduced.data().data(),
                    via_copy.reduced.data().size() * sizeof(double)) == 0 &&
        std::memcmp(via_copy.dist2.data(), via_view.dist2.data(),
                    via_copy.dist2.size() * sizeof(double)) == 0;
    if (!identical) {
        std::fprintf(stderr,
                     "demo: copy and mmap placements disagree bitwise\n");
        return 1;
    }

    // ANN cross-check: force the graph path (demo k is far below the
    // production min_graph_size cutoff) and require every row to find
    // its true nearest center bit-identically — at this scale the beam
    // covers the whole graph, so the search must be exact.
    ann::BuildOptions bopts;
    bopts.min_graph_size = 1;
    const ann::CenterIndex index =
        ann::CenterIndex::build(view_reader->centers(), bopts);
    stats::ProjectOptions ann_popts;
    ann_popts.finder = &index;
    const model::Projection via_ann =
        view_reader->placeBatch(rows, ann_popts);
    std::size_t agree = 0;
    bool dist_bitwise = true;
    for (std::size_t i = 0; i < via_ann.assignment.size(); ++i) {
        if (via_ann.assignment[i] == via_copy.assignment[i]) {
            ++agree;
            dist_bitwise = dist_bitwise &&
                std::memcmp(&via_ann.dist2[i], &via_copy.dist2[i],
                            sizeof(double)) == 0;
        }
    }
    if (agree != via_ann.assignment.size() || !dist_bitwise) {
        std::fprintf(stderr,
                     "demo: ann placement recall %zu/%zu (dist bitwise: "
                     "%s)\n", agree, via_ann.assignment.size(),
                     dist_bitwise ? "yes" : "no");
        return 1;
    }

    std::fprintf(stderr,
                 "demo: 256 rows served across 2 generations; copy and "
                 "mmap load paths bit-identical; ann graph placement "
                 "recall %zu/%zu with bit-identical distances\n",
                 agree, via_ann.assignment.size());
    return 0;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: phase_serve --model <path> [--copy|--mmap] [--batch N]\n"
        "                   [--threads N] [--ann] [--beam N]\n"
        "                   [--trace out.json]\n"
        "       phase_serve --model <path> --gen N [--seed S]\n"
        "       phase_serve --demo\n"
        "directives: #assess (coverage), #reload (hot-swap; also SIGHUP)\n"
        "--ann places rows through the graph nearest-center index built\n"
        "at load/reload (docs/ANN.md); replies gain an \"approx\" field.\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    examples::ModelFlags flags;
    std::string trace_path;
    ServeOptions opts;
    bool demo = false;
    std::size_t gen = 0;
    std::uint64_t seed = 1;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto numArg = [&](auto &out) {
            if (i + 1 >= argc)
                return false;
            const std::string_view s = argv[++i];
            const auto [end, ec] =
                std::from_chars(s.data(), s.data() + s.size(), out);
            return ec == std::errc{} && end == s.data() + s.size();
        };
        if (examples::consumeModelFlag(flags, argc, argv, i))
            continue;
        if (arg == "--trace" && i + 1 < argc)
            trace_path = argv[++i];
        else if (arg == "--batch") {
            if (!numArg(opts.batch) || opts.batch == 0)
                return usage();
        } else if (arg == "--threads") {
            if (!numArg(opts.threads))
                return usage();
        } else if (arg == "--gen") {
            if (!numArg(gen))
                return usage();
        } else if (arg == "--seed") {
            if (!numArg(seed))
                return usage();
        } else if (arg == "--ann")
            opts.ann = true;
        else if (arg == "--beam") {
            if (!numArg(opts.beam) || opts.beam == 0)
                return usage();
        } else if (arg == "--demo")
            demo = true;
        else
            return usage();
    }

    if (demo)
        return runDemo();
    if (flags.path.empty())
        return usage();
    if (gen > 0)
        return runGen(flags, gen, seed);

    const obs::TraceScope trace(trace_path);
    std::signal(SIGHUP, onReloadSignal);

    model::LiveModel live;
    if (opts.ann) {
        ann::BuildOptions bopts;
        if (opts.beam > 0)
            bopts.beam = opts.beam;
        live.enableAnn(bopts); // before the first publish: every
                               // generation gets its own index
    }
    // Route the first open through the shared helper so a missing/corrupt
    // model fails with the same text as every other CLI.
    live.publish(std::shared_ptr<const model::ModelReader>(
        examples::openModelOrExit("phase_serve", flags)));
    const model::LiveModel::Snapshot snap = live.current();
    std::fprintf(stderr,
                 "phase_serve: model %s (%zu columns, %zu clusters, "
                 "load path %s%s), batch %zu, generation %" PRIu64 "\n",
                 flags.path.c_str(), snap.reader->columns(),
                 snap.reader->numClusters(),
                 flags.open.mode == model::OpenMode::Copy ? "copy"
                                                          : "mmap",
                 snap.reader->zeroCopy() ? ", zero-copy" : "", opts.batch,
                 snap.generation);
    if (snap.index != nullptr)
        std::fprintf(stderr,
                     "phase_serve: ann index generation %" PRIu64
                     " (%s, beam %zu)\n",
                     snap.index->generation(),
                     snap.index->graphMode() ? "graph"
                                             : "exact fallback: small k",
                     snap.index->defaultBeam());

    const ServeTotals totals =
        serveLoop(live, flags, std::cin, stdout, opts);
    std::fprintf(stderr,
                 "phase_serve: answered %" PRIu64 " requests (%" PRIu64
                 " rows placed, %" PRIu64 " malformed, %" PRIu64
                 " reloads)\n",
                 totals.requests, totals.rows, totals.errors,
                 totals.reloads);
    return 0;
}
