/**
 * @file
 * mica_lint: static-analysis front end — lint catalog benchmarks or an
 * assembly file with the analysis subsystem and dump diagnostics, the
 * CFG, and the static program features.
 *
 * Usage:
 *   mica_lint all [options]
 *       lint every program of every registered benchmark
 *   mica_lint <suite> [options]
 *       lint one suite group (e.g. SPECint2000, BioPerf)
 *   mica_lint <suite/name | file.s> [options]
 *       lint one benchmark (all inputs) or an assembly file
 *   options:
 *       --cfg                 dump basic blocks and edges
 *       --features            dump the static feature signature
 *       --werror              treat warnings as errors (exit status)
 *       --require-termination flag infinite loops (off for generated
 *                             workloads, which loop by design)
 *
 * Exit status: 0 when no Error-level diagnostic was found, 1 otherwise.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/static_features.hh"
#include "analysis/verifier.hh"
#include "asm/assembler.hh"
#include "workloads/workload.hh"

namespace {

using namespace mica;

struct LintOptions
{
    bool dump_cfg = false;
    bool dump_features = false;
    bool werror = false;
    analysis::Options verify;
};

int
usage()
{
    std::fprintf(stderr,
                 "usage: mica_lint <all | suite | suite/name | file.s>\n"
                 "                 [--cfg] [--features] [--werror]\n"
                 "                 [--require-termination]\n");
    return 2;
}

/** Lint one program; returns the number of error-level diagnostics. */
std::size_t
lintProgram(const isa::Program &program, const LintOptions &opts)
{
    const analysis::Report report = analysis::verify(program, opts.verify);
    const analysis::StaticFeatures features =
        analysis::staticFeatures(program);

    std::printf("%-32s %5zu instrs %4zu blocks %3zu loops  "
                "%zu error(s), %zu warning(s)\n",
                program.name.c_str(), program.code.size(),
                features.num_blocks, features.num_loops,
                report.errorCount(), report.warningCount());
    for (const analysis::Diagnostic &d : report.diagnostics)
        std::printf("  %s\n", d.toString().c_str());
    if (opts.dump_features)
        std::printf("%s", features.toString().c_str());
    if (opts.dump_cfg)
        std::printf("%s", analysis::buildCfg(program).toString().c_str());

    return report.errorCount() +
        (opts.werror ? report.warningCount() : 0);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string target = argv[1];

    LintOptions opts;
    // Generated workloads run forever under an external budget; infinite
    // loops are only a defect when explicitly requested.
    opts.verify.allow_nonterminating = true;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--cfg")
            opts.dump_cfg = true;
        else if (arg == "--features")
            opts.dump_features = true;
        else if (arg == "--werror")
            opts.werror = true;
        else if (arg == "--require-termination")
            opts.verify.allow_nonterminating = false;
        else
            return usage();
    }

    // Assembly file?
    if (target.size() > 2 && target.substr(target.size() - 2) == ".s") {
        std::ifstream in(target);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", target.c_str());
            return 1;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        isa::Program program;
        try {
            program = assembler::assemble(buffer.str(), target);
        } catch (const assembler::AsmError &e) {
            std::fprintf(stderr, "%s: %s\n", target.c_str(), e.what());
            return 1;
        }
        return lintProgram(program, opts) == 0 ? 0 : 1;
    }

    const workloads::SuiteCatalog catalog;
    std::vector<const workloads::BenchmarkSpec *> selected;
    if (target == "all") {
        for (const auto &bench : catalog.benchmarks())
            selected.push_back(&bench);
    } else if (std::find(workloads::SuiteCatalog::suiteNames().begin(),
                         workloads::SuiteCatalog::suiteNames().end(),
                         target) !=
               workloads::SuiteCatalog::suiteNames().end()) {
        selected = catalog.bySuite(target);
    } else if (const auto *bench = catalog.find(target)) {
        selected.push_back(bench);
    } else {
        std::fprintf(stderr,
                     "'%s' is neither 'all', a suite, a catalog id nor an "
                     ".s file (try 'mica_dump list')\n",
                     target.c_str());
        return 1;
    }

    std::size_t programs = 0, failures = 0;
    for (const auto *bench : selected) {
        for (std::uint32_t input = 0; input < bench->num_inputs; ++input) {
            ++programs;
            if (lintProgram(bench->build(input), opts) != 0)
                ++failures;
        }
    }
    std::printf("\nlinted %zu program(s): %zu failing\n", programs,
                failures);
    return failures == 0 ? 0 : 1;
}
