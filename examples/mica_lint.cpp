/**
 * @file
 * mica_lint: static-analysis front end — lint catalog benchmarks or an
 * assembly file with the analysis subsystem and dump diagnostics, the
 * CFG, and the static program features.
 *
 * Usage:
 *   mica_lint all [options]
 *       lint every program of every registered benchmark
 *   mica_lint <suite> [options]
 *       lint one suite group (e.g. SPECint2000, BioPerf)
 *   mica_lint <suite/name | file.s> [options]
 *       lint one benchmark (all inputs) or an assembly file
 *   options:
 *       --json                machine-readable report on stdout (one JSON
 *                             document; suppresses the human output)
 *       --cfg                 dump basic blocks and edges
 *       --features            dump the static feature signature
 *       --werror              treat warnings as errors (exit status)
 *       --require-termination flag infinite loops (off for generated
 *                             workloads, which loop by design)
 *
 * Exit status: 0 when the lint ran and found nothing, 1 when only
 * warnings were found, 2 when any Error-level diagnostic was found (or
 * warnings under --werror). Usage and I/O failures exit 64.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/static_features.hh"
#include "analysis/verifier.hh"
#include "asm/assembler.hh"
#include "workloads/workload.hh"

namespace {

using namespace mica;

constexpr int kExitUsage = 64;

struct LintOptions
{
    bool json = false;
    bool dump_cfg = false;
    bool dump_features = false;
    bool werror = false;
    analysis::Options verify;
};

/** Totals across all linted programs, for the final exit code. */
struct LintTotals
{
    std::size_t programs = 0;
    std::size_t errors = 0;
    std::size_t warnings = 0;

    [[nodiscard]] int
    exitCode(bool werror) const
    {
        if (errors > 0 || (werror && warnings > 0))
            return 2;
        return warnings > 0 ? 1 : 0;
    }
};

int
usage()
{
    std::fprintf(stderr,
                 "usage: mica_lint <all | suite | suite/name | file.s>\n"
                 "                 [--json] [--cfg] [--features] [--werror]\n"
                 "                 [--require-termination]\n");
    return kExitUsage;
}

/** JSON string escaping for the diagnostic messages. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
appendJsonReport(std::string &json, const isa::Program &program,
                 const analysis::Report &report)
{
    std::ostringstream os;
    os << "    {\n      \"file\": \"" << jsonEscape(program.name)
       << "\",\n      \"errors\": " << report.errorCount()
       << ",\n      \"warnings\": " << report.warningCount()
       << ",\n      \"diagnostics\": [";
    bool first = true;
    for (const analysis::Diagnostic &d : report.diagnostics) {
        os << (first ? "\n" : ",\n")
           << "        {\"check\": \"" << analysis::checkName(d.check)
           << "\", \"severity\": \"" << analysis::severityName(d.severity)
           << "\", \"block\": " << d.block
           << ", \"block_offset\": " << d.block_offset
           << ", \"instr_index\": " << d.instr_index
           << ", \"pc\": " << d.pc
           << ", \"message\": \"" << jsonEscape(d.message) << "\"}";
        first = false;
    }
    os << (first ? "]" : "\n      ]") << "\n    }";
    json += os.str();
}

/** Lint one program, printing or accumulating per the options. */
void
lintProgram(const isa::Program &program, const LintOptions &opts,
            LintTotals &totals, std::string &json)
{
    const analysis::Report report = analysis::verify(program, opts.verify);
    ++totals.programs;
    totals.errors += report.errorCount();
    totals.warnings += report.warningCount();

    if (opts.json) {
        if (totals.programs > 1)
            json += ",\n";
        appendJsonReport(json, program, report);
        return;
    }

    const analysis::StaticFeatures features =
        analysis::staticFeatures(program);
    std::printf("%-32s %5zu instrs %4zu blocks %3zu loops  "
                "%zu error(s), %zu warning(s)\n",
                program.name.c_str(), program.code.size(),
                features.num_blocks, features.num_loops,
                report.errorCount(), report.warningCount());
    for (const analysis::Diagnostic &d : report.diagnostics)
        std::printf("  %s\n", d.toString().c_str());
    if (opts.dump_features)
        std::printf("%s", features.toString().c_str());
    if (opts.dump_cfg)
        std::printf("%s", analysis::buildCfg(program).toString().c_str());
}

int
finish(const LintOptions &opts, const LintTotals &totals, std::string &json)
{
    if (opts.json) {
        std::printf("{\n  \"programs\": %zu,\n  \"errors\": %zu,\n"
                    "  \"warnings\": %zu,\n  \"reports\": [\n%s\n  ]\n}\n",
                    totals.programs, totals.errors, totals.warnings,
                    json.c_str());
    } else {
        std::printf("\nlinted %zu program(s): %zu error(s), "
                    "%zu warning(s)\n",
                    totals.programs, totals.errors, totals.warnings);
    }
    return totals.exitCode(opts.werror);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string target = argv[1];

    LintOptions opts;
    // Generated workloads run forever under an external budget; infinite
    // loops are only a defect when explicitly requested.
    opts.verify.allow_nonterminating = true;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json")
            opts.json = true;
        else if (arg == "--cfg")
            opts.dump_cfg = true;
        else if (arg == "--features")
            opts.dump_features = true;
        else if (arg == "--werror")
            opts.werror = true;
        else if (arg == "--require-termination")
            opts.verify.allow_nonterminating = false;
        else
            return usage();
    }

    LintTotals totals;
    std::string json;

    // Assembly file?
    if (target.size() > 2 && target.substr(target.size() - 2) == ".s") {
        std::ifstream in(target);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", target.c_str());
            return kExitUsage;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        isa::Program program;
        try {
            program = assembler::assemble(buffer.str(), target);
        } catch (const assembler::AsmError &e) {
            std::fprintf(stderr, "%s: %s\n", target.c_str(), e.what());
            return 2;
        }
        lintProgram(program, opts, totals, json);
        return finish(opts, totals, json);
    }

    const workloads::SuiteCatalog catalog;
    std::vector<const workloads::BenchmarkSpec *> selected;
    if (target == "all") {
        for (const auto &bench : catalog.benchmarks())
            selected.push_back(&bench);
    } else if (std::find(workloads::SuiteCatalog::suiteNames().begin(),
                         workloads::SuiteCatalog::suiteNames().end(),
                         target) !=
               workloads::SuiteCatalog::suiteNames().end()) {
        selected = catalog.bySuite(target);
    } else if (const auto *bench = catalog.find(target)) {
        selected.push_back(bench);
    } else {
        std::fprintf(stderr,
                     "'%s' is neither 'all', a suite, a catalog id nor an "
                     ".s file (try 'mica_dump list')\n",
                     target.c_str());
        return kExitUsage;
    }

    for (const auto *bench : selected)
        for (std::uint32_t input = 0; input < bench->num_inputs; ++input)
            lintProgram(bench->build(input), opts, totals, json);
    return finish(opts, totals, json);
}
