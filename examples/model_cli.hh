/**
 * @file
 * Shared model-flag handling for the example CLIs (phase_query,
 * phase_serve, quickstart, phase_explorer): every tool accepts the same
 * `--model <path> [--copy|--mmap]` triple, resolves it through the
 * unified `model::open` factory, and reports missing/corrupt model files
 * with identical error text — the flag parsing and the failure wording
 * live here exactly once.
 */

#ifndef MICAPHASE_EXAMPLES_MODEL_CLI_HH
#define MICAPHASE_EXAMPLES_MODEL_CLI_HH

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>

#include "model/reader.hh"

namespace mica::examples {

/** The `--model/--copy/--mmap` state shared by every CLI. */
struct ModelFlags
{
    std::string path;
    model::OpenOptions open; ///< mode defaults to OpenMode::Auto (mmap)
};

/** Usage fragment describing the shared flags (for usage() banners). */
inline constexpr const char *kModelFlagsUsage =
    "--model <path> [--copy|--mmap]";

/**
 * Try to consume argv[i] (and its value, advancing `i`) as one of the
 * shared model flags. Returns true when consumed; leaves `i` untouched
 * and returns false otherwise so the caller can match its own flags.
 */
inline bool
consumeModelFlag(ModelFlags &flags, int argc, char **argv, int &i)
{
    const std::string_view arg = argv[i];
    if (arg == "--model" && i + 1 < argc) {
        flags.path = argv[++i];
        return true;
    }
    if (arg == "--copy") {
        flags.open.mode = model::OpenMode::Copy;
        return true;
    }
    if (arg == "--mmap") {
        flags.open.mode = model::OpenMode::Mmap;
        return true;
    }
    return false;
}

/**
 * Open the model behind the unified reader interface, or exit: status 2
 * with "<prog>: --model <path> is required" when the flag is missing,
 * status 1 with "<prog>: <ModelError message>" when the file is absent
 * or corrupt. Every CLI funnels through here, so the error text for a
 * given failure is identical no matter which tool hit it.
 */
inline std::unique_ptr<model::ModelReader>
openModelOrExit(const char *prog, const ModelFlags &flags)
{
    if (flags.path.empty()) {
        std::fprintf(stderr, "%s: --model <path> is required\n", prog);
        std::exit(2);
    }
    try {
        return model::open(flags.path, flags.open);
    } catch (const model::ModelError &e) {
        std::fprintf(stderr, "%s: %s\n", prog, e.what());
        std::exit(1);
    }
}

} // namespace mica::examples

#endif // MICAPHASE_EXAMPLES_MODEL_CLI_HH
