/**
 * @file
 * Phase explorer: characterize one benchmark from the catalog, cluster
 * its own intervals, and render a kiviat plot per discovered phase.
 *
 * Demonstrates the paper's per-benchmark anecdote (section 4.2): astar's
 * execution splits across two very different phase behaviours — an
 * erratic-branch search phase and a well-behaved sweep phase.
 *
 * Usage: phase_explorer [suite/name] (default SPECint2006/astar)
 */

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/characterize.hh"
#include "core/phase_analysis.hh"
#include "core/sampling.hh"
#include "stats/kmeans.hh"
#include "stats/pca.hh"
#include "viz/kiviat.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace mica;
    namespace m = metrics::midx;

    const std::string id = argc > 1 ? argv[1] : "SPECint2006/astar";
    const workloads::SuiteCatalog catalog;
    const auto *bench = catalog.find(id);
    if (!bench) {
        std::fprintf(stderr, "unknown benchmark '%s'\n", id.c_str());
        std::fprintf(stderr, "available ids look like: %s\n",
                     catalog.benchmarks().front().id().c_str());
        return 1;
    }

    // Characterize 60 x 50K-instruction intervals of input 0.
    std::printf("characterizing %s...\n", id.c_str());
    const auto intervals =
        core::characterizeProgram(bench->build(0), 50000, 60);

    // Cluster this benchmark's intervals in its own rescaled PCA space.
    stats::Matrix data(0, 0);
    for (const auto &v : intervals)
        data.appendRow(v);
    const stats::Matrix reduced = stats::rescaledPcaSpace(data);
    stats::KMeans::Options km;
    km.k = 4;
    km.restarts = 4;
    km.seed = 1;
    const auto clustering = stats::KMeans::run(reduced, km);

    // Render each phase along a handful of informative axes.
    const std::vector<std::size_t> keys = {
        m::MixMemRead,        m::MixCondBranch, m::Ilp64,
        m::BranchTakenRate,   m::PpmGag12,      m::DataFootprint64B,
        m::GlobalLoadStride64, m::RegDegreeOfUse};
    std::vector<viz::AxisStats> axes;
    for (std::size_t idx : keys) {
        viz::AxisStats a;
        a.name = std::string(metrics::metricInfo(idx).name);
        a.min = 1e300;
        a.max = -1e300;
        double sum = 0.0;
        for (const auto &v : intervals) {
            a.min = std::min(a.min, v[idx]);
            a.max = std::max(a.max, v[idx]);
            sum += v[idx];
        }
        a.mean = sum / static_cast<double>(intervals.size());
        a.mean_minus_sd = a.min;
        a.mean_plus_sd = a.max;
        if (a.max <= a.min)
            a.max = a.min + 1.0;
        axes.push_back(a);
    }

    std::filesystem::create_directories("out");
    const auto reps = clustering.representatives(reduced);
    std::vector<viz::KiviatPanel> panels;
    for (std::size_t c = 0; c < clustering.centers.rows(); ++c) {
        if (clustering.sizes[c] == 0)
            continue;
        viz::KiviatPanel panel;
        const double weight = static_cast<double>(clustering.sizes[c]) /
                              static_cast<double>(intervals.size());
        char title[64];
        std::snprintf(title, sizeof title, "phase %zu: %.0f%% of run", c,
                      weight * 100.0);
        panel.title = title;
        for (std::size_t idx : keys)
            panel.values.push_back(intervals[reps[c]][idx]);
        panel.slices = {{bench->name, weight}};
        panels.push_back(panel);

        std::printf("\n%s\n",
                    viz::renderAsciiKiviat(panel, axes).c_str());
    }

    std::string file = "out/phases_" + bench->name + ".svg";
    viz::renderKiviatGrid(id + " phase behaviours", panels, axes, {})
        .writeFile(file);
    std::printf("wrote %s (%zu phases discovered over %zu intervals)\n",
                file.c_str(), panels.size(), intervals.size());
    return 0;
}
