/**
 * @file
 * Phase explorer: characterize one benchmark from the catalog, cluster
 * its own intervals, and render a kiviat plot per discovered phase.
 *
 * Demonstrates the paper's per-benchmark anecdote (section 4.2): astar's
 * execution splits across two very different phase behaviours — an
 * erratic-branch search phase and a well-behaved sweep phase.
 *
 * Usage: phase_explorer [suite/name] [--save-model <path> |
 *        --model <path> [--copy|--mmap]]   (default SPECint2006/astar)
 *
 * `--save-model` freezes the benchmark's private rescaled-PCA space +
 * clustering into a model::PhaseModel file; `--model` opens such a file
 * behind the unified model::ModelReader interface and projects the fresh
 * intervals into the frozen space instead of fitting PCA / running
 * k-means again (see docs/MODEL.md).
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "core/characterize.hh"
#include "core/phase_analysis.hh"
#include "core/sampling.hh"
#include "model/reader.hh"
#include "model_cli.hh"
#include "stats/kmeans.hh"
#include "stats/pca.hh"
#include "viz/kiviat.hh"
#include "workloads/workload.hh"

namespace {

/** Freeze this benchmark's private space into a single-suite model. */
mica::model::PhaseModel
freezeModel(const mica::workloads::BenchmarkSpec &bench,
            const mica::stats::Pca &pca, const mica::stats::Matrix &data,
            const mica::stats::Matrix &reduced,
            const mica::stats::KMeansResult &clustering)
{
    using namespace mica;

    model::PhaseModel m;
    m.interval_instructions = 50000;
    m.samples_per_benchmark =
        static_cast<std::uint32_t>(data.rows());
    m.training_rows = data.rows();
    m.benchmark_ids = {bench.id()};
    m.benchmark_suites = {bench.suite};
    m.suites = {bench.suite};
    m.normalize_input = pca.normalizeInput();
    m.norm_mean = pca.inputStats().mean;
    m.norm_stddev = pca.inputStats().stddev;
    m.pca_explained = pca.explainedVarianceFraction();
    m.eigenvalues = pca.eigenvalues();
    m.loadings = pca.loadings();
    m.rescale_sd = pca.scoreStdDevs();
    m.centers = clustering.centers;

    const std::size_t k = clustering.centers.rows();
    m.cluster_sizes.assign(k, 0);
    for (std::size_t c = 0; c < k; ++c)
        m.cluster_sizes[c] = clustering.sizes[c];
    // Single benchmark: every populated cluster is benchmark-specific,
    // and the one suite owns every training row.
    m.cluster_kinds.assign(k, model::ClusterKind::BenchmarkSpecific);
    m.suite_rows = m.cluster_sizes;

    const auto reps = clustering.representatives(reduced);
    std::vector<std::size_t> by_weight;
    for (std::size_t c = 0; c < k; ++c)
        if (clustering.sizes[c] > 0)
            by_weight.push_back(c);
    std::sort(by_weight.begin(), by_weight.end(),
              [&](std::size_t a, std::size_t b) {
                  if (clustering.sizes[a] != clustering.sizes[b])
                      return clustering.sizes[a] > clustering.sizes[b];
                  return a < b;
              });
    for (std::size_t c : by_weight) {
        model::ProminentPhase ph;
        ph.cluster = static_cast<std::uint32_t>(c);
        ph.weight = static_cast<double>(clustering.sizes[c]) /
                    static_cast<double>(data.rows());
        ph.representative_row = reps[c];
        m.prominent.push_back(ph);
        m.prominent_raw.appendRow(data.row(reps[c]));
    }
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mica;
    namespace m = metrics::midx;

    std::string id = "SPECint2006/astar";
    std::string save_model_path;
    examples::ModelFlags flags;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (examples::consumeModelFlag(flags, argc, argv, i))
            continue;
        if (arg == "--save-model" && i + 1 < argc)
            save_model_path = argv[++i];
        else
            id = arg;
    }

    const workloads::SuiteCatalog catalog;
    const auto *bench = catalog.find(id);
    if (!bench) {
        std::fprintf(stderr, "unknown benchmark '%s'\n", id.c_str());
        std::fprintf(stderr, "available ids look like: %s\n",
                     catalog.benchmarks().front().id().c_str());
        return 1;
    }

    // Characterize 60 x 50K-instruction intervals of input 0.
    std::printf("characterizing %s...\n", id.c_str());
    const auto intervals =
        core::characterizeProgram(bench->build(0), 50000, 60);
    stats::Matrix data(0, 0);
    for (const auto &v : intervals)
        data.appendRow(v);

    // Project into a phase space: either this benchmark's own freshly
    // fitted rescaled PCA space + clustering, or a frozen model's.
    stats::Matrix reduced(0, 0);
    stats::Matrix centers(0, 0);
    std::vector<std::size_t> sizes;
    std::vector<std::size_t> reps;
    if (!flags.path.empty()) {
        const auto frozen =
            examples::openModelOrExit("phase_explorer", flags);
        std::printf("projecting into frozen space %s (%zu clusters, %zu "
                    "PCs) — no PCA/k-means rerun\n",
                    flags.path.c_str(), frozen->numClusters(),
                    frozen->components());
        const model::Projection proj = frozen->placeBatch(data);
        reduced = proj.reduced;
        centers = stats::Matrix::fromView(frozen->centers());
        // Representative = the member closest to its frozen center.
        sizes.assign(frozen->numClusters(), 0);
        reps.assign(frozen->numClusters(), 0);
        std::vector<double> best(frozen->numClusters(),
                                 std::numeric_limits<double>::max());
        for (std::size_t i = 0; i < proj.assignment.size(); ++i) {
            const std::size_t c = proj.assignment[i];
            ++sizes[c];
            if (proj.dist2[i] < best[c]) {
                best[c] = proj.dist2[i];
                reps[c] = i;
            }
        }
    } else {
        stats::Pca::Options pca_opts;
        const stats::Pca pca = stats::Pca::fit(data, pca_opts);
        reduced = pca.transformRescaled(data);
        stats::KMeans::Options km;
        km.k = 4;
        km.restarts = 4;
        km.seed = 1;
        const auto clustering = stats::KMeans::run(reduced, km);
        centers = clustering.centers;
        sizes = clustering.sizes;
        reps = clustering.representatives(reduced);
        if (!save_model_path.empty()) {
            const model::PhaseModel frozen =
                freezeModel(*bench, pca, data, reduced, clustering);
            frozen.save(save_model_path);
            std::printf("froze %zu-cluster space -> %s\n",
                        frozen.numClusters(), save_model_path.c_str());
        }
    }

    // Render each phase along a handful of informative axes.
    const std::vector<std::size_t> keys = {
        m::MixMemRead,        m::MixCondBranch, m::Ilp64,
        m::BranchTakenRate,   m::PpmGag12,      m::DataFootprint64B,
        m::GlobalLoadStride64, m::RegDegreeOfUse};
    std::vector<viz::AxisStats> axes;
    for (std::size_t idx : keys) {
        viz::AxisStats a;
        a.name = std::string(metrics::metricInfo(idx).name);
        a.min = 1e300;
        a.max = -1e300;
        double sum = 0.0;
        for (const auto &v : intervals) {
            a.min = std::min(a.min, v[idx]);
            a.max = std::max(a.max, v[idx]);
            sum += v[idx];
        }
        a.mean = sum / static_cast<double>(intervals.size());
        a.mean_minus_sd = a.min;
        a.mean_plus_sd = a.max;
        if (a.max <= a.min)
            a.max = a.min + 1.0;
        axes.push_back(a);
    }

    std::filesystem::create_directories("out");
    std::vector<viz::KiviatPanel> panels;
    for (std::size_t c = 0; c < centers.rows(); ++c) {
        if (sizes[c] == 0)
            continue;
        viz::KiviatPanel panel;
        const double weight = static_cast<double>(sizes[c]) /
                              static_cast<double>(intervals.size());
        char title[64];
        std::snprintf(title, sizeof title, "phase %zu: %.0f%% of run", c,
                      weight * 100.0);
        panel.title = title;
        for (std::size_t idx : keys)
            panel.values.push_back(intervals[reps[c]][idx]);
        panel.slices = {{bench->name, weight}};
        panels.push_back(panel);

        std::printf("\n%s\n",
                    viz::renderAsciiKiviat(panel, axes).c_str());
    }

    std::string file = "out/phases_" + bench->name + ".svg";
    viz::renderKiviatGrid(id + " phase behaviours", panels, axes, {})
        .writeFile(file);
    std::printf("wrote %s (%zu phases discovered over %zu intervals)\n",
                file.c_str(), panels.size(), intervals.size());
    return 0;
}
