/**
 * @file
 * Building a custom workload against the public API: compose a new
 * benchmark from library kernels with a phase schedule, run it through
 * the characterization pipeline, and compare its phases to a catalog
 * benchmark — the workflow a downstream user follows to ask "where does
 * MY application sit in the workload space?".
 */

#include <cmath>
#include <cstdio>

#include "core/characterize.hh"
#include "stats/matrix.hh"
#include "stats/pca.hh"
#include "workloads/kernels.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace mica;
    namespace m = metrics::midx;

    // 1. Define a new benchmark: an "image pipeline" alternating between
    // convolution, quantization and a histogram pass.
    std::vector<workloads::PhaseSpec> phases;
    phases.push_back({"conv2d",
                      [](workloads::ProgramBuilder &pb, stats::Rng &rng) {
                          workloads::ConvParams p;
                          p.rows = 24;
                          p.cols = 48;
                          p.k = 3;
                          p.fp = false;
                          return workloads::emitConv2D(pb, p, rng);
                      },
                      8});
    phases.push_back({"quantize",
                      [](workloads::ProgramBuilder &pb, stats::Rng &rng) {
                          return workloads::emitQuantize(pb, {}, rng);
                      },
                      10});
    phases.push_back({"histogram",
                      [](workloads::ProgramBuilder &pb, stats::Rng &rng) {
                          workloads::HistogramParams p;
                          p.input_bytes = 4096;
                          return workloads::emitHistogram(pb, p, rng);
                      },
                      6});
    const isa::Program mine =
        workloads::composeProgram("my_image_pipeline", 42, phases);
    std::printf("composed %s: %zu instructions, %zu KiB data\n\n",
                mine.name.c_str(), mine.code.size(),
                mine.data.size() / 1024);

    // 2. Characterize it and a likely relative from the catalog.
    const auto my_intervals = core::characterizeProgram(mine, 25000, 24);
    const workloads::SuiteCatalog catalog;
    const auto *relative = catalog.find("MediaBenchII/jpegenc");
    const auto rel_intervals =
        core::characterizeProgram(relative->build(0), 25000, 24);

    // 3. Compare mean characteristic vectors, and their distance in the
    // joint rescaled PCA space.
    stats::Matrix joint(0, 0);
    for (const auto &v : my_intervals)
        joint.appendRow(v);
    for (const auto &v : rel_intervals)
        joint.appendRow(v);
    const stats::Matrix reduced = stats::rescaledPcaSpace(joint);

    auto centroid = [&](std::size_t begin, std::size_t end) {
        std::vector<double> c(reduced.cols(), 0.0);
        for (std::size_t r = begin; r < end; ++r)
            for (std::size_t d = 0; d < reduced.cols(); ++d)
                c[d] += reduced(r, d);
        for (auto &x : c)
            x /= static_cast<double>(end - begin);
        return c;
    };
    const auto mine_center = centroid(0, my_intervals.size());
    const auto rel_center =
        centroid(my_intervals.size(), joint.rows());
    const double distance =
        stats::euclideanDistance(mine_center, rel_center);

    std::printf("%-22s %14s %14s\n", "characteristic",
                "my_pipeline", relative->name.c_str());
    for (std::size_t idx : {m::MixMemRead, m::MixIntMul, m::MixCondBranch,
                            m::Ilp64, m::DataFootprint64B,
                            m::BranchTakenRate}) {
        double a = 0.0, b = 0.0;
        for (const auto &v : my_intervals)
            a += v[idx];
        for (const auto &v : rel_intervals)
            b += v[idx];
        std::printf("%-22s %14.3f %14.3f\n",
                    std::string(metrics::metricInfo(idx).name).c_str(),
                    a / my_intervals.size(), b / rel_intervals.size());
    }
    std::printf("\ncentroid distance in the rescaled PCA space: %.2f\n",
                distance);
    std::printf(distance < 3.0
                    ? "=> behaviourally close: simulating %s likely "
                      "predicts this pipeline well.\n"
                    : "=> behaviourally distinct: this pipeline adds new "
                      "behaviour beyond %s.\n",
                relative->name.c_str());
    return 0;
}
