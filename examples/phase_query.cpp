/**
 * @file
 * Phase query: the paper's §5 question — "where does this workload fall
 * relative to an existing workload space?" — answered from a frozen
 * model artifact instead of a pipeline run. Opens the model behind the
 * unified model::ModelReader interface (--copy / --mmap pick the loader;
 * placement is bit-identical on either), characterizes a named catalog
 * benchmark at the model's interval length, and projects it through the
 * frozen normalize→PCA→rescale chain onto the frozen cluster centers. No
 * PCA or k-means runs.
 *
 * Usage:
 *   phase_query --model <path> [--copy|--mmap] <suite/name> [--intervals N]
 *   phase_query --model <path> --all          one summary line per catalog
 *                                             benchmark
 *   phase_query --model <path> --fig4         training coverage/uniqueness
 *                                             (Figures 4/6) from the model
 *                                             alone
 *   phase_query --demo                        self-contained: train a tiny
 *                                             model, save, reload, query
 */

#include <charconv>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ann/center_index.hh"
#include "core/characterize.hh"
#include "core/model_export.hh"
#include "core/pipeline.hh"
#include "model/reader.hh"
#include "model_cli.hh"
#include "workloads/workload.hh"

namespace {

using namespace mica;

/**
 * Characterize + project one benchmark; returns its assessment. When
 * `index` is non-null, placement goes through the approximate graph
 * search instead of the exact scan (--ann; provenance printed when
 * verbose).
 */
model::WorkloadAssessment
placeBenchmark(const model::ModelReader &m,
               const workloads::BenchmarkSpec &bench,
               std::uint32_t num_intervals, bool verbose,
               const ann::CenterIndex *index = nullptr)
{
    const model::PhaseModel &meta = m.meta();
    const auto vectors = core::characterizeProgram(
        bench.build(0), meta.interval_instructions, num_intervals);
    stats::Matrix data(0, 0);
    for (const auto &v : vectors)
        data.appendRow(v);
    stats::ProjectOptions popts;
    popts.finder = index;
    const model::Projection proj = m.placeBatch(data, popts);
    const model::WorkloadAssessment a = m.assessWorkload(proj);

    if (verbose) {
        if (index != nullptr)
            std::printf("placement path: %s (beam %zu)\n",
                        index->graphMode()
                            ? "approximate graph search"
                            : "exact scan (k below graph cutoff)",
                        index->defaultBeam());
        // Histogram: this workload's weight per frozen cluster.
        std::vector<std::size_t> rows_in_cluster(m.numClusters(), 0);
        for (std::size_t c : proj.assignment)
            ++rows_in_cluster[c];
        std::printf("\ncluster placement (%zu intervals):\n",
                    proj.assignment.size());
        for (std::size_t c = 0; c < m.numClusters(); ++c) {
            if (rows_in_cluster[c] == 0)
                continue;
            std::printf(
                "  cluster %3zu: %3zu intervals (%5.1f%%)  "
                "[training: %s, weight %.1f%%]\n",
                c, rows_in_cluster[c],
                100.0 * static_cast<double>(rows_in_cluster[c]) /
                    static_cast<double>(proj.assignment.size()),
                std::string(clusterKindName(meta.cluster_kinds[c]))
                    .c_str(),
                meta.clusterWeight(c) * 100.0);
        }
        std::printf("\ncoverage: %zu/%zu clusters (%.1f%%), %zu clusters "
                    "reach 90%% of the workload\n",
                    a.clusters_covered, m.numClusters(),
                    a.coverage_fraction * 100.0, a.clustersToCover(0.9));
        for (std::size_t s = 0; s < meta.suites.size(); ++s)
            if (a.exclusive_fraction[s] > 0.0)
                std::printf("  behaves exclusively like %-18s %5.1f%%\n",
                            meta.suites[s].c_str(),
                            a.exclusive_fraction[s] * 100.0);
        std::printf("  shared across training suites     %5.1f%%\n",
                    a.shared_fraction * 100.0);
        std::printf("  novel (no training rows nearby)   %5.1f%%\n",
                    a.novel_fraction * 100.0);
        std::printf("distance to assigned centers: mean %.3f, max %.3f\n",
                    a.mean_distance, a.max_distance);
    }
    return a;
}

int
runFig4(const model::ModelReader &m)
{
    const model::TrainingCoverage cov = m.trainingCoverage();
    std::printf("training coverage/uniqueness from the frozen model "
                "(k = %zu):\n", m.numClusters());
    for (std::size_t s = 0; s < cov.suites.size(); ++s) {
        const int bar = static_cast<int>(
            60.0 * static_cast<double>(cov.coverage[s]) /
            static_cast<double>(m.numClusters()));
        std::printf("%-18s %3zu clusters |%-60s| uniqueness %5.1f%%\n",
                    cov.suites[s].c_str(), cov.coverage[s],
                    std::string(static_cast<std::size_t>(bar), '#')
                        .c_str(),
                    cov.uniqueness[s] * 100.0);
    }
    return 0;
}

int
runAll(const model::ModelReader &m, std::uint32_t num_intervals,
       const ann::CenterIndex *index)
{
    const workloads::SuiteCatalog catalog;
    std::printf("%-26s %9s %9s %8s %8s %8s\n", "benchmark", "covered",
                "to-90%", "shared", "novel", "mean-d");
    for (const auto &bench : catalog.benchmarks()) {
        const model::WorkloadAssessment a =
            placeBenchmark(m, bench, num_intervals, false, index);
        std::printf("%-26s %6zu/%-2zu %9zu %7.1f%% %7.1f%% %8.3f\n",
                    bench.id().c_str(), a.clusters_covered,
                    m.numClusters(), a.clustersToCover(0.9),
                    a.shared_fraction * 100.0, a.novel_fraction * 100.0,
                    a.mean_distance);
    }
    return 0;
}

/**
 * Self-contained smoke path (used by ctest): train a tiny model on a few
 * catalog benchmarks' worth of intervals, save, reload through both
 * loaders, and place a benchmark — exercising the whole
 * save/open/project chain end to end.
 */
int
runDemo()
{
    core::ExperimentConfig cfg;
    cfg.interval_instructions = 2000;
    cfg.interval_scale = 0.02;
    cfg.samples_per_benchmark = 20;
    cfg.kmeans_k = 24;
    cfg.kmeans_restarts = 2;
    cfg.num_prominent = 12;
    cfg.threads = 4;
    cfg.cache_dir = "out/cache";
    cfg.model_path = "out/phase_query_demo.bin";

    std::printf("training a tiny model -> %s ...\n",
                cfg.model_path.c_str());
    (void)core::runFullExperiment(cfg);

    const auto reader = model::open(cfg.model_path);
    const workloads::SuiteCatalog catalog;
    const auto *bench = catalog.find("SPECint2006/astar");
    if (bench == nullptr) {
        std::fprintf(stderr, "demo benchmark missing from catalog\n");
        return 1;
    }
    std::printf("placing %s into the reloaded space (%s loader):\n",
                bench->id().c_str(),
                reader->zeroCopy() ? "zero-copy" : "copying");
    (void)placeBenchmark(*reader, *bench, 16, true);
    return 0;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: phase_query %s <suite/name> [--intervals N]\n"
        "                   [--ann] [--beam N]\n"
        "       phase_query %s --all [--intervals N] [--ann] [--beam N]\n"
        "       phase_query %s --fig4\n"
        "       phase_query --demo\n"
        "--ann places intervals through the approximate graph index\n"
        "(docs/ANN.md) instead of the exact center scan.\n",
        examples::kModelFlagsUsage, examples::kModelFlagsUsage,
        examples::kModelFlagsUsage);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    examples::ModelFlags flags;
    std::string target;
    std::uint32_t num_intervals = 40;
    bool all = false, fig4 = false, demo = false, use_ann = false;
    std::size_t beam = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (examples::consumeModelFlag(flags, argc, argv, i))
            continue;
        if (arg == "--intervals" && i + 1 < argc) {
            const std::string_view s = argv[++i];
            const auto [end, ec] = std::from_chars(
                s.data(), s.data() + s.size(), num_intervals);
            if (ec != std::errc{} || end != s.data() + s.size())
                return usage();
        }
        else if (arg == "--ann")
            use_ann = true;
        else if (arg == "--beam" && i + 1 < argc) {
            const std::string_view s = argv[++i];
            const auto [end, ec] =
                std::from_chars(s.data(), s.data() + s.size(), beam);
            if (ec != std::errc{} || end != s.data() + s.size() ||
                beam == 0)
                return usage();
        }
        else if (arg == "--all")
            all = true;
        else if (arg == "--fig4")
            fig4 = true;
        else if (arg == "--demo")
            demo = true;
        else if (!arg.empty() && arg[0] != '-' && target.empty())
            target = arg;
        else
            return usage();
    }
    if (demo)
        return runDemo();
    if (flags.path.empty() || (target.empty() && !all && !fig4))
        return usage();

    const auto reader = examples::openModelOrExit("phase_query", flags);
    const model::PhaseModel &meta = reader->meta();
    std::printf("model %s: %zu clusters, %zu PCs (%.1f%% variance), "
                "trained on %zu benchmarks / %zu suites, analysis key "
                "%016llx, %zu deltas\n",
                flags.path.c_str(), reader->numClusters(),
                reader->components(), meta.pca_explained * 100.0,
                meta.benchmark_ids.size(), meta.suites.size(),
                static_cast<unsigned long long>(meta.analysis_key),
                meta.deltas.size());

    // --ann: one index over the frozen centers serves every placement
    // below (the model never changes here, so it is built exactly once).
    std::unique_ptr<ann::CenterIndex> index;
    if (use_ann) {
        ann::BuildOptions bopts;
        if (beam > 0)
            bopts.beam = beam;
        index = std::make_unique<ann::CenterIndex>(
            ann::CenterIndex::build(reader->centers(), bopts));
        std::printf("ann index: %s over %zu centers (beam %zu)\n",
                    index->graphMode() ? "graph" : "exact fallback",
                    index->size(), index->defaultBeam());
    }

    if (fig4)
        return runFig4(*reader);
    if (all)
        return runAll(*reader, num_intervals, index.get());

    const workloads::SuiteCatalog catalog;
    const auto *bench = catalog.find(target);
    if (bench == nullptr) {
        std::fprintf(stderr, "unknown benchmark '%s' (ids look like %s)\n",
                     target.c_str(),
                     catalog.benchmarks().front().id().c_str());
        return 1;
    }
    std::printf("characterizing %s (%u x %llu-instruction intervals)...\n",
                bench->id().c_str(), num_intervals,
                static_cast<unsigned long long>(
                    meta.interval_instructions));
    (void)placeBenchmark(*reader, *bench, num_intervals, true,
                         index.get());
    return 0;
}
