/**
 * @file
 * mica_dump: the command-line front end a downstream user reaches for —
 * characterize a catalog benchmark or an assembly file and dump the
 * per-interval characteristics (CSV or a terminal summary), optionally
 * with a timing-model run and an execution trace.
 *
 * Usage:
 *   mica_dump list
 *       list all catalog benchmark ids
 *   mica_dump <suite/name | file.s> [options]
 *       --intervals N     intervals to characterize   (default 20)
 *       --length N        instructions per interval   (default 50000)
 *       --input N         catalog input index         (default 0)
 *       --csv FILE        write full 69-column CSV
 *       --timing          also run the cycle-approximate timing model
 *       --trace N         print the first N dynamic instructions
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "asm/assembler.hh"
#include "core/characterize.hh"
#include "viz/charts.hh"
#include "vm/cpu.hh"
#include "vm/timing.hh"
#include "vm/trace_logger.hh"
#include "workloads/workload.hh"

namespace {

using namespace mica;

int
usage()
{
    std::fprintf(stderr,
                 "usage: mica_dump list\n"
                 "       mica_dump <suite/name | file.s> [--intervals N] "
                 "[--length N]\n"
                 "                 [--input N] [--csv FILE] [--timing] "
                 "[--trace N]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();

    const std::string target = argv[1];
    const workloads::SuiteCatalog catalog;

    if (target == "list") {
        for (const auto &b : catalog.benchmarks())
            std::printf("%-28s inputs=%u intervals=%u\n", b.id().c_str(),
                        b.num_inputs, b.total_intervals);
        return 0;
    }

    std::uint32_t intervals = 20;
    std::uint64_t length = 50000;
    std::uint32_t input = 0;
    std::string csv_path;
    bool timing = false;
    std::uint64_t trace_lines = 0;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::exit(usage());
            }
            return argv[++i];
        };
        if (arg == "--intervals")
            intervals = static_cast<std::uint32_t>(std::atoi(next()));
        else if (arg == "--length")
            length = static_cast<std::uint64_t>(std::atoll(next()));
        else if (arg == "--input")
            input = static_cast<std::uint32_t>(std::atoi(next()));
        else if (arg == "--csv")
            csv_path = next();
        else if (arg == "--timing")
            timing = true;
        else if (arg == "--trace")
            trace_lines = static_cast<std::uint64_t>(std::atoll(next()));
        else
            return usage();
    }

    // Resolve the target: catalog id or assembly file.
    isa::Program program;
    if (const auto *bench = catalog.find(target)) {
        program = bench->build(input);
    } else if (target.size() > 2 &&
               target.substr(target.size() - 2) == ".s") {
        std::ifstream in(target);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", target.c_str());
            return 1;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        try {
            program = assembler::assemble(buffer.str(), target);
        } catch (const assembler::AsmError &e) {
            std::fprintf(stderr, "%s: %s\n", target.c_str(), e.what());
            return 1;
        }
    } else {
        std::fprintf(stderr,
                     "'%s' is neither a catalog id nor an .s file "
                     "(try 'mica_dump list')\n",
                     target.c_str());
        return 1;
    }

    if (trace_lines > 0) {
        vm::Cpu cpu(program);
        vm::TraceLogger logger(std::cout, trace_lines);
        (void)cpu.run(trace_lines, &logger);
        std::printf("\n");
    }

    const auto vectors =
        core::characterizeProgram(program, length, intervals);
    std::printf("%s: %zu intervals x %llu instructions\n\n",
                program.name.c_str(), vectors.size(),
                static_cast<unsigned long long>(length));

    namespace m = metrics::midx;
    std::printf("%-9s %8s %8s %8s %8s %8s %8s\n", "interval", "mem_rd",
                "mem_wr", "branch", "ilp_64", "ppm_12", "data64B");
    for (std::size_t i = 0; i < vectors.size(); ++i) {
        const auto &v = vectors[i];
        std::printf("%-9zu %8.3f %8.3f %8.3f %8.2f %8.3f %8.0f\n", i,
                    v[m::MixMemRead], v[m::MixMemWrite],
                    v[m::MixCondBranch], v[m::Ilp64], v[m::PpmGag12],
                    v[m::DataFootprint64B]);
    }

    if (timing) {
        vm::Cpu cpu(program);
        vm::TimingModel model;
        (void)cpu.run(length * intervals, &model);
        const auto &stats = model.stats();
        std::printf("\ntiming model: CPI %.2f | L1D miss %.2f%% | "
                    "L1I miss %.2f%% | branch miss %.2f%%\n",
                    stats.cpi(), model.l1d().missRate() * 100.0,
                    model.l1i().missRate() * 100.0,
                    stats.branchMissRate() * 100.0);
    }

    if (!csv_path.empty()) {
        std::vector<std::string> header{"interval"};
        for (std::size_t c = 0; c < metrics::kNumCharacteristics; ++c)
            header.emplace_back(metrics::metricInfo(c).name);
        std::vector<std::vector<std::string>> rows;
        for (std::size_t i = 0; i < vectors.size(); ++i) {
            std::vector<std::string> row{std::to_string(i)};
            for (double v : vectors[i])
                row.push_back(std::to_string(v));
            rows.push_back(std::move(row));
        }
        viz::writeCsv(csv_path, header, rows);
        std::printf("\nwrote %s\n", csv_path.c_str());
    }
    return 0;
}
