/**
 * @file
 * Suite comparison in miniature: run the full methodology (characterize,
 * sample, PCA, cluster, compare) at a reduced operating point and print
 * the coverage / diversity / uniqueness verdict for every suite — the
 * paper's section 5 in one command.
 *
 * Usage: compare_suites [samples_per_benchmark] (default 40)
 */

#include <cstdio>
#include <cstdlib>

#include "core/pipeline.hh"

namespace {

/** Prints a line every few characterized benchmarks. */
struct CoarseProgress final : mica::core::PipelineObserver
{
    void
    onStage(const mica::core::StageEvent &event) override
    {
        if (event.kind != mica::core::StageEvent::Kind::Progress)
            return;
        if (event.done % 11 == 0 || event.done == event.total)
            std::printf("  characterized %zu/%zu benchmarks\n", event.done,
                        event.total);
    }
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace mica;

    core::ExperimentConfig cfg;
    cfg.interval_instructions = 20000;
    cfg.interval_scale = 0.2;
    cfg.samples_per_benchmark =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 40;
    cfg.kmeans_k = 120;
    cfg.num_prominent = 40;
    cfg.kmeans_restarts = 2;
    cfg.cache_dir.clear(); // always run live in this example
    cfg.threads = 0;       // all cores; results are identical regardless

    std::printf("running the phase-level methodology on all 77 "
                "benchmarks (%u samples each)...\n",
                cfg.samples_per_benchmark);
    CoarseProgress progress;
    const auto out = core::runFullExperiment(cfg, &progress);

    std::printf("\nPCA kept %zu components (%.1f%% of variance); "
                "top-%zu phases cover %.1f%% of execution\n\n",
                out.analysis.pca_components,
                out.analysis.pca_explained * 100.0,
                out.analysis.num_prominent,
                out.analysis.prominentCoverage() * 100.0);

    std::printf("%-14s %10s %12s %12s\n", "suite", "coverage",
                "clusters@90%", "uniqueness");
    const auto &cmp = out.comparison;
    for (std::size_t s = 0; s < cmp.suites.size(); ++s)
        std::printf("%-14s %10zu %12zu %11.1f%%\n", cmp.suites[s].c_str(),
                    cmp.coverage[s], cmp.clustersToCover(s, 0.9),
                    cmp.uniqueness[s] * 100.0);

    std::printf("\nreading the table like the paper does:\n"
                " - general-purpose suites (SPEC CPU) cover the most "
                "clusters;\n"
                " - domain-specific suites need few clusters to reach "
                "90%% (low diversity);\n"
                " - BioPerf stands out with the largest unique "
                "fraction.\n");
    return 0;
}
