#include "asm/assembler.hh"

#include <cctype>
#include <cstring>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

namespace mica::assembler {

using isa::Format;
using isa::Instruction;
using isa::Opcode;

namespace {

/** A tokenized source statement. */
struct Statement
{
    int line = 0;
    std::vector<std::string> labels; ///< labels defined on this line
    std::string head;                ///< mnemonic or directive (maybe empty)
    std::vector<std::string> args;   ///< comma-separated operand tokens
};

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.';
}

/** Split a line into labels, head token and comma-separated args. */
Statement
tokenize(std::string_view line, int line_no)
{
    Statement st;
    st.line = line_no;

    // Strip comments.
    for (std::size_t i = 0; i < line.size(); ++i) {
        if (line[i] == ';' || line[i] == '#') {
            line = line.substr(0, i);
            break;
        }
    }

    std::size_t pos = 0;
    auto skip_ws = [&]() {
        while (pos < line.size() &&
               std::isspace(static_cast<unsigned char>(line[pos])))
            ++pos;
    };

    // Leading labels: IDENT ':'
    for (;;) {
        skip_ws();
        std::size_t start = pos;
        while (pos < line.size() && isIdentChar(line[pos]))
            ++pos;
        if (pos > start && pos < line.size() && line[pos] == ':') {
            st.labels.emplace_back(line.substr(start, pos - start));
            ++pos; // consume ':'
        } else {
            pos = start;
            break;
        }
    }

    skip_ws();
    std::size_t head_start = pos;
    while (pos < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[pos])))
        ++pos;
    st.head = toLower(line.substr(head_start, pos - head_start));

    // Remaining operands: split on commas, keep "imm(reg)" tokens intact.
    std::string rest(line.substr(pos));
    std::string current;
    for (char c : rest) {
        if (c == ',') {
            st.args.push_back(current);
            current.clear();
        } else {
            current += c;
        }
    }
    if (!current.empty())
        st.args.push_back(current);
    for (auto &arg : st.args) {
        // Trim whitespace.
        std::size_t b = 0, e = arg.size();
        while (b < e && std::isspace(static_cast<unsigned char>(arg[b])))
            ++b;
        while (e > b && std::isspace(static_cast<unsigned char>(arg[e - 1])))
            --e;
        arg = arg.substr(b, e - b);
    }
    while (!st.args.empty() && st.args.back().empty())
        st.args.pop_back();
    return st;
}

/** Symbol table entry. */
struct Symbol
{
    std::uint64_t address = 0;
    bool is_code = false;
};

class Assembler
{
  public:
    explicit Assembler(std::string name)
    {
        program_.name = std::move(name);
    }

    isa::Program
    run(std::string_view source)
    {
        std::vector<Statement> statements;
        {
            std::istringstream is{std::string(source)};
            std::string line;
            int line_no = 0;
            while (std::getline(is, line)) {
                ++line_no;
                Statement st = tokenize(line, line_no);
                if (st.labels.empty() && st.head.empty())
                    continue;
                statements.push_back(std::move(st));
            }
        }

        // Pass 1: lay out segments and record label addresses.
        firstPass(statements);
        // Pass 2: emit.
        secondPass(statements);
        return std::move(program_);
    }

  private:
    enum class Section { Text, Data };

    void
    firstPass(const std::vector<Statement> &statements)
    {
        Section section = Section::Text;
        std::size_t code_count = 0;
        std::size_t data_size = 0;
        for (const auto &st : statements) {
            for (const auto &label : st.labels) {
                Symbol sym;
                sym.is_code = section == Section::Text;
                sym.address = sym.is_code
                    ? program_.code_base + code_count * isa::kInstrBytes
                    : program_.data_base + data_size;
                if (!symbols_.emplace(label, sym).second)
                    throw AsmError(st.line, "duplicate label '" + label +
                                            "'");
            }
            if (st.head.empty())
                continue;
            if (st.head == ".text") {
                section = Section::Text;
            } else if (st.head == ".data") {
                section = Section::Data;
            } else if (st.head[0] == '.') {
                if (section != Section::Data)
                    throw AsmError(st.line,
                                   "data directive outside .data section");
                data_size += directiveSize(st);
            } else {
                if (section != Section::Text)
                    throw AsmError(st.line, "instruction in .data section");
                ++code_count;
            }
        }
    }

    std::size_t
    directiveSize(const Statement &st) const
    {
        if (st.head == ".word64" || st.head == ".double")
            return 8 * std::max<std::size_t>(st.args.size(), 0);
        if (st.head == ".word32")
            return 4 * st.args.size();
        if (st.head == ".byte")
            return st.args.size();
        if (st.head == ".zero") {
            if (st.args.size() != 1)
                throw AsmError(st.line, ".zero needs a size argument");
            return static_cast<std::size_t>(parseNumber(st.args[0],
                                                        st.line));
        }
        throw AsmError(st.line, "unknown directive '" + st.head + "'");
    }

    void
    secondPass(const std::vector<Statement> &statements)
    {
        Section section = Section::Text;
        for (const auto &st : statements) {
            if (st.head.empty())
                continue;
            if (st.head == ".text") {
                section = Section::Text;
            } else if (st.head == ".data") {
                section = Section::Data;
            } else if (st.head[0] == '.') {
                emitData(st);
            } else {
                (void)section;
                emitInstruction(st);
            }
        }
    }

    void
    emitData(const Statement &st)
    {
        auto push64 = [&](std::uint64_t v) {
            for (int i = 0; i < 8; ++i)
                program_.data.push_back(
                    static_cast<std::uint8_t>(v >> (8 * i)));
        };
        if (st.head == ".word64") {
            for (const auto &arg : st.args)
                push64(static_cast<std::uint64_t>(
                    resolveValue(arg, st.line)));
        } else if (st.head == ".word32") {
            for (const auto &arg : st.args) {
                const auto v = static_cast<std::uint32_t>(
                    resolveValue(arg, st.line));
                for (int i = 0; i < 4; ++i)
                    program_.data.push_back(
                        static_cast<std::uint8_t>(v >> (8 * i)));
            }
        } else if (st.head == ".byte") {
            for (const auto &arg : st.args)
                program_.data.push_back(static_cast<std::uint8_t>(
                    resolveValue(arg, st.line)));
        } else if (st.head == ".double") {
            for (const auto &arg : st.args) {
                double d = 0.0;
                try {
                    d = std::stod(arg);
                } catch (const std::exception &) {
                    throw AsmError(st.line, "bad double literal '" + arg +
                                            "'");
                }
                std::uint64_t bits;
                std::memcpy(&bits, &d, sizeof(bits));
                push64(bits);
            }
        } else if (st.head == ".zero") {
            const auto n = static_cast<std::size_t>(
                parseNumber(st.args[0], st.line));
            program_.data.insert(program_.data.end(), n, 0);
        } else {
            throw AsmError(st.line, "unknown directive '" + st.head + "'");
        }
    }

    static std::optional<std::uint8_t>
    parseIntReg(std::string_view tok)
    {
        const std::string t = toLower(tok);
        if (t == "zero")
            return isa::kRegZero;
        if (t == "ra")
            return isa::kRegRa;
        if (t == "sp")
            return isa::kRegSp;
        if (t.size() >= 2 && t[0] == 'x') {
            int idx = 0;
            for (std::size_t i = 1; i < t.size(); ++i) {
                if (!std::isdigit(static_cast<unsigned char>(t[i])))
                    return std::nullopt;
                idx = idx * 10 + (t[i] - '0');
            }
            if (idx < isa::kNumIntRegs)
                return static_cast<std::uint8_t>(idx);
        }
        return std::nullopt;
    }

    static std::optional<std::uint8_t>
    parseFpReg(std::string_view tok)
    {
        const std::string t = toLower(tok);
        if (t.size() >= 2 && t[0] == 'f' &&
            std::isdigit(static_cast<unsigned char>(t[1]))) {
            int idx = 0;
            for (std::size_t i = 1; i < t.size(); ++i) {
                if (!std::isdigit(static_cast<unsigned char>(t[i])))
                    return std::nullopt;
                idx = idx * 10 + (t[i] - '0');
            }
            if (idx < isa::kNumFpRegs)
                return static_cast<std::uint8_t>(idx);
        }
        return std::nullopt;
    }

    static std::int64_t
    parseNumber(std::string_view tok, int line)
    {
        if (tok.empty())
            throw AsmError(line, "expected number");
        const std::string s(tok);
        try {
            std::size_t used = 0;
            const std::int64_t v = std::stoll(s, &used, 0);
            if (used != s.size())
                throw AsmError(line, "trailing junk in number '" + s + "'");
            return v;
        } catch (const AsmError &) {
            throw;
        } catch (const std::out_of_range &) {
            // Values in (INT64_MAX, UINT64_MAX] are accepted as their
            // two's-complement bit pattern (e.g. .word64
            // 0x8000000000000000).
            try {
                std::size_t used = 0;
                const std::uint64_t v = std::stoull(s, &used, 0);
                if (used != s.size())
                    throw AsmError(line,
                                   "trailing junk in number '" + s + "'");
                return static_cast<std::int64_t>(v);
            } catch (const AsmError &) {
                throw;
            } catch (const std::exception &) {
                throw AsmError(line, "bad number '" + s + "'");
            }
        } catch (const std::exception &) {
            throw AsmError(line, "bad number '" + s + "'");
        }
    }

    /** A number literal or a symbol (absolute address). */
    std::int64_t
    resolveValue(std::string_view tok, int line) const
    {
        if (!tok.empty() &&
            (std::isalpha(static_cast<unsigned char>(tok[0])) ||
             tok[0] == '_')) {
            auto it = symbols_.find(std::string(tok));
            if (it == symbols_.end())
                throw AsmError(line,
                               "unknown symbol '" + std::string(tok) + "'");
            return static_cast<std::int64_t>(it->second.address);
        }
        return parseNumber(tok, line);
    }

    /** A branch/jal target: label -> pc-relative, else numeric offset. */
    std::int64_t
    resolveTarget(std::string_view tok, std::uint64_t pc, int line) const
    {
        if (!tok.empty() &&
            (std::isalpha(static_cast<unsigned char>(tok[0])) ||
             tok[0] == '_')) {
            auto it = symbols_.find(std::string(tok));
            if (it == symbols_.end())
                throw AsmError(line,
                               "unknown symbol '" + std::string(tok) + "'");
            if (!it->second.is_code)
                throw AsmError(line, "branch target '" + std::string(tok) +
                                     "' is not a code label");
            return static_cast<std::int64_t>(it->second.address) -
                   static_cast<std::int64_t>(pc);
        }
        return parseNumber(tok, line);
    }

    /** Parse "imm(reg)" or "symbol(reg)" memory operands. */
    void
    parseMemOperand(const std::string &tok, int line, std::int64_t &imm,
                    std::uint8_t &base) const
    {
        const std::size_t open = tok.find('(');
        const std::size_t close = tok.find(')');
        if (open == std::string::npos || close == std::string::npos ||
            close < open)
            throw AsmError(line, "expected imm(reg), got '" + tok + "'");
        const std::string imm_tok = tok.substr(0, open);
        const std::string reg_tok = tok.substr(open + 1, close - open - 1);
        imm = imm_tok.empty() ? 0 : resolveValue(imm_tok, line);
        auto reg = parseIntReg(reg_tok);
        if (!reg)
            throw AsmError(line, "bad base register '" + reg_tok + "'");
        base = *reg;
    }

    std::uint8_t
    wantIntReg(const Statement &st, std::size_t i) const
    {
        if (i >= st.args.size())
            throw AsmError(st.line, "missing operand");
        auto reg = parseIntReg(st.args[i]);
        if (!reg)
            throw AsmError(st.line, "expected integer register, got '" +
                                    st.args[i] + "'");
        return *reg;
    }

    std::uint8_t
    wantFpReg(const Statement &st, std::size_t i) const
    {
        if (i >= st.args.size())
            throw AsmError(st.line, "missing operand");
        auto reg = parseFpReg(st.args[i]);
        if (!reg)
            throw AsmError(st.line, "expected fp register, got '" +
                                    st.args[i] + "'");
        return *reg;
    }

    const std::string &
    wantArg(const Statement &st, std::size_t i) const
    {
        if (i >= st.args.size())
            throw AsmError(st.line, "missing operand");
        return st.args[i];
    }

    void
    checkArity(const Statement &st, std::size_t n) const
    {
        if (st.args.size() != n)
            throw AsmError(st.line, "expected " + std::to_string(n) +
                                    " operands, got " +
                                    std::to_string(st.args.size()));
    }

    void
    emitInstruction(const Statement &st)
    {
        const Opcode op = isa::opcodeFromMnemonic(st.head);
        if (op == Opcode::NumOpcodes)
            throw AsmError(st.line, "unknown mnemonic '" + st.head + "'");

        const std::uint64_t pc =
            program_.code_base + program_.code.size() * isa::kInstrBytes;
        Instruction in;
        in.op = op;

        switch (isa::opcodeInfo(op).format) {
          case Format::None:
            checkArity(st, 0);
            break;
          case Format::RRR:
            checkArity(st, 3);
            in.rd = wantIntReg(st, 0);
            in.rs1 = wantIntReg(st, 1);
            in.rs2 = wantIntReg(st, 2);
            break;
          case Format::RRI:
            checkArity(st, 3);
            in.rd = wantIntReg(st, 0);
            in.rs1 = wantIntReg(st, 1);
            in.imm = resolveValue(wantArg(st, 2), st.line);
            break;
          case Format::Load:
            checkArity(st, 2);
            in.rd = wantIntReg(st, 0);
            parseMemOperand(wantArg(st, 1), st.line, in.imm, in.rs1);
            break;
          case Format::Store:
            checkArity(st, 2);
            in.rs2 = wantIntReg(st, 0);
            parseMemOperand(wantArg(st, 1), st.line, in.imm, in.rs1);
            break;
          case Format::FLoad:
            checkArity(st, 2);
            in.rd = wantFpReg(st, 0);
            parseMemOperand(wantArg(st, 1), st.line, in.imm, in.rs1);
            break;
          case Format::FStore:
            checkArity(st, 2);
            in.rs2 = wantFpReg(st, 0);
            parseMemOperand(wantArg(st, 1), st.line, in.imm, in.rs1);
            break;
          case Format::FRRR:
          case Format::FMA:
            checkArity(st, 3);
            in.rd = wantFpReg(st, 0);
            in.rs1 = wantFpReg(st, 1);
            in.rs2 = wantFpReg(st, 2);
            break;
          case Format::FRR:
            checkArity(st, 2);
            in.rd = wantFpReg(st, 0);
            in.rs1 = wantFpReg(st, 1);
            break;
          case Format::FCmp:
            checkArity(st, 3);
            in.rd = wantIntReg(st, 0);
            in.rs1 = wantFpReg(st, 1);
            in.rs2 = wantFpReg(st, 2);
            break;
          case Format::CvtIF:
            checkArity(st, 2);
            in.rd = wantFpReg(st, 0);
            in.rs1 = wantIntReg(st, 1);
            break;
          case Format::CvtFI:
            checkArity(st, 2);
            in.rd = wantIntReg(st, 0);
            in.rs1 = wantFpReg(st, 1);
            break;
          case Format::Branch:
            checkArity(st, 3);
            in.rs1 = wantIntReg(st, 0);
            in.rs2 = wantIntReg(st, 1);
            in.imm = resolveTarget(wantArg(st, 2), pc, st.line);
            break;
          case Format::Jal:
            checkArity(st, 2);
            in.rd = wantIntReg(st, 0);
            in.imm = resolveTarget(wantArg(st, 1), pc, st.line);
            break;
          case Format::Jalr:
            checkArity(st, 3);
            in.rd = wantIntReg(st, 0);
            in.rs1 = wantIntReg(st, 1);
            in.imm = resolveValue(wantArg(st, 2), st.line);
            break;
        }

        // Validate field ranges eagerly so the error carries a line number.
        try {
            (void)isa::encode(in);
        } catch (const std::exception &e) {
            throw AsmError(st.line, e.what());
        }
        program_.code.push_back(in);
    }

    isa::Program program_;
    std::map<std::string, Symbol> symbols_;
};

} // namespace

isa::Program
assemble(std::string_view source, std::string name)
{
    return Assembler(std::move(name)).run(source);
}

std::string
disassembleProgram(const isa::Program &program)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < program.code.size(); ++i) {
        os << std::hex << "0x" << program.pcOf(i) << std::dec << ":  "
           << program.code[i].disassemble() << "\n";
    }
    return os.str();
}

} // namespace mica::assembler
