/**
 * @file
 * Two-pass text assembler for SRISC.
 *
 * The assembler exists so that examples, tests and downstream users can
 * write small workloads by hand instead of going through the programmatic
 * ProgramBuilder. Syntax (one statement per line, ';' or '#' comments):
 *
 *     .data
 *     table:  .word64 1, 2, 3
 *             .zero   4096
 *     pi:     .double 3.141592653589793
 *     .text
 *     main:   addi  x5, x0, 10
 *     loop:   addi  x5, x5, -1
 *             ld    x6, table(x0)
 *             bne   x5, x0, loop
 *             halt
 *
 * Labels defined in .text resolve to instruction addresses; labels defined
 * in .data resolve to absolute data addresses. Branch and jal targets take
 * either a numeric byte offset or a code label (converted to pc-relative).
 * Immediate operands take numbers or data labels (absolute).
 */

#ifndef MICAPHASE_ASM_ASSEMBLER_HH
#define MICAPHASE_ASM_ASSEMBLER_HH

#include <stdexcept>
#include <string>
#include <string_view>

#include "isa/program.hh"

namespace mica::assembler {

/** Error raised for malformed assembly; message includes the line number. */
class AsmError : public std::runtime_error
{
  public:
    AsmError(int line, const std::string &message)
        : std::runtime_error("line " + std::to_string(line) + ": " +
                             message),
          line_(line)
    {
    }

    [[nodiscard]] int line() const { return line_; }

  private:
    int line_;
};

/**
 * Assemble SRISC source text into a Program.
 *
 * @param source  full program text
 * @param name    program name recorded in the image
 * @throws AsmError on any syntax or range error
 */
[[nodiscard]] isa::Program assemble(std::string_view source,
                                    std::string name = "asm");

/** Disassemble an entire program to text (one instruction per line). */
[[nodiscard]] std::string disassembleProgram(const isa::Program &program);

} // namespace mica::assembler

#endif // MICAPHASE_ASM_ASSEMBLER_HH
