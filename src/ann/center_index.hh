/**
 * @file
 * Graph-based approximate nearest-center index: sublinear placement and
 * large-k Lloyd assignment (ROADMAP item 2).
 *
 * Every serving and clustering hot path bottoms out in
 * `stats::nearestCenter`, an exact scan linear in k. `CenterIndex`
 * replaces that scan — behind explicit opt-ins that default off — with a
 * beam search over a small k-NN neighborhood graph built NNDescent-style
 * over the centers: seed from the best center in a packed strided sample
 * (one streaming scan over a cache-dense copy — a two-level hierarchy in
 * miniature), repeatedly expand the closest unexpanded candidate's
 * neighbors, stop when the closest candidate cannot improve a full
 * result pool. Cost per query is O(sqrt(k) + beam · degree) distance
 * evaluations instead of O(k).
 *
 * ## Determinism contract
 *
 * Construction and search are deterministic and thread-count-invariant,
 * like everything else in this codebase:
 *
 *  - The initial candidate lists are drawn from per-node `stats::Rng`
 *    streams seeded by (build seed, node index) only.
 *  - Refinement rounds are synchronous: every node's new neighbor list
 *    is a pure function of the *previous* round's graph (double
 *    buffered), nodes are processed in fixed blocks, and the
 *    convergence reduction runs in block order. The thread count only
 *    changes wall-clock time.
 *  - Neighbor lists and search pools are ordered by (distance, index)
 *    lexicographically, so ties resolve identically everywhere and the
 *    lowest index wins — the same tie contract as the exact scan.
 *  - Search state (visited marks) lives in per-thread scratch keyed by
 *    a unique index id; queries on different threads never share
 *    mutable state, so one index may serve row-parallel callers.
 *
 * Every distance the search reports is the exact `stats::squaredDistance`
 * to the reported center (the same dispatched kernel the exact scan
 * uses), so whenever the search finds the true nearest center its
 * (index, dist2) result is bitwise equal to `stats::nearestCenter`'s.
 * When it does not, the error is bounded and measured: the bench sweep
 * (`BENCH_ann_placement.json`) records recall@1 against the exact scan
 * and CI hard-gates the floor. See docs/ANN.md.
 *
 * Below `BuildOptions::min_graph_size` centers the index holds no graph
 * at all and `find` simply delegates to the exact scan — at small k the
 * scan is already faster than graph traversal, and this keeps tiny-k
 * callers exact by construction.
 */

#ifndef MICAPHASE_ANN_CENTER_INDEX_HH
#define MICAPHASE_ANN_CENTER_INDEX_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "stats/distance.hh"
#include "stats/matrix.hh"

namespace mica::ann {

/** Construction and default-query knobs for CenterIndex. */
struct BuildOptions
{
    /** Neighbors kept per node (graph out-degree). */
    std::size_t degree = 16;
    /** Cap on NNDescent refinement rounds (stops early at convergence). */
    int max_rounds = 12;
    /**
     * Occlusion-pruning slack (HNSW/DiskANN heuristic): an edge to c is
     * dropped when some closer kept neighbor j has
     * d2(c, j) <= d2(i, c) / alpha². 1.0 is the strict relative-
     * neighborhood rule, larger keeps more edges; <= 0 disables
     * pruning and freezes the raw k-NN lists.
     */
    double prune_alpha = 0.0;
    /**
     * At or below this many centers the index skips graph construction
     * and `find` is the exact scan (bit-identical to nearestCenter).
     * The default keeps the paper-scale k=300 regime exact; tests lower
     * it to force the graph path on small inputs.
     */
    std::size_t min_graph_size = 1024;
    /** Default beam width for find(); search() can override per call. */
    std::size_t beam = 10;
    /**
     * Floor on the packed coarse seed sample (the actual size is
     * max(entry_points, floor(sqrt(k))), capped at k): every search
     * starts from the best center in a contiguous strided sample of
     * the catalog, found with the streaming exact-scan kernel.
     */
    std::size_t entry_points = 16;
    /** Seed for the initial random candidate lists. */
    std::uint64_t seed = 0x5eedC0DEULL;
    /** Build threads (0 = hardware concurrency; result is invariant). */
    unsigned threads = 0;
};

/**
 * The k-NN-graph index (see file comment). Holds a non-owning view of
 * the center matrix: the owner must keep it alive, and may mutate the
 * center *values* in place (Lloyd does) — distances stay exact against
 * the current values; only the graph topology goes stale, which the
 * owner detects via lengthScale() and handles by rebuilding.
 */
class CenterIndex final : public stats::NearestCenterFinder
{
  public:
    /**
     * Build an index over `centers` (k x m). Deterministic: the result
     * depends only on the center bytes and `opts` (never on threads).
     */
    [[nodiscard]] static CenterIndex build(stats::MatrixView centers,
                                           const BuildOptions &opts = {});

    /** stats::NearestCenterFinder: search with the default beam. */
    [[nodiscard]] stats::NearestCenter
    find(std::span<const double> point,
         stats::DistanceCounters *counters = nullptr) const override;

    /**
     * Mean graph edge length at build time (Euclidean), the scale
     * against which center drift is compared for rebuild decisions;
     * 0 in exact-fallback mode.
     */
    [[nodiscard]] double lengthScale() const override
    {
        return mean_edge_;
    }

    /**
     * Beam search with an explicit beam width (clamped to [1, k]).
     * Wider beams trade throughput for recall; beam >= k degenerates
     * to an exhaustive (exact) traversal of the connected component.
     */
    [[nodiscard]] stats::NearestCenter
    search(std::span<const double> point, std::size_t beam,
           stats::DistanceCounters *counters = nullptr) const;

    /** False when k <= min_graph_size: find() is the exact scan. */
    [[nodiscard]] bool graphMode() const { return graph_mode_; }

    /** Number of centers indexed. */
    [[nodiscard]] std::size_t size() const { return centers_.rows(); }

    /** Out-degree actually used (min(opts.degree, k-1)); 0 in fallback. */
    [[nodiscard]] std::size_t degree() const { return degree_; }

    /** Default beam width used by find(). */
    [[nodiscard]] std::size_t defaultBeam() const { return beam_; }

    /** Refinement rounds the build actually ran (0 in fallback mode). */
    [[nodiscard]] int buildRounds() const { return rounds_; }

    /**
     * Symmetrized neighbor list of one node, (distance, index)-sorted:
     * the union of the node's k-NN list and every node that lists it,
     * capped at 2*degree(). Symmetrization is what keeps low-in-degree
     * nodes reachable from any entry point, so recall does not depend
     * on the directed graph's in-degree skew.
     */
    [[nodiscard]] std::span<const std::uint32_t>
    neighbors(std::size_t node) const
    {
        return {adjacency_.data() + adj_offset_[node],
                adj_offset_[node + 1] - adj_offset_[node]};
    }

    /** The center matrix this index was built over (non-owning). */
    [[nodiscard]] stats::MatrixView centers() const { return centers_; }

    /**
     * Owner-managed version tag (e.g. the LiveModel generation that the
     * indexed centers belong to); 0 until set. Lets serving code assert
     * it never pairs a snapshot with a stale index.
     */
    [[nodiscard]] std::uint64_t generation() const { return generation_; }
    void setGeneration(std::uint64_t g) { generation_ = g; }

  private:
    CenterIndex() = default;

    stats::MatrixView centers_;
    std::vector<std::uint32_t> adjacency_;  ///< CSR neighbor ids
    std::vector<std::uint32_t> adj_offset_; ///< k+1 CSR offsets
    /**
     * Packed strided sample of the centers (an owned copy, cache-dense)
     * plus the catalog index of each sampled row. The search seeds its
     * beam from the sample's nearest row via one streaming scan — a
     * two-level hierarchy in miniature. Under in-place center drift the
     * copy goes stale like the graph topology does: seed quality
     * degrades, reported distances stay exact (they are recomputed
     * against the live rows), and the owner's drift-triggered rebuild
     * refreshes it.
     */
    stats::Matrix coarse_;
    std::vector<std::uint32_t> coarse_ids_;
    std::size_t degree_ = 0;
    std::size_t beam_ = 0;
    std::size_t entry_points_ = 0;
    bool graph_mode_ = false;
    int rounds_ = 0;
    double mean_edge_ = 0.0;
    std::uint64_t generation_ = 0;
    std::uint64_t scratch_id_ = 0; ///< unique per index, keys search scratch
};

/**
 * Adapt BuildOptions into the factory interface `KMeans::Options::ann`
 * consumes: each call to build() constructs a fresh CenterIndex over the
 * given centers (opts.threads is overridden by the caller's choice).
 */
[[nodiscard]] std::shared_ptr<const stats::NearestCenterFinderFactory>
indexFactory(const BuildOptions &opts = {});

} // namespace mica::ann

#endif // MICAPHASE_ANN_CENTER_INDEX_HH
