#include "ann/center_index.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "obs/trace.hh"
#include "stats/rng.hh"
#include "stats/simd.hh"
#include "util/thread_pool.hh"

namespace mica::ann {

namespace {

/**
 * Nodes per build block. Boundaries depend only on k, never on the
 * thread count, and the convergence reduction runs in block order — the
 * standard determinism recipe.
 */
constexpr std::size_t kNodeBlock = 256;

/** A (distance², node) pair; all orderings are lexicographic on it. */
struct Cand
{
    double d2;
    std::uint32_t idx;
};

/**
 * The one total order used everywhere (neighbor lists, search pools):
 * distance first, lowest index breaking exact ties. This is what makes
 * the exact scan's lowest-index tie contract carry over to the
 * approximate path.
 */
[[nodiscard]] inline bool
candLess(const Cand &a, const Cand &b)
{
    return a.d2 < b.d2 || (a.d2 == b.d2 && a.idx < b.idx);
}

/**
 * Per-thread search scratch. The visited marks are epoch-stamped so a
 * query costs O(evaluations), not O(k), to reset; the stamp array is
 * rebuilt whenever the thread switches to a different index (keyed by a
 * process-unique id, never a reusable pointer). Purely thread-private,
 * so concurrent queries on one shared index never race.
 */
struct SearchScratch
{
    std::uint64_t owner = 0;
    std::uint32_t epoch = 0;
    std::vector<std::uint32_t> stamp;
    std::vector<Cand> pool; ///< (d2, idx)-sorted best-so-far, size <= beam
    std::vector<std::uint8_t> expanded; ///< parallel to pool, 1 = expanded
    std::vector<std::uint32_t> batch;   ///< gathered unvisited neighbors
    std::vector<double> dists;          ///< batch kernel output, same order
};

thread_local SearchScratch tl_scratch;

} // namespace

CenterIndex
CenterIndex::build(stats::MatrixView centers, const BuildOptions &opts)
{
    static std::atomic<std::uint64_t> next_scratch_id{1};

    CenterIndex idx;
    idx.centers_ = centers;
    idx.beam_ = std::max<std::size_t>(std::size_t{1}, opts.beam);
    idx.entry_points_ = std::max<std::size_t>(std::size_t{1},
                                              opts.entry_points);
    idx.scratch_id_ =
        next_scratch_id.fetch_add(1, std::memory_order_relaxed);

    const std::size_t k = centers.rows();
    idx.graph_mode_ = k > opts.min_graph_size && k >= 2 && opts.degree > 0;
    if (!idx.graph_mode_)
        return idx; // find() delegates to the exact scan

    const obs::Span build_span("ann.build", "ann");
    const std::size_t R = std::min(opts.degree, k - 1);
    idx.degree_ = R;
    const std::size_t blocks = (k + kNodeBlock - 1) / kNodeBlock;
    const unsigned threads = util::resolveThreads(opts.threads, blocks);

    // Working graph as (d2, idx) pairs, double buffered: each round
    // reads `graph` and writes `next`, so a node's new list is a pure
    // function of the previous round — synchronous and order-free.
    std::vector<Cand> graph(k * R);
    std::vector<Cand> next(k * R);

    // Initial lists: R distinct random peers per node, from a per-node
    // Rng stream that depends only on (seed, node) — block- and
    // thread-agnostic by construction.
    util::parallelFor(threads, blocks, [&](std::size_t b) {
        std::vector<Cand> cand;
        cand.reserve(R);
        const std::size_t lo = b * kNodeBlock;
        const std::size_t hi = std::min(k, lo + kNodeBlock);
        for (std::size_t i = lo; i < hi; ++i) {
            stats::Rng rng(opts.seed ^
                           (0x9E3779B97F4A7C15ULL *
                            (static_cast<std::uint64_t>(i) + 1)));
            cand.clear();
            while (cand.size() < R) {
                const auto j =
                    static_cast<std::uint32_t>(rng.nextBelow(k));
                if (j == i)
                    continue;
                bool dup = false;
                for (const Cand &c : cand)
                    if (c.idx == j) {
                        dup = true;
                        break;
                    }
                if (dup)
                    continue;
                cand.push_back({stats::squaredDistance(centers.row(i),
                                                       centers.row(j)),
                                j});
            }
            std::sort(cand.begin(), cand.end(), candLess);
            std::copy(cand.begin(), cand.end(), graph.begin() + i * R);
        }
    });

    // NNDescent refinement: each round, node i re-selects its R best
    // among {current list} ∪ {forward/reverse neighbors} ∪ {their
    // forward neighbors}. Rounds stop when no list changed.
    std::vector<std::uint32_t> rev(k * R, 0);
    std::vector<std::uint32_t> rev_count(k, 0);
    std::vector<std::size_t> block_changes(blocks, 0);
    for (int round = 0; round < opts.max_rounds; ++round) {
        idx.rounds_ = round + 1;

        // Reverse edges of the current graph, capped at R per node,
        // filled in ascending source order (serial: O(kR) appends).
        std::fill(rev_count.begin(), rev_count.end(), 0);
        for (std::size_t i = 0; i < k; ++i)
            for (std::size_t t = 0; t < R; ++t) {
                const std::uint32_t j = graph[i * R + t].idx;
                if (rev_count[j] < R)
                    rev[j * R + rev_count[j]++] =
                        static_cast<std::uint32_t>(i);
            }

        util::parallelFor(threads, blocks, [&](std::size_t b) {
            // Dedup marks: stamp[j] == i means "j already a candidate
            // of node i". Node ids are strictly increasing within the
            // block, so no per-node clear is needed.
            std::vector<std::uint32_t> stamp(
                k, std::numeric_limits<std::uint32_t>::max());
            std::vector<Cand> cand;
            const std::size_t lo = b * kNodeBlock;
            const std::size_t hi = std::min(k, lo + kNodeBlock);
            std::size_t changes = 0;
            for (std::size_t i = lo; i < hi; ++i) {
                const auto me = static_cast<std::uint32_t>(i);
                const auto self = centers.row(i);
                cand.clear();
                stamp[i] = me;
                // Current list survives with its cached distances.
                for (std::size_t t = 0; t < R; ++t) {
                    const Cand &c = graph[i * R + t];
                    stamp[c.idx] = me;
                    cand.push_back(c);
                }
                const auto consider = [&](std::uint32_t j) {
                    if (stamp[j] == me)
                        return;
                    stamp[j] = me;
                    cand.push_back(
                        {stats::squaredDistance(self, centers.row(j)),
                         j});
                };
                const auto expand = [&](std::uint32_t u) {
                    consider(u);
                    for (std::size_t t = 0; t < R; ++t)
                        consider(graph[u * R + t].idx);
                };
                for (std::size_t t = 0; t < R; ++t)
                    expand(graph[i * R + t].idx);
                for (std::size_t t = 0; t < rev_count[i]; ++t)
                    expand(rev[i * R + t]);
                std::sort(cand.begin(), cand.end(), candLess);
                for (std::size_t t = 0; t < R; ++t) {
                    next[i * R + t] = cand[t];
                    if (cand[t].idx != graph[i * R + t].idx)
                        ++changes;
                }
            }
            block_changes[b] = changes;
        });

        std::swap(graph, next);
        std::size_t total_changes = 0;
        for (std::size_t b = 0; b < blocks; ++b)
            total_changes += block_changes[b];
        if (total_changes == 0)
            break;
    }

    // Diversify each node's out-list before freezing (the HNSW/DiskANN
    // occlusion heuristic): an edge to c is redundant when some closer
    // kept neighbor j is also close to c — the search reaches c through
    // j anyway — so c survives only if c.d2 < alpha² · d2(c, j) for
    // every kept j. This thins the tight same-cluster cliques NNDescent
    // produces and spends the out-degree on diverse directions, which
    // is what cuts evaluations per expansion at equal recall.
    // Deterministic: ascending candidate order, exact distances, and
    // each node is a pure function of the converged graph.
    std::vector<std::vector<Cand>> kept(k);
    if (opts.prune_alpha > 0.0) {
        const double a2 = opts.prune_alpha * opts.prune_alpha;
        util::parallelFor(threads, blocks, [&](std::size_t b) {
            const std::size_t lo = b * kNodeBlock;
            const std::size_t hi = std::min(k, lo + kNodeBlock);
            for (std::size_t i = lo; i < hi; ++i) {
                std::vector<Cand> &keep = kept[i];
                keep.reserve(R);
                for (std::size_t t = 0; t < R; ++t) {
                    const Cand &c = graph[i * R + t];
                    bool diverse = true;
                    for (const Cand &j : keep)
                        if (c.d2 >= a2 * stats::squaredDistance(
                                              centers.row(c.idx),
                                              centers.row(j.idx))) {
                            diverse = false;
                            break;
                        }
                    if (diverse)
                        keep.push_back(c);
                }
            }
        });
    } else {
        for (std::size_t i = 0; i < k; ++i)
            kept[i].assign(graph.begin() +
                               static_cast<std::ptrdiff_t>(i * R),
                           graph.begin() +
                               static_cast<std::ptrdiff_t>((i + 1) * R));
    }

    // Freeze the adjacency, symmetrized: search follows edges in both
    // directions (j reachable from i whenever i is from j), which keeps
    // nodes with low in-degree in the directed k-NN graph reachable and
    // recall independent of its hub skew. Serial, node order; distances
    // are symmetric so reverse edges reuse the stored d2 bitwise.
    std::vector<std::vector<Cand>> merged(k);
    for (std::size_t i = 0; i < k; ++i)
        merged[i].reserve(2 * R);
    for (std::size_t i = 0; i < k; ++i)
        for (const Cand &c : kept[i]) {
            merged[i].push_back(c);
            merged[c.idx].push_back(
                {c.d2, static_cast<std::uint32_t>(i)});
        }
    const std::size_t cap = std::min(2 * R, k - 1);
    idx.adj_offset_.resize(k + 1);
    idx.adjacency_.clear();
    idx.adjacency_.reserve(k * cap);
    double edge_sum = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
        std::vector<Cand> &m = merged[i];
        std::sort(m.begin(), m.end(), candLess);
        // Forward and reverse copies of one edge carry identical (d2,
        // idx) bits, so duplicates are adjacent after the sort.
        m.erase(std::unique(m.begin(), m.end(),
                            [](const Cand &a, const Cand &b) {
                                return a.idx == b.idx;
                            }),
                m.end());
        if (m.size() > cap)
            m.resize(cap);
        idx.adj_offset_[i] =
            static_cast<std::uint32_t>(idx.adjacency_.size());
        for (const Cand &c : m) {
            idx.adjacency_.push_back(c.idx);
            edge_sum += std::sqrt(c.d2);
        }
    }
    idx.adj_offset_[k] =
        static_cast<std::uint32_t>(idx.adjacency_.size());
    idx.mean_edge_ =
        edge_sum / static_cast<double>(idx.adjacency_.size());

    // Packed coarse seed sample: every stride-th center copied into an
    // owned contiguous matrix, so each search can locate its entry
    // region with one streaming exact scan instead of scattered probes.
    std::size_t root = 1;
    while ((root + 1) * (root + 1) <= k)
        ++root;
    const std::size_t coarse =
        std::min(k, std::max(idx.entry_points_, root));
    const std::size_t m = centers.cols();
    const std::size_t coarse_stride = k / coarse;
    idx.coarse_ = stats::Matrix(coarse, m);
    idx.coarse_ids_.resize(coarse);
    for (std::size_t e = 0; e < coarse; ++e) {
        const auto id = static_cast<std::uint32_t>(e * coarse_stride);
        idx.coarse_ids_[e] = id;
        const auto src = centers.row(id);
        std::copy(src.begin(), src.end(), idx.coarse_.row(e).begin());
    }

    obs::count("ann.graph_builds");
    obs::count("ann.build_rounds", static_cast<double>(idx.rounds_));
    obs::gauge("ann.mean_edge_length", idx.mean_edge_);
    return idx;
}

stats::NearestCenter
CenterIndex::find(std::span<const double> point,
                  stats::DistanceCounters *counters) const
{
    return search(point, beam_, counters);
}

stats::NearestCenter
CenterIndex::search(std::span<const double> point, std::size_t beam,
                    stats::DistanceCounters *counters) const
{
    const std::size_t k = centers_.rows();
    if (!graph_mode_) {
        // Exact fallback: bit-identical to the scan by construction.
        const stats::NearestCenter nc =
            stats::nearestCenter(point, centers_);
        if (counters != nullptr)
            counters->computed += k;
        return nc;
    }
    beam = std::clamp(beam, std::size_t{1}, k);

    SearchScratch &s = tl_scratch;
    if (s.owner != scratch_id_ || s.stamp.size() != k) {
        s.owner = scratch_id_;
        s.stamp.assign(k, 0);
        s.epoch = 0;
    }
    if (++s.epoch == 0) { // epoch wrapped: hard-reset the marks once
        std::fill(s.stamp.begin(), s.stamp.end(), 0);
        s.epoch = 1;
    }
    const std::uint32_t epoch = s.epoch;
    s.pool.clear();
    s.expanded.clear();
    s.batch.clear();

    // There is no separate frontier structure: a candidate evicted from
    // the pool can never be expanded (the expansion bound below only
    // tightens), so the sorted pool with per-entry expanded marks IS
    // the frontier — the next node to expand is always the first
    // unexpanded pool entry. `scan_from` remembers where that prefix
    // scan left off; an insert below it rewinds it.
    std::uint64_t evals = 0;
    std::size_t scan_from = 0;
    const auto accept = [&](const Cand &c) {
        if (s.pool.size() < beam || candLess(c, s.pool.back())) {
            const auto it = std::lower_bound(s.pool.begin(), s.pool.end(),
                                             c, candLess);
            const auto pos =
                static_cast<std::size_t>(it - s.pool.begin());
            s.pool.insert(it, c);
            s.expanded.insert(s.expanded.begin() +
                                  static_cast<std::ptrdiff_t>(pos),
                              0);
            if (s.pool.size() > beam) {
                s.pool.pop_back();
                s.expanded.pop_back();
            }
            scan_from = std::min(scan_from, pos);
        }
    };

    // One dispatched batch computes distances for a gathered id list
    // and the serial accept loop folds them into pool+heap in gather
    // order — identical arithmetic and ordering to per-pair calls, but
    // one indirect call per batch and look-ahead prefetch inside.
    const auto acceptBatch = [&] {
        evals += s.batch.size();
        s.dists.resize(s.batch.size());
        stats::simd::batchSquaredDistance(point.data(), centers_.data(),
                                          centers_.cols(), s.batch.data(),
                                          s.batch.size(), s.dists.data());
        for (std::size_t i = 0; i < s.batch.size(); ++i)
            accept({s.dists[i], s.batch[i]});
    };

    // Two-level seed: one streaming pass over the packed coarse sample
    // picks the kSeeds best entry regions (deterministic: fixed sample,
    // (distance, catalog-index) order, so no query depends on any
    // other). The chosen centers are then re-evaluated against their
    // live rows through the normal batch path, which keeps every pooled
    // distance exact even after in-place center drift.
    constexpr std::size_t kSeeds = 4;
    const std::size_t coarse_rows = coarse_.rows();
    s.batch.resize(coarse_rows);
    for (std::size_t e = 0; e < coarse_rows; ++e)
        s.batch[e] = static_cast<std::uint32_t>(e);
    s.dists.resize(coarse_rows);
    stats::simd::batchSquaredDistance(point.data(), coarse_.data().data(),
                                      coarse_.cols(), s.batch.data(),
                                      coarse_rows, s.dists.data());
    evals += coarse_rows;
    Cand top[kSeeds];
    std::size_t nt = 0;
    for (std::size_t e = 0; e < coarse_rows; ++e) {
        const Cand c{s.dists[e], coarse_ids_[e]};
        if (nt == kSeeds && !candLess(c, top[nt - 1]))
            continue;
        std::size_t at = nt < kSeeds ? nt++ : nt - 1;
        while (at > 0 && candLess(c, top[at - 1])) {
            top[at] = top[at - 1];
            --at;
        }
        top[at] = c;
    }
    s.batch.clear();
    for (std::size_t t = 0; t < nt; ++t) {
        s.stamp[top[t].idx] = epoch;
        s.batch.push_back(top[t].idx);
    }
    acceptBatch();

    // Best-first expansion: expand the closest unexpanded pool entry
    // until none is left — at that point the nearest frontier node
    // provably cannot enter the full pool. Each expansion compacts the
    // unvisited neighbors branchlessly (the visited test is data-
    // dependent and mispredicts badly as a branch), prefetches their
    // rows, then computes all distances in one dispatched batch: at
    // large k the centers table outgrows cache and these scattered rows
    // miss, so overlapping the miss latency — not the arithmetic — is
    // most of the query cost.
    for (;;) {
        while (scan_from < s.pool.size() &&
               s.expanded[scan_from] != 0)
            ++scan_from;
        if (scan_from == s.pool.size())
            break;
        s.expanded[scan_from] = 1;
        const Cand c = s.pool[scan_from];
        const std::span<const std::uint32_t> nbs = neighbors(c.idx);
        s.batch.resize(nbs.size());
        std::size_t fresh = 0;
        for (const std::uint32_t nb : nbs) {
            s.batch[fresh] = nb;
            fresh += s.stamp[nb] != epoch;
            s.stamp[nb] = epoch;
        }
        s.batch.resize(fresh);
        for (const std::uint32_t nb : s.batch) {
            const double *row = centers_.row(nb).data();
            for (std::size_t o = 0; o < centers_.cols(); o += 8)
                __builtin_prefetch(row + o);
        }
        acceptBatch();
    }

    stats::NearestCenter out;
    out.index = s.pool.front().idx;
    out.dist2 = s.pool.front().d2;
    out.second_dist2 = s.pool.size() > 1
        ? s.pool[1].d2
        : std::numeric_limits<double>::max();
    if (counters != nullptr) {
        counters->computed += evals;
        counters->pruned += k > evals ? k - evals : 0;
    }
    return out;
}

namespace {

/** BuildOptions bound into the stats-layer factory interface. */
class CenterIndexFactory final : public stats::NearestCenterFinderFactory
{
  public:
    explicit CenterIndexFactory(const BuildOptions &opts) : opts_(opts) {}

    [[nodiscard]] std::unique_ptr<stats::NearestCenterFinder>
    build(stats::MatrixView centers, unsigned threads) const override
    {
        BuildOptions opts = opts_;
        opts.threads = threads;
        return std::make_unique<CenterIndex>(
            CenterIndex::build(centers, opts));
    }

  private:
    BuildOptions opts_;
};

} // namespace

std::shared_ptr<const stats::NearestCenterFinderFactory>
indexFactory(const BuildOptions &opts)
{
    return std::make_shared<const CenterIndexFactory>(opts);
}

} // namespace mica::ann
