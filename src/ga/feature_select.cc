#include "ga/feature_select.hh"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "obs/trace.hh"
#include "stats/pca.hh"
#include "stats/rng.hh"
#include "stats/summary.hh"
#include "util/thread_pool.hh"

namespace mica::ga {

using stats::Matrix;
using stats::Rng;

namespace {

/** One genome: a sorted, duplicate-free set of selected column indices. */
struct Genome
{
    std::vector<std::size_t> genes;
    double fitness = -2.0; ///< below any valid Pearson value
};

/** Random genome of the given cardinality. */
Genome
randomGenome(std::size_t num_features, std::size_t count, Rng &rng)
{
    std::vector<std::size_t> all(num_features);
    for (std::size_t i = 0; i < num_features; ++i)
        all[i] = i;
    rng.shuffle(all);
    Genome g;
    g.genes.assign(all.begin(),
                   all.begin() + static_cast<std::ptrdiff_t>(count));
    std::sort(g.genes.begin(), g.genes.end());
    return g;
}

/** Swap one selected gene for one unselected gene. */
void
mutate(Genome &g, std::size_t num_features, Rng &rng)
{
    const std::size_t victim = rng.nextBelow(g.genes.size());
    for (int attempts = 0; attempts < 64; ++attempts) {
        const std::size_t candidate = rng.nextBelow(num_features);
        if (!std::binary_search(g.genes.begin(), g.genes.end(), candidate)) {
            g.genes[victim] = candidate;
            std::sort(g.genes.begin(), g.genes.end());
            return;
        }
    }
}

/** Offspring drawing genes from the union of two parents. */
Genome
crossover(const Genome &a, const Genome &b, Rng &rng)
{
    std::set<std::size_t> pool(a.genes.begin(), a.genes.end());
    pool.insert(b.genes.begin(), b.genes.end());
    std::vector<std::size_t> candidates(pool.begin(), pool.end());
    rng.shuffle(candidates);
    Genome child;
    child.genes.assign(
        candidates.begin(),
        candidates.begin() + static_cast<std::ptrdiff_t>(a.genes.size()));
    std::sort(child.genes.begin(), child.genes.end());
    return child;
}

/** Tournament selection of a parent index. */
std::size_t
tournament(const std::vector<Genome> &pop, Rng &rng)
{
    const std::size_t a = rng.nextBelow(pop.size());
    const std::size_t b = rng.nextBelow(pop.size());
    return pop[a].fitness >= pop[b].fitness ? a : b;
}

} // namespace

FeatureSelector::FeatureSelector(Matrix data) : data_(std::move(data))
{
    if (data_.rows() < 3 || data_.cols() == 0)
        throw std::invalid_argument("FeatureSelector: need >= 3 phases");
    const Matrix full_space = stats::rescaledPcaSpace(data_);
    full_distances_ = stats::pairwiseDistances(full_space);
}

double
FeatureSelector::fitnessOf(std::span<const std::size_t> subset) const
{
    if (subset.empty())
        return 0.0;
    const Matrix reduced = data_.selectCols(subset);
    const Matrix reduced_space = stats::rescaledPcaSpace(reduced);
    const std::vector<double> reduced_distances =
        stats::pairwiseDistances(reduced_space);
    return stats::pearson(reduced_distances, full_distances_);
}

GaResult
FeatureSelector::select(const GaOptions &opts) const
{
    if (opts.target_count == 0 || opts.target_count > numFeatures())
        throw std::invalid_argument("FeatureSelector: bad target_count");

    const obs::Span select_span("ga.select", "ga");
    Rng master(opts.seed);
    const std::size_t islands = std::max<std::size_t>(1, opts.num_islands);
    const std::size_t pop_size =
        std::max<std::size_t>(4, opts.population_size);

    std::vector<std::vector<Genome>> populations(islands);
    std::vector<Rng> island_rngs;
    for (std::size_t i = 0; i < islands; ++i)
        island_rngs.push_back(master.split());

    // Fitness is a pure function of the genes, so pending genomes can be
    // evaluated concurrently after each serial (Rng-driven) breeding pass:
    // every genome's fitness lands in its own slot, independent of the
    // thread count or evaluation order. The memoization cache is read
    // (hits pre-populated) and written strictly in this serial pass, so
    // the parallel batch never touches shared state; a cached value is
    // bitwise equal to a recomputed one, so no GA decision can change.
    const unsigned eval_threads =
        util::resolveThreads(opts.threads, islands * pop_size);
    auto evaluatePending = [&]() {
        std::vector<Genome *> pending;
        std::uint64_t hits = 0;
        {
            const std::lock_guard<std::mutex> lock(cache_mutex_);
            for (auto &pop : populations) {
                for (Genome &g : pop) {
                    if (g.fitness >= -1.5)
                        continue;
                    const auto it = fitness_cache_.find(g.genes);
                    if (it != fitness_cache_.end()) {
                        g.fitness = it->second;
                        ++hits;
                    } else {
                        pending.push_back(&g);
                    }
                }
            }
            cache_stats_.hits += hits;
            cache_stats_.misses += pending.size();
        }
        const obs::Span batch_span("ga.fitness_batch", "ga");
        obs::count("ga.fitness_cache_hits", static_cast<double>(hits));
        obs::count("ga.genomes_evaluated",
                   static_cast<double>(pending.size()));
        util::parallelFor(eval_threads, pending.size(),
                          [&](std::size_t i) {
                              pending[i]->fitness =
                                  fitnessOf(pending[i]->genes);
                          });
        {
            const std::lock_guard<std::mutex> lock(cache_mutex_);
            for (const Genome *g : pending)
                fitness_cache_.emplace(g->genes, g->fitness);
            cache_stats_.entries = fitness_cache_.size();
        }
    };

    for (std::size_t i = 0; i < islands; ++i)
        for (std::size_t p = 0; p < pop_size; ++p)
            populations[i].push_back(randomGenome(
                numFeatures(), opts.target_count, island_rngs[i]));
    evaluatePending();

    Genome best;
    auto track_best = [&]() {
        for (const auto &pop : populations)
            for (const Genome &g : pop)
                if (g.fitness > best.fitness)
                    best = g;
    };
    track_best();

    int stagnant = 0;
    int generation = 0;
    for (; generation < opts.max_generations && stagnant < opts.patience;
         ++generation) {
        for (std::size_t i = 0; i < islands; ++i) {
            auto &pop = populations[i];
            Rng &rng = island_rngs[i];
            std::vector<Genome> next;
            next.reserve(pop_size);
            // Elitism: carry the island champion over unchanged.
            const auto champ = std::max_element(
                pop.begin(), pop.end(),
                [](const Genome &a, const Genome &b) {
                    return a.fitness < b.fitness;
                });
            next.push_back(*champ);
            while (next.size() < pop_size) {
                const Genome &pa = pop[tournament(pop, rng)];
                Genome child;
                if (rng.nextBool(opts.crossover_rate)) {
                    const Genome &pb = pop[tournament(pop, rng)];
                    child = crossover(pa, pb, rng);
                } else {
                    child = pa;
                    child.fitness = -2.0;
                }
                if (rng.nextBool(opts.mutation_rate)) {
                    mutate(child, numFeatures(), rng);
                    child.fitness = -2.0;
                }
                next.push_back(std::move(child));
            }
            pop = std::move(next);
        }

        // Offspring fitness is only read from the next generation on, so
        // all islands' new genomes evaluate together in parallel.
        evaluatePending();

        // Migration: island champions move to the next island, replacing
        // that island's weakest genome.
        if (islands > 1 && opts.migration_interval > 0 &&
            (generation + 1) % opts.migration_interval == 0) {
            std::vector<Genome> champions;
            for (const auto &pop : populations)
                champions.push_back(*std::max_element(
                    pop.begin(), pop.end(),
                    [](const Genome &a, const Genome &b) {
                        return a.fitness < b.fitness;
                    }));
            for (std::size_t i = 0; i < islands; ++i) {
                auto &pop = populations[(i + 1) % islands];
                auto weakest = std::min_element(
                    pop.begin(), pop.end(),
                    [](const Genome &a, const Genome &b) {
                        return a.fitness < b.fitness;
                    });
                *weakest = champions[i];
            }
        }

        const double prev = best.fitness;
        track_best();
        stagnant = best.fitness > prev + 1e-9 ? 0 : stagnant + 1;
        obs::count("ga.generations");
    }

    GaResult result;
    result.selected = best.genes;
    result.fitness = best.fitness;
    result.generations = generation;
    return result;
}

FeatureSelector::CacheStats
FeatureSelector::cacheStats() const
{
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    return cache_stats_;
}

std::vector<GaResult>
FeatureSelector::sweepSubsetSizes(std::size_t max_count,
                                  const GaOptions &base) const
{
    std::vector<GaResult> results;
    max_count = std::min(max_count, numFeatures());
    for (std::size_t count = 1; count <= max_count; ++count) {
        GaOptions opts = base;
        opts.target_count = count;
        opts.seed = base.seed + count * 0x9e37;
        results.push_back(select(opts));
    }
    return results;
}

} // namespace mica::ga
