/**
 * @file
 * Genetic-algorithm selection of key microarchitecture-independent
 * characteristics (paper section 3.7).
 *
 * Given the matrix of prominent phase behaviours (rows) by raw
 * characteristics (columns), the GA searches for a fixed-size subset of
 * characteristics whose induced distance structure best matches the
 * full-characteristic distance structure. Distances on both sides are
 * computed in the rescaled PCA space (normalize -> PCA, keep sd > 1 ->
 * rescale) so correlated characteristics are not double counted; fitness is
 * the Pearson correlation between the two condensed distance vectors.
 *
 * The GA is an island model with mutation, crossover and migration,
 * matching the operators named in the paper.
 */

#ifndef MICAPHASE_GA_FEATURE_SELECT_HH
#define MICAPHASE_GA_FEATURE_SELECT_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "stats/matrix.hh"

namespace mica::ga {

/** GA tuning knobs. */
struct GaOptions
{
    std::size_t target_count = 12;    ///< characteristics to retain
    std::size_t num_islands = 3;      ///< independent populations
    std::size_t population_size = 24; ///< genomes per island
    int max_generations = 48;
    int patience = 12;                ///< stop after stagnant generations
    double mutation_rate = 0.2;       ///< per-offspring gene-swap chance
    double crossover_rate = 0.7;
    int migration_interval = 8;       ///< generations between migrations
    std::uint64_t seed = 1;
    /**
     * Worker threads for genome fitness evaluation (0 = hardware
     * concurrency, capped at the population size). Offspring are generated
     * serially from per-island Rng streams and fitness is a pure function
     * of the genes, so the search is bit-identical for every value.
     */
    unsigned threads = 1;
};

/** Result of one GA run. */
struct GaResult
{
    std::vector<std::size_t> selected; ///< sorted characteristic indices
    double fitness = 0.0;              ///< Pearson distance correlation
    int generations = 0;               ///< generations actually run
};

/**
 * Feature-subset search over a phase-by-characteristic matrix.
 *
 * Fitness evaluations are memoized per selector instance, keyed by the
 * sorted gene set: elitism, migration and repeated crossover products —
 * and every re-run of `select` or `sweepSubsetSizes` on the same
 * selector — never recompute `rescaledPcaSpace` + `pairwiseDistances`
 * for a genome already scored. Because fitness is a pure function of the
 * genes (for a fixed selector), a cached value is bitwise equal to a
 * recomputed one, so memoization cannot change any GA decision; the
 * cache is consulted and filled only in the serial breeding pass (hits
 * are resolved before each parallel evaluation batch), preserving
 * thread-count-invariant determinism. Hits are reported on the
 * `ga.fitness_cache_hits` obs counter.
 */
class FeatureSelector
{
  public:
    /**
     * @param data rows = prominent phase behaviours, columns = raw
     *             characteristics (e.g. 100 x 69)
     */
    explicit FeatureSelector(stats::Matrix data);

    /** Number of characteristics (columns). */
    [[nodiscard]] std::size_t numFeatures() const { return data_.cols(); }

    /**
     * Fitness of an explicit subset: Pearson correlation of reduced-space
     * vs full-space pairwise phase distances. Exposed for tests and for
     * the Figure 1 sweep.
     */
    [[nodiscard]] double fitnessOf(std::span<const std::size_t> subset)
        const;

    /** Run the GA for a fixed subset size. */
    [[nodiscard]] GaResult select(const GaOptions &opts) const;

    /**
     * Figure 1 helper: best fitness found for each subset size in
     * [1, max_count], re-running the GA per size.
     */
    [[nodiscard]] std::vector<GaResult>
    sweepSubsetSizes(std::size_t max_count, const GaOptions &base) const;

    /** Fitness-memoization statistics since construction. */
    struct CacheStats
    {
        std::uint64_t hits = 0;   ///< evaluations answered from the cache
        std::uint64_t misses = 0; ///< evaluations actually computed
        std::size_t entries = 0;  ///< distinct genomes cached
    };

    /** Snapshot of the fitness cache's hit/miss counters. */
    [[nodiscard]] CacheStats cacheStats() const;

  private:
    stats::Matrix data_;
    std::vector<double> full_distances_;
    /**
     * Memoized fitness by sorted gene set. Guarded by `cache_mutex_` for
     * concurrent `select` calls on one selector; within a call it is only
     * touched from the serial breeding pass.
     */
    mutable std::map<std::vector<std::size_t>, double> fitness_cache_;
    mutable CacheStats cache_stats_;
    mutable std::mutex cache_mutex_;
};

} // namespace mica::ga

#endif // MICAPHASE_GA_FEATURE_SELECT_HH
