/**
 * @file
 * Synthetic stand-ins for SPEC CPU2006 (12 integer + 17 floating-point
 * benchmarks). Relative to the CPU2000 definitions these use larger
 * footprints, more varied kernel combinations and more extreme parameter
 * points — CPU2006 is the suite with the widest workload-space coverage in
 * the paper, and that breadth has to come from somewhere.
 */

#include "workloads/suite_helpers.hh"
#include "workloads/suite_registry.hh"

namespace mica::workloads::detail {

namespace {

using Phases = std::vector<PhaseSpec>;

void
registerInt2006(SuiteCatalog &cat)
{
    auto add = [&cat](const char *name, std::uint32_t inputs,
                      std::uint32_t intervals, std::uint64_t seed,
                      std::function<Phases(std::uint32_t)> fn) {
        cat.add({name, "SPECint2006", inputs, intervals, std::move(fn),
                 seed});
    };

    // astar: path finding. Deliberately two very different phases (the
    // paper calls out astar's split across a benchmark-specific cluster
    // with the worst branch predictability and a well-behaved mixed
    // cluster).
    add("astar", 2, 88, 0x60001, [](std::uint32_t in) {
        return Phases{
            // Phase A: open-list search, terrible branch behaviour.
            branchPhase({.branches = 3072, .taken_threshold = 128,
                         .pattern_bits = 0}, 6),
            chasePhase({.nodes = 1u << (13 + in), .hops = 2048,
                        .payload = false}, 3),
            // Phase B: grid sweeps with good locality & predictability.
            treeWalkPhase({.log2_size = 10, .searches = 64}, 2),
            streamPhase({.elements = 4096, .stride = 1,
                         .mode = StreamParams::Mode::Add, .fp = false,
                         .unroll = 2}, 5),
        };
    });

    // bzip2 (2006 inputs): sorting + histogram like 2000, bigger blocks.
    add("bzip2", 2, 61, 0x60002, [](std::uint32_t in) {
        return Phases{
            sortPhase({.n = 2048u << in, .scramble = 48}, 6),
            histogramPhase({.input_bytes = 8192, .alphabet = 256}, 4),
            stringPhase({.text_len = 2048, .pattern_len = 5,
                         .alphabet = 24}, 2),
        };
    });

    // gcc (2006): even larger code footprint than the 2000 edition.
    add("gcc", 3, 70, 0x60003, [](std::uint32_t in) {
        return Phases{
            bloatPhase({.blocks = 512u << in, .block_instrs = 16,
                        .dispatches = 640, .sequential = false,
                        .fp_fraction = 0.03}, 8),
            hashPhase({.log2_slots = 14, .probes = 1024, .update = true},
                      3),
            chasePhase({.nodes = 8192, .hops = 1024, .payload = true}, 2),
        };
    });

    // gobmk: Go engine - pattern matching with erratic branches.
    add("gobmk", 1, 174, 0x60004, [](std::uint32_t) {
        return Phases{
            branchPhase({.branches = 2560, .taken_threshold = 140,
                         .pattern_bits = 0}, 5),
            bloatPhase({.blocks = 128, .block_instrs = 12,
                        .dispatches = 512, .sequential = false,
                        .fp_fraction = 0.0}, 4),
            histogramPhase({.input_bytes = 2048, .alphabet = 8}, 2),
        };
    });

    // h264ref: video encoding - SAD motion search + transforms.
    add("h264ref", 1, 150, 0x60005, [](std::uint32_t) {
        return Phases{
            sadPhase({.candidates = 16}, 12),
            dctPhase({.blocks = 4}, 8),
            quantizePhase({.n = 1024}, 10),
        };
    });

    // hmmer (2006): profile HMM search; shares its core with BioPerf's
    // hmmer but runs a bigger model with steadier behaviour (the paper
    // observes the two versions overlap only partially).
    add("hmmer", 1, 69, 0x60006, [](std::uint32_t) {
        return Phases{
            hmmPhase({.states = 128, .steps = 48}, 8),
            histogramPhase({.input_bytes = 2048, .alphabet = 20}, 2),
        };
    });

    // libquantum: quantum simulation - giant strided integer streaming.
    add("libquantum", 1, 237, 0x60007, [](std::uint32_t) {
        return Phases{
            streamPhase({.elements = 1u << 15, .stride = 8,
                         .mode = StreamParams::Mode::Scale, .fp = false,
                         .unroll = 2}, 6),
            streamPhase({.elements = 1u << 14, .stride = 1,
                         .mode = StreamParams::Mode::Triad, .fp = false,
                         .unroll = 4}, 4),
        };
    });

    // mcf (2006): pointer chasing over an even larger network.
    add("mcf", 1, 70, 0x60008, [](std::uint32_t) {
        return Phases{
            chasePhase({.nodes = 1u << 18, .hops = 6144,
                        .payload = true}, 10),
            gatherPhase({.n = 2048, .log2_range = 16, .scatter = false},
                        2),
        };
    });

    // omnetpp: discrete event simulation - heap + event objects.
    add("omnetpp", 1, 193, 0x60009, [](std::uint32_t) {
        return Phases{
            chasePhase({.nodes = 1u << 15, .hops = 3072,
                        .payload = true}, 6),
            treeWalkPhase({.log2_size = 14, .searches = 160}, 4),
            hashPhase({.log2_slots = 13, .probes = 512, .update = true},
                      2),
        };
    });

    // perlbench: interpreter with bigger opcode working set than perlbmk.
    add("perlbench", 2, 51, 0x6000a, [](std::uint32_t in) {
        return Phases{
            bloatPhase({.blocks = 256u << in, .block_instrs = 12,
                        .dispatches = 768, .sequential = false,
                        .fp_fraction = 0.0}, 7),
            stringPhase({.text_len = 1536, .pattern_len = 5,
                         .alphabet = 48}, 3),
            hashPhase({.log2_slots = 13, .probes = 768, .update = true},
                      2),
        };
    });

    // sjeng: chess search - the paper shows a 99.8% benchmark-specific
    // cluster; give it a unique blend of pattern-correlated branching.
    add("sjeng", 1, 63, 0x6000b, [](std::uint32_t) {
        return Phases{
            branchPhase({.branches = 3072, .taken_threshold = 120,
                         .pattern_bits = 9}, 7),
            reducePhase({.length = 6144, .fp = false, .use_mul = false},
                        3),
            hashPhase({.log2_slots = 16, .probes = 512, .update = false},
                      2),
        };
    });

    // xalancbmk: XML transformation - strings, hashes, node pointers.
    add("xalancbmk", 1, 62, 0x6000c, [](std::uint32_t) {
        return Phases{
            hashPhase({.log2_slots = 14, .probes = 1024, .update = false},
                      5),
            stringPhase({.text_len = 2048, .pattern_len = 6,
                         .alphabet = 64}, 4),
            chasePhase({.nodes = 1u << 13, .hops = 1024,
                        .payload = false}, 2),
        };
    });
}

void
registerFp2006(SuiteCatalog &cat)
{
    auto add = [&cat](const char *name, std::uint32_t inputs,
                      std::uint32_t intervals, std::uint64_t seed,
                      std::function<Phases(std::uint32_t)> fn) {
        cat.add({name, "SPECfp2006", inputs, intervals, std::move(fn),
                 seed});
    };

    // bwaves: blast waves - big 3D-ish stencils.
    add("bwaves", 1, 72, 0x61001, [](std::uint32_t) {
        return Phases{
            stencilPhase({.rows = 96, .cols = 128, .sweeps = 1}, 6),
            streamPhase({.elements = 1u << 14, .stride = 1,
                         .mode = StreamParams::Mode::Triad, .fp = true,
                         .unroll = 4}, 2),
        };
    });

    // cactusADM: numerical relativity - one dominant stencil phase (the
    // paper shows a 99.5% benchmark-specific cluster).
    add("cactusADM", 1, 262, 0x61002, [](std::uint32_t) {
        return Phases{
            stencilPhase({.rows = 80, .cols = 80, .sweeps = 2}, 8),
            fpMathPhase({.n = 384}, 1),
        };
    });

    // calculix: FEM - dense factorization + sparse gathers.
    add("calculix", 2, 370, 0x61003, [](std::uint32_t in) {
        return Phases{
            matmulPhase({.n = 20u + 4 * in}, 6),
            gatherPhase({.n = 2048, .log2_range = 14, .scatter = true}, 3),
            streamPhase({.elements = 4096, .stride = 1,
                         .mode = StreamParams::Mode::Dot, .fp = true,
                         .unroll = 2}, 2),
        };
    });

    // dealII: adaptive FEM - mixed dense/sparse with deep C++ call webs.
    add("dealII", 1, 68, 0x61004, [](std::uint32_t) {
        return Phases{
            gatherPhase({.n = 1536, .log2_range = 13, .scatter = false},
                        4),
            matmulPhase({.n = 12}, 3),
            bloatPhase({.blocks = 64, .block_instrs = 10,
                        .dispatches = 256, .sequential = true,
                        .fp_fraction = 0.5}, 2),
            sortPhase({.n = 768, .scramble = 24}, 2),
        };
    });

    // gamess: quantum chemistry - dense tensor contraction + fp chains.
    add("gamess", 1, 350, 0x61005, [](std::uint32_t) {
        return Phases{
            matmulPhase({.n = 24}, 6),
            reducePhase({.length = 4096, .fp = true, .use_mul = true}, 3),
            fpMathPhase({.n = 512}, 2),
        };
    });

    // GemsFDTD: finite-difference time domain - stencil + streams.
    add("GemsFDTD", 1, 235, 0x61006, [](std::uint32_t) {
        return Phases{
            stencilPhase({.rows = 64, .cols = 96, .sweeps = 1}, 5),
            streamPhase({.elements = 1u << 14, .stride = 2,
                         .mode = StreamParams::Mode::Add, .fp = true,
                         .unroll = 2}, 4),
        };
    });

    // gromacs: molecular dynamics - neighbor gathers + fp MACs.
    add("gromacs", 1, 140, 0x61007, [](std::uint32_t) {
        return Phases{
            gatherPhase({.n = 2048, .log2_range = 13, .scatter = false},
                        5),
            firPhase({.taps = 32, .samples = 128, .parallel = 2}, 4),
            fpMathPhase({.n = 256}, 2),
        };
    });

    // lbm: lattice Boltzmann - enormous structure-of-arrays streaming
    // (99.9% benchmark-specific cluster in the paper).
    add("lbm", 1, 211, 0x61008, [](std::uint32_t) {
        return Phases{
            streamPhase({.elements = 1u << 16, .stride = 4,
                         .mode = StreamParams::Mode::Triad, .fp = true,
                         .unroll = 4}, 8),
            streamPhase({.elements = 1u << 15, .stride = 1,
                         .mode = StreamParams::Mode::Copy, .fp = true,
                         .unroll = 4}, 3),
        };
    });

    // leslie3d: turbulence - stencil-dominated like bwaves but smaller.
    add("leslie3d", 1, 197, 0x61009, [](std::uint32_t) {
        return Phases{
            stencilPhase({.rows = 56, .cols = 72, .sweeps = 2}, 7),
            streamPhase({.elements = 4096, .stride = 2,
                         .mode = StreamParams::Mode::Triad, .fp = true,
                         .unroll = 1}, 2),
        };
    });

    // milc: lattice QCD - small dense blocks gathered from a big lattice.
    add("milc", 1, 63, 0x6100a, [](std::uint32_t) {
        return Phases{
            gatherPhase({.n = 2048, .log2_range = 15, .scatter = true}, 4),
            matmulPhase({.n = 8}, 5),
        };
    });

    // namd: molecular dynamics - fp MAC inner loops, good locality.
    add("namd", 1, 68, 0x6100b, [](std::uint32_t) {
        return Phases{
            firPhase({.taps = 48, .samples = 128, .parallel = 2}, 6),
            gatherPhase({.n = 1024, .log2_range = 12, .scatter = false},
                        2),
        };
    });

    // povray: ray tracing - fp divides/sqrts + incoherent branches.
    add("povray", 1, 60, 0x6100c, [](std::uint32_t) {
        return Phases{
            fpMathPhase({.n = 768}, 5),
            branchPhase({.branches = 1536, .taken_threshold = 96,
                         .pattern_bits = 0}, 3),
            convPhase({.rows = 12, .cols = 24, .k = 3, .fp = true}, 2),
        };
    });

    // soplex: simplex LP - sparse column gathers + pivoting scans.
    add("soplex", 1, 222, 0x6100d, [](std::uint32_t) {
        return Phases{
            gatherPhase({.n = 3072, .log2_range = 15, .scatter = true}, 6),
            treeWalkPhase({.log2_size = 13, .searches = 128}, 2),
            streamPhase({.elements = 4096, .stride = 1,
                         .mode = StreamParams::Mode::Dot, .fp = true,
                         .unroll = 2}, 2),
        };
    });

    // sphinx3: speech recognition - filter banks + Gaussian scoring
    // (99.9% suite-specific cluster with BMW voice in the paper).
    add("sphinx3", 1, 262, 0x6100e, [](std::uint32_t) {
        return Phases{
            firPhase({.taps = 40, .samples = 160, .parallel = 1}, 6),
            gatherPhase({.n = 1024, .log2_range = 12, .scatter = false},
                        3),
            streamPhase({.elements = 2048, .stride = 1,
                         .mode = StreamParams::Mode::Dot, .fp = true,
                         .unroll = 2}, 2),
        };
    });

    // tonto: quantum crystallography - dense algebra + transcendental-ish
    // fp mixes.
    add("tonto", 1, 126, 0x6100f, [](std::uint32_t) {
        return Phases{
            matmulPhase({.n = 18}, 5),
            fpMathPhase({.n = 512}, 3),
            reducePhase({.length = 3072, .fp = true, .use_mul = false}, 2),
        };
    });

    // wrf: weather - stencils with embedded divides.
    add("wrf", 1, 69, 0x61010, [](std::uint32_t) {
        return Phases{
            stencilPhase({.rows = 48, .cols = 64, .sweeps = 1}, 4),
            fpMathPhase({.n = 512}, 3),
            gatherPhase({.n = 768, .log2_range = 12, .scatter = false}, 2),
        };
    });

    // zeusmp: astrophysical MHD - stencil + strided streams.
    add("zeusmp", 1, 71, 0x61011, [](std::uint32_t) {
        return Phases{
            stencilPhase({.rows = 40, .cols = 80, .sweeps = 1}, 4),
            streamPhase({.elements = 8192, .stride = 4,
                         .mode = StreamParams::Mode::Add, .fp = true,
                         .unroll = 2}, 4),
            fpMathPhase({.n = 384}, 2),
        };
    });
}

} // namespace

void
registerSpecCpu2006(SuiteCatalog &catalog)
{
    registerInt2006(catalog);
    registerFp2006(catalog);
}

} // namespace mica::workloads::detail
