/**
 * @file
 * Synthetic stand-ins for SPEC CPU2000 (12 integer + 14 floating-point
 * benchmarks). Phase schedules and kernel parameters are chosen to mimic
 * each original benchmark's published behavioural signature (instruction
 * mix, locality, branch behaviour), per the substitution documented in
 * DESIGN.md. Interval budgets are the paper's Table 3 counts scaled down
 * ~40x.
 */

#include "workloads/suite_helpers.hh"
#include "workloads/suite_registry.hh"

namespace mica::workloads::detail {

namespace {

using Phases = std::vector<PhaseSpec>;

void
registerInt2000(SuiteCatalog &cat)
{
    auto add = [&cat](const char *name, std::uint32_t inputs,
                      std::uint32_t intervals, std::uint64_t seed,
                      std::function<Phases(std::uint32_t)> fn) {
        cat.add({name, "SPECint2000", inputs, intervals, std::move(fn),
                 seed});
    };

    // gzip: LZ-style matching + byte histograms + block copies.
    add("gzip", 2, 38, 0x20001, [](std::uint32_t in) {
        const std::uint32_t text = 2048u << in;
        return Phases{
            stringPhase({.text_len = text, .pattern_len = 6,
                         .alphabet = 64}, 4),
            histogramPhase({.input_bytes = 4096, .alphabet = 200}, 3),
            streamPhase({.elements = 4096, .stride = 1,
                         .mode = StreamParams::Mode::Copy, .fp = false,
                         .unroll = 2}, 4),
        };
    });

    // vpr: placement/routing = randomized decisions over a graph.
    add("vpr", 2, 27, 0x20002, [](std::uint32_t in) {
        return Phases{
            branchPhase({.branches = 2048, .taken_threshold = 110,
                         .pattern_bits = 0}, 6),
            treeWalkPhase({.log2_size = static_cast<std::uint32_t>(12 + in),
                           .searches = 128}, 4),
        };
    });

    // gcc: huge instruction footprint, indirect dispatch, symbol hashing.
    add("gcc", 3, 75, 0x20003, [](std::uint32_t in) {
        return Phases{
            bloatPhase({.blocks = 256u << in, .block_instrs = 14,
                        .dispatches = 512, .sequential = false,
                        .fp_fraction = 0.05}, 8),
            hashPhase({.log2_slots = 13, .probes = 1024,
                       .update = true}, 3),
            treeWalkPhase({.log2_size = 12, .searches = 96}, 2),
        };
    });

    // mcf: dominant pointer chasing over a large network.
    add("mcf", 1, 50, 0x20004, [](std::uint32_t) {
        return Phases{
            chasePhase({.nodes = 1u << 16, .hops = 4096,
                        .payload = true}, 10),
            gatherPhase({.n = 1024, .log2_range = 15, .scatter = false}, 2),
        };
    });

    // crafty: chess = bit twiddling + unpredictable search branches.
    add("crafty", 1, 46, 0x20005, [](std::uint32_t) {
        return Phases{
            branchPhase({.branches = 2048, .taken_threshold = 128,
                         .pattern_bits = 0}, 5),
            reducePhase({.length = 4096, .fp = false, .use_mul = false}, 3),
            hashPhase({.log2_slots = 14, .probes = 768, .update = false},
                      2),
        };
    });

    // parser: dictionary lookup + link grammar scanning.
    add("parser", 1, 38, 0x20006, [](std::uint32_t) {
        return Phases{
            stringPhase({.text_len = 2048, .pattern_len = 5,
                         .alphabet = 26}, 5),
            treeWalkPhase({.log2_size = 13, .searches = 128}, 3),
            hashPhase({.log2_slots = 12, .probes = 512, .update = false},
                      2),
        };
    });

    // eon: C++ ray tracer - the lone fp-heavy SPECint2000 member.
    add("eon", 1, 26, 0x20007, [](std::uint32_t) {
        return Phases{
            convPhase({.rows = 16, .cols = 32, .k = 3, .fp = true}, 4),
            streamPhase({.elements = 2048, .stride = 1,
                         .mode = StreamParams::Mode::Dot, .fp = true,
                         .unroll = 2}, 4),
            branchPhase({.branches = 1024, .taken_threshold = 90,
                         .pattern_bits = 0}, 2),
        };
    });

    // perlbmk: interpreter dispatch + hash tables + string handling.
    add("perlbmk", 2, 32, 0x20008, [](std::uint32_t in) {
        return Phases{
            bloatPhase({.blocks = 128u << in, .block_instrs = 10,
                        .dispatches = 640, .sequential = false,
                        .fp_fraction = 0.0}, 7),
            hashPhase({.log2_slots = 12, .probes = 896, .update = true},
                      3),
            stringPhase({.text_len = 1024, .pattern_len = 4,
                         .alphabet = 32}, 2),
        };
    });

    // gap: computational group theory - integer arithmetic + gathers.
    add("gap", 1, 25, 0x20009, [](std::uint32_t) {
        return Phases{
            streamPhase({.elements = 4096, .stride = 1,
                         .mode = StreamParams::Mode::Triad, .fp = false,
                         .unroll = 2}, 5),
            reducePhase({.length = 8192, .fp = false, .use_mul = true}, 3),
            gatherPhase({.n = 768, .log2_range = 12, .scatter = false}, 2),
        };
    });

    // vortex: OO database - hashing and pointer-linked objects.
    add("vortex", 1, 74, 0x2000a, [](std::uint32_t) {
        return Phases{
            hashPhase({.log2_slots = 15, .probes = 1024, .update = true},
                      6),
            chasePhase({.nodes = 8192, .hops = 2048, .payload = true}, 4),
            bloatPhase({.blocks = 64, .block_instrs = 12,
                        .dispatches = 384, .sequential = true,
                        .fp_fraction = 0.0}, 2),
        };
    });

    // bzip2: block sorting + move-to-front coding.
    add("bzip2", 2, 72, 0x2000b, [](std::uint32_t in) {
        return Phases{
            sortPhase({.n = 1024u << in, .scramble = 32}, 6),
            histogramPhase({.input_bytes = 4096, .alphabet = 256}, 4),
            stringPhase({.text_len = 1536, .pattern_len = 4,
                         .alphabet = 16}, 2),
        };
    });

    // twolf: place & route with simulated annealing accept/reject.
    add("twolf", 1, 71, 0x2000c, [](std::uint32_t) {
        return Phases{
            branchPhase({.branches = 2048, .taken_threshold = 100,
                         .pattern_bits = 0}, 6),
            gatherPhase({.n = 1024, .log2_range = 13, .scatter = true}, 3),
            treeWalkPhase({.log2_size = 11, .searches = 96}, 2),
        };
    });
}

void
registerFp2000(SuiteCatalog &cat)
{
    auto add = [&cat](const char *name, std::uint32_t inputs,
                      std::uint32_t intervals, std::uint64_t seed,
                      std::function<Phases(std::uint32_t)> fn) {
        cat.add({name, "SPECfp2000", inputs, intervals, std::move(fn),
                 seed});
    };

    // wupwise: lattice QCD - dense complex linear algebra.
    add("wupwise", 1, 122, 0x21001, [](std::uint32_t) {
        return Phases{
            matmulPhase({.n = 20}, 6),
            streamPhase({.elements = 4096, .stride = 1,
                         .mode = StreamParams::Mode::Dot, .fp = true,
                         .unroll = 4}, 3),
        };
    });

    // swim: shallow-water stencil over large grids.
    add("swim", 1, 71, 0x21002, [](std::uint32_t) {
        return Phases{
            stencilPhase({.rows = 64, .cols = 128, .sweeps = 1}, 6),
            streamPhase({.elements = 8192, .stride = 1,
                         .mode = StreamParams::Mode::Add, .fp = true,
                         .unroll = 4}, 2),
        };
    });

    // mgrid: multigrid solver - stencils at several granularities.
    add("mgrid", 1, 120, 0x21003, [](std::uint32_t) {
        return Phases{
            stencilPhase({.rows = 48, .cols = 96, .sweeps = 1}, 5),
            stencilPhase({.rows = 16, .cols = 32, .sweeps = 4}, 3),
            streamPhase({.elements = 8192, .stride = 2,
                         .mode = StreamParams::Mode::Copy, .fp = true,
                         .unroll = 2}, 2),
        };
    });

    // applu: SSOR solver - stencil plus gathers from banded matrices.
    add("applu", 1, 37, 0x21004, [](std::uint32_t) {
        return Phases{
            stencilPhase({.rows = 40, .cols = 64, .sweeps = 1}, 4),
            gatherPhase({.n = 1024, .log2_range = 13, .scatter = false},
                        3),
        };
    });

    // mesa: software 3D pipeline - fp transform + fixed-point rasterize.
    add("mesa", 1, 72, 0x21005, [](std::uint32_t) {
        return Phases{
            convPhase({.rows = 20, .cols = 40, .k = 3, .fp = false}, 8),
            quantizePhase({.n = 512}, 8),
            streamPhase({.elements = 4096, .stride = 1,
                         .mode = StreamParams::Mode::Triad, .fp = true,
                         .unroll = 2}, 3),
        };
    });

    // galgel: fluid dynamics via Galerkin method - dense + gathers.
    add("galgel", 1, 42, 0x21006, [](std::uint32_t) {
        return Phases{
            matmulPhase({.n = 16}, 5),
            gatherPhase({.n = 1536, .log2_range = 12, .scatter = false},
                        3),
        };
    });

    // art: neural network image recognition - dot products over small data.
    add("art", 1, 39, 0x21007, [](std::uint32_t) {
        return Phases{
            streamPhase({.elements = 1024, .stride = 1,
                         .mode = StreamParams::Mode::Dot, .fp = true,
                         .unroll = 1}, 10),
            reducePhase({.length = 2048, .fp = true, .use_mul = true}, 2),
        };
    });

    // equake: sparse matrix-vector products from an FEM mesh.
    add("equake", 1, 39, 0x21008, [](std::uint32_t) {
        return Phases{
            gatherPhase({.n = 2048, .log2_range = 14, .scatter = true}, 6),
            streamPhase({.elements = 2048, .stride = 1,
                         .mode = StreamParams::Mode::Add, .fp = true,
                         .unroll = 2}, 2),
        };
    });

    // facerec: image-processing front end + frequency-domain matching.
    add("facerec", 1, 42, 0x21009, [](std::uint32_t) {
        return Phases{
            convPhase({.rows = 20, .cols = 40, .k = 3, .fp = true}, 10),
            fftPhase({.log2n = 7}, 6),
        };
    });

    // ammp: molecular dynamics - neighbor lists + fp accumulation.
    add("ammp", 1, 64, 0x2100a, [](std::uint32_t) {
        return Phases{
            chasePhase({.nodes = 4096, .hops = 1536, .payload = true}, 4),
            firPhase({.taps = 24, .samples = 96, .parallel = 2}, 4),
        };
    });

    // lucas: Lucas-Lehmer primality - FFT-based squaring.
    add("lucas", 1, 36, 0x2100b, [](std::uint32_t) {
        return Phases{
            fftPhase({.log2n = 9}, 4),
            streamPhase({.elements = 4096, .stride = 1,
                         .mode = StreamParams::Mode::Scale, .fp = true,
                         .unroll = 4}, 2),
        };
    });

    // fma3d: crash simulation - gathers + elementwise fp streams.
    add("fma3d", 1, 30, 0x2100c, [](std::uint32_t) {
        return Phases{
            gatherPhase({.n = 1024, .log2_range = 13, .scatter = true}, 4),
            streamPhase({.elements = 3072, .stride = 1,
                         .mode = StreamParams::Mode::Triad, .fp = true,
                         .unroll = 2}, 3),
        };
    });

    // sixtrack: accelerator tracking - long serial fp recurrences.
    add("sixtrack", 1, 176, 0x2100d, [](std::uint32_t) {
        return Phases{
            iirPhase({.samples = 384}, 6),
            reducePhase({.length = 4096, .fp = true, .use_mul = true}, 4),
            streamPhase({.elements = 1024, .stride = 1,
                         .mode = StreamParams::Mode::Triad, .fp = true,
                         .unroll = 1}, 2),
        };
    });

    // apsi: pollutant distribution - stencil + fp with divides.
    add("apsi", 1, 114, 0x2100e, [](std::uint32_t) {
        return Phases{
            stencilPhase({.rows = 32, .cols = 64, .sweeps = 1}, 5),
            firPhase({.taps = 16, .samples = 128, .parallel = 1}, 3),
            streamPhase({.elements = 2048, .stride = 4,
                         .mode = StreamParams::Mode::Scale, .fp = true,
                         .unroll = 1}, 2),
        };
    });
}

} // namespace

void
registerSpecCpu2000(SuiteCatalog &catalog)
{
    registerInt2000(catalog);
    registerFp2000(catalog);
}

} // namespace mica::workloads::detail
