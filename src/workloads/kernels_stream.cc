/**
 * @file
 * Streaming / dense numeric kernels: STREAM ops, stencil, matmul,
 * convolution, FIR/IIR filters, FFT butterflies, and serial reduction
 * chains.
 */

#include <cmath>
#include <vector>

#include "workloads/kernels.hh"
#include "workloads/kernels_util.hh"

namespace mica::workloads {

using detail::Loop;
using isa::Opcode;

namespace {

/** Allocate an array of n doubles initialized with small random values. */
std::uint64_t
allocRandomDoubles(ProgramBuilder &pb, std::size_t n, stats::Rng &rng)
{
    std::vector<double> values(n);
    for (double &v : values)
        v = rng.uniform(-1.0, 1.0);
    return pb.allocDoubles(values);
}

/** Allocate an array of n int64 values drawn uniformly from [lo, hi). */
std::uint64_t
allocRandomWords(ProgramBuilder &pb, std::size_t n, stats::Rng &rng,
                 std::uint64_t lo, std::uint64_t hi)
{
    std::vector<std::uint64_t> values(n);
    for (auto &v : values)
        v = lo + rng.nextBelow(hi - lo);
    return pb.allocWords(values);
}

} // namespace

Label
emitStream(ProgramBuilder &pb, const StreamParams &params)
{
    const std::uint32_t unroll = std::max(1u, std::min(params.unroll, 4u));
    const std::uint32_t stride = std::max(1u, params.stride);
    const std::int64_t step = static_cast<std::int64_t>(stride) * 8;
    const std::int64_t iterations =
        std::max<std::int64_t>(1, params.elements / (stride * unroll));
    const std::size_t bytes = static_cast<std::size_t>(params.elements) * 8;

    const std::uint64_t a = pb.allocData(bytes);
    const std::uint64_t b = pb.allocData(bytes);
    const std::uint64_t c = pb.allocData(bytes);
    const double scale_val[1] = {0.42};
    const std::uint64_t scale_slot = pb.allocDoubles(scale_val);
    const std::uint64_t result_slot = pb.allocData(8);

    Label entry = pb.newLabel();
    pb.bind(entry);

    pb.li(5, static_cast<std::int64_t>(a));
    pb.li(6, static_cast<std::int64_t>(b));
    pb.li(7, static_cast<std::int64_t>(c));
    if (params.fp) {
        pb.fload(10, isa::kRegZero, static_cast<std::int64_t>(scale_slot));
        if (params.mode == StreamParams::Mode::Dot)
            for (std::uint32_t u = 0; u < unroll; ++u)
                detail::fzero(pb, static_cast<Reg>(20 + u));
    } else {
        pb.li(10, 3); // integer scale factor
        if (params.mode == StreamParams::Mode::Dot)
            for (std::uint32_t u = 0; u < unroll; ++u)
                pb.li(static_cast<Reg>(20 + u), 0);
    }

    Loop loop(pb, 8, iterations);
    for (std::uint32_t u = 0; u < unroll; ++u) {
        const std::int64_t off = static_cast<std::int64_t>(u) * step;
        if (params.fp) {
            switch (params.mode) {
              case StreamParams::Mode::Copy:
                pb.fload(1, 5, off);
                pb.fstore(1, 7, off);
                break;
              case StreamParams::Mode::Scale:
                pb.fload(1, 5, off);
                pb.fop(Opcode::Fmul, 1, 1, 10);
                pb.fstore(1, 7, off);
                break;
              case StreamParams::Mode::Add:
                pb.fload(1, 5, off);
                pb.fload(2, 6, off);
                pb.fop(Opcode::Fadd, 1, 1, 2);
                pb.fstore(1, 7, off);
                break;
              case StreamParams::Mode::Triad:
                pb.fload(1, 5, off);
                pb.fload(2, 6, off);
                pb.fop(Opcode::Fmul, 2, 2, 10);
                pb.fop(Opcode::Fadd, 1, 1, 2);
                pb.fstore(1, 7, off);
                break;
              case StreamParams::Mode::Dot:
                pb.fload(1, 5, off);
                pb.fload(2, 6, off);
                pb.fop(Opcode::Fmadd, static_cast<Reg>(20 + u), 1, 2);
                break;
            }
        } else {
            switch (params.mode) {
              case StreamParams::Mode::Copy:
                pb.load(Opcode::Ld, 11, 5, off);
                pb.store(Opcode::Sd, 11, 7, off);
                break;
              case StreamParams::Mode::Scale:
                pb.load(Opcode::Ld, 11, 5, off);
                pb.alu(Opcode::Mul, 11, 11, 10);
                pb.store(Opcode::Sd, 11, 7, off);
                break;
              case StreamParams::Mode::Add:
                pb.load(Opcode::Ld, 11, 5, off);
                pb.load(Opcode::Ld, 12, 6, off);
                pb.alu(Opcode::Add, 11, 11, 12);
                pb.store(Opcode::Sd, 11, 7, off);
                break;
              case StreamParams::Mode::Triad:
                pb.load(Opcode::Ld, 11, 5, off);
                pb.load(Opcode::Ld, 12, 6, off);
                pb.alu(Opcode::Mul, 12, 12, 10);
                pb.alu(Opcode::Add, 11, 11, 12);
                pb.store(Opcode::Sd, 11, 7, off);
                break;
              case StreamParams::Mode::Dot:
                pb.load(Opcode::Ld, 11, 5, off);
                pb.load(Opcode::Ld, 12, 6, off);
                pb.alu(Opcode::Mul, 11, 11, 12);
                pb.alu(Opcode::Add, static_cast<Reg>(20 + u),
                       static_cast<Reg>(20 + u), 11);
                break;
            }
        }
    }
    const std::int64_t advance = step * unroll;
    pb.alui(Opcode::Addi, 5, 5, advance);
    pb.alui(Opcode::Addi, 6, 6, advance);
    pb.alui(Opcode::Addi, 7, 7, advance);
    loop.end();

    if (params.mode == StreamParams::Mode::Dot) {
        if (params.fp) {
            for (std::uint32_t u = 1; u < unroll; ++u)
                pb.fop(Opcode::Fadd, 20, 20, static_cast<Reg>(20 + u));
            pb.li(9, static_cast<std::int64_t>(result_slot));
            pb.fstore(20, 9, 0);
        } else {
            for (std::uint32_t u = 1; u < unroll; ++u)
                pb.alu(Opcode::Add, 20, 20, static_cast<Reg>(20 + u));
            pb.li(9, static_cast<std::int64_t>(result_slot));
            pb.store(Opcode::Sd, 20, 9, 0);
        }
    }
    pb.ret();
    return entry;
}

Label
emitStencil2D(ProgramBuilder &pb, const StencilParams &params)
{
    const std::uint32_t rows = std::max(3u, params.rows);
    const std::uint32_t cols = std::max(3u, params.cols);
    const std::size_t grid_bytes = static_cast<std::size_t>(rows) * cols * 8;
    const std::uint64_t src = pb.allocData(grid_bytes);
    const std::uint64_t dst = pb.allocData(grid_bytes);
    const double coeffs[2] = {0.5, 0.125};
    const std::uint64_t coeff_slot = pb.allocDoubles(coeffs);
    const std::int64_t row_bytes = static_cast<std::int64_t>(cols) * 8;

    Label entry = pb.newLabel();
    pb.bind(entry);
    pb.fload(10, isa::kRegZero, static_cast<std::int64_t>(coeff_slot));
    pb.fload(11, isa::kRegZero, static_cast<std::int64_t>(coeff_slot) + 8);

    Loop sweeps(pb, 9, std::max(1u, params.sweeps));
    pb.li(6, static_cast<std::int64_t>(src) + row_bytes + 8);
    pb.li(12, static_cast<std::int64_t>(dst) + row_bytes + 8);
    Loop row_loop(pb, 5, rows - 2);
    pb.mv(8, 6);
    pb.mv(13, 12);
    Loop col_loop(pb, 7, cols - 2);
    pb.fload(1, 8, 0);          // center
    pb.fload(2, 8, -8);         // west
    pb.fload(3, 8, 8);          // east
    pb.fload(4, 8, -row_bytes); // north
    pb.fload(5, 8, row_bytes);  // south
    pb.fop(Opcode::Fmul, 1, 1, 10);
    pb.fop(Opcode::Fadd, 2, 2, 3);
    pb.fop(Opcode::Fadd, 4, 4, 5);
    pb.fop(Opcode::Fadd, 2, 2, 4);
    pb.fop(Opcode::Fmadd, 1, 2, 11);
    pb.fstore(1, 13, 0);
    pb.alui(Opcode::Addi, 8, 8, 8);
    pb.alui(Opcode::Addi, 13, 13, 8);
    col_loop.end();
    pb.alui(Opcode::Addi, 6, 6, row_bytes);
    pb.alui(Opcode::Addi, 12, 12, row_bytes);
    row_loop.end();
    sweeps.end();
    pb.ret();
    return entry;
}

Label
emitMatMul(ProgramBuilder &pb, const MatMulParams &params, stats::Rng &rng)
{
    const std::uint32_t n = std::max(2u, params.n);
    const std::size_t elems = static_cast<std::size_t>(n) * n;
    const std::uint64_t a = allocRandomDoubles(pb, elems, rng);
    const std::uint64_t b = allocRandomDoubles(pb, elems, rng);
    const std::uint64_t c = pb.allocData(elems * 8);
    const std::int64_t row_bytes = static_cast<std::int64_t>(n) * 8;

    Label entry = pb.newLabel();
    pb.bind(entry);
    pb.li(8, static_cast<std::int64_t>(a));  // a row base
    pb.li(12, static_cast<std::int64_t>(c)); // c walking pointer

    Loop i_loop(pb, 5, n);
    pb.li(9, static_cast<std::int64_t>(b)); // b column base (+8 per j)
    Loop j_loop(pb, 6, n);
    pb.mv(10, 8); // a walker (+8 per k)
    pb.mv(11, 9); // b walker (+row per k)
    detail::fzero(pb, 3);
    Loop k_loop(pb, 7, n);
    pb.fload(1, 10, 0);
    pb.fload(2, 11, 0);
    pb.fop(Opcode::Fmadd, 3, 1, 2);
    pb.alui(Opcode::Addi, 10, 10, 8);
    pb.alui(Opcode::Addi, 11, 11, row_bytes);
    k_loop.end();
    pb.fstore(3, 12, 0);
    pb.alui(Opcode::Addi, 12, 12, 8);
    pb.alui(Opcode::Addi, 9, 9, 8);
    j_loop.end();
    pb.alui(Opcode::Addi, 8, 8, row_bytes);
    i_loop.end();
    pb.ret();
    return entry;
}

Label
emitConv2D(ProgramBuilder &pb, const ConvParams &params, stats::Rng &rng)
{
    const std::uint32_t k = std::max(2u, params.k);
    const std::uint32_t rows = std::max(params.rows, k + 1);
    const std::uint32_t cols = std::max(params.cols, k + 1);
    const std::uint32_t out_rows = rows - k + 1;
    const std::uint32_t out_cols = cols - k + 1;
    const std::size_t in_elems = static_cast<std::size_t>(rows) * cols;
    const std::int64_t row_bytes = static_cast<std::int64_t>(cols) * 8;

    std::uint64_t in, coeff;
    if (params.fp) {
        in = allocRandomDoubles(pb, in_elems, rng);
        coeff = allocRandomDoubles(pb, static_cast<std::size_t>(k) * k, rng);
    } else {
        in = allocRandomWords(pb, in_elems, rng, 0, 256);
        coeff = allocRandomWords(pb, static_cast<std::size_t>(k) * k, rng,
                                 0, 16);
    }
    const std::uint64_t out =
        pb.allocData(static_cast<std::size_t>(out_rows) * out_cols * 8);

    Label entry = pb.newLabel();
    pb.bind(entry);
    pb.li(9, static_cast<std::int64_t>(in));   // input row base
    pb.li(15, static_cast<std::int64_t>(out)); // output walker

    Loop r_loop(pb, 5, out_rows);
    pb.mv(10, 9); // input col base
    Loop c_loop(pb, 6, out_cols);
    pb.li(13, static_cast<std::int64_t>(coeff)); // coefficient walker
    if (params.fp)
        detail::fzero(pb, 1);
    else
        pb.li(14, 0);
    pb.mv(11, 10); // kernel-row walker
    Loop kr_loop(pb, 7, k);
    pb.mv(12, 11); // kernel-col walker
    Loop kc_loop(pb, 8, k);
    if (params.fp) {
        pb.fload(2, 12, 0);
        pb.fload(3, 13, 0);
        pb.fop(Opcode::Fmadd, 1, 2, 3);
    } else {
        pb.load(Opcode::Ld, 16, 12, 0);
        pb.load(Opcode::Ld, 17, 13, 0);
        pb.alu(Opcode::Mul, 16, 16, 17);
        pb.alu(Opcode::Add, 14, 14, 16);
    }
    pb.alui(Opcode::Addi, 12, 12, 8);
    pb.alui(Opcode::Addi, 13, 13, 8);
    kc_loop.end();
    pb.alui(Opcode::Addi, 11, 11, row_bytes);
    kr_loop.end();
    if (params.fp) {
        pb.fstore(1, 15, 0);
    } else {
        pb.alui(Opcode::Srai, 14, 14, 8); // fixed-point renormalization
        pb.store(Opcode::Sd, 14, 15, 0);
    }
    pb.alui(Opcode::Addi, 15, 15, 8);
    pb.alui(Opcode::Addi, 10, 10, 8);
    c_loop.end();
    pb.alui(Opcode::Addi, 9, 9, row_bytes);
    r_loop.end();
    pb.ret();
    return entry;
}

Label
emitFir(ProgramBuilder &pb, const FirParams &params, stats::Rng &rng)
{
    const std::uint32_t taps = std::max(2u, params.taps);
    const std::uint32_t parallel = std::min(std::max(params.parallel, 1u),
                                            2u);
    const std::uint32_t samples = std::max(parallel, params.samples);
    const std::uint64_t input =
        allocRandomDoubles(pb, samples + taps + parallel, rng);
    const std::uint64_t coeff = allocRandomDoubles(pb, taps, rng);
    const std::uint64_t output =
        pb.allocData(static_cast<std::size_t>(samples + parallel) * 8);

    Label entry = pb.newLabel();
    pb.bind(entry);
    pb.li(6, static_cast<std::int64_t>(input));  // window base, +8/output
    pb.li(10, static_cast<std::int64_t>(output)); // output walker

    Loop out_loop(pb, 5, samples / parallel);
    detail::fzero(pb, 1);
    if (parallel == 2)
        detail::fzero(pb, 5);
    pb.mv(8, 6);                                 // sample walker
    pb.li(9, static_cast<std::int64_t>(coeff));  // coefficient walker
    Loop tap_loop(pb, 7, taps);
    pb.fload(2, 8, 0);
    pb.fload(3, 9, 0);
    pb.fop(Opcode::Fmadd, 1, 2, 3);
    if (parallel == 2) {
        pb.fload(4, 8, 8);
        pb.fop(Opcode::Fmadd, 5, 4, 3);
    }
    pb.alui(Opcode::Addi, 8, 8, 8);
    pb.alui(Opcode::Addi, 9, 9, 8);
    tap_loop.end();
    pb.fstore(1, 10, 0);
    if (parallel == 2)
        pb.fstore(5, 10, 8);
    pb.alui(Opcode::Addi, 10, 10, parallel * 8);
    pb.alui(Opcode::Addi, 6, 6, parallel * 8);
    out_loop.end();
    pb.ret();
    return entry;
}

Label
emitIir(ProgramBuilder &pb, const IirParams &params, stats::Rng &rng)
{
    const std::uint32_t samples = std::max(1u, params.samples);
    const std::uint64_t input = allocRandomDoubles(pb, samples, rng);
    const std::uint64_t output =
        pb.allocData(static_cast<std::size_t>(samples) * 8);
    // Stable biquad coefficients (poles well inside the unit circle).
    const double coeffs[5] = {0.2, 0.3, 0.2, 0.4, -0.1};
    const std::uint64_t coeff_slot = pb.allocDoubles(coeffs);
    const std::uint64_t state_slot = pb.allocData(4 * 8);

    Label entry = pb.newLabel();
    pb.bind(entry);
    for (int i = 0; i < 5; ++i)
        pb.fload(static_cast<Reg>(10 + i), isa::kRegZero,
                 static_cast<std::int64_t>(coeff_slot) + 8 * i);
    for (int i = 0; i < 4; ++i) // y1 y2 x1 x2 persist across calls
        pb.fload(static_cast<Reg>(20 + i), isa::kRegZero,
                 static_cast<std::int64_t>(state_slot) + 8 * i);
    pb.li(6, static_cast<std::int64_t>(input));
    pb.li(7, static_cast<std::int64_t>(output));

    Loop loop(pb, 5, samples);
    pb.fload(1, 6, 0);                 // x
    pb.fop(Opcode::Fmul, 2, 1, 10);    // y  = b0*x
    pb.fop(Opcode::Fmadd, 2, 22, 11);  // y += b1*x1
    pb.fop(Opcode::Fmadd, 2, 23, 12);  // y += b2*x2
    pb.fop(Opcode::Fmadd, 2, 20, 13);  // y += a1*y1
    pb.fop(Opcode::Fmadd, 2, 21, 14);  // y += a2*y2
    pb.fop2(Opcode::Fmov, 23, 22);     // x2 = x1
    pb.fop2(Opcode::Fmov, 22, 1);      // x1 = x
    pb.fop2(Opcode::Fmov, 21, 20);     // y2 = y1
    pb.fop2(Opcode::Fmov, 20, 2);      // y1 = y
    pb.fstore(2, 7, 0);
    pb.alui(Opcode::Addi, 6, 6, 8);
    pb.alui(Opcode::Addi, 7, 7, 8);
    loop.end();

    for (int i = 0; i < 4; ++i)
        pb.fstore(static_cast<Reg>(20 + i), isa::kRegZero,
                  static_cast<std::int64_t>(state_slot) + 8 * i);
    pb.ret();
    return entry;
}

Label
emitFftPass(ProgramBuilder &pb, const FftParams &params, stats::Rng &rng)
{
    const std::uint32_t log2n = std::min(std::max(params.log2n, 2u), 16u);
    const std::uint32_t n = 1u << log2n;
    const std::uint64_t re = allocRandomDoubles(pb, n, rng);
    const std::uint64_t im = allocRandomDoubles(pb, n, rng);
    // Twiddle factors: w_j = exp(-2*pi*i*j/n), j in [0, n/2).
    std::vector<double> wre(n / 2), wim(n / 2);
    for (std::uint32_t j = 0; j < n / 2; ++j) {
        const double ang = -2.0 * 3.14159265358979323846 * j / n;
        wre[j] = std::cos(ang);
        wim[j] = std::sin(ang);
    }
    const std::uint64_t wre_base = pb.allocDoubles(wre);
    const std::uint64_t wim_base = pb.allocDoubles(wim);

    Label entry = pb.newLabel();
    pb.bind(entry);
    pb.li(16, static_cast<std::int64_t>(re));
    pb.li(17, static_cast<std::int64_t>(im));
    pb.li(18, static_cast<std::int64_t>(wre_base));
    pb.li(19, static_cast<std::int64_t>(wim_base));
    pb.li(20, n);
    pb.li(5, 1);     // s: half block size
    pb.li(6, n / 2); // twiddle stride

    Label pass_loop = pb.newLabel();
    pb.bind(pass_loop);
    pb.li(7, 0); // base
    Label base_loop = pb.newLabel();
    pb.bind(base_loop);
    pb.li(8, 0); // j
    Label j_loop = pb.newLabel();
    pb.bind(j_loop);
    // Element addresses: idx1 = base + j, idx2 = idx1 + s.
    pb.alu(Opcode::Add, 10, 7, 8);
    pb.alui(Opcode::Slli, 11, 10, 3);
    pb.alu(Opcode::Add, 12, 11, 16); // &re[idx1]
    pb.alu(Opcode::Add, 13, 11, 17); // &im[idx1]
    pb.alui(Opcode::Slli, 14, 5, 3);
    pb.alu(Opcode::Add, 21, 12, 14); // &re[idx2]
    pb.alu(Opcode::Add, 22, 13, 14); // &im[idx2]
    // Twiddle index: j * tw_stride.
    pb.alu(Opcode::Mul, 15, 8, 6);
    pb.alui(Opcode::Slli, 15, 15, 3);
    pb.alu(Opcode::Add, 23, 15, 18);
    pb.alu(Opcode::Add, 24, 15, 19);
    pb.fload(1, 12, 0); // re1
    pb.fload(2, 13, 0); // im1
    pb.fload(3, 21, 0); // re2
    pb.fload(4, 22, 0); // im2
    pb.fload(5, 23, 0); // wr
    pb.fload(6, 24, 0); // wi
    // t = w * x2 (complex).
    pb.fop(Opcode::Fmul, 7, 3, 5);
    pb.fop(Opcode::Fmul, 8, 4, 6);
    pb.fop(Opcode::Fsub, 7, 7, 8); // tre
    pb.fop(Opcode::Fmul, 8, 3, 6);
    pb.fop(Opcode::Fmadd, 8, 4, 5); // tim
    pb.fop(Opcode::Fadd, 9, 1, 7);
    pb.fstore(9, 12, 0);
    pb.fop(Opcode::Fadd, 9, 2, 8);
    pb.fstore(9, 13, 0);
    pb.fop(Opcode::Fsub, 9, 1, 7);
    pb.fstore(9, 21, 0);
    pb.fop(Opcode::Fsub, 9, 2, 8);
    pb.fstore(9, 22, 0);
    pb.alui(Opcode::Addi, 8, 8, 1);
    pb.branch(Opcode::Blt, 8, 5, j_loop);
    pb.alu(Opcode::Add, 7, 7, 5);
    pb.alu(Opcode::Add, 7, 7, 5);
    pb.branch(Opcode::Blt, 7, 20, base_loop);
    pb.alui(Opcode::Slli, 5, 5, 1);
    pb.alui(Opcode::Srli, 6, 6, 1);
    pb.branch(Opcode::Blt, 5, 20, pass_loop);
    pb.ret();
    return entry;
}

Label
emitFpMath(ProgramBuilder &pb, const FpMathParams &params, stats::Rng &rng)
{
    const std::uint32_t n = std::max(1u, params.n);
    const std::uint64_t input = allocRandomDoubles(pb, n, rng);
    const std::uint64_t output =
        pb.allocData(static_cast<std::size_t>(n) * 8);
    const double one[1] = {1.0};
    const std::uint64_t one_slot = pb.allocDoubles(one);

    Label entry = pb.newLabel();
    pb.bind(entry);
    pb.li(6, static_cast<std::int64_t>(input));
    pb.li(7, static_cast<std::int64_t>(output));
    pb.fload(10, isa::kRegZero, static_cast<std::int64_t>(one_slot));
    detail::fzero(pb, 4);

    Loop loop(pb, 5, n);
    pb.fload(1, 6, 0);
    pb.fop2(Opcode::Fabs, 1, 1);       // keep sqrt's domain valid
    pb.fop2(Opcode::Fsqrt, 2, 1);
    pb.fop(Opcode::Fadd, 2, 2, 10);    // denominator >= 1
    pb.fop(Opcode::Fdiv, 3, 1, 2);
    pb.fop(Opcode::Fadd, 4, 4, 3);
    pb.fstore(3, 7, 0);
    pb.alui(Opcode::Addi, 6, 6, 8);
    pb.alui(Opcode::Addi, 7, 7, 8);
    loop.end();
    pb.ret();
    return entry;
}

Label
emitReduceChain(ProgramBuilder &pb, const ReduceChainParams &params)
{
    const std::uint32_t steps = std::max(4u, params.length) / 4;

    Label entry = pb.newLabel();
    pb.bind(entry);
    if (params.fp) {
        detail::fzero(pb, 1);
        const double consts[2] = {1.0000001, 0.9999999};
        const std::uint64_t slot = pb.allocDoubles(consts);
        pb.fload(2, isa::kRegZero, static_cast<std::int64_t>(slot));
        pb.fload(3, isa::kRegZero, static_cast<std::int64_t>(slot) + 8);
    } else {
        pb.li(10, 0);
        pb.li(11, 0x5bd1e995);
        pb.li(12, 7);
    }

    Loop loop(pb, 5, steps);
    if (params.fp) {
        // Four serially dependent fp operations per iteration.
        pb.fop(Opcode::Fadd, 1, 1, 2);
        if (params.use_mul)
            pb.fop(Opcode::Fmul, 1, 1, 3);
        else
            pb.fop(Opcode::Fsub, 1, 1, 3);
        pb.fop(Opcode::Fadd, 1, 1, 3);
        pb.fop(Opcode::Fsub, 1, 1, 2);
    } else {
        pb.alu(Opcode::Add, 10, 10, 11);
        if (params.use_mul)
            pb.alu(Opcode::Mul, 10, 10, 12);
        else
            pb.alu(Opcode::Xor, 10, 10, 12);
        pb.alu(Opcode::Xor, 10, 10, 11);
        pb.alui(Opcode::Srai, 13, 10, 9);
        pb.alu(Opcode::Add, 10, 10, 13);
    }
    loop.end();
    pb.ret();
    return entry;
}

} // namespace mica::workloads
