/**
 * @file
 * Synthetic stand-ins for the emerging domain-specific suites: BioPerf
 * (bio-informatics, 10 benchmarks), BioMetricsWorkload (5) and MediaBench
 * II (7).
 *
 * Deliberate design points mirroring the paper's findings:
 *  - BioPerf leans on kernel families and parameter regions no other suite
 *    uses (DNA-alphabet dynamic programming, tiny-stride integer-dense
 *    sweeps) — it must come out with the highest fraction of unique
 *    behaviour (~65% in the paper).
 *  - BMW and MediaBench II intentionally *share* kernel families with each
 *    other and with SPEC members (facerec, sphinx3, h264ref), giving them
 *    narrow coverage and low uniqueness (~9-19%).
 */

#include "workloads/suite_helpers.hh"
#include "workloads/suite_registry.hh"

namespace mica::workloads::detail {

namespace {

using Phases = std::vector<PhaseSpec>;

void
registerBioPerf(SuiteCatalog &cat)
{
    auto add = [&cat](const char *name, std::uint32_t inputs,
                      std::uint32_t intervals, std::uint64_t seed,
                      std::function<Phases(std::uint32_t)> fn) {
        cat.add({name, "BioPerf", inputs, intervals, std::move(fn), seed});
    };

    // blast: seeded local alignment - DNA scanning plus index gathers.
    add("blast", 1, 73, 0x30001, [](std::uint32_t) {
        return Phases{
            stringPhase({.text_len = 4096, .pattern_len = 11,
                         .alphabet = 4}, 10),
            swPhase({.query_len = 12, .db_len = 48, .alphabet = 4}, 3),
            hashPhase({.log2_slots = 15, .probes = 512, .update = false},
                      2),
        };
    });

    // ce: combinatorial extension structure alignment - fp distance
    // matrices over residue pairs.
    add("ce", 1, 8, 0x30002, [](std::uint32_t) {
        return Phases{
            matmulPhase({.n = 14}, 3),
            swPhase({.query_len = 16, .db_len = 40, .alphabet = 20}, 3),
        };
    });

    // clustalw: progressive multiple alignment - DP-dominated.
    add("clustalw", 1, 43, 0x30003, [](std::uint32_t) {
        return Phases{
            swPhase({.query_len = 24, .db_len = 96, .alphabet = 20}, 10),
            treeWalkPhase({.log2_size = 9, .searches = 48}, 1),
        };
    });

    // fasta: the heavyweight of the suite (two benchmark-specific
    // clusters covering ~7% of the whole analysis in the paper): word
    // scanning over large DNA text plus banded DP.
    add("fasta", 2, 350, 0x30004, [](std::uint32_t in) {
        return Phases{
            stringPhase({.text_len = 6144u << in, .pattern_len = 6,
                         .alphabet = 4}, 5),
            swPhase({.query_len = 20, .db_len = 80, .alphabet = 4}, 4),
            histogramPhase({.input_bytes = 4096, .alphabet = 4}, 2),
        };
    });

    // glimmer: gene finding with interpolated Markov models.
    add("glimmer", 1, 8, 0x30005, [](std::uint32_t) {
        return Phases{
            hmmPhase({.states = 48, .steps = 24}, 4),
            stringPhase({.text_len = 1024, .pattern_len = 6,
                         .alphabet = 4}, 2),
        };
    });

    // grappa: genome rearrangement - the paper highlights its unique
    // combination of massive integer operation counts with very
    // small-distance global strides.
    add("grappa", 1, 100, 0x30006, [](std::uint32_t) {
        return Phases{
            reducePhase({.length = 16384, .fp = false, .use_mul = true},
                        6),
            streamPhase({.elements = 1024, .stride = 1,
                         .mode = StreamParams::Mode::Scale, .fp = false,
                         .unroll = 1}, 8),
            histogramPhase({.input_bytes = 1024, .alphabet = 4}, 2),
        };
    });

    // hmmer (BioPerf edition): same core as SPEC's but a small model with
    // a long erratic tail - the paper finds only partial overlap.
    add("hmmer", 1, 125, 0x30007, [](std::uint32_t) {
        return Phases{
            hmmPhase({.states = 32, .steps = 24}, 12),
            stringPhase({.text_len = 1536, .pattern_len = 7,
                         .alphabet = 20}, 4),
            branchPhase({.branches = 1024, .taken_threshold = 150,
                         .pattern_bits = 0}, 2),
        };
    });

    // phylip: phylogeny - likelihood evaluation over tree nodes.
    add("phylip", 1, 25, 0x30008, [](std::uint32_t) {
        return Phases{
            gatherPhase({.n = 768, .log2_range = 10, .scatter = false}, 3),
            fpMathPhase({.n = 384}, 3),
            swPhase({.query_len = 10, .db_len = 40, .alphabet = 4}, 2),
        };
    });

    // predator: gene prediction - hashing plus DNA scanning.
    add("predator", 1, 18, 0x30009, [](std::uint32_t) {
        return Phases{
            hashPhase({.log2_slots = 11, .probes = 768, .update = true},
                      3),
            stringPhase({.text_len = 2048, .pattern_len = 9,
                         .alphabet = 4}, 3),
        };
    });

    // tcoffee: consistency-based multiple alignment - DP + list juggling.
    add("tcoffee", 1, 44, 0x3000a, [](std::uint32_t) {
        return Phases{
            swPhase({.query_len = 20, .db_len = 64, .alphabet = 20}, 5),
            chasePhase({.nodes = 2048, .hops = 768, .payload = true}, 2),
            stringPhase({.text_len = 1024, .pattern_len = 5,
                         .alphabet = 20}, 2),
        };
    });
}

void
registerBmw(SuiteCatalog &cat)
{
    auto add = [&cat](const char *name, std::uint32_t inputs,
                      std::uint32_t intervals, std::uint64_t seed,
                      std::function<Phases(std::uint32_t)> fn) {
        cat.add({name, "BMW", inputs, intervals, std::move(fn), seed});
    };

    // face: eigenface recognition - image convolution + projections.
    // Shares its convolution parameters with SPECfp2000's facerec so the
    // two overlap in the workload space (BMW is a low-uniqueness suite).
    add("face", 1, 64, 0x40001, [](std::uint32_t) {
        return Phases{
            convPhase({.rows = 20, .cols = 40, .k = 3, .fp = true}, 12),
            matmulPhase({.n = 12}, 8),
            streamPhase({.elements = 2048, .stride = 1,
                         .mode = StreamParams::Mode::Dot, .fp = true,
                         .unroll = 2}, 8),
        };
    });

    // finger: minutiae extraction - fixed-point image ops + ridge walks.
    add("finger", 1, 182, 0x40002, [](std::uint32_t) {
        return Phases{
            convPhase({.rows = 24, .cols = 48, .k = 3, .fp = false}, 12),
            treeWalkPhase({.log2_size = 12, .searches = 128}, 10),
            quantizePhase({.n = 512}, 12),
        };
    });

    // gait: accelerometer signal processing - filter banks.
    add("gait", 1, 32, 0x40003, [](std::uint32_t) {
        return Phases{
            firPhase({.taps = 40, .samples = 160, .parallel = 1}, 12),
            iirPhase({.samples = 384}, 12),
        };
    });

    // hand: hand-geometry verification - fixed-point contour processing.
    add("hand", 1, 270, 0x40004, [](std::uint32_t) {
        return Phases{
            convPhase({.rows = 20, .cols = 40, .k = 3, .fp = false}, 12),
            histogramPhase({.input_bytes = 3072, .alphabet = 128}, 8),
            quantizePhase({.n = 512}, 12),
        };
    });

    // speak: speaker verification - MFCC-ish front end + HMM scoring
    // (the paper clusters "voice" with sphinx3).
    add("speak", 1, 71, 0x40005, [](std::uint32_t) {
        return Phases{
            firPhase({.taps = 40, .samples = 160, .parallel = 1}, 12),
            fftPhase({.log2n = 7}, 8),
            hmmPhase({.states = 40, .steps = 24}, 8),
        };
    });
}

void
registerMediaBench(SuiteCatalog &cat)
{
    auto add = [&cat](const char *name, std::uint32_t inputs,
                      std::uint32_t intervals, std::uint64_t seed,
                      std::function<Phases(std::uint32_t)> fn) {
        cat.add({name, "MediaBenchII", inputs, intervals, std::move(fn),
                 seed});
    };

    // h263enc: low-bitrate video - SAD + DCT + quantization.
    add("h263enc", 1, 6, 0x50001, [](std::uint32_t) {
        return Phases{
            sadPhase({.candidates = 16}, 12),
            dctPhase({.blocks = 4}, 10),
            quantizePhase({.n = 1024}, 12),
        };
    });

    // h264enc: like h263 with a larger search and deblocking-ish streams.
    add("h264enc", 1, 63, 0x50002, [](std::uint32_t) {
        return Phases{
            sadPhase({.candidates = 16}, 16),
            dctPhase({.blocks = 4}, 10),
            quantizePhase({.n = 1024}, 12),
            streamPhase({.elements = 2048, .stride = 1,
                         .mode = StreamParams::Mode::Copy, .fp = false,
                         .unroll = 4}, 8),
        };
    });

    // jpeg2000: wavelet transform = filter pairs + quantization.
    add("jpeg2000", 1, 6, 0x50003, [](std::uint32_t) {
        return Phases{
            firPhase({.taps = 16, .samples = 192, .parallel = 2}, 12),
            quantizePhase({.n = 1024}, 12),
        };
    });

    // jpegenc: classic DCT pipeline + entropy-coding histograms.
    add("jpegenc", 1, 8, 0x50004, [](std::uint32_t) {
        return Phases{
            dctPhase({.blocks = 4}, 12),
            quantizePhase({.n = 1024}, 12),
            histogramPhase({.input_bytes = 2048, .alphabet = 200}, 8),
        };
    });

    // mpeg2enc: motion estimation dominated.
    add("mpeg2enc", 1, 10, 0x50005, [](std::uint32_t) {
        return Phases{
            sadPhase({.candidates = 16}, 14),
            dctPhase({.blocks = 4}, 8),
            quantizePhase({.n = 1024}, 10),
        };
    });

    // mpeg4enc: adds prediction-mode decisions to the mpeg2 pipeline.
    add("mpeg4enc", 1, 12, 0x50006, [](std::uint32_t) {
        return Phases{
            sadPhase({.candidates = 16}, 14),
            dctPhase({.blocks = 4}, 8),
            branchPhase({.branches = 768, .taken_threshold = 80,
                         .pattern_bits = 4}, 8),
            quantizePhase({.n = 1024}, 10),
        };
    });

    // mpeg4-mmx: the hand-vectorized variant - same pipeline, wider
    // unrolled copies standing in for SIMD.
    add("mpeg4-mmx", 1, 8, 0x50007, [](std::uint32_t) {
        return Phases{
            sadPhase({.candidates = 16}, 14),
            streamPhase({.elements = 4096, .stride = 1,
                         .mode = StreamParams::Mode::Copy, .fp = false,
                         .unroll = 4}, 10),
            dctPhase({.blocks = 4}, 8),
        };
    });
}

} // namespace

void
registerDomainSuites(SuiteCatalog &catalog)
{
    registerBioPerf(catalog);
    registerBmw(catalog);
    registerMediaBench(catalog);
}

} // namespace mica::workloads::detail
