#include "workloads/workload.hh"

#include <algorithm>
#include <stdexcept>

#include "workloads/suite_registry.hh"

namespace mica::workloads {

isa::Program
composeProgram(const std::string &name, std::uint64_t seed,
               const std::vector<PhaseSpec> &phases)
{
    if (phases.empty())
        throw std::invalid_argument("composeProgram: no phases");

    ProgramBuilder pb(name);
    stats::Rng rng(seed);

    // Instruction 0 jumps over the kernel bodies to the scheduler.
    Label main = pb.newLabel();
    pb.jump(main);

    std::vector<Label> entries;
    entries.reserve(phases.size());
    for (const PhaseSpec &phase : phases)
        entries.push_back(phase.emit(pb, rng));

    // Scheduler: loop the phase schedule forever. x28/x29 are reserved for
    // the scheduler by the kernel calling convention.
    pb.bind(main);
    Label top = pb.newLabel();
    pb.bind(top);
    for (std::size_t p = 0; p < phases.size(); ++p) {
        pb.li(kSchedulerReg0, std::max(1u, phases[p].reps));
        Label phase_loop = pb.newLabel();
        pb.bind(phase_loop);
        pb.call(entries[p]);
        pb.alui(isa::Opcode::Addi, kSchedulerReg0, kSchedulerReg0, -1);
        pb.branch(isa::Opcode::Bne, kSchedulerReg0, isa::kRegZero,
                  phase_loop);
    }
    pb.jump(top);
    return pb.build();
}

isa::Program
BenchmarkSpec::build(std::uint32_t input) const
{
    if (input >= num_inputs)
        throw std::out_of_range("BenchmarkSpec::build: bad input index");
    // Distinct but reproducible data per input.
    const std::uint64_t input_seed =
        seed ^ (0x9e3779b97f4a7c15ULL * (input + 1));
    return composeProgram(name + "." + std::to_string(input), input_seed,
                          phases(input));
}

std::uint32_t
BenchmarkSpec::intervalsForInput(std::uint32_t input) const
{
    const std::uint32_t base = total_intervals / num_inputs;
    const std::uint32_t extra = input < total_intervals % num_inputs ? 1 : 0;
    return std::max(1u, base + extra);
}

const std::vector<std::string> &
SuiteCatalog::suiteNames()
{
    static const std::vector<std::string> names = {
        "BioPerf",     "BMW",         "SPECint2000", "SPECfp2000",
        "SPECint2006", "SPECfp2006",  "MediaBenchII",
    };
    return names;
}

SuiteCatalog::SuiteCatalog()
{
    detail::registerSpecCpu2000(*this);
    detail::registerSpecCpu2006(*this);
    detail::registerDomainSuites(*this);
}

void
SuiteCatalog::add(BenchmarkSpec spec)
{
    if (find(spec.id()))
        throw std::logic_error("SuiteCatalog: duplicate benchmark " +
                               spec.id());
    if (std::find(suiteNames().begin(), suiteNames().end(), spec.suite) ==
        suiteNames().end())
        throw std::logic_error("SuiteCatalog: unknown suite " + spec.suite);
    benchmarks_.push_back(std::move(spec));
}

std::vector<const BenchmarkSpec *>
SuiteCatalog::bySuite(std::string_view suite) const
{
    std::vector<const BenchmarkSpec *> out;
    for (const auto &b : benchmarks_)
        if (b.suite == suite)
            out.push_back(&b);
    return out;
}

const BenchmarkSpec *
SuiteCatalog::find(std::string_view id) const
{
    for (const auto &b : benchmarks_)
        if (b.id() == id)
            return &b;
    return nullptr;
}

} // namespace mica::workloads
