/**
 * @file
 * Programmatic code generator for SRISC workloads.
 *
 * ProgramBuilder is the workload library's "compiler backend": kernels emit
 * instructions through it, using forward-referenceable labels for control
 * flow and an integrated data-segment allocator (including tables of code
 * addresses for indirect dispatch). build() resolves all fixups and returns
 * a loadable Program.
 */

#ifndef MICAPHASE_WORKLOADS_PROGRAM_BUILDER_HH
#define MICAPHASE_WORKLOADS_PROGRAM_BUILDER_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace mica::workloads {

/** Register index alias for readability in kernel code. */
using Reg = std::uint8_t;

/** Scratch integer registers available to generated kernels. */
constexpr Reg kKernelRegBase = 5;  ///< x5..x27 are kernel scratch
constexpr Reg kKernelRegLimit = 28;
constexpr Reg kSchedulerReg0 = 28; ///< x28..x31 reserved for the scheduler
constexpr Reg kSchedulerReg1 = 29;
constexpr Reg kSchedulerReg2 = 30;
constexpr Reg kSchedulerReg3 = 31;

/** Opaque control-flow label. */
struct Label
{
    std::uint32_t id = ~0u;
    [[nodiscard]] bool valid() const { return id != ~0u; }
};

/** Code generator with label fixups and data allocation. */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name);

    /** @name Labels */
    /// @{
    [[nodiscard]] Label newLabel();
    /** Bind a label to the next emitted instruction. */
    void bind(Label label);
    /// @}

    /** @name Data segment */
    /// @{
    /** Reserve zero-initialized bytes; returns the absolute address. */
    std::uint64_t allocData(std::size_t bytes, std::size_t align = 8);
    /** Emit 64-bit words; returns the absolute address. */
    std::uint64_t allocWords(std::span<const std::uint64_t> words);
    /** Emit doubles; returns the absolute address. */
    std::uint64_t allocDoubles(std::span<const double> values);
    /** Emit a table of absolute code addresses (for jalr dispatch). */
    std::uint64_t allocLabelTable(std::span<const Label> labels);
    /** Patch an already reserved 64-bit slot with a constant. */
    void patchWord(std::uint64_t address, std::uint64_t value);
    /// @}

    /** @name Raw emission */
    /// @{
    /** Append a fully formed instruction; returns its index. */
    std::size_t emit(const isa::Instruction &instr);
    /** Current instruction count (== index of the next instruction). */
    [[nodiscard]] std::size_t position() const { return code_.size(); }
    /// @}

    /** @name Convenience emitters */
    /// @{
    void li(Reg rd, std::int64_t imm);          ///< addi rd, x0, imm
    void mv(Reg rd, Reg rs);                    ///< addi rd, rs, 0
    void alu(isa::Opcode op, Reg rd, Reg rs1, Reg rs2);
    void alui(isa::Opcode op, Reg rd, Reg rs1, std::int64_t imm);
    void load(isa::Opcode op, Reg rd, Reg base, std::int64_t offset = 0);
    void store(isa::Opcode op, Reg src, Reg base, std::int64_t offset = 0);
    void fload(Reg fd, Reg base, std::int64_t offset = 0);
    void fstore(Reg fs, Reg base, std::int64_t offset = 0);
    void fop(isa::Opcode op, Reg fd, Reg fs1, Reg fs2);
    void fop2(isa::Opcode op, Reg fd, Reg fs1);
    void fcmp(isa::Opcode op, Reg rd, Reg fs1, Reg fs2);
    void cvtif(Reg fd, Reg rs);
    void cvtfi(Reg rd, Reg fs);
    void branch(isa::Opcode op, Reg rs1, Reg rs2, Label target);
    void jump(Label target);                    ///< jal x0, target
    void call(Label target);                    ///< jal ra, target
    void callIndirect(Reg rs);                  ///< jalr ra, rs, 0
    void jumpIndirect(Reg rs);                  ///< jalr x0, rs, 0
    void ret();                                 ///< jalr x0, ra, 0
    void nop();
    void halt();
    /// @}

    /**
     * Resolve fixups and produce the program image.
     * Throws std::logic_error when a referenced label was never bound.
     */
    [[nodiscard]] isa::Program build();

  private:
    struct CodeFixup
    {
        std::size_t instr_index;
        std::uint32_t label_id;
    };
    struct DataFixup
    {
        std::size_t data_offset;
        std::uint32_t label_id;
    };

    std::string name_;
    std::vector<isa::Instruction> code_;
    std::vector<std::uint8_t> data_;
    std::vector<std::int64_t> label_positions_; ///< instr index or -1
    std::vector<CodeFixup> code_fixups_;
    std::vector<DataFixup> data_fixups_;
};

} // namespace mica::workloads

#endif // MICAPHASE_WORKLOADS_PROGRAM_BUILDER_HH
