/**
 * @file
 * Shared helpers for kernel emission (loop scaffolding, constants, idioms).
 * Internal to the workloads library.
 */

#ifndef MICAPHASE_WORKLOADS_KERNELS_UTIL_HH
#define MICAPHASE_WORKLOADS_KERNELS_UTIL_HH

#include <cstdint>

#include "workloads/program_builder.hh"

namespace mica::workloads::detail {

/** Counted-loop scaffolding: construct at loop top, call end() at bottom. */
class Loop
{
  public:
    Loop(ProgramBuilder &pb, Reg counter, std::int64_t count)
        : pb_(pb), counter_(counter)
    {
        pb_.li(counter_, count);
        top_ = pb_.newLabel();
        pb_.bind(top_);
    }

    /** Emit the decrement-and-branch closing the loop. */
    void
    end()
    {
        pb_.alui(isa::Opcode::Addi, counter_, counter_, -1);
        pb_.branch(isa::Opcode::Bne, counter_, isa::kRegZero, top_);
    }

  private:
    ProgramBuilder &pb_;
    Reg counter_;
    Label top_;
};

/**
 * Load a 64-bit constant that may not fit the 34-bit immediate: the value
 * is placed in the data segment and loaded by absolute address.
 */
inline void
loadBigConst(ProgramBuilder &pb, Reg rd, std::uint64_t value)
{
    const std::uint64_t words[1] = {value};
    const std::uint64_t slot = pb.allocWords(words);
    pb.load(isa::Opcode::Ld, rd, isa::kRegZero,
            static_cast<std::int64_t>(slot));
}

/** Set an fp register to +0.0 (conversion from x0; safe for any state). */
inline void
fzero(ProgramBuilder &pb, Reg fd)
{
    pb.cvtif(fd, isa::kRegZero);
}

/** Branch-free absolute value of src into dst, clobbering tmp. */
inline void
emitAbs(ProgramBuilder &pb, Reg dst, Reg src, Reg tmp)
{
    pb.alui(isa::Opcode::Srai, tmp, src, 63);
    pb.alu(isa::Opcode::Xor, dst, src, tmp);
    pb.alu(isa::Opcode::Sub, dst, dst, tmp);
}

/** acc = max(acc, candidate) via a data-dependent branch. */
inline void
emitMaxInto(ProgramBuilder &pb, Reg acc, Reg candidate)
{
    Label skip = pb.newLabel();
    pb.branch(isa::Opcode::Blt, candidate, acc, skip);
    pb.mv(acc, candidate);
    pb.bind(skip);
}

/** Emit the standard 64-bit LCG step: state = state * mul_reg + 12345. */
inline void
emitLcgStep(ProgramBuilder &pb, Reg state, Reg mul_reg)
{
    pb.alu(isa::Opcode::Mul, state, state, mul_reg);
    pb.alui(isa::Opcode::Addi, state, state, 12345);
}

/** The multiplier used by generated LCGs (Knuth's MMIX constant). */
constexpr std::uint64_t kLcgMultiplier = 6364136223846793005ULL;

} // namespace mica::workloads::detail

#endif // MICAPHASE_WORKLOADS_KERNELS_UTIL_HH
