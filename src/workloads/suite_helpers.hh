/**
 * @file
 * Internal phase-factory helpers shared by the suite registration units:
 * each helper binds one kernel family's parameters into a PhaseSpec.
 */

#ifndef MICAPHASE_WORKLOADS_SUITE_HELPERS_HH
#define MICAPHASE_WORKLOADS_SUITE_HELPERS_HH

#include "workloads/kernels.hh"
#include "workloads/workload.hh"

namespace mica::workloads::detail {

inline PhaseSpec
streamPhase(StreamParams p, std::uint32_t reps)
{
    return {"stream",
            [p](ProgramBuilder &pb, stats::Rng &) {
                return emitStream(pb, p);
            },
            reps};
}

inline PhaseSpec
stencilPhase(StencilParams p, std::uint32_t reps)
{
    return {"stencil2d",
            [p](ProgramBuilder &pb, stats::Rng &) {
                return emitStencil2D(pb, p);
            },
            reps};
}

inline PhaseSpec
matmulPhase(MatMulParams p, std::uint32_t reps)
{
    return {"matmul",
            [p](ProgramBuilder &pb, stats::Rng &rng) {
                return emitMatMul(pb, p, rng);
            },
            reps};
}

inline PhaseSpec
convPhase(ConvParams p, std::uint32_t reps)
{
    return {"conv2d",
            [p](ProgramBuilder &pb, stats::Rng &rng) {
                return emitConv2D(pb, p, rng);
            },
            reps};
}

inline PhaseSpec
firPhase(FirParams p, std::uint32_t reps)
{
    return {"fir",
            [p](ProgramBuilder &pb, stats::Rng &rng) {
                return emitFir(pb, p, rng);
            },
            reps};
}

inline PhaseSpec
iirPhase(IirParams p, std::uint32_t reps)
{
    return {"iir",
            [p](ProgramBuilder &pb, stats::Rng &rng) {
                return emitIir(pb, p, rng);
            },
            reps};
}

inline PhaseSpec
fftPhase(FftParams p, std::uint32_t reps)
{
    return {"fft",
            [p](ProgramBuilder &pb, stats::Rng &rng) {
                return emitFftPass(pb, p, rng);
            },
            reps};
}

inline PhaseSpec
fpMathPhase(FpMathParams p, std::uint32_t reps)
{
    return {"fp_math",
            [p](ProgramBuilder &pb, stats::Rng &rng) {
                return emitFpMath(pb, p, rng);
            },
            reps};
}

inline PhaseSpec
reducePhase(ReduceChainParams p, std::uint32_t reps)
{
    return {"reduce_chain",
            [p](ProgramBuilder &pb, stats::Rng &) {
                return emitReduceChain(pb, p);
            },
            reps};
}

inline PhaseSpec
chasePhase(PointerChaseParams p, std::uint32_t reps)
{
    return {"pointer_chase",
            [p](ProgramBuilder &pb, stats::Rng &rng) {
                return emitPointerChase(pb, p, rng);
            },
            reps};
}

inline PhaseSpec
hashPhase(HashProbeParams p, std::uint32_t reps)
{
    return {"hash_probe",
            [p](ProgramBuilder &pb, stats::Rng &rng) {
                return emitHashProbe(pb, p, rng);
            },
            reps};
}

inline PhaseSpec
gatherPhase(GatherParams p, std::uint32_t reps)
{
    return {"gather",
            [p](ProgramBuilder &pb, stats::Rng &rng) {
                return emitGather(pb, p, rng);
            },
            reps};
}

inline PhaseSpec
histogramPhase(HistogramParams p, std::uint32_t reps)
{
    return {"histogram",
            [p](ProgramBuilder &pb, stats::Rng &rng) {
                return emitHistogram(pb, p, rng);
            },
            reps};
}

inline PhaseSpec
treeWalkPhase(TreeWalkParams p, std::uint32_t reps)
{
    return {"tree_walk",
            [p](ProgramBuilder &pb, stats::Rng &rng) {
                return emitTreeWalk(pb, p, rng);
            },
            reps};
}

inline PhaseSpec
sortPhase(SortPassParams p, std::uint32_t reps)
{
    return {"sort_pass",
            [p](ProgramBuilder &pb, stats::Rng &rng) {
                return emitSortPass(pb, p, rng);
            },
            reps};
}

inline PhaseSpec
branchPhase(RandomBranchParams p, std::uint32_t reps)
{
    return {"random_branch",
            [p](ProgramBuilder &pb, stats::Rng &) {
                return emitRandomBranch(pb, p);
            },
            reps};
}

inline PhaseSpec
bloatPhase(CodeBloatParams p, std::uint32_t reps)
{
    return {"code_bloat",
            [p](ProgramBuilder &pb, stats::Rng &rng) {
                return emitCodeBloat(pb, p, rng);
            },
            reps};
}

inline PhaseSpec
stringPhase(StringMatchParams p, std::uint32_t reps)
{
    return {"string_match",
            [p](ProgramBuilder &pb, stats::Rng &rng) {
                return emitStringMatch(pb, p, rng);
            },
            reps};
}

inline PhaseSpec
swPhase(SmithWatermanParams p, std::uint32_t reps)
{
    return {"smith_waterman",
            [p](ProgramBuilder &pb, stats::Rng &rng) {
                return emitSmithWaterman(pb, p, rng);
            },
            reps};
}

inline PhaseSpec
hmmPhase(ProfileHmmParams p, std::uint32_t reps)
{
    return {"profile_hmm",
            [p](ProgramBuilder &pb, stats::Rng &rng) {
                return emitProfileHmm(pb, p, rng);
            },
            reps};
}

inline PhaseSpec
dctPhase(DctParams p, std::uint32_t reps)
{
    return {"dct8x8",
            [p](ProgramBuilder &pb, stats::Rng &rng) {
                return emitDct8x8(pb, p, rng);
            },
            reps};
}

inline PhaseSpec
sadPhase(SadParams p, std::uint32_t reps)
{
    return {"sad",
            [p](ProgramBuilder &pb, stats::Rng &rng) {
                return emitSad(pb, p, rng);
            },
            reps};
}

inline PhaseSpec
quantizePhase(QuantizeParams p, std::uint32_t reps)
{
    return {"quantize",
            [p](ProgramBuilder &pb, stats::Rng &rng) {
                return emitQuantize(pb, p, rng);
            },
            reps};
}

} // namespace mica::workloads::detail

#endif // MICAPHASE_WORKLOADS_SUITE_HELPERS_HH
