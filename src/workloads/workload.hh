/**
 * @file
 * Benchmark composition: phase schedules, benchmark specs, and the suite
 * catalog holding the 77 synthetic benchmarks standing in for the paper's
 * five benchmark suites (seven suite groups: the paper splits SPEC CPU into
 * integer and floating-point halves).
 */

#ifndef MICAPHASE_WORKLOADS_WORKLOAD_HH
#define MICAPHASE_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "isa/program.hh"
#include "stats/rng.hh"
#include "workloads/program_builder.hh"

namespace mica::workloads {

/** One phase of a benchmark: a kernel instance and how often it runs. */
struct PhaseSpec
{
    /** Kernel family name (documentation / tests). */
    std::string kernel;
    /** Emits the kernel subroutine; called once at program build time. */
    std::function<Label(ProgramBuilder &, stats::Rng &)> emit;
    /** Kernel invocations per visit of this phase. */
    std::uint32_t reps = 1;
};

/**
 * Compose a benchmark program from a phase schedule.
 *
 * The generated program runs the schedule in an infinite loop (phase 0 for
 * reps_0 calls, phase 1 for reps_1 calls, ...), which yields the
 * time-varying behaviour the phase-level methodology studies. The program
 * never halts; the characterization driver runs it for a fixed instruction
 * budget.
 */
[[nodiscard]] isa::Program composeProgram(
    const std::string &name, std::uint64_t seed,
    const std::vector<PhaseSpec> &phases);

/** A benchmark: named phase schedules for one or more inputs. */
struct BenchmarkSpec
{
    std::string name;  ///< e.g. "mcf"
    std::string suite; ///< e.g. "SPECint2000"
    std::uint32_t num_inputs = 1;
    /**
     * Total instruction intervals to characterize across all inputs in the
     * default experiment configuration (scaled-down Table 3 budget).
     */
    std::uint32_t total_intervals = 40;
    /** Phase schedule for a given input index (< num_inputs). */
    std::function<std::vector<PhaseSpec>(std::uint32_t input)> phases;
    std::uint64_t seed = 0;

    /** Suite-qualified unique identifier ("SPECint2000/mcf"). */
    [[nodiscard]] std::string id() const { return suite + "/" + name; }

    /** Build the program image for one input. */
    [[nodiscard]] isa::Program build(std::uint32_t input) const;

    /** Interval budget for one input (total split evenly, >= 1). */
    [[nodiscard]] std::uint32_t intervalsForInput(std::uint32_t input) const;
};

/** The catalog of all benchmarks, grouped into the paper's suites. */
class SuiteCatalog
{
  public:
    /** Canonical suite-group names, in the paper's figure order. */
    static const std::vector<std::string> &suiteNames();

    /** Build the full 77-benchmark catalog. */
    SuiteCatalog();

    [[nodiscard]] const std::vector<BenchmarkSpec> &benchmarks() const
    {
        return benchmarks_;
    }

    /** All benchmarks of one suite group. */
    [[nodiscard]] std::vector<const BenchmarkSpec *>
    bySuite(std::string_view suite) const;

    /** Look up by suite-qualified id ("BioPerf/hmmer"); null if missing. */
    [[nodiscard]] const BenchmarkSpec *find(std::string_view id) const;

    /** Register a benchmark (used by the per-suite registration units). */
    void add(BenchmarkSpec spec);

  private:
    std::vector<BenchmarkSpec> benchmarks_;
};

} // namespace mica::workloads

#endif // MICAPHASE_WORKLOADS_WORKLOAD_HH
