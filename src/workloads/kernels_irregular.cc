/**
 * @file
 * Irregular-memory kernels: pointer chasing, hash probing, gather/scatter,
 * histogramming, binary search, and sort passes.
 */

#include <numeric>
#include <vector>

#include "workloads/kernels.hh"
#include "workloads/kernels_util.hh"

namespace mica::workloads {

using detail::Loop;
using isa::Opcode;

Label
emitPointerChase(ProgramBuilder &pb, const PointerChaseParams &params,
                 stats::Rng &rng)
{
    const std::uint32_t nodes = std::max(2u, params.nodes);
    const std::uint32_t hops = std::max(1u, params.hops);

    // Lay the nodes out as one random cycle: following `next` visits every
    // node before repeating, with no short cycles to get stuck in.
    std::vector<std::uint32_t> order(nodes);
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);

    const std::uint64_t node_base = pb.allocData(0, 16);
    std::vector<std::uint64_t> node_words(2 * nodes, 0);
    for (std::uint32_t i = 0; i < nodes; ++i) {
        const std::uint32_t from = order[i];
        const std::uint32_t to = order[(i + 1) % nodes];
        node_words[2 * from] = node_base + 16ULL * to;
        node_words[2 * from + 1] = rng.nextBelow(1000); // payload
    }
    const std::uint64_t laid = pb.allocWords(node_words);
    (void)laid; // == node_base: allocWords continues at the aligned cursor

    const std::uint64_t cursor_words[1] = {node_base + 16ULL * order[0]};
    const std::uint64_t cursor_slot = pb.allocWords(cursor_words);

    Label entry = pb.newLabel();
    pb.bind(entry);
    pb.li(5, static_cast<std::int64_t>(cursor_slot));
    pb.load(Opcode::Ld, 6, 5, 0);
    pb.li(9, 0);

    Loop loop(pb, 7, hops);
    pb.load(Opcode::Ld, 6, 6, 0); // follow next
    if (params.payload) {
        pb.load(Opcode::Ld, 8, 6, 8);
        pb.alu(Opcode::Add, 9, 9, 8);
    }
    loop.end();

    pb.store(Opcode::Sd, 6, 5, 0); // persist cursor for the next call
    pb.ret();
    return entry;
}

Label
emitHashProbe(ProgramBuilder &pb, const HashProbeParams &params,
              stats::Rng &rng)
{
    const std::uint32_t log2_slots = std::min(std::max(params.log2_slots,
                                                       4u), 24u);
    const std::uint64_t slots = 1ULL << log2_slots;
    const std::uint32_t probes = std::max(1u, params.probes);

    std::vector<std::uint64_t> table(slots);
    for (auto &v : table)
        v = rng.nextU64();
    const std::uint64_t table_base = pb.allocWords(table);
    const std::uint64_t state_words[1] = {rng.nextU64() | 1};
    const std::uint64_t state_slot = pb.allocWords(state_words);

    Label entry = pb.newLabel();
    pb.bind(entry);
    pb.li(5, static_cast<std::int64_t>(state_slot));
    pb.load(Opcode::Ld, 6, 5, 0);
    detail::loadBigConst(pb, 15, detail::kLcgMultiplier);
    pb.li(12, static_cast<std::int64_t>(table_base));
    pb.li(14, 0);

    Loop loop(pb, 7, probes);
    detail::emitLcgStep(pb, 6, 15);
    pb.alui(Opcode::Srli, 9, 6, 33);
    pb.alui(Opcode::Andi, 9, 9,
            static_cast<std::int64_t>(slots - 1));
    pb.alui(Opcode::Slli, 9, 9, 3);
    pb.alu(Opcode::Add, 9, 9, 12);
    pb.load(Opcode::Ld, 10, 9, 0);
    pb.alui(Opcode::Andi, 11, 10, 1);
    Label skip = pb.newLabel();
    pb.branch(Opcode::Beq, 11, isa::kRegZero, skip); // ~50/50, random
    pb.alui(Opcode::Addi, 14, 14, 1);
    if (params.update) {
        pb.alu(Opcode::Xor, 10, 10, 6);
        pb.store(Opcode::Sd, 10, 9, 0);
    }
    pb.bind(skip);
    loop.end();

    pb.store(Opcode::Sd, 6, 5, 0);
    pb.ret();
    return entry;
}

Label
emitGather(ProgramBuilder &pb, const GatherParams &params, stats::Rng &rng)
{
    const std::uint32_t log2_range = std::min(std::max(params.log2_range,
                                                       4u), 24u);
    const std::uint64_t range = 1ULL << log2_range;
    const std::uint32_t n = std::max(1u, params.n);

    std::vector<std::uint64_t> indices(n);
    for (auto &v : indices)
        v = rng.nextBelow(range);
    const std::uint64_t idx_base = pb.allocWords(indices);

    std::vector<double> values(range);
    for (auto &v : values)
        v = rng.uniform(-1.0, 1.0);
    const std::uint64_t val_base = pb.allocDoubles(values);
    const std::uint64_t out_base =
        params.scatter ? pb.allocData(range * 8) : 0;
    const std::uint64_t result_slot = pb.allocData(8);

    Label entry = pb.newLabel();
    pb.bind(entry);
    pb.li(5, static_cast<std::int64_t>(idx_base));
    pb.li(6, static_cast<std::int64_t>(val_base));
    if (params.scatter)
        pb.li(13, static_cast<std::int64_t>(out_base));
    detail::fzero(pb, 1);

    Loop loop(pb, 7, n);
    pb.load(Opcode::Ld, 8, 5, 0);
    pb.alui(Opcode::Slli, 8, 8, 3);
    pb.alu(Opcode::Add, 9, 8, 6);
    pb.fload(2, 9, 0);
    if (params.scatter) {
        pb.alu(Opcode::Add, 10, 8, 13);
        pb.fop(Opcode::Fadd, 3, 2, 2);
        pb.fstore(3, 10, 0);
    } else {
        pb.fop(Opcode::Fadd, 1, 1, 2);
    }
    pb.alui(Opcode::Addi, 5, 5, 8);
    loop.end();

    pb.li(9, static_cast<std::int64_t>(result_slot));
    pb.fstore(1, 9, 0);
    pb.ret();
    return entry;
}

Label
emitHistogram(ProgramBuilder &pb, const HistogramParams &params,
              stats::Rng &rng)
{
    const std::uint32_t n = std::max(1u, params.input_bytes);
    const std::uint32_t alphabet =
        std::min(std::max(params.alphabet, 2u), 256u);

    const std::uint64_t in_base = pb.allocData(0, 8);
    {
        // Random input bytes, emitted as packed words.
        std::vector<std::uint64_t> words((n + 7) / 8, 0);
        for (std::uint32_t i = 0; i < n; ++i)
            words[i / 8] |= rng.nextBelow(alphabet) << (8 * (i % 8));
        (void)pb.allocWords(words);
    }
    const std::uint64_t bins = pb.allocData(256 * 8);

    Label entry = pb.newLabel();
    pb.bind(entry);
    pb.li(5, static_cast<std::int64_t>(in_base));
    pb.li(6, static_cast<std::int64_t>(bins));

    Loop loop(pb, 7, n);
    pb.load(Opcode::Lb, 8, 5, 0);
    pb.alui(Opcode::Andi, 8, 8, 255);
    pb.alui(Opcode::Slli, 8, 8, 3);
    pb.alu(Opcode::Add, 8, 8, 6);
    pb.load(Opcode::Ld, 9, 8, 0);
    pb.alui(Opcode::Addi, 9, 9, 1);
    pb.store(Opcode::Sd, 9, 8, 0);
    pb.alui(Opcode::Addi, 5, 5, 1);
    loop.end();
    pb.ret();
    return entry;
}

Label
emitTreeWalk(ProgramBuilder &pb, const TreeWalkParams &params,
             stats::Rng &rng)
{
    const std::uint32_t log2_size = std::min(std::max(params.log2_size, 4u),
                                             22u);
    const std::uint64_t size = 1ULL << log2_size;
    const std::uint32_t searches = std::max(1u, params.searches);

    std::vector<std::uint64_t> sorted(size);
    for (std::uint64_t i = 0; i < size; ++i)
        sorted[i] = i * 7 + 3;
    const std::uint64_t base = pb.allocWords(sorted);
    const std::uint64_t state_words[1] = {rng.nextU64() | 1};
    const std::uint64_t state_slot = pb.allocWords(state_words);
    const std::int64_t key_mask = static_cast<std::int64_t>(size * 8 - 1);

    Label entry = pb.newLabel();
    pb.bind(entry);
    pb.li(5, static_cast<std::int64_t>(state_slot));
    pb.load(Opcode::Ld, 6, 5, 0);
    detail::loadBigConst(pb, 15, detail::kLcgMultiplier);
    pb.li(12, static_cast<std::int64_t>(base));
    pb.li(16, 0); // result accumulator

    Loop searches_loop(pb, 7, searches);
    detail::emitLcgStep(pb, 6, 15);
    pb.alui(Opcode::Srli, 8, 6, 16);
    pb.alui(Opcode::Andi, 8, 8, key_mask); // key in value range
    pb.li(9, 0);                            // lo
    pb.li(10, static_cast<std::int64_t>(size)); // hi

    Label bloop = pb.newLabel();
    Label go_left = pb.newLabel();
    Label cont = pb.newLabel();
    pb.bind(bloop);
    pb.alu(Opcode::Add, 11, 9, 10);
    pb.alui(Opcode::Srli, 11, 11, 1); // mid
    pb.alui(Opcode::Slli, 13, 11, 3);
    pb.alu(Opcode::Add, 13, 13, 12);
    pb.load(Opcode::Ld, 14, 13, 0);
    pb.branch(Opcode::Bge, 14, 8, go_left); // data-dependent
    pb.alui(Opcode::Addi, 9, 11, 1);
    pb.jump(cont);
    pb.bind(go_left);
    pb.mv(10, 11);
    pb.bind(cont);
    pb.branch(Opcode::Blt, 9, 10, bloop);
    pb.alu(Opcode::Add, 16, 16, 9);
    searches_loop.end();

    pb.store(Opcode::Sd, 6, 5, 0);
    pb.ret();
    return entry;
}

Label
emitSortPass(ProgramBuilder &pb, const SortPassParams &params,
             stats::Rng &rng)
{
    const std::uint32_t n = std::max(4u, params.n);

    std::vector<std::uint64_t> array(n);
    for (auto &v : array)
        v = rng.nextBelow(1u << 30);
    const std::uint64_t base = pb.allocWords(array);
    const std::uint64_t state_words[1] = {rng.nextU64() | 1};
    const std::uint64_t state_slot = pb.allocWords(state_words);
    const std::int64_t idx_mask = static_cast<std::int64_t>(n - 1) & ~7LL;

    Label entry = pb.newLabel();
    pb.bind(entry);
    pb.li(5, static_cast<std::int64_t>(base));

    // One bubble pass: data-dependent swap branches whose predictability
    // improves as the array gets sorted, then degrades after scrambling.
    Loop pass(pb, 6, n - 1);
    pb.load(Opcode::Ld, 7, 5, 0);
    pb.load(Opcode::Ld, 8, 5, 8);
    Label noswap = pb.newLabel();
    pb.branch(Opcode::Bge, 8, 7, noswap);
    pb.store(Opcode::Sd, 8, 5, 0);
    pb.store(Opcode::Sd, 7, 5, 8);
    pb.bind(noswap);
    pb.alui(Opcode::Addi, 5, 5, 8);
    pass.end();

    // Scramble a few random slots so the branch behaviour never fully
    // converges to "always sorted".
    if (params.scramble > 0) {
        pb.li(9, static_cast<std::int64_t>(state_slot));
        pb.load(Opcode::Ld, 10, 9, 0);
        detail::loadBigConst(pb, 15, detail::kLcgMultiplier);
        pb.li(12, static_cast<std::int64_t>(base));
        Loop scramble(pb, 11, params.scramble);
        detail::emitLcgStep(pb, 10, 15);
        pb.alui(Opcode::Srli, 13, 10, 20);
        pb.alui(Opcode::Andi, 13, 13, idx_mask);
        pb.alui(Opcode::Slli, 13, 13, 3);
        pb.alu(Opcode::Add, 13, 13, 12);
        pb.alui(Opcode::Srli, 14, 10, 34);
        pb.store(Opcode::Sd, 14, 13, 0);
        scramble.end();
        pb.store(Opcode::Sd, 10, 9, 0);
    }
    pb.ret();
    return entry;
}

} // namespace mica::workloads
