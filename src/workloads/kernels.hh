/**
 * @file
 * The synthetic kernel library.
 *
 * Each emit function generates a leaf subroutine (entered with jal/ra,
 * exiting with ret) performing one "unit of work", plus the private data it
 * operates on. Benchmarks are composed from these kernels via phase
 * schedules (see composer.hh); kernel parameters are what give each of the
 * 77 synthetic benchmarks its distinctive microarchitecture-independent
 * signature (instruction mix, ILP, locality, branch behaviour).
 *
 * Calling conventions for generated kernels:
 *   - x5..x27 and f0..f31 are scratch (kernels may clobber freely);
 *   - x28..x31 belong to the phase scheduler and must be preserved;
 *   - kernels are leaves: they never call other subroutines;
 *   - kernel state that persists across invocations (stream cursors, PRNG
 *     state, ring positions) lives in the kernel's private data segment.
 */

#ifndef MICAPHASE_WORKLOADS_KERNELS_HH
#define MICAPHASE_WORKLOADS_KERNELS_HH

#include <cstdint>

#include "stats/rng.hh"
#include "workloads/program_builder.hh"

namespace mica::workloads {

// ---------------------------------------------------------------------
// Streaming / dense numeric kernels.
// ---------------------------------------------------------------------

/** STREAM-style array kernel. */
struct StreamParams
{
    enum class Mode { Copy, Scale, Add, Triad, Dot };

    std::uint32_t elements = 1024; ///< array length
    std::uint32_t stride = 1;      ///< element stride between accesses
    Mode mode = Mode::Triad;
    bool fp = true;                ///< double arrays vs int64 arrays
    std::uint32_t unroll = 2;      ///< 1..4
};
Label emitStream(ProgramBuilder &pb, const StreamParams &params);

/** 5-point 2D stencil sweep over a grid (swim/mgrid/leslie3d-style). */
struct StencilParams
{
    std::uint32_t rows = 32;
    std::uint32_t cols = 64;
    std::uint32_t sweeps = 1; ///< sweeps per call
};
Label emitStencil2D(ProgramBuilder &pb, const StencilParams &params);

/** Naive dense matrix multiply (wupwise/calculix/tonto-style). */
struct MatMulParams
{
    std::uint32_t n = 16; ///< n x n doubles
};
Label emitMatMul(ProgramBuilder &pb, const MatMulParams &params,
                 stats::Rng &rng);

/** k x k convolution over an image (facerec/BMW face/hand-style). */
struct ConvParams
{
    std::uint32_t rows = 24;
    std::uint32_t cols = 48;
    std::uint32_t k = 3;
    bool fp = true; ///< integer variant for fixed-point image code
};
Label emitConv2D(ProgramBuilder &pb, const ConvParams &params,
                 stats::Rng &rng);

/** FIR filter over a sample ring (sphinx/BMW gait/speak-style). */
struct FirParams
{
    std::uint32_t taps = 32;
    std::uint32_t samples = 128;  ///< outputs per call
    std::uint32_t parallel = 1;   ///< independent accumulators (1..2)
};
Label emitFir(ProgramBuilder &pb, const FirParams &params,
              stats::Rng &rng);

/** Biquad IIR filter: serial fp recurrence, minimal ILP. */
struct IirParams
{
    std::uint32_t samples = 256; ///< samples per call
};
Label emitIir(ProgramBuilder &pb, const IirParams &params,
              stats::Rng &rng);

/** Radix-2 FFT butterflies over a complex array (lucas/BMW speak-style). */
struct FftParams
{
    std::uint32_t log2n = 8; ///< transform size = 2^log2n (<= 16)
};
Label emitFftPass(ProgramBuilder &pb, const FftParams &params,
                  stats::Rng &rng);

/** Divide/square-root heavy fp kernel (povray/apsi-style math). */
struct FpMathParams
{
    std::uint32_t n = 256; ///< elements processed per call
};
Label emitFpMath(ProgramBuilder &pb, const FpMathParams &params,
                 stats::Rng &rng);

/** Long serial arithmetic dependency chain (ILP ~ 1). */
struct ReduceChainParams
{
    std::uint32_t length = 4096; ///< chain steps per call
    bool fp = false;
    bool use_mul = true;         ///< alternate mul into the chain
};
Label emitReduceChain(ProgramBuilder &pb, const ReduceChainParams &params);

// ---------------------------------------------------------------------
// Irregular-memory kernels.
// ---------------------------------------------------------------------

/** Random-cycle linked-list traversal (mcf/omnetpp-style). */
struct PointerChaseParams
{
    std::uint32_t nodes = 4096; ///< 16-byte nodes
    std::uint32_t hops = 2048;  ///< hops per call
    bool payload = true;        ///< also load & accumulate node payloads
};
Label emitPointerChase(ProgramBuilder &pb, const PointerChaseParams &params,
                       stats::Rng &rng);

/** Hash-table probing with an in-code LCG (vortex/xalancbmk-style). */
struct HashProbeParams
{
    std::uint32_t log2_slots = 12; ///< table size = 2^log2_slots
    std::uint32_t probes = 1024;   ///< probes per call
    bool update = false;           ///< write back to probed slots
};
Label emitHashProbe(ProgramBuilder &pb, const HashProbeParams &params,
                    stats::Rng &rng);

/** Indexed gather (+optional scatter) over fp data (equake/soplex-style). */
struct GatherParams
{
    std::uint32_t n = 1024;          ///< index entries walked per call
    std::uint32_t log2_range = 12;   ///< gather target range (elements)
    bool scatter = false;            ///< also write an output element
};
Label emitGather(ProgramBuilder &pb, const GatherParams &params,
                 stats::Rng &rng);

/** Byte histogram (bzip2/gzip-style counting). */
struct HistogramParams
{
    std::uint32_t input_bytes = 4096; ///< bytes consumed per call
    std::uint32_t alphabet = 256;     ///< distinct byte values in input
};
Label emitHistogram(ProgramBuilder &pb, const HistogramParams &params,
                    stats::Rng &rng);

/** Binary search over a sorted array (astar/gobmk lookup-style). */
struct TreeWalkParams
{
    std::uint32_t log2_size = 14; ///< array elements = 2^log2_size
    std::uint32_t searches = 256; ///< searches per call
};
Label emitTreeWalk(ProgramBuilder &pb, const TreeWalkParams &params,
                   stats::Rng &rng);

/** Bubble pass with periodic re-scrambling (bzip2 sort-style). */
struct SortPassParams
{
    std::uint32_t n = 1024;      ///< array elements
    std::uint32_t scramble = 16; ///< slots re-randomized per call
};
Label emitSortPass(ProgramBuilder &pb, const SortPassParams &params,
                   stats::Rng &rng);

// ---------------------------------------------------------------------
// Control-heavy and domain kernels.
// ---------------------------------------------------------------------

/** Parameterized-predictability branch generator (crafty/sjeng-style). */
struct RandomBranchParams
{
    std::uint32_t branches = 2048; ///< dispatch iterations per call
    /** Fraction [0,256] of iterations taking the data-dependent path. */
    std::uint32_t taken_threshold = 128;
    /**
     * 0 = purely (pseudo)random outcomes; k > 0 = outcome follows a
     * period-2^k pattern, i.e. predictable with >= k bits of history.
     */
    std::uint32_t pattern_bits = 0;
};
Label emitRandomBranch(ProgramBuilder &pb, const RandomBranchParams &params);

/** Many distinct basic blocks behind indirect dispatch (gcc/perl-style). */
struct CodeBloatParams
{
    std::uint32_t blocks = 64;      ///< distinct dispatched blocks
    std::uint32_t block_instrs = 12; ///< ALU instructions per block
    std::uint32_t dispatches = 512; ///< dispatches per call
    bool sequential = false;        ///< round-robin instead of random
    double fp_fraction = 0.0;       ///< fraction of blocks doing fp work
};
Label emitCodeBloat(ProgramBuilder &pb, const CodeBloatParams &params,
                    stats::Rng &rng);

/** Naive substring scan over random text (blast/fasta/parser-style). */
struct StringMatchParams
{
    std::uint32_t text_len = 4096;
    std::uint32_t pattern_len = 8;
    std::uint32_t alphabet = 4; ///< 4 = DNA-like
};
Label emitStringMatch(ProgramBuilder &pb, const StringMatchParams &params,
                      stats::Rng &rng);

/** Smith-Waterman style DP with affine-free gap penalty (clustalw/
 *  t-coffee-style). */
struct SmithWatermanParams
{
    std::uint32_t query_len = 24;  ///< DP rows per call
    std::uint32_t db_len = 96;     ///< DP columns
    std::uint32_t alphabet = 4;
};
Label emitSmithWaterman(ProgramBuilder &pb,
                        const SmithWatermanParams &params,
                        stats::Rng &rng);

/** Profile-HMM Viterbi inner loop (hmmer-style). */
struct ProfileHmmParams
{
    std::uint32_t states = 64;
    std::uint32_t steps = 32; ///< sequence symbols per call
};
Label emitProfileHmm(ProgramBuilder &pb, const ProfileHmmParams &params,
                     stats::Rng &rng);

/** Fixed-point 8x8 DCT (jpeg/mpeg-style). */
struct DctParams
{
    std::uint32_t blocks = 4; ///< 8x8 blocks transformed per call
};
Label emitDct8x8(ProgramBuilder &pb, const DctParams &params,
                 stats::Rng &rng);

/** Sum-of-absolute-differences motion search (h264/mpeg-style). */
struct SadParams
{
    std::uint32_t candidates = 9; ///< candidate positions per call
};
Label emitSad(ProgramBuilder &pb, const SadParams &params, stats::Rng &rng);

/** Quantization with saturation (media codecs). */
struct QuantizeParams
{
    std::uint32_t n = 512; ///< coefficients per call
};
Label emitQuantize(ProgramBuilder &pb, const QuantizeParams &params,
                   stats::Rng &rng);

} // namespace mica::workloads

#endif // MICAPHASE_WORKLOADS_KERNELS_HH
