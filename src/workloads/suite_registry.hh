/**
 * @file
 * Internal registration hooks: each suite family lives in its own
 * translation unit and registers its benchmarks into the catalog.
 */

#ifndef MICAPHASE_WORKLOADS_SUITE_REGISTRY_HH
#define MICAPHASE_WORKLOADS_SUITE_REGISTRY_HH

#include "workloads/workload.hh"

namespace mica::workloads::detail {

void registerSpecCpu2000(SuiteCatalog &catalog);
void registerSpecCpu2006(SuiteCatalog &catalog);
void registerDomainSuites(SuiteCatalog &catalog); // BioPerf, BMW, MediaBench

} // namespace mica::workloads::detail

#endif // MICAPHASE_WORKLOADS_SUITE_REGISTRY_HH
