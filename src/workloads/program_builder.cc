#include "workloads/program_builder.hh"

#include <cstring>
#include <stdexcept>

namespace mica::workloads {

using isa::Instruction;
using isa::Opcode;

ProgramBuilder::ProgramBuilder(std::string name) : name_(std::move(name)) {}

Label
ProgramBuilder::newLabel()
{
    label_positions_.push_back(-1);
    return Label{static_cast<std::uint32_t>(label_positions_.size() - 1)};
}

void
ProgramBuilder::bind(Label label)
{
    if (!label.valid() || label.id >= label_positions_.size())
        throw std::logic_error("ProgramBuilder::bind: unknown label");
    if (label_positions_[label.id] >= 0)
        throw std::logic_error("ProgramBuilder::bind: label bound twice");
    label_positions_[label.id] = static_cast<std::int64_t>(code_.size());
}

std::uint64_t
ProgramBuilder::allocData(std::size_t bytes, std::size_t align)
{
    if (align == 0)
        align = 1;
    while (data_.size() % align != 0)
        data_.push_back(0);
    const std::uint64_t addr = isa::kDefaultDataBase + data_.size();
    data_.insert(data_.end(), bytes, 0);
    return addr;
}

std::uint64_t
ProgramBuilder::allocWords(std::span<const std::uint64_t> words)
{
    const std::uint64_t addr = allocData(0, 8);
    for (std::uint64_t w : words)
        for (int i = 0; i < 8; ++i)
            data_.push_back(static_cast<std::uint8_t>(w >> (8 * i)));
    return addr;
}

std::uint64_t
ProgramBuilder::allocDoubles(std::span<const double> values)
{
    const std::uint64_t addr = allocData(0, 8);
    for (double d : values) {
        std::uint64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        for (int i = 0; i < 8; ++i)
            data_.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
    }
    return addr;
}

std::uint64_t
ProgramBuilder::allocLabelTable(std::span<const Label> labels)
{
    const std::uint64_t addr = allocData(0, 8);
    for (const Label &label : labels) {
        if (!label.valid() || label.id >= label_positions_.size())
            throw std::logic_error("allocLabelTable: unknown label");
        data_fixups_.push_back({data_.size(), label.id});
        data_.insert(data_.end(), 8, 0);
    }
    return addr;
}

void
ProgramBuilder::patchWord(std::uint64_t address, std::uint64_t value)
{
    if (address < isa::kDefaultDataBase ||
        address + 8 > isa::kDefaultDataBase + data_.size())
        throw std::logic_error("patchWord: address outside data segment");
    const std::size_t off =
        static_cast<std::size_t>(address - isa::kDefaultDataBase);
    for (int i = 0; i < 8; ++i)
        data_[off + i] = static_cast<std::uint8_t>(value >> (8 * i));
}

std::size_t
ProgramBuilder::emit(const Instruction &instr)
{
    code_.push_back(instr);
    return code_.size() - 1;
}

void
ProgramBuilder::li(Reg rd, std::int64_t imm)
{
    emit({Opcode::Addi, rd, isa::kRegZero, 0, imm});
}

void
ProgramBuilder::mv(Reg rd, Reg rs)
{
    emit({Opcode::Addi, rd, rs, 0, 0});
}

void
ProgramBuilder::alu(Opcode op, Reg rd, Reg rs1, Reg rs2)
{
    emit({op, rd, rs1, rs2, 0});
}

void
ProgramBuilder::alui(Opcode op, Reg rd, Reg rs1, std::int64_t imm)
{
    emit({op, rd, rs1, 0, imm});
}

void
ProgramBuilder::load(Opcode op, Reg rd, Reg base, std::int64_t offset)
{
    emit({op, rd, base, 0, offset});
}

void
ProgramBuilder::store(Opcode op, Reg src, Reg base, std::int64_t offset)
{
    emit({op, 0, base, src, offset});
}

void
ProgramBuilder::fload(Reg fd, Reg base, std::int64_t offset)
{
    emit({Opcode::Fld, fd, base, 0, offset});
}

void
ProgramBuilder::fstore(Reg fs, Reg base, std::int64_t offset)
{
    emit({Opcode::Fsd, 0, base, fs, offset});
}

void
ProgramBuilder::fop(Opcode op, Reg fd, Reg fs1, Reg fs2)
{
    emit({op, fd, fs1, fs2, 0});
}

void
ProgramBuilder::fop2(Opcode op, Reg fd, Reg fs1)
{
    emit({op, fd, fs1, 0, 0});
}

void
ProgramBuilder::fcmp(Opcode op, Reg rd, Reg fs1, Reg fs2)
{
    emit({op, rd, fs1, fs2, 0});
}

void
ProgramBuilder::cvtif(Reg fd, Reg rs)
{
    emit({Opcode::Cvtif, fd, rs, 0, 0});
}

void
ProgramBuilder::cvtfi(Reg rd, Reg fs)
{
    emit({Opcode::Cvtfi, rd, fs, 0, 0});
}

void
ProgramBuilder::branch(Opcode op, Reg rs1, Reg rs2, Label target)
{
    if (!target.valid() || target.id >= label_positions_.size())
        throw std::logic_error("branch: unknown label");
    code_fixups_.push_back({code_.size(), target.id});
    emit({op, 0, rs1, rs2, 0});
}

void
ProgramBuilder::jump(Label target)
{
    if (!target.valid() || target.id >= label_positions_.size())
        throw std::logic_error("jump: unknown label");
    code_fixups_.push_back({code_.size(), target.id});
    emit({Opcode::Jal, isa::kRegZero, 0, 0, 0});
}

void
ProgramBuilder::call(Label target)
{
    if (!target.valid() || target.id >= label_positions_.size())
        throw std::logic_error("call: unknown label");
    code_fixups_.push_back({code_.size(), target.id});
    emit({Opcode::Jal, isa::kRegRa, 0, 0, 0});
}

void
ProgramBuilder::callIndirect(Reg rs)
{
    emit({Opcode::Jalr, isa::kRegRa, rs, 0, 0});
}

void
ProgramBuilder::jumpIndirect(Reg rs)
{
    emit({Opcode::Jalr, isa::kRegZero, rs, 0, 0});
}

void
ProgramBuilder::ret()
{
    emit({Opcode::Jalr, isa::kRegZero, isa::kRegRa, 0, 0});
}

void
ProgramBuilder::nop()
{
    emit({Opcode::Nop, 0, 0, 0, 0});
}

void
ProgramBuilder::halt()
{
    emit({Opcode::Halt, 0, 0, 0, 0});
}

isa::Program
ProgramBuilder::build()
{
    isa::Program program;
    program.name = name_;
    program.code = code_;
    program.data = data_;

    auto label_pc = [&](std::uint32_t id) -> std::uint64_t {
        const std::int64_t pos = label_positions_[id];
        if (pos < 0)
            throw std::logic_error("ProgramBuilder::build: unbound label " +
                                   std::to_string(id));
        return program.pcOf(static_cast<std::size_t>(pos));
    };

    for (const CodeFixup &fix : code_fixups_) {
        const std::uint64_t target = label_pc(fix.label_id);
        const std::uint64_t pc = program.pcOf(fix.instr_index);
        program.code[fix.instr_index].imm =
            static_cast<std::int64_t>(target) -
            static_cast<std::int64_t>(pc);
    }
    for (const DataFixup &fix : data_fixups_) {
        const std::uint64_t target = label_pc(fix.label_id);
        for (int i = 0; i < 8; ++i)
            program.data[fix.data_offset + i] =
                static_cast<std::uint8_t>(target >> (8 * i));
    }

    // Validate that everything encodes (catches out-of-range immediates).
    for (const Instruction &in : program.code)
        (void)isa::encode(in);
    return program;
}

} // namespace mica::workloads
