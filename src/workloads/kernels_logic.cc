/**
 * @file
 * Control-heavy and domain kernels: parameterized branch generators,
 * indirect-dispatch code bloat, string matching, sequence-alignment DP,
 * profile-HMM Viterbi, and media-codec primitives (DCT, SAD, quantize).
 */

#include <cmath>
#include <vector>

#include "workloads/kernels.hh"
#include "workloads/kernels_util.hh"

namespace mica::workloads {

using detail::Loop;
using isa::Opcode;

namespace {

/** Pack random bytes < alphabet into 64-bit words for the data segment. */
std::vector<std::uint64_t>
packedRandomBytes(std::uint32_t n, std::uint32_t alphabet, stats::Rng &rng)
{
    std::vector<std::uint64_t> words((n + 7) / 8, 0);
    for (std::uint32_t i = 0; i < n; ++i)
        words[i / 8] |= rng.nextBelow(alphabet) << (8 * (i % 8));
    return words;
}

std::uint32_t
roundUpPow2(std::uint32_t v)
{
    std::uint32_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

Label
emitRandomBranch(ProgramBuilder &pb, const RandomBranchParams &params)
{
    const std::uint32_t branches = std::max(1u, params.branches);
    const std::uint64_t state_words[2] = {0x243f6a8885a308d3ULL, 0};
    const std::uint64_t state_slot = pb.allocWords(state_words);

    Label entry = pb.newLabel();
    pb.bind(entry);
    pb.li(5, static_cast<std::int64_t>(state_slot));
    pb.load(Opcode::Ld, 6, 5, 0);  // lcg state
    pb.load(Opcode::Ld, 12, 5, 8); // iteration counter (pattern mode)
    detail::loadBigConst(pb, 15, detail::kLcgMultiplier);
    pb.li(10, 0);
    pb.li(11, 0);

    Loop loop(pb, 7, branches);
    detail::emitLcgStep(pb, 6, 15);
    if (params.pattern_bits == 0) {
        // Purely pseudo-random outcome: taken iff high lcg byte < thresh.
        pb.alui(Opcode::Srli, 8, 6, 56);
        pb.alui(Opcode::Slti, 9, 8,
                static_cast<std::int64_t>(params.taken_threshold));
    } else {
        // Pseudo-random but periodic outcome with period 2^pattern_bits:
        // within one period the outcomes look random (hash of the phase),
        // so short-history predictors stay near chance while histories of
        // >= pattern_bits uniquely identify the position in the period.
        const std::int64_t mask = (1LL << params.pattern_bits) - 1;
        pb.alui(Opcode::Andi, 8, 12, mask);
        pb.alu(Opcode::Mul, 8, 8, 15); // hash the phase position
        pb.alui(Opcode::Srli, 8, 8, 29);
        pb.alui(Opcode::Andi, 8, 8, 255);
        pb.alui(Opcode::Slti, 9, 8,
                static_cast<std::int64_t>(params.taken_threshold));
    }
    pb.alui(Opcode::Addi, 12, 12, 1);
    Label taken_path = pb.newLabel();
    Label join = pb.newLabel();
    pb.branch(Opcode::Bne, 9, isa::kRegZero, taken_path);
    pb.alu(Opcode::Xor, 10, 10, 6);
    pb.jump(join);
    pb.bind(taken_path);
    pb.alu(Opcode::Add, 11, 11, 6);
    pb.bind(join);
    // A second branch perfectly correlated with the first (same polarity,
    // so the taken rate tracks the threshold): separates global-history
    // from local-history predictor behaviour.
    Label do2 = pb.newLabel();
    Label skip2 = pb.newLabel();
    pb.branch(Opcode::Bne, 9, isa::kRegZero, do2);
    pb.jump(skip2);
    pb.bind(do2);
    pb.alui(Opcode::Addi, 11, 11, 1);
    pb.bind(skip2);
    loop.end();

    pb.store(Opcode::Sd, 6, 5, 0);
    pb.store(Opcode::Sd, 12, 5, 8);
    pb.ret();
    return entry;
}

Label
emitCodeBloat(ProgramBuilder &pb, const CodeBloatParams &params,
              stats::Rng &rng)
{
    const std::uint32_t blocks = roundUpPow2(std::max(2u, params.blocks));
    const std::uint32_t block_instrs = std::max(2u, params.block_instrs);
    const std::uint32_t dispatches = std::max(1u, params.dispatches);

    // Emit the dispatched blocks first, each ending in ret. Blocks use a
    // deterministic but block-specific mixture of operations so every block
    // is distinct code (large instruction footprint, like gcc/perl).
    std::vector<Label> block_labels(blocks);
    for (std::uint32_t bidx = 0; bidx < blocks; ++bidx) {
        block_labels[bidx] = pb.newLabel();
        pb.bind(block_labels[bidx]);
        const bool fp_block = rng.nextDouble() < params.fp_fraction;
        for (std::uint32_t i = 0; i < block_instrs; ++i) {
            const std::uint32_t sel = (bidx * 7 + i * 3) % 6;
            const Reg d = static_cast<Reg>(16 + (bidx + i) % 6);
            const Reg s1 = static_cast<Reg>(16 + (bidx + i + 1) % 6);
            const Reg s2 = static_cast<Reg>(16 + (bidx + i + 3) % 6);
            if (fp_block) {
                switch (sel % 3) {
                  case 0: pb.fop(Opcode::Fadd, d, s1, s2); break;
                  case 1: pb.fop(Opcode::Fmul, d, s1, s2); break;
                  default: pb.fop(Opcode::Fsub, d, s1, s2); break;
                }
            } else {
                switch (sel) {
                  case 0: pb.alu(Opcode::Add, d, s1, s2); break;
                  case 1: pb.alu(Opcode::Xor, d, s1, s2); break;
                  case 2:
                    pb.alui(Opcode::Slli, d, s1,
                            static_cast<std::int64_t>((bidx + i) % 13));
                    break;
                  case 3: pb.alu(Opcode::Sub, d, s1, s2); break;
                  case 4: pb.alu(Opcode::Or, d, s1, s2); break;
                  default:
                    pb.alui(Opcode::Addi, d, s1,
                            static_cast<std::int64_t>(bidx * 17 + i));
                    break;
                }
            }
        }
        pb.ret();
    }
    const std::uint64_t table = pb.allocLabelTable(block_labels);
    const std::uint64_t state_words[2] = {rng.nextU64() | 1, 0};
    const std::uint64_t state_slot = pb.allocWords(state_words);

    Label entry = pb.newLabel();
    pb.bind(entry);
    pb.mv(23, isa::kRegRa); // the indirect calls below clobber ra
    pb.li(5, static_cast<std::int64_t>(state_slot));
    pb.load(Opcode::Ld, 6, 5, 0);
    pb.load(Opcode::Ld, 12, 5, 8);
    detail::loadBigConst(pb, 15, detail::kLcgMultiplier);
    pb.li(13, static_cast<std::int64_t>(table));
    // Keep the block registers initialized.
    for (Reg r = 16; r < 22; ++r)
        pb.li(r, r * 3);
    for (Reg r = 16; r < 22; ++r)
        detail::fzero(pb, r);

    Loop loop(pb, 7, dispatches);
    if (params.sequential) {
        pb.alui(Opcode::Andi, 8, 12,
                static_cast<std::int64_t>(blocks - 1));
        pb.alui(Opcode::Addi, 12, 12, 1);
    } else {
        detail::emitLcgStep(pb, 6, 15);
        pb.alui(Opcode::Srli, 8, 6, 25);
        pb.alui(Opcode::Andi, 8, 8,
                static_cast<std::int64_t>(blocks - 1));
    }
    pb.alui(Opcode::Slli, 8, 8, 3);
    pb.alu(Opcode::Add, 8, 8, 13);
    pb.load(Opcode::Ld, 9, 8, 0);
    pb.callIndirect(9);
    loop.end();

    pb.store(Opcode::Sd, 6, 5, 0);
    pb.store(Opcode::Sd, 12, 5, 8);
    pb.mv(isa::kRegRa, 23);
    pb.ret();
    return entry;
}

Label
emitStringMatch(ProgramBuilder &pb, const StringMatchParams &params,
                stats::Rng &rng)
{
    const std::uint32_t pattern_len = std::max(2u, params.pattern_len);
    const std::uint32_t text_len = std::max(pattern_len + 2,
                                            params.text_len);
    const std::uint32_t alphabet = std::min(std::max(params.alphabet, 2u),
                                            256u);

    const std::uint64_t text = pb.allocData(0, 8);
    (void)pb.allocWords(packedRandomBytes(text_len, alphabet, rng));
    const std::uint64_t pattern = pb.allocData(0, 8);
    (void)pb.allocWords(packedRandomBytes(pattern_len, alphabet, rng));
    const std::uint64_t count_slot = pb.allocData(8);

    Label entry = pb.newLabel();
    pb.bind(entry);
    pb.li(5, static_cast<std::int64_t>(text));
    pb.li(13, static_cast<std::int64_t>(pattern));
    pb.li(12, static_cast<std::int64_t>(pattern_len));
    pb.li(14, 0);

    Loop positions(pb, 6, text_len - pattern_len);
    pb.li(7, 0);
    Label kloop = pb.newLabel();
    Label mismatch = pb.newLabel();
    pb.bind(kloop);
    pb.alu(Opcode::Add, 8, 5, 7);
    pb.load(Opcode::Lb, 9, 8, 0);
    pb.alu(Opcode::Add, 10, 13, 7);
    pb.load(Opcode::Lb, 11, 10, 0);
    pb.branch(Opcode::Bne, 9, 11, mismatch); // data-dependent early exit
    pb.alui(Opcode::Addi, 7, 7, 1);
    pb.branch(Opcode::Blt, 7, 12, kloop);
    pb.alui(Opcode::Addi, 14, 14, 1); // full match
    pb.bind(mismatch);
    pb.alui(Opcode::Addi, 5, 5, 1);
    positions.end();

    pb.li(9, static_cast<std::int64_t>(count_slot));
    pb.store(Opcode::Sd, 14, 9, 0);
    pb.ret();
    return entry;
}

Label
emitSmithWaterman(ProgramBuilder &pb, const SmithWatermanParams &params,
                  stats::Rng &rng)
{
    const std::uint32_t rows = std::max(2u, params.query_len);
    const std::uint32_t cols = std::max(4u, params.db_len);
    const std::uint32_t alphabet = std::min(std::max(params.alphabet, 2u),
                                            256u);

    const std::uint64_t seq_a = pb.allocData(0, 8);
    (void)pb.allocWords(packedRandomBytes(rows, alphabet, rng));
    const std::uint64_t seq_b = pb.allocData(0, 8);
    (void)pb.allocWords(packedRandomBytes(cols, alphabet, rng));
    const std::uint64_t row0 = pb.allocData((cols + 1) * 8);
    const std::uint64_t row1 = pb.allocData((cols + 1) * 8);
    const std::uint64_t best_slot = pb.allocData(8);

    Label entry = pb.newLabel();
    pb.bind(entry);
    pb.li(25, static_cast<std::int64_t>(row0)); // prev row base
    pb.li(26, static_cast<std::int64_t>(row1)); // cur row base
    pb.li(21, static_cast<std::int64_t>(seq_a));
    pb.li(17, 0); // global best

    Loop row_loop(pb, 5, rows);
    pb.load(Opcode::Lb, 20, 21, 0); // a_i
    pb.li(22, 0);                   // H[i][j-1]
    pb.alui(Opcode::Addi, 7, 25, 8); // &prev[j], j=1
    pb.alui(Opcode::Addi, 24, 26, 8); // &cur[j]
    pb.li(9, static_cast<std::int64_t>(seq_b));

    Loop col_loop(pb, 6, cols);
    pb.load(Opcode::Lb, 15, 9, 0); // b_j
    Label is_match = pb.newLabel();
    Label scored = pb.newLabel();
    pb.branch(Opcode::Beq, 20, 15, is_match); // data-dependent
    pb.li(10, -3);
    pb.jump(scored);
    pb.bind(is_match);
    pb.li(10, 5);
    pb.bind(scored);
    pb.load(Opcode::Ld, 11, 7, -8); // H[i-1][j-1]
    pb.alu(Opcode::Add, 11, 11, 10);
    pb.load(Opcode::Ld, 12, 7, 0); // H[i-1][j]
    pb.alui(Opcode::Addi, 12, 12, -4);
    pb.alui(Opcode::Addi, 13, 22, -4); // H[i][j-1] - gap
    pb.li(14, 0);
    detail::emitMaxInto(pb, 14, 11);
    detail::emitMaxInto(pb, 14, 12);
    detail::emitMaxInto(pb, 14, 13);
    pb.store(Opcode::Sd, 14, 24, 0);
    pb.mv(22, 14);
    detail::emitMaxInto(pb, 17, 14);
    pb.alui(Opcode::Addi, 7, 7, 8);
    pb.alui(Opcode::Addi, 24, 24, 8);
    pb.alui(Opcode::Addi, 9, 9, 1);
    col_loop.end();

    // Swap row roles for the next DP row.
    pb.mv(27, 25);
    pb.mv(25, 26);
    pb.mv(26, 27);
    pb.alui(Opcode::Addi, 21, 21, 1);
    row_loop.end();

    pb.li(9, static_cast<std::int64_t>(best_slot));
    pb.store(Opcode::Sd, 17, 9, 0);
    pb.ret();
    return entry;
}

Label
emitProfileHmm(ProgramBuilder &pb, const ProfileHmmParams &params,
               stats::Rng &rng)
{
    const std::uint32_t states = std::max(2u, params.states);
    const std::uint32_t steps = std::max(1u, params.steps);

    const std::uint64_t seq = pb.allocData(0, 8);
    (void)pb.allocWords(packedRandomBytes(steps, 20, rng)); // amino-ish
    std::vector<std::uint64_t> emissions(256);
    for (auto &v : emissions)
        v = rng.nextBelow(32);
    const std::uint64_t etable = pb.allocWords(emissions);
    const std::uint64_t m_prev = pb.allocData((states + 1) * 8);
    const std::uint64_t m_cur = pb.allocData((states + 1) * 8);

    Label entry = pb.newLabel();
    pb.bind(entry);
    pb.li(25, static_cast<std::int64_t>(m_prev));
    pb.li(26, static_cast<std::int64_t>(m_cur));
    pb.li(21, static_cast<std::int64_t>(seq));
    pb.li(18, static_cast<std::int64_t>(etable));

    Loop step_loop(pb, 5, steps);
    pb.load(Opcode::Lb, 20, 21, 0); // symbol
    pb.alui(Opcode::Addi, 7, 25, 8);  // &prev[s]
    pb.alui(Opcode::Addi, 24, 26, 8); // &cur[s]
    pb.li(19, 0); // state counter for emission index

    Loop state_loop(pb, 6, states);
    pb.load(Opcode::Ld, 8, 7, -8); // M[t-1][s-1] (transition from s-1)
    pb.alui(Opcode::Addi, 8, 8, -2);
    pb.load(Opcode::Ld, 9, 7, 0); // M[t-1][s] (self transition)
    pb.alui(Opcode::Addi, 9, 9, -1);
    detail::emitMaxInto(pb, 8, 9); // data-dependent max
    // Emission gather: etable[(symbol ^ state) & 255].
    pb.alu(Opcode::Xor, 10, 20, 19);
    pb.alui(Opcode::Andi, 10, 10, 255);
    pb.alui(Opcode::Slli, 10, 10, 3);
    pb.alu(Opcode::Add, 10, 10, 18);
    pb.load(Opcode::Ld, 11, 10, 0);
    pb.alu(Opcode::Add, 8, 8, 11);
    pb.store(Opcode::Sd, 8, 24, 0);
    pb.alui(Opcode::Addi, 7, 7, 8);
    pb.alui(Opcode::Addi, 24, 24, 8);
    pb.alui(Opcode::Addi, 19, 19, 1);
    state_loop.end();

    pb.mv(27, 25);
    pb.mv(25, 26);
    pb.mv(26, 27);
    pb.alui(Opcode::Addi, 21, 21, 1);
    step_loop.end();
    pb.ret();
    return entry;
}

Label
emitDct8x8(ProgramBuilder &pb, const DctParams &params, stats::Rng &rng)
{
    const std::uint32_t blocks = std::max(1u, params.blocks);

    std::vector<std::uint64_t> block_data(64);
    for (auto &v : block_data)
        v = rng.nextBelow(256);
    const std::uint64_t block = pb.allocWords(block_data);
    std::vector<std::uint64_t> cosines(64);
    for (std::uint32_t u = 0; u < 8; ++u)
        for (std::uint32_t x = 0; x < 8; ++x) {
            const double c =
                std::cos((2.0 * x + 1.0) * u * 3.14159265358979 / 16.0);
            cosines[u * 8 + x] = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(c * 256.0));
        }
    const std::uint64_t ctable = pb.allocWords(cosines);
    const std::uint64_t tmp = pb.allocData(64 * 8);

    Label entry = pb.newLabel();
    pb.bind(entry);

    Loop blk_loop(pb, 5, blocks);
    // Row transform: tmp[r][u] = sum_x block[r][x] * cos[u][x] >> 8.
    pb.li(12, static_cast<std::int64_t>(block)); // row base
    pb.li(16, static_cast<std::int64_t>(tmp));   // output walker
    Loop r_loop(pb, 6, 8);
    pb.li(13, static_cast<std::int64_t>(ctable)); // cos row base
    Loop u_loop(pb, 7, 8);
    pb.li(10, 0);
    pb.mv(14, 12); // data walker
    pb.mv(15, 13); // cos walker
    Loop x_loop(pb, 8, 8);
    pb.load(Opcode::Ld, 9, 14, 0);
    pb.load(Opcode::Ld, 11, 15, 0);
    pb.alu(Opcode::Mul, 9, 9, 11);
    pb.alu(Opcode::Add, 10, 10, 9);
    pb.alui(Opcode::Addi, 14, 14, 8);
    pb.alui(Opcode::Addi, 15, 15, 8);
    x_loop.end();
    pb.alui(Opcode::Srai, 10, 10, 8);
    pb.store(Opcode::Sd, 10, 16, 0);
    pb.alui(Opcode::Addi, 16, 16, 8);
    pb.alui(Opcode::Addi, 13, 13, 64);
    u_loop.end();
    pb.alui(Opcode::Addi, 12, 12, 64);
    r_loop.end();

    // Column transform back into the block (stride-64 accesses).
    pb.li(12, static_cast<std::int64_t>(tmp));
    pb.li(16, static_cast<std::int64_t>(block));
    Loop c_loop(pb, 6, 8);
    pb.li(13, static_cast<std::int64_t>(ctable));
    Loop v_loop(pb, 7, 8);
    pb.li(10, 0);
    pb.mv(14, 12);
    pb.mv(15, 13);
    Loop y_loop(pb, 8, 8);
    pb.load(Opcode::Ld, 9, 14, 0);
    pb.load(Opcode::Ld, 11, 15, 0);
    pb.alu(Opcode::Mul, 9, 9, 11);
    pb.alu(Opcode::Add, 10, 10, 9);
    pb.alui(Opcode::Addi, 14, 14, 64); // column stride
    pb.alui(Opcode::Addi, 15, 15, 8);
    y_loop.end();
    pb.alui(Opcode::Srai, 10, 10, 8);
    pb.store(Opcode::Sd, 10, 16, 0);
    pb.alui(Opcode::Addi, 16, 16, 64);
    pb.alui(Opcode::Addi, 13, 13, 64);
    v_loop.end();
    pb.alui(Opcode::Addi, 12, 12, 8);
    pb.alui(Opcode::Addi, 16, 16,
            8 - 8 * 64); // next column of the output block
    c_loop.end();
    blk_loop.end();
    pb.ret();
    return entry;
}

Label
emitSad(ProgramBuilder &pb, const SadParams &params, stats::Rng &rng)
{
    const std::uint32_t candidates = std::max(1u, params.candidates);

    const std::uint64_t cur = pb.allocData(0, 8);
    (void)pb.allocWords(packedRandomBytes(16 * 16, 256, rng));
    const std::uint64_t ref = pb.allocData(0, 8);
    (void)pb.allocWords(packedRandomBytes(32 * 32, 256, rng));
    // Candidate offsets into the reference window.
    std::vector<std::uint64_t> offsets(candidates);
    for (std::uint32_t c = 0; c < candidates; ++c)
        offsets[c] = (c % 3) * 4 + (c / 3) * 32 * 4;
    const std::uint64_t offset_table = pb.allocWords(offsets);
    const std::uint64_t best_slot = pb.allocData(16);

    Label entry = pb.newLabel();
    pb.bind(entry);
    pb.li(18, static_cast<std::int64_t>(offset_table));
    pb.li(19, 1 << 30); // best SAD so far

    Loop cand_loop(pb, 5, candidates);
    pb.load(Opcode::Ld, 20, 18, 0); // candidate offset
    pb.alui(Opcode::Addi, 18, 18, 8);
    pb.li(21, static_cast<std::int64_t>(cur));
    pb.li(22, static_cast<std::int64_t>(ref));
    pb.alu(Opcode::Add, 22, 22, 20);
    pb.li(6, 0); // accumulated SAD

    Loop y_loop(pb, 7, 16);
    Loop x_loop(pb, 8, 4); // 4 iterations x 4-wide unroll
    for (int u = 0; u < 4; ++u) {
        pb.load(Opcode::Lb, 9, 21, u);
        pb.load(Opcode::Lb, 10, 22, u);
        pb.alu(Opcode::Sub, 9, 9, 10);
        detail::emitAbs(pb, 9, 9, 11);
        pb.alu(Opcode::Add, 6, 6, 9);
    }
    pb.alui(Opcode::Addi, 21, 21, 4);
    pb.alui(Opcode::Addi, 22, 22, 4);
    x_loop.end();
    pb.alui(Opcode::Addi, 22, 22, 16); // reference row pitch is 32
    y_loop.end();

    Label not_better = pb.newLabel();
    pb.branch(Opcode::Bge, 6, 19, not_better);
    pb.mv(19, 6);
    pb.bind(not_better);
    cand_loop.end();

    pb.li(9, static_cast<std::int64_t>(best_slot));
    pb.store(Opcode::Sd, 19, 9, 0);
    pb.ret();
    return entry;
}

Label
emitQuantize(ProgramBuilder &pb, const QuantizeParams &params,
             stats::Rng &rng)
{
    const std::uint32_t n = std::max(1u, params.n);

    std::vector<std::uint64_t> coeffs(n);
    for (auto &v : coeffs)
        v = rng.nextBelow(4096);
    const std::uint64_t data = pb.allocWords(coeffs);
    std::vector<std::uint64_t> qtable(64);
    for (auto &v : qtable)
        v = 1 + rng.nextBelow(31);
    const std::uint64_t quant = pb.allocWords(qtable);

    Label entry = pb.newLabel();
    pb.bind(entry);
    pb.li(5, static_cast<std::int64_t>(data));
    pb.li(6, static_cast<std::int64_t>(quant));
    pb.li(12, 0);   // table index
    pb.li(13, 255); // clamp bounds
    pb.li(14, -255);

    Loop loop(pb, 7, n);
    pb.load(Opcode::Ld, 8, 5, 0);
    pb.alui(Opcode::Andi, 9, 12, 63);
    pb.alui(Opcode::Slli, 9, 9, 3);
    pb.alu(Opcode::Add, 9, 9, 6);
    pb.load(Opcode::Ld, 10, 9, 0);
    pb.alu(Opcode::Mul, 8, 8, 10);
    pb.alui(Opcode::Srai, 8, 8, 8);
    Label no_hi = pb.newLabel();
    Label no_lo = pb.newLabel();
    pb.branch(Opcode::Blt, 8, 13, no_hi); // rarely taken clamps
    pb.mv(8, 13);
    pb.bind(no_hi);
    pb.branch(Opcode::Bge, 8, 14, no_lo);
    pb.mv(8, 14);
    pb.bind(no_lo);
    pb.store(Opcode::Sd, 8, 5, 0);
    pb.alui(Opcode::Addi, 5, 5, 8);
    pb.alui(Opcode::Addi, 12, 12, 1);
    loop.end();
    pb.ret();
    return entry;
}

} // namespace mica::workloads
