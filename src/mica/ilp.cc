#include "mica/ilp.hh"

#include <algorithm>

namespace mica::profiler {

using isa::RegOperand;

IlpAnalyzer::IlpAnalyzer()
{
    reg_producer_.fill(kNoProducer);
    for (std::size_t w = 0; w < kNumIlpWindows; ++w) {
        windows_[w].window = kIlpWindows[w];
        windows_[w].done.assign(kIlpWindows[w], 0);
        windows_[w].retire.assign(kIlpWindows[w], 0);
    }
}

void
IlpAnalyzer::onInstruction(const vm::DynInstr &dyn)
{
    const isa::Instruction &in = *dyn.instr;

    // Gather producer indices (identical for every window size).
    std::uint64_t producers[4];
    std::size_t num_producers = 0;
    for (const RegOperand &src : in.sources()) {
        if (src.file == RegOperand::File::Int && src.index == isa::kRegZero)
            continue; // x0 has no producer
        const std::size_t slot = (src.file == RegOperand::File::Fp ? 32 : 0)
            + src.index;
        const std::uint64_t p = reg_producer_[slot];
        if (p != kNoProducer)
            producers[num_producers++] = p;
    }
    if (dyn.is_load) {
        // Store-to-load dependence at 8-byte block granularity; accesses
        // are at most 8 bytes so they span at most two blocks.
        const std::uint64_t first = dyn.mem_addr >> 3;
        const std::uint64_t last =
            (dyn.mem_addr + dyn.mem_bytes - 1) >> 3;
        for (std::uint64_t blk = first; blk <= last; ++blk) {
            auto it = mem_producer_.find(blk);
            if (it != mem_producer_.end())
                producers[num_producers++] = it->second;
            if (num_producers == 4)
                break;
        }
    }

    // Schedule in every window.
    for (auto &ws : windows_) {
        const std::uint32_t w = ws.window;
        const std::size_t slot = static_cast<std::size_t>(index_ % w);
        // Window constraint: instruction (index_-W) must have retired.
        std::uint64_t start = index_ >= w ? ws.retire[slot] : 0;
        for (std::size_t i = 0; i < num_producers; ++i) {
            const std::uint64_t p = producers[i];
            // Producers older than the window head are covered by the
            // monotone retire constraint.
            if (p + w > index_) {
                const std::uint64_t d = ws.done[p % w];
                start = std::max(start, d);
            }
        }
        const std::uint64_t done = start + 1; // unit latency
        ws.done[slot] = done;
        ws.horizon = std::max(ws.horizon, done);
        ws.retire[slot] = ws.horizon;
    }

    // Record this instruction as producer of its outputs.
    if (in.hasDest()) {
        const RegOperand d = in.dest();
        const std::size_t slot = (d.file == RegOperand::File::Fp ? 32 : 0)
            + d.index;
        reg_producer_[slot] = index_;
    }
    if (dyn.is_store) {
        const std::uint64_t first = dyn.mem_addr >> 3;
        const std::uint64_t last =
            (dyn.mem_addr + dyn.mem_bytes - 1) >> 3;
        for (std::uint64_t blk = first; blk <= last; ++blk)
            mem_producer_[blk] = index_;
    }

    ++index_;
}

std::array<double, kNumIlpWindows>
IlpAnalyzer::closeInterval()
{
    std::array<double, kNumIlpWindows> out{};
    const std::uint64_t n = index_ - interval_start_index_;
    for (std::size_t w = 0; w < kNumIlpWindows; ++w) {
        const std::uint64_t cycles =
            windows_[w].horizon - windows_[w].interval_start_cycle;
        out[w] = cycles > 0
            ? static_cast<double>(n) / static_cast<double>(cycles)
            : 0.0;
        windows_[w].interval_start_cycle = windows_[w].horizon;
    }
    interval_start_index_ = index_;

    // The store producer map grows with the write footprint; cap its size
    // across interval boundaries to keep long runs bounded. Dropping old
    // entries only loses dependences that the retire constraint almost
    // always subsumes anyway.
    if (mem_producer_.size() > (1u << 20))
        mem_producer_.clear();

    return out;
}

} // namespace mica::profiler
