/**
 * @file
 * Prediction-by-partial-matching (PPM) branch predictability metric
 * (Chen, Coffey & Mudge, ASPLOS 1996; paper Table 1).
 *
 * A PPM predictor of order m keeps context tables for history lengths
 * m, m-1, ..., 0 and predicts with the longest context that has been
 * observed before. We implement the four classic two-level organizations:
 *
 *   - GAg: global history, one shared table
 *   - GAs: global history, tables indexed per static branch
 *   - PAg: per-branch (local) history, one shared table
 *   - PAs: per-branch history, tables indexed per static branch
 *
 * Tables are unbounded (this is a predictability *metric*, not a hardware
 * budget), counters are 2-bit saturating, and on a longest-context miss the
 * predictor falls back to progressively shorter contexts, then installs the
 * full-length context (PPM* style update exclusion keeps the cost near one
 * table probe per branch in steady state).
 */

#ifndef MICAPHASE_MICA_PPM_HH
#define MICAPHASE_MICA_PPM_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace mica::profiler {

/** One PPM predictor configuration. */
class PpmPredictor
{
  public:
    /**
     * @param max_history   history length m in bits (<= 20)
     * @param local_history use per-branch history instead of global
     * @param per_address   index tables by static branch address as well
     */
    PpmPredictor(unsigned max_history, bool local_history, bool per_address);

    /**
     * Predict the branch at pc, then train on the actual outcome.
     * @return true when the prediction was correct
     */
    bool predictAndTrain(std::uint64_t pc, bool taken);

  private:
    /** History register value relevant for this branch. */
    [[nodiscard]] std::uint32_t historyFor(std::uint64_t pc) const;

    void updateHistory(std::uint64_t pc, bool taken);

    [[nodiscard]] std::uint64_t key(std::uint64_t pc,
                                    std::uint32_t history,
                                    unsigned length) const;

    unsigned max_history_;
    bool local_history_;
    bool per_address_;

    std::uint32_t global_history_ = 0;
    std::unordered_map<std::uint64_t, std::uint32_t> local_histories_;

    /** One counter table per context length (0..max_history_). */
    std::vector<std::unordered_map<std::uint64_t, std::int8_t>> tables_;
};

} // namespace mica::profiler

#endif // MICAPHASE_MICA_PPM_HH
