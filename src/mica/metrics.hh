/**
 * @file
 * The 69 microarchitecture-independent characteristics (paper Table 1).
 *
 * Index layout (totals per category reconstructed from the paper:
 * 20 + 4 + 9 + 4 + 18 + 14 = 69):
 *
 *  - [0, 20)  instruction mix fractions
 *  - [20, 24) ideal-window ILP for windows 32/64/128/256
 *  - [24, 33) register traffic (operands, degree of use, 7 distance buckets)
 *  - [33, 37) memory footprints (instr/data x 64B blocks/4KB pages)
 *  - [37, 55) data stride cumulative distributions
 *  - [55, 69) branch behaviour (taken rate, transition rate, 12 PPM rates)
 */

#ifndef MICAPHASE_MICA_METRICS_HH
#define MICAPHASE_MICA_METRICS_HH

#include <array>
#include <cstddef>
#include <string_view>

namespace mica::metrics {

/** Total number of characteristics measured per instruction interval. */
constexpr std::size_t kNumCharacteristics = 69;

/** A full characterization of one instruction interval. */
using CharacteristicVector = std::array<double, kNumCharacteristics>;

/** Table 1 categories. */
enum class Category : std::uint8_t
{
    InstructionMix,
    Ilp,
    RegisterTraffic,
    MemoryFootprint,
    DataStride,
    BranchPredictability,
};

/** Static description of one characteristic. */
struct MetricInfo
{
    std::string_view name;        ///< short machine-friendly identifier
    std::string_view description; ///< Table-1-style human description
    Category category;
};

/** Metadata for characteristic index i (i < kNumCharacteristics). */
[[nodiscard]] const MetricInfo &metricInfo(std::size_t index);

/** Printable category name. */
[[nodiscard]] std::string_view categoryName(Category category);

/** Characteristic indices, grouped as in Table 1. */
namespace midx {

// Instruction mix (fractions of dynamic instructions). Note that the first
// six categories overlap with the rest (a load is also counted in its
// producing category? No: MemRead/MemWrite/Control and their sub-fractions
// are separate views of the same stream; the remaining 14 partition the
// non-memory, non-control instructions).
constexpr std::size_t MixMemRead = 0;
constexpr std::size_t MixMemWrite = 1;
constexpr std::size_t MixControl = 2;
constexpr std::size_t MixCondBranch = 3;
constexpr std::size_t MixCall = 4;
constexpr std::size_t MixReturn = 5;
constexpr std::size_t MixIntArith = 6;
constexpr std::size_t MixIntMul = 7;
constexpr std::size_t MixIntDiv = 8;
constexpr std::size_t MixIntLogic = 9;
constexpr std::size_t MixIntShift = 10;
constexpr std::size_t MixIntCmp = 11;
constexpr std::size_t MixFpArith = 12;
constexpr std::size_t MixFpMul = 13;
constexpr std::size_t MixFpDiv = 14;
constexpr std::size_t MixFpSqrt = 15;
constexpr std::size_t MixFpCmp = 16;
constexpr std::size_t MixFpCvt = 17;
constexpr std::size_t MixMove = 18;
constexpr std::size_t MixNopOther = 19;

// Ideal-processor ILP (IPC with perfect caches/branch prediction, unit
// latency, infinite issue width) for four reorder-window sizes.
constexpr std::size_t Ilp32 = 20;
constexpr std::size_t Ilp64 = 21;
constexpr std::size_t Ilp128 = 22;
constexpr std::size_t Ilp256 = 23;

// Register traffic.
constexpr std::size_t RegInputOperands = 24; ///< avg reg sources per instr
constexpr std::size_t RegDegreeOfUse = 25;   ///< reads per register write
constexpr std::size_t RegDepDist1 = 26;      ///< P(distance <= 1)
constexpr std::size_t RegDepDist2 = 27;      ///< P(distance <= 2)
constexpr std::size_t RegDepDist4 = 28;      ///< P(distance <= 4)
constexpr std::size_t RegDepDist8 = 29;      ///< P(distance <= 8)
constexpr std::size_t RegDepDist16 = 30;     ///< P(distance <= 16)
constexpr std::size_t RegDepDist32 = 31;     ///< P(distance <= 32)
constexpr std::size_t RegDepDistGt32 = 32;   ///< P(distance > 32)

// Memory footprints (unique blocks/pages touched in the interval).
constexpr std::size_t InstrFootprint64B = 33;
constexpr std::size_t InstrFootprint4K = 34;
constexpr std::size_t DataFootprint64B = 35;
constexpr std::size_t DataFootprint4K = 36;

// Data-stride cumulative probabilities. "Local" strides are between
// consecutive accesses of the same static instruction; "global" strides are
// between consecutive accesses of any instruction; loads and stores are
// tracked separately (paper Table 1).
constexpr std::size_t LocalLoadStride0 = 37;
constexpr std::size_t LocalLoadStride8 = 38;
constexpr std::size_t LocalLoadStride64 = 39;
constexpr std::size_t LocalLoadStride512 = 40;
constexpr std::size_t LocalLoadStride4096 = 41;
constexpr std::size_t LocalStoreStride0 = 42;
constexpr std::size_t LocalStoreStride8 = 43;
constexpr std::size_t LocalStoreStride64 = 44;
constexpr std::size_t LocalStoreStride512 = 45;
constexpr std::size_t LocalStoreStride4096 = 46;
constexpr std::size_t GlobalLoadStride64 = 47;
constexpr std::size_t GlobalLoadStride512 = 48;
constexpr std::size_t GlobalLoadStride4096 = 49;
constexpr std::size_t GlobalLoadStride32768 = 50;
constexpr std::size_t GlobalStoreStride64 = 51;
constexpr std::size_t GlobalStoreStride512 = 52;
constexpr std::size_t GlobalStoreStride4096 = 53;
constexpr std::size_t GlobalStoreStride32768 = 54;

// Branch behaviour.
constexpr std::size_t BranchTakenRate = 55;
constexpr std::size_t BranchTransitionRate = 56;
// PPM misprediction rates: {GAg, GAs, PAg, PAs} x history {4, 8, 12}.
constexpr std::size_t PpmGag4 = 57;
constexpr std::size_t PpmGag8 = 58;
constexpr std::size_t PpmGag12 = 59;
constexpr std::size_t PpmGas4 = 60;
constexpr std::size_t PpmGas8 = 61;
constexpr std::size_t PpmGas12 = 62;
constexpr std::size_t PpmPag4 = 63;
constexpr std::size_t PpmPag8 = 64;
constexpr std::size_t PpmPag12 = 65;
constexpr std::size_t PpmPas4 = 66;
constexpr std::size_t PpmPas8 = 67;
constexpr std::size_t PpmPas12 = 68;

} // namespace midx

} // namespace mica::metrics

#endif // MICAPHASE_MICA_METRICS_HH
