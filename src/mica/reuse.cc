#include "mica/reuse.hh"

#include <algorithm>
#include <bit>
#include <cassert>

namespace mica::profiler {

namespace {

/** Initial Fenwick capacity; doubles up to kMaxTreeSize, then compacts. */
constexpr std::uint32_t kInitialTreeSize = 1u << 16;
constexpr std::uint32_t kMaxTreeSize = 1u << 22;

} // namespace

ReuseDistanceAnalyzer::ReuseDistanceAnalyzer(unsigned block_shift)
    : block_shift_(block_shift),
      tree_(kInitialTreeSize, 0),
      histogram_(kNumBuckets, 0)
{
}

void
ReuseDistanceAnalyzer::treeAdd(std::uint32_t pos, std::int32_t delta)
{
    for (; pos < tree_.size(); pos += pos & (0u - pos))
        tree_[pos] = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(tree_[pos]) + delta);
}

std::uint32_t
ReuseDistanceAnalyzer::treeSum(std::uint32_t pos) const
{
    std::uint32_t sum = 0;
    for (; pos > 0; pos -= pos & (0u - pos))
        sum += tree_[pos];
    return sum;
}

void
ReuseDistanceAnalyzer::compact()
{
    // Reassign timestamps densely, preserving LRU order: blocks sorted by
    // old timestamp get consecutive new timestamps.
    std::vector<std::pair<std::uint32_t, std::uint64_t>> order;
    order.reserve(last_access_.size());
    for (const auto &[block, t] : last_access_)
        order.emplace_back(t, block);
    std::sort(order.begin(), order.end());

    std::fill(tree_.begin(), tree_.end(), 0);
    std::uint32_t t = 1;
    for (const auto &[old_t, block] : order) {
        last_access_[block] = t;
        treeAdd(t, 1);
        ++t;
    }
    time_ = t;
}

void
ReuseDistanceAnalyzer::access(std::uint64_t addr)
{
    const std::uint64_t block = addr >> block_shift_;

    // Grow or compact the timestamp space when exhausted. Either way the
    // Fenwick tree is rebuilt from the resident-block map (Fenwick trees
    // do not resize in place).
    if (time_ + 1 >= tree_.size()) {
        if (tree_.size() < kMaxTreeSize)
            tree_.assign(tree_.size() * 2, 0);
        compact();
    }

    const std::uint32_t now = ++time_;
    auto it = last_access_.find(block);
    if (it == last_access_.end()) {
        ++cold_;
        last_access_.emplace(block, now);
        treeAdd(now, 1);
        return;
    }

    const std::uint32_t prev = it->second;
    // Distinct blocks touched strictly after prev = set bits in (prev, now).
    const std::uint32_t distance = treeSum(now - 1) - treeSum(prev);
    treeAdd(prev, -1);
    treeAdd(now, 1);
    it->second = now;

    ++reuses_;
    distance_sum_ += distance;
    const std::size_t bucket = distance == 0
        ? 0
        : std::min<std::size_t>(std::bit_width(
                                    static_cast<std::uint64_t>(distance)),
                                kNumBuckets - 1);
    ++histogram_[bucket];
}

void
ReuseDistanceAnalyzer::onInstruction(const vm::DynInstr &dyn)
{
    if (dyn.mem_bytes != 0)
        access(dyn.mem_addr);
}

double
ReuseDistanceAnalyzer::missRateForCapacity(std::uint64_t blocks) const
{
    const std::uint64_t total = reuses_ + cold_;
    if (total == 0)
        return 0.0;
    // Accesses with distance >= capacity miss. Exact for power-of-two
    // capacities (bucket edges align); otherwise the boundary bucket is
    // counted as hits.
    std::uint64_t misses = cold_;
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
        const std::uint64_t bucket_min = b == 0 ? 0 : (1ULL << (b - 1));
        if (bucket_min >= blocks)
            misses += histogram_[b];
    }
    return static_cast<double>(misses) / static_cast<double>(total);
}

double
ReuseDistanceAnalyzer::meanDistance() const
{
    return reuses_ ? distance_sum_ / static_cast<double>(reuses_) : 0.0;
}

} // namespace mica::profiler
