/**
 * @file
 * MicaProfiler: the microarchitecture-independent characterization sink.
 *
 * Attach a MicaProfiler to a vm::Cpu run and it produces one
 * CharacteristicVector (69 metrics, paper Table 1) per instruction
 * interval. This is the library's equivalent of the authors' MICA pintool;
 * the interval size is configurable (the paper uses 100M instructions, the
 * experiment harness here defaults to 100K — the methodology is
 * granularity-agnostic, see paper section 3.9).
 *
 * Interval semantics: counter-style state (footprint sets, stride/branch
 * counters) is reset at every interval boundary, while *learning* state
 * (predictor tables, last-address maps, dependence tracking) persists
 * across boundaries, exactly as a continuously attached pintool would
 * behave.
 */

#ifndef MICAPHASE_MICA_PROFILER_HH
#define MICAPHASE_MICA_PROFILER_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mica/ilp.hh"
#include "mica/metrics.hh"
#include "mica/ppm.hh"
#include "vm/trace.hh"

namespace mica::profiler {

/** Per-interval characterization sink. */
class MicaProfiler : public vm::TraceSink
{
  public:
    /** @param interval_instructions instructions per interval (> 0) */
    explicit MicaProfiler(std::uint64_t interval_instructions);
    ~MicaProfiler() override;

    MicaProfiler(const MicaProfiler &) = delete;
    MicaProfiler &operator=(const MicaProfiler &) = delete;

    void onInstruction(const vm::DynInstr &dyn) override;

    /** Completed interval characterizations, in program order. */
    [[nodiscard]] const std::vector<metrics::CharacteristicVector> &
    intervals() const
    {
        return intervals_;
    }

    /**
     * Force-close the current partial interval if it contains at least one
     * instruction (used for aggregate characterization of short programs).
     * @return true when an interval was emitted
     */
    bool flushPartial();

    /** Instructions consumed so far (including the open interval). */
    [[nodiscard]] std::uint64_t instructionsObserved() const
    {
        return total_instructions_;
    }

    /** Configured interval length. */
    [[nodiscard]] std::uint64_t intervalLength() const { return interval_; }

  private:
    void closeInterval();
    void resetIntervalCounters();

    std::uint64_t interval_;
    std::uint64_t total_instructions_ = 0;
    std::uint64_t in_interval_ = 0;

    std::vector<metrics::CharacteristicVector> intervals_;

    // --- Instruction mix counters (per interval). ---
    std::array<std::uint64_t, 20> mix_{};

    // --- ILP. ---
    IlpAnalyzer ilp_;

    // --- Register traffic. ---
    std::uint64_t reg_reads_ = 0;
    std::uint64_t reg_writes_ = 0;
    std::array<std::uint64_t, 7> dep_dist_buckets_{};
    std::uint64_t dep_dist_samples_ = 0;
    /** Dynamic index of the last writer per register (persistent). */
    std::array<std::uint64_t, 64> last_writer_;

    // --- Memory footprints (per interval). ---
    std::unordered_set<std::uint64_t> instr_blocks_;
    std::unordered_set<std::uint64_t> instr_pages_;
    std::unordered_set<std::uint64_t> data_blocks_;
    std::unordered_set<std::uint64_t> data_pages_;

    // --- Strides. ---
    struct StrideCounters
    {
        std::uint64_t total = 0;
        std::array<std::uint64_t, 5> local_buckets{}; ///< 0,8,64,512,4096
        std::array<std::uint64_t, 4> global_buckets{}; ///< 64,...,32768
        std::uint64_t local_samples = 0;
        std::uint64_t global_samples = 0;
    };
    StrideCounters load_strides_;
    StrideCounters store_strides_;
    /** Last address per static memory instruction (persistent). */
    std::unordered_map<std::uint64_t, std::uint64_t> local_last_addr_;
    std::uint64_t global_last_load_ = 0;
    std::uint64_t global_last_store_ = 0;
    bool have_global_load_ = false;
    bool have_global_store_ = false;

    // --- Branch behaviour. ---
    std::uint64_t branches_ = 0;
    std::uint64_t branches_taken_ = 0;
    std::uint64_t branch_transitions_ = 0;
    /** Last outcome per static branch (persistent). */
    std::unordered_map<std::uint64_t, bool> last_outcome_;
    /** 12 PPM predictors: {GAg,GAs,PAg,PAs} x {4,8,12}. */
    std::vector<std::unique_ptr<PpmPredictor>> ppm_;
    std::array<std::uint64_t, 12> ppm_misses_{};

    static constexpr std::uint64_t kNever = ~0ULL;
};

} // namespace mica::profiler

#endif // MICAPHASE_MICA_PROFILER_HH
