/**
 * @file
 * LRU stack-distance (reuse-distance) analysis.
 *
 * The full MICA tool also measures memory reuse behaviour; the paper's
 * related work uses memory access patterns for phase classification. This
 * analyzer measures, per memory access, the number of *distinct* 64-byte
 * blocks touched since the previous access to the same block — the LRU
 * stack distance. The resulting histogram directly yields the miss rate
 * of any fully-associative LRU cache: miss(C) = P(distance >= C blocks),
 * which the tests cross-check against the concrete vm::CacheModel.
 *
 * Implementation: the classic Bennett-Kruskal algorithm — a Fenwick tree
 * over access timestamps holding one bit per currently-resident block;
 * the stack distance is the count of set bits after the block's previous
 * timestamp. Timestamps are compacted in place when the tree fills, so
 * memory stays proportional to the number of distinct blocks.
 */

#ifndef MICAPHASE_MICA_REUSE_HH
#define MICAPHASE_MICA_REUSE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "vm/trace.hh"

namespace mica::profiler {

/** Reuse-distance histogram in power-of-two buckets. */
class ReuseDistanceAnalyzer : public vm::TraceSink
{
  public:
    /** Distances are bucketed as 2^0, 2^1, ..., 2^(kNumBuckets-2), inf. */
    static constexpr std::size_t kNumBuckets = 22;

    /** @param block_shift log2 of the tracking granularity (6 = 64B). */
    explicit ReuseDistanceAnalyzer(unsigned block_shift = 6);

    void onInstruction(const vm::DynInstr &dyn) override;

    /** Record one data access directly (unit-test convenience). */
    void access(std::uint64_t addr);

    /** Accesses with a finite reuse distance. */
    [[nodiscard]] std::uint64_t reuses() const { return reuses_; }

    /** First-touch (cold) accesses. */
    [[nodiscard]] std::uint64_t coldAccesses() const { return cold_; }

    /**
     * Histogram counts: bucket i holds accesses with distance in
     * [2^(i-1), 2^i) for i > 0 and distance 0 for i == 0; the last bucket
     * is unused (cold accesses are reported separately).
     */
    [[nodiscard]] const std::vector<std::uint64_t> &histogram() const
    {
        return histogram_;
    }

    /**
     * Estimated miss rate of a fully-associative LRU cache with the given
     * capacity in blocks: P(distance >= capacity), with cold accesses
     * counted as misses.
     */
    [[nodiscard]] double missRateForCapacity(std::uint64_t blocks) const;

    /** Mean finite reuse distance. */
    [[nodiscard]] double meanDistance() const;

  private:
    void compact();

    unsigned block_shift_;

    /** Fenwick tree over timestamps: 1 = block's most recent access. */
    std::vector<std::uint32_t> tree_;
    std::uint32_t time_ = 0; ///< next timestamp (1-based tree positions)

    /** Block id -> its most recent timestamp. */
    std::unordered_map<std::uint64_t, std::uint32_t> last_access_;

    std::vector<std::uint64_t> histogram_;
    /** Raw distance sums for the mean. */
    double distance_sum_ = 0.0;
    std::uint64_t reuses_ = 0;
    std::uint64_t cold_ = 0;

    void treeAdd(std::uint32_t pos, std::int32_t delta);
    [[nodiscard]] std::uint32_t treeSum(std::uint32_t pos) const;
};

} // namespace mica::profiler

#endif // MICAPHASE_MICA_REUSE_HH
