#include "mica/ppm.hh"

#include <cassert>

namespace mica::profiler {

PpmPredictor::PpmPredictor(unsigned max_history, bool local_history,
                           bool per_address)
    : max_history_(max_history),
      local_history_(local_history),
      per_address_(per_address),
      tables_(max_history + 1)
{
    assert(max_history <= 20);
}

std::uint32_t
PpmPredictor::historyFor(std::uint64_t pc) const
{
    if (!local_history_)
        return global_history_;
    auto it = local_histories_.find(pc);
    return it == local_histories_.end() ? 0 : it->second;
}

void
PpmPredictor::updateHistory(std::uint64_t pc, bool taken)
{
    const std::uint32_t bit = taken ? 1u : 0u;
    const std::uint32_t mask = (1u << max_history_) - 1u;
    if (local_history_) {
        std::uint32_t &h = local_histories_[pc];
        h = ((h << 1) | bit) & mask;
    } else {
        global_history_ = ((global_history_ << 1) | bit) & mask;
    }
}

std::uint64_t
PpmPredictor::key(std::uint64_t pc, std::uint32_t history,
                  unsigned length) const
{
    const std::uint32_t ctx =
        length == 0 ? 0 : history & ((1u << length) - 1u);
    // History fits in 20 bits; shift the pc clear of it so keys are exact
    // (no hash-collision aliasing between contexts).
    return per_address_ ? (pc << 21) | ctx : ctx;
}

bool
PpmPredictor::predictAndTrain(std::uint64_t pc, bool taken)
{
    const std::uint32_t history = historyFor(pc);

    // Find the longest matching context.
    int matched = -1;
    std::unordered_map<std::uint64_t, std::int8_t>::iterator hit;
    for (int len = static_cast<int>(max_history_); len >= 0; --len) {
        auto &table = tables_[static_cast<std::size_t>(len)];
        auto it = table.find(key(pc, history, static_cast<unsigned>(len)));
        if (it != table.end()) {
            matched = len;
            hit = it;
            break;
        }
    }

    bool predicted_taken = false; // static not-taken when nothing matches
    if (matched >= 0)
        predicted_taken = hit->second >= 2;
    const bool correct = predicted_taken == taken;

    // Train the matched context.
    if (matched >= 0) {
        std::int8_t &ctr = hit->second;
        if (taken)
            ctr = static_cast<std::int8_t>(ctr < 3 ? ctr + 1 : 3);
        else
            ctr = static_cast<std::int8_t>(ctr > 0 ? ctr - 1 : 0);
    }
    // Install the longest context when it was absent (update exclusion:
    // only the full-length context and the order-0 fallback are allocated,
    // which keeps steady-state cost near one probe per branch).
    if (matched < static_cast<int>(max_history_)) {
        auto &top = tables_[max_history_];
        top.emplace(key(pc, history, max_history_),
                    static_cast<std::int8_t>(taken ? 2 : 1));
        // Also seed the zero-length context so a fallback always exists.
        if (matched < 0)
            tables_[0].emplace(key(pc, history, 0),
                               static_cast<std::int8_t>(taken ? 2 : 1));
    }

    updateHistory(pc, taken);
    return correct;
}

} // namespace mica::profiler
