#include "mica/profiler.hh"

#include <cassert>
#include <cstdlib>
#include <stdexcept>

namespace mica::profiler {

namespace m = metrics::midx;
using isa::OpGroup;
using isa::RegOperand;

namespace {

/** Positions in the mix_ counter array, matching metric order. */
enum MixSlot : std::size_t
{
    SlotMemRead, SlotMemWrite, SlotControl, SlotCondBranch, SlotCall,
    SlotReturn, SlotIntArith, SlotIntMul, SlotIntDiv, SlotIntLogic,
    SlotIntShift, SlotIntCmp, SlotFpArith, SlotFpMul, SlotFpDiv,
    SlotFpSqrt, SlotFpCmp, SlotFpCvt, SlotMove, SlotNopOther,
};

} // namespace

MicaProfiler::MicaProfiler(std::uint64_t interval_instructions)
    : interval_(interval_instructions)
{
    if (interval_ == 0)
        throw std::invalid_argument("MicaProfiler: interval must be > 0");
    last_writer_.fill(kNever);

    // {GAg, GAs, PAg, PAs} x history {4, 8, 12}, in metric order.
    struct Config { bool local; bool per_address; };
    const Config configs[4] = {
        {false, false}, {false, true}, {true, false}, {true, true}};
    const unsigned histories[3] = {4, 8, 12};
    for (const auto &cfg : configs)
        for (unsigned h : histories)
            ppm_.push_back(std::make_unique<PpmPredictor>(
                h, cfg.local, cfg.per_address));
}

MicaProfiler::~MicaProfiler() = default;

void
MicaProfiler::onInstruction(const vm::DynInstr &dyn)
{
    const isa::Instruction &in = *dyn.instr;
    const isa::OpcodeInfo &info = in.info();

    // --- Instruction mix. ---
    if (dyn.is_load)
        ++mix_[SlotMemRead];
    if (dyn.is_store)
        ++mix_[SlotMemWrite];
    const bool control = isa::isControl(in.op);
    if (control) {
        ++mix_[SlotControl];
        if (dyn.is_cond_branch)
            ++mix_[SlotCondBranch];
        else if (in.isCall())
            ++mix_[SlotCall];
        else if (in.isReturn())
            ++mix_[SlotReturn];
    } else if (!dyn.is_load && !dyn.is_store) {
        if (in.isMove()) {
            ++mix_[SlotMove];
        } else {
            switch (info.group) {
              case OpGroup::IntArith: ++mix_[SlotIntArith]; break;
              case OpGroup::IntMul: ++mix_[SlotIntMul]; break;
              case OpGroup::IntDiv: ++mix_[SlotIntDiv]; break;
              case OpGroup::IntLogic: ++mix_[SlotIntLogic]; break;
              case OpGroup::IntShift: ++mix_[SlotIntShift]; break;
              case OpGroup::IntCmp: ++mix_[SlotIntCmp]; break;
              case OpGroup::FpArith: ++mix_[SlotFpArith]; break;
              case OpGroup::FpMul: ++mix_[SlotFpMul]; break;
              case OpGroup::FpDiv: ++mix_[SlotFpDiv]; break;
              case OpGroup::FpSqrt: ++mix_[SlotFpSqrt]; break;
              case OpGroup::FpCmp: ++mix_[SlotFpCmp]; break;
              case OpGroup::FpCvt: ++mix_[SlotFpCvt]; break;
              default: ++mix_[SlotNopOther]; break;
            }
        }
    }

    // --- ILP. ---
    ilp_.onInstruction(dyn);

    // --- Register traffic. ---
    const std::uint64_t dyn_index = total_instructions_;
    for (const RegOperand &src : in.sources()) {
        ++reg_reads_;
        if (src.file == RegOperand::File::Int && src.index == isa::kRegZero)
            continue; // x0 has no producer: excluded from distances
        const std::size_t slot = (src.file == RegOperand::File::Fp ? 32 : 0)
            + src.index;
        const std::uint64_t writer = last_writer_[slot];
        if (writer == kNever)
            continue;
        const std::uint64_t dist = dyn_index - writer;
        ++dep_dist_samples_;
        if (dist <= 1)
            ++dep_dist_buckets_[0];
        else if (dist <= 2)
            ++dep_dist_buckets_[1];
        else if (dist <= 4)
            ++dep_dist_buckets_[2];
        else if (dist <= 8)
            ++dep_dist_buckets_[3];
        else if (dist <= 16)
            ++dep_dist_buckets_[4];
        else if (dist <= 32)
            ++dep_dist_buckets_[5];
        else
            ++dep_dist_buckets_[6];
    }
    if (in.hasDest()) {
        ++reg_writes_;
        const RegOperand d = in.dest();
        const std::size_t slot = (d.file == RegOperand::File::Fp ? 32 : 0)
            + d.index;
        last_writer_[slot] = dyn_index;
    }

    // --- Footprints. ---
    instr_blocks_.insert(dyn.pc >> 6);
    instr_pages_.insert(dyn.pc >> 12);
    if (dyn.mem_bytes != 0) {
        data_blocks_.insert(dyn.mem_addr >> 6);
        data_pages_.insert(dyn.mem_addr >> 12);
    }

    // --- Strides. ---
    if (dyn.mem_bytes != 0) {
        StrideCounters &sc = dyn.is_load ? load_strides_ : store_strides_;
        ++sc.total;

        auto classify_local = [&](std::uint64_t stride) {
            ++sc.local_samples;
            if (stride == 0)
                ++sc.local_buckets[0];
            if (stride <= 8)
                ++sc.local_buckets[1];
            if (stride <= 64)
                ++sc.local_buckets[2];
            if (stride <= 512)
                ++sc.local_buckets[3];
            if (stride <= 4096)
                ++sc.local_buckets[4];
        };
        auto classify_global = [&](std::uint64_t stride) {
            ++sc.global_samples;
            if (stride <= 64)
                ++sc.global_buckets[0];
            if (stride <= 512)
                ++sc.global_buckets[1];
            if (stride <= 4096)
                ++sc.global_buckets[2];
            if (stride <= 32768)
                ++sc.global_buckets[3];
        };

        auto [it, fresh] = local_last_addr_.try_emplace(dyn.pc,
                                                        dyn.mem_addr);
        if (!fresh) {
            const std::uint64_t prev = it->second;
            const std::uint64_t stride = prev > dyn.mem_addr
                ? prev - dyn.mem_addr : dyn.mem_addr - prev;
            classify_local(stride);
            it->second = dyn.mem_addr;
        }

        if (dyn.is_load) {
            if (have_global_load_) {
                const std::uint64_t stride = global_last_load_ > dyn.mem_addr
                    ? global_last_load_ - dyn.mem_addr
                    : dyn.mem_addr - global_last_load_;
                classify_global(stride);
            }
            global_last_load_ = dyn.mem_addr;
            have_global_load_ = true;
        } else {
            if (have_global_store_) {
                const std::uint64_t stride =
                    global_last_store_ > dyn.mem_addr
                    ? global_last_store_ - dyn.mem_addr
                    : dyn.mem_addr - global_last_store_;
                classify_global(stride);
            }
            global_last_store_ = dyn.mem_addr;
            have_global_store_ = true;
        }
    }

    // --- Branch behaviour. ---
    if (dyn.is_cond_branch) {
        ++branches_;
        if (dyn.taken)
            ++branches_taken_;
        auto [it, fresh] = last_outcome_.try_emplace(dyn.pc, dyn.taken);
        if (!fresh) {
            if (it->second != dyn.taken)
                ++branch_transitions_;
            it->second = dyn.taken;
        }
        for (std::size_t p = 0; p < ppm_.size(); ++p) {
            if (!ppm_[p]->predictAndTrain(dyn.pc, dyn.taken))
                ++ppm_misses_[p];
        }
    }

    ++total_instructions_;
    ++in_interval_;
    if (in_interval_ == interval_)
        closeInterval();
}

bool
MicaProfiler::flushPartial()
{
    if (in_interval_ == 0)
        return false;
    closeInterval();
    return true;
}

void
MicaProfiler::closeInterval()
{
    metrics::CharacteristicVector v{};
    const double n = static_cast<double>(in_interval_);

    for (std::size_t i = 0; i < 20; ++i)
        v[m::MixMemRead + i] = static_cast<double>(mix_[i]) / n;

    const auto ipc = ilp_.closeInterval();
    v[m::Ilp32] = ipc[0];
    v[m::Ilp64] = ipc[1];
    v[m::Ilp128] = ipc[2];
    v[m::Ilp256] = ipc[3];

    v[m::RegInputOperands] = static_cast<double>(reg_reads_) / n;
    v[m::RegDegreeOfUse] = reg_writes_ > 0
        ? static_cast<double>(reg_reads_) /
          static_cast<double>(reg_writes_)
        : 0.0;
    for (std::size_t b = 0; b < 7; ++b)
        v[m::RegDepDist1 + b] = dep_dist_samples_ > 0
            ? static_cast<double>(dep_dist_buckets_[b]) /
              static_cast<double>(dep_dist_samples_)
            : 0.0;

    v[m::InstrFootprint64B] = static_cast<double>(instr_blocks_.size());
    v[m::InstrFootprint4K] = static_cast<double>(instr_pages_.size());
    v[m::DataFootprint64B] = static_cast<double>(data_blocks_.size());
    v[m::DataFootprint4K] = static_cast<double>(data_pages_.size());

    auto emit_strides = [&](const StrideCounters &sc, std::size_t local_base,
                            std::size_t global_base) {
        for (std::size_t b = 0; b < 5; ++b)
            v[local_base + b] = sc.local_samples > 0
                ? static_cast<double>(sc.local_buckets[b]) /
                  static_cast<double>(sc.local_samples)
                : 0.0;
        for (std::size_t b = 0; b < 4; ++b)
            v[global_base + b] = sc.global_samples > 0
                ? static_cast<double>(sc.global_buckets[b]) /
                  static_cast<double>(sc.global_samples)
                : 0.0;
    };
    emit_strides(load_strides_, m::LocalLoadStride0, m::GlobalLoadStride64);
    emit_strides(store_strides_, m::LocalStoreStride0,
                 m::GlobalStoreStride64);

    const double br = static_cast<double>(branches_);
    v[m::BranchTakenRate] =
        branches_ > 0 ? static_cast<double>(branches_taken_) / br : 0.0;
    v[m::BranchTransitionRate] =
        branches_ > 0 ? static_cast<double>(branch_transitions_) / br : 0.0;
    for (std::size_t p = 0; p < 12; ++p)
        v[m::PpmGag4 + p] = branches_ > 0
            ? static_cast<double>(ppm_misses_[p]) / br
            : 0.0;

    intervals_.push_back(v);
    resetIntervalCounters();
}

void
MicaProfiler::resetIntervalCounters()
{
    in_interval_ = 0;
    mix_.fill(0);
    reg_reads_ = 0;
    reg_writes_ = 0;
    dep_dist_buckets_.fill(0);
    dep_dist_samples_ = 0;
    instr_blocks_.clear();
    instr_pages_.clear();
    data_blocks_.clear();
    data_pages_.clear();
    load_strides_ = StrideCounters{};
    store_strides_ = StrideCounters{};
    branches_ = 0;
    branches_taken_ = 0;
    branch_transitions_ = 0;
    ppm_misses_.fill(0);
}

} // namespace mica::profiler
