#include "mica/metrics.hh"

#include <cassert>

namespace mica::metrics {

namespace {

using C = Category;

constexpr std::array<MetricInfo, kNumCharacteristics> kTable = {{
    // Instruction mix.
    {"mix_mem_read", "fraction of memory read instructions",
     C::InstructionMix},
    {"mix_mem_write", "fraction of memory write instructions",
     C::InstructionMix},
    {"mix_control", "fraction of control transfer instructions",
     C::InstructionMix},
    {"mix_cond_branch", "fraction of conditional branches",
     C::InstructionMix},
    {"mix_call", "fraction of calls", C::InstructionMix},
    {"mix_return", "fraction of returns", C::InstructionMix},
    {"mix_int_arith", "fraction of integer add/sub", C::InstructionMix},
    {"mix_int_mul", "fraction of integer multiplies", C::InstructionMix},
    {"mix_int_div", "fraction of integer divides/remainders",
     C::InstructionMix},
    {"mix_int_logic", "fraction of integer logical operations",
     C::InstructionMix},
    {"mix_int_shift", "fraction of integer shifts", C::InstructionMix},
    {"mix_int_cmp", "fraction of integer compares", C::InstructionMix},
    {"mix_fp_arith", "fraction of fp add/sub/neg/abs", C::InstructionMix},
    {"mix_fp_mul", "fraction of fp multiplies (incl. fmadd)",
     C::InstructionMix},
    {"mix_fp_div", "fraction of fp divides", C::InstructionMix},
    {"mix_fp_sqrt", "fraction of fp square roots", C::InstructionMix},
    {"mix_fp_cmp", "fraction of fp compares", C::InstructionMix},
    {"mix_fp_cvt", "fraction of int<->fp conversions", C::InstructionMix},
    {"mix_move", "fraction of register/immediate moves", C::InstructionMix},
    {"mix_nop_other", "fraction of nops and other instructions",
     C::InstructionMix},

    // ILP.
    {"ilp_w32", "ideal IPC, 32-entry window", C::Ilp},
    {"ilp_w64", "ideal IPC, 64-entry window", C::Ilp},
    {"ilp_w128", "ideal IPC, 128-entry window", C::Ilp},
    {"ilp_w256", "ideal IPC, 256-entry window", C::Ilp},

    // Register traffic.
    {"reg_input_operands", "average register input operands per instruction",
     C::RegisterTraffic},
    {"reg_degree_of_use", "average register reads per register write",
     C::RegisterTraffic},
    {"reg_dep_dist_le1", "P(register dependency distance <= 1)",
     C::RegisterTraffic},
    {"reg_dep_dist_le2", "P(register dependency distance <= 2)",
     C::RegisterTraffic},
    {"reg_dep_dist_le4", "P(register dependency distance <= 4)",
     C::RegisterTraffic},
    {"reg_dep_dist_le8", "P(register dependency distance <= 8)",
     C::RegisterTraffic},
    {"reg_dep_dist_le16", "P(register dependency distance <= 16)",
     C::RegisterTraffic},
    {"reg_dep_dist_le32", "P(register dependency distance <= 32)",
     C::RegisterTraffic},
    {"reg_dep_dist_gt32", "P(register dependency distance > 32)",
     C::RegisterTraffic},

    // Memory footprint.
    {"instr_footprint_64b", "unique 64-byte blocks in instruction stream",
     C::MemoryFootprint},
    {"instr_footprint_4k", "unique 4KB pages in instruction stream",
     C::MemoryFootprint},
    {"data_footprint_64b", "unique 64-byte blocks in data stream",
     C::MemoryFootprint},
    {"data_footprint_4k", "unique 4KB pages in data stream",
     C::MemoryFootprint},

    // Strides.
    {"lls_0", "P(local load stride == 0)", C::DataStride},
    {"lls_8", "P(local load stride <= 8)", C::DataStride},
    {"lls_64", "P(local load stride <= 64)", C::DataStride},
    {"lls_512", "P(local load stride <= 512)", C::DataStride},
    {"lls_4096", "P(local load stride <= 4096)", C::DataStride},
    {"lss_0", "P(local store stride == 0)", C::DataStride},
    {"lss_8", "P(local store stride <= 8)", C::DataStride},
    {"lss_64", "P(local store stride <= 64)", C::DataStride},
    {"lss_512", "P(local store stride <= 512)", C::DataStride},
    {"lss_4096", "P(local store stride <= 4096)", C::DataStride},
    {"gls_64", "P(global load stride <= 64)", C::DataStride},
    {"gls_512", "P(global load stride <= 512)", C::DataStride},
    {"gls_4096", "P(global load stride <= 4096)", C::DataStride},
    {"gls_32768", "P(global load stride <= 32768)", C::DataStride},
    {"gss_64", "P(global store stride <= 64)", C::DataStride},
    {"gss_512", "P(global store stride <= 512)", C::DataStride},
    {"gss_4096", "P(global store stride <= 4096)", C::DataStride},
    {"gss_32768", "P(global store stride <= 32768)", C::DataStride},

    // Branch behaviour.
    {"br_taken_rate", "average branch taken rate",
     C::BranchPredictability},
    {"br_transition_rate", "average branch transition rate",
     C::BranchPredictability},
    {"ppm_gag_4", "PPM miss rate, global history/global table, 4 bits",
     C::BranchPredictability},
    {"ppm_gag_8", "PPM miss rate, global history/global table, 8 bits",
     C::BranchPredictability},
    {"ppm_gag_12", "PPM miss rate, global history/global table, 12 bits",
     C::BranchPredictability},
    {"ppm_gas_4", "PPM miss rate, global history/per-address table, 4 bits",
     C::BranchPredictability},
    {"ppm_gas_8", "PPM miss rate, global history/per-address table, 8 bits",
     C::BranchPredictability},
    {"ppm_gas_12",
     "PPM miss rate, global history/per-address table, 12 bits",
     C::BranchPredictability},
    {"ppm_pag_4", "PPM miss rate, local history/global table, 4 bits",
     C::BranchPredictability},
    {"ppm_pag_8", "PPM miss rate, local history/global table, 8 bits",
     C::BranchPredictability},
    {"ppm_pag_12", "PPM miss rate, local history/global table, 12 bits",
     C::BranchPredictability},
    {"ppm_pas_4", "PPM miss rate, local history/per-address table, 4 bits",
     C::BranchPredictability},
    {"ppm_pas_8", "PPM miss rate, local history/per-address table, 8 bits",
     C::BranchPredictability},
    {"ppm_pas_12",
     "PPM miss rate, local history/per-address table, 12 bits",
     C::BranchPredictability},
}};

} // namespace

const MetricInfo &
metricInfo(std::size_t index)
{
    assert(index < kNumCharacteristics);
    return kTable[index];
}

std::string_view
categoryName(Category category)
{
    switch (category) {
      case Category::InstructionMix: return "instruction mix";
      case Category::Ilp: return "ILP";
      case Category::RegisterTraffic: return "register traffic";
      case Category::MemoryFootprint: return "memory footprint";
      case Category::DataStride: return "data stream strides";
      case Category::BranchPredictability: return "branch predictability";
    }
    return "?";
}

} // namespace mica::metrics
