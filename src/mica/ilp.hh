/**
 * @file
 * Ideal-window ILP analysis (paper Table 1, "ILP" category).
 *
 * Models the IPC achievable on an idealized out-of-order processor with
 * perfect caches and branch prediction, unit execution latency, unlimited
 * issue width, and a reorder window of W in-flight instructions with
 * in-order retirement. The only constraints are true data dependences
 * (register producers, and store-to-load forwarding through memory) and the
 * window: instruction i may not issue before instruction i-W has retired.
 *
 * The dependence structure is extracted once (it is identical for all
 * window sizes) and shared across the per-window schedulers.
 */

#ifndef MICAPHASE_MICA_ILP_HH
#define MICAPHASE_MICA_ILP_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "vm/trace.hh"

namespace mica::profiler {

/** Number of window sizes measured. */
constexpr std::size_t kNumIlpWindows = 4;

/** The measured window sizes (paper: 32, 64, 128, 256). */
constexpr std::array<std::uint32_t, kNumIlpWindows> kIlpWindows = {
    32, 64, 128, 256};

/** Shared dependence extraction plus one scheduler per window size. */
class IlpAnalyzer
{
  public:
    IlpAnalyzer();

    /** Feed the next dynamic instruction. */
    void onInstruction(const vm::DynInstr &dyn);

    /**
     * Close the current interval: returns IPC per window size for the
     * instructions observed since the previous close, and starts a new
     * interval.
     */
    [[nodiscard]] std::array<double, kNumIlpWindows> closeInterval();

    /** Total instructions observed. */
    [[nodiscard]] std::uint64_t instructionCount() const { return index_; }

  private:
    /** One window's scheduler state. */
    struct WindowState
    {
        std::uint32_t window = 0;
        std::vector<std::uint64_t> done;   ///< circular: finish cycles
        std::vector<std::uint64_t> retire; ///< circular: retire cycles
        std::uint64_t horizon = 0;         ///< retire cycle of newest instr
        std::uint64_t interval_start_cycle = 0;
    };

    std::uint64_t index_ = 0;               ///< dynamic instruction index
    std::uint64_t interval_start_index_ = 0;

    /** Producer instruction index per architectural register. */
    std::array<std::uint64_t, 64> reg_producer_;
    /** Producer instruction index per 8-byte memory block (stores). */
    std::unordered_map<std::uint64_t, std::uint64_t> mem_producer_;

    std::array<WindowState, kNumIlpWindows> windows_;

    static constexpr std::uint64_t kNoProducer = ~0ULL;
};

} // namespace mica::profiler

#endif // MICAPHASE_MICA_ILP_HH
