#include "vm/timing.hh"

#include <cassert>

namespace mica::vm {

namespace {

unsigned
log2OfPow2(std::uint32_t v)
{
    unsigned shift = 0;
    while ((1u << shift) < v)
        ++shift;
    return shift;
}

} // namespace

CacheModel::CacheModel(std::uint32_t size_bytes, std::uint32_t line_bytes,
                       std::uint32_t ways)
    : line_shift_(log2OfPow2(line_bytes)),
      num_sets_(size_bytes / (line_bytes * ways)),
      ways_(ways),
      sets_(static_cast<std::size_t>(num_sets_) * ways)
{
    assert(num_sets_ > 0);
}

bool
CacheModel::access(std::uint64_t addr)
{
    ++tick_;
    const std::uint64_t line = addr >> line_shift_;
    const std::uint32_t set =
        static_cast<std::uint32_t>(line % num_sets_);
    const std::uint64_t tag = line / num_sets_;
    Way *base = sets_.data() + static_cast<std::size_t>(set) * ways_;

    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lru = tick_;
            ++hits_;
            return true;
        }
    }

    // Miss: evict the LRU way.
    std::uint32_t victim = 0;
    for (std::uint32_t w = 1; w < ways_; ++w)
        if (!base[w].valid ||
            (base[victim].valid && base[w].lru < base[victim].lru))
            victim = w;
    base[victim].valid = true;
    base[victim].tag = tag;
    base[victim].lru = tick_;
    ++misses_;
    return false;
}

double
CacheModel::missRate() const
{
    const std::uint64_t total = hits_ + misses_;
    return total ? static_cast<double>(misses_) /
                       static_cast<double>(total)
                 : 0.0;
}

GsharePredictor::GsharePredictor(unsigned log2_entries)
    : log2_entries_(log2_entries),
      table_(1u << log2_entries, 1) // weakly not-taken
{
}

bool
GsharePredictor::predictAndTrain(std::uint64_t pc, bool taken)
{
    const std::uint32_t mask = (1u << log2_entries_) - 1u;
    const std::uint32_t index =
        (static_cast<std::uint32_t>(pc >> 3) ^ history_) & mask;
    std::int8_t &ctr = table_[index];
    const bool predicted = ctr >= 2;
    if (taken)
        ctr = static_cast<std::int8_t>(ctr < 3 ? ctr + 1 : 3);
    else
        ctr = static_cast<std::int8_t>(ctr > 0 ? ctr - 1 : 0);
    history_ = ((history_ << 1) | (taken ? 1u : 0u)) & mask;
    return predicted == taken;
}

TimingModel::TimingModel(const TimingConfig &config)
    : config_(config),
      l1i_(config.l1i_bytes, config.l1_line, config.l1_ways),
      l1d_(config.l1d_bytes, config.l1_line, config.l1_ways),
      l2_(config.l2_bytes, config.l2_line, config.l2_ways),
      predictor_(config.predictor_log2_entries)
{
}

void
TimingModel::onInstruction(const DynInstr &dyn)
{
    std::uint64_t cycles = 1;

    // Instruction fetch.
    if (!l1i_.access(dyn.pc)) {
        cycles += l2_.access(dyn.pc) ? config_.l1_miss_penalty
                                     : config_.l1_miss_penalty +
                                           config_.l2_miss_penalty;
    }

    // Data access.
    if (dyn.mem_bytes != 0) {
        if (!l1d_.access(dyn.mem_addr)) {
            cycles += l2_.access(dyn.mem_addr)
                ? config_.l1_miss_penalty
                : config_.l1_miss_penalty + config_.l2_miss_penalty;
        }
    }

    // Execution latency beyond the base cycle.
    switch (dyn.instr->info().group) {
      case isa::OpGroup::IntMul:
        cycles += config_.mul_latency;
        break;
      case isa::OpGroup::IntDiv:
        cycles += config_.div_latency;
        break;
      case isa::OpGroup::FpArith:
      case isa::OpGroup::FpMul:
      case isa::OpGroup::FpCmp:
      case isa::OpGroup::FpCvt:
        cycles += config_.fp_latency;
        break;
      case isa::OpGroup::FpDiv:
      case isa::OpGroup::FpSqrt:
        cycles += config_.fdiv_latency;
        break;
      default:
        break;
    }

    // Branch prediction.
    if (dyn.is_cond_branch) {
        ++stats_.branches;
        if (!predictor_.predictAndTrain(dyn.pc, dyn.taken)) {
            ++stats_.branch_mispredictions;
            cycles += config_.branch_penalty;
        }
    }

    ++stats_.instructions;
    stats_.cycles += cycles;
}

} // namespace mica::vm
