/**
 * @file
 * A human-readable execution tracer: logs each retired instruction
 * (pc, disassembly, memory address, branch outcome) to a stream. Useful
 * for debugging generated workloads and as a reference TraceSink
 * implementation; compose it with other sinks through TeeSink.
 */

#ifndef MICAPHASE_VM_TRACE_LOGGER_HH
#define MICAPHASE_VM_TRACE_LOGGER_HH

#include <cstdint>
#include <ostream>

#include "vm/trace.hh"

namespace mica::vm {

/** Streams one formatted line per retired instruction. */
class TraceLogger : public TraceSink
{
  public:
    /**
     * @param out          destination stream (must outlive the logger)
     * @param max_lines    stop logging after this many instructions
     *                     (0 = unlimited); execution continues either way
     */
    explicit TraceLogger(std::ostream &out, std::uint64_t max_lines = 0);

    void onInstruction(const DynInstr &dyn) override;

    /** Instructions seen (including ones beyond the logging limit). */
    [[nodiscard]] std::uint64_t seen() const { return seen_; }

  private:
    std::ostream &out_;
    std::uint64_t max_lines_;
    std::uint64_t seen_ = 0;
};

} // namespace mica::vm

#endif // MICAPHASE_VM_TRACE_LOGGER_HH
