/**
 * @file
 * A simple cycle-approximate timing model, implemented as a TraceSink.
 *
 * The paper's characterization is deliberately microarchitecture-
 * *independent*; this sink provides the microarchitecture-*dependent*
 * counterpart (CPI, cache miss rates, branch misprediction rates on a
 * concrete configuration). It exists for two reasons:
 *
 *  - the related-work application of the workload space is predicting a
 *    program's performance from its behavioural neighbours (Hoste et al.,
 *    PACT 2006) — that needs a ground-truth performance number;
 *  - it lets the test suite confirm that the microarchitecture-independent
 *    metrics actually track machine behaviour (e.g. PPM miss rate
 *    correlates with a real predictor's miss rate).
 *
 * Model: blocking in-order pipeline, 1 cycle per instruction, plus
 * additive penalties for I/D cache misses (two levels), branch
 * mispredictions (gshare) and long-latency arithmetic. No overlap is
 * modelled — deliberately simple, fully deterministic.
 */

#ifndef MICAPHASE_VM_TIMING_HH
#define MICAPHASE_VM_TIMING_HH

#include <cstdint>
#include <vector>

#include "vm/trace.hh"

namespace mica::vm {

/** Set-associative LRU cache model (tags only). */
class CacheModel
{
  public:
    /**
     * @param size_bytes total capacity
     * @param line_bytes line size (power of two)
     * @param ways associativity
     */
    CacheModel(std::uint32_t size_bytes, std::uint32_t line_bytes,
               std::uint32_t ways);

    /** Access the line containing addr; returns true on hit. */
    bool access(std::uint64_t addr);

    [[nodiscard]] std::uint64_t hits() const { return hits_; }
    [[nodiscard]] std::uint64_t misses() const { return misses_; }
    [[nodiscard]] double missRate() const;

  private:
    struct Way
    {
        std::uint64_t tag = ~0ULL;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    std::uint32_t line_shift_;
    std::uint32_t num_sets_;
    std::uint32_t ways_;
    std::vector<Way> sets_; ///< num_sets_ * ways_
    std::uint64_t tick_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/** gshare branch predictor with a fixed-size table of 2-bit counters. */
class GsharePredictor
{
  public:
    explicit GsharePredictor(unsigned log2_entries = 12);

    /** Predict + train; returns true when the prediction was correct. */
    bool predictAndTrain(std::uint64_t pc, bool taken);

  private:
    unsigned log2_entries_;
    std::uint32_t history_ = 0;
    std::vector<std::int8_t> table_;
};

/** Machine configuration for the timing sink. */
struct TimingConfig
{
    std::uint32_t l1i_bytes = 16 * 1024;
    std::uint32_t l1d_bytes = 16 * 1024;
    std::uint32_t l1_line = 64;
    std::uint32_t l1_ways = 2;
    std::uint32_t l2_bytes = 256 * 1024;
    std::uint32_t l2_line = 64;
    std::uint32_t l2_ways = 8;

    std::uint32_t l1_miss_penalty = 8;    ///< cycles, L1 miss / L2 hit
    std::uint32_t l2_miss_penalty = 60;   ///< cycles, L2 miss
    std::uint32_t branch_penalty = 10;    ///< misprediction flush
    std::uint32_t mul_latency = 2;        ///< extra cycles beyond 1
    std::uint32_t div_latency = 20;
    std::uint32_t fp_latency = 3;
    std::uint32_t fdiv_latency = 15;

    unsigned predictor_log2_entries = 12;
};

/** Per-run timing statistics. */
struct TimingStats
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t branch_mispredictions = 0;
    std::uint64_t branches = 0;

    [[nodiscard]] double cpi() const
    {
        return instructions
            ? static_cast<double>(cycles) /
                  static_cast<double>(instructions)
            : 0.0;
    }

    [[nodiscard]] double
    branchMissRate() const
    {
        return branches ? static_cast<double>(branch_mispredictions) /
                              static_cast<double>(branches)
                        : 0.0;
    }
};

/** The timing sink: attach to Cpu::run like any other TraceSink. */
class TimingModel : public TraceSink
{
  public:
    explicit TimingModel(const TimingConfig &config = {});

    void onInstruction(const DynInstr &dyn) override;

    [[nodiscard]] const TimingStats &stats() const { return stats_; }
    [[nodiscard]] const CacheModel &l1i() const { return l1i_; }
    [[nodiscard]] const CacheModel &l1d() const { return l1d_; }
    [[nodiscard]] const CacheModel &l2() const { return l2_; }

  private:
    TimingConfig config_;
    CacheModel l1i_;
    CacheModel l1d_;
    CacheModel l2_;
    GsharePredictor predictor_;
    TimingStats stats_;
};

} // namespace mica::vm

#endif // MICAPHASE_VM_TIMING_HH
