#include "vm/cpu.hh"

#include <cmath>
#include <limits>

namespace mica::vm {

using isa::Instruction;
using isa::Opcode;

namespace {

/** Sign-extend the low `bits` bits of value. */
inline std::int64_t
signExtend(std::uint64_t value, unsigned bits)
{
    const unsigned shift = 64 - bits;
    return static_cast<std::int64_t>(value << shift) >> shift;
}

/** Truncating double->int64 conversion without undefined behaviour. */
inline std::int64_t
doubleToInt64(double v)
{
    if (std::isnan(v))
        return 0;
    if (v >= 9.2233720368547758e18)
        return std::numeric_limits<std::int64_t>::max();
    if (v <= -9.2233720368547758e18)
        return std::numeric_limits<std::int64_t>::min();
    return static_cast<std::int64_t>(v);
}

} // namespace

Cpu::Cpu(isa::Program program) : program_(std::move(program))
{
    reset();
}

void
Cpu::reset()
{
    mem_.clear();
    xregs_.fill(0);
    fregs_.fill(0.0);
    if (!program_.data.empty())
        mem_.writeBytes(program_.data_base, program_.data);
    pc_ = program_.entry();
    xregs_[isa::kRegSp] = static_cast<std::int64_t>(program_.stack_top);
    retired_ = 0;
    halted_ = false;
}

RunResult
Cpu::run(std::uint64_t max_instructions, TraceSink *sink)
{
    RunResult result;
    if (halted_) {
        result.reason = StopReason::Halted;
        return result;
    }

    const std::uint64_t code_base = program_.code_base;
    const std::uint64_t code_end =
        code_base + program_.code.size() * isa::kInstrBytes;

    while (result.executed < max_instructions) {
        if (pc_ < code_base || pc_ >= code_end ||
            (pc_ - code_base) % isa::kInstrBytes != 0) {
            result.reason = StopReason::InvalidPc;
            return result;
        }

        const std::size_t idx =
            static_cast<std::size_t>((pc_ - code_base) / isa::kInstrBytes);
        const Instruction &in = program_.code[idx];

        DynInstr dyn;
        dyn.instr = &in;
        dyn.pc = pc_;

        std::uint64_t next_pc = pc_ + isa::kInstrBytes;
        const std::int64_t a = xregs_[in.rs1];
        const std::int64_t b = xregs_[in.rs2];
        const std::uint64_t ua = static_cast<std::uint64_t>(a);
        const std::uint64_t ub = static_cast<std::uint64_t>(b);
        const double fa = fregs_[in.rs1];
        const double fb = fregs_[in.rs2];

        auto write_x = [&](std::int64_t v) {
            if (in.rd != isa::kRegZero)
                xregs_[in.rd] = v;
        };
        auto write_f = [&](double v) { fregs_[in.rd] = v; };
        auto mem_access = [&](std::uint64_t addr, bool load) {
            dyn.mem_addr = addr;
            dyn.mem_bytes = in.info().mem_bytes;
            dyn.is_load = load;
            dyn.is_store = !load;
        };

        switch (in.op) {
          // Integer arithmetic wraps (two's complement): compute in
          // unsigned to keep the wrap-around defined behaviour.
          case Opcode::Add:
            write_x(static_cast<std::int64_t>(ua + ub));
            break;
          case Opcode::Sub:
            write_x(static_cast<std::int64_t>(ua - ub));
            break;
          case Opcode::Mul:
            write_x(static_cast<std::int64_t>(ua * ub));
            break;
          case Opcode::Div:
            // RISC-V semantics: x/0 == -1; overflow wraps to dividend.
            if (b == 0)
                write_x(-1);
            else if (a == std::numeric_limits<std::int64_t>::min() &&
                     b == -1)
                write_x(a);
            else
                write_x(a / b);
            break;
          case Opcode::Rem:
            if (b == 0)
                write_x(a);
            else if (a == std::numeric_limits<std::int64_t>::min() &&
                     b == -1)
                write_x(0);
            else
                write_x(a % b);
            break;
          case Opcode::And: write_x(a & b); break;
          case Opcode::Or: write_x(a | b); break;
          case Opcode::Xor: write_x(a ^ b); break;
          case Opcode::Sll:
            write_x(static_cast<std::int64_t>(ua << (ub & 63)));
            break;
          case Opcode::Srl:
            write_x(static_cast<std::int64_t>(ua >> (ub & 63)));
            break;
          case Opcode::Sra: write_x(a >> (ub & 63)); break;
          case Opcode::Slt: write_x(a < b ? 1 : 0); break;
          case Opcode::Sltu: write_x(ua < ub ? 1 : 0); break;

          case Opcode::Addi:
            write_x(static_cast<std::int64_t>(
                ua + static_cast<std::uint64_t>(in.imm)));
            break;
          case Opcode::Andi: write_x(a & in.imm); break;
          case Opcode::Ori: write_x(a | in.imm); break;
          case Opcode::Xori: write_x(a ^ in.imm); break;
          case Opcode::Slli:
            write_x(static_cast<std::int64_t>(ua << (in.imm & 63)));
            break;
          case Opcode::Srli:
            write_x(static_cast<std::int64_t>(ua >> (in.imm & 63)));
            break;
          case Opcode::Srai: write_x(a >> (in.imm & 63)); break;
          case Opcode::Slti: write_x(a < in.imm ? 1 : 0); break;

          case Opcode::Lb:
          case Opcode::Lh:
          case Opcode::Lw:
          case Opcode::Ld: {
            const std::uint64_t addr = ua + in.imm;
            const unsigned size = in.info().mem_bytes;
            mem_access(addr, true);
            write_x(signExtend(mem_.read(addr, size), size * 8));
            break;
          }
          case Opcode::Sb:
          case Opcode::Sh:
          case Opcode::Sw:
          case Opcode::Sd: {
            const std::uint64_t addr = ua + in.imm;
            mem_access(addr, false);
            mem_.write(addr, ub, in.info().mem_bytes);
            break;
          }
          case Opcode::Fld: {
            const std::uint64_t addr = ua + in.imm;
            mem_access(addr, true);
            write_f(mem_.readDouble(addr));
            break;
          }
          case Opcode::Fsd: {
            const std::uint64_t addr = ua + in.imm;
            mem_access(addr, false);
            mem_.writeDouble(addr, fregs_[in.rs2]);
            break;
          }

          case Opcode::Fadd: write_f(fa + fb); break;
          case Opcode::Fsub: write_f(fa - fb); break;
          case Opcode::Fmul: write_f(fa * fb); break;
          case Opcode::Fdiv: write_f(fa / fb); break;
          case Opcode::Fsqrt:
            write_f(std::sqrt(std::max(fa, 0.0)));
            break;
          case Opcode::Fmadd: write_f(fregs_[in.rd] + fa * fb); break;
          case Opcode::Fneg: write_f(-fa); break;
          case Opcode::Fabs: write_f(std::fabs(fa)); break;
          case Opcode::Fmov: write_f(fa); break;
          case Opcode::Fcmplt: write_x(fa < fb ? 1 : 0); break;
          case Opcode::Fcmple: write_x(fa <= fb ? 1 : 0); break;
          case Opcode::Fcmpeq: write_x(fa == fb ? 1 : 0); break;
          case Opcode::Cvtif: write_f(static_cast<double>(a)); break;
          case Opcode::Cvtfi: write_x(doubleToInt64(fa)); break;

          case Opcode::Beq:
          case Opcode::Bne:
          case Opcode::Blt:
          case Opcode::Bge:
          case Opcode::Bltu:
          case Opcode::Bgeu: {
            bool taken = false;
            switch (in.op) {
              case Opcode::Beq: taken = a == b; break;
              case Opcode::Bne: taken = a != b; break;
              case Opcode::Blt: taken = a < b; break;
              case Opcode::Bge: taken = a >= b; break;
              case Opcode::Bltu: taken = ua < ub; break;
              case Opcode::Bgeu: taken = ua >= ub; break;
              default: break;
            }
            dyn.is_cond_branch = true;
            dyn.taken = taken;
            if (taken)
                next_pc = pc_ + static_cast<std::uint64_t>(in.imm);
            break;
          }
          case Opcode::Jal:
            write_x(static_cast<std::int64_t>(pc_ + isa::kInstrBytes));
            next_pc = pc_ + static_cast<std::uint64_t>(in.imm);
            break;
          case Opcode::Jalr: {
            const std::uint64_t target =
                ua + static_cast<std::uint64_t>(in.imm);
            write_x(static_cast<std::int64_t>(pc_ + isa::kInstrBytes));
            next_pc = target;
            break;
          }

          case Opcode::Nop:
            break;
          case Opcode::Halt:
            halted_ = true;
            break;
          case Opcode::NumOpcodes:
            break;
        }

        pc_ = next_pc;
        ++retired_;
        ++result.executed;

        if (sink) {
            dyn.next_pc = next_pc;
            sink->onInstruction(dyn);
        }

        if (halted_) {
            result.reason = StopReason::Halted;
            return result;
        }
    }

    result.reason = StopReason::InstructionLimit;
    return result;
}

} // namespace mica::vm
