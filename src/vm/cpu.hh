/**
 * @file
 * Functional interpreter for SRISC programs.
 *
 * The Cpu executes a loaded Program instruction by instruction, maintaining
 * architectural state only (no timing): 32 integer registers, 32 fp
 * registers, pc, and sparse memory. An optional TraceSink observes every
 * retired instruction — this is the instrumentation attachment point used by
 * the MICA profiler.
 */

#ifndef MICAPHASE_VM_CPU_HH
#define MICAPHASE_VM_CPU_HH

#include <array>
#include <cstdint>

#include "isa/program.hh"
#include "vm/memory.hh"
#include "vm/trace.hh"

namespace mica::vm {

/** Reasons an execution slice stopped. */
enum class StopReason
{
    InstructionLimit, ///< executed the requested number of instructions
    Halted,           ///< retired a HALT instruction
    InvalidPc,        ///< pc left the code segment (e.g. bad jalr target)
};

/** Result of Cpu::run. */
struct RunResult
{
    StopReason reason = StopReason::InstructionLimit;
    std::uint64_t executed = 0; ///< instructions retired in this slice
};

/** Functional SRISC interpreter. */
class Cpu
{
  public:
    /**
     * Load a program: copies data segment into memory, resets state. The
     * Cpu keeps its own copy of the program image, so callers may pass
     * temporaries.
     */
    explicit Cpu(isa::Program program);

    Cpu(const Cpu &) = delete;
    Cpu &operator=(const Cpu &) = delete;

    /** Reset registers/pc/memory to the freshly loaded state. */
    void reset();

    /**
     * Execute up to max_instructions instructions, reporting each retired
     * instruction to the sink (when non-null).
     */
    RunResult run(std::uint64_t max_instructions,
                  TraceSink *sink = nullptr);

    /** @name Architectural state access (tests and workload drivers). */
    /// @{
    [[nodiscard]] std::int64_t intReg(std::uint8_t i) const
    {
        return xregs_[i];
    }
    void setIntReg(std::uint8_t i, std::int64_t v)
    {
        if (i != isa::kRegZero)
            xregs_[i] = v;
    }
    [[nodiscard]] double fpReg(std::uint8_t i) const { return fregs_[i]; }
    void setFpReg(std::uint8_t i, double v) { fregs_[i] = v; }
    [[nodiscard]] std::uint64_t pc() const { return pc_; }
    void setPc(std::uint64_t pc) { pc_ = pc; }
    [[nodiscard]] Memory &memory() { return mem_; }
    [[nodiscard]] const Memory &memory() const { return mem_; }
    /// @}

    /** Total instructions retired since the last reset. */
    [[nodiscard]] std::uint64_t instructionsRetired() const
    {
        return retired_;
    }

    /** The program this CPU runs. */
    [[nodiscard]] const isa::Program &program() const { return program_; }

  private:
    const isa::Program program_;
    Memory mem_;
    std::array<std::int64_t, isa::kNumIntRegs> xregs_{};
    std::array<double, isa::kNumFpRegs> fregs_{};
    std::uint64_t pc_ = 0;
    std::uint64_t retired_ = 0;
    bool halted_ = false;
};

} // namespace mica::vm

#endif // MICAPHASE_VM_CPU_HH
