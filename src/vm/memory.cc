#include "vm/memory.hh"

#include <cassert>
#include <cstring>

namespace mica::vm {

std::uint8_t
Memory::readByte(std::uint64_t addr) const
{
    const Page *page = pageForConst(addr);
    if (!page)
        return 0;
    return (*page)[addr % kPageBytes];
}

void
Memory::writeByte(std::uint64_t addr, std::uint8_t value)
{
    pageFor(addr)[addr % kPageBytes] = value;
}

Memory::Page &
Memory::pageFor(std::uint64_t addr)
{
    const std::uint64_t key = addr / kPageBytes;
    auto it = pages_.find(key);
    if (it == pages_.end()) {
        auto page = std::make_unique<Page>();
        page->fill(0);
        it = pages_.emplace(key, std::move(page)).first;
    }
    return *it->second;
}

const Memory::Page *
Memory::pageForConst(std::uint64_t addr) const
{
    auto it = pages_.find(addr / kPageBytes);
    return it == pages_.end() ? nullptr : it->second.get();
}

std::uint64_t
Memory::read(std::uint64_t addr, unsigned size) const
{
    assert(size == 1 || size == 2 || size == 4 || size == 8);
    // Fast path: access fully inside one page.
    const std::uint64_t offset = addr % kPageBytes;
    if (offset + size <= kPageBytes) {
        const Page *page = pageForConst(addr);
        if (!page)
            return 0;
        std::uint64_t value = 0;
        std::memcpy(&value, page->data() + offset, size);
        return value;
    }
    std::uint64_t value = 0;
    for (unsigned i = 0; i < size; ++i)
        value |= static_cast<std::uint64_t>(readByte(addr + i)) << (8 * i);
    return value;
}

void
Memory::write(std::uint64_t addr, std::uint64_t value, unsigned size)
{
    assert(size == 1 || size == 2 || size == 4 || size == 8);
    const std::uint64_t offset = addr % kPageBytes;
    if (offset + size <= kPageBytes) {
        std::memcpy(pageFor(addr).data() + offset, &value, size);
        return;
    }
    for (unsigned i = 0; i < size; ++i)
        writeByte(addr + i, static_cast<std::uint8_t>(value >> (8 * i)));
}

double
Memory::readDouble(std::uint64_t addr) const
{
    const std::uint64_t bits = read(addr, 8);
    double out;
    std::memcpy(&out, &bits, sizeof(out));
    return out;
}

void
Memory::writeDouble(std::uint64_t addr, double value)
{
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    write(addr, bits, 8);
}

void
Memory::writeBytes(std::uint64_t addr, std::span<const std::uint8_t> bytes)
{
    for (std::size_t i = 0; i < bytes.size(); ++i)
        writeByte(addr + i, bytes[i]);
}

void
Memory::readBytes(std::uint64_t addr, std::span<std::uint8_t> out) const
{
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = readByte(addr + i);
}

} // namespace mica::vm
