/**
 * @file
 * Dynamic instruction records and the instrumentation-hook interface.
 *
 * TraceSink is this library's analogue of a Pin analysis routine: the VM
 * calls TraceSink::onInstruction once per retired instruction with
 * everything a microarchitecture-independent characterization needs —
 * the static instruction, its pc, the effective memory address, and the
 * branch outcome.
 */

#ifndef MICAPHASE_VM_TRACE_HH
#define MICAPHASE_VM_TRACE_HH

#include <cstdint>
#include <vector>

#include "isa/instruction.hh"

namespace mica::vm {

/** One retired dynamic instruction as observed by instrumentation. */
struct DynInstr
{
    /** Static instruction (points into the loaded program, never null). */
    const isa::Instruction *instr = nullptr;
    /** pc of this instruction. */
    std::uint64_t pc = 0;
    /** pc of the next retired instruction (fall-through or target). */
    std::uint64_t next_pc = 0;
    /** Effective address for loads/stores; undefined otherwise. */
    std::uint64_t mem_addr = 0;
    /** Access size in bytes; 0 for non-memory instructions. */
    std::uint8_t mem_bytes = 0;
    /** True when a memory instruction reads. */
    bool is_load = false;
    /** True when a memory instruction writes. */
    bool is_store = false;
    /** True when this is a conditional branch. */
    bool is_cond_branch = false;
    /** Conditional branch outcome (false for non-branches). */
    bool taken = false;
};

/** Instrumentation hook invoked by the VM for every retired instruction. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Called after the instruction has architecturally completed. */
    virtual void onInstruction(const DynInstr &dyn) = 0;
};

/** A sink that fans a trace out to several sinks (e.g. MICA + a logger). */
class TeeSink : public TraceSink
{
  public:
    void attach(TraceSink *sink) { sinks_.push_back(sink); }

    void
    onInstruction(const DynInstr &dyn) override
    {
        for (TraceSink *s : sinks_)
            s->onInstruction(dyn);
    }

  private:
    std::vector<TraceSink *> sinks_;
};

} // namespace mica::vm

#endif // MICAPHASE_VM_TRACE_HH
