#include "vm/trace_logger.hh"

#include <iomanip>

namespace mica::vm {

TraceLogger::TraceLogger(std::ostream &out, std::uint64_t max_lines)
    : out_(out), max_lines_(max_lines)
{
}

void
TraceLogger::onInstruction(const DynInstr &dyn)
{
    ++seen_;
    if (max_lines_ != 0 && seen_ > max_lines_)
        return;

    out_ << "0x" << std::hex << std::setw(8) << std::setfill('0') << dyn.pc
         << std::dec << std::setfill(' ') << "  " << std::left
         << std::setw(28) << dyn.instr->disassemble() << std::right;
    if (dyn.mem_bytes != 0) {
        out_ << (dyn.is_load ? "  R " : "  W ") << "0x" << std::hex
             << dyn.mem_addr << std::dec << " (" << int(dyn.mem_bytes)
             << "B)";
    }
    if (dyn.is_cond_branch)
        out_ << (dyn.taken ? "  [taken]" : "  [not taken]");
    out_ << "\n";
}

} // namespace mica::vm
