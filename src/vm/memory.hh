/**
 * @file
 * Sparse, demand-allocated flat memory for the SRISC VM.
 *
 * Memory is byte-addressed over a 64-bit address space and backed by 4KB
 * pages allocated on first touch (zero-filled). This lets workloads use
 * widely separated segments (code, data, stack, heaps) without committing
 * host memory for the gaps.
 */

#ifndef MICAPHASE_VM_MEMORY_HH
#define MICAPHASE_VM_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>

namespace mica::vm {

/** Page granularity of the backing store. */
constexpr std::uint64_t kPageBytes = 4096;

/** Sparse paged memory. */
class Memory
{
  public:
    /** Read a little-endian unsigned value of 1/2/4/8 bytes. */
    [[nodiscard]] std::uint64_t read(std::uint64_t addr, unsigned size) const;

    /** Write the low `size` bytes of value, little-endian. */
    void write(std::uint64_t addr, std::uint64_t value, unsigned size);

    /** Read a 64-bit IEEE double. */
    [[nodiscard]] double readDouble(std::uint64_t addr) const;

    /** Write a 64-bit IEEE double. */
    void writeDouble(std::uint64_t addr, double value);

    /** Bulk copy-in (used by the program loader). */
    void writeBytes(std::uint64_t addr, std::span<const std::uint8_t> bytes);

    /** Bulk copy-out (used by tests). */
    void readBytes(std::uint64_t addr, std::span<std::uint8_t> out) const;

    /** Number of pages that have been touched. */
    [[nodiscard]] std::size_t pagesAllocated() const { return pages_.size(); }

    /** Drop all contents. */
    void clear() { pages_.clear(); }

  private:
    using Page = std::array<std::uint8_t, kPageBytes>;

    [[nodiscard]] std::uint8_t readByte(std::uint64_t addr) const;
    void writeByte(std::uint64_t addr, std::uint8_t value);

    Page &pageFor(std::uint64_t addr);
    [[nodiscard]] const Page *pageForConst(std::uint64_t addr) const;

    std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
};

} // namespace mica::vm

#endif // MICAPHASE_VM_MEMORY_HH
