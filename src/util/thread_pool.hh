/**
 * @file
 * Shared futures-based thread pool for the statistics engine.
 *
 * The pool is deliberately work-stealing-free: `parallelFor` hands out
 * indices from a single atomic counter and the *callers* decide how work
 * maps to indices. Every parallel site in the library follows the same
 * determinism recipe:
 *
 *   1. Partition the work into blocks whose boundaries depend only on the
 *      problem size (never on the thread count).
 *   2. Compute an independent partial result per block (seeded Rng streams
 *      are split sequentially up front when randomness is involved).
 *   3. Reduce the partials serially in block-index order.
 *
 * Under that contract the numeric output is bit-for-bit identical for any
 * thread count, including 1 — the thread count only changes wall-clock
 * time. See docs/PERFORMANCE.md for the full determinism argument.
 */

#ifndef MICAPHASE_UTIL_THREAD_POOL_HH
#define MICAPHASE_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace mica::util {

/** Fixed-size worker pool with futures-based submission. */
class ThreadPool
{
  public:
    /** Spawn `threads` workers (clamped to at least 1). */
    explicit ThreadPool(unsigned threads);

    /** Drains the queue, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    [[nodiscard]] unsigned size() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Enqueue a task; the future carries its result or exception. */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<std::invoke_result_t<Fn>>
    {
        using R = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<Fn>(fn));
        std::future<R> future = task->get_future();
        enqueue([task]() { (*task)(); });
        return future;
    }

    /**
     * Run fn(i) for every i in [0, n) on the calling thread plus up to
     * min(size(), max_helpers) pool workers, blocking until all indices
     * completed. Every index executes even when one throws; afterwards the
     * exception with the lowest index is rethrown, so the surfaced error
     * does not depend on scheduling. The calling thread always participates,
     * which makes nested parallelFor calls deadlock-free.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn,
                     unsigned max_helpers = ~0u);

    /** Process-wide pool sized to the hardware concurrency. */
    static ThreadPool &shared();

  private:
    void enqueue(std::function<void()> task);
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable cv_;
    std::queue<std::function<void()>> queue_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

/**
 * Resolve a requested thread count to an effective one: 0 means hardware
 * concurrency; the result is clamped to [1, work_items] so no site ever
 * spins up more workers than it has work items (work_items == 0 resolves
 * to 1).
 */
[[nodiscard]] unsigned resolveThreads(unsigned requested,
                                      std::size_t work_items);

/**
 * Convenience parallel-for over the shared pool: run fn(i) for i in [0, n)
 * with ~`threads` concurrent executors (the calling thread plus threads-1
 * pool helpers). threads <= 1 runs serially in index order on the calling
 * thread without touching the pool. Exception propagation matches
 * ThreadPool::parallelFor (lowest index wins).
 */
void parallelFor(unsigned threads, std::size_t n,
                 const std::function<void(std::size_t)> &fn);

} // namespace mica::util

#endif // MICAPHASE_UTIL_THREAD_POOL_HH
