/**
 * @file
 * Cache-line-aligned allocation helpers for the SIMD kernel layer.
 *
 * The vectorized stats kernels (`src/stats/simd.hh`) issue unaligned
 * loads so they work on any 8-byte-aligned storage — including matrices
 * aliased straight out of an mmap'd model file — but aligned bases avoid
 * cache-line splits on the hot owned-matrix paths and are required for
 * honest STREAM-style bandwidth measurements. `Matrix` places its row
 * storage through `AlignedAllocator`, and the bench harness allocates
 * its sweep buffers with `alignedAlloc` directly.
 */

#ifndef MICAPHASE_UTIL_ALIGNED_HH
#define MICAPHASE_UTIL_ALIGNED_HH

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace mica::util {

/** Alignment used for all SIMD-facing buffers: one x86/ARM cache line. */
inline constexpr std::size_t kCacheLineBytes = 64;

/**
 * Allocate `bytes` with the given power-of-two alignment (the size is
 * rounded up to a multiple of the alignment, as std::aligned_alloc
 * requires). Throws std::bad_alloc on failure; free with std::free.
 */
[[nodiscard]] inline void *
alignedAlloc(std::size_t bytes, std::size_t alignment = kCacheLineBytes)
{
    if (bytes == 0)
        bytes = alignment;
    const std::size_t rounded =
        (bytes + alignment - 1) / alignment * alignment;
    if (rounded < bytes) // size overflowed while rounding up
        throw std::bad_alloc();
    void *p = std::aligned_alloc(alignment, rounded);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

/**
 * Minimal C++ allocator over alignedAlloc, so standard containers can
 * carry cache-line-aligned storage. Stateless: all instances compare
 * equal and memory may be freed by any instance.
 */
template <typename T, std::size_t Alignment = kCacheLineBytes>
class AlignedAllocator
{
    static_assert((Alignment & (Alignment - 1)) == 0,
                  "alignment must be a power of two");
    static_assert(Alignment >= alignof(T),
                  "alignment must satisfy the element type");

  public:
    using value_type = T;

    AlignedAllocator() noexcept = default;

    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Alignment> &) noexcept
    {
    }

    [[nodiscard]] T *
    allocate(std::size_t n)
    {
        if (n > std::numeric_limits<std::size_t>::max() / sizeof(T))
            throw std::bad_alloc();
        return static_cast<T *>(alignedAlloc(n * sizeof(T), Alignment));
    }

    void
    deallocate(T *p, std::size_t) noexcept
    {
        std::free(p);
    }

    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Alignment>;
    };

    friend bool
    operator==(const AlignedAllocator &, const AlignedAllocator &) noexcept
    {
        return true;
    }
};

/** std::vector whose base pointer is cache-line aligned. */
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

} // namespace mica::util

#endif // MICAPHASE_UTIL_ALIGNED_HH
