#include "util/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <limits>

#include "obs/trace.hh"

namespace mica::util {

namespace {

/**
 * State of one parallelFor invocation. Helpers enqueued on the pool keep
 * the job alive through a shared_ptr, so a helper that only gets scheduled
 * after the loop already finished merely observes an exhausted counter and
 * returns without touching the (by then dead) function object.
 */
struct ForJob
{
    std::atomic<std::size_t> next{0};
    std::size_t n = 0;
    const std::function<void(std::size_t)> *fn = nullptr;
    std::mutex mutex;
    std::condition_variable done;
    std::size_t completed = 0;
    std::size_t error_index = std::numeric_limits<std::size_t>::max();
    std::exception_ptr error;

    void
    run()
    {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            std::exception_ptr thrown;
            try {
                (*fn)(i);
            } catch (...) {
                thrown = std::current_exception();
            }
            const std::lock_guard<std::mutex> lock(mutex);
            if (thrown && i < error_index) {
                error_index = i;
                error = thrown;
            }
            if (++completed == n)
                done.notify_all();
        }
    }
};

} // namespace

ThreadPool::ThreadPool(unsigned threads)
{
    threads = std::max(threads, 1u);
    workers_.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    std::size_t depth = 0;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        queue_.push(std::move(task));
        depth = queue_.size();
    }
    cv_.notify_one();
    // Instrumentation stays outside the pool lock.
    obs::count("pool.tasks_queued");
    obs::gauge("pool.queue_depth", static_cast<double>(depth));
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this]() { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping, queue drained
            task = std::move(queue_.front());
            queue_.pop();
        }
        {
            const obs::Span span("pool.task", "pool");
            task();
        }
        obs::count("pool.tasks_executed");
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn,
                        unsigned max_helpers)
{
    if (n == 0)
        return;

    auto job = std::make_shared<ForJob>();
    job->n = n;
    job->fn = &fn;

    // The calling thread runs indices too, so n-1 helpers suffice.
    const std::size_t helpers = std::min(
        {static_cast<std::size_t>(max_helpers),
         static_cast<std::size_t>(size()), n - 1});
    for (std::size_t h = 0; h < helpers; ++h)
        enqueue([job]() { job->run(); });

    job->run();

    std::unique_lock<std::mutex> lock(job->mutex);
    job->done.wait(lock, [&]() { return job->completed == job->n; });
    if (job->error)
        std::rethrow_exception(job->error);
}

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool(
        std::max(1u, std::thread::hardware_concurrency()));
    return pool;
}

unsigned
resolveThreads(unsigned requested, std::size_t work_items)
{
    unsigned n = requested != 0
        ? requested
        : std::max(1u, std::thread::hardware_concurrency());
    if (work_items < n)
        n = static_cast<unsigned>(std::max<std::size_t>(work_items, 1));
    return n;
}

void
parallelFor(unsigned threads, std::size_t n,
            const std::function<void(std::size_t)> &fn)
{
    if (threads <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    ThreadPool::shared().parallelFor(n, fn, threads - 1);
}

} // namespace mica::util
