/**
 * @file
 * Lightweight tracing + metrics for the experiment pipeline.
 *
 * A TraceSession collects RAII Span records (name, category, monotonic
 * begin/end timestamps, a small stable thread id, nesting depth), named
 * counters (monotonic accumulators) and gauges (last + max value). At most
 * one session is *active* process-wide at a time; Span, count() and
 * gauge() no-op when none is — the disabled cost is a single atomic load
 * per call site, so the instrumentation stays compiled into production
 * code paths without perturbing untraced runs. Tracing never touches any
 * RNG or numeric state, so traced results are bit-identical to untraced
 * ones. See docs/OBSERVABILITY.md for naming conventions and usage.
 *
 * Exports:
 *  - Chrome trace-event JSON (balanced "B"/"E" pairs per span), loadable
 *    in chrome://tracing or https://ui.perfetto.dev;
 *  - a metrics-summary JSON: counters, gauges, per-span-name aggregates
 *    and per-worker thread-pool busy time / utilization (derived from
 *    spans in the "pool" category).
 *
 * Lifetime: sessions are created through TraceSession::create() and a
 * process-wide registry keeps every created session alive until exit.
 * A raw session pointer captured by a concurrent Span therefore never
 * dangles, even if the session is deactivated while a stale pool task is
 * still in flight — no reference counting on the hot path. Retired
 * sessions free their bulk storage with clearRecords().
 */

#ifndef MICAPHASE_OBS_TRACE_HH
#define MICAPHASE_OBS_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mica::obs {

/** Small stable id for the calling thread (assigned on first use). */
[[nodiscard]] std::uint32_t currentThreadId();

/** One completed span. */
struct SpanRecord
{
    std::string name;
    std::string category;
    std::uint64_t begin_us = 0; ///< microseconds since session start
    std::uint64_t end_us = 0;
    std::uint32_t tid = 0;      ///< currentThreadId() of the recording thread
    std::uint32_t depth = 0;    ///< nesting depth on that thread (0 = top)
};

/** Last and maximum value a gauge has seen. */
struct GaugeRecord
{
    double last = 0.0;
    double max = 0.0;
};

class TraceSession
{
  public:
    /** Create a session (registered process-wide; see file comment). */
    [[nodiscard]] static std::shared_ptr<TraceSession> create();

    /** The active session, or nullptr when tracing is disabled. */
    [[nodiscard]] static TraceSession *active() noexcept;

    /** Install this session as the process-wide active one. */
    void activate() noexcept;

    /** Clear the active slot if this session currently holds it. */
    void deactivate() noexcept;

    /** Monotonic microseconds since this session was created. */
    [[nodiscard]] std::uint64_t nowMicros() const;

    /** Record a completed span. */
    void recordSpan(std::string_view name, std::string_view category,
                    std::uint64_t begin_us, std::uint64_t end_us,
                    std::uint32_t tid, std::uint32_t depth);

    /** Add to a named counter (created at 0 on first use). */
    void addCounter(std::string_view name, double delta);

    /** Set a named gauge (records last and max). */
    void setGauge(std::string_view name, double value);

    /** Snapshot of all recorded spans. */
    [[nodiscard]] std::vector<SpanRecord> spans() const;

    /** Snapshot of all counters. */
    [[nodiscard]] std::map<std::string, double> counters() const;

    /** Snapshot of all gauges. */
    [[nodiscard]] std::map<std::string, GaugeRecord> gauges() const;

    /** Value of one counter (0 when never touched). */
    [[nodiscard]] double counter(std::string_view name) const;

    /** Chrome trace-event JSON (balanced B/E pairs, ts-sorted). */
    [[nodiscard]] std::string chromeTraceJson() const;

    /** Metrics-summary JSON (counters, gauges, spans, pool workers). */
    [[nodiscard]] std::string metricsJson() const;

    /** Write chromeTraceJson() to a file (creates parent directories). */
    void writeChromeTrace(const std::string &path) const;

    /** Write metricsJson() to a file (creates parent directories). */
    void writeMetrics(const std::string &path) const;

    /** Drop all recorded data (used when retiring a session). */
    void clearRecords();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

  private:
    TraceSession();

    mutable std::mutex mutex_;
    std::vector<SpanRecord> spans_;
    std::map<std::string, double> counters_;
    std::map<std::string, GaugeRecord> gauges_;
    std::chrono::steady_clock::time_point epoch_;
};

namespace detail {
/**
 * The active session. Acquire/release ordering publishes the session's
 * construction to threads that pick it up; the load is the only cost a
 * disabled call site pays.
 */
inline std::atomic<TraceSession *> g_active{nullptr};
} // namespace detail

inline TraceSession *
TraceSession::active() noexcept
{
    return detail::g_active.load(std::memory_order_acquire);
}

/**
 * RAII span. Binds to the session active at construction; when none is,
 * construction and destruction are no-ops. The name and category must be
 * string literals (or otherwise outlive the span).
 */
class Span
{
  public:
    explicit Span(const char *name, const char *category = "pipeline")
        : session_(TraceSession::active()), name_(name), category_(category)
    {
        if (session_ != nullptr)
            begin();
    }

    ~Span()
    {
        if (session_ != nullptr)
            end();
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    void begin();
    void end();

    TraceSession *session_;
    const char *name_;
    const char *category_;
    std::uint64_t begin_us_ = 0;
    std::uint32_t depth_ = 0;
};

/** Add to a named counter of the active session (no-op when disabled). */
inline void
count(const char *name, double delta = 1.0)
{
    if (TraceSession *session = TraceSession::active())
        session->addCounter(name, delta);
}

/** Set a named gauge of the active session (no-op when disabled). */
inline void
gauge(const char *name, double value)
{
    if (TraceSession *session = TraceSession::active())
        session->setGauge(name, value);
}

/**
 * RAII latency gauge: on destruction, sets the named gauge to the elapsed
 * wall-clock seconds since construction. Binds to the session active at
 * construction; a fully disabled timer costs one atomic load and skips
 * the clock reads. The batched projection and serving paths use this to
 * expose per-batch latency (`last` = most recent batch, `max` = worst).
 */
class GaugeTimer
{
  public:
    explicit GaugeTimer(const char *name)
        : session_(TraceSession::active()), name_(name)
    {
        if (session_ != nullptr)
            start_ = std::chrono::steady_clock::now();
    }

    ~GaugeTimer()
    {
        if (session_ != nullptr) {
            const std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - start_;
            session_->setGauge(name_, elapsed.count());
        }
    }

    GaugeTimer(const GaugeTimer &) = delete;
    GaugeTimer &operator=(const GaugeTimer &) = delete;

  private:
    TraceSession *session_;
    const char *name_;
    std::chrono::steady_clock::time_point start_;
};

/**
 * RAII activate-and-export helper: an empty trace path disables tracing
 * entirely; otherwise a fresh session is created and activated, and on
 * destruction the Chrome trace is written to the path, the metrics
 * summary to metricsPathFor(path), and the previously active session (if
 * any) is restored.
 */
class TraceScope
{
  public:
    explicit TraceScope(const std::string &trace_path);
    ~TraceScope();

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

    /** Whether this scope actually traces. */
    [[nodiscard]] bool enabled() const { return session_ != nullptr; }

    /** "x.json" -> "x.metrics.json"; otherwise append ".metrics.json". */
    [[nodiscard]] static std::string
    metricsPathFor(const std::string &trace_path);

  private:
    std::shared_ptr<TraceSession> session_;
    TraceSession *previous_ = nullptr;
    std::string path_;
};

} // namespace mica::obs

#endif // MICAPHASE_OBS_TRACE_HH
