#include "obs/trace.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace mica::obs {

namespace {

/** Process-wide registry keeping every created session alive (see .hh). */
std::mutex &
registryMutex()
{
    static std::mutex m;
    return m;
}

std::vector<std::shared_ptr<TraceSession>> &
registry()
{
    static std::vector<std::shared_ptr<TraceSession>> r;
    return r;
}

/** Per-thread span nesting depth. */
thread_local std::uint32_t t_span_depth = 0;

/** Minimal JSON string escape (names are library-controlled). */
std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
formatDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
writeTextFile(const std::string &path, const std::string &content,
              const char *what)
{
    const std::filesystem::path p(path);
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path());
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error(std::string(what) + ": cannot write " +
                                 path);
    out << content;
}

} // namespace

std::uint32_t
currentThreadId()
{
    static std::atomic<std::uint32_t> next{0};
    thread_local const std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

TraceSession::TraceSession() : epoch_(std::chrono::steady_clock::now()) {}

std::shared_ptr<TraceSession>
TraceSession::create()
{
    std::shared_ptr<TraceSession> session(new TraceSession());
    const std::lock_guard<std::mutex> lock(registryMutex());
    registry().push_back(session);
    return session;
}

void
TraceSession::activate() noexcept
{
    detail::g_active.store(this, std::memory_order_release);
}

void
TraceSession::deactivate() noexcept
{
    TraceSession *expected = this;
    detail::g_active.compare_exchange_strong(expected, nullptr,
                                             std::memory_order_acq_rel);
}

std::uint64_t
TraceSession::nowMicros() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

void
TraceSession::recordSpan(std::string_view name, std::string_view category,
                         std::uint64_t begin_us, std::uint64_t end_us,
                         std::uint32_t tid, std::uint32_t depth)
{
    SpanRecord rec;
    rec.name.assign(name);
    rec.category.assign(category);
    rec.begin_us = begin_us;
    rec.end_us = std::max(begin_us, end_us);
    rec.tid = tid;
    rec.depth = depth;
    const std::lock_guard<std::mutex> lock(mutex_);
    spans_.push_back(std::move(rec));
}

void
TraceSession::addCounter(std::string_view name, double delta)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    counters_[std::string(name)] += delta;
}

void
TraceSession::setGauge(std::string_view name, double value)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    GaugeRecord &g = gauges_[std::string(name)];
    g.last = value;
    g.max = std::max(g.max, value);
}

std::vector<SpanRecord>
TraceSession::spans() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
}

std::map<std::string, double>
TraceSession::counters() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

std::map<std::string, GaugeRecord>
TraceSession::gauges() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return gauges_;
}

double
TraceSession::counter(std::string_view name) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = counters_.find(std::string(name));
    return it != counters_.end() ? it->second : 0.0;
}

std::string
TraceSession::chromeTraceJson() const
{
    const std::vector<SpanRecord> all = spans();

    // One B and one E event per span, globally sorted by timestamp so
    // viewers see properly nested stacks. Tie-breaks keep same-timestamp
    // pairs well-formed: ends before begins, deeper ends first, shallower
    // begins first.
    struct Event
    {
        std::uint64_t ts;
        bool is_end;
        std::uint32_t depth;
        const SpanRecord *span;
    };
    std::vector<Event> events;
    events.reserve(all.size() * 2);
    for (const SpanRecord &rec : all) {
        events.push_back({rec.begin_us, false, rec.depth, &rec});
        events.push_back({rec.end_us, true, rec.depth, &rec});
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const Event &a, const Event &b) {
                         if (a.ts != b.ts)
                             return a.ts < b.ts;
                         if (a.is_end != b.is_end)
                             return a.is_end; // E before B
                         if (a.is_end)
                             return a.depth > b.depth; // deeper E first
                         return a.depth < b.depth;     // shallower B first
                     });

    std::string out = "{\n  \"displayTimeUnit\": \"ms\",\n"
                      "  \"traceEvents\": [\n";
    char buf[64];
    for (std::size_t i = 0; i < events.size(); ++i) {
        const Event &e = events[i];
        out += "    {\"name\": \"" + jsonEscape(e.span->name) +
               "\", \"cat\": \"" + jsonEscape(e.span->category) + "\"";
        out += ", \"ph\": \"";
        out += e.is_end ? 'E' : 'B';
        out += "\", \"pid\": 1, \"tid\": ";
        std::snprintf(buf, sizeof(buf), "%" PRIu32 ", \"ts\": %" PRIu64,
                      e.span->tid, e.ts);
        out += buf;
        out += "}";
        if (i + 1 < events.size())
            out += ",";
        out += "\n";
    }
    out += "  ]\n}\n";
    return out;
}

std::string
TraceSession::metricsJson() const
{
    const std::uint64_t wall_us = nowMicros();
    const std::vector<SpanRecord> all = spans();
    const auto counter_snapshot = counters();
    const auto gauge_snapshot = gauges();

    // Aggregate spans by name, and pool-category spans by thread: the
    // thread pool tags every executed task with a "pool" span, so busy
    // time per worker falls out of the records without extra bookkeeping.
    struct SpanAgg
    {
        std::uint64_t count = 0;
        std::uint64_t total_us = 0;
    };
    std::map<std::string, SpanAgg> by_name;
    struct WorkerAgg
    {
        std::uint64_t tasks = 0;
        std::uint64_t busy_us = 0;
    };
    std::map<std::uint32_t, WorkerAgg> pool_workers;
    for (const SpanRecord &rec : all) {
        SpanAgg &agg = by_name[rec.name];
        ++agg.count;
        agg.total_us += rec.end_us - rec.begin_us;
        if (rec.category == "pool") {
            WorkerAgg &w = pool_workers[rec.tid];
            ++w.tasks;
            w.busy_us += rec.end_us - rec.begin_us;
        }
    }

    char buf[96];
    std::string out = "{\n";
    std::snprintf(buf, sizeof(buf), "  \"wall_us\": %" PRIu64 ",\n",
                  wall_us);
    out += buf;

    out += "  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : counter_snapshot) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + jsonEscape(name) + "\": " + formatDouble(value);
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"gauges\": {";
    first = true;
    for (const auto &[name, g] : gauge_snapshot) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + jsonEscape(name) + "\": {\"last\": " +
               formatDouble(g.last) + ", \"max\": " + formatDouble(g.max) +
               "}";
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"spans\": {";
    first = true;
    for (const auto &[name, agg] : by_name) {
        out += first ? "\n" : ",\n";
        first = false;
        std::snprintf(buf, sizeof(buf),
                      "{\"count\": %" PRIu64 ", \"total_us\": %" PRIu64 "}",
                      agg.count, agg.total_us);
        out += "    \"" + jsonEscape(name) + "\": " + buf;
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"pool\": {\n    \"workers\": [";
    first = true;
    for (const auto &[tid, w] : pool_workers) {
        out += first ? "\n" : ",\n";
        first = false;
        const double utilization = wall_us > 0
            ? static_cast<double>(w.busy_us) / static_cast<double>(wall_us)
            : 0.0;
        std::snprintf(buf, sizeof(buf),
                      "      {\"tid\": %" PRIu32 ", \"tasks\": %" PRIu64
                      ", \"busy_us\": %" PRIu64 ", \"utilization\": %.6f}",
                      tid, w.tasks, w.busy_us, utilization);
        out += buf;
    }
    out += first ? "]\n  }\n" : "\n    ]\n  }\n";
    out += "}\n";
    return out;
}

void
TraceSession::writeChromeTrace(const std::string &path) const
{
    writeTextFile(path, chromeTraceJson(), "writeChromeTrace");
}

void
TraceSession::writeMetrics(const std::string &path) const
{
    writeTextFile(path, metricsJson(), "writeMetrics");
}

void
TraceSession::clearRecords()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    spans_.clear();
    spans_.shrink_to_fit();
    counters_.clear();
    gauges_.clear();
}

void
Span::begin()
{
    depth_ = t_span_depth++;
    begin_us_ = session_->nowMicros();
}

void
Span::end()
{
    --t_span_depth;
    session_->recordSpan(name_, category_, begin_us_, session_->nowMicros(),
                         currentThreadId(), depth_);
}

TraceScope::TraceScope(const std::string &trace_path)
{
    if (trace_path.empty())
        return;
    path_ = trace_path;
    previous_ = TraceSession::active();
    session_ = TraceSession::create();
    session_->activate();
}

TraceScope::~TraceScope()
{
    if (!session_)
        return;
    // Stop tracing first so stragglers stop recording, then export.
    detail::g_active.store(previous_, std::memory_order_release);
    try {
        session_->writeChromeTrace(path_);
        session_->writeMetrics(metricsPathFor(path_));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "TraceScope: export failed: %s\n", e.what());
    }
    session_->clearRecords();
}

std::string
TraceScope::metricsPathFor(const std::string &trace_path)
{
    const std::string suffix = ".json";
    if (trace_path.size() > suffix.size() &&
        trace_path.compare(trace_path.size() - suffix.size(), suffix.size(),
                           suffix) == 0) {
        return trace_path.substr(0, trace_path.size() - suffix.size()) +
               ".metrics.json";
    }
    return trace_path + ".metrics.json";
}

} // namespace mica::obs
