#include "model/model_view.hh"

#include <bit>
#include <cstdint>
#include <fstream>
#include <utility>

#include "model/format.hh"
#include "obs/trace.hh"

#if __has_include(<sys/mman.h>)
#define MICAPHASE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace mica::model {

/** RAII ownership of one read-only mapping. */
struct PhaseModelView::Mapping
{
#ifdef MICAPHASE_HAVE_MMAP
    void *addr = nullptr;
    std::size_t size = 0;

    Mapping() = default;
    Mapping(const Mapping &) = delete;
    Mapping &operator=(const Mapping &) = delete;

    ~Mapping()
    {
        if (addr != nullptr)
            ::munmap(addr, size);
    }
#endif
};

PhaseModelView
PhaseModelView::open(const std::string &path)
{
    const obs::Span span("model.view_open", "model");
    PhaseModelView view;
    std::size_t file_bytes = 0;
#ifdef MICAPHASE_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        throw ModelError("PhaseModelView::open: cannot open " + path);
    struct ::stat st = {};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        throw ModelError("PhaseModelView::open: cannot stat " + path);
    }
    file_bytes = static_cast<std::size_t>(st.st_size);
    const std::uint8_t *data = nullptr;
    if (file_bytes > 0) {
        void *addr =
            ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
        ::close(fd);
        if (addr == MAP_FAILED)
            throw ModelError("PhaseModelView::open: mmap failed: " + path);
        auto mapping = std::make_shared<Mapping>();
        mapping->addr = addr;
        mapping->size = file_bytes;
        view.mapping_ = std::move(mapping);
        data = static_cast<const std::uint8_t *>(addr);
    } else {
        ::close(fd);
    }
    view.build(data, file_bytes, "PhaseModelView::open: " + path);
#else
    // No mmap on this platform: read the image and serve from memory.
    // Same validation, same aliasing rules, just not shared with the page
    // cache.
    {
        std::ifstream in(path, std::ios::binary | std::ios::ate);
        if (!in)
            throw ModelError("PhaseModelView::open: cannot open " + path);
        const std::streamsize size = in.tellg();
        in.seekg(0);
        view.owned_bytes_.resize(static_cast<std::size_t>(size));
        if (size > 0)
            in.read(reinterpret_cast<char *>(view.owned_bytes_.data()),
                    size);
        if (!in)
            throw ModelError("PhaseModelView::open: read failed: " + path);
    }
    file_bytes = view.owned_bytes_.size();
    view.build(view.owned_bytes_.data(), file_bytes,
               "PhaseModelView::open: " + path);
#endif
    obs::count("model.view_bytes", static_cast<double>(file_bytes));
    if (view.zero_copy_)
        obs::count("model.view_zero_copy");
    return view;
}

PhaseModelView
PhaseModelView::parse(std::vector<std::uint8_t> bytes,
                      const std::string &source)
{
    PhaseModelView view;
    view.owned_bytes_ = std::move(bytes);
    view.build(view.owned_bytes_.data(), view.owned_bytes_.size(),
               "PhaseModelView: " + source);
    return view;
}

void
PhaseModelView::build(const std::uint8_t *data, std::size_t size,
                      const std::string &source)
{
    const std::vector<format::SectionEntry> table =
        format::readAndCheckTable(data, size, source);

    bool all_aliased = true;
    auto adopt = [this, &all_aliased](format::MatrixField field,
                                      format::ByteReader &r) {
        stats::MatrixView *view_slot = nullptr;
        stats::Matrix *copy_slot = nullptr;
        switch (field) {
          case format::MatrixField::Loadings:
            view_slot = &loadings_;
            copy_slot = &loadings_copy_;
            break;
          case format::MatrixField::Centers:
            view_slot = &centers_;
            copy_slot = &centers_copy_;
            break;
          case format::MatrixField::ProminentRaw:
            view_slot = &prominent_raw_;
            copy_slot = &prominent_copy_;
            break;
        }
        const format::MatrixRegion region = r.matrixRegion();
        if (region.rows == 0 || region.cols == 0) {
            // Nothing to read: an empty view is trivially "aliased".
            *view_slot = stats::MatrixView(nullptr, region.rows,
                                           region.cols);
            return;
        }
        // The payload is rows*cols little-endian IEEE-754 doubles. On a
        // little-endian host with an 8-byte-aligned pointer the in-file
        // representation *is* the in-memory representation, so the view
        // can point straight into the file. Anything else (big-endian
        // host, packed/unaligned section) decodes an owned copy — same
        // bits, one copy slower.
        const bool can_alias =
            std::endian::native == std::endian::little &&
            reinterpret_cast<std::uintptr_t>(region.payload) %
                    alignof(double) ==
                0;
        if (can_alias) {
            *view_slot = stats::MatrixView(
                reinterpret_cast<const double *>(region.payload),
                region.rows, region.cols);
        } else {
            *copy_slot = format::materializeMatrix(region);
            *view_slot = copy_slot->view();
            all_aliased = false;
        }
    };
    format::parseModel(meta_, data, table, source, adopt);
    zero_copy_ = all_aliased;

    try {
        validateModelShapes(meta_, loadings_, centers_, prominent_raw_);
    } catch (const ModelError &e) {
        throw ModelError(source + ": " + e.what());
    }
}

stats::ProjectionSpec
PhaseModelView::projectionSpec() const
{
    stats::ProjectionSpec spec;
    spec.normalize_input = meta_.normalize_input;
    spec.mean = meta_.norm_mean;
    spec.stddev = meta_.norm_stddev;
    spec.loadings = loadings_;
    spec.rescale_sd = meta_.rescale_sd;
    spec.centers = centers_;
    return spec;
}

Projection
PhaseModelView::placeBatch(const stats::Matrix &rows,
                           const stats::ProjectOptions &opts) const
{
    const obs::Span span("model.place_batch", "model");
    const obs::GaugeTimer timer("model.batch_seconds");
    if (rows.cols() != columns())
        throw ModelError(
            "PhaseModelView::placeBatch: input has " +
            std::to_string(rows.cols()) + " columns, model expects " +
            std::to_string(columns()));

    stats::ProjectedRows projected =
        stats::projectRows(projectionSpec(), rows.view(), opts);
    Projection out;
    out.reduced = std::move(projected.reduced);
    out.assignment = std::move(projected.assignment);
    out.dist2 = std::move(projected.dist2);
    obs::count("model.rows_projected", static_cast<double>(rows.rows()));
    return out;
}

} // namespace mica::model
