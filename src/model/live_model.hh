/**
 * @file
 * Generation-tagged hot-swap holder for a served phase model.
 *
 * A serving loop wants to replace its model without dropping or mixing
 * in-flight work: `LiveModel` keeps the current `ModelReader` behind a
 * shared_ptr and swaps it atomically under a mutex, tagging every
 * published reader with a monotonically increasing generation number.
 * Readers take a `Snapshot` (generation + shared_ptr) once per batch and
 * keep using it for that whole batch — the old reader stays alive for as
 * long as any snapshot references it, so a swap never invalidates work
 * already in flight, and every reply can be attributed to the exact
 * generation that produced it.
 *
 * The swap itself is O(1) (pointer + counter under a short critical
 * section); the expensive part — opening and validating the new file —
 * happens outside the lock in load(). Concurrency contract: any number of
 * threads may call current() while one (or several) call load()/publish();
 * the soak test hammers exactly this under TSan.
 */

#ifndef MICAPHASE_MODEL_LIVE_MODEL_HH
#define MICAPHASE_MODEL_LIVE_MODEL_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "ann/center_index.hh"
#include "model/reader.hh"

namespace mica::model {

/** Hot-swappable model slot (see file comment). */
class LiveModel
{
  public:
    /**
     * One coherent (generation, reader, index) triple taken at a point
     * in time. `index` is non-null only after enableAnn(): it is built
     * over exactly this reader's frozen centers before the publish and
     * carries the same generation tag, so a consumer can assert it
     * never pairs a model with a stale index
     * (`snapshot.index->generation() == snapshot.generation`).
     */
    struct Snapshot
    {
        std::uint64_t generation = 0; ///< 0 = nothing published yet
        std::shared_ptr<const ModelReader> reader;
        std::shared_ptr<const ann::CenterIndex> index;

        explicit operator bool() const { return reader != nullptr; }
    };

    /**
     * Open `path` (outside the lock) and publish the result. Returns the
     * new generation. Throws ModelError on any load failure — the
     * previously published generation stays current, so a bad reload
     * never takes a serving loop down.
     */
    std::uint64_t load(const std::string &path,
                       const OpenOptions &opts = {});

    /** Publish an already-built reader; returns its generation. */
    std::uint64_t publish(std::shared_ptr<const ModelReader> reader);

    /**
     * Opt in to approximate placement: every *subsequent* publish (or
     * load) builds an `ann::CenterIndex` with these options over the
     * new reader's centers — outside the lock, like the open itself —
     * and swaps it into the snapshot atomically with the generation.
     * Does not retrofit an index onto an already-published snapshot;
     * callers enable ANN before the first load. Off by default: without
     * this call `Snapshot::index` stays null and serving is exact.
     */
    void enableAnn(const ann::BuildOptions &opts);

    /** The current (generation, reader) pair; {0, nullptr} before any
     *  publish. */
    [[nodiscard]] Snapshot current() const;

    /** Generation of the most recent publish (0 = none yet). */
    [[nodiscard]] std::uint64_t generation() const;

  private:
    mutable std::mutex mutex_;
    Snapshot snapshot_;
    bool ann_enabled_ = false;
    ann::BuildOptions ann_options_;
};

} // namespace mica::model

#endif // MICAPHASE_MODEL_LIVE_MODEL_HH
