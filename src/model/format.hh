/**
 * @file
 * On-disk format internals of the frozen phase-model store, shared by the
 * copying loader (PhaseModel::load / loadFromBytes) and the zero-copy view
 * (PhaseModelView). Internal header: include only from src/model sources
 * and white-box tests; docs/MODEL.md documents the byte layout.
 *
 * The split keeps a single source of truth for every structural rule —
 * magic, version gate, section table shape, per-section CRC, bounds,
 * duplicate/missing/overlap rejection, and the field order of each
 * section — so the two loaders cannot drift apart: both call
 * `readAndCheckTable` and then `parseModel` and differ only in the one
 * callback that decides what to do with a matrix payload (materialize an
 * owned copy vs alias the bytes in place).
 */

#ifndef MICAPHASE_MODEL_FORMAT_HH
#define MICAPHASE_MODEL_FORMAT_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "model/phase_model.hh"
#include "stats/matrix.hh"

namespace mica::model::format {

inline constexpr std::array<char, 8> kMagic = {'M', 'I', 'C', 'A',
                                               'P', 'H', 'M', 'D'};

/** Section ids. Append only; never renumber (they are on disk). */
enum SectionId : std::uint32_t
{
    kSecMeta = 1,
    kSecCatalog = 2,
    kSecNorm = 3,
    kSecPca = 4,
    kSecClusters = 5,
    kSecProminent = 6,
    kSecGa = 7,
    /**
     * One incremental-update record (ModelDelta). Unlike ids 1-7 it is
     * optional and may repeat (one section per delta, file order =
     * history order); a file carrying any kSecDelta section is stamped
     * format version 2 so pre-delta readers fail loudly.
     */
    kSecDelta = 8,
};

inline constexpr std::array<std::uint32_t, 7> kRequiredSections = {
    kSecMeta, kSecCatalog, kSecNorm, kSecPca,
    kSecClusters, kSecProminent, kSecGa};

inline constexpr std::size_t kHeaderSize = 8 + 4 + 4; ///< magic+version+count
inline constexpr std::size_t kTableEntrySize = 4 + 4 + 8 + 8 + 4 + 4;

/**
 * The one 8-byte padding rule of the format: SaveOptions{align_sections}
 * and every appended delta section round payload offsets up with this
 * helper, so the aligned layout cannot drift between the initial save and
 * later delta appends.
 */
[[nodiscard]] inline constexpr std::uint64_t
alignUp(std::uint64_t offset)
{
    return (offset + 7) & ~std::uint64_t{7};
}

/** CRC32 (poly 0xEDB88320, the zlib polynomial) over a byte range. */
inline std::uint32_t
crc32(const std::uint8_t *data, std::size_t size)
{
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

/** Decode one little-endian IEEE-754 double from 8 raw bytes. */
inline double
decodeF64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return std::bit_cast<double>(v);
}

/**
 * Little-endian append-only serializer. Explicit byte shuffling (instead
 * of memcpy of host integers) pins the on-disk layout on any endianness.
 */
class ByteWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    f64(double v)
    {
        u64(std::bit_cast<std::uint64_t>(v));
    }

    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    void
    strVec(const std::vector<std::string> &v)
    {
        u64(v.size());
        for (const auto &s : v)
            str(s);
    }

    void
    f64Vec(const std::vector<double> &v)
    {
        u64(v.size());
        for (double x : v)
            f64(x);
    }

    void
    u64Vec(const std::vector<std::uint64_t> &v)
    {
        u64(v.size());
        for (std::uint64_t x : v)
            u64(x);
    }

    void
    matrix(const stats::Matrix &m)
    {
        u64(m.rows());
        u64(m.cols());
        for (std::size_t r = 0; r < m.rows(); ++r)
            for (double x : m.row(r))
                f64(x);
    }

    [[nodiscard]] const std::vector<std::uint8_t> &bytes() const
    {
        return buf_;
    }

    [[nodiscard]] std::size_t size() const { return buf_.size(); }

  private:
    std::vector<std::uint8_t> buf_;
};

/**
 * Dimensions + raw payload of one serialized matrix, still inside its
 * section's bytes. The payload holds rows*cols little-endian f64 values;
 * the bounds were verified by ByteReader::matrixRegion, so a consumer may
 * either materialize an owned copy or alias the bytes in place (when the
 * pointer is suitably aligned and the host is little-endian).
 */
struct MatrixRegion
{
    std::size_t rows = 0;
    std::size_t cols = 0;
    const std::uint8_t *payload = nullptr;
};

/** Owned decode of a matrix region (works on any endianness/alignment). */
inline stats::Matrix
materializeMatrix(const MatrixRegion &region)
{
    stats::Matrix m(region.rows, region.cols);
    const std::uint8_t *p = region.payload;
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (double &x : m.row(r)) {
            x = decodeF64(p);
            p += 8;
        }
    return m;
}

/** Bounds-checked little-endian reader over one section's bytes. */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t size,
               std::string_view section)
        : data_(data), size_(size), section_(section)
    {
    }

    [[nodiscard]] std::uint8_t
    u8()
    {
        need(1);
        return data_[pos_++];
    }

    [[nodiscard]] std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 4;
        return v;
    }

    [[nodiscard]] std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 8;
        return v;
    }

    [[nodiscard]] double
    f64()
    {
        return std::bit_cast<double>(u64());
    }

    [[nodiscard]] std::string
    str()
    {
        const std::uint32_t len = u32();
        need(len);
        std::string s(reinterpret_cast<const char *>(data_ + pos_), len);
        pos_ += len;
        return s;
    }

    [[nodiscard]] std::vector<std::string>
    strVec()
    {
        std::vector<std::string> v(checkedCount(4));
        for (auto &s : v)
            s = str();
        return v;
    }

    [[nodiscard]] std::vector<double>
    f64Vec()
    {
        std::vector<double> v(checkedCount(8));
        for (auto &x : v)
            x = f64();
        return v;
    }

    [[nodiscard]] std::vector<std::uint64_t>
    u64Vec()
    {
        std::vector<std::uint64_t> v(checkedCount(8));
        for (auto &x : v)
            x = u64();
        return v;
    }

    /**
     * Read a matrix header and pre-validated payload span, without
     * decoding the values. The zero-copy loader aliases the payload;
     * matrix() materializes it.
     */
    [[nodiscard]] MatrixRegion
    matrixRegion()
    {
        const std::uint64_t rows = u64();
        const std::uint64_t cols = u64();
        // Two-step overflow-safe guard: bounding cols by remaining()/8 first
        // keeps 8*cols from wrapping, and the rows bound then guarantees
        // rows*cols fits both the section and std::size_t.
        if (cols > remaining() / 8)
            fail("matrix larger than its section");
        if (cols != 0 && rows > remaining() / (8 * cols))
            fail("matrix larger than its section");
        MatrixRegion region;
        region.rows = static_cast<std::size_t>(rows);
        region.cols = static_cast<std::size_t>(cols);
        region.payload = data_ + pos_;
        pos_ += region.rows * region.cols * 8;
        return region;
    }

    [[nodiscard]] stats::Matrix
    matrix()
    {
        return materializeMatrix(matrixRegion());
    }

    /** Every section must be consumed exactly — trailing bytes = junk. */
    void
    finish() const
    {
        if (pos_ != size_)
            fail("trailing bytes");
    }

    /**
     * Read an element count and pre-check it fits the section, given a
     * lower bound on the serialized element size. Every count MUST go
     * through this before sizing any container: a corrupted count with a
     * re-fixed CRC must raise ModelError, not attempt a giant allocation
     * (found by the structured fuzzer).
     */
    [[nodiscard]] std::size_t
    checkedCount(std::size_t min_elem_size)
    {
        const std::uint64_t n = u64();
        if (n > remaining() / min_elem_size)
            fail("count larger than its section");
        return static_cast<std::size_t>(n);
    }

  private:
    [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

    void
    need(std::size_t n) const
    {
        if (n > remaining())
            fail("truncated");
    }

    [[noreturn]] void
    fail(std::string_view what) const
    {
        throw ModelError("PhaseModel: corrupt " + std::string(section_) +
                         " section (" + std::string(what) + ")");
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    std::string_view section_;
};

/** One decoded section-table entry. */
struct SectionEntry
{
    std::uint32_t id = 0;
    std::uint64_t offset = 0;
    std::uint64_t size = 0;
    std::uint32_t crc = 0;
};

/**
 * Locate a required section, rejecting duplicates and absences. `source`
 * is the error prefix (loader name + file path).
 */
inline const SectionEntry &
findSection(const std::vector<SectionEntry> &table, std::uint32_t id,
            const std::string &source)
{
    const SectionEntry *found = nullptr;
    for (const SectionEntry &e : table) {
        if (e.id != id)
            continue;
        if (found != nullptr)
            throw ModelError(source + ": duplicate section " +
                             std::to_string(id));
        found = &e;
    }
    if (found == nullptr)
        throw ModelError(source + ": missing section " + std::to_string(id));
    return *found;
}

/**
 * Serialize one ModelDelta as a kSecDelta payload. Shared with readDelta
 * below — the two functions are the single source of truth for the delta
 * field order, so the writer and both loaders cannot drift apart.
 */
inline void
writeDelta(ByteWriter &w, const ModelDelta &d)
{
    w.u32(d.sequence);
    w.u64(d.base_analysis_key);
    w.u64(d.ingested_rows);
    w.u64(d.accepted_rows);
    w.u64(d.deduped_rows);
    w.f64(d.dedup_threshold);
    w.u64Vec(d.assign_counts);
    w.f64Vec(d.mean_distance);
    w.f64Vec(d.max_distance);
    w.f64(d.total_variation);
    w.f64(d.global_mean_distance);
    w.f64(d.global_max_distance);
    w.u8(d.refined ? 1 : 0);
    w.matrix(d.refined_centers);
    w.f64Vec(d.center_drift);
    w.f64(d.max_center_drift);
    w.f64(d.drift_threshold);
    w.u8(d.retrain_recommended ? 1 : 0);
}

/** Parse one kSecDelta payload (the exact inverse of writeDelta). */
[[nodiscard]] inline ModelDelta
readDelta(ByteReader &r)
{
    ModelDelta d;
    d.sequence = r.u32();
    d.base_analysis_key = r.u64();
    d.ingested_rows = r.u64();
    d.accepted_rows = r.u64();
    d.deduped_rows = r.u64();
    d.dedup_threshold = r.f64();
    d.assign_counts = r.u64Vec();
    d.mean_distance = r.f64Vec();
    d.max_distance = r.f64Vec();
    d.total_variation = r.f64();
    d.global_mean_distance = r.f64();
    d.global_max_distance = r.f64();
    d.refined = r.u8() != 0;
    d.refined_centers = r.matrix();
    d.center_drift = r.f64Vec();
    d.max_center_drift = r.f64();
    d.drift_threshold = r.f64();
    d.retrain_recommended = r.u8() != 0;
    return d;
}

/**
 * Validate everything structural about a model file before any payload is
 * parsed: magic, version gate, section-table bounds, and — for every
 * required section — presence, uniqueness, in-file bounds, CRC32, and
 * mutual non-overlap (sections may not alias each other, the header, or
 * the section table; unknown section ids are ignored for forward
 * compatibility). Delta sections (kSecDelta), though optional and
 * repeatable, get the same bounds/CRC/overlap treatment, since they will
 * be parsed. Returns the decoded table. Throws ModelError prefixed with
 * `source` on any violation.
 */
inline std::vector<SectionEntry>
readAndCheckTable(const std::uint8_t *data, std::size_t size,
                  const std::string &source)
{
    if (size < kHeaderSize)
        throw ModelError(source + ": truncated header");
    if (std::memcmp(data, kMagic.data(), kMagic.size()) != 0)
        throw ModelError(source + ": bad magic (not a phase-model file)");
    ByteReader header(data + kMagic.size(), size - kMagic.size(), "header");
    const std::uint32_t version = header.u32();
    if (version == 0 || version > kFormatVersion)
        throw ModelError(
            source + ": format version " + std::to_string(version) +
            " unsupported (this build reads <= " +
            std::to_string(kFormatVersion) + ")");
    const std::uint32_t section_count = header.u32();
    const std::size_t table_bytes =
        static_cast<std::size_t>(section_count) * kTableEntrySize;
    if (size < kHeaderSize || size - kHeaderSize < table_bytes)
        throw ModelError(source + ": truncated section table");

    std::vector<SectionEntry> table(section_count);
    {
        ByteReader tr(data + kHeaderSize, table_bytes, "section table");
        for (SectionEntry &e : table) {
            e.id = tr.u32();
            (void)tr.u32();
            e.offset = tr.u64();
            e.size = tr.u64();
            e.crc = tr.u32();
            (void)tr.u32();
        }
    }

    // Verify bounds + checksums of every required section before parsing
    // any, collecting the occupied ranges along the way.
    struct Range
    {
        std::uint64_t begin;
        std::uint64_t end;
        std::uint32_t id;
    };
    std::vector<Range> ranges;
    const std::uint64_t table_end = kHeaderSize + table_bytes;
    auto checkSection = [&](const SectionEntry &e) {
        if (e.offset > size || e.size > size - e.offset)
            throw ModelError(source + ": section " + std::to_string(e.id) +
                             " out of bounds");
        if (crc32(data + e.offset, static_cast<std::size_t>(e.size)) !=
            e.crc)
            throw ModelError(source + ": section " + std::to_string(e.id) +
                             " checksum mismatch");
        if (e.size == 0)
            return;
        if (e.offset < table_end)
            throw ModelError(source + ": section " + std::to_string(e.id) +
                             " overlaps the header or section table");
        ranges.push_back({e.offset, e.offset + e.size, e.id});
    };
    for (std::uint32_t id : kRequiredSections)
        checkSection(findSection(table, id, source));
    // Delta sections are optional and may repeat, but every one present
    // will be parsed, so each gets the identical bounds/CRC/overlap
    // treatment (unknown ids other than kSecDelta stay ignored).
    for (const SectionEntry &e : table)
        if (e.id == kSecDelta)
            checkSection(e);

    // Overlap rejection: two sections sharing bytes would let one payload
    // silently rewrite another's meaning (both CRCs can still verify), so
    // a well-formed file keeps every required section disjoint.
    std::sort(ranges.begin(), ranges.end(),
              [](const Range &a, const Range &b) {
                  return a.begin < b.begin;
              });
    for (std::size_t i = 1; i < ranges.size(); ++i)
        if (ranges[i].begin < ranges[i - 1].end)
            throw ModelError(source + ": section " +
                             std::to_string(ranges[i].id) +
                             " overlaps section " +
                             std::to_string(ranges[i - 1].id));
    return table;
}

/** Which PhaseModel matrix a parse callback is being handed. */
enum class MatrixField
{
    Loadings,
    Centers,
    ProminentRaw,
};

/**
 * Parse every section payload into `model`, in the canonical section
 * order, leaving the three matrix fields to `onMatrix(field, reader)` —
 * the callback must consume exactly one serialized matrix from the reader
 * (via matrix() or matrixRegion()) and store it wherever the caller keeps
 * matrices. All bounds/CRC checks must already have passed
 * (readAndCheckTable). `base` is the start of the whole file image.
 */
template <typename MatrixFn>
inline void
parseModel(PhaseModel &model, const std::uint8_t *base,
           const std::vector<SectionEntry> &table, const std::string &source,
           MatrixFn &&onMatrix)
{
    auto reader = [&](std::uint32_t id, std::string_view name) {
        const SectionEntry &e = findSection(table, id, source);
        return ByteReader(base + e.offset, static_cast<std::size_t>(e.size),
                          name);
    };

    {
        ByteReader r = reader(kSecMeta, "META");
        model.analysis_key = r.u64();
        model.interval_instructions = r.u64();
        model.samples_per_benchmark = r.u32();
        model.interval_scale = r.f64();
        model.pca_min_stddev = r.f64();
        model.seed = r.u64();
        model.training_rows = r.u64();
        r.finish();
    }
    {
        ByteReader r = reader(kSecCatalog, "CATALOG");
        model.benchmark_ids = r.strVec();
        model.benchmark_suites = r.strVec();
        model.suites = r.strVec();
        r.finish();
    }
    {
        ByteReader r = reader(kSecNorm, "NORM");
        model.normalize_input = r.u8() != 0;
        model.norm_mean = r.f64Vec();
        model.norm_stddev = r.f64Vec();
        r.finish();
    }
    {
        ByteReader r = reader(kSecPca, "PCA");
        model.pca_explained = r.f64();
        model.eigenvalues = r.f64Vec();
        onMatrix(MatrixField::Loadings, r);
        model.rescale_sd = r.f64Vec();
        r.finish();
    }
    {
        ByteReader r = reader(kSecClusters, "CLUSTERS");
        onMatrix(MatrixField::Centers, r);
        model.cluster_sizes = r.u64Vec();
        const std::size_t kinds = r.checkedCount(1);
        model.cluster_kinds.reserve(kinds);
        for (std::size_t i = 0; i < kinds; ++i)
            model.cluster_kinds.push_back(static_cast<ClusterKind>(r.u8()));
        const std::uint64_t num_suites = r.u64();
        if (num_suites != model.suites.size())
            throw ModelError(source +
                             ": CLUSTERS/CATALOG suite count mismatch");
        model.suite_rows = r.u64Vec();
        r.finish();
    }
    {
        ByteReader r = reader(kSecProminent, "PROMINENT");
        // Each ProminentPhase serializes to 4 + 8 + 8 bytes.
        const std::size_t count = r.checkedCount(20);
        model.prominent.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            ProminentPhase ph;
            ph.cluster = r.u32();
            ph.weight = r.f64();
            ph.representative_row = r.u64();
            model.prominent.push_back(ph);
        }
        onMatrix(MatrixField::ProminentRaw, r);
        r.finish();
    }
    {
        ByteReader r = reader(kSecGa, "GA");
        const std::size_t count = r.checkedCount(4);
        model.key_characteristics.reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            model.key_characteristics.push_back(r.u32());
        model.ga_fitness = r.f64();
        r.finish();
    }
    // Delta sections, in table order (= history order for files this
    // library wrote). Both loaders run this identical decode, so a
    // malformed delta is rejected the same way on every path; sequence
    // monotonicity and shape coherence are enforced by validate().
    for (const SectionEntry &e : table) {
        if (e.id != kSecDelta)
            continue;
        ByteReader r(base + e.offset, static_cast<std::size_t>(e.size),
                     "DELTA");
        model.deltas.push_back(readDelta(r));
        r.finish();
    }
}

} // namespace mica::model::format

#endif // MICAPHASE_MODEL_FORMAT_HH
