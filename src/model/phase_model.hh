/**
 * @file
 * Frozen phase-model store: everything needed to reproduce the rescaled-PCA
 * space and cluster assignments of a finished experiment, serialized to a
 * single versioned, checksummed binary file — plus the incremental query
 * API that places *unseen* workloads into the frozen space without
 * re-running PCA or k-means (the paper's §5 "where does a new benchmark
 * fall?" question, answered from an artifact instead of a full pipeline).
 *
 * Determinism contract: `projectBenchmark` replays the exact training-time
 * arithmetic — stats::normalizeColumns with the frozen per-column mean/sd,
 * stats::Matrix::multiply against the frozen loadings, the same sd-guarded
 * rescale, and stats::nearestCenter (lowest index wins ties) against the
 * frozen centers — so projecting the training sample through a
 * saved-then-reloaded model is bit-identical to the in-memory
 * analyzePhases reduced matrix and assignments, at any thread count.
 *
 * File format (see docs/MODEL.md): 8-byte magic, u32 format version, a
 * section table with per-section CRC32, little-endian fixed-width fields
 * throughout, doubles as IEEE-754 bit patterns. Writes go to a `.tmp`
 * sibling and rename into place; any truncation, bit flip, wrong magic or
 * future version raises ModelError — a load never yields partial data.
 *
 * This library sits below core on purpose: it depends only on stats + obs,
 * so a query service can link the model + a characterizer without pulling
 * in the experiment pipeline.
 */

#ifndef MICAPHASE_MODEL_PHASE_MODEL_HH
#define MICAPHASE_MODEL_PHASE_MODEL_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "stats/matrix.hh"
#include "stats/projection.hh"

namespace mica::model {

/** Raised on any save/load/validate failure. Loads never return junk. */
class ModelError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Newest serialized format version this build reads. Writers stamp the
 * oldest version that can represent the model: a delta-free model is still
 * written as version 1 (the historical layout, byte-locked by the golden
 * fixture), while a model carrying ModelDelta sections is stamped version
 * 2 so pre-delta readers fail loudly instead of silently dropping the
 * update history.
 */
inline constexpr std::uint32_t kFormatVersion = 2;

/** Version stamped on files that carry no delta sections. */
inline constexpr std::uint32_t kBaseFormatVersion = 1;

/**
 * Cluster composition class, mirroring core::ClusterKind but owned here so
 * the model library does not depend on core. Values are the on-disk
 * encoding — append only.
 */
enum class ClusterKind : std::uint8_t
{
    BenchmarkSpecific = 0, ///< all training members from one benchmark
    SuiteSpecific = 1,     ///< one suite, multiple benchmarks
    Mixed = 2,             ///< multiple suites
};

/** Printable name for a cluster kind. */
[[nodiscard]] std::string_view clusterKindName(ClusterKind kind);

/** One prominent phase (heaviest clusters first in PhaseModel::prominent). */
struct ProminentPhase
{
    std::uint32_t cluster = 0;            ///< cluster id (row in centers)
    double weight = 0.0;                  ///< fraction of training rows
    std::uint64_t representative_row = 0; ///< row in the training sample
};

/** Result of projecting a batch of characterized intervals. */
struct Projection
{
    stats::Matrix reduced; ///< rows in the frozen rescaled PCA space
    std::vector<std::size_t> assignment; ///< nearest frozen cluster per row
    std::vector<double> dist2;           ///< exact d² to the assigned center
};

/**
 * Coverage/uniqueness of a projected workload against the frozen space, in
 * core::SuiteComparison terms (Figures 4-6 of the paper, but for a single
 * new workload placed into an existing model).
 */
struct WorkloadAssessment
{
    std::size_t rows = 0;             ///< projected intervals
    std::size_t clusters_covered = 0; ///< Fig 4: clusters with >= 1 row
    double coverage_fraction = 0.0;   ///< clusters_covered / k
    /**
     * Fig 5 analogue: cumulative fraction of the workload's rows covered
     * by its own heaviest 1..k clusters (sorted by this workload's share).
     */
    std::vector<double> cumulative;
    /**
     * Per training suite (parallel to PhaseModel::suites): fraction of the
     * workload's rows landing in clusters whose *training* members all
     * belong to that one suite — "this workload mostly behaves like X".
     */
    std::vector<double> exclusive_fraction;
    /** Fraction of rows in clusters shared by several training suites. */
    double shared_fraction = 0.0;
    /** Fraction of rows in clusters no training row ever populated. */
    double novel_fraction = 0.0;
    double mean_distance = 0.0; ///< mean Euclidean d to assigned centers
    double max_distance = 0.0;  ///< worst-placed interval

    /** Clusters needed to reach the given cumulative coverage. */
    [[nodiscard]] std::size_t clustersToCover(double fraction) const;
};

/** Training-set Figure 4/6 numbers recomputed from the model alone. */
struct TrainingCoverage
{
    std::vector<std::string> suites;   ///< same order as PhaseModel::suites
    std::vector<std::size_t> coverage; ///< Fig 4 per suite
    std::vector<double> uniqueness;    ///< Fig 6 per suite
};

/**
 * One incremental-update record: the outcome of ingesting a batch of new
 * intervals through the frozen space (see src/model/update.hh). Serialized
 * as its own section kind (format::kSecDelta, one section per delta);
 * a model carrying deltas is written as format version 2, which pre-delta
 * readers reject loudly per the versioning policy.
 *
 * Assignment counts and the distance gauges cover every *offered* row —
 * redundancy filtering only decides which rows feed the optional center
 * refinement, never which rows are observed.
 */
struct ModelDelta
{
    std::uint32_t sequence = 0; ///< strictly increasing within one file
    /** analysisKey() of the base model this delta was ingested against. */
    std::uint64_t base_analysis_key = 0;

    // --- ingest accounting (ingested == accepted + deduped).
    std::uint64_t ingested_rows = 0; ///< rows offered to ingest
    std::uint64_t accepted_rows = 0; ///< rows surviving redundancy filtering
    std::uint64_t deduped_rows = 0;  ///< rows dropped as redundant
    /** Euclidean dedup radius around the assigned center (<= 0: off). */
    double dedup_threshold = 0.0;

    // --- drift gauges over all offered rows, frozen placement.
    std::vector<std::uint64_t> assign_counts; ///< per frozen cluster
    std::vector<double> mean_distance; ///< per-cluster mean Euclidean d
    std::vector<double> max_distance;  ///< per-cluster max Euclidean d
    /** Total-variation distance between observed and training mixes. */
    double total_variation = 0.0;
    double global_mean_distance = 0.0;
    double global_max_distance = 0.0;

    // --- optional mini-batch refinement outcome (empty when refined is
    //     false; the frozen centers are never touched either way).
    bool refined = false;
    stats::Matrix refined_centers;    ///< k x m when refined, else 0 x 0
    std::vector<double> center_drift; ///< inflated Euclidean movement per
                                      ///< center (Hamerly bound discipline)
    double max_center_drift = 0.0;
    double drift_threshold = 0.0; ///< movement that triggers the signal
    bool retrain_recommended = false; ///< max_center_drift > drift_threshold
};

/** Knobs for PhaseModel::save. */
struct SaveOptions
{
    /**
     * Pad each section's offset to an 8-byte boundary (gap bytes are
     * zero). Still format v1 — readers locate payloads via the section
     * table and never assume packing — but it lets the zero-copy loader
     * alias the large f64 matrices directly in the mapped file instead of
     * copying them. Off by default: the historical packed layout is
     * byte-locked by the golden-fixture test.
     */
    bool align_sections = false;
};

/**
 * The frozen model. Plain aggregate: builders (core::buildPhaseModel, the
 * examples) fill the fields directly; validate() enforces shape coherence
 * and runs on every save and load.
 */
struct PhaseModel
{
    // --- META: provenance + the knobs a querier needs to characterize
    //     compatible input for projectBenchmark.
    std::uint64_t analysis_key = 0; ///< ExperimentConfig::analysisKey()
    std::uint64_t interval_instructions = 0;
    std::uint32_t samples_per_benchmark = 0;
    double interval_scale = 1.0;
    double pca_min_stddev = 1.0;
    std::uint64_t seed = 0;
    std::uint64_t training_rows = 0;

    // --- CATALOG: what the space was trained on.
    std::vector<std::string> benchmark_ids;
    std::vector<std::string> benchmark_suites; ///< parallel to ids
    std::vector<std::string> suites; ///< comparison order (canonical first)

    // --- NORM: per-column z-score statistics of the training sample.
    bool normalize_input = true;
    std::vector<double> norm_mean;
    std::vector<double> norm_stddev;

    // --- PCA: retained basis + rescale factors.
    double pca_explained = 0.0;
    std::vector<double> eigenvalues; ///< all of them, descending
    stats::Matrix loadings;          ///< p x m retained eigenvectors
    std::vector<double> rescale_sd;  ///< training score sd per component

    // --- CLUSTERS: the frozen k-means model.
    stats::Matrix centers; ///< k x m, in rescaled PCA space
    std::vector<std::uint64_t> cluster_sizes;
    std::vector<ClusterKind> cluster_kinds;
    /** Training rows per (cluster, suite), row-major k x suites.size(). */
    std::vector<std::uint64_t> suite_rows;

    // --- PROMINENT: heaviest clusters + their raw representatives.
    std::vector<ProminentPhase> prominent;
    stats::Matrix prominent_raw; ///< num_prominent x p raw characteristics

    // --- GA: key characteristics (empty = selection was not run).
    std::vector<std::uint32_t> key_characteristics;
    double ga_fitness = 0.0;

    // --- DELTA: incremental-update history, oldest first (empty for a
    //     plain frozen model; see ModelDelta and src/model/update.hh).
    std::vector<ModelDelta> deltas;

    /** Input dimensionality p (69 for the full characterization). */
    [[nodiscard]] std::size_t columns() const { return norm_mean.size(); }

    /** Retained PCA components m. */
    [[nodiscard]] std::size_t components() const
    {
        return rescale_sd.size();
    }

    /** Cluster count k. */
    [[nodiscard]] std::size_t numClusters() const { return centers.rows(); }

    /** Fraction of training rows in cluster c. */
    [[nodiscard]] double clusterWeight(std::size_t c) const;

    /** Training rows of suite s inside cluster c. */
    [[nodiscard]] std::uint64_t
    suiteRows(std::size_t c, std::size_t s) const
    {
        return suite_rows[c * suites.size() + s];
    }

    /** Check internal shape coherence; throws ModelError on violation. */
    void validate() const;

    /**
     * Serialize to `path` atomically (`.tmp` sibling + rename; parent
     * directories are created). Emits the `model.save` span and the
     * `model.save_bytes` counter. Throws ModelError on I/O failure.
     */
    void save(const std::string &path) const;

    /** As above, with explicit options (e.g. 8-byte section alignment). */
    void save(const std::string &path, const SaveOptions &opts) const;

    /**
     * Deserialize, verifying magic, version, section bounds, per-section
     * CRC32 and section non-overlap before touching any payload, then
     * validate(). Emits `model.load` / `model.load_bytes`. Throws
     * ModelError with a specific message on any corruption; never returns
     * partial data.
     *
     * Note: new code should reach models through the unified access API —
     * `model::open(path, {OpenMode::Copy})` in model/reader.hh — which
     * wraps this loader behind model::ModelReader. load() stays as the
     * implementation substrate and as a shim for existing callers.
     */
    [[nodiscard]] static PhaseModel load(const std::string &path);

    /**
     * Deserialize from an in-memory file image with the same checks as
     * load(); `source` labels error messages (load() passes the path).
     * This is the entry point the structured fuzzer drives.
     */
    [[nodiscard]] static PhaseModel
    loadFromBytes(std::span<const std::uint8_t> bytes,
                  const std::string &source);

    /**
     * Map freshly characterized p-column rows through the frozen
     * normalize -> PCA -> rescale chain and assign each to its nearest
     * frozen center (stats::nearestCenter, lowest index wins ties).
     * Bit-identical to the training-time analyzePhases arithmetic; emits
     * `model.project` / `model.rows_projected`.
     */
    [[nodiscard]] Projection projectBenchmark(const stats::Matrix &rows)
        const;

    /**
     * Batched placement through the fused stats::projectRows kernel:
     * bit-identical to projectBenchmark (and therefore to the live
     * pipeline) at any thread count and block size, but one pass over the
     * rows tiled across the shared thread pool — the serving hot path.
     * Emits `model.place_batch` / `model.rows_projected` and the
     * `model.batch_seconds` gauge.
     */
    [[nodiscard]] Projection
    placeBatch(const stats::Matrix &rows,
               const stats::ProjectOptions &opts = {}) const;

    /** Frozen projection coefficients as non-owning views. */
    [[nodiscard]] stats::ProjectionSpec projectionSpec() const;

    /** Placement of a single interval's characteristic vector. */
    struct IntervalPlacement
    {
        std::vector<double> reduced; ///< coordinates in the frozen space
        std::size_t cluster = 0;     ///< assigned frozen cluster
        double dist2 = 0.0;          ///< exact d² to it
        double second_dist2 = 0.0;   ///< d² to the runner-up center
    };

    /**
     * Project one p-element characteristic vector. Same arithmetic as a
     * one-row projectBenchmark (asserted by tests).
     */
    [[nodiscard]] IntervalPlacement
    projectInterval(std::span<const double> values) const;

    /** Coverage/uniqueness summary of a projected workload (see above). */
    [[nodiscard]] WorkloadAssessment
    assessWorkload(const Projection &projection) const;

    /** Figure 4/6 training numbers, recomputed from suite_rows alone. */
    [[nodiscard]] TrainingCoverage trainingCoverage() const;
};

/**
 * Shape-coherence check over a model whose matrices may live outside the
 * aggregate (the zero-copy view aliases them in the mapped file).
 * PhaseModel::validate() forwards here with its owned matrices. Throws
 * ModelError on violation.
 */
void validateModelShapes(const PhaseModel &model, stats::MatrixView loadings,
                         stats::MatrixView centers,
                         stats::MatrixView prominent_raw);

/**
 * Coverage/uniqueness of a projection against frozen training composition
 * carried by `meta` (suites + suite_rows); `k` is the cluster count, which
 * the zero-copy view derives from its centers view. Same arithmetic as
 * PhaseModel::assessWorkload, which forwards here.
 */
[[nodiscard]] WorkloadAssessment
assessProjection(const PhaseModel &meta, std::size_t k,
                 const Projection &projection);

/** Figure 4/6 training numbers from `meta`'s suite_rows with k clusters. */
[[nodiscard]] TrainingCoverage
computeTrainingCoverage(const PhaseModel &meta, std::size_t k);

} // namespace mica::model

#endif // MICAPHASE_MODEL_PHASE_MODEL_HH
