#include "model/live_model.hh"

#include <utility>

#include "obs/trace.hh"

namespace mica::model {

std::uint64_t
LiveModel::load(const std::string &path, const OpenOptions &opts)
{
    // The slow part (open + validate) runs unlocked: serving threads keep
    // taking snapshots of the old generation until the new one is ready.
    std::shared_ptr<const ModelReader> reader = open(path, opts);
    return publish(std::move(reader));
}

std::uint64_t
LiveModel::publish(std::shared_ptr<const ModelReader> reader)
{
    // Index construction is the expensive part of an ANN-enabled swap;
    // like the file open it runs unlocked, against the new reader's own
    // frozen centers (no torn state to observe: the reader is not
    // published yet).
    bool build_index = false;
    ann::BuildOptions build_opts;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        build_index = ann_enabled_ && reader != nullptr;
        build_opts = ann_options_;
    }
    std::shared_ptr<ann::CenterIndex> index;
    if (build_index)
        index = std::make_shared<ann::CenterIndex>(
            ann::CenterIndex::build(reader->centers(), build_opts));

    std::uint64_t generation = 0;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        generation = ++snapshot_.generation;
        if (index != nullptr)
            index->setGeneration(generation);
        snapshot_.reader = std::move(reader);
        snapshot_.index = std::move(index);
    }
    obs::count("model.hot_swap");
    obs::gauge("model.generation", static_cast<double>(generation));
    return generation;
}

void
LiveModel::enableAnn(const ann::BuildOptions &opts)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    ann_enabled_ = true;
    ann_options_ = opts;
}

LiveModel::Snapshot
LiveModel::current() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return snapshot_;
}

std::uint64_t
LiveModel::generation() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return snapshot_.generation;
}

} // namespace mica::model
