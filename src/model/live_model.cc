#include "model/live_model.hh"

#include <utility>

#include "obs/trace.hh"

namespace mica::model {

std::uint64_t
LiveModel::load(const std::string &path, const OpenOptions &opts)
{
    // The slow part (open + validate) runs unlocked: serving threads keep
    // taking snapshots of the old generation until the new one is ready.
    std::shared_ptr<const ModelReader> reader = open(path, opts);
    return publish(std::move(reader));
}

std::uint64_t
LiveModel::publish(std::shared_ptr<const ModelReader> reader)
{
    std::uint64_t generation = 0;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        generation = ++snapshot_.generation;
        snapshot_.reader = std::move(reader);
    }
    obs::count("model.hot_swap");
    obs::gauge("model.generation", static_cast<double>(generation));
    return generation;
}

LiveModel::Snapshot
LiveModel::current() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return snapshot_;
}

std::uint64_t
LiveModel::generation() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return snapshot_.generation;
}

} // namespace mica::model
