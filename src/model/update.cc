#include "model/update.hh"

#include <cmath>
#include <utility>

#include "obs/trace.hh"
#include "stats/distance.hh"

namespace mica::model {

ModelUpdater::ModelUpdater(const ModelReader &reader, UpdateOptions opts)
    : reader_(reader), opts_(opts)
{
    const std::size_t k = reader_.numClusters();
    assign_counts_.assign(k, 0);
    dist_sum_.assign(k, 0.0);
    dist_max_.assign(k, 0.0);
    accepted_counts_.assign(k, 0);
    accepted_sum_ = stats::Matrix(k, reader_.components());
}

IngestBatch
ModelUpdater::ingest(const stats::Matrix &rows)
{
    const obs::Span span("model.ingest", "model");
    IngestBatch batch;
    batch.rows = rows.rows();
    // Frozen placement of every offered row: the same fused kernel the
    // serving path uses, so ingest observes exactly what serving would
    // have answered (bit-identical at any thread count).
    batch.projection = reader_.placeBatch(rows, opts_.project);
    batch.accepted_mask.assign(batch.rows, 1);

    // Serial row-order accumulation keeps every gauge and the refinement
    // sums deterministic regardless of how the placement was threaded.
    for (std::size_t r = 0; r < batch.rows; ++r) {
        const std::size_t c = batch.projection.assignment[r];
        const double d = std::sqrt(batch.projection.dist2[r]);
        ++assign_counts_[c];
        dist_sum_[c] += d;
        dist_max_[c] = std::max(dist_max_[c], d);
        global_dist_sum_ += d;
        global_dist_max_ = std::max(global_dist_max_, d);

        const bool redundant =
            opts_.dedup_threshold > 0.0 && d <= opts_.dedup_threshold;
        if (redundant) {
            batch.accepted_mask[r] = 0;
            ++batch.deduped;
            continue;
        }
        ++batch.accepted;
        ++accepted_counts_[c];
        auto sum = accepted_sum_.row(c);
        const auto reduced = batch.projection.reduced.row(r);
        for (std::size_t j = 0; j < sum.size(); ++j)
            sum[j] += reduced[j];
    }
    ingested_ += batch.rows;
    accepted_ += batch.accepted;
    deduped_ += batch.deduped;
    obs::count("model.rows_ingested", static_cast<double>(batch.rows));
    obs::count("model.rows_deduped", static_cast<double>(batch.deduped));
    return batch;
}

ModelDelta
ModelUpdater::delta(std::uint32_t sequence) const
{
    const PhaseModel &meta = reader_.meta();
    const std::size_t k = assign_counts_.size();

    ModelDelta d;
    d.sequence = sequence;
    d.base_analysis_key = meta.analysis_key;
    d.ingested_rows = ingested_;
    d.accepted_rows = accepted_;
    d.deduped_rows = deduped_;
    d.dedup_threshold = opts_.dedup_threshold;
    d.assign_counts = assign_counts_;

    d.mean_distance.assign(k, 0.0);
    d.max_distance = dist_max_;
    for (std::size_t c = 0; c < k; ++c)
        if (assign_counts_[c] > 0)
            d.mean_distance[c] =
                dist_sum_[c] / static_cast<double>(assign_counts_[c]);
    if (ingested_ > 0) {
        d.global_mean_distance =
            global_dist_sum_ / static_cast<double>(ingested_);
        d.global_max_distance = global_dist_max_;
        // Total-variation distance between the ingested cluster mix and
        // the training mix: 0 = identical populations, 1 = disjoint. The
        // cheapest global "are new workloads landing where training rows
        // did?" gauge.
        double tv = 0.0;
        for (std::size_t c = 0; c < k; ++c) {
            const double observed =
                static_cast<double>(assign_counts_[c]) /
                static_cast<double>(ingested_);
            const double trained =
                meta.training_rows > 0
                    ? static_cast<double>(meta.cluster_sizes[c]) /
                          static_cast<double>(meta.training_rows)
                    : 0.0;
            tv += std::abs(observed - trained);
        }
        d.total_variation = 0.5 * tv;
    }

    if (!opts_.refine)
        return d;

    // Mini-batch refinement: each refined center is the exact weighted
    // mean of its frozen position (weight = training population) and the
    // accepted new rows assigned to it. A cluster that saw no accepted
    // rows keeps its frozen center bit-for-bit.
    const stats::MatrixView frozen = reader_.centers();
    const std::size_t m = reader_.components();
    d.refined = true;
    d.refined_centers = stats::Matrix(k, m);
    std::vector<double> move2(k, 0.0);
    for (std::size_t c = 0; c < k; ++c) {
        const auto from = frozen.row(c);
        auto to = d.refined_centers.row(c);
        const double w = static_cast<double>(meta.cluster_sizes[c]);
        const double n = static_cast<double>(accepted_counts_[c]);
        if (accepted_counts_[c] == 0 || w + n <= 0.0) {
            for (std::size_t j = 0; j < m; ++j)
                to[j] = from[j];
            continue;
        }
        const auto sum = accepted_sum_.row(c);
        for (std::size_t j = 0; j < m; ++j)
            to[j] = (w * from[j] + sum[j]) / (w + n);
        move2[c] = stats::squaredDistance(to, from);
    }

    // Movement bounds through the Hamerly drift machinery: inflated per
    // the kBoundSlack discipline, so each reported drift is a certified
    // upper bound on the exact Euclidean movement.
    stats::CenterDrift drift;
    drift.fromSquaredMovements(move2);
    d.center_drift = drift.move;
    d.max_center_drift = drift.max_move;
    d.drift_threshold = opts_.drift_threshold;
    d.retrain_recommended = d.max_center_drift > opts_.drift_threshold;
    return d;
}

void
appendDelta(const std::string &path, const ModelDelta &delta,
            const SaveOptions &opts)
{
    const obs::Span span("model.append_delta", "model");
    PhaseModel m = PhaseModel::load(path);
    if (delta.base_analysis_key != m.analysis_key)
        throw ModelError(
            "appendDelta: " + path + ": delta base key " +
            std::to_string(delta.base_analysis_key) +
            " does not match the model's analysis key " +
            std::to_string(m.analysis_key));
    const std::uint32_t last =
        m.deltas.empty() ? 0 : m.deltas.back().sequence;
    ModelDelta attached = delta;
    if (attached.sequence == 0)
        attached.sequence = last + 1;
    else if (attached.sequence <= last)
        throw ModelError("appendDelta: " + path + ": sequence " +
                         std::to_string(attached.sequence) +
                         " not greater than the last delta's " +
                         std::to_string(last));
    m.deltas.push_back(std::move(attached));
    m.save(path, opts);
    obs::count("model.deltas_appended");
}

} // namespace mica::model
