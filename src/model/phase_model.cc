#include "model/phase_model.hh"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <functional>
#include <utility>

#include "model/format.hh"
#include "obs/trace.hh"
#include "stats/distance.hh"
#include "stats/projection.hh"
#include "stats/summary.hh"

namespace mica::model {

std::string_view
clusterKindName(ClusterKind kind)
{
    switch (kind) {
      case ClusterKind::BenchmarkSpecific: return "benchmark-specific";
      case ClusterKind::SuiteSpecific: return "suite-specific";
      case ClusterKind::Mixed: return "mixed";
    }
    return "?";
}

std::size_t
WorkloadAssessment::clustersToCover(double fraction) const
{
    for (std::size_t i = 0; i < cumulative.size(); ++i)
        if (cumulative[i] >= fraction)
            return i + 1;
    return cumulative.size();
}

double
PhaseModel::clusterWeight(std::size_t c) const
{
    if (training_rows == 0)
        return 0.0;
    return static_cast<double>(cluster_sizes[c]) /
           static_cast<double>(training_rows);
}

void
validateModelShapes(const PhaseModel &model, stats::MatrixView loadings,
                    stats::MatrixView centers,
                    stats::MatrixView prominent_raw)
{
    auto require = [](bool ok, std::string_view what) {
        if (!ok)
            throw ModelError("PhaseModel: invalid model (" +
                             std::string(what) + ")");
    };
    const std::size_t p = model.columns();
    const std::size_t m = model.components();
    const std::size_t k = centers.rows();

    require(p > 0, "no input columns");
    require(model.norm_stddev.size() == p, "norm mean/sd size mismatch");
    require(m > 0, "no retained components");
    require(loadings.rows() == p && loadings.cols() == m,
            "loadings shape mismatch");
    require(model.eigenvalues.size() >= m,
            "fewer eigenvalues than components");
    require(k > 0, "no clusters");
    require(centers.cols() == m, "centers/components mismatch");
    require(model.cluster_sizes.size() == k, "cluster_sizes size mismatch");
    require(model.cluster_kinds.size() == k, "cluster_kinds size mismatch");
    for (ClusterKind kind : model.cluster_kinds)
        require(static_cast<std::uint8_t>(kind) <= 2, "bad cluster kind");
    require(model.benchmark_suites.size() == model.benchmark_ids.size(),
            "benchmark ids/suites mismatch");
    require(model.suite_rows.size() == k * model.suites.size(),
            "suite_rows shape mismatch");
    require(model.prominent.size() <= k,
            "more prominent phases than clusters");
    require(prominent_raw.rows() == model.prominent.size(),
            "prominent_raw row mismatch");
    require(model.prominent.empty() || prominent_raw.cols() == p,
            "prominent_raw column mismatch");
    for (const ProminentPhase &ph : model.prominent) {
        require(ph.cluster < k, "prominent cluster out of range");
        require(ph.representative_row < model.training_rows,
                "prominent representative out of range");
    }
    for (std::uint32_t idx : model.key_characteristics)
        require(idx < p, "key characteristic out of range");
    std::uint64_t total = 0;
    for (std::uint64_t s : model.cluster_sizes)
        total += s;
    require(total == model.training_rows,
            "cluster sizes do not sum to rows");

    std::uint32_t last_sequence = 0;
    for (const ModelDelta &d : model.deltas) {
        require(d.sequence > last_sequence,
                "delta sequence not strictly increasing");
        last_sequence = d.sequence;
        require(d.base_analysis_key == model.analysis_key,
                "delta ingested against a different base model");
        require(d.ingested_rows == d.accepted_rows + d.deduped_rows,
                "delta row accounting does not add up");
        require(d.assign_counts.size() == k,
                "delta assign_counts size mismatch");
        require(d.mean_distance.size() == k && d.max_distance.size() == k,
                "delta distance gauge size mismatch");
        std::uint64_t assigned = 0;
        for (std::uint64_t n : d.assign_counts)
            assigned += n;
        require(assigned == d.ingested_rows,
                "delta assign_counts do not sum to ingested rows");
        if (d.refined) {
            require(d.refined_centers.rows() == k &&
                        d.refined_centers.cols() == m,
                    "refined centers shape mismatch");
            require(d.center_drift.size() == k,
                    "center drift size mismatch");
        } else {
            require(d.refined_centers.rows() == 0 &&
                        d.refined_centers.cols() == 0,
                    "refined centers present without refinement");
            require(d.center_drift.empty(),
                    "center drift present without refinement");
        }
    }
}

void
PhaseModel::validate() const
{
    validateModelShapes(*this, loadings.view(), centers.view(),
                        prominent_raw.view());
}

void
PhaseModel::save(const std::string &path) const
{
    save(path, SaveOptions{});
}

void
PhaseModel::save(const std::string &path, const SaveOptions &opts) const
{
    using format::ByteWriter;
    const obs::Span span("model.save", "model");
    validate();

    // Serialize every section payload first; the header/table layout
    // falls out of the payload sizes.
    std::vector<std::pair<std::uint32_t, ByteWriter>> sections;

    {
        ByteWriter &w =
            sections.emplace_back(format::kSecMeta, ByteWriter{}).second;
        w.u64(analysis_key);
        w.u64(interval_instructions);
        w.u32(samples_per_benchmark);
        w.f64(interval_scale);
        w.f64(pca_min_stddev);
        w.u64(seed);
        w.u64(training_rows);
    }
    {
        ByteWriter &w =
            sections.emplace_back(format::kSecCatalog, ByteWriter{}).second;
        w.strVec(benchmark_ids);
        w.strVec(benchmark_suites);
        w.strVec(suites);
    }
    {
        ByteWriter &w =
            sections.emplace_back(format::kSecNorm, ByteWriter{}).second;
        w.u8(normalize_input ? 1 : 0);
        w.f64Vec(norm_mean);
        w.f64Vec(norm_stddev);
    }
    {
        ByteWriter &w =
            sections.emplace_back(format::kSecPca, ByteWriter{}).second;
        w.f64(pca_explained);
        w.f64Vec(eigenvalues);
        w.matrix(loadings);
        w.f64Vec(rescale_sd);
    }
    {
        ByteWriter &w =
            sections.emplace_back(format::kSecClusters, ByteWriter{}).second;
        w.matrix(centers);
        w.u64Vec(cluster_sizes);
        w.u64(cluster_kinds.size());
        for (ClusterKind kind : cluster_kinds)
            w.u8(static_cast<std::uint8_t>(kind));
        w.u64(suites.size());
        w.u64Vec(suite_rows);
    }
    {
        ByteWriter &w =
            sections.emplace_back(format::kSecProminent, ByteWriter{})
                .second;
        w.u64(prominent.size());
        for (const ProminentPhase &ph : prominent) {
            w.u32(ph.cluster);
            w.f64(ph.weight);
            w.u64(ph.representative_row);
        }
        w.matrix(prominent_raw);
    }
    {
        ByteWriter &w =
            sections.emplace_back(format::kSecGa, ByteWriter{}).second;
        w.u64(key_characteristics.size());
        for (std::uint32_t idx : key_characteristics)
            w.u32(idx);
        w.f64(ga_fitness);
    }
    for (const ModelDelta &d : deltas) {
        ByteWriter &w =
            sections.emplace_back(format::kSecDelta, ByteWriter{}).second;
        format::writeDelta(w, d);
    }

    // Assign offsets. The packed layout (default) byte-matches every file
    // this library ever wrote; the aligned layout pads each section start
    // to 8 bytes (format::alignUp — the same rule appendDelta relies on)
    // so the zero-copy loader can alias f64 payloads in place.
    std::vector<std::uint64_t> offsets;
    offsets.reserve(sections.size());
    std::uint64_t offset =
        format::kHeaderSize + sections.size() * format::kTableEntrySize;
    for (const auto &[id, payload] : sections) {
        if (opts.align_sections)
            offset = format::alignUp(offset);
        offsets.push_back(offset);
        offset += payload.size();
    }

    ByteWriter file;
    for (char c : format::kMagic)
        file.u8(static_cast<std::uint8_t>(c));
    // Delta-free models keep the historical version-1 stamp (byte-locked
    // by the golden fixture); any delta section promotes the file to
    // version 2 so pre-delta readers reject it loudly instead of silently
    // dropping the update history.
    file.u32(deltas.empty() ? kBaseFormatVersion : kFormatVersion);
    file.u32(static_cast<std::uint32_t>(sections.size()));
    for (std::size_t i = 0; i < sections.size(); ++i) {
        const auto &[id, payload] = sections[i];
        file.u32(id);
        file.u32(0); // reserved
        file.u64(offsets[i]);
        file.u64(payload.size());
        file.u32(format::crc32(payload.bytes().data(), payload.size()));
        file.u32(0); // reserved
    }
    ByteWriter blob = std::move(file);
    for (std::size_t i = 0; i < sections.size(); ++i) {
        while (blob.size() < offsets[i])
            blob.u8(0); // alignment gap
        for (std::uint8_t b : sections[i].second.bytes())
            blob.u8(b);
    }

    const std::filesystem::path p(path);
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path());
    // Atomic publish: a crashed writer or concurrent reader can only ever
    // see the previous complete file or the new complete file.
    const std::string tmp_path = path + ".tmp";
    {
        std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
        if (!out)
            throw ModelError("PhaseModel::save: cannot write " + tmp_path);
        out.write(reinterpret_cast<const char *>(blob.bytes().data()),
                  static_cast<std::streamsize>(blob.size()));
        out.flush();
        if (!out)
            throw ModelError("PhaseModel::save: write failed: " + tmp_path);
    }
    std::error_code ec;
    std::filesystem::rename(tmp_path, path, ec);
    if (ec)
        throw ModelError("PhaseModel::save: rename failed: " +
                         ec.message());
    obs::count("model.save_bytes", static_cast<double>(blob.size()));
}

PhaseModel
PhaseModel::loadFromBytes(std::span<const std::uint8_t> bytes,
                          const std::string &source)
{
    const std::string where = "PhaseModel::load: " + source;
    const std::vector<format::SectionEntry> table =
        format::readAndCheckTable(bytes.data(), bytes.size(), where);

    PhaseModel model;
    format::parseModel(model, bytes.data(), table, where,
                       [&model](format::MatrixField field,
                                format::ByteReader &r) {
                           switch (field) {
                             case format::MatrixField::Loadings:
                               model.loadings = r.matrix();
                               break;
                             case format::MatrixField::Centers:
                               model.centers = r.matrix();
                               break;
                             case format::MatrixField::ProminentRaw:
                               model.prominent_raw = r.matrix();
                               break;
                           }
                       });

    try {
        model.validate();
    } catch (const ModelError &e) {
        throw ModelError(where + ": " + e.what());
    }
    return model;
}

PhaseModel
PhaseModel::load(const std::string &path)
{
    const obs::Span span("model.load", "model");

    std::vector<std::uint8_t> bytes;
    {
        std::ifstream in(path, std::ios::binary | std::ios::ate);
        if (!in)
            throw ModelError("PhaseModel::load: cannot open " + path);
        const std::streamsize size = in.tellg();
        in.seekg(0);
        bytes.resize(static_cast<std::size_t>(size));
        if (size > 0)
            in.read(reinterpret_cast<char *>(bytes.data()), size);
        if (!in)
            throw ModelError("PhaseModel::load: read failed: " + path);
    }

    PhaseModel model = loadFromBytes(bytes, path);
    obs::count("model.load_bytes", static_cast<double>(bytes.size()));
    return model;
}

Projection
PhaseModel::projectBenchmark(const stats::Matrix &rows) const
{
    const obs::Span span("model.project", "model");
    if (rows.cols() != columns())
        throw ModelError(
            "PhaseModel::projectBenchmark: input has " +
            std::to_string(rows.cols()) + " columns, model expects " +
            std::to_string(columns()));

    // Replay the training-time chain with the training-time code:
    // stats::normalizeColumns -> Matrix::multiply -> sd-guarded rescale is
    // exactly Pca::transformRescaled, so the output is bit-identical to
    // what analyzePhases produced for these rows. This path stays on the
    // original unfused matrix ops on purpose: it is the independent oracle
    // the fused placeBatch kernel is cross-checked against.
    Projection out;
    if (normalize_input) {
        stats::ColumnStats cs;
        cs.mean = norm_mean;
        cs.stddev = norm_stddev;
        const stats::Matrix prepared = stats::normalizeColumns(rows, cs);
        out.reduced = prepared.multiply(loadings);
    } else {
        out.reduced = rows.multiply(loadings);
    }
    for (std::size_t r = 0; r < out.reduced.rows(); ++r) {
        auto row = out.reduced.row(r);
        for (std::size_t c = 0; c < out.reduced.cols(); ++c) {
            const double sd = rescale_sd[c];
            row[c] = sd > stats::kStddevEpsilon ? row[c] / sd : 0.0;
        }
    }

    // Nearest-center assignment with the exact Lloyd kernel (lowest index
    // wins ties). Because a converged Lloyd exit leaves the stored centers
    // a fixed point of the final assignment, this reproduces the training
    // assignment bitwise when fed the training sample.
    out.assignment.reserve(out.reduced.rows());
    out.dist2.reserve(out.reduced.rows());
    for (std::size_t r = 0; r < out.reduced.rows(); ++r) {
        const stats::NearestCenter nearest =
            stats::nearestCenter(out.reduced.row(r), centers);
        out.assignment.push_back(nearest.index);
        out.dist2.push_back(nearest.dist2);
    }
    obs::count("model.rows_projected",
               static_cast<double>(out.reduced.rows()));
    return out;
}

stats::ProjectionSpec
PhaseModel::projectionSpec() const
{
    stats::ProjectionSpec spec;
    spec.normalize_input = normalize_input;
    spec.mean = norm_mean;
    spec.stddev = norm_stddev;
    spec.loadings = loadings.view();
    spec.rescale_sd = rescale_sd;
    spec.centers = centers.view();
    return spec;
}

Projection
PhaseModel::placeBatch(const stats::Matrix &rows,
                       const stats::ProjectOptions &opts) const
{
    const obs::Span span("model.place_batch", "model");
    const obs::GaugeTimer timer("model.batch_seconds");
    if (rows.cols() != columns())
        throw ModelError(
            "PhaseModel::placeBatch: input has " +
            std::to_string(rows.cols()) + " columns, model expects " +
            std::to_string(columns()));

    stats::ProjectedRows projected =
        stats::projectRows(projectionSpec(), rows.view(), opts);
    Projection out;
    out.reduced = std::move(projected.reduced);
    out.assignment = std::move(projected.assignment);
    out.dist2 = std::move(projected.dist2);
    obs::count("model.rows_projected", static_cast<double>(rows.rows()));
    return out;
}

PhaseModel::IntervalPlacement
PhaseModel::projectInterval(std::span<const double> values) const
{
    stats::Matrix one(0, 0);
    one.appendRow(values);
    // Share the batch path so a single interval and a row of a batch are
    // placed identically by construction.
    const Projection projection = projectBenchmark(one);
    IntervalPlacement out;
    const auto row = projection.reduced.row(0);
    out.reduced.assign(row.begin(), row.end());
    const stats::NearestCenter nearest =
        stats::nearestCenter(row, centers);
    out.cluster = nearest.index;
    out.dist2 = nearest.dist2;
    out.second_dist2 = nearest.second_dist2;
    return out;
}

WorkloadAssessment
assessProjection(const PhaseModel &meta, std::size_t k,
                 const Projection &projection)
{
    const std::size_t num_suites = meta.suites.size();
    const std::size_t n = projection.assignment.size();
    auto suiteRows = [&meta, num_suites](std::size_t c, std::size_t s) {
        return meta.suite_rows[c * num_suites + s];
    };
    WorkloadAssessment out;
    out.rows = n;
    out.exclusive_fraction.assign(num_suites, 0.0);
    if (n == 0)
        return out;

    std::vector<std::size_t> rows_in_cluster(k, 0);
    for (std::size_t c : projection.assignment)
        ++rows_in_cluster[c];

    // Figure 4 analogue: how much of the frozen space the workload touches.
    for (std::size_t c = 0; c < k; ++c)
        if (rows_in_cluster[c] > 0)
            ++out.clusters_covered;
    out.coverage_fraction = static_cast<double>(out.clusters_covered) /
                            static_cast<double>(k);

    // Figure 5 analogue: cumulative share of the workload's own rows.
    std::vector<double> shares;
    shares.reserve(k);
    for (std::size_t c = 0; c < k; ++c)
        shares.push_back(static_cast<double>(rows_in_cluster[c]) /
                         static_cast<double>(n));
    std::sort(shares.begin(), shares.end(), std::greater<>());
    double acc = 0.0;
    out.cumulative.reserve(k);
    for (double share : shares) {
        acc += share;
        out.cumulative.push_back(std::min(acc, 1.0));
    }

    // Figure 6 analogue, against the *training* composition: a cluster
    // populated by exactly one training suite attributes the workload's
    // rows there to that suite; several suites = shared behaviour; no
    // training rows at all = behaviour novel to this workload.
    for (std::size_t c = 0; c < k; ++c) {
        if (rows_in_cluster[c] == 0)
            continue;
        std::size_t populated = 0;
        std::size_t owner = 0;
        for (std::size_t s = 0; s < num_suites; ++s) {
            if (suiteRows(c, s) > 0) {
                ++populated;
                owner = s;
            }
        }
        const double frac = static_cast<double>(rows_in_cluster[c]) /
                            static_cast<double>(n);
        if (populated == 0)
            out.novel_fraction += frac;
        else if (populated == 1)
            out.exclusive_fraction[owner] += frac;
        else
            out.shared_fraction += frac;
    }

    double total = 0.0;
    for (double d2 : projection.dist2) {
        const double d = std::sqrt(d2);
        total += d;
        out.max_distance = std::max(out.max_distance, d);
    }
    out.mean_distance = total / static_cast<double>(n);
    return out;
}

WorkloadAssessment
PhaseModel::assessWorkload(const Projection &projection) const
{
    return assessProjection(*this, numClusters(), projection);
}

TrainingCoverage
computeTrainingCoverage(const PhaseModel &meta, std::size_t k)
{
    const std::size_t num_suites = meta.suites.size();
    auto suiteRows = [&meta, num_suites](std::size_t c, std::size_t s) {
        return meta.suite_rows[c * num_suites + s];
    };
    TrainingCoverage out;
    out.suites = meta.suites;
    out.coverage.assign(num_suites, 0);
    out.uniqueness.assign(num_suites, 0.0);

    std::vector<std::uint64_t> total_rows(num_suites, 0);
    for (std::size_t c = 0; c < k; ++c)
        for (std::size_t s = 0; s < num_suites; ++s)
            total_rows[s] += suiteRows(c, s);

    for (std::size_t c = 0; c < k; ++c) {
        std::size_t populated = 0;
        std::size_t owner = 0;
        for (std::size_t s = 0; s < num_suites; ++s) {
            if (suiteRows(c, s) > 0) {
                ++populated;
                ++out.coverage[s];
                owner = s;
            }
        }
        if (populated == 1)
            out.uniqueness[owner] +=
                static_cast<double>(suiteRows(c, owner));
    }
    for (std::size_t s = 0; s < num_suites; ++s)
        if (total_rows[s] > 0)
            out.uniqueness[s] /= static_cast<double>(total_rows[s]);
    return out;
}

TrainingCoverage
PhaseModel::trainingCoverage() const
{
    return computeTrainingCoverage(*this, numClusters());
}

} // namespace mica::model
