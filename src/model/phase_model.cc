#include "model/phase_model.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>

#include "obs/trace.hh"
#include "stats/distance.hh"
#include "stats/summary.hh"

namespace mica::model {

namespace {

constexpr std::array<char, 8> kMagic = {'M', 'I', 'C', 'A',
                                        'P', 'H', 'M', 'D'};

/** Section ids. Append only; never renumber (they are on disk). */
enum SectionId : std::uint32_t
{
    kSecMeta = 1,
    kSecCatalog = 2,
    kSecNorm = 3,
    kSecPca = 4,
    kSecClusters = 5,
    kSecProminent = 6,
    kSecGa = 7,
};

constexpr std::array<std::uint32_t, 7> kRequiredSections = {
    kSecMeta, kSecCatalog, kSecNorm, kSecPca,
    kSecClusters, kSecProminent, kSecGa};

/** CRC32 (poly 0xEDB88320, the zlib polynomial) over a byte range. */
std::uint32_t
crc32(const std::uint8_t *data, std::size_t size)
{
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

/**
 * Little-endian append-only serializer. Explicit byte shuffling (instead
 * of memcpy of host integers) pins the on-disk layout on any endianness.
 */
class ByteWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    f64(double v)
    {
        u64(std::bit_cast<std::uint64_t>(v));
    }

    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    void
    strVec(const std::vector<std::string> &v)
    {
        u64(v.size());
        for (const auto &s : v)
            str(s);
    }

    void
    f64Vec(const std::vector<double> &v)
    {
        u64(v.size());
        for (double x : v)
            f64(x);
    }

    void
    u64Vec(const std::vector<std::uint64_t> &v)
    {
        u64(v.size());
        for (std::uint64_t x : v)
            u64(x);
    }

    void
    matrix(const stats::Matrix &m)
    {
        u64(m.rows());
        u64(m.cols());
        for (std::size_t r = 0; r < m.rows(); ++r)
            for (double x : m.row(r))
                f64(x);
    }

    [[nodiscard]] const std::vector<std::uint8_t> &bytes() const
    {
        return buf_;
    }

    [[nodiscard]] std::size_t size() const { return buf_.size(); }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Bounds-checked little-endian reader over one section's bytes. */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t size,
               std::string_view section)
        : data_(data), size_(size), section_(section)
    {
    }

    [[nodiscard]] std::uint8_t
    u8()
    {
        need(1);
        return data_[pos_++];
    }

    [[nodiscard]] std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 4;
        return v;
    }

    [[nodiscard]] std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 8;
        return v;
    }

    [[nodiscard]] double
    f64()
    {
        return std::bit_cast<double>(u64());
    }

    [[nodiscard]] std::string
    str()
    {
        const std::uint32_t len = u32();
        need(len);
        std::string s(reinterpret_cast<const char *>(data_ + pos_), len);
        pos_ += len;
        return s;
    }

    [[nodiscard]] std::vector<std::string>
    strVec()
    {
        std::vector<std::string> v(checkedCount(4));
        for (auto &s : v)
            s = str();
        return v;
    }

    [[nodiscard]] std::vector<double>
    f64Vec()
    {
        std::vector<double> v(checkedCount(8));
        for (auto &x : v)
            x = f64();
        return v;
    }

    [[nodiscard]] std::vector<std::uint64_t>
    u64Vec()
    {
        std::vector<std::uint64_t> v(checkedCount(8));
        for (auto &x : v)
            x = u64();
        return v;
    }

    [[nodiscard]] stats::Matrix
    matrix()
    {
        const std::uint64_t rows = u64();
        const std::uint64_t cols = u64();
        // Two-step overflow-safe guard: bounding cols by remaining()/8 first
        // keeps 8*cols from wrapping, and the rows bound then guarantees
        // rows*cols fits both the section and std::size_t.
        if (cols > remaining() / 8)
            fail("matrix larger than its section");
        if (cols != 0 && rows > remaining() / (8 * cols))
            fail("matrix larger than its section");
        stats::Matrix m(static_cast<std::size_t>(rows),
                        static_cast<std::size_t>(cols));
        for (std::size_t r = 0; r < m.rows(); ++r)
            for (double &x : m.row(r))
                x = f64();
        return m;
    }

    /** Every section must be consumed exactly — trailing bytes = junk. */
    void
    finish() const
    {
        if (pos_ != size_)
            fail("trailing bytes");
    }

  private:
    [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

    /** Read an element count and pre-check it fits the section. */
    [[nodiscard]] std::size_t
    checkedCount(std::size_t min_elem_size)
    {
        const std::uint64_t n = u64();
        if (n > remaining() / min_elem_size)
            fail("count larger than its section");
        return static_cast<std::size_t>(n);
    }

    void
    need(std::size_t n) const
    {
        if (n > remaining())
            fail("truncated");
    }

    [[noreturn]] void
    fail(std::string_view what) const
    {
        throw ModelError("PhaseModel: corrupt " + std::string(section_) +
                         " section (" + std::string(what) + ")");
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    std::string_view section_;
};

struct SectionEntry
{
    std::uint32_t id = 0;
    std::uint64_t offset = 0;
    std::uint64_t size = 0;
    std::uint32_t crc = 0;
};

constexpr std::size_t kHeaderSize = 8 + 4 + 4;  ///< magic + version + count
constexpr std::size_t kTableEntrySize = 4 + 4 + 8 + 8 + 4 + 4;

} // namespace

std::string_view
clusterKindName(ClusterKind kind)
{
    switch (kind) {
      case ClusterKind::BenchmarkSpecific: return "benchmark-specific";
      case ClusterKind::SuiteSpecific: return "suite-specific";
      case ClusterKind::Mixed: return "mixed";
    }
    return "?";
}

std::size_t
WorkloadAssessment::clustersToCover(double fraction) const
{
    for (std::size_t i = 0; i < cumulative.size(); ++i)
        if (cumulative[i] >= fraction)
            return i + 1;
    return cumulative.size();
}

double
PhaseModel::clusterWeight(std::size_t c) const
{
    if (training_rows == 0)
        return 0.0;
    return static_cast<double>(cluster_sizes[c]) /
           static_cast<double>(training_rows);
}

void
PhaseModel::validate() const
{
    auto require = [](bool ok, std::string_view what) {
        if (!ok)
            throw ModelError("PhaseModel: invalid model (" +
                             std::string(what) + ")");
    };
    const std::size_t p = columns();
    const std::size_t m = components();
    const std::size_t k = numClusters();

    require(p > 0, "no input columns");
    require(norm_stddev.size() == p, "norm mean/sd size mismatch");
    require(m > 0, "no retained components");
    require(loadings.rows() == p && loadings.cols() == m,
            "loadings shape mismatch");
    require(eigenvalues.size() >= m, "fewer eigenvalues than components");
    require(k > 0, "no clusters");
    require(centers.cols() == m, "centers/components mismatch");
    require(cluster_sizes.size() == k, "cluster_sizes size mismatch");
    require(cluster_kinds.size() == k, "cluster_kinds size mismatch");
    for (ClusterKind kind : cluster_kinds)
        require(static_cast<std::uint8_t>(kind) <= 2, "bad cluster kind");
    require(benchmark_suites.size() == benchmark_ids.size(),
            "benchmark ids/suites mismatch");
    require(suite_rows.size() == k * suites.size(),
            "suite_rows shape mismatch");
    require(prominent.size() <= k, "more prominent phases than clusters");
    require(prominent_raw.rows() == prominent.size(),
            "prominent_raw row mismatch");
    require(prominent.empty() || prominent_raw.cols() == p,
            "prominent_raw column mismatch");
    for (const ProminentPhase &ph : prominent) {
        require(ph.cluster < k, "prominent cluster out of range");
        require(ph.representative_row < training_rows,
                "prominent representative out of range");
    }
    for (std::uint32_t idx : key_characteristics)
        require(idx < p, "key characteristic out of range");
    std::uint64_t total = 0;
    for (std::uint64_t s : cluster_sizes)
        total += s;
    require(total == training_rows, "cluster sizes do not sum to rows");
}

void
PhaseModel::save(const std::string &path) const
{
    const obs::Span span("model.save", "model");
    validate();

    // Serialize every section payload first; the header/table layout
    // falls out of the payload sizes.
    std::vector<std::pair<std::uint32_t, ByteWriter>> sections;

    {
        ByteWriter &w = sections.emplace_back(kSecMeta, ByteWriter{}).second;
        w.u64(analysis_key);
        w.u64(interval_instructions);
        w.u32(samples_per_benchmark);
        w.f64(interval_scale);
        w.f64(pca_min_stddev);
        w.u64(seed);
        w.u64(training_rows);
    }
    {
        ByteWriter &w =
            sections.emplace_back(kSecCatalog, ByteWriter{}).second;
        w.strVec(benchmark_ids);
        w.strVec(benchmark_suites);
        w.strVec(suites);
    }
    {
        ByteWriter &w = sections.emplace_back(kSecNorm, ByteWriter{}).second;
        w.u8(normalize_input ? 1 : 0);
        w.f64Vec(norm_mean);
        w.f64Vec(norm_stddev);
    }
    {
        ByteWriter &w = sections.emplace_back(kSecPca, ByteWriter{}).second;
        w.f64(pca_explained);
        w.f64Vec(eigenvalues);
        w.matrix(loadings);
        w.f64Vec(rescale_sd);
    }
    {
        ByteWriter &w =
            sections.emplace_back(kSecClusters, ByteWriter{}).second;
        w.matrix(centers);
        w.u64Vec(cluster_sizes);
        w.u64(cluster_kinds.size());
        for (ClusterKind kind : cluster_kinds)
            w.u8(static_cast<std::uint8_t>(kind));
        w.u64(suites.size());
        w.u64Vec(suite_rows);
    }
    {
        ByteWriter &w =
            sections.emplace_back(kSecProminent, ByteWriter{}).second;
        w.u64(prominent.size());
        for (const ProminentPhase &ph : prominent) {
            w.u32(ph.cluster);
            w.f64(ph.weight);
            w.u64(ph.representative_row);
        }
        w.matrix(prominent_raw);
    }
    {
        ByteWriter &w = sections.emplace_back(kSecGa, ByteWriter{}).second;
        w.u64(key_characteristics.size());
        for (std::uint32_t idx : key_characteristics)
            w.u32(idx);
        w.f64(ga_fitness);
    }

    ByteWriter file;
    for (char c : kMagic)
        file.u8(static_cast<std::uint8_t>(c));
    file.u32(kFormatVersion);
    file.u32(static_cast<std::uint32_t>(sections.size()));
    std::uint64_t offset =
        kHeaderSize + sections.size() * kTableEntrySize;
    for (const auto &[id, payload] : sections) {
        file.u32(id);
        file.u32(0); // reserved
        file.u64(offset);
        file.u64(payload.size());
        file.u32(crc32(payload.bytes().data(), payload.size()));
        file.u32(0); // reserved
        offset += payload.size();
    }
    ByteWriter blob = std::move(file);
    for (const auto &[id, payload] : sections)
        for (std::uint8_t b : payload.bytes())
            blob.u8(b);

    const std::filesystem::path p(path);
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path());
    // Atomic publish: a crashed writer or concurrent reader can only ever
    // see the previous complete file or the new complete file.
    const std::string tmp_path = path + ".tmp";
    {
        std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
        if (!out)
            throw ModelError("PhaseModel::save: cannot write " + tmp_path);
        out.write(reinterpret_cast<const char *>(blob.bytes().data()),
                  static_cast<std::streamsize>(blob.size()));
        out.flush();
        if (!out)
            throw ModelError("PhaseModel::save: write failed: " + tmp_path);
    }
    std::error_code ec;
    std::filesystem::rename(tmp_path, path, ec);
    if (ec)
        throw ModelError("PhaseModel::save: rename failed: " +
                         ec.message());
    obs::count("model.save_bytes", static_cast<double>(blob.size()));
}

PhaseModel
PhaseModel::load(const std::string &path)
{
    const obs::Span span("model.load", "model");

    std::vector<std::uint8_t> bytes;
    {
        std::ifstream in(path, std::ios::binary | std::ios::ate);
        if (!in)
            throw ModelError("PhaseModel::load: cannot open " + path);
        const std::streamsize size = in.tellg();
        in.seekg(0);
        bytes.resize(static_cast<std::size_t>(size));
        if (size > 0)
            in.read(reinterpret_cast<char *>(bytes.data()), size);
        if (!in)
            throw ModelError("PhaseModel::load: read failed: " + path);
    }

    if (bytes.size() < kHeaderSize)
        throw ModelError("PhaseModel::load: " + path +
                         ": truncated header");
    if (std::memcmp(bytes.data(), kMagic.data(), kMagic.size()) != 0)
        throw ModelError("PhaseModel::load: " + path +
                         ": bad magic (not a phase-model file)");
    ByteReader header(bytes.data() + kMagic.size(),
                      bytes.size() - kMagic.size(), "header");
    const std::uint32_t version = header.u32();
    if (version == 0 || version > kFormatVersion)
        throw ModelError(
            "PhaseModel::load: " + path + ": format version " +
            std::to_string(version) + " unsupported (this build reads <= " +
            std::to_string(kFormatVersion) + ")");
    const std::uint32_t section_count = header.u32();
    const std::size_t table_bytes =
        static_cast<std::size_t>(section_count) * kTableEntrySize;
    if (bytes.size() < kHeaderSize + table_bytes)
        throw ModelError("PhaseModel::load: " + path +
                         ": truncated section table");

    std::vector<SectionEntry> table(section_count);
    {
        ByteReader tr(bytes.data() + kHeaderSize, table_bytes,
                      "section table");
        for (SectionEntry &e : table) {
            e.id = tr.u32();
            (void)tr.u32();
            e.offset = tr.u64();
            e.size = tr.u64();
            e.crc = tr.u32();
            (void)tr.u32();
        }
    }

    // Verify bounds + checksums of every section before parsing any.
    auto find = [&](std::uint32_t id) -> const SectionEntry & {
        const SectionEntry *found = nullptr;
        for (const SectionEntry &e : table) {
            if (e.id != id)
                continue;
            if (found != nullptr)
                throw ModelError("PhaseModel::load: " + path +
                                 ": duplicate section " +
                                 std::to_string(id));
            found = &e;
        }
        if (found == nullptr)
            throw ModelError("PhaseModel::load: " + path +
                             ": missing section " + std::to_string(id));
        return *found;
    };
    for (std::uint32_t id : kRequiredSections) {
        const SectionEntry &e = find(id);
        if (e.offset > bytes.size() || e.size > bytes.size() - e.offset)
            throw ModelError("PhaseModel::load: " + path + ": section " +
                             std::to_string(id) + " out of bounds");
        if (crc32(bytes.data() + e.offset,
                  static_cast<std::size_t>(e.size)) != e.crc)
            throw ModelError("PhaseModel::load: " + path + ": section " +
                             std::to_string(id) + " checksum mismatch");
    }

    auto reader = [&](std::uint32_t id, std::string_view name) {
        const SectionEntry &e = find(id);
        return ByteReader(bytes.data() + e.offset,
                          static_cast<std::size_t>(e.size), name);
    };

    PhaseModel model;
    {
        ByteReader r = reader(kSecMeta, "META");
        model.analysis_key = r.u64();
        model.interval_instructions = r.u64();
        model.samples_per_benchmark = r.u32();
        model.interval_scale = r.f64();
        model.pca_min_stddev = r.f64();
        model.seed = r.u64();
        model.training_rows = r.u64();
        r.finish();
    }
    {
        ByteReader r = reader(kSecCatalog, "CATALOG");
        model.benchmark_ids = r.strVec();
        model.benchmark_suites = r.strVec();
        model.suites = r.strVec();
        r.finish();
    }
    {
        ByteReader r = reader(kSecNorm, "NORM");
        model.normalize_input = r.u8() != 0;
        model.norm_mean = r.f64Vec();
        model.norm_stddev = r.f64Vec();
        r.finish();
    }
    {
        ByteReader r = reader(kSecPca, "PCA");
        model.pca_explained = r.f64();
        model.eigenvalues = r.f64Vec();
        model.loadings = r.matrix();
        model.rescale_sd = r.f64Vec();
        r.finish();
    }
    {
        ByteReader r = reader(kSecClusters, "CLUSTERS");
        model.centers = r.matrix();
        model.cluster_sizes = r.u64Vec();
        const std::uint64_t kinds = r.u64();
        model.cluster_kinds.reserve(static_cast<std::size_t>(kinds));
        for (std::uint64_t i = 0; i < kinds; ++i)
            model.cluster_kinds.push_back(
                static_cast<ClusterKind>(r.u8()));
        const std::uint64_t num_suites = r.u64();
        if (num_suites != model.suites.size())
            throw ModelError("PhaseModel::load: " + path +
                             ": CLUSTERS/CATALOG suite count mismatch");
        model.suite_rows = r.u64Vec();
        r.finish();
    }
    {
        ByteReader r = reader(kSecProminent, "PROMINENT");
        const std::uint64_t count = r.u64();
        model.prominent.reserve(static_cast<std::size_t>(count));
        for (std::uint64_t i = 0; i < count; ++i) {
            ProminentPhase ph;
            ph.cluster = r.u32();
            ph.weight = r.f64();
            ph.representative_row = r.u64();
            model.prominent.push_back(ph);
        }
        model.prominent_raw = r.matrix();
        r.finish();
    }
    {
        ByteReader r = reader(kSecGa, "GA");
        const std::uint64_t count = r.u64();
        model.key_characteristics.reserve(
            static_cast<std::size_t>(count));
        for (std::uint64_t i = 0; i < count; ++i)
            model.key_characteristics.push_back(r.u32());
        model.ga_fitness = r.f64();
        r.finish();
    }

    try {
        model.validate();
    } catch (const ModelError &e) {
        throw ModelError("PhaseModel::load: " + path + ": " + e.what());
    }
    obs::count("model.load_bytes", static_cast<double>(bytes.size()));
    return model;
}

Projection
PhaseModel::projectBenchmark(const stats::Matrix &rows) const
{
    const obs::Span span("model.project", "model");
    if (rows.cols() != columns())
        throw ModelError(
            "PhaseModel::projectBenchmark: input has " +
            std::to_string(rows.cols()) + " columns, model expects " +
            std::to_string(columns()));

    // Replay the training-time chain with the training-time code:
    // stats::normalizeColumns -> Matrix::multiply -> sd-guarded rescale is
    // exactly Pca::transformRescaled, so the output is bit-identical to
    // what analyzePhases produced for these rows.
    Projection out;
    if (normalize_input) {
        stats::ColumnStats cs;
        cs.mean = norm_mean;
        cs.stddev = norm_stddev;
        const stats::Matrix prepared = stats::normalizeColumns(rows, cs);
        out.reduced = prepared.multiply(loadings);
    } else {
        out.reduced = rows.multiply(loadings);
    }
    for (std::size_t r = 0; r < out.reduced.rows(); ++r) {
        auto row = out.reduced.row(r);
        for (std::size_t c = 0; c < out.reduced.cols(); ++c) {
            const double sd = rescale_sd[c];
            row[c] = sd > 1e-12 ? row[c] / sd : 0.0;
        }
    }

    // Nearest-center assignment with the exact Lloyd kernel (lowest index
    // wins ties). Because a converged Lloyd exit leaves the stored centers
    // a fixed point of the final assignment, this reproduces the training
    // assignment bitwise when fed the training sample.
    out.assignment.reserve(out.reduced.rows());
    out.dist2.reserve(out.reduced.rows());
    for (std::size_t r = 0; r < out.reduced.rows(); ++r) {
        const stats::NearestCenter nearest =
            stats::nearestCenter(out.reduced.row(r), centers);
        out.assignment.push_back(nearest.index);
        out.dist2.push_back(nearest.dist2);
    }
    obs::count("model.rows_projected",
               static_cast<double>(out.reduced.rows()));
    return out;
}

PhaseModel::IntervalPlacement
PhaseModel::projectInterval(std::span<const double> values) const
{
    stats::Matrix one(0, 0);
    one.appendRow(values);
    // Share the batch path so a single interval and a row of a batch are
    // placed identically by construction.
    const Projection projection = projectBenchmark(one);
    IntervalPlacement out;
    const auto row = projection.reduced.row(0);
    out.reduced.assign(row.begin(), row.end());
    const stats::NearestCenter nearest =
        stats::nearestCenter(row, centers);
    out.cluster = nearest.index;
    out.dist2 = nearest.dist2;
    out.second_dist2 = nearest.second_dist2;
    return out;
}

WorkloadAssessment
PhaseModel::assessWorkload(const Projection &projection) const
{
    const std::size_t k = numClusters();
    const std::size_t n = projection.assignment.size();
    WorkloadAssessment out;
    out.rows = n;
    out.exclusive_fraction.assign(suites.size(), 0.0);
    if (n == 0)
        return out;

    std::vector<std::size_t> rows_in_cluster(k, 0);
    for (std::size_t c : projection.assignment)
        ++rows_in_cluster[c];

    // Figure 4 analogue: how much of the frozen space the workload touches.
    for (std::size_t c = 0; c < k; ++c)
        if (rows_in_cluster[c] > 0)
            ++out.clusters_covered;
    out.coverage_fraction = static_cast<double>(out.clusters_covered) /
                            static_cast<double>(k);

    // Figure 5 analogue: cumulative share of the workload's own rows.
    std::vector<double> shares;
    shares.reserve(k);
    for (std::size_t c = 0; c < k; ++c)
        shares.push_back(static_cast<double>(rows_in_cluster[c]) /
                         static_cast<double>(n));
    std::sort(shares.begin(), shares.end(), std::greater<>());
    double acc = 0.0;
    out.cumulative.reserve(k);
    for (double share : shares) {
        acc += share;
        out.cumulative.push_back(std::min(acc, 1.0));
    }

    // Figure 6 analogue, against the *training* composition: a cluster
    // populated by exactly one training suite attributes the workload's
    // rows there to that suite; several suites = shared behaviour; no
    // training rows at all = behaviour novel to this workload.
    for (std::size_t c = 0; c < k; ++c) {
        if (rows_in_cluster[c] == 0)
            continue;
        std::size_t populated = 0;
        std::size_t owner = 0;
        for (std::size_t s = 0; s < suites.size(); ++s) {
            if (suiteRows(c, s) > 0) {
                ++populated;
                owner = s;
            }
        }
        const double frac = static_cast<double>(rows_in_cluster[c]) /
                            static_cast<double>(n);
        if (populated == 0)
            out.novel_fraction += frac;
        else if (populated == 1)
            out.exclusive_fraction[owner] += frac;
        else
            out.shared_fraction += frac;
    }

    double total = 0.0;
    for (double d2 : projection.dist2) {
        const double d = std::sqrt(d2);
        total += d;
        out.max_distance = std::max(out.max_distance, d);
    }
    out.mean_distance = total / static_cast<double>(n);
    return out;
}

TrainingCoverage
PhaseModel::trainingCoverage() const
{
    const std::size_t k = numClusters();
    const std::size_t num_suites = suites.size();
    TrainingCoverage out;
    out.suites = suites;
    out.coverage.assign(num_suites, 0);
    out.uniqueness.assign(num_suites, 0.0);

    std::vector<std::uint64_t> total_rows(num_suites, 0);
    for (std::size_t c = 0; c < k; ++c)
        for (std::size_t s = 0; s < num_suites; ++s)
            total_rows[s] += suiteRows(c, s);

    for (std::size_t c = 0; c < k; ++c) {
        std::size_t populated = 0;
        std::size_t owner = 0;
        for (std::size_t s = 0; s < num_suites; ++s) {
            if (suiteRows(c, s) > 0) {
                ++populated;
                ++out.coverage[s];
                owner = s;
            }
        }
        if (populated == 1)
            out.uniqueness[owner] +=
                static_cast<double>(suiteRows(c, owner));
    }
    for (std::size_t s = 0; s < num_suites; ++s)
        if (total_rows[s] > 0)
            out.uniqueness[s] /= static_cast<double>(total_rows[s]);
    return out;
}

} // namespace mica::model
