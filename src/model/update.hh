/**
 * @file
 * Incremental model updates: ingest new intervals through a frozen phase
 * model, filter redundant ones, gauge drift, optionally refine centers
 * with a bounded mini-batch step, and ship the outcome as a `ModelDelta`
 * appended to the model file (ROADMAP item 5).
 *
 * The design splits cleanly into an exact and an approximate half:
 *
 * - **Ingest (always exact).** Every offered row is placed with the
 *   frozen `placeBatch` kernel — bit-identical to the serving path at any
 *   thread count — and tallied into per-cluster assignment counts and
 *   distance gauges. Redundancy filtering drops rows whose Euclidean
 *   distance to their assigned center is within `dedup_threshold` (they
 *   tell the updater nothing the cluster representative didn't already):
 *   the Shaccour & Mansour loop-redundancy idea transplanted to workload
 *   space. Dropped rows still count in every gauge; filtering only
 *   decides what feeds refinement. The frozen model is never modified, so
 *   with refinement off the whole path is observation-only and the model
 *   file (minus the appended delta sections) stays bit-identical.
 *
 * - **Refinement (opt-in, bounded).** `UpdateOptions::refine` computes
 *   refined centers as the exact weighted mean of each frozen center
 *   (weighted by its training population) and the accepted new rows
 *   assigned to it — one closed-form mini-batch Lloyd step that cannot be
 *   yanked far by a handful of outliers. Per-center movement is reported
 *   through the same inflated-bound discipline as the Hamerly pruner
 *   (`stats::CenterDrift`): `center_drift[c]` is a certified upper bound
 *   on how far refined center c sits from its frozen position, and when
 *   the largest bound exceeds `drift_threshold` the delta raises
 *   `retrain_recommended` — the signal that new workloads have moved into
 *   regions the frozen clustering cannot represent and a full re-train is
 *   due. Refined centers ride along in the delta; the frozen sections are
 *   untouched (same oracle discipline as `Options::pruning`).
 *
 * Determinism: accumulation is serial in row order and placement is
 * thread-invariant, so every delta field is bit-identical at any
 * `ProjectOptions::threads` / `block_rows`.
 */

#ifndef MICAPHASE_MODEL_UPDATE_HH
#define MICAPHASE_MODEL_UPDATE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "model/phase_model.hh"
#include "model/reader.hh"
#include "stats/matrix.hh"
#include "stats/projection.hh"

namespace mica::model {

/** Knobs for ModelUpdater. */
struct UpdateOptions
{
    /**
     * Euclidean dedup radius in the frozen reduced space: an offered row
     * closer than this to its assigned center is dropped as redundant
     * before refinement. <= 0 disables filtering (every row accepted).
     */
    double dedup_threshold = 0.0;

    /** Compute refined centers + drift bounds (off: observation only). */
    bool refine = false;

    /**
     * Inflated center movement (Euclidean, reduced space) above which a
     * refined delta raises retrain_recommended. The default is deliberate:
     * the frozen space is rescaled to unit per-component variance, so a
     * quarter of a standard deviation of center movement is real drift.
     */
    double drift_threshold = 0.25;

    /** Thread/block knobs for the placement kernel (bit-invariant). */
    stats::ProjectOptions project;
};

/** Outcome of one ModelUpdater::ingest call. */
struct IngestBatch
{
    std::size_t rows = 0;     ///< rows offered in this call
    std::size_t accepted = 0; ///< rows surviving the redundancy filter
    std::size_t deduped = 0;  ///< rows dropped as redundant
    /** Frozen placement of every offered row (exact, all rows). */
    Projection projection;
    /** accepted_mask[i] != 0 iff row i fed the refinement accumulator. */
    std::vector<std::uint8_t> accepted_mask;
};

/**
 * Accumulates ingested batches against one frozen model and finalizes
 * them into a ModelDelta (see file comment). Not thread-safe itself —
 * one updater per ingest stream; the placement it runs *is* internally
 * parallel and thread-count-invariant.
 */
class ModelUpdater
{
  public:
    /** `reader` must outlive the updater. */
    ModelUpdater(const ModelReader &reader, UpdateOptions opts);

    /**
     * Place `rows` (p columns) through the frozen space and fold them
     * into the pending delta. Throws ModelError on a width mismatch.
     */
    IngestBatch ingest(const stats::Matrix &rows);

    /** Rows offered so far across all ingest calls. */
    [[nodiscard]] std::uint64_t ingestedRows() const { return ingested_; }

    /** Rows accepted (fed to refinement) so far. */
    [[nodiscard]] std::uint64_t acceptedRows() const { return accepted_; }

    /** Rows dropped as redundant so far. */
    [[nodiscard]] std::uint64_t dedupedRows() const { return deduped_; }

    /**
     * Finalize the accumulated state into a delta. `sequence` is the
     * file-order sequence number (0 lets appendDelta assign the next
     * one). The updater keeps accumulating — calling delta() again after
     * more ingests yields a superset delta.
     */
    [[nodiscard]] ModelDelta delta(std::uint32_t sequence = 0) const;

  private:
    const ModelReader &reader_;
    UpdateOptions opts_;

    std::uint64_t ingested_ = 0;
    std::uint64_t accepted_ = 0;
    std::uint64_t deduped_ = 0;
    std::vector<std::uint64_t> assign_counts_;
    std::vector<double> dist_sum_;      ///< per-cluster Σ distance
    std::vector<double> dist_max_;      ///< per-cluster max distance
    double global_dist_sum_ = 0.0;
    double global_dist_max_ = 0.0;
    stats::Matrix accepted_sum_;        ///< k x m Σ of accepted rows
    std::vector<std::uint64_t> accepted_counts_; ///< per-cluster accepted
};

/**
 * Append `delta` to the model file at `path`: load, attach, atomic
 * resave (the same `.tmp` + rename publish as save(), so a serving fleet
 * watching the path can only ever observe complete files). A sequence of
 * 0 is replaced with the next free number. The file is promoted to
 * format version 2. With `opts.align_sections` the rewritten file keeps
 * every section 8-byte aligned (format::alignUp — shared with save), so
 * an aligned base model stays zero-copy eligible after any number of
 * appended deltas.
 *
 * Throws ModelError when the delta's base_analysis_key does not match
 * the file's model, or when its sequence is not strictly greater than
 * the last delta already present.
 */
void appendDelta(const std::string &path, const ModelDelta &delta,
                 const SaveOptions &opts = {});

} // namespace mica::model

#endif // MICAPHASE_MODEL_UPDATE_HH
