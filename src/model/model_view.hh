/**
 * @file
 * Zero-copy, mmap-backed read-only view of a frozen phase-model file.
 *
 * `PhaseModelView::open` maps the file (POSIX mmap, PROT_READ/MAP_PRIVATE;
 * a read-into-memory fallback keeps the class portable), runs the exact
 * same structural validation as the copying loader — magic, version gate,
 * section bounds, per-section CRC32, duplicate/missing/overlap rejection,
 * full shape validation — and then aliases the three large f64 matrices
 * (PCA loadings, cluster centers, prominent raw representatives) directly
 * in the mapped bytes instead of materializing owned copies. All scalar
 * and variable-width fields (strings, vectors, counts) are still decoded
 * into an owned PhaseModel aggregate; only the matrices stay in place.
 *
 * Aliasing rules: a matrix payload is aliased only when the host is
 * little-endian and the payload pointer is 8-byte aligned; otherwise that
 * one matrix silently falls back to an owned copy (zeroCopy() reports
 * whether all three aliased). Files written with
 * SaveOptions{.align_sections = true} place every section on an 8-byte
 * boundary, which makes the loadings and centers payloads alias cleanly;
 * packed files (the historical default) usually land misaligned and load
 * through the fallback — same results, one copy slower.
 *
 * Determinism contract: placeBatch goes through the same fused
 * stats::projectRows kernel as PhaseModel::placeBatch, and the aliased
 * bytes are the very bytes save() wrote, so every placement is
 * bit-identical to the copying loader's at any thread count, block size
 * and load path (locked down by tests).
 */

#ifndef MICAPHASE_MODEL_MODEL_VIEW_HH
#define MICAPHASE_MODEL_MODEL_VIEW_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "model/phase_model.hh"
#include "stats/matrix.hh"
#include "stats/projection.hh"

namespace mica::model {

/** Read-only serving handle over one model file (see file comment). */
class PhaseModelView
{
  public:
    /**
     * Map `path` and validate it. Emits `model.view_open` /
     * `model.view_bytes` (+ `model.view_zero_copy` when all matrices
     * alias). Throws ModelError on any I/O or format violation — the same
     * failures the copying loader reports.
     *
     * Note: new code should reach models through the unified access API —
     * `model::open(path, {OpenMode::Mmap})` in model/reader.hh — which
     * wraps this view behind model::ModelReader. open() stays as the
     * implementation substrate and as a shim for existing callers.
     */
    [[nodiscard]] static PhaseModelView open(const std::string &path);

    /**
     * Validate an in-memory file image (the view takes ownership of the
     * bytes; aliased matrices point into them). `source` labels errors.
     * This is the entry point the structured fuzzer drives.
     */
    [[nodiscard]] static PhaseModelView
    parse(std::vector<std::uint8_t> bytes, const std::string &source);

    PhaseModelView(PhaseModelView &&) = default;
    PhaseModelView &operator=(PhaseModelView &&) = default;
    PhaseModelView(const PhaseModelView &) = delete;
    PhaseModelView &operator=(const PhaseModelView &) = delete;
    ~PhaseModelView() = default;

    /**
     * Every non-matrix field of the model (provenance, catalog, norm
     * stats, eigenvalues, cluster sizes/kinds, suite_rows, prominent
     * list, GA outcome). Its three matrix members are intentionally left
     * empty — use loadings()/centers()/prominentRaw().
     */
    [[nodiscard]] const PhaseModel &meta() const { return meta_; }

    [[nodiscard]] stats::MatrixView loadings() const { return loadings_; }
    [[nodiscard]] stats::MatrixView centers() const { return centers_; }
    [[nodiscard]] stats::MatrixView prominentRaw() const
    {
        return prominent_raw_;
    }

    /** True when all three matrices alias the file bytes (no copies). */
    [[nodiscard]] bool zeroCopy() const { return zero_copy_; }

    [[nodiscard]] std::size_t columns() const { return meta_.columns(); }
    [[nodiscard]] std::size_t components() const
    {
        return meta_.components();
    }
    [[nodiscard]] std::size_t numClusters() const { return centers_.rows(); }

    /** Frozen projection coefficients as non-owning views. */
    [[nodiscard]] stats::ProjectionSpec projectionSpec() const;

    /**
     * Batched placement — same fused kernel, same bit-identity contract
     * as PhaseModel::placeBatch (emits the same obs signals).
     */
    [[nodiscard]] Projection
    placeBatch(const stats::Matrix &rows,
               const stats::ProjectOptions &opts = {}) const;

    /** Same arithmetic as PhaseModel::assessWorkload. */
    [[nodiscard]] WorkloadAssessment
    assessWorkload(const Projection &projection) const
    {
        return assessProjection(meta_, numClusters(), projection);
    }

    /** Same arithmetic as PhaseModel::trainingCoverage. */
    [[nodiscard]] TrainingCoverage
    trainingCoverage() const
    {
        return computeTrainingCoverage(meta_, numClusters());
    }

  private:
    PhaseModelView() = default;

    /** Shared tail of open()/parse(): table check, parse, alias, validate. */
    void build(const std::uint8_t *data, std::size_t size,
               const std::string &source);

    struct Mapping; ///< RAII mmap handle (model_view.cc)

    std::shared_ptr<const Mapping> mapping_; ///< set by open() on mmap path
    std::vector<std::uint8_t> owned_bytes_;  ///< set by parse()/fallback
    PhaseModel meta_;                        ///< matrices left empty
    stats::Matrix loadings_copy_;            ///< fallback storage
    stats::Matrix centers_copy_;
    stats::Matrix prominent_copy_;
    stats::MatrixView loadings_;
    stats::MatrixView centers_;
    stats::MatrixView prominent_raw_;
    bool zero_copy_ = false;
};

} // namespace mica::model

#endif // MICAPHASE_MODEL_MODEL_VIEW_HH
