/**
 * @file
 * The unified model-access API: every consumer of a frozen phase model —
 * CLIs, the serving frontend, the incremental updater, benches — talks to
 * a `model::ModelReader` and never to the concrete loader types.
 *
 * Historically there were two ways to read a model, with two distinct
 * spellings: `PhaseModel::load` (the copying loader) and
 * `PhaseModelView::open` (the zero-copy mmap view). Both remain as the
 * implementation substrate (and as thin documented shims for one release),
 * but callers now go through `model::open(path, OpenOptions{...})`, which
 * returns a reader backed by whichever loader the options pick. The two
 * backends satisfy the exact same determinism contract — placement through
 * either is bit-identical on every row at any thread count, block size and
 * load path (see docs/MODEL.md) — so swapping one for the other can never
 * change a result, only the load-time cost profile.
 *
 * The interface is deliberately small: the four virtual accessors expose
 * exactly what distinguishes the backends (who owns the matrices), and
 * everything else — placement, assessment, coverage — is non-virtual glue
 * implemented once on top of them.
 */

#ifndef MICAPHASE_MODEL_READER_HH
#define MICAPHASE_MODEL_READER_HH

#include <memory>
#include <span>
#include <string>

#include "model/model_view.hh"
#include "model/phase_model.hh"
#include "stats/matrix.hh"
#include "stats/projection.hh"

namespace mica::model {

/** Placement of a single interval (shared with PhaseModel's query API). */
using IntervalPlacement = PhaseModel::IntervalPlacement;

/**
 * Read-only handle over one loaded phase model (see file comment).
 * Thread-safe for concurrent const use: placement only reads the frozen
 * coefficients.
 */
class ModelReader
{
  public:
    virtual ~ModelReader() = default;

    ModelReader() = default;
    ModelReader(const ModelReader &) = delete;
    ModelReader &operator=(const ModelReader &) = delete;

    /**
     * Every non-matrix field of the model (provenance, catalog, norm
     * stats, eigenvalues, cluster sizes/kinds, suite_rows, prominent
     * list, GA outcome, deltas). The three matrix members may be empty
     * depending on the backend — always go through loadings() /
     * centers() / prominentRaw() instead.
     */
    [[nodiscard]] virtual const PhaseModel &meta() const = 0;

    [[nodiscard]] virtual stats::MatrixView loadings() const = 0;
    [[nodiscard]] virtual stats::MatrixView centers() const = 0;
    [[nodiscard]] virtual stats::MatrixView prominentRaw() const = 0;

    /** True when the backend aliases all matrices in the file bytes. */
    [[nodiscard]] virtual bool zeroCopy() const = 0;

    /** Input dimensionality p. */
    [[nodiscard]] std::size_t columns() const { return meta().columns(); }

    /** Retained PCA components m. */
    [[nodiscard]] std::size_t components() const
    {
        return meta().components();
    }

    /** Cluster count k. */
    [[nodiscard]] std::size_t numClusters() const
    {
        return centers().rows();
    }

    /** Frozen projection coefficients as non-owning views. */
    [[nodiscard]] stats::ProjectionSpec projectionSpec() const;

    /**
     * Batched placement through the fused stats::projectRows kernel —
     * bit-identical to PhaseModel::projectBenchmark (and to the live
     * pipeline) at any thread count and block size, on either backend.
     * Emits `model.place_batch` / `model.rows_projected` and the
     * `model.batch_seconds` gauge.
     */
    [[nodiscard]] Projection
    placeBatch(const stats::Matrix &rows,
               const stats::ProjectOptions &opts = {}) const;

    /**
     * Project one p-element characteristic vector. Same arithmetic as a
     * one-row placeBatch plus the runner-up distance — bit-identical to
     * PhaseModel::projectInterval (asserted by tests).
     */
    [[nodiscard]] IntervalPlacement
    projectInterval(std::span<const double> values) const;

    /** Same arithmetic as PhaseModel::assessWorkload. */
    [[nodiscard]] WorkloadAssessment
    assessWorkload(const Projection &projection) const
    {
        return assessProjection(meta(), numClusters(), projection);
    }

    /** Same arithmetic as PhaseModel::trainingCoverage. */
    [[nodiscard]] TrainingCoverage
    trainingCoverage() const
    {
        return computeTrainingCoverage(meta(), numClusters());
    }
};

/** Which loader backs a reader returned by model::open. */
enum class OpenMode
{
    Copy, ///< PhaseModel::load: owned copies, no file-lifetime coupling
    Mmap, ///< PhaseModelView::open: mmap + alias (read fallback inside)
    Auto, ///< currently Mmap — the view degrades gracefully everywhere
};

/** Knobs for model::open. */
struct OpenOptions
{
    OpenMode mode = OpenMode::Auto;
};

/**
 * Open a model file behind the unified interface. Throws ModelError on
 * any I/O or format violation — identical failures (and messages, modulo
 * the loader-name prefix) on every mode.
 */
[[nodiscard]] std::unique_ptr<ModelReader>
open(const std::string &path, const OpenOptions &opts = {});

/** Wrap an already-built in-memory model (takes ownership). */
[[nodiscard]] std::unique_ptr<ModelReader> makeReader(PhaseModel m);

/** Wrap an already-opened zero-copy view (takes ownership). */
[[nodiscard]] std::unique_ptr<ModelReader> makeReader(PhaseModelView view);

} // namespace mica::model

#endif // MICAPHASE_MODEL_READER_HH
