#include "model/reader.hh"

#include <utility>

#include "obs/trace.hh"
#include "stats/distance.hh"

namespace mica::model {

stats::ProjectionSpec
ModelReader::projectionSpec() const
{
    const PhaseModel &m = meta();
    stats::ProjectionSpec spec;
    spec.normalize_input = m.normalize_input;
    spec.mean = m.norm_mean;
    spec.stddev = m.norm_stddev;
    spec.loadings = loadings();
    spec.rescale_sd = m.rescale_sd;
    spec.centers = centers();
    return spec;
}

Projection
ModelReader::placeBatch(const stats::Matrix &rows,
                        const stats::ProjectOptions &opts) const
{
    const obs::Span span("model.place_batch", "model");
    const obs::GaugeTimer timer("model.batch_seconds");
    if (rows.cols() != columns())
        throw ModelError(
            "ModelReader::placeBatch: input has " +
            std::to_string(rows.cols()) + " columns, model expects " +
            std::to_string(columns()));

    stats::ProjectedRows projected =
        stats::projectRows(projectionSpec(), rows.view(), opts);
    Projection out;
    out.reduced = std::move(projected.reduced);
    out.assignment = std::move(projected.assignment);
    out.dist2 = std::move(projected.dist2);
    obs::count("model.rows_projected", static_cast<double>(rows.rows()));
    return out;
}

IntervalPlacement
ModelReader::projectInterval(std::span<const double> values) const
{
    stats::Matrix one(0, 0);
    one.appendRow(values);
    // One row through the batch kernel places it exactly like any row of
    // a batch; the extra nearestCenter scan only adds the runner-up
    // distance (the same exact kernel, so dist2 agrees bitwise).
    const Projection projection = placeBatch(one);
    IntervalPlacement out;
    const auto row = projection.reduced.row(0);
    out.reduced.assign(row.begin(), row.end());
    const stats::NearestCenter nearest =
        stats::nearestCenter(row, centers());
    out.cluster = nearest.index;
    out.dist2 = nearest.dist2;
    out.second_dist2 = nearest.second_dist2;
    return out;
}

namespace {

/** Reader over an owned PhaseModel aggregate (the copying loader). */
class CopyReader final : public ModelReader
{
  public:
    explicit CopyReader(PhaseModel m) : model_(std::move(m)) {}

    [[nodiscard]] const PhaseModel &meta() const override { return model_; }
    [[nodiscard]] stats::MatrixView loadings() const override
    {
        return model_.loadings.view();
    }
    [[nodiscard]] stats::MatrixView centers() const override
    {
        return model_.centers.view();
    }
    [[nodiscard]] stats::MatrixView prominentRaw() const override
    {
        return model_.prominent_raw.view();
    }
    [[nodiscard]] bool zeroCopy() const override { return false; }

  private:
    PhaseModel model_;
};

/** Reader over the mmap-backed zero-copy view. */
class ViewReader final : public ModelReader
{
  public:
    explicit ViewReader(PhaseModelView view) : view_(std::move(view)) {}

    [[nodiscard]] const PhaseModel &meta() const override
    {
        return view_.meta();
    }
    [[nodiscard]] stats::MatrixView loadings() const override
    {
        return view_.loadings();
    }
    [[nodiscard]] stats::MatrixView centers() const override
    {
        return view_.centers();
    }
    [[nodiscard]] stats::MatrixView prominentRaw() const override
    {
        return view_.prominentRaw();
    }
    [[nodiscard]] bool zeroCopy() const override
    {
        return view_.zeroCopy();
    }

  private:
    PhaseModelView view_;
};

} // namespace

std::unique_ptr<ModelReader>
open(const std::string &path, const OpenOptions &opts)
{
    if (opts.mode == OpenMode::Copy)
        return std::make_unique<CopyReader>(PhaseModel::load(path));
    return std::make_unique<ViewReader>(PhaseModelView::open(path));
}

std::unique_ptr<ModelReader>
makeReader(PhaseModel m)
{
    return std::make_unique<CopyReader>(std::move(m));
}

std::unique_ptr<ModelReader>
makeReader(PhaseModelView view)
{
    return std::make_unique<ViewReader>(std::move(view));
}

} // namespace mica::model
