/**
 * @file
 * Vectorized inner kernels for the statistics substrate, with one-time
 * runtime dispatch and a scalar fallback that is the determinism oracle.
 *
 * Every hot loop in the system — Lloyd assignment, Hamerly bound
 * maintenance, k-means++ seeding, the fused serving projection, model
 * update ingest — bottoms out in four primitive kernels:
 *
 *   - squaredDistance(a, b, n)             Σ (a[i]-b[i])²
 *   - sumSquares(a, n)                     Σ a[i]²            (row norms)
 *   - axpy(a, x, y, n)                     y[i] += a·x[i]
 *   - normalize / rescale                  guarded elementwise z-scoring
 *   - nearestCenterScan(point, centers)    argmin + runner-up distances
 *
 * ## Determinism contract
 *
 * The repo's global guarantee — results are bitwise invariant to thread
 * count, block size, load path, *and now SIMD level* — is preserved by
 * construction, not by tolerance:
 *
 * 1. **Elementwise kernels are trivially identical.** axpy, normalize and
 *    rescale perform one independent mul/add (or sub/div + compare) per
 *    element; lane width cannot change any rounding, so the vector paths
 *    are bitwise equal to the scalar path for free.
 *
 * 2. **Reductions use a fixed virtual-lane order.** squaredDistance and
 *    sumSquares accumulate into `kVirtualLanes` (= 8) independent
 *    partial sums — lane L takes elements L, L+8, L+16, … all the way to
 *    n, so the final partial group lands in lanes 0..(n mod 8)−1 and the
 *    remaining lanes simply receive one fewer term — then combine them
 *    in one fixed tree: bᵢ = accᵢ + accᵢ₊₄ (i = 0..3), then
 *    (b₀+b₂) + (b₁+b₃). The scalar fallback implements exactly this
 *    schedule, AVX2 holds the 8 lanes in two 4-wide registers (retiring
 *    the partial group with a masked load) whose combine steps are the
 *    same tree, and NEON holds them in four 2-wide registers (retiring
 *    it via a zero-padded copy) likewise. A disabled/padded lane adds
 *    +0.0 to its accumulator, which cannot change any bit: every term
 *    d·d or a·a is non-negative (d = ±0 squares to +0.0), so no partial
 *    sum is ever −0.0 and x + (+0.0) ≡ x. Since every per-element
 *    operation and every combine is an IEEE-754 basic operation executed
 *    in the same order, all paths agree bitwise.
 *
 * 3. **No fused multiply-add.** simd.cc is compiled with
 *    -ffp-contract=off so the compiler cannot contract a·b+c chains into
 *    FMA in one path but not another; the intrinsics use explicit
 *    mul/add for the same reason.
 *
 * The scalar path (`Level::Scalar`) is the oracle: the parity suite
 * (tests/test_simd.cc) checks the vector paths bitwise against it across
 * odd shapes, and CI pins a whole build to it via -DMICA_SIMD=OFF so the
 * fallback cannot rot.
 *
 * ## Dispatch rules
 *
 * The level is resolved once, on first kernel use:
 *
 *   1. If the build was configured with -DMICA_SIMD=OFF, only Scalar
 *      exists (the vector backends are compiled out).
 *   2. Else if the MICA_SIMD environment variable names a level —
 *      "off"/"scalar", "avx2", "neon", or "auto" — that level is used
 *      when supported (an unsupported or unknown request falls back to
 *      the best supported level, with a one-time stderr note).
 *   3. Else the best level the CPU supports wins: AVX2 on x86-64 when
 *      __builtin_cpu_supports("avx2") says so, NEON on AArch64 (baseline
 *      there), Scalar otherwise.
 *
 * `setLevel` overrides the resolution at runtime (tests and the bench
 * harness use it to measure scalar-vs-vector on the same host). It is
 * not thread-safe against in-flight kernels; call it only from quiescent
 * single-threaded phases, the way the parity tests do.
 */

#ifndef MICAPHASE_STATS_SIMD_HH
#define MICAPHASE_STATS_SIMD_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <string_view>

namespace mica::stats::simd {

/** Number of independent accumulator lanes in the fixed reduction order
 *  (see the file comment); identical for every backend. */
inline constexpr std::size_t kVirtualLanes = 8;

/** Instruction-set levels the dispatcher can select. */
enum class Level
{
    Scalar = 0, ///< portable fallback — the determinism oracle
    Avx2 = 1,   ///< x86-64 AVX2 (4 doubles per register)
    Neon = 2,   ///< AArch64 Advanced SIMD (2 doubles per register)
};

/** Stable lowercase name ("scalar", "avx2", "neon"). */
[[nodiscard]] std::string_view levelName(Level level);

/** Parse a MICA_SIMD-style name; "off" is an alias for scalar. */
[[nodiscard]] std::optional<Level> parseLevelName(std::string_view name);

/** False when the build was configured with -DMICA_SIMD=OFF. */
[[nodiscard]] bool compiledWithSimd();

/** True when this binary has the backend AND the CPU supports it. */
[[nodiscard]] bool levelSupported(Level level);

/** Best supported level on this host (what "auto" resolves to). */
[[nodiscard]] Level bestSupportedLevel();

/** The level kernels currently dispatch to (resolving it on first use). */
[[nodiscard]] Level activeLevel();

/**
 * Force the dispatch level. Returns false (and changes nothing) when the
 * level is not supported. Only call from single-threaded code.
 */
bool setLevel(Level level);

/** Result of a nearest-center scan (mirrors stats::NearestCenter). */
struct ScanHit
{
    std::size_t index = 0;
    double dist2 = std::numeric_limits<double>::max();
    double second_dist2 = std::numeric_limits<double>::max();
};

/** Σ (a[i]-b[i])² in the fixed virtual-lane reduction order. */
[[nodiscard]] double squaredDistance(const double *a, const double *b,
                                     std::size_t n);

/** Σ a[i]² in the fixed virtual-lane reduction order. */
[[nodiscard]] double sumSquares(const double *a, std::size_t n);

/** y[i] += a·x[i], elementwise (no reduction). */
void axpy(double a, const double *x, double *y, std::size_t n);

/**
 * dst[i] = sd[i] > eps ? (src[i] - mean[i]) / sd[i] : 0.0, elementwise.
 * `dst` may not alias `mean`/`sd`; `dst == src` is allowed.
 */
void normalize(const double *src, const double *mean, const double *sd,
               double *dst, std::size_t n, double eps);

/** v[i] = sd[i] > eps ? v[i] / sd[i] : 0.0, elementwise, in place. */
void rescale(double *v, const double *sd, std::size_t n, double eps);

/**
 * The fused projectOneRow body as one dispatched kernel (a single
 * dispatch per row instead of one per stage call):
 *
 *   1. when `normalize_input`, z-score `src` into `scratch` (size p,
 *      caller-provided) with the normalize() guard and use that as the
 *      coefficient vector, else use `src` directly;
 *   2. accumulate coefficient-weighted loading rows into `dst` (size m,
 *      pre-zeroed) in ascending-k order, skipping exact-zero
 *      coefficients (Matrix::multiply's zero-skip, bit for bit);
 *   3. rescale `dst` in place with the rescale() guard.
 *
 * `loadings` is p x m row-major. Every stage is elementwise, so all
 * backends agree bitwise (see the file comment).
 */
void projectRow(const double *src, const double *mean, const double *sd,
                bool normalize_input, double *scratch,
                const double *loadings, std::size_t p, std::size_t m,
                double *dst, const double *rescale_sd, double eps);

/**
 * Index-order strict-`<` scan of `point` against k row-major centers of
 * width m: exact argmin (lowest index wins ties) plus the runner-up
 * distance. When `cached_index < k`, the distance to that center is
 * substituted from `cached_dist2` instead of recomputed — the caller
 * guarantees it equals what the scan would produce (squaredDistance is
 * deterministic, so a previously computed value always does).
 */
[[nodiscard]] ScanHit
nearestCenterScan(const double *point, const double *centers, std::size_t k,
                  std::size_t m,
                  std::size_t cached_index = static_cast<std::size_t>(-1),
                  double cached_dist2 = 0.0);

/**
 * out[i] = squaredDistance(point, rows + ids[i]*m, m) for i in [0, count):
 * a gather-style batch over scattered rows of a row-major table. Each
 * pair goes through the exact same per-pair kernel as squaredDistance —
 * bitwise identical results — but the dispatch is resolved once for the
 * whole batch and upcoming rows are prefetched, which is what the ANN
 * graph search needs: its candidates are cache-scattered, so per-call
 * overhead and miss latency, not arithmetic, dominate a naive loop.
 */
void batchSquaredDistance(const double *point, const double *rows,
                          std::size_t m, const std::uint32_t *ids,
                          std::size_t count, double *out);

} // namespace mica::stats::simd

#endif // MICAPHASE_STATS_SIMD_HH
