/**
 * @file
 * Kernel backends and runtime dispatch for stats/simd.hh.
 *
 * This translation unit is compiled with -ffp-contract=off (see
 * src/stats/CMakeLists.txt) so neither the scalar fallback nor any
 * vector backend can pick up fused multiply-adds the other paths lack —
 * the bitwise-identity argument in simd.hh depends on every path doing
 * plain IEEE-754 mul/add in the documented order.
 *
 * Backend inventory:
 *   - Scalar: always compiled; implements the virtual-lane reduction
 *     order directly and serves as the oracle for the parity tests.
 *   - AVX2: compiled on x86-64 via per-function target("avx2")
 *     attributes (no global -mavx2 needed), selected at runtime when
 *     __builtin_cpu_supports("avx2") holds.
 *   - NEON: compiled on AArch64 (Advanced SIMD is baseline there).
 *
 * -DMICA_SIMD=OFF defines MICA_SIMD_DISABLED, which compiles out both
 * vector backends so the whole binary runs the scalar oracle.
 */

#include "stats/simd.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#if defined(__x86_64__) && !defined(MICA_SIMD_DISABLED)
#define MICA_SIMD_HAVE_AVX2 1
#include <immintrin.h>
#endif

#if defined(__aarch64__) && !defined(MICA_SIMD_DISABLED)
#define MICA_SIMD_HAVE_NEON 1
#include <arm_neon.h>
#endif

namespace mica::stats::simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar backend: the determinism oracle. The reductions spell out the
// virtual-lane schedule the vector backends must reproduce.
// ---------------------------------------------------------------------------

double
squaredDistanceScalar(const double *a, const double *b, std::size_t n)
{
    double acc[kVirtualLanes] = {};
    std::size_t i = 0;
    for (; i + kVirtualLanes <= n; i += kVirtualLanes) {
        for (std::size_t l = 0; l < kVirtualLanes; ++l) {
            const double d = a[i + l] - b[i + l];
            acc[l] += d * d;
        }
    }
    // The final partial group folds into the lanes too (element i lands
    // in lane i mod 8): the vector backends can then retire it with one
    // masked/padded vector step instead of a serial scalar chain, and
    // adding +0.0 for the absent lanes is a bitwise no-op because every
    // term d*d is non-negative (see the simd.hh file comment).
    for (; i < n; ++i) {
        const double d = a[i] - b[i];
        acc[i % kVirtualLanes] += d * d;
    }
    const double b0 = acc[0] + acc[4];
    const double b1 = acc[1] + acc[5];
    const double b2 = acc[2] + acc[6];
    const double b3 = acc[3] + acc[7];
    return (b0 + b2) + (b1 + b3);
}

double
sumSquaresScalar(const double *a, std::size_t n)
{
    double acc[kVirtualLanes] = {};
    std::size_t i = 0;
    for (; i + kVirtualLanes <= n; i += kVirtualLanes) {
        for (std::size_t l = 0; l < kVirtualLanes; ++l) {
            const double v = a[i + l];
            acc[l] += v * v;
        }
    }
    for (; i < n; ++i)
        acc[i % kVirtualLanes] += a[i] * a[i];
    const double b0 = acc[0] + acc[4];
    const double b1 = acc[1] + acc[5];
    const double b2 = acc[2] + acc[6];
    const double b3 = acc[3] + acc[7];
    return (b0 + b2) + (b1 + b3);
}

void
axpyScalar(double a, const double *x, double *y, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i] += a * x[i];
}

void
normalizeScalar(const double *src, const double *mean, const double *sd,
                double *dst, std::size_t n, double eps)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = sd[i] > eps ? (src[i] - mean[i]) / sd[i] : 0.0;
}

void
rescaleScalar(double *v, const double *sd, std::size_t n, double eps)
{
    for (std::size_t i = 0; i < n; ++i)
        v[i] = sd[i] > eps ? v[i] / sd[i] : 0.0;
}

/**
 * Shared fused-projection skeleton (simd.hh projectRow): the zero-skip
 * coefficient loop and the stage order are identical across backends;
 * only the stage kernels differ. Non-type template parameters keep the
 * per-coefficient axpy call direct — a dispatched call per stage would
 * cost p+2 indirect calls per row where one suffices.
 */
template <void (*Norm)(const double *, const double *, const double *,
                       double *, std::size_t, double),
          void (*Axpy)(double, const double *, double *, std::size_t),
          void (*Rescale)(double *, const double *, std::size_t, double)>
void
projectRowImpl(const double *src, const double *mean, const double *sd,
               bool normalize_input, double *scratch, const double *loadings,
               std::size_t p, std::size_t m, double *dst,
               const double *rescale_sd, double eps)
{
    const double *a = src;
    if (normalize_input) {
        Norm(src, mean, sd, scratch, p, eps);
        a = scratch;
    }
    for (std::size_t k = 0; k < p; ++k) {
        if (a[k] == 0.0)
            continue; // sparse coefficients: skip exact zeros bit-for-bit
        Axpy(a[k], loadings + k * m, dst, m);
    }
    Rescale(dst, rescale_sd, m, eps);
}

/**
 * Shared scan skeleton: the center loop, tie-breaking, runner-up
 * tracking, and cached-distance substitution are identical across
 * backends; only the per-center distance kernel differs. The non-type
 * template parameter keeps the distance call direct (no per-center
 * indirect call through the dispatch table).
 */
template <double (*Dist)(const double *, const double *, std::size_t)>
ScanHit
scanImpl(const double *point, const double *centers, std::size_t k,
         std::size_t m, std::size_t cached_index, double cached_dist2)
{
    ScanHit out;
    for (std::size_t c = 0; c < k; ++c) {
        const double dist = c == cached_index
            ? cached_dist2
            : Dist(point, centers + c * m, m);
        if (dist < out.dist2) {
            out.second_dist2 = out.dist2;
            out.dist2 = dist;
            out.index = c;
        } else if (dist < out.second_dist2) {
            out.second_dist2 = dist;
        }
    }
    return out;
}

/**
 * Shared gather-batch skeleton (simd.hh batchSquaredDistance): the
 * per-pair distance call is direct via the template parameter — one
 * dispatch per batch instead of one per pair — and the row `kAhead`
 * ids ahead is prefetched each iteration so the cache-scattered rows
 * the ANN graph search produces overlap their miss latency with the
 * current pair's arithmetic instead of serializing on it.
 */
template <double (*Dist)(const double *, const double *, std::size_t),
          std::size_t M = 0>
void
batchLoop(const double *point, const double *rows, std::size_t m,
          const std::uint32_t *ids, std::size_t count, double *out)
{
    if constexpr (M != 0)
        m = M; // compile-time width: Dist's loop unrolls, tail folds away
    constexpr std::size_t kAhead = 8;
    for (std::size_t i = 0; i < count; ++i) {
        if (i + kAhead < count) {
            // Whole row, not just its first cache line: one line holds
            // only 8 doubles, so wider rows need a prefetch per line.
            const double *next =
                rows + static_cast<std::size_t>(ids[i + kAhead]) * m;
            for (std::size_t o = 0; o < m; o += 8)
                __builtin_prefetch(next + o);
        }
        out[i] =
            Dist(point, rows + static_cast<std::size_t>(ids[i]) * m, m);
    }
}

template <double (*Dist)(const double *, const double *, std::size_t)>
void
batchImpl(const double *point, const double *rows, std::size_t m,
          const std::uint32_t *ids, std::size_t count, double *out)
{
    // Steer the common serving widths through fixed-size instantiations:
    // with m a compile-time constant the per-pair kernel's loop unrolls
    // and its tail test disappears, and because it is the SAME function
    // with the same schedule the results stay bitwise identical.
    switch (m) {
    case 8:
        return batchLoop<Dist, 8>(point, rows, m, ids, count, out);
    case 16:
        return batchLoop<Dist, 16>(point, rows, m, ids, count, out);
    default:
        return batchLoop<Dist>(point, rows, m, ids, count, out);
    }
}

// ---------------------------------------------------------------------------
// AVX2 backend: 8 virtual lanes live in two 4-wide registers; the
// combine tree (b_i = acc_i + acc_{i+4}, then (b0+b2)+(b1+b3)) is the
// scalar schedule verbatim. All loads are unaligned so mmap-aliased
// matrices (8-byte aligned) work; owned matrices are 64-byte aligned
// anyway and take the fast aligned-address path in hardware.
// ---------------------------------------------------------------------------

#ifdef MICA_SIMD_HAVE_AVX2

__attribute__((target("avx2"))) inline double
horizontalSumAvx2(__m256d acc0, __m256d acc1)
{
    const __m256d s = _mm256_add_pd(acc0, acc1);       // {b0, b1, b2, b3}
    const __m128d lo = _mm256_castpd256_pd128(s);      // {b0, b1}
    const __m128d hi = _mm256_extractf128_pd(s, 1);    // {b2, b3}
    const __m128d t = _mm_add_pd(lo, hi);              // {b0+b2, b1+b3}
    const __m128d swapped = _mm_unpackhi_pd(t, t);     // {b1+b3, b1+b3}
    return _mm_cvtsd_f64(_mm_add_sd(t, swapped));      // (b0+b2)+(b1+b3)
}

/**
 * Lane-enable masks for the final partial group: kTailMaskSrc + 4 - j
 * reads a 4-lane mask whose first j lanes are set. VMASKMOVPD loads 0.0
 * in disabled lanes and never touches their memory, so the tail costs
 * one vector step with no out-of-bounds access; the 0.0 lanes then
 * contribute +0.0 to their accumulators, which is a bitwise no-op for
 * the non-negative terms these reductions sum (simd.hh file comment).
 */
alignas(64) constexpr long long kTailMaskSrc[8] = {-1, -1, -1, -1,
                                                   0,  0,  0,  0};

__attribute__((target("avx2"))) inline __m256i
tailMaskAvx2(std::size_t active)
{
    return _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(kTailMaskSrc + 4 - active));
}

__attribute__((target("avx2"))) double
squaredDistanceAvx2(const double *a, const double *b, std::size_t n)
{
    __m256d acc0 = _mm256_setzero_pd(); // lanes 0..3
    __m256d acc1 = _mm256_setzero_pd(); // lanes 4..7
    std::size_t i = 0;
    for (; i + kVirtualLanes <= n; i += kVirtualLanes) {
        const __m256d d0 =
            _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
        const __m256d d1 = _mm256_sub_pd(_mm256_loadu_pd(a + i + 4),
                                         _mm256_loadu_pd(b + i + 4));
        acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(d0, d0));
        acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(d1, d1));
    }
    if (i < n) {
        const std::size_t r = n - i; // 1..7
        const __m256i m0 = tailMaskAvx2(r < 4 ? r : 4);
        const __m256i m1 = tailMaskAvx2(r < 4 ? 0 : r - 4);
        const __m256d d0 = _mm256_sub_pd(_mm256_maskload_pd(a + i, m0),
                                         _mm256_maskload_pd(b + i, m0));
        const __m256d d1 = _mm256_sub_pd(_mm256_maskload_pd(a + i + 4, m1),
                                         _mm256_maskload_pd(b + i + 4, m1));
        acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(d0, d0));
        acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(d1, d1));
    }
    return horizontalSumAvx2(acc0, acc1);
}

__attribute__((target("avx2"))) double
sumSquaresAvx2(const double *a, std::size_t n)
{
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + kVirtualLanes <= n; i += kVirtualLanes) {
        const __m256d v0 = _mm256_loadu_pd(a + i);
        const __m256d v1 = _mm256_loadu_pd(a + i + 4);
        acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(v0, v0));
        acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(v1, v1));
    }
    if (i < n) {
        const std::size_t r = n - i;
        const __m256i m0 = tailMaskAvx2(r < 4 ? r : 4);
        const __m256i m1 = tailMaskAvx2(r < 4 ? 0 : r - 4);
        const __m256d v0 = _mm256_maskload_pd(a + i, m0);
        const __m256d v1 = _mm256_maskload_pd(a + i + 4, m1);
        acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(v0, v0));
        acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(v1, v1));
    }
    return horizontalSumAvx2(acc0, acc1);
}

__attribute__((target("avx2"))) void
axpyAvx2(double a, const double *x, double *y, std::size_t n)
{
    const __m256d va = _mm256_set1_pd(a);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(x + i));
        _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
    }
    for (; i < n; ++i)
        y[i] += a * x[i];
}

__attribute__((target("avx2"))) void
normalizeAvx2(const double *src, const double *mean, const double *sd,
              double *dst, std::size_t n, double eps)
{
    const __m256d veps = _mm256_set1_pd(eps);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d vsd = _mm256_loadu_pd(sd + i);
        // sd > eps per lane; dead lanes (possible Inf/NaN from the
        // division) are masked to +0.0, matching the scalar branch.
        const __m256d keep = _mm256_cmp_pd(vsd, veps, _CMP_GT_OQ);
        const __m256d num = _mm256_sub_pd(_mm256_loadu_pd(src + i),
                                          _mm256_loadu_pd(mean + i));
        const __m256d q = _mm256_div_pd(num, vsd);
        _mm256_storeu_pd(dst + i, _mm256_and_pd(q, keep));
    }
    for (; i < n; ++i)
        dst[i] = sd[i] > eps ? (src[i] - mean[i]) / sd[i] : 0.0;
}

__attribute__((target("avx2"))) void
rescaleAvx2(double *v, const double *sd, std::size_t n, double eps)
{
    const __m256d veps = _mm256_set1_pd(eps);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d vsd = _mm256_loadu_pd(sd + i);
        const __m256d keep = _mm256_cmp_pd(vsd, veps, _CMP_GT_OQ);
        const __m256d q = _mm256_div_pd(_mm256_loadu_pd(v + i), vsd);
        _mm256_storeu_pd(v + i, _mm256_and_pd(q, keep));
    }
    for (; i < n; ++i)
        v[i] = sd[i] > eps ? v[i] / sd[i] : 0.0;
}

/**
 * target("avx2") wrappers around the shared skeletons: a caller whose
 * target set includes the callees' lets the compiler inline the whole
 * chain (skeleton -> stage kernels), so the scan's per-center distance
 * and the fused projection's per-coefficient axpy compile into the loop
 * instead of paying a call each. flatten makes the inlining reliable —
 * the stage kernels' addresses are also taken by the dispatch table,
 * which otherwise tips the inliner's heuristics toward keeping calls.
 */
__attribute__((target("avx2"), flatten)) ScanHit
scanAvx2(const double *point, const double *centers, std::size_t k,
         std::size_t m, std::size_t cached_index, double cached_dist2)
{
    return scanImpl<squaredDistanceAvx2>(point, centers, k, m, cached_index,
                                         cached_dist2);
}

__attribute__((target("avx2"), flatten)) void
projectRowAvx2(const double *src, const double *mean, const double *sd,
               bool normalize_input, double *scratch, const double *loadings,
               std::size_t p, std::size_t m, double *dst,
               const double *rescale_sd, double eps)
{
    projectRowImpl<normalizeAvx2, axpyAvx2, rescaleAvx2>(
        src, mean, sd, normalize_input, scratch, loadings, p, m, dst,
        rescale_sd, eps);
}

__attribute__((target("avx2"), flatten)) void
batchAvx2(const double *point, const double *rows, std::size_t m,
          const std::uint32_t *ids, std::size_t count, double *out)
{
    batchImpl<squaredDistanceAvx2>(point, rows, m, ids, count, out);
}

#endif // MICA_SIMD_HAVE_AVX2

// ---------------------------------------------------------------------------
// NEON backend: 8 virtual lanes live in four 2-wide registers
// acc01/acc23/acc45/acc67; combining acc01+acc45 and acc23+acc67 yields
// {b0,b1} and {b2,b3}, and their sum is {b0+b2, b1+b3} — again the
// scalar schedule verbatim. Explicit vmul+vadd (never vfma) keeps the
// arithmetic contraction-free.
// ---------------------------------------------------------------------------

#ifdef MICA_SIMD_HAVE_NEON

inline double
horizontalSumNeon(float64x2_t acc01, float64x2_t acc23, float64x2_t acc45,
                  float64x2_t acc67)
{
    const float64x2_t s0 = vaddq_f64(acc01, acc45); // {b0, b1}
    const float64x2_t s1 = vaddq_f64(acc23, acc67); // {b2, b3}
    const float64x2_t t = vaddq_f64(s0, s1);        // {b0+b2, b1+b3}
    return vgetq_lane_f64(t, 0) + vgetq_lane_f64(t, 1);
}

double
squaredDistanceNeon(const double *a, const double *b, std::size_t n)
{
    float64x2_t acc01 = vdupq_n_f64(0.0);
    float64x2_t acc23 = vdupq_n_f64(0.0);
    float64x2_t acc45 = vdupq_n_f64(0.0);
    float64x2_t acc67 = vdupq_n_f64(0.0);
    std::size_t i = 0;
    for (; i + kVirtualLanes <= n; i += kVirtualLanes) {
        const float64x2_t d0 = vsubq_f64(vld1q_f64(a + i), vld1q_f64(b + i));
        const float64x2_t d1 =
            vsubq_f64(vld1q_f64(a + i + 2), vld1q_f64(b + i + 2));
        const float64x2_t d2 =
            vsubq_f64(vld1q_f64(a + i + 4), vld1q_f64(b + i + 4));
        const float64x2_t d3 =
            vsubq_f64(vld1q_f64(a + i + 6), vld1q_f64(b + i + 6));
        acc01 = vaddq_f64(acc01, vmulq_f64(d0, d0));
        acc23 = vaddq_f64(acc23, vmulq_f64(d1, d1));
        acc45 = vaddq_f64(acc45, vmulq_f64(d2, d2));
        acc67 = vaddq_f64(acc67, vmulq_f64(d3, d3));
    }
    if (i < n) {
        // Zero-padded copy of the final partial group: the pad lanes
        // produce d = 0.0 and contribute +0.0 to their accumulators,
        // a bitwise no-op for these non-negative terms (simd.hh).
        double pa[kVirtualLanes] = {};
        double pb[kVirtualLanes] = {};
        for (std::size_t t = 0; i + t < n; ++t) {
            pa[t] = a[i + t];
            pb[t] = b[i + t];
        }
        const float64x2_t d0 = vsubq_f64(vld1q_f64(pa), vld1q_f64(pb));
        const float64x2_t d1 =
            vsubq_f64(vld1q_f64(pa + 2), vld1q_f64(pb + 2));
        const float64x2_t d2 =
            vsubq_f64(vld1q_f64(pa + 4), vld1q_f64(pb + 4));
        const float64x2_t d3 =
            vsubq_f64(vld1q_f64(pa + 6), vld1q_f64(pb + 6));
        acc01 = vaddq_f64(acc01, vmulq_f64(d0, d0));
        acc23 = vaddq_f64(acc23, vmulq_f64(d1, d1));
        acc45 = vaddq_f64(acc45, vmulq_f64(d2, d2));
        acc67 = vaddq_f64(acc67, vmulq_f64(d3, d3));
    }
    return horizontalSumNeon(acc01, acc23, acc45, acc67);
}

double
sumSquaresNeon(const double *a, std::size_t n)
{
    float64x2_t acc01 = vdupq_n_f64(0.0);
    float64x2_t acc23 = vdupq_n_f64(0.0);
    float64x2_t acc45 = vdupq_n_f64(0.0);
    float64x2_t acc67 = vdupq_n_f64(0.0);
    std::size_t i = 0;
    for (; i + kVirtualLanes <= n; i += kVirtualLanes) {
        const float64x2_t v0 = vld1q_f64(a + i);
        const float64x2_t v1 = vld1q_f64(a + i + 2);
        const float64x2_t v2 = vld1q_f64(a + i + 4);
        const float64x2_t v3 = vld1q_f64(a + i + 6);
        acc01 = vaddq_f64(acc01, vmulq_f64(v0, v0));
        acc23 = vaddq_f64(acc23, vmulq_f64(v1, v1));
        acc45 = vaddq_f64(acc45, vmulq_f64(v2, v2));
        acc67 = vaddq_f64(acc67, vmulq_f64(v3, v3));
    }
    if (i < n) {
        double pa[kVirtualLanes] = {};
        for (std::size_t t = 0; i + t < n; ++t)
            pa[t] = a[i + t];
        const float64x2_t v0 = vld1q_f64(pa);
        const float64x2_t v1 = vld1q_f64(pa + 2);
        const float64x2_t v2 = vld1q_f64(pa + 4);
        const float64x2_t v3 = vld1q_f64(pa + 6);
        acc01 = vaddq_f64(acc01, vmulq_f64(v0, v0));
        acc23 = vaddq_f64(acc23, vmulq_f64(v1, v1));
        acc45 = vaddq_f64(acc45, vmulq_f64(v2, v2));
        acc67 = vaddq_f64(acc67, vmulq_f64(v3, v3));
    }
    return horizontalSumNeon(acc01, acc23, acc45, acc67);
}

void
axpyNeon(double a, const double *x, double *y, std::size_t n)
{
    const float64x2_t va = vdupq_n_f64(a);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const float64x2_t prod = vmulq_f64(va, vld1q_f64(x + i));
        vst1q_f64(y + i, vaddq_f64(vld1q_f64(y + i), prod));
    }
    for (; i < n; ++i)
        y[i] += a * x[i];
}

void
normalizeNeon(const double *src, const double *mean, const double *sd,
              double *dst, std::size_t n, double eps)
{
    const float64x2_t veps = vdupq_n_f64(eps);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const float64x2_t vsd = vld1q_f64(sd + i);
        const uint64x2_t keep = vcgtq_f64(vsd, veps);
        const float64x2_t num =
            vsubq_f64(vld1q_f64(src + i), vld1q_f64(mean + i));
        const float64x2_t q = vdivq_f64(num, vsd);
        const float64x2_t masked = vreinterpretq_f64_u64(
            vandq_u64(vreinterpretq_u64_f64(q), keep));
        vst1q_f64(dst + i, masked);
    }
    for (; i < n; ++i)
        dst[i] = sd[i] > eps ? (src[i] - mean[i]) / sd[i] : 0.0;
}

void
rescaleNeon(double *v, const double *sd, std::size_t n, double eps)
{
    const float64x2_t veps = vdupq_n_f64(eps);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const float64x2_t vsd = vld1q_f64(sd + i);
        const uint64x2_t keep = vcgtq_f64(vsd, veps);
        const float64x2_t q = vdivq_f64(vld1q_f64(v + i), vsd);
        const float64x2_t masked = vreinterpretq_f64_u64(
            vandq_u64(vreinterpretq_u64_f64(q), keep));
        vst1q_f64(v + i, masked);
    }
    for (; i < n; ++i)
        v[i] = sd[i] > eps ? v[i] / sd[i] : 0.0;
}

#endif // MICA_SIMD_HAVE_NEON

// ---------------------------------------------------------------------------
// Dispatch tables and resolution.
// ---------------------------------------------------------------------------

struct KernelTable
{
    Level level;
    double (*squared_distance)(const double *, const double *, std::size_t);
    double (*sum_squares)(const double *, std::size_t);
    void (*axpy)(double, const double *, double *, std::size_t);
    void (*normalize)(const double *, const double *, const double *,
                      double *, std::size_t, double);
    void (*rescale)(double *, const double *, std::size_t, double);
    void (*project_row)(const double *, const double *, const double *, bool,
                        double *, const double *, std::size_t, std::size_t,
                        double *, const double *, double);
    ScanHit (*scan)(const double *, const double *, std::size_t, std::size_t,
                    std::size_t, double);
    void (*batch)(const double *, const double *, std::size_t,
                  const std::uint32_t *, std::size_t, double *);
};

constexpr KernelTable kScalarTable = {
    Level::Scalar,        squaredDistanceScalar,
    sumSquaresScalar,     axpyScalar,
    normalizeScalar,      rescaleScalar,
    projectRowImpl<normalizeScalar, axpyScalar, rescaleScalar>,
    scanImpl<squaredDistanceScalar>,
    batchImpl<squaredDistanceScalar>,
};

#ifdef MICA_SIMD_HAVE_AVX2
constexpr KernelTable kAvx2Table = {
    Level::Avx2,        squaredDistanceAvx2,
    sumSquaresAvx2,     axpyAvx2,
    normalizeAvx2,      rescaleAvx2,
    projectRowAvx2,     scanAvx2,
    batchAvx2,
};
#endif

#ifdef MICA_SIMD_HAVE_NEON
constexpr KernelTable kNeonTable = {
    Level::Neon,        squaredDistanceNeon,
    sumSquaresNeon,     axpyNeon,
    normalizeNeon,      rescaleNeon,
    projectRowImpl<normalizeNeon, axpyNeon, rescaleNeon>,
    scanImpl<squaredDistanceNeon>,
    batchImpl<squaredDistanceNeon>,
};
#endif

const KernelTable *
tableFor(Level level)
{
    switch (level) {
    case Level::Scalar:
        return &kScalarTable;
    case Level::Avx2:
#ifdef MICA_SIMD_HAVE_AVX2
        return &kAvx2Table;
#else
        return nullptr;
#endif
    case Level::Neon:
#ifdef MICA_SIMD_HAVE_NEON
        return &kNeonTable;
#else
        return nullptr;
#endif
    }
    return nullptr;
}

/** Resolve MICA_SIMD + CPU support once (magic-static in table()). */
const KernelTable *
resolveInitial()
{
    Level level = bestSupportedLevel();
    const char *env = std::getenv("MICA_SIMD");
    if (env != nullptr && *env != '\0') {
        const std::optional<Level> requested = parseLevelName(env);
        if (!requested.has_value()) {
            std::fprintf(stderr,
                         "mica: MICA_SIMD=%s not recognized; using %s\n", env,
                         levelName(level).data());
        } else if (!levelSupported(*requested)) {
            std::fprintf(stderr,
                         "mica: MICA_SIMD=%s not supported here; using %s\n",
                         env, levelName(level).data());
        } else {
            level = *requested;
        }
    }
    return tableFor(level);
}

std::atomic<const KernelTable *> g_table{nullptr};

const KernelTable &
table()
{
    const KernelTable *t = g_table.load(std::memory_order_acquire);
    if (t == nullptr) {
        // Thread-safe one-time resolution; the CAS race is benign
        // because every loser computed the same pointer.
        static const KernelTable *const initial = resolveInitial();
        const KernelTable *expected = nullptr;
        g_table.compare_exchange_strong(expected, initial,
                                        std::memory_order_acq_rel);
        t = g_table.load(std::memory_order_acquire);
    }
    return *t;
}

} // namespace

std::string_view
levelName(Level level)
{
    switch (level) {
    case Level::Scalar:
        return "scalar";
    case Level::Avx2:
        return "avx2";
    case Level::Neon:
        return "neon";
    }
    return "scalar";
}

std::optional<Level>
parseLevelName(std::string_view name)
{
    if (name == "off" || name == "scalar")
        return Level::Scalar;
    if (name == "avx2")
        return Level::Avx2;
    if (name == "neon")
        return Level::Neon;
    if (name == "auto")
        return bestSupportedLevel();
    return std::nullopt;
}

bool
compiledWithSimd()
{
#ifdef MICA_SIMD_DISABLED
    return false;
#else
    return true;
#endif
}

bool
levelSupported(Level level)
{
    switch (level) {
    case Level::Scalar:
        return true;
    case Level::Avx2:
#ifdef MICA_SIMD_HAVE_AVX2
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
    case Level::Neon:
#ifdef MICA_SIMD_HAVE_NEON
        return true; // Advanced SIMD is AArch64 baseline
#else
        return false;
#endif
    }
    return false;
}

Level
bestSupportedLevel()
{
    if (levelSupported(Level::Avx2))
        return Level::Avx2;
    if (levelSupported(Level::Neon))
        return Level::Neon;
    return Level::Scalar;
}

Level
activeLevel()
{
    return table().level;
}

bool
setLevel(Level level)
{
    if (!levelSupported(level))
        return false;
    g_table.store(tableFor(level), std::memory_order_release);
    return true;
}

double
squaredDistance(const double *a, const double *b, std::size_t n)
{
    return table().squared_distance(a, b, n);
}

double
sumSquares(const double *a, std::size_t n)
{
    return table().sum_squares(a, n);
}

void
axpy(double a, const double *x, double *y, std::size_t n)
{
    table().axpy(a, x, y, n);
}

void
normalize(const double *src, const double *mean, const double *sd,
          double *dst, std::size_t n, double eps)
{
    table().normalize(src, mean, sd, dst, n, eps);
}

void
rescale(double *v, const double *sd, std::size_t n, double eps)
{
    table().rescale(v, sd, n, eps);
}

void
projectRow(const double *src, const double *mean, const double *sd,
           bool normalize_input, double *scratch, const double *loadings,
           std::size_t p, std::size_t m, double *dst,
           const double *rescale_sd, double eps)
{
    table().project_row(src, mean, sd, normalize_input, scratch, loadings, p,
                        m, dst, rescale_sd, eps);
}

ScanHit
nearestCenterScan(const double *point, const double *centers, std::size_t k,
                  std::size_t m, std::size_t cached_index,
                  double cached_dist2)
{
    return table().scan(point, centers, k, m, cached_index, cached_dist2);
}

void
batchSquaredDistance(const double *point, const double *rows, std::size_t m,
                     const std::uint32_t *ids, std::size_t count, double *out)
{
    table().batch(point, rows, m, ids, count, out);
}

} // namespace mica::stats::simd
