/**
 * @file
 * Agglomerative hierarchical clustering (linkage analysis).
 *
 * The PCA+linkage workflow is the workload-similarity methodology the
 * paper builds on (Eeckhout et al., PACT 2002; Phansalkar/Joshi et al.):
 * benchmarks are placed in the rescaled PCA space and merged bottom-up
 * into a dendrogram, which reveals which benchmarks are behaviourally
 * redundant. This library uses it for benchmark-level similarity and as a
 * cross-check of the k-means phase clustering.
 *
 * The implementation is the classic O(n^3) algorithm over an explicit
 * distance matrix, which is exactly right for the problem sizes involved
 * (77 benchmarks, 100 prominent phases).
 */

#ifndef MICAPHASE_STATS_LINKAGE_HH
#define MICAPHASE_STATS_LINKAGE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "stats/matrix.hh"

namespace mica::stats {

/** Cluster-distance update rule. */
enum class Linkage
{
    Single,   ///< min pairwise distance
    Complete, ///< max pairwise distance
    Average,  ///< unweighted average pairwise distance (UPGMA)
};

/**
 * One merge step. Cluster ids 0..n-1 are the input points; merge i
 * creates cluster id n+i.
 */
struct Merge
{
    std::size_t left = 0;
    std::size_t right = 0;
    double distance = 0.0;
};

/** A complete agglomeration: n-1 merges in nondecreasing order. */
struct Dendrogram
{
    std::size_t num_points = 0;
    std::vector<Merge> merges;

    /**
     * Cut the tree into k flat clusters (undo the last k-1 merges).
     * Returns a cluster index in [0, k) per input point.
     */
    [[nodiscard]] std::vector<std::size_t> cut(std::size_t k) const;

    /** Height (merge distance) at which the tree becomes k clusters. */
    [[nodiscard]] double heightForK(std::size_t k) const;
};

/** Agglomerate the rows of a matrix under the given linkage rule. */
[[nodiscard]] Dendrogram agglomerate(const Matrix &points,
                                     Linkage linkage = Linkage::Average);

/**
 * ASCII rendering of a dendrogram: each leaf labelled, merges drawn as a
 * nested outline ordered by the tree structure.
 */
[[nodiscard]] std::string renderDendrogram(
    const Dendrogram &tree, const std::vector<std::string> &labels,
    int indent_per_level = 2);

} // namespace mica::stats

#endif // MICAPHASE_STATS_LINKAGE_HH
