/**
 * @file
 * Symmetric eigendecomposition via the cyclic Jacobi method.
 *
 * PCA needs the eigenpairs of a p x p covariance/correlation matrix where p
 * is the number of characteristics (69). At that size the classic Jacobi
 * rotation method is simple, numerically robust, and plenty fast, so we use
 * it rather than pulling in an external linear algebra dependency.
 */

#ifndef MICAPHASE_STATS_EIGEN_HH
#define MICAPHASE_STATS_EIGEN_HH

#include <vector>

#include "stats/matrix.hh"

namespace mica::stats {

/** Result of a symmetric eigendecomposition, sorted by eigenvalue (desc). */
struct EigenDecomposition
{
    /** Eigenvalues in descending order. */
    std::vector<double> values;
    /** Eigenvectors as matrix columns, column i pairs with values[i]. */
    Matrix vectors;
};

/**
 * Eigendecomposition of a symmetric matrix using cyclic Jacobi rotations.
 *
 * @param sym   symmetric input matrix (only assumed, not checked, beyond
 *              shape; asymmetric input yields the decomposition of its
 *              symmetric part in practice)
 * @param max_sweeps  maximum number of full Jacobi sweeps
 * @return eigenpairs sorted by descending eigenvalue
 *
 * Throws std::invalid_argument for non-square input.
 */
[[nodiscard]] EigenDecomposition jacobiEigenSymmetric(const Matrix &sym,
                                                      int max_sweeps = 64);

/**
 * Covariance matrix of the columns of a data matrix (population covariance,
 * i.e. divide by n). Rows are observations.
 *
 * The accumulation is blocked over fixed-size row ranges whose partials
 * are reduced in block order, so the result is bit-identical for every
 * `threads` value (0 = hardware concurrency, capped at the block count).
 */
[[nodiscard]] Matrix covarianceMatrix(const Matrix &data,
                                      unsigned threads = 1);

} // namespace mica::stats

#endif // MICAPHASE_STATS_EIGEN_HH
