#include "stats/projection.hh"

#include <algorithm>
#include <stdexcept>

#include "obs/trace.hh"
#include "stats/distance.hh"
#include "stats/simd.hh"
#include "util/aligned.hh"
#include "util/thread_pool.hh"

namespace mica::stats {

namespace {

/**
 * Project one row: fused normalize -> loadings product -> rescale, writing
 * the m rescaled PCA coordinates into dst (pre-zeroed by the caller).
 * Operation order is exactly the unfused path's (see projection.hh); the
 * three stages run through the dispatched SIMD kernels, which are bitwise
 * identical to the scalar oracle at every level. `scratch` (size p) holds
 * the normalized input so the zero-skip accumulation can vectorize over
 * whole loading rows instead of re-deriving each coefficient. The whole
 * body is one dispatched kernel (simd::projectRow) so a row costs a
 * single indirect call, not one per axpy.
 */
void
projectOneRow(const ProjectionSpec &spec, std::span<const double> src,
              std::span<double> dst, std::span<double> scratch)
{
    simd::projectRow(src.data(), spec.mean.data(), spec.stddev.data(),
                     spec.normalize_input, scratch.data(),
                     spec.loadings.data(), spec.loadings.rows(),
                     spec.loadings.cols(), dst.data(),
                     spec.rescale_sd.data(), kStddevEpsilon);
}

} // namespace

ProjectedRows
projectRows(const ProjectionSpec &spec, MatrixView rows,
            const ProjectOptions &opts)
{
    const std::size_t p = spec.loadings.rows();
    const std::size_t m = spec.loadings.cols();
    if (rows.rows() > 0 && rows.cols() != p)
        throw std::invalid_argument(
            "projectRows: row width does not match loadings rows");
    if (spec.normalize_input &&
        (spec.mean.size() != p || spec.stddev.size() != p))
        throw std::invalid_argument(
            "projectRows: normalization stats width mismatch");
    if (spec.rescale_sd.size() != m)
        throw std::invalid_argument(
            "projectRows: rescale stddev width mismatch");
    if (spec.centers.cols() != m && spec.centers.rows() > 0)
        throw std::invalid_argument(
            "projectRows: centers width does not match loadings cols");
    if (opts.block_rows == 0)
        throw std::invalid_argument("projectRows: block_rows must be > 0");

    const std::size_t n = rows.rows();
    ProjectedRows out;
    out.reduced = Matrix(n, m);
    out.assignment.assign(n, 0);
    out.dist2.assign(n, 0.0);
    if (n == 0)
        return out;

    // Fixed-size blocks: boundaries depend only on n and block_rows, never
    // on the thread count (the standard determinism recipe). Each row is
    // fully independent, so the partition is purely a scheduling concern.
    const std::size_t blocks = (n + opts.block_rows - 1) / opts.block_rows;
    const unsigned threads = util::resolveThreads(opts.threads, blocks);
    obs::gauge("stats.simd_level",
               static_cast<double>(simd::activeLevel()));
    util::parallelFor(threads, blocks, [&](std::size_t b) {
        // Per-block normalized-row scratch: written and read only inside
        // one row's projection, so it carries no state across rows.
        util::AlignedVector<double> scratch(spec.normalize_input ? p : 0);
        const std::size_t begin = b * opts.block_rows;
        const std::size_t end = std::min(begin + opts.block_rows, n);
        for (std::size_t r = begin; r < end; ++r) {
            const std::span<double> dst = out.reduced.row(r);
            projectOneRow(spec, rows.row(r), dst, scratch);
            // Classification: the exact scan by default, or the caller's
            // finder (per-row independent either way, so the blocking
            // invariants are unaffected).
            const NearestCenter nearest = opts.finder != nullptr
                ? opts.finder->find(dst)
                : nearestCenter(dst, spec.centers);
            out.assignment[r] = nearest.index;
            out.dist2[r] = nearest.dist2;
        }
    });
    return out;
}

} // namespace mica::stats
