#include "stats/projection.hh"

#include <algorithm>
#include <stdexcept>

#include "stats/distance.hh"
#include "util/thread_pool.hh"

namespace mica::stats {

namespace {

/**
 * Project one row: fused normalize -> loadings product -> rescale, writing
 * the m rescaled PCA coordinates into dst (pre-zeroed by the caller).
 * Operation order is exactly the unfused path's (see projection.hh).
 */
void
projectOneRow(const ProjectionSpec &spec, std::span<const double> src,
              std::span<double> dst)
{
    const std::size_t p = spec.loadings.rows();
    const std::size_t m = spec.loadings.cols();
    for (std::size_t k = 0; k < p; ++k) {
        double a = src[k];
        if (spec.normalize_input) {
            const double sd = spec.stddev[k];
            a = sd > kStddevEpsilon ? (src[k] - spec.mean[k]) / sd : 0.0;
        }
        if (a == 0.0)
            continue;
        const std::span<const double> lrow = spec.loadings.row(k);
        for (std::size_t j = 0; j < m; ++j)
            dst[j] += a * lrow[j];
    }
    for (std::size_t j = 0; j < m; ++j) {
        const double sd = spec.rescale_sd[j];
        dst[j] = sd > kStddevEpsilon ? dst[j] / sd : 0.0;
    }
}

} // namespace

ProjectedRows
projectRows(const ProjectionSpec &spec, MatrixView rows,
            const ProjectOptions &opts)
{
    const std::size_t p = spec.loadings.rows();
    const std::size_t m = spec.loadings.cols();
    if (rows.rows() > 0 && rows.cols() != p)
        throw std::invalid_argument(
            "projectRows: row width does not match loadings rows");
    if (spec.normalize_input &&
        (spec.mean.size() != p || spec.stddev.size() != p))
        throw std::invalid_argument(
            "projectRows: normalization stats width mismatch");
    if (spec.rescale_sd.size() != m)
        throw std::invalid_argument(
            "projectRows: rescale stddev width mismatch");
    if (spec.centers.cols() != m && spec.centers.rows() > 0)
        throw std::invalid_argument(
            "projectRows: centers width does not match loadings cols");
    if (opts.block_rows == 0)
        throw std::invalid_argument("projectRows: block_rows must be > 0");

    const std::size_t n = rows.rows();
    ProjectedRows out;
    out.reduced = Matrix(n, m);
    out.assignment.assign(n, 0);
    out.dist2.assign(n, 0.0);
    if (n == 0)
        return out;

    // Fixed-size blocks: boundaries depend only on n and block_rows, never
    // on the thread count (the standard determinism recipe). Each row is
    // fully independent, so the partition is purely a scheduling concern.
    const std::size_t blocks = (n + opts.block_rows - 1) / opts.block_rows;
    const unsigned threads = util::resolveThreads(opts.threads, blocks);
    util::parallelFor(threads, blocks, [&](std::size_t b) {
        const std::size_t begin = b * opts.block_rows;
        const std::size_t end = std::min(begin + opts.block_rows, n);
        for (std::size_t r = begin; r < end; ++r) {
            const std::span<double> dst = out.reduced.row(r);
            projectOneRow(spec, rows.row(r), dst);
            const NearestCenter nearest = nearestCenter(dst, spec.centers);
            out.assignment[r] = nearest.index;
            out.dist2[r] = nearest.dist2;
        }
    });
    return out;
}

} // namespace mica::stats
