#include "stats/eigen.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "obs/trace.hh"
#include "util/thread_pool.hh"

namespace mica::stats {

EigenDecomposition
jacobiEigenSymmetric(const Matrix &sym, int max_sweeps)
{
    if (sym.rows() != sym.cols())
        throw std::invalid_argument("jacobiEigenSymmetric: non-square input");

    const obs::Span span("pca.jacobi", "stats");
    const std::size_t n = sym.rows();
    Matrix a = sym;               // working copy, progressively diagonalized
    Matrix v = Matrix::identity(n); // accumulated rotations

    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        // Sum of off-diagonal magnitudes decides convergence.
        double off = 0.0;
        for (std::size_t p = 0; p < n; ++p)
            for (std::size_t q = p + 1; q < n; ++q)
                off += std::fabs(a(p, q));
        if (off < 1e-13)
            break;

        for (std::size_t p = 0; p + 1 < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                const double apq = a(p, q);
                if (std::fabs(apq) < 1e-300)
                    continue;
                const double app = a(p, p);
                const double aqq = a(q, q);
                const double theta = (aqq - app) / (2.0 * apq);
                // Stable computation of tan(rotation angle).
                const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                    (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;

                for (std::size_t k = 0; k < n; ++k) {
                    const double akp = a(k, p);
                    const double akq = a(k, q);
                    a(k, p) = c * akp - s * akq;
                    a(k, q) = s * akp + c * akq;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double apk = a(p, k);
                    const double aqk = a(q, k);
                    a(p, k) = c * apk - s * aqk;
                    a(q, k) = s * apk + c * aqk;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double vkp = v(k, p);
                    const double vkq = v(k, q);
                    v(k, p) = c * vkp - s * vkq;
                    v(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }

    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t i, std::size_t j) {
                         return a(i, i) > a(j, j);
                     });

    EigenDecomposition out;
    out.values.resize(n);
    out.vectors = Matrix(n, n);
    for (std::size_t c = 0; c < n; ++c) {
        out.values[c] = a(order[c], order[c]);
        // Fix a deterministic sign convention: make the largest-magnitude
        // component of each eigenvector positive.
        std::size_t arg = 0;
        double best = 0.0;
        for (std::size_t r = 0; r < n; ++r) {
            const double mag = std::fabs(v(r, order[c]));
            if (mag > best) {
                best = mag;
                arg = r;
            }
        }
        const double sign = v(arg, order[c]) >= 0.0 ? 1.0 : -1.0;
        for (std::size_t r = 0; r < n; ++r)
            out.vectors(r, c) = sign * v(r, order[c]);
    }
    return out;
}

Matrix
covarianceMatrix(const Matrix &data, unsigned threads)
{
    const obs::Span span("pca.covariance", "stats");
    const std::size_t n = data.rows();
    const std::size_t p = data.cols();
    Matrix cov(p, p);
    if (n == 0)
        return cov;

    // Block boundaries depend only on n; partials reduce in block order,
    // making the sums bit-identical for any thread count.
    constexpr std::size_t kRowBlock = 1024;
    const std::size_t num_blocks = (n + kRowBlock - 1) / kRowBlock;
    const unsigned pool = util::resolveThreads(threads, num_blocks);

    std::vector<std::vector<double>> mu_partial(num_blocks);
    util::parallelFor(pool, num_blocks, [&](std::size_t b) {
        auto &part = mu_partial[b];
        part.assign(p, 0.0);
        const std::size_t lo = b * kRowBlock;
        const std::size_t hi = std::min(n, lo + kRowBlock);
        for (std::size_t r = lo; r < hi; ++r) {
            auto row = data.row(r);
            for (std::size_t c = 0; c < p; ++c)
                part[c] += row[c];
        }
    });
    std::vector<double> mu(p, 0.0);
    for (const auto &part : mu_partial)
        for (std::size_t c = 0; c < p; ++c)
            mu[c] += part[c];
    for (auto &m : mu)
        m /= static_cast<double>(n);

    std::vector<Matrix> cov_partial(num_blocks);
    util::parallelFor(pool, num_blocks, [&](std::size_t b) {
        Matrix &part = cov_partial[b];
        part = Matrix(p, p);
        const std::size_t lo = b * kRowBlock;
        const std::size_t hi = std::min(n, lo + kRowBlock);
        for (std::size_t r = lo; r < hi; ++r) {
            auto row = data.row(r);
            for (std::size_t i = 0; i < p; ++i) {
                const double di = row[i] - mu[i];
                for (std::size_t j = i; j < p; ++j)
                    part(i, j) += di * (row[j] - mu[j]);
            }
        }
    });
    for (const Matrix &part : cov_partial)
        for (std::size_t i = 0; i < p; ++i)
            for (std::size_t j = i; j < p; ++j)
                cov(i, j) += part(i, j);

    for (std::size_t i = 0; i < p; ++i)
        for (std::size_t j = i; j < p; ++j) {
            cov(i, j) /= static_cast<double>(n);
            cov(j, i) = cov(i, j);
        }
    return cov;
}

} // namespace mica::stats
