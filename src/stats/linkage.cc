#include "stats/linkage.hh"

#include <algorithm>
#include <functional>
#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace mica::stats {

std::vector<std::size_t>
Dendrogram::cut(std::size_t k) const
{
    if (k == 0 || k > num_points)
        throw std::invalid_argument("Dendrogram::cut: bad k");

    // Union-find over point ids, applying the first n-k merges.
    std::vector<std::size_t> parent(num_points + merges.size());
    std::iota(parent.begin(), parent.end(), 0);
    std::function<std::size_t(std::size_t)> find =
        [&](std::size_t x) -> std::size_t {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    const std::size_t applied = num_points - k;
    for (std::size_t i = 0; i < applied; ++i) {
        const std::size_t node = num_points + i;
        parent[find(merges[i].left)] = node;
        parent[find(merges[i].right)] = node;
    }

    // Relabel roots densely.
    std::vector<std::size_t> labels(num_points);
    std::vector<std::size_t> roots;
    for (std::size_t p = 0; p < num_points; ++p) {
        const std::size_t root = find(p);
        auto it = std::find(roots.begin(), roots.end(), root);
        if (it == roots.end()) {
            roots.push_back(root);
            labels[p] = roots.size() - 1;
        } else {
            labels[p] =
                static_cast<std::size_t>(it - roots.begin());
        }
    }
    return labels;
}

double
Dendrogram::heightForK(std::size_t k) const
{
    if (k >= num_points || merges.empty())
        return 0.0;
    // The merge that reduces the cluster count to k.
    return merges[num_points - k - 1].distance;
}

Dendrogram
agglomerate(const Matrix &points, Linkage linkage)
{
    const std::size_t n = points.rows();
    Dendrogram tree;
    tree.num_points = n;
    if (n < 2)
        return tree;

    // Distance matrix over cluster slots; slot i starts as point i and is
    // reused for merged clusters (classic Lance-Williams updates).
    const std::size_t slots = 2 * n - 1;
    std::vector<double> dist(slots * slots, 0.0);
    auto d = [&](std::size_t a, std::size_t b) -> double & {
        return dist[a * slots + b];
    };
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j)
            d(i, j) = d(j, i) =
                euclideanDistance(points.row(i), points.row(j));

    std::vector<std::size_t> active;
    for (std::size_t i = 0; i < n; ++i)
        active.push_back(i);
    std::vector<std::size_t> sizes(slots, 1);

    for (std::size_t step = 0; step + 1 < n; ++step) {
        // Find the closest active pair.
        double best = std::numeric_limits<double>::max();
        std::size_t bi = 0, bj = 1;
        for (std::size_t i = 0; i < active.size(); ++i)
            for (std::size_t j = i + 1; j < active.size(); ++j) {
                const double dij = d(active[i], active[j]);
                if (dij < best) {
                    best = dij;
                    bi = i;
                    bj = j;
                }
            }
        const std::size_t a = active[bi];
        const std::size_t b = active[bj];
        const std::size_t merged = n + step;
        tree.merges.push_back({a, b, best});
        sizes[merged] = sizes[a] + sizes[b];

        // Distances from the merged cluster to all remaining actives.
        for (std::size_t other : active) {
            if (other == a || other == b)
                continue;
            double nd = 0.0;
            switch (linkage) {
              case Linkage::Single:
                nd = std::min(d(other, a), d(other, b));
                break;
              case Linkage::Complete:
                nd = std::max(d(other, a), d(other, b));
                break;
              case Linkage::Average:
                nd = (d(other, a) * static_cast<double>(sizes[a]) +
                      d(other, b) * static_cast<double>(sizes[b])) /
                     static_cast<double>(sizes[a] + sizes[b]);
                break;
            }
            d(other, merged) = d(merged, other) = nd;
        }

        // Replace a and b by the merged slot.
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(bj));
        active[bi] = merged;
    }
    return tree;
}

namespace {

void
renderNode(const Dendrogram &tree, const std::vector<std::string> &labels,
           std::size_t node, const std::string &prefix, bool last,
           std::ostringstream &os)
{
    os << prefix << (last ? "`- " : "+- ");
    if (node < tree.num_points) {
        os << (node < labels.size() ? labels[node]
                                    : "#" + std::to_string(node))
           << "\n";
        return;
    }
    const Merge &m = tree.merges[node - tree.num_points];
    os.precision(3);
    os << "[d=" << m.distance << "]\n";
    const std::string child_prefix = prefix + (last ? "   " : "|  ");
    renderNode(tree, labels, m.left, child_prefix, false, os);
    renderNode(tree, labels, m.right, child_prefix, true, os);
}

} // namespace

std::string
renderDendrogram(const Dendrogram &tree,
                 const std::vector<std::string> &labels, int)
{
    std::ostringstream os;
    if (tree.merges.empty()) {
        for (std::size_t i = 0; i < tree.num_points; ++i)
            os << (i < labels.size() ? labels[i] : "#" + std::to_string(i))
               << "\n";
        return os.str();
    }
    renderNode(tree, labels, tree.num_points + tree.merges.size() - 1, "",
               true, os);
    return os.str();
}

} // namespace mica::stats
