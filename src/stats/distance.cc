#include "stats/distance.hh"

#include <cassert>

#include "stats/simd.hh"

namespace mica::stats {

NearestCenter
nearestCenter(std::span<const double> point, const Matrix &centers,
              std::size_t cached_index, double cached_dist2)
{
    return nearestCenter(point, centers.view(), cached_index, cached_dist2);
}

NearestCenter
nearestCenter(std::span<const double> point, MatrixView centers,
              std::size_t cached_index, double cached_dist2)
{
    // The whole k-center scan dispatches as one kernel so the per-center
    // distance call stays direct inside the selected backend.
    const simd::ScanHit hit =
        simd::nearestCenterScan(point.data(), centers.data(), centers.rows(),
                                centers.cols(), cached_index, cached_dist2);
    NearestCenter out;
    out.index = hit.index;
    out.dist2 = hit.dist2;
    out.second_dist2 = hit.second_dist2;
    return out;
}

void
HamerlyBounds::reset(std::size_t n)
{
    upper_.assign(n, std::numeric_limits<double>::max());
    lower_.assign(n, 0.0);
}

void
CenterDrift::fromSquaredMovements(std::span<const double> move2)
{
    move.resize(move2.size());
    max_move = 0.0;
    second_max_move = 0.0;
    max_index = 0;
    for (std::size_t c = 0; c < move2.size(); ++c) {
        move[c] = inflateBound(std::sqrt(move2[c]));
        if (move[c] > max_move) {
            second_max_move = max_move;
            max_move = move[c];
            max_index = c;
        } else if (move[c] > second_max_move) {
            second_max_move = move[c];
        }
    }
}

std::vector<double>
rowNorms(const Matrix &data, DistanceCounters *counters)
{
    std::vector<double> norms(data.rows());
    for (std::size_t r = 0; r < data.rows(); ++r) {
        const auto row = data.row(r);
        norms[r] = std::sqrt(simd::sumSquares(row.data(), row.size()));
    }
    if (counters != nullptr)
        counters->norms += data.rows();
    return norms;
}

} // namespace mica::stats
