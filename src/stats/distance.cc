#include "stats/distance.hh"

#include <cassert>

namespace mica::stats {

NearestCenter
nearestCenter(std::span<const double> point, const Matrix &centers,
              std::size_t cached_index, double cached_dist2)
{
    return nearestCenter(point, centers.view(), cached_index, cached_dist2);
}

NearestCenter
nearestCenter(std::span<const double> point, MatrixView centers,
              std::size_t cached_index, double cached_dist2)
{
    NearestCenter out;
    out.dist2 = std::numeric_limits<double>::max();
    out.second_dist2 = std::numeric_limits<double>::max();
    const std::size_t k = centers.rows();
    for (std::size_t c = 0; c < k; ++c) {
        const double dist = c == cached_index
            ? cached_dist2
            : squaredDistance(point, centers.row(c));
        if (dist < out.dist2) {
            out.second_dist2 = out.dist2;
            out.dist2 = dist;
            out.index = c;
        } else if (dist < out.second_dist2) {
            out.second_dist2 = dist;
        }
    }
    return out;
}

void
HamerlyBounds::reset(std::size_t n)
{
    upper_.assign(n, std::numeric_limits<double>::max());
    lower_.assign(n, 0.0);
}

void
CenterDrift::fromSquaredMovements(std::span<const double> move2)
{
    move.resize(move2.size());
    max_move = 0.0;
    second_max_move = 0.0;
    max_index = 0;
    for (std::size_t c = 0; c < move2.size(); ++c) {
        move[c] = inflateBound(std::sqrt(move2[c]));
        if (move[c] > max_move) {
            second_max_move = max_move;
            max_move = move[c];
            max_index = c;
        } else if (move[c] > second_max_move) {
            second_max_move = move[c];
        }
    }
}

std::vector<double>
rowNorms(const Matrix &data)
{
    std::vector<double> norms(data.rows());
    for (std::size_t r = 0; r < data.rows(); ++r) {
        auto row = data.row(r);
        double acc = 0.0;
        for (double v : row)
            acc += v * v;
        norms[r] = std::sqrt(acc);
    }
    return norms;
}

} // namespace mica::stats
