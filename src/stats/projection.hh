/**
 * @file
 * Batched frozen-space projection kernel: normalize -> PCA -> rescale ->
 * nearest-center for many rows at once.
 *
 * The frozen phase model replays the exact arithmetic of the training
 * pipeline on new interval vectors. Historically each row went through
 * four separate matrix passes (normalizeColumns, Matrix::multiply, a
 * rescale loop, nearestCenter). `projectRows` fuses those passes into one
 * per-row kernel and tiles rows into fixed-size blocks dispatched over the
 * shared thread pool.
 *
 * Bit-identity contract: every row is processed independently with the
 * exact operation order of the unfused path —
 *
 *   1. normalized value  a = sd > kStddevEpsilon ? (x - mean) / sd : 0.0
 *      (skipped entirely when normalize_input is false),
 *   2. the `a == 0.0` zero-skip of Matrix::multiply, accumulating in
 *      ascending-k order into a zero-initialized destination row,
 *   3. component rescale v = sd > kStddevEpsilon ? v / sd : 0.0,
 *   4. nearestCenter's index-order strict-`<` scan.
 *
 * Because no step mixes data across rows, the result is bitwise invariant
 * to both the thread count and the block size; tests lock this down.
 */

#ifndef MICAPHASE_STATS_PROJECTION_HH
#define MICAPHASE_STATS_PROJECTION_HH

#include <cstddef>
#include <span>
#include <vector>

#include "stats/distance.hh"
#include "stats/matrix.hh"
#include "stats/summary.hh"

namespace mica::stats {

/**
 * Frozen coefficients of one projection chain. All views are non-owning;
 * the owner (a loaded PhaseModel or an mmap'd PhaseModelView) must outlive
 * any projectRows call using the spec.
 */
struct ProjectionSpec
{
    /** Apply the z-score normalization step (raw interval vectors: yes;
     *  already-normalized inputs: no). */
    bool normalize_input = true;
    std::span<const double> mean;   ///< per-input-column mean
    std::span<const double> stddev; ///< per-input-column stddev
    MatrixView loadings;            ///< p x m PCA loadings
    std::span<const double> rescale_sd; ///< per-component stddev (size m)
    MatrixView centers;             ///< k x m cluster centers
};

/** Tuning knobs for projectRows; defaults match the serving frontend. */
struct ProjectOptions
{
    unsigned threads = 0;         ///< 0 = hardware concurrency
    std::size_t block_rows = 1024; ///< rows per work item (must be > 0)
    /**
     * Optional nearest-center strategy for the classification step
     * (e.g. an `ann::CenterIndex` built over `spec.centers`). Non-owning;
     * must outlive the call and be thread-safe for concurrent const use.
     * nullptr (the default) keeps the exact index-order scan — the
     * bit-identity contract in the file comment applies only to this
     * default; an approximate finder trades it for the finder's own
     * bounded-error contract (see docs/ANN.md).
     */
    const NearestCenterFinder *finder = nullptr;
};

/** Dense result of projecting a batch of rows. */
struct ProjectedRows
{
    Matrix reduced;                      ///< n x m rescaled PCA coordinates
    std::vector<std::size_t> assignment; ///< nearest center per row
    std::vector<double> dist2;           ///< squared distance to it
};

/**
 * Project every row of `rows` (n x p, frozen input width p) through the
 * spec's normalize -> PCA -> rescale chain and classify it against the
 * spec's centers. See the file comment for the bit-identity contract.
 *
 * Throws std::invalid_argument on shape mismatches (row width vs mean /
 * loadings, loadings cols vs rescale_sd / centers) or a zero block size.
 */
[[nodiscard]] ProjectedRows projectRows(const ProjectionSpec &spec,
                                        MatrixView rows,
                                        const ProjectOptions &opts = {});

} // namespace mica::stats

#endif // MICAPHASE_STATS_PROJECTION_HH
