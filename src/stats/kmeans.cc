#include "stats/kmeans.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

#include "obs/trace.hh"
#include "util/thread_pool.hh"

namespace mica::stats {

std::vector<std::size_t>
KMeansResult::representatives(const Matrix &data) const
{
    const std::size_t k = centers.rows();
    std::vector<std::size_t> best_idx(k, 0);
    std::vector<double> best_dist(k, std::numeric_limits<double>::max());
    for (std::size_t r = 0; r < data.rows(); ++r) {
        const std::size_t c = assignment[r];
        const double d = squaredDistance(data.row(r), centers.row(c));
        if (d < best_dist[c]) {
            best_dist[c] = d;
            best_idx[c] = r;
        }
    }
    return best_idx;
}

namespace {

/** Pick k distinct row indices uniformly at random. */
std::vector<std::size_t>
randomDistinct(std::size_t n, std::size_t k, Rng &rng)
{
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i)
        idx[i] = i;
    rng.shuffle(idx);
    idx.resize(k);
    return idx;
}

/**
 * Rows per assignment block. Block boundaries depend only on n, never on
 * the thread count, and block partials are reduced in block order — the
 * key to thread-count-invariant floating-point results.
 */
constexpr std::size_t kRowBlock = 1024;

/** Per-block partial accumulation of one Lloyd assignment pass. */
struct AssignPartial
{
    std::vector<std::size_t> sizes;
    Matrix sums;
    double inertia = 0.0;
    bool changed = false;
    DistanceCounters counters;
};

/** One full Lloyd run from the given seed points. */
KMeansResult
lloyd(const Matrix &data, std::size_t k, const KMeans::Options &opts,
      const std::vector<std::size_t> &seed_rows)
{
    const std::size_t n = data.rows();
    const std::size_t d = data.cols();

    KMeansResult res;
    res.centers = Matrix(k, d);
    for (std::size_t c = 0; c < k; ++c) {
        auto src = data.row(seed_rows[c]);
        auto dst = res.centers.row(c);
        std::copy(src.begin(), src.end(), dst.begin());
    }
    res.assignment.assign(n, 0);
    res.sizes.assign(k, 0);

    const std::size_t num_blocks = (n + kRowBlock - 1) / kRowBlock;
    const unsigned threads = util::resolveThreads(opts.threads, num_blocks);
    std::vector<AssignPartial> partials(num_blocks);
    for (AssignPartial &p : partials) {
        p.sizes.assign(k, 0);
        p.sums = Matrix(k, d);
    }

    // Approximate assignment (Options::ann): the finder views
    // res.centers in place, so its distances always track the current
    // center values exactly; only its acceleration structure goes stale
    // as centers move. We accumulate the CenterDrift maximum movement
    // since the last build and rebuild once it exceeds the configured
    // fraction of the finder's own length scale. The Hamerly bounds are
    // bypassed while a finder is active — they certify the *exact*
    // argmin, which an approximate finder does not promise.
    const bool use_ann = opts.ann != nullptr;
    const bool pruning = opts.pruning && !use_ann;
    std::unique_ptr<NearestCenterFinder> finder;
    double drift_since_build = 0.0;

    // Hamerly bounds state (pruned path only). Bounds are per point and
    // each block only touches its own rows, so the state is updated
    // identically for every thread count. Intermediate per-iteration
    // inertia is not maintained on the pruned path — nothing reads it,
    // and the final value is recomputed exactly below for both paths.
    HamerlyBounds bounds;
    CenterDrift drift;
    std::vector<double> move2(k, 0.0);
    bool have_drift = false;
    if (pruning)
        bounds.reset(n);

    Matrix sums(k, d);
    for (int iter = 0; iter < opts.max_iterations; ++iter) {
        res.iterations = iter + 1;

        if (use_ann &&
            (finder == nullptr ||
             drift_since_build > opts.ann_rebuild * finder->lengthScale())) {
            finder = opts.ann->build(res.centers.view(), opts.threads);
            drift_since_build = 0.0;
            obs::count("kmeans.ann_rebuilds");
        }

        // Assignment step, row-partitioned: each block classifies its rows
        // against the current centers and accumulates private partials.
        util::parallelFor(threads, num_blocks, [&](std::size_t b) {
            AssignPartial &part = partials[b];
            std::fill(part.sizes.begin(), part.sizes.end(), 0);
            for (std::size_t c = 0; c < k; ++c) {
                auto acc = part.sums.row(c);
                std::fill(acc.begin(), acc.end(), 0.0);
            }
            part.inertia = 0.0;
            part.changed = false;
            part.counters = DistanceCounters{};
            const std::size_t lo = b * kRowBlock;
            const std::size_t hi = std::min(n, lo + kRowBlock);
            for (std::size_t i = lo; i < hi; ++i) {
                auto point = data.row(i);
                std::size_t arg;
                if (use_ann) {
                    // Approximate path: the finder is shared across
                    // blocks (thread-safe const) and accounts its own
                    // distance work.
                    const NearestCenter nc =
                        finder->find(point, &part.counters);
                    arg = nc.index;
                    part.inertia += nc.dist2;
                } else if (!opts.pruning) {
                    // Naive oracle: exact scan of every center.
                    const NearestCenter nc = nearestCenter(point,
                                                           res.centers);
                    part.counters.computed += k;
                    arg = nc.index;
                    part.inertia += nc.dist2;
                } else {
                    const std::size_t prev = res.assignment[i];
                    if (have_drift)
                        bounds.drift(i, drift.move[prev],
                                     drift.maxOtherMove(prev));
                    if (bounds.canSkip(i)) {
                        // Bound proves the assignment is unchanged; the
                        // whole k-center scan is skipped.
                        part.counters.pruned += k;
                        arg = prev;
                    } else {
                        const double d2a = squaredDistance(
                            point, res.centers.row(prev));
                        ++part.counters.computed;
                        bounds.tighten(i, d2a);
                        if (bounds.canSkip(i)) {
                            part.counters.pruned += k - 1;
                            arg = prev;
                        } else {
                            // Exact scan, reusing the distance already
                            // computed for the assigned center.
                            const NearestCenter nc = nearestCenter(
                                point, res.centers, prev, d2a);
                            part.counters.computed += k - 1;
                            bounds.assign(i, nc);
                            arg = nc.index;
                        }
                    }
                }
                if (res.assignment[i] != arg) {
                    res.assignment[i] = arg;
                    part.changed = true;
                }
                ++part.sizes[arg];
                auto acc = part.sums.row(arg);
                for (std::size_t j = 0; j < d; ++j)
                    acc[j] += point[j];
            }
        });

        // Serial reduction in block order.
        bool changed = false;
        std::fill(res.sizes.begin(), res.sizes.end(), 0);
        for (std::size_t c = 0; c < k; ++c) {
            auto acc = sums.row(c);
            std::fill(acc.begin(), acc.end(), 0.0);
        }
        res.inertia = 0.0;
        for (const AssignPartial &part : partials) {
            changed = changed || part.changed;
            res.inertia += part.inertia;
            res.distance_counters += part.counters;
            for (std::size_t c = 0; c < k; ++c) {
                res.sizes[c] += part.sizes[c];
                auto acc = sums.row(c);
                auto src = part.sums.row(c);
                for (std::size_t j = 0; j < d; ++j)
                    acc[j] += src[j];
            }
        }

        // Repair empty clusters: steal the point with the largest distance
        // to its assigned center.
        for (std::size_t c = 0; c < k; ++c) {
            if (res.sizes[c] != 0)
                continue;
            double worst = -1.0;
            std::size_t victim = 0;
            for (std::size_t i = 0; i < n; ++i) {
                if (res.sizes[res.assignment[i]] <= 1)
                    continue;
                const double dist = squaredDistance(
                    data.row(i), res.centers.row(res.assignment[i]));
                if (dist > worst) {
                    worst = dist;
                    victim = i;
                }
            }
            if (worst < 0.0)
                continue; // fewer distinct points than clusters
            auto old = res.assignment[victim];
            auto vrow = data.row(victim);
            auto old_sum = sums.row(old);
            auto new_sum = sums.row(c);
            for (std::size_t j = 0; j < d; ++j) {
                old_sum[j] -= vrow[j];
                new_sum[j] += vrow[j];
            }
            --res.sizes[old];
            ++res.sizes[c];
            res.assignment[victim] = c;
            changed = true;
            // The repair reassigned the victim behind the bounds' back;
            // force an exact rescan of it next pass.
            if (pruning)
                bounds.invalidate(victim);
        }

        // Update step.
        double movement = 0.0;
        std::fill(move2.begin(), move2.end(), 0.0);
        for (std::size_t c = 0; c < k; ++c) {
            if (res.sizes[c] == 0)
                continue;
            auto acc = sums.row(c);
            auto center = res.centers.row(c);
            double center_move2 = 0.0;
            for (std::size_t j = 0; j < d; ++j) {
                const double nc = acc[j] / static_cast<double>(res.sizes[c]);
                const double delta = nc - center[j];
                movement += delta * delta;
                center_move2 += delta * delta;
                center[j] = nc;
            }
            move2[c] = center_move2;
        }
        if (pruning || use_ann) {
            drift.fromSquaredMovements(move2);
            have_drift = true;
            if (use_ann)
                drift_since_build += drift.max_move;
        }

        if (!changed || movement < opts.tolerance * opts.tolerance)
            break;
    }

    // Recompute final inertia against the final centers, with the same
    // blocked reduction so the value is thread-count invariant. (Not
    // counted as prunable distance work: both paths must evaluate every
    // point exactly once here.)
    std::vector<double> block_inertia(num_blocks, 0.0);
    util::parallelFor(threads, num_blocks, [&](std::size_t b) {
        const std::size_t lo = b * kRowBlock;
        const std::size_t hi = std::min(n, lo + kRowBlock);
        double acc = 0.0;
        for (std::size_t i = lo; i < hi; ++i)
            acc += squaredDistance(data.row(i),
                                   res.centers.row(res.assignment[i]));
        block_inertia[b] = acc;
    });
    res.inertia = 0.0;
    for (double v : block_inertia)
        res.inertia += v;
    return res;
}

} // namespace

std::vector<std::size_t>
KMeans::plusPlusSeeds(const Matrix &data, std::size_t k, Rng &rng,
                      unsigned threads, bool pruning,
                      DistanceCounters *counters)
{
    const std::size_t n = data.rows();
    std::vector<std::size_t> seeds;
    seeds.reserve(k);
    std::vector<char> chosen(n, 0);
    const std::size_t first = static_cast<std::size_t>(rng.nextBelow(n));
    seeds.push_back(first);
    chosen[first] = 1;

    // Row norms feed the reverse-triangle pruning test: when
    // |‖x‖ - ‖seed‖|² already exceeds D²(x), the new seed cannot be
    // closer and the exact distance evaluation is skipped. The norm
    // evaluations are distance-shaped work and counted as such.
    std::vector<double> norms;
    if (pruning)
        norms = rowNorms(data, counters);

    const std::size_t num_blocks = (n + kRowBlock - 1) / kRowBlock;
    const unsigned eff_threads = util::resolveThreads(threads, num_blocks);
    std::vector<double> block_total(num_blocks, 0.0);
    std::vector<DistanceCounters> block_counters(num_blocks);

    std::vector<double> d2(n, std::numeric_limits<double>::max());
    while (seeds.size() < k) {
        const std::size_t last_row = seeds.back();
        const auto last = data.row(last_row);
        const double last_norm = pruning ? norms[last_row] : 0.0;

        // Blocked deterministic min-distance update: every row's D² is a
        // pure function of (row, seed history), and the total is reduced
        // in block order — identical for every thread count.
        util::parallelFor(eff_threads, num_blocks, [&](std::size_t b) {
            const std::size_t lo = b * kRowBlock;
            const std::size_t hi = std::min(n, lo + kRowBlock);
            double total = 0.0;
            DistanceCounters local;
            for (std::size_t i = lo; i < hi; ++i) {
                if (pruning &&
                    normGapPrunes(norms[i], last_norm, d2[i])) {
                    ++local.pruned;
                } else {
                    d2[i] = std::min(
                        d2[i], squaredDistance(data.row(i), last));
                    ++local.computed;
                }
                total += d2[i];
            }
            block_total[b] = total;
            block_counters[b] = local;
        });
        double total = 0.0;
        for (std::size_t b = 0; b < num_blocks; ++b) {
            total += block_total[b];
            if (counters != nullptr)
                *counters += block_counters[b];
        }

        if (total <= 0.0) {
            // All remaining points coincide with chosen seeds; take the
            // lowest-index row not yet selected so seeds stay distinct.
            std::size_t fallback = n;
            for (std::size_t i = 0; i < n; ++i) {
                if (!chosen[i]) {
                    fallback = i;
                    break;
                }
            }
            assert(fallback < n && "k was clamped to the row count");
            seeds.push_back(fallback);
            chosen[fallback] = 1;
            continue;
        }
        double pick = rng.nextDouble() * total;
        std::size_t picked = n - 1;
        for (std::size_t i = 0; i < n; ++i) {
            pick -= d2[i];
            if (pick <= 0.0) {
                picked = i;
                break;
            }
        }
        seeds.push_back(picked);
        chosen[picked] = 1;
    }
    return seeds;
}

double
KMeans::bicScore(const Matrix &data, const KMeansResult &clustering)
{
    const double n = static_cast<double>(data.rows());
    const double d = static_cast<double>(data.cols());
    const double k = static_cast<double>(clustering.centers.rows());
    if (n <= k)
        return -std::numeric_limits<double>::max();

    // Pooled spherical variance MLE; clamp so perfectly tight clusters do
    // not produce log(0).
    const double sigma2 =
        std::max(clustering.inertia / (d * (n - k)), 1e-12);

    double loglik = 0.0;
    for (std::size_t c = 0; c < clustering.sizes.size(); ++c) {
        const double nc = static_cast<double>(clustering.sizes[c]);
        if (nc <= 0.0)
            continue;
        loglik += nc * std::log(nc / n);
    }
    loglik -= n * d / 2.0 * std::log(2.0 * std::numbers::pi * sigma2);
    loglik -= d * (n - k) / 2.0;

    const double num_params = (k - 1.0) + k * d + 1.0;
    return loglik - num_params / 2.0 * std::log(n);
}

KMeansResult
KMeans::run(const Matrix &data, const Options &opts)
{
    if (data.rows() == 0)
        throw std::invalid_argument("KMeans::run: empty data");
    const std::size_t k = std::min(opts.k, data.rows());
    if (k == 0)
        throw std::invalid_argument("KMeans::run: k must be positive");
    if (!opts.initial_seeds.empty()) {
        if (opts.initial_seeds.size() != k)
            throw std::invalid_argument(
                "KMeans::run: initial_seeds size must equal k");
        for (std::size_t row : opts.initial_seeds)
            if (row >= data.rows())
                throw std::invalid_argument(
                    "KMeans::run: initial_seeds row out of range");
    }

    const obs::Span run_span("kmeans.run", "stats");

    // Split one Rng stream per restart sequentially up front, so each
    // restart's randomness is independent of how restarts are scheduled.
    const std::size_t restarts =
        static_cast<std::size_t>(std::max(opts.restarts, 1));
    Rng rng(opts.seed);
    std::vector<Rng> streams;
    streams.reserve(restarts);
    for (std::size_t r = 0; r < restarts; ++r)
        streams.push_back(rng.split());

    const unsigned threads = util::resolveThreads(opts.threads, restarts);
    std::vector<KMeansResult> candidates(restarts);
    util::parallelFor(threads, restarts, [&](std::size_t r) {
        const obs::Span restart_span("kmeans.restart", "stats");
        Rng sub = streams[r];
        DistanceCounters seed_counters;
        const auto seeds = !opts.initial_seeds.empty()
            ? opts.initial_seeds
            : opts.init == Init::PlusPlus
                ? plusPlusSeeds(data, k, sub, opts.threads, opts.pruning,
                                &seed_counters)
                : randomDistinct(data.rows(), k, sub);
        candidates[r] = lloyd(data, k, opts, seeds);
        candidates[r].distance_counters += seed_counters;
        candidates[r].bic = bicScore(data, candidates[r]);
        obs::count("kmeans.restarts");
        obs::count("kmeans.lloyd_iterations",
                   static_cast<double>(candidates[r].iterations));
    });

    // Fixed reduction order: the lowest restart index wins BIC ties, for
    // every thread count.
    std::size_t best = 0;
    DistanceCounters total;
    for (std::size_t r = 0; r < restarts; ++r) {
        total += candidates[r].distance_counters;
        if (r > 0 && candidates[r].bic > candidates[best].bic)
            best = r;
    }
    obs::count("kmeans.distances_computed",
               static_cast<double>(total.computed));
    obs::count("kmeans.distances_pruned",
               static_cast<double>(total.pruned));
    obs::count("kmeans.row_norms_computed",
               static_cast<double>(total.norms));
    obs::gauge("kmeans.winning_restart", static_cast<double>(best));
    KMeansResult result = std::move(candidates[best]);
    result.distance_counters = total;
    return result;
}

} // namespace mica::stats
