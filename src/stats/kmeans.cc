#include "stats/kmeans.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace mica::stats {

std::vector<std::size_t>
KMeansResult::representatives(const Matrix &data) const
{
    const std::size_t k = centers.rows();
    std::vector<std::size_t> best_idx(k, 0);
    std::vector<double> best_dist(k, std::numeric_limits<double>::max());
    for (std::size_t r = 0; r < data.rows(); ++r) {
        const std::size_t c = assignment[r];
        const double d = squaredDistance(data.row(r), centers.row(c));
        if (d < best_dist[c]) {
            best_dist[c] = d;
            best_idx[c] = r;
        }
    }
    return best_idx;
}

namespace {

/** Pick k distinct row indices uniformly at random. */
std::vector<std::size_t>
randomDistinct(std::size_t n, std::size_t k, Rng &rng)
{
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i)
        idx[i] = i;
    rng.shuffle(idx);
    idx.resize(k);
    return idx;
}

/** k-means++ seeding: next center drawn with probability ~ D(x)^2. */
std::vector<std::size_t>
plusPlusSeeds(const Matrix &data, std::size_t k, Rng &rng)
{
    const std::size_t n = data.rows();
    std::vector<std::size_t> seeds;
    seeds.reserve(k);
    seeds.push_back(static_cast<std::size_t>(rng.nextBelow(n)));

    std::vector<double> d2(n, std::numeric_limits<double>::max());
    while (seeds.size() < k) {
        const auto last = data.row(seeds.back());
        double total = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            d2[i] = std::min(d2[i], squaredDistance(data.row(i), last));
            total += d2[i];
        }
        if (total <= 0.0) {
            // All remaining points coincide with chosen seeds; fall back to
            // an arbitrary unused index.
            seeds.push_back(seeds.size() % n);
            continue;
        }
        double pick = rng.nextDouble() * total;
        std::size_t chosen = n - 1;
        for (std::size_t i = 0; i < n; ++i) {
            pick -= d2[i];
            if (pick <= 0.0) {
                chosen = i;
                break;
            }
        }
        seeds.push_back(chosen);
    }
    return seeds;
}

/** One full Lloyd run from the given seed points. */
KMeansResult
lloyd(const Matrix &data, std::size_t k, const KMeans::Options &opts,
      const std::vector<std::size_t> &seed_rows)
{
    const std::size_t n = data.rows();
    const std::size_t d = data.cols();

    KMeansResult res;
    res.centers = Matrix(k, d);
    for (std::size_t c = 0; c < k; ++c) {
        auto src = data.row(seed_rows[c]);
        auto dst = res.centers.row(c);
        std::copy(src.begin(), src.end(), dst.begin());
    }
    res.assignment.assign(n, 0);
    res.sizes.assign(k, 0);

    Matrix sums(k, d);
    for (int iter = 0; iter < opts.max_iterations; ++iter) {
        res.iterations = iter + 1;

        // Assignment step.
        bool changed = false;
        std::fill(res.sizes.begin(), res.sizes.end(), 0);
        for (std::size_t i = 0; i < k * d; ++i)
            sums.row(i / d)[i % d] = 0.0;
        res.inertia = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            auto point = data.row(i);
            double best = std::numeric_limits<double>::max();
            std::size_t arg = 0;
            for (std::size_t c = 0; c < k; ++c) {
                const double dist = squaredDistance(point,
                                                    res.centers.row(c));
                if (dist < best) {
                    best = dist;
                    arg = c;
                }
            }
            if (res.assignment[i] != arg) {
                res.assignment[i] = arg;
                changed = true;
            }
            res.inertia += best;
            ++res.sizes[arg];
            auto acc = sums.row(arg);
            for (std::size_t j = 0; j < d; ++j)
                acc[j] += point[j];
        }

        // Repair empty clusters: steal the point with the largest distance
        // to its assigned center.
        for (std::size_t c = 0; c < k; ++c) {
            if (res.sizes[c] != 0)
                continue;
            double worst = -1.0;
            std::size_t victim = 0;
            for (std::size_t i = 0; i < n; ++i) {
                if (res.sizes[res.assignment[i]] <= 1)
                    continue;
                const double dist = squaredDistance(
                    data.row(i), res.centers.row(res.assignment[i]));
                if (dist > worst) {
                    worst = dist;
                    victim = i;
                }
            }
            if (worst < 0.0)
                continue; // fewer distinct points than clusters
            auto old = res.assignment[victim];
            auto vrow = data.row(victim);
            auto old_sum = sums.row(old);
            auto new_sum = sums.row(c);
            for (std::size_t j = 0; j < d; ++j) {
                old_sum[j] -= vrow[j];
                new_sum[j] += vrow[j];
            }
            --res.sizes[old];
            ++res.sizes[c];
            res.assignment[victim] = c;
            changed = true;
        }

        // Update step.
        double movement = 0.0;
        for (std::size_t c = 0; c < k; ++c) {
            if (res.sizes[c] == 0)
                continue;
            auto acc = sums.row(c);
            auto center = res.centers.row(c);
            for (std::size_t j = 0; j < d; ++j) {
                const double nc = acc[j] / static_cast<double>(res.sizes[c]);
                const double delta = nc - center[j];
                movement += delta * delta;
                center[j] = nc;
            }
        }

        if (!changed || movement < opts.tolerance * opts.tolerance)
            break;
    }

    // Recompute final inertia against the final centers.
    res.inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        res.inertia += squaredDistance(data.row(i),
                                       res.centers.row(res.assignment[i]));
    return res;
}

} // namespace

double
KMeans::bicScore(const Matrix &data, const KMeansResult &clustering)
{
    const double n = static_cast<double>(data.rows());
    const double d = static_cast<double>(data.cols());
    const double k = static_cast<double>(clustering.centers.rows());
    if (n <= k)
        return -std::numeric_limits<double>::max();

    // Pooled spherical variance MLE; clamp so perfectly tight clusters do
    // not produce log(0).
    const double sigma2 =
        std::max(clustering.inertia / (d * (n - k)), 1e-12);

    double loglik = 0.0;
    for (std::size_t c = 0; c < clustering.sizes.size(); ++c) {
        const double nc = static_cast<double>(clustering.sizes[c]);
        if (nc <= 0.0)
            continue;
        loglik += nc * std::log(nc / n);
    }
    loglik -= n * d / 2.0 * std::log(2.0 * std::numbers::pi * sigma2);
    loglik -= d * (n - k) / 2.0;

    const double num_params = (k - 1.0) + k * d + 1.0;
    return loglik - num_params / 2.0 * std::log(n);
}

KMeansResult
KMeans::run(const Matrix &data, const Options &opts)
{
    if (data.rows() == 0)
        throw std::invalid_argument("KMeans::run: empty data");
    const std::size_t k = std::min(opts.k, data.rows());
    if (k == 0)
        throw std::invalid_argument("KMeans::run: k must be positive");

    Rng rng(opts.seed);
    KMeansResult best;
    bool have_best = false;
    for (int r = 0; r < std::max(opts.restarts, 1); ++r) {
        Rng sub = rng.split();
        const auto seeds = opts.init == Init::PlusPlus
            ? plusPlusSeeds(data, k, sub)
            : randomDistinct(data.rows(), k, sub);
        KMeansResult candidate = lloyd(data, k, opts, seeds);
        candidate.bic = bicScore(data, candidate);
        if (!have_best || candidate.bic > best.bic) {
            best = std::move(candidate);
            have_best = true;
        }
    }
    return best;
}

} // namespace mica::stats
