/**
 * @file
 * Principal components analysis as used by the characterization methodology
 * (paper section 3.5).
 *
 * The pipeline normalizes the input data set, computes the principal
 * components, retains the components with standard deviation greater than a
 * threshold (1.0 in the paper, i.e. eigenvalue > 1 on the correlation
 * matrix), and finally re-normalizes the retained component scores so every
 * retained dimension carries equal weight — the "rescaled PCA space" in
 * which clustering and distance computations happen.
 */

#ifndef MICAPHASE_STATS_PCA_HH
#define MICAPHASE_STATS_PCA_HH

#include <cstddef>
#include <vector>

#include "stats/matrix.hh"
#include "stats/summary.hh"

namespace mica::stats {

/** Fitted PCA model. */
class Pca
{
  public:
    /** Options controlling component retention. */
    struct Options
    {
        /**
         * Retain components whose score standard deviation exceeds this
         * (paper: 1.0, on z-score-normalized input).
         */
        double min_stddev = 1.0;
        /** Normalize input columns to z-scores before decomposition. */
        bool normalize_input = true;
        /** Upper bound on retained components (0 = no bound). */
        std::size_t max_components = 0;
        /** Always retain at least this many components. */
        std::size_t min_components = 1;
        /**
         * Worker threads for the blocked covariance accumulation
         * (0 = hardware concurrency). The fitted model is bit-identical
         * for every value; see covarianceMatrix.
         */
        unsigned threads = 1;
    };

    /** Fit a PCA model on a data matrix (rows = observations). */
    static Pca fit(const Matrix &data, const Options &opts);

    /** Fit with default options. */
    static Pca fit(const Matrix &data) { return fit(data, Options{}); }

    /** Number of retained components. */
    [[nodiscard]] std::size_t numComponents() const { return retained_; }

    /** Eigenvalues (variances along components), all of them, descending. */
    [[nodiscard]] const std::vector<double> &eigenvalues() const
    {
        return eigenvalues_;
    }

    /** Fraction of total variance explained by the retained components. */
    [[nodiscard]] double explainedVarianceFraction() const;

    /**
     * Project data into the retained principal component space.
     * Input must have the same number of columns as the training data.
     */
    [[nodiscard]] Matrix transform(const Matrix &data) const;

    /**
     * Project and rescale so each retained component has unit variance over
     * the training data ("rescaled PCA space").
     */
    [[nodiscard]] Matrix transformRescaled(const Matrix &data) const;

    /** Loadings: columns are the retained eigenvectors (p x m). */
    [[nodiscard]] const Matrix &loadings() const { return loadings_; }

    /** Per-column mean/sd of the training data (transform's normalizer). */
    [[nodiscard]] const ColumnStats &inputStats() const
    {
        return input_stats_;
    }

    /** Whether transform() z-scores its input first. */
    [[nodiscard]] bool normalizeInput() const { return normalize_input_; }

    /**
     * Training score standard deviation per retained component — the
     * divisors transformRescaled applies (components with sd <= 1e-12
     * rescale to exactly 0).
     */
    [[nodiscard]] const std::vector<double> &scoreStdDevs() const
    {
        return score_sd_;
    }

    /**
     * An empty placeholder model (no components); fit() is the only way
     * to obtain a usable one. Public so structs holding a fitted Pca
     * (e.g. core::PhaseAnalysis) stay default-constructible.
     */
    Pca() = default;

  private:
    ColumnStats input_stats_;
    bool normalize_input_ = true;
    std::vector<double> eigenvalues_;
    std::size_t retained_ = 0;
    Matrix loadings_;                 ///< p x retained
    std::vector<double> score_sd_;    ///< stddev of each retained component
};

/**
 * One-call helper implementing the methodology's distance construction:
 * normalize -> PCA (retain sd > 1) -> rescale. Returns the rescaled scores.
 */
[[nodiscard]] Matrix rescaledPcaSpace(const Matrix &data,
                                      const Pca::Options &opts = {});

} // namespace mica::stats

#endif // MICAPHASE_STATS_PCA_HH
