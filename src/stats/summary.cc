#include "stats/summary.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mica::stats {

ColumnStats
columnStats(const Matrix &m)
{
    ColumnStats out;
    out.mean.assign(m.cols(), 0.0);
    out.stddev.assign(m.cols(), 0.0);
    if (m.rows() == 0)
        return out;

    for (std::size_t r = 0; r < m.rows(); ++r) {
        auto row = m.row(r);
        for (std::size_t c = 0; c < m.cols(); ++c)
            out.mean[c] += row[c];
    }
    for (std::size_t c = 0; c < m.cols(); ++c)
        out.mean[c] /= static_cast<double>(m.rows());

    for (std::size_t r = 0; r < m.rows(); ++r) {
        auto row = m.row(r);
        for (std::size_t c = 0; c < m.cols(); ++c) {
            const double d = row[c] - out.mean[c];
            out.stddev[c] += d * d;
        }
    }
    for (std::size_t c = 0; c < m.cols(); ++c)
        out.stddev[c] = std::sqrt(out.stddev[c] /
                                  static_cast<double>(m.rows()));
    return out;
}

Matrix
normalizeColumns(const Matrix &m, const ColumnStats &stats)
{
    assert(stats.mean.size() == m.cols());
    Matrix out(m.rows(), m.cols());
    for (std::size_t r = 0; r < m.rows(); ++r) {
        auto src = m.row(r);
        auto dst = out.row(r);
        for (std::size_t c = 0; c < m.cols(); ++c) {
            const double sd = stats.stddev[c];
            dst[c] = sd > kStddevEpsilon ? (src[c] - stats.mean[c]) / sd
                                         : 0.0;
        }
    }
    return out;
}

Matrix
normalizeColumns(const Matrix &m)
{
    return normalizeColumns(m, columnStats(m));
}

double
mean(std::span<const double> v)
{
    if (v.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : v)
        acc += x;
    return acc / static_cast<double>(v.size());
}

double
variance(std::span<const double> v)
{
    if (v.empty())
        return 0.0;
    const double mu = mean(v);
    double acc = 0.0;
    for (double x : v) {
        const double d = x - mu;
        acc += d * d;
    }
    return acc / static_cast<double>(v.size());
}

double
pearson(std::span<const double> a, std::span<const double> b)
{
    assert(a.size() == b.size());
    if (a.size() < 2)
        return 0.0;
    const double ma = mean(a);
    const double mb = mean(b);
    double cov = 0.0, va = 0.0, vb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double da = a[i] - ma;
        const double db = b[i] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if (va <= 0.0 || vb <= 0.0)
        return 0.0;
    return cov / std::sqrt(va * vb);
}

namespace {

/** Rank transform with average ranks for ties (1-based, but any affine
 *  shift cancels in the Pearson step). */
std::vector<double>
rankTransform(std::span<const double> v)
{
    std::vector<std::size_t> order(v.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });

    std::vector<double> ranks(v.size(), 0.0);
    std::size_t i = 0;
    while (i < order.size()) {
        std::size_t j = i;
        while (j + 1 < order.size() && v[order[j + 1]] == v[order[i]])
            ++j;
        const double avg = (static_cast<double>(i) +
                            static_cast<double>(j)) / 2.0 + 1.0;
        for (std::size_t k = i; k <= j; ++k)
            ranks[order[k]] = avg;
        i = j + 1;
    }
    return ranks;
}

} // namespace

double
spearman(std::span<const double> a, std::span<const double> b)
{
    assert(a.size() == b.size());
    if (a.size() < 2)
        return 0.0;
    const std::vector<double> ra = rankTransform(a);
    const std::vector<double> rb = rankTransform(b);
    return pearson(ra, rb);
}

std::vector<double>
pairwiseDistances(const Matrix &m)
{
    const std::size_t n = m.rows();
    std::vector<double> out;
    out.reserve(n * (n - 1) / 2);
    for (std::size_t i = 0; i + 1 < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j)
            out.push_back(euclideanDistance(m.row(i), m.row(j)));
    return out;
}

} // namespace mica::stats
