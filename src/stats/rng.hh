/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The analysis pipeline (interval sampling, k-means restarts, genetic
 * algorithm) must be bit-exactly reproducible across platforms and standard
 * library implementations, so we provide our own generator and distributions
 * instead of relying on <random> (whose distributions are
 * implementation-defined).
 */

#ifndef MICAPHASE_STATS_RNG_HH
#define MICAPHASE_STATS_RNG_HH

#include <cstdint>
#include <vector>

namespace mica::stats {

/** SplitMix64: used to expand a single 64-bit seed into generator state. */
[[nodiscard]] std::uint64_t splitMix64(std::uint64_t &state);

/**
 * xoshiro256** pseudo-random generator (Blackman & Vigna).
 *
 * Small, fast, high-quality, and fully deterministic given a seed. This is
 * the only source of randomness in the library.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded through SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    [[nodiscard]] std::uint64_t nextU64();

    /** Uniform integer in [0, bound), bias-free via rejection. bound > 0. */
    [[nodiscard]] std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    [[nodiscard]] double nextDouble();

    /** Uniform double in [lo, hi). */
    [[nodiscard]] double uniform(double lo, double hi);

    /** Standard normal deviate via Box-Muller (deterministic). */
    [[nodiscard]] double nextGaussian();

    /** True with probability p. */
    [[nodiscard]] bool nextBool(double p);

    /** Fisher-Yates shuffle of a vector (deterministic). */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(nextBelow(i));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an independent child generator (for per-task streams). */
    [[nodiscard]] Rng split();

  private:
    std::uint64_t s_[4];
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

} // namespace mica::stats

#endif // MICAPHASE_STATS_RNG_HH
