/**
 * @file
 * Dense row-major matrix used throughout the statistics substrate.
 *
 * Rows are observations (instruction intervals, phase representatives),
 * columns are variables (microarchitecture-independent characteristics or
 * principal components). The class deliberately stays small: the analysis
 * pipeline needs construction, element access, row/column views, products,
 * and transposition — not a full BLAS.
 */

#ifndef MICAPHASE_STATS_MATRIX_HH
#define MICAPHASE_STATS_MATRIX_HH

#include <cassert>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/aligned.hh"

namespace mica::stats {

/**
 * Non-owning const view of a dense row-major double matrix. The pointed-to
 * storage must be 8-byte aligned and outlive the view; the zero-copy model
 * loader aliases views straight into an mmap'd file, so kernels that accept
 * a MatrixView serve both owned matrices and frozen artifacts without a
 * copy.
 */
class MatrixView
{
  public:
    constexpr MatrixView() = default;

    constexpr MatrixView(const double *data, std::size_t rows,
                         std::size_t cols)
        : data_(data), rows_(rows), cols_(cols)
    {
    }

    [[nodiscard]] constexpr std::size_t rows() const { return rows_; }
    [[nodiscard]] constexpr std::size_t cols() const { return cols_; }
    [[nodiscard]] constexpr bool empty() const
    {
        return rows_ == 0 || cols_ == 0;
    }

    [[nodiscard]] double
    at(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Const view of row r. */
    [[nodiscard]] std::span<const double>
    row(std::size_t r) const
    {
        assert(r < rows_);
        return {data_ + r * cols_, cols_};
    }

    /** Raw row-major storage. */
    [[nodiscard]] const double *data() const { return data_; }

  private:
    const double *data_ = nullptr;
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
};

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;

    /** Construct a rows x cols matrix, zero-initialized. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Construct from nested initializer data; all rows must be equal. */
    static Matrix fromRows(const std::vector<std::vector<double>> &rows);

    /** Identity matrix of size n. */
    static Matrix identity(std::size_t n);

    [[nodiscard]] std::size_t rows() const { return rows_; }
    [[nodiscard]] std::size_t cols() const { return cols_; }
    [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }

    [[nodiscard]] double &
    at(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }

    [[nodiscard]] double
    at(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    double &operator()(std::size_t r, std::size_t c) { return at(r, c); }
    double operator()(std::size_t r, std::size_t c) const { return at(r, c); }

    /** Mutable view of row r. */
    [[nodiscard]] std::span<double> row(std::size_t r);

    /** Const view of row r. */
    [[nodiscard]] std::span<const double> row(std::size_t r) const;

    /** Copy of column c. */
    [[nodiscard]] std::vector<double> col(std::size_t c) const;

    /** Append a row (must match cols(), or set cols on first row). */
    void appendRow(std::span<const double> values);

    /** Matrix product this(r x k) * other(k x c). */
    [[nodiscard]] Matrix multiply(const Matrix &other) const;

    /** Transpose. */
    [[nodiscard]] Matrix transposed() const;

    /** Keep only the first n columns. */
    [[nodiscard]] Matrix leftCols(std::size_t n) const;

    /** Gather the given column indices into a new matrix. */
    [[nodiscard]] Matrix selectCols(std::span<const std::size_t> idx) const;

    /** Gather the given row indices into a new matrix. */
    [[nodiscard]] Matrix selectRows(std::span<const std::size_t> idx) const;

    /** Max absolute element-wise difference versus another matrix. */
    [[nodiscard]] double maxAbsDiff(const Matrix &other) const;

    /** Raw storage (row-major), e.g. for serialization. The base pointer
     *  is cache-line (64-byte) aligned so the SIMD kernels see aligned
     *  rows whenever cols is a multiple of 8 doubles — and merely
     *  unaligned (never invalid) loads otherwise. */
    [[nodiscard]] const util::AlignedVector<double> &data() const
    {
        return data_;
    }

    /** Non-owning view of this matrix (valid while the matrix lives). */
    [[nodiscard]] MatrixView view() const
    {
        return {data_.data(), rows_, cols_};
    }

    /** Owned copy of a view's contents. */
    static Matrix fromView(MatrixView v);

    /** Human-readable dump (for debugging and error messages). */
    [[nodiscard]] std::string toString(int precision = 4) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    util::AlignedVector<double> data_;
};

/** Euclidean distance between two equally sized vectors. */
[[nodiscard]] double euclideanDistance(std::span<const double> a,
                                       std::span<const double> b);

/** Squared Euclidean distance between two equally sized vectors. */
[[nodiscard]] double squaredDistance(std::span<const double> a,
                                     std::span<const double> b);

} // namespace mica::stats

#endif // MICAPHASE_STATS_MATRIX_HH
