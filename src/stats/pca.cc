#include "stats/pca.hh"

#include <cmath>
#include <stdexcept>

#include "obs/trace.hh"
#include "stats/eigen.hh"

namespace mica::stats {

Pca
Pca::fit(const Matrix &data, const Options &opts)
{
    if (data.rows() == 0 || data.cols() == 0)
        throw std::invalid_argument("Pca::fit: empty data");

    const obs::Span fit_span("pca.fit", "stats");
    Pca model;
    model.normalize_input_ = opts.normalize_input;
    model.input_stats_ = columnStats(data);

    const Matrix prepared = opts.normalize_input
        ? normalizeColumns(data, model.input_stats_)
        : data;

    const Matrix cov = covarianceMatrix(prepared, opts.threads);
    EigenDecomposition eig = jacobiEigenSymmetric(cov);
    model.eigenvalues_ = eig.values;

    const double min_var = opts.min_stddev * opts.min_stddev;
    std::size_t keep = 0;
    for (double v : eig.values) {
        if (v > min_var)
            ++keep;
        else
            break; // eigenvalues are sorted descending
    }
    keep = std::max(keep, opts.min_components);
    if (opts.max_components > 0)
        keep = std::min(keep, opts.max_components);
    keep = std::min(keep, eig.values.size());
    model.retained_ = keep;

    model.loadings_ = Matrix(data.cols(), keep);
    for (std::size_t r = 0; r < data.cols(); ++r)
        for (std::size_t c = 0; c < keep; ++c)
            model.loadings_(r, c) = eig.vectors(r, c);

    model.score_sd_.resize(keep);
    for (std::size_t c = 0; c < keep; ++c)
        model.score_sd_[c] = std::sqrt(std::max(eig.values[c], 0.0));

    return model;
}

double
Pca::explainedVarianceFraction() const
{
    double total = 0.0, kept = 0.0;
    for (std::size_t i = 0; i < eigenvalues_.size(); ++i) {
        const double v = std::max(eigenvalues_[i], 0.0);
        total += v;
        if (i < retained_)
            kept += v;
    }
    return total > 0.0 ? kept / total : 0.0;
}

Matrix
Pca::transform(const Matrix &data) const
{
    if (data.cols() != loadings_.rows())
        throw std::invalid_argument("Pca::transform: width mismatch");
    const Matrix prepared = normalize_input_
        ? normalizeColumns(data, input_stats_)
        : data;
    return prepared.multiply(loadings_);
}

Matrix
Pca::transformRescaled(const Matrix &data) const
{
    Matrix scores = transform(data);
    for (std::size_t r = 0; r < scores.rows(); ++r) {
        auto row = scores.row(r);
        for (std::size_t c = 0; c < scores.cols(); ++c) {
            const double sd = score_sd_[c];
            row[c] = sd > 1e-12 ? row[c] / sd : 0.0;
        }
    }
    return scores;
}

Matrix
rescaledPcaSpace(const Matrix &data, const Pca::Options &opts)
{
    return Pca::fit(data, opts).transformRescaled(data);
}

} // namespace mica::stats
