/**
 * @file
 * Column-wise summary statistics and z-score normalization.
 *
 * The characterization methodology normalizes the data set (zero mean, unit
 * variance per characteristic) before PCA, and again after PCA so that all
 * retained principal components carry equal weight ("rescaled PCA space",
 * paper section 3.5).
 */

#ifndef MICAPHASE_STATS_SUMMARY_HH
#define MICAPHASE_STATS_SUMMARY_HH

#include <span>
#include <vector>

#include "stats/matrix.hh"

namespace mica::stats {

/**
 * A column (or principal component) whose standard deviation is at or
 * below this is treated as degenerate: normalization and rescaling map it
 * to exactly 0.0 instead of dividing by (near-)zero. Every consumer of the
 * frozen normalize -> PCA -> rescale chain must use this same constant or
 * replayed projections stop being bit-identical.
 */
inline constexpr double kStddevEpsilon = 1e-12;

/** Per-column mean / standard deviation pair. */
struct ColumnStats
{
    std::vector<double> mean;
    std::vector<double> stddev; ///< population standard deviation
};

/** Compute column means and (population) standard deviations. */
[[nodiscard]] ColumnStats columnStats(const Matrix &m);

/**
 * Z-score normalize a matrix column-wise.
 *
 * Columns with (near-)zero standard deviation are mapped to all-zero columns
 * rather than dividing by zero; such constant characteristics carry no
 * information for PCA anyway.
 */
[[nodiscard]] Matrix normalizeColumns(const Matrix &m,
                                      const ColumnStats &stats);

/** Convenience overload computing the stats internally. */
[[nodiscard]] Matrix normalizeColumns(const Matrix &m);

/** Mean of a vector. */
[[nodiscard]] double mean(std::span<const double> v);

/** Population variance of a vector. */
[[nodiscard]] double variance(std::span<const double> v);

/**
 * Pearson correlation coefficient of two equally sized vectors.
 *
 * Returns 0 when either vector is constant (correlation undefined).
 */
[[nodiscard]] double pearson(std::span<const double> a,
                             std::span<const double> b);

/**
 * Spearman rank correlation of two equally sized vectors: the Pearson
 * correlation of the rank transforms, with tied values receiving their
 * average rank. Robust to monotone but non-linear relationships, which is
 * why the static-vs-dynamic feature validation reports it alongside
 * Pearson. Returns 0 when either vector is constant.
 */
[[nodiscard]] double spearman(std::span<const double> a,
                              std::span<const double> b);

/**
 * Condensed upper-triangle pairwise Euclidean distance vector of the rows of
 * a matrix: entries (0,1), (0,2), ..., (n-2,n-1).
 */
[[nodiscard]] std::vector<double> pairwiseDistances(const Matrix &m);

} // namespace mica::stats

#endif // MICAPHASE_STATS_SUMMARY_HH
