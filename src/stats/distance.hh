/**
 * @file
 * Distance kernels and Hamerly-style pruning bounds for the clustering
 * hot paths.
 *
 * The contract that makes pruning safe to enable everywhere: bounds only
 * ever *skip* exact `squaredDistance` evaluations whose outcome is
 * provably irrelevant — they never replace an evaluation with an
 * approximation. Every distance that does get computed uses the exact
 * same arithmetic (and comparison order) as the naive scan, so a pruned
 * clustering is bit-for-bit identical to an unpruned one.
 *
 * Floating-point soundness: the triangle-inequality bookkeeping behind
 * the bounds (square roots, center-movement drift) is itself subject to
 * rounding, so every stored bound carries a multiplicative slack of
 * `kBoundSlack` per update (upper bounds are inflated, lower bounds
 * deflated). The slack (1e-10 relative) dwarfs the worst-case relative
 * error of a `squaredDistance` evaluation (~d * 2^-53 ≈ 1.5e-14 at
 * d = 69) and of the drift additions, so a skip decision can never
 * contradict what the exact scan would have concluded; a near-tie simply
 * fails the skip test and falls through to the exact computation.
 *
 * See docs/PERFORMANCE.md ("Distance pruning") for the full argument.
 */

#ifndef MICAPHASE_STATS_DISTANCE_HH
#define MICAPHASE_STATS_DISTANCE_HH

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "stats/matrix.hh"

namespace mica::stats {

/**
 * Relative slack applied on every bound update. Must exceed the relative
 * rounding error of one squaredDistance/sqrt/add chain by a comfortable
 * margin (see file comment); the cost is only that a point whose true
 * margin is below the slack falls back to the exact scan.
 */
inline constexpr double kBoundSlack = 1e-10;

/** Round an upper bound up: the result is >= the exact value. */
[[nodiscard]] inline double
inflateBound(double v)
{
    return v * (1.0 + kBoundSlack);
}

/** Round a (non-negative) lower bound down: the result is <= exact. */
[[nodiscard]] inline double
deflateBound(double v)
{
    return v * (1.0 - kBoundSlack);
}

/** Outcome of classifying one point against a set of centers. */
struct NearestCenter
{
    std::size_t index = 0; ///< argmin center (lowest index wins ties)
    double dist2 = std::numeric_limits<double>::max(); ///< exact d² to it
    /** Exact d² to the runner-up center (max double when k == 1). */
    double second_dist2 = std::numeric_limits<double>::max();
};

/**
 * Point-vs-many-centers kernel: exact argmin over all rows of `centers`,
 * scanning centers in index order with a strict `<` comparison — the
 * byte-for-byte behaviour of the historical naive Lloyd inner loop
 * (lowest index wins ties). Additionally tracks the runner-up distance
 * for bound maintenance; the extra bookkeeping never changes which
 * distances are computed or how they are compared.
 *
 * When `cached_index != npos`, the distance to that one center is taken
 * from `cached_dist2` instead of being recomputed. Because
 * squaredDistance is deterministic, the cached value is bitwise equal to
 * what the scan would have produced, so results are unchanged while one
 * evaluation is saved (the pruned path always arrives here having
 * already tightened its upper bound against the assigned center).
 */
[[nodiscard]] NearestCenter
nearestCenter(std::span<const double> point, MatrixView centers,
              std::size_t cached_index = static_cast<std::size_t>(-1),
              double cached_dist2 = 0.0);

/** Owned-matrix convenience overload (identical arithmetic). */
[[nodiscard]] NearestCenter
nearestCenter(std::span<const double> point, const Matrix &centers,
              std::size_t cached_index = static_cast<std::size_t>(-1),
              double cached_dist2 = 0.0);

/** Exact distance-work counters for one clustering run. */
struct DistanceCounters
{
    std::uint64_t computed = 0; ///< squaredDistance evaluations performed
    std::uint64_t pruned = 0;   ///< evaluations skipped by bounds
    std::uint64_t norms = 0;    ///< row-norm (sum-of-squares) evaluations

    void
    operator+=(const DistanceCounters &other)
    {
        computed += other.computed;
        pruned += other.pruned;
        norms += other.norms;
    }
};

/**
 * Abstract nearest-center strategy: something that can answer "which
 * center is closest to this point?" without the caller knowing how.
 *
 * The exact scan (`nearestCenter`) is the reference implementation; the
 * ANN layer (`ann::CenterIndex`, src/ann) provides a sublinear
 * graph-search one. The interface lives here — below the ANN library —
 * so that consumers inside `mica_stats` (projectRows, the Lloyd
 * assignment step) can accept a finder without a dependency cycle.
 *
 * Contract for implementations:
 *  - `find` must be thread-safe for concurrent const use (row-parallel
 *    callers share one finder across blocks).
 *  - Every distance that is reported must be the exact
 *    `squaredDistance` to the reported center, so when an approximate
 *    finder does locate the true nearest center its result is bitwise
 *    equal to the exact scan's (index, dist2) pair.
 *  - Ties among equal distances must resolve to the lowest index the
 *    implementation examined, matching the exact scan's strict-`<`
 *    contract.
 */
class NearestCenterFinder
{
  public:
    virtual ~NearestCenterFinder() = default;

    /**
     * Nearest (or approximately nearest) center for `point`. When
     * `counters` is non-null the implementation accounts its distance
     * work there (`computed` for evaluations performed, `pruned` for
     * the evaluations a full exact scan would have needed but this call
     * skipped).
     */
    [[nodiscard]] virtual NearestCenter
    find(std::span<const double> point,
         DistanceCounters *counters = nullptr) const = 0;

    /**
     * Characteristic length scale of the structure the finder built
     * (e.g. the mean graph edge length), used by callers that mutate
     * the centers in place (Lloyd) to decide when accumulated center
     * drift has made the structure stale enough to rebuild. 0 means
     * "no structure" — rebuilds are free, callers may rebuild eagerly.
     */
    [[nodiscard]] virtual double lengthScale() const { return 0.0; }
};

/**
 * Factory for finders over a (caller-owned) center matrix. `KMeans`
 * takes one of these (`Options::ann`) rather than a finder instance
 * because Lloyd moves the centers and must be able to rebuild the
 * structure mid-run. Implementations must be thread-safe for concurrent
 * const use (the restart fan-out builds in parallel) and must produce
 * finders whose behaviour is a pure function of the center bytes and
 * the factory's own configuration — never of the thread count.
 *
 * The returned finder holds a *view* of `centers`: the matrix must
 * outlive it, and mutating the matrix in place is allowed (distances
 * stay exact against the current values; only the acceleration
 * structure's topology goes stale — see lengthScale()).
 */
class NearestCenterFinderFactory
{
  public:
    virtual ~NearestCenterFinderFactory() = default;

    [[nodiscard]] virtual std::unique_ptr<NearestCenterFinder>
    build(MatrixView centers, unsigned threads) const = 0;
};

/**
 * Per-point Hamerly bounds: `upper[i]` >= the Euclidean distance from
 * point i to its assigned center, `lower[i]` <= the distance to every
 * *other* center. While `upper[i] < lower[i]`, the assigned center is a
 * strict unique minimizer, so the whole k-center scan for point i can be
 * skipped without changing anything the exact algorithm would observe.
 *
 * All state is per-point; the owner may update disjoint point ranges
 * from different threads (the Lloyd assignment step does so per row
 * block), giving thread-count-invariant bounds by construction.
 */
class HamerlyBounds
{
  public:
    /** Reset to n points with vacuous bounds (forces a full first scan). */
    void reset(std::size_t n);

    [[nodiscard]] bool empty() const { return upper_.empty(); }

    /** True when point i provably keeps its current assignment. */
    [[nodiscard]] bool
    canSkip(std::size_t i) const
    {
        return upper_[i] < lower_[i];
    }

    /**
     * Tighten the upper bound to the exactly computed squared distance
     * between point i and its assigned center.
     */
    void
    tighten(std::size_t i, double dist2)
    {
        upper_[i] = inflateBound(std::sqrt(dist2));
    }

    /** Install bounds after a full exact scan of point i. */
    void
    assign(std::size_t i, const NearestCenter &nearest)
    {
        upper_[i] = inflateBound(std::sqrt(nearest.dist2));
        lower_[i] = deflateBound(std::sqrt(nearest.second_dist2));
    }

    /**
     * Invalidate point i (e.g. the empty-cluster repair reassigned it
     * behind the bounds' back): the next pass must rescan it.
     */
    void
    invalidate(std::size_t i)
    {
        upper_[i] = std::numeric_limits<double>::max();
        lower_[i] = 0.0;
    }

    /**
     * Account for one update step's center movement: the assigned center
     * moved by `own_move`, and no other center moved by more than
     * `max_other_move` (both Euclidean, pre-inflated by the caller).
     */
    void
    drift(std::size_t i, double own_move, double max_other_move)
    {
        upper_[i] = inflateBound(upper_[i] + own_move);
        const double lowered = lower_[i] - max_other_move;
        lower_[i] = lowered > 0.0 ? deflateBound(lowered) : 0.0;
    }

  private:
    std::vector<double> upper_;
    std::vector<double> lower_;
};

/**
 * Center-movement summary for one Lloyd update step, used to drift the
 * bounds: per-center Euclidean movement (inflated), plus the largest and
 * second-largest so `maxOtherMove` is exact for every assignment.
 */
struct CenterDrift
{
    std::vector<double> move; ///< inflated Euclidean movement per center
    double max_move = 0.0;
    double second_max_move = 0.0;
    std::size_t max_index = 0;

    /** Rebuild from per-center squared movements. */
    void fromSquaredMovements(std::span<const double> move2);

    /** Largest movement among centers other than `center`. */
    [[nodiscard]] double
    maxOtherMove(std::size_t center) const
    {
        return center == max_index ? second_max_move : max_move;
    }
};

/**
 * Euclidean norm of every row (exact per-row arithmetic, row-parallel
 * safe). Used by the k-means++ seeding pruner. Each row costs one
 * sum-of-squares kernel evaluation — the same flop shape as a
 * squaredDistance — so when `counters` is given the rows are accounted
 * in `DistanceCounters::norms` alongside the other distance work.
 */
[[nodiscard]] std::vector<double>
rowNorms(const Matrix &data, DistanceCounters *counters = nullptr);

/**
 * Reverse-triangle-inequality pruning test for the k-means++ min-distance
 * update: true when `squaredDistance(point, seed) >= current_d2` is
 * certain from the row norms alone, i.e. `min(current_d2, d²)` provably
 * keeps its current value and the evaluation can be skipped. Conservative
 * under rounding (uses kBoundSlack margins), so a skip never changes the
 * seeding's bits.
 */
[[nodiscard]] inline bool
normGapPrunes(double point_norm, double seed_norm, double current_d2)
{
    const double gap = point_norm > seed_norm ? point_norm - seed_norm
                                              : seed_norm - point_norm;
    const double safe_gap = deflateBound(gap);
    return deflateBound(safe_gap * safe_gap) >= current_d2;
}

} // namespace mica::stats

#endif // MICAPHASE_STATS_DISTANCE_HH
