#include "stats/rng.hh"

#include <cassert>
#include <cmath>
#include <numbers>

namespace mica::stats {

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
    // xoshiro must not be seeded with all zeros; SplitMix64 cannot produce
    // four zero outputs in a row, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = nextU64();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    // 53 high-quality bits -> [0, 1).
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

double
Rng::nextGaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    const double u2 = nextDouble();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double two_pi = 2.0 * std::numbers::pi;
    spare_ = mag * std::sin(two_pi * u2);
    hasSpare_ = true;
    return mag * std::cos(two_pi * u2);
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

Rng
Rng::split()
{
    return Rng(nextU64());
}

} // namespace mica::stats
