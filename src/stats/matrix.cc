#include "stats/matrix.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "stats/simd.hh"

namespace mica::stats {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
}

Matrix
Matrix::fromRows(const std::vector<std::vector<double>> &rows)
{
    Matrix m;
    for (const auto &r : rows)
        m.appendRow(r);
    return m;
}

Matrix
Matrix::fromView(MatrixView v)
{
    Matrix m(v.rows(), v.cols());
    if (!v.empty())
        std::copy(v.data(), v.data() + v.rows() * v.cols(),
                  m.data_.begin());
    return m;
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m.at(i, i) = 1.0;
    return m;
}

std::span<double>
Matrix::row(std::size_t r)
{
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
}

std::span<const double>
Matrix::row(std::size_t r) const
{
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
}

std::vector<double>
Matrix::col(std::size_t c) const
{
    assert(c < cols_);
    std::vector<double> out(rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        out[r] = at(r, c);
    return out;
}

void
Matrix::appendRow(std::span<const double> values)
{
    if (rows_ == 0 && cols_ == 0) {
        cols_ = values.size();
    } else if (values.size() != cols_) {
        throw std::invalid_argument("Matrix::appendRow: width mismatch");
    }
    data_.insert(data_.end(), values.begin(), values.end());
    ++rows_;
}

Matrix
Matrix::multiply(const Matrix &other) const
{
    if (cols_ != other.rows_)
        throw std::invalid_argument("Matrix::multiply: shape mismatch");
    Matrix out(rows_, other.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = at(i, k);
            if (a == 0.0)
                continue;
            const double *brow = other.data_.data() + k * other.cols_;
            double *orow = out.data_.data() + i * other.cols_;
            simd::axpy(a, brow, orow, other.cols_);
        }
    }
    return out;
}

Matrix
Matrix::transposed() const
{
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out.at(c, r) = at(r, c);
    return out;
}

Matrix
Matrix::leftCols(std::size_t n) const
{
    assert(n <= cols_);
    Matrix out(rows_, n);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < n; ++c)
            out.at(r, c) = at(r, c);
    return out;
}

Matrix
Matrix::selectCols(std::span<const std::size_t> idx) const
{
    Matrix out(rows_, idx.size());
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < idx.size(); ++c) {
            assert(idx[c] < cols_);
            out.at(r, c) = at(r, idx[c]);
        }
    return out;
}

Matrix
Matrix::selectRows(std::span<const std::size_t> idx) const
{
    Matrix out(idx.size(), cols_);
    for (std::size_t r = 0; r < idx.size(); ++r) {
        assert(idx[r] < rows_);
        for (std::size_t c = 0; c < cols_; ++c)
            out.at(r, c) = at(idx[r], c);
    }
    return out;
}

double
Matrix::maxAbsDiff(const Matrix &other) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        throw std::invalid_argument("Matrix::maxAbsDiff: shape mismatch");
    double worst = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i)
        worst = std::max(worst, std::fabs(data_[i] - other.data_[i]));
    return worst;
}

std::string
Matrix::toString(int precision) const
{
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed;
    for (std::size_t r = 0; r < rows_; ++r) {
        os << "[";
        for (std::size_t c = 0; c < cols_; ++c)
            os << (c ? ", " : " ") << at(r, c);
        os << " ]\n";
    }
    return os.str();
}

double
squaredDistance(std::span<const double> a, std::span<const double> b)
{
    assert(a.size() == b.size());
    return simd::squaredDistance(a.data(), b.data(), a.size());
}

double
euclideanDistance(std::span<const double> a, std::span<const double> b)
{
    return std::sqrt(squaredDistance(a, b));
}

} // namespace mica::stats
