/**
 * @file
 * k-means clustering with BIC scoring (paper section 3.6).
 *
 * The methodology runs k-means for a fixed k (300 in the paper) from several
 * random initial center sets and keeps the clustering with the highest
 * Bayesian Information Criterion score. BIC follows the spherical-Gaussian
 * formulation of Pelleg & Moore (X-means), trading goodness of fit against
 * the number of clusters.
 *
 * The Lloyd assignment step and the k-means++ seeding run on the distance
 * kernel layer (stats/distance.hh): Hamerly-style upper/lower bounds skip
 * the inner k-center scan for points whose assignment provably cannot have
 * changed. Bounds only ever *skip* exact squaredDistance evaluations, never
 * replace them, so assignments, centers, sizes, inertia and BIC are
 * bit-for-bit identical with pruning on or off (`Options::pruning` keeps
 * the naive path alive as the test oracle); pruning only changes how much
 * distance work is done. See docs/PERFORMANCE.md ("Distance pruning").
 */

#ifndef MICAPHASE_STATS_KMEANS_HH
#define MICAPHASE_STATS_KMEANS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/distance.hh"
#include "stats/matrix.hh"
#include "stats/rng.hh"

namespace mica::stats {

/** Result of one k-means clustering. */
struct KMeansResult
{
    Matrix centers;                    ///< k x d cluster centers
    std::vector<std::size_t> assignment; ///< cluster index per row
    std::vector<std::size_t> sizes;    ///< members per cluster
    double inertia = 0.0;              ///< total within-cluster squared dist
    double bic = 0.0;                  ///< BIC score (higher is better)
    int iterations = 0;                ///< Lloyd iterations of best restart
    /**
     * Distance-work accounting, summed over *all* restarts (seeding +
     * assignment scans): evaluations performed vs evaluations skipped by
     * the pruning bounds. Diagnostics only — never compared for result
     * equality (the naive oracle path reports pruned == 0).
     */
    DistanceCounters distance_counters;

    /** Index of the member row closest to each cluster center. */
    [[nodiscard]] std::vector<std::size_t>
    representatives(const Matrix &data) const;

    /** Mean within-cluster variance (inertia / n). */
    [[nodiscard]] double meanVariance(std::size_t n) const
    {
        return n ? inertia / static_cast<double>(n) : 0.0;
    }
};

/** k-means clustering engine. */
class KMeans
{
  public:
    /** Initialization strategy. */
    enum class Init
    {
        Random,   ///< k distinct random data points (paper's choice)
        PlusPlus, ///< k-means++ seeding
    };

    struct Options
    {
        std::size_t k = 8;
        int max_iterations = 100;
        int restarts = 1;          ///< keep the restart with the best BIC
        Init init = Init::Random;
        std::uint64_t seed = 1;
        /** Convergence threshold on center movement (L2, per center). */
        double tolerance = 1e-9;
        /**
         * Worker threads for the restart fan-out and the row-partitioned
         * Lloyd assignment step (0 = hardware concurrency, capped at the
         * work-item count). Results are bit-identical for every value:
         * restarts use sequentially pre-split Rng streams with a fixed
         * best-BIC reduction order, and the assignment step accumulates
         * per-block partials whose boundaries depend only on n.
         */
        unsigned threads = 1;
        /**
         * Hamerly-bound pruning of the assignment scan and norm-gap
         * pruning of the k-means++ min-distance update. Bit-identical to
         * the naive path for every input (bounds only skip evaluations
         * whose outcome is proven); `false` keeps the naive scan alive as
         * the oracle for tests and benchmarks.
         */
        bool pruning = true;
        /**
         * Testing hook: when non-empty, these row indices seed the
         * centers of *every* restart verbatim (no randomness, duplicates
         * allowed — e.g. to force the empty-cluster repair path). Size
         * must equal k after clamping to the row count.
         */
        std::vector<std::size_t> initial_seeds;
        /**
         * Opt-in approximate assignment for large k: when non-null,
         * every Lloyd assignment pass classifies points through a
         * finder built by this factory over the current centers (pass
         * `ann::indexFactory()` for the graph index) instead of the
         * exact scan. The finder tracks in-place center movement
         * exactly (it evaluates true distances against the live
         * matrix), but its acceleration structure goes stale as
         * centers drift, so it is rebuilt whenever the accumulated
         * `CenterDrift` maximum movement since the last build exceeds
         * `ann_rebuild` times the finder's lengthScale(). Results stay
         * deterministic and thread-count-invariant, but are *not*
         * bitwise-equal to the exact path (assignments may be
         * approximate); nullptr — the default — keeps the historical
         * exact behaviour untouched. Implies the Hamerly bounds are
         * bypassed (`pruning` is ignored while a finder is active).
         */
        std::shared_ptr<const NearestCenterFinderFactory> ann;
        /** Rebuild threshold for `ann`, as a fraction of lengthScale(). */
        double ann_rebuild = 0.25;
    };

    /**
     * Run k-means on a data matrix (rows = points).
     *
     * k is clamped to the number of rows. Empty clusters are repaired by
     * re-seeding them with the point farthest from its current center.
     */
    [[nodiscard]] static KMeansResult run(const Matrix &data,
                                          const Options &opts);

    /**
     * BIC score of a clustering (spherical Gaussian model, Pelleg & Moore).
     * Higher is better.
     */
    [[nodiscard]] static double bicScore(const Matrix &data,
                                         const KMeansResult &clustering);

    /**
     * k-means++ seeding: each next center drawn with probability
     * proportional to D(x)², where D is the distance to the nearest
     * already-chosen seed. The min-distance update is row-blocked (and
     * norm-gap pruned when `pruning` is set) with the D² total reduced in
     * block order, so the chosen seeds are identical for every thread
     * count and pruning setting. When every remaining point coincides
     * with a chosen seed (zero total mass), the lowest-index row not yet
     * selected is used, so seeds are always distinct while k <= rows.
     * Exposed for tests and for callers that want seeding without Lloyd;
     * `counters`, when non-null, accumulates the distance work.
     */
    [[nodiscard]] static std::vector<std::size_t>
    plusPlusSeeds(const Matrix &data, std::size_t k, Rng &rng,
                  unsigned threads = 1, bool pruning = true,
                  DistanceCounters *counters = nullptr);
};

} // namespace mica::stats

#endif // MICAPHASE_STATS_KMEANS_HH
