#include "core/pipeline.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/model_export.hh"
#include "obs/trace.hh"
#include "stats/summary.hh"

namespace mica::core {

void
verifyCatalog(const workloads::SuiteCatalog &catalog)
{
    for (const workloads::BenchmarkSpec &bench : catalog.benchmarks())
        for (std::uint32_t input = 0; input < bench.num_inputs; ++input)
            verifyProgram(bench.build(input));
}

ExperimentOutputs
runFullExperiment(const ExperimentConfig &config, PipelineObserver *observer)
{
    // When tracing is requested, the whole run lives inside a TraceScope
    // (exports on return) and the tracing observer rides along with any
    // caller-supplied one. An already-active session (e.g. the caller
    // owns a TraceScope) is also picked up.
    obs::TraceScope trace(config.trace_path);
    TracingObserver tracer;
    ObserverList observers;
    observers.add(observer);
    if (obs::TraceSession::active() != nullptr)
        observers.add(&tracer);
    PipelineObserver *obs_ptr = observers.empty() ? nullptr : &observers;

    ExperimentOutputs out;
    out.config = config;
    const workloads::SuiteCatalog catalog;
    {
        StageScope scope(obs_ptr, Stage::Verify,
                         catalog.benchmarks().size());
        verifyCatalog(catalog);
    }
    out.characterization = characterizeWithCache(catalog, config, obs_ptr);
    {
        StageScope scope(obs_ptr, Stage::Sample,
                         out.characterization.benchmark_ids.size());
        out.sampled = sampleIntervals(out.characterization,
                                      config.samples_per_benchmark,
                                      config.seed ^ 0x5A);
    }

    // The clustering is by far the most expensive analysis step; cache it
    // next to the characterization (sampling is deterministic, so a cached
    // clustering always matches the freshly drawn sample).
    std::string cluster_path;
    if (!config.cache_dir.empty()) {
        std::ostringstream name;
        name << config.cache_dir << "/clusters_" << std::hex
             << config.analysisKey() << ".csv";
        cluster_path = name.str();
    }
    stats::KMeansResult clustering;
    bool cluster_hit = false;
    if (!cluster_path.empty()) {
        const obs::Span span("kmeans.cache_load", "kmeans");
        cluster_hit = loadClustering(cluster_path, clustering) &&
                      clustering.assignment.size() ==
                          out.sampled.data.rows();
    }
    if (cluster_hit) {
        out.analysis = analyzePhasesWithClustering(
            out.sampled, out.characterization, config,
            std::move(clustering), obs_ptr);
    } else {
        out.analysis = analyzePhases(out.sampled, out.characterization,
                                     config, obs_ptr);
        if (!cluster_path.empty())
            saveClustering(cluster_path, out.analysis.clustering);
    }

    {
        StageScope scope(obs_ptr, Stage::Compare);
        out.comparison =
            compareSuites(out.characterization, out.sampled, out.analysis);
    }

    // Optionally freeze the finished analysis into the model artifact.
    // Purely an output step (like tracing): it reads the outputs, never
    // feeds back into them, and model_path is excluded from cache keys.
    if (!config.model_path.empty()) {
        StageScope scope(obs_ptr, Stage::ModelExport);
        buildPhaseModel(out).save(config.model_path);
    }
    return out;
}

ExperimentOutputs
runFullExperiment(const ExperimentConfig &config, const ProgressFn &progress)
{
    if (!progress)
        return runFullExperiment(config,
                                 static_cast<PipelineObserver *>(nullptr));
    ProgressObserverAdapter adapter(progress);
    return runFullExperiment(config, &adapter);
}

ga::GaResult
selectKeyCharacteristics(const ExperimentOutputs &outputs, std::size_t count,
                         PipelineObserver *observer)
{
    TracingObserver tracer;
    ObserverList observers;
    observers.add(observer);
    if (obs::TraceSession::active() != nullptr)
        observers.add(&tracer);
    PipelineObserver *obs_ptr = observers.empty() ? nullptr : &observers;
    StageScope scope(obs_ptr, Stage::FeatureSelect, count);

    const stats::Matrix phases =
        prominentPhaseMatrix(outputs.sampled, outputs.analysis);
    const ga::FeatureSelector selector(phases);
    ga::GaOptions opts;
    opts.target_count = count;
    opts.seed = outputs.config.seed ^ 0x6A;
    opts.threads = outputs.config.threads;
    return selector.select(opts);
}

std::vector<viz::AxisStats>
kiviatAxes(const ExperimentOutputs &outputs,
           std::span<const std::size_t> key_characteristics)
{
    const stats::Matrix phases =
        prominentPhaseMatrix(outputs.sampled, outputs.analysis);
    const stats::ColumnStats cs = stats::columnStats(phases);

    std::vector<viz::AxisStats> axes;
    for (std::size_t idx : key_characteristics) {
        viz::AxisStats a;
        a.name = std::string(metrics::metricInfo(idx).name);
        const auto column = phases.col(idx);
        a.min = *std::min_element(column.begin(), column.end());
        a.max = *std::max_element(column.begin(), column.end());
        a.mean = cs.mean[idx];
        a.mean_minus_sd = cs.mean[idx] - cs.stddev[idx];
        a.mean_plus_sd = cs.mean[idx] + cs.stddev[idx];
        if (a.max <= a.min)
            a.max = a.min + 1.0;
        axes.push_back(a);
    }
    return axes;
}

viz::KiviatPanel
kiviatPanelFor(const ExperimentOutputs &outputs,
               const ClusterSummary &cluster,
               std::span<const std::size_t> key_characteristics,
               double min_caption_fraction)
{
    const auto &chars = outputs.characterization;
    viz::KiviatPanel panel;
    {
        std::ostringstream title;
        title.precision(2);
        title << std::fixed << "weight: " << cluster.weight * 100.0 << "%";
        panel.title = title.str();
    }

    const auto rep = outputs.sampled.data.row(cluster.representative_row);
    for (std::size_t idx : key_characteristics)
        panel.values.push_back(rep[idx]);

    // Pie: each benchmark's share of the cluster.
    std::size_t cluster_rows = 0;
    for (const auto &[bench, cnt] : cluster.benchmark_counts)
        cluster_rows += cnt;
    for (const auto &[bench, cnt] : cluster.benchmark_counts) {
        viz::PieSlice slice;
        slice.label = chars.benchmark_ids[bench];
        slice.fraction = cluster_rows > 0
            ? static_cast<double>(cnt) / static_cast<double>(cluster_rows)
            : 0.0;
        panel.slices.push_back(slice);
    }

    // Caption: per benchmark, the fraction of the benchmark represented by
    // this cluster; small contributors fold into "other".
    const std::size_t per_benchmark =
        outputs.config.samples_per_benchmark;
    std::size_t folded = 0;
    for (const auto &[bench, cnt] : cluster.benchmark_counts) {
        const double frac = cluster.benchmarkFraction(bench, per_benchmark);
        if (frac < min_caption_fraction) {
            ++folded;
            continue;
        }
        std::ostringstream line;
        line.precision(2);
        line << std::fixed << chars.benchmark_ids[bench] << ": "
             << frac * 100.0 << "%";
        panel.caption_lines.push_back(line.str());
    }
    if (folded > 0)
        panel.caption_lines.push_back("other (" + std::to_string(folded) +
                                      ")");
    return panel;
}

} // namespace mica::core
