#include "core/characterize.hh"

#include <charconv>
#include <cstdio>
#include <cmath>
#include <mutex>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "analysis/verifier.hh"
#include "mica/profiler.hh"
#include "obs/trace.hh"
#include "util/thread_pool.hh"
#include "vm/cpu.hh"

namespace mica::core {

std::uint64_t
ExperimentConfig::characterizationKey() const
{
    // FNV-1a over the fields that affect the raw interval data. Sampling,
    // PCA and clustering parameters do not invalidate the cache; neither
    // does trace_path, which never touches the numerics.
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ULL;
        }
    };
    mix(interval_instructions);
    mix(static_cast<std::uint64_t>(interval_scale * 1024.0));
    // Version tag: bump whenever the workload catalog or the metric
    // definitions change, to invalidate stale caches.
    mix(0xC0FFEE07); // 07: expanded verifier gate (20 diagnostic classes)
    return h;
}

std::uint64_t
ExperimentConfig::analysisKey() const
{
    std::uint64_t h = characterizationKey();
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ULL;
        }
    };
    mix(samples_per_benchmark);
    mix(static_cast<std::uint64_t>(pca_min_stddev * 4096.0));
    mix(kmeans_k);
    mix(static_cast<std::uint64_t>(kmeans_restarts));
    mix(seed);
    // Analysis version tag: bump when the clustering numerics change, so
    // stale clustering caches are not replayed against new code. 0001:
    // blocked thread-count-invariant accumulation altered rounding.
    // 0002: k-means++ D² totals are now reduced in block order (affects
    // PlusPlus seeding only — Hamerly pruning itself is bit-neutral and
    // kmeans_pruning is deliberately NOT mixed in).
    // 0003: squaredDistance/sumSquares now reduce in the fixed 8-lane
    // virtual-lane order shared by the scalar oracle and every SIMD
    // backend (stats/simd.hh), altering distance rounding. The SIMD
    // *level* is deliberately NOT mixed in: all levels are bitwise
    // identical, so caches stay valid across hosts and MICA_SIMD
    // settings.
    mix(0xB10C0003);
    return h;
}

std::vector<std::uint32_t>
CharacterizationResult::intervalsPerBenchmark() const
{
    std::vector<std::uint32_t> counts(benchmark_ids.size(), 0);
    for (const IntervalRecord &rec : intervals)
        ++counts[rec.benchmark];
    return counts;
}

void
verifyProgram(const isa::Program &program)
{
    analysis::Options options;
    // Generated workloads loop their phase schedule forever by design;
    // the driver bounds them with an instruction budget.
    options.allow_nonterminating = true;
    const analysis::Report report = analysis::verify(program, options);
    if (!report.ok())
        throw std::runtime_error("verifyProgram: " + program.name +
                                 " failed static verification:\n" +
                                 report.toString());
    for (const analysis::Diagnostic &d : report.diagnostics)
        std::fprintf(stderr, "verify %s: %s\n", program.name.c_str(),
                     d.toString().c_str());
}

std::vector<metrics::CharacteristicVector>
characterizeProgram(const isa::Program &program,
                    std::uint64_t interval_instructions,
                    std::uint32_t num_intervals)
{
    vm::Cpu cpu(program);
    profiler::MicaProfiler profiler(interval_instructions);
    const std::uint64_t budget =
        interval_instructions * static_cast<std::uint64_t>(num_intervals);
    const vm::RunResult run = cpu.run(budget, &profiler);
    if (run.reason != vm::StopReason::InstructionLimit &&
        run.reason != vm::StopReason::Halted) {
        throw std::runtime_error("characterizeProgram: " + program.name +
                                 " trapped (invalid pc)");
    }
    return profiler.intervals();
}

CharacterizationResult
characterizeCatalog(const workloads::SuiteCatalog &catalog,
                    const ExperimentConfig &config,
                    PipelineObserver *observer)
{
    CharacterizationResult result;
    const auto &benchmarks = catalog.benchmarks();
    for (const auto &b : benchmarks) {
        result.benchmark_ids.push_back(b.id());
        result.benchmark_names.push_back(b.name);
        result.benchmark_suites.push_back(b.suite);
    }

    StageScope scope(observer, Stage::Characterize, benchmarks.size());

    // Each benchmark simulates independently; workers pull benchmark
    // indices from a shared counter and write into per-benchmark slots,
    // so the assembled result is identical for any thread count.
    std::vector<std::vector<IntervalRecord>> per_benchmark(
        benchmarks.size());
    const auto characterize_one = [&](std::size_t bi) {
        const obs::Span span("characterize.benchmark", "characterize");
        const auto &bench = benchmarks[bi];
        for (std::uint32_t input = 0; input < bench.num_inputs; ++input) {
            const std::uint32_t budget = std::max<std::uint32_t>(
                1, static_cast<std::uint32_t>(std::lround(
                       bench.intervalsForInput(input) *
                       config.interval_scale)));
            const isa::Program program = bench.build(input);
            verifyProgram(program);
            const auto vectors = characterizeProgram(
                program, config.interval_instructions, budget);
            obs::count("characterize.intervals",
                       static_cast<double>(vectors.size()));
            for (const auto &v : vectors) {
                IntervalRecord rec;
                rec.benchmark = static_cast<std::uint32_t>(bi);
                rec.input = input;
                rec.values = v;
                per_benchmark[bi].push_back(rec);
            }
        }
    };

    const unsigned threads =
        util::resolveThreads(config.threads, benchmarks.size());
    std::mutex progress_mutex;
    std::size_t finished = 0;
    util::parallelFor(threads, benchmarks.size(), [&](std::size_t bi) {
        characterize_one(bi);
        if (observer != nullptr) {
            // Serialize Progress events (observers are not thread-safe).
            const std::lock_guard<std::mutex> lock(progress_mutex);
            ++finished;
            const std::string id = benchmarks[bi].id();
            StageEvent event;
            event.stage = Stage::Characterize;
            event.kind = StageEvent::Kind::Progress;
            event.done = finished;
            event.total = benchmarks.size();
            event.item = id;
            observer->onStage(event);
        }
    });

    for (auto &records : per_benchmark)
        for (auto &rec : records)
            result.intervals.push_back(rec);
    return result;
}

CharacterizationResult
characterizeCatalog(const workloads::SuiteCatalog &catalog,
                    const ExperimentConfig &config, const ProgressFn &progress)
{
    if (!progress)
        return characterizeCatalog(catalog, config,
                                   static_cast<PipelineObserver *>(nullptr));
    ProgressObserverAdapter adapter(progress);
    return characterizeCatalog(catalog, config, &adapter);
}

void
saveCharacterization(const std::string &path,
                     const CharacterizationResult &result)
{
    const std::filesystem::path p(path);
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path());

    // Write to a temporary sibling and rename into place so concurrent
    // readers (and crashed writers) never observe a partial file; the
    // row-count footer lets loadCharacterization reject truncation even
    // if a non-atomic copy sneaks in some other way.
    const std::string tmp_path = path + ".tmp";
    {
        std::ofstream out(tmp_path);
        if (!out)
            throw std::runtime_error("saveCharacterization: cannot write " +
                                     tmp_path);
        out << "benchmark,input";
        for (std::size_t i = 0; i < metrics::kNumCharacteristics; ++i)
            out << "," << metrics::metricInfo(i).name;
        out << "\n";
        out.precision(17);
        for (const IntervalRecord &rec : result.intervals) {
            out << result.benchmark_ids[rec.benchmark] << "," << rec.input;
            for (double v : rec.values)
                out << "," << v;
            out << "\n";
        }
        out << "#rows," << result.intervals.size() << "\n";
        out.flush();
        if (!out)
            throw std::runtime_error("saveCharacterization: write failed: " +
                                     tmp_path);
    }
    std::filesystem::rename(tmp_path, path);
}

bool
loadCharacterization(const std::string &path,
                     CharacterizationResult &result)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string header;
    if (!std::getline(in, header))
        return false;

    // Map benchmark ids (already populated from the catalog) to indices.
    std::vector<IntervalRecord> intervals;
    bool footer_seen = false;
    std::size_t footer_rows = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (line[0] == '#') {
            // Footer: "#rows,<N>". Anything after it means corruption.
            if (footer_seen || line.rfind("#rows,", 0) != 0)
                return false;
            const char *first = line.data() + 6;
            const char *last = line.data() + line.size();
            const auto [ptr, ec] =
                std::from_chars(first, last, footer_rows);
            if (ec != std::errc{} || ptr != last)
                return false;
            footer_seen = true;
            continue;
        }
        if (footer_seen)
            return false;
        std::istringstream ls(line);
        std::string id, field;
        if (!std::getline(ls, id, ','))
            return false;
        IntervalRecord rec;
        bool found = false;
        for (std::size_t i = 0; i < result.benchmark_ids.size(); ++i) {
            if (result.benchmark_ids[i] == id) {
                rec.benchmark = static_cast<std::uint32_t>(i);
                found = true;
                break;
            }
        }
        if (!found)
            return false;
        if (!std::getline(ls, field, ','))
            return false;
        rec.input = static_cast<std::uint32_t>(std::stoul(field));
        for (std::size_t i = 0; i < metrics::kNumCharacteristics; ++i) {
            if (!std::getline(ls, field, ','))
                return false;
            rec.values[i] = std::stod(field);
        }
        intervals.push_back(rec);
    }
    if (!footer_seen || footer_rows != intervals.size())
        return false;
    if (intervals.empty())
        return false;
    result.intervals = std::move(intervals);
    return true;
}

CharacterizationResult
characterizeWithCache(const workloads::SuiteCatalog &catalog,
                      const ExperimentConfig &config,
                      PipelineObserver *observer)
{
    CharacterizationResult result;
    for (const auto &b : catalog.benchmarks()) {
        result.benchmark_ids.push_back(b.id());
        result.benchmark_names.push_back(b.name);
        result.benchmark_suites.push_back(b.suite);
    }

    std::string cache_path;
    if (!config.cache_dir.empty()) {
        std::ostringstream name;
        name << config.cache_dir << "/chars_" << std::hex
             << config.characterizationKey() << "_"
             << catalog.benchmarks().size() << ".csv";
        cache_path = name.str();
        const auto t0 = std::chrono::steady_clock::now();
        bool hit = false;
        {
            const obs::Span span("characterize.cache_load", "characterize");
            hit = loadCharacterization(cache_path, result);
        }
        if (hit) {
            // A hit skips the simulation entirely, so the observer sees
            // a Begin/End pair timing the load but no Progress events.
            if (observer != nullptr) {
                StageEvent event;
                event.stage = Stage::Characterize;
                event.total = catalog.benchmarks().size();
                event.kind = StageEvent::Kind::Begin;
                observer->onStage(event);
                event.kind = StageEvent::Kind::End;
                event.done = event.total;
                event.elapsed =
                    std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0);
                observer->onStage(event);
            }
            return result;
        }
    }

    result = characterizeCatalog(catalog, config, observer);
    if (!cache_path.empty())
        saveCharacterization(cache_path, result);
    return result;
}

CharacterizationResult
characterizeWithCache(const workloads::SuiteCatalog &catalog,
                      const ExperimentConfig &config, const ProgressFn &progress)
{
    if (!progress)
        return characterizeWithCache(catalog, config,
                                     static_cast<PipelineObserver *>(nullptr));
    ProgressObserverAdapter adapter(progress);
    return characterizeWithCache(catalog, config, &adapter);
}

} // namespace mica::core
