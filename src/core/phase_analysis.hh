/**
 * @file
 * Phase analysis (paper sections 3.5-3.6): normalize, PCA (retain sd > 1),
 * rescale, cluster with k-means/BIC, then summarize clusters — weights,
 * representatives, benchmark composition, and the benchmark-specific /
 * suite-specific / mixed classification used to organize Figures 2-3.
 */

#ifndef MICAPHASE_CORE_PHASE_ANALYSIS_HH
#define MICAPHASE_CORE_PHASE_ANALYSIS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/characterize.hh"
#include "core/sampling.hh"
#include "stats/kmeans.hh"
#include "stats/pca.hh"

namespace mica::core {

/** How a cluster's members distribute over benchmarks/suites. */
enum class ClusterKind
{
    BenchmarkSpecific, ///< all members from a single benchmark
    SuiteSpecific,     ///< single suite, multiple benchmarks
    Mixed,             ///< multiple suites
};

/** Summary of one cluster (phase behaviour). */
struct ClusterSummary
{
    std::size_t cluster = 0;            ///< id in the KMeansResult
    double weight = 0.0;                ///< fraction of all sampled rows
    std::size_t representative_row = 0; ///< row in the sampled data set
    /** (benchmark index, member rows) pairs, heaviest first. */
    std::vector<std::pair<std::uint32_t, std::size_t>> benchmark_counts;
    ClusterKind kind = ClusterKind::Mixed;

    /**
     * Fraction of the given benchmark's sampled rows that land in this
     * cluster (the percentages in the paper's benchmark lists).
     */
    [[nodiscard]] double benchmarkFraction(std::uint32_t benchmark,
                                           std::size_t rows_per_benchmark)
        const;
};

/** Full phase-analysis output. */
struct PhaseAnalysis
{
    std::size_t pca_components = 0;
    double pca_explained = 0.0;  ///< variance fraction kept by PCA
    /**
     * The fitted PCA model itself (normalization stats, loadings, rescale
     * factors) — what model::PhaseModel freezes so unseen workloads can be
     * projected into the same space later.
     */
    stats::Pca pca;
    stats::Matrix reduced;       ///< sampled rows in rescaled PCA space
    stats::KMeansResult clustering;
    /** All clusters sorted by weight (descending). */
    std::vector<ClusterSummary> clusters;
    /** How many of the heaviest clusters count as "prominent phases". */
    std::size_t num_prominent = 0;

    /** Total weight of the prominent phases (paper: 87.8%). */
    [[nodiscard]] double prominentCoverage() const;
};

/**
 * Run the analysis on a sampled data set. Emits Pca and KMeans stage
 * events on the observer (may be null).
 */
[[nodiscard]] PhaseAnalysis analyzePhases(
    const SampledDataset &sampled, const CharacterizationResult &chars,
    const ExperimentConfig &config, PipelineObserver *observer = nullptr);

/**
 * Like analyzePhases, but with the clustering supplied by the caller
 * (e.g. loaded from the on-disk cache) instead of running k-means.
 * Emits only Pca stage events (no clustering happens).
 */
[[nodiscard]] PhaseAnalysis analyzePhasesWithClustering(
    const SampledDataset &sampled, const CharacterizationResult &chars,
    const ExperimentConfig &config, stats::KMeansResult clustering,
    PipelineObserver *observer = nullptr);

/**
 * Persist a clustering to CSV (creates parent directories). Atomic: the
 * data goes to a `.tmp` sibling that is renamed into place, and ends with
 * a `#rows,<N>` footer, so a torn or truncated file can never be mistaken
 * for a complete cache entry.
 */
void saveClustering(const std::string &path,
                    const stats::KMeansResult &clustering);

/** Load a clustering; false when missing/malformed/truncated. */
[[nodiscard]] bool loadClustering(const std::string &path,
                                  stats::KMeansResult &clustering);

/**
 * Raw characteristics (69 columns) of the prominent phase representatives,
 * heaviest first — the GA's input matrix.
 */
[[nodiscard]] stats::Matrix prominentPhaseMatrix(
    const SampledDataset &sampled, const PhaseAnalysis &analysis);

/** Printable name for a cluster kind. */
[[nodiscard]] std::string_view clusterKindName(ClusterKind kind);

} // namespace mica::core

#endif // MICAPHASE_CORE_PHASE_ANALYSIS_HH
