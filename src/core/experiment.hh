/**
 * @file
 * Experiment configuration shared by every bench/figure binary.
 *
 * Defaults reproduce the paper's methodology at a scaled-down operating
 * point (see DESIGN.md section 2): the paper uses 100M-instruction
 * intervals and 1,000 samples per benchmark; we default to 50K-instruction
 * intervals and 200 samples, with per-benchmark interval budgets scaled
 * from Table 3. The methodology itself (PCA retention rule, k = 300,
 * top-100 prominent phases) is kept identical.
 */

#ifndef MICAPHASE_CORE_EXPERIMENT_HH
#define MICAPHASE_CORE_EXPERIMENT_HH

#include <cstdint>
#include <string>

namespace mica::core {

/** Knobs for the full phase-level characterization experiment. */
struct ExperimentConfig
{
    /** Instructions per interval (paper: 100M; scaled default: 50K). */
    std::uint64_t interval_instructions = 50'000;
    /** Sampled intervals per benchmark, with replacement (paper: 1000). */
    std::uint32_t samples_per_benchmark = 200;
    /** Multiplier on each benchmark's Table-3 interval budget. */
    double interval_scale = 1.0;
    /** PCA component retention threshold on score stddev (paper: 1.0). */
    double pca_min_stddev = 1.0;
    /** k-means cluster count (paper: 300). */
    std::size_t kmeans_k = 300;
    /** Random-restart count, best BIC wins (paper: "a number of"). */
    int kmeans_restarts = 3;
    /**
     * Hamerly-bound distance pruning in the clustering engine
     * (stats::KMeans::Options::pruning). Bounds only ever skip exact
     * distance evaluations whose outcome is proven, so results are
     * bit-identical either way — the flag is excluded from the cache
     * keys and exists to keep the naive path alive as a test oracle.
     * See docs/PERFORMANCE.md ("Distance pruning").
     */
    bool kmeans_pruning = true;
    /** Prominent phases kept for visualization/GA (paper: 100). */
    std::size_t num_prominent = 100;
    /** Master seed for sampling/clustering/GA. */
    std::uint64_t seed = 20080420;
    /** Directory for the characterization cache; empty disables caching. */
    std::string cache_dir = "out/cache";
    /**
     * Worker threads for the characterization phase AND the stats engine
     * (k-means restarts + Lloyd assignment, GA fitness evaluation, PCA
     * covariance accumulation), all served by the shared pool in
     * util/thread_pool.hh.
     *
     * Convention (uniform across the library): 0 = hardware concurrency;
     * every site caps the effective count at its own work-item count
     * (benchmarks, restarts, row blocks, genomes) via util::resolveThreads.
     * Results are bit-identical for every value — see docs/PERFORMANCE.md.
     */
    unsigned threads = 0;
    /**
     * When non-empty, runFullExperiment wraps the run in an
     * obs::TraceScope writing Chrome trace-event JSON to this path (plus
     * a "<stem>.metrics.json" summary). Empty disables tracing entirely
     * (a single relaxed atomic check per instrumentation site). Tracing
     * never affects results or cache keys: traced and untraced runs are
     * bit-identical.
     */
    std::string trace_path;
    /**
     * When non-empty, runFullExperiment freezes the finished analysis
     * into a model::PhaseModel and serializes it here (atomically; see
     * docs/MODEL.md). Like trace_path, this is an output knob only: it is
     * excluded from both cache keys and never affects the numerics.
     */
    std::string model_path;

    /** Stable hash of the fields that determine the characterization. */
    [[nodiscard]] std::uint64_t characterizationKey() const;

    /** Stable hash of everything that determines the clustering. */
    [[nodiscard]] std::uint64_t analysisKey() const;
};

} // namespace mica::core

#endif // MICAPHASE_CORE_EXPERIMENT_HH
