/**
 * @file
 * Catalog-wide characterization: run every benchmark input on the VM with
 * the MICA profiler attached and collect per-interval characteristic
 * vectors. Results can be cached to CSV so the figure binaries only pay
 * the simulation cost once.
 */

#ifndef MICAPHASE_CORE_CHARACTERIZE_HH
#define MICAPHASE_CORE_CHARACTERIZE_HH

#include <functional>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "mica/metrics.hh"
#include "workloads/workload.hh"

namespace mica::core {

/** One characterized instruction interval. */
struct IntervalRecord
{
    std::uint32_t benchmark = 0; ///< index into benchmark_ids
    std::uint32_t input = 0;
    metrics::CharacteristicVector values{};
};

/** Characterization of an entire catalog. */
struct CharacterizationResult
{
    std::vector<std::string> benchmark_ids;    ///< "suite/name", catalog order
    std::vector<std::string> benchmark_names;  ///< "name"
    std::vector<std::string> benchmark_suites; ///< "suite"
    std::vector<IntervalRecord> intervals;

    /** Interval count per benchmark index. */
    [[nodiscard]] std::vector<std::uint32_t> intervalsPerBenchmark() const;
};

/** Progress callback: benchmark id, finished count, total count. */
using ProgressFn =
    std::function<void(const std::string &, std::size_t, std::size_t)>;

/**
 * Statically verify a generated workload program before execution
 * (analysis::verify with the non-terminating workload contract).
 * Error-level diagnostics throw std::runtime_error with the full report;
 * warnings are logged to stderr.
 */
void verifyProgram(const isa::Program &program);

/** Characterize every benchmark input in the catalog (no cache). */
[[nodiscard]] CharacterizationResult characterizeCatalog(
    const workloads::SuiteCatalog &catalog, const ExperimentConfig &config,
    const ProgressFn &progress = {});

/** Characterize one program for a fixed number of intervals. */
[[nodiscard]] std::vector<metrics::CharacteristicVector>
characterizeProgram(const isa::Program &program,
                    std::uint64_t interval_instructions,
                    std::uint32_t num_intervals);

/** Save a characterization to CSV (creates parent directories). */
void saveCharacterization(const std::string &path,
                          const CharacterizationResult &result);

/**
 * Load a characterization from CSV.
 * @return false when the file is missing or malformed.
 */
[[nodiscard]] bool loadCharacterization(const std::string &path,
                                        CharacterizationResult &result);

/** Characterize through the on-disk cache keyed by the config. */
[[nodiscard]] CharacterizationResult characterizeWithCache(
    const workloads::SuiteCatalog &catalog, const ExperimentConfig &config,
    const ProgressFn &progress = {});

} // namespace mica::core

#endif // MICAPHASE_CORE_CHARACTERIZE_HH
