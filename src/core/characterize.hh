/**
 * @file
 * Catalog-wide characterization: run every benchmark input on the VM with
 * the MICA profiler attached and collect per-interval characteristic
 * vectors. Results can be cached to CSV so the figure binaries only pay
 * the simulation cost once. Progress reporting goes through the
 * structured PipelineObserver API (core/observer.hh); the ProgressFn
 * overloads are compatibility adapters only.
 */

#ifndef MICAPHASE_CORE_CHARACTERIZE_HH
#define MICAPHASE_CORE_CHARACTERIZE_HH

#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/observer.hh"
#include "mica/metrics.hh"
#include "workloads/workload.hh"

namespace mica::core {

/** One characterized instruction interval. */
struct IntervalRecord
{
    std::uint32_t benchmark = 0; ///< index into benchmark_ids
    std::uint32_t input = 0;
    metrics::CharacteristicVector values{};
};

/** Characterization of an entire catalog. */
struct CharacterizationResult
{
    std::vector<std::string> benchmark_ids;    ///< "suite/name", catalog order
    std::vector<std::string> benchmark_names;  ///< "name"
    std::vector<std::string> benchmark_suites; ///< "suite"
    std::vector<IntervalRecord> intervals;

    /** Interval count per benchmark index. */
    [[nodiscard]] std::vector<std::uint32_t> intervalsPerBenchmark() const;
};

/**
 * Statically verify a generated workload program before execution
 * (analysis::verify with the non-terminating workload contract).
 * Error-level diagnostics throw std::runtime_error with the full report;
 * warnings are logged to stderr.
 */
void verifyProgram(const isa::Program &program);

/**
 * Characterize every benchmark input in the catalog (no cache). Emits
 * Characterize Begin/Progress/End events on the observer (may be null).
 */
[[nodiscard]] CharacterizationResult characterizeCatalog(
    const workloads::SuiteCatalog &catalog, const ExperimentConfig &config,
    PipelineObserver *observer = nullptr);

/** Compatibility adapter for the legacy ProgressFn callback. */
[[nodiscard]] CharacterizationResult characterizeCatalog(
    const workloads::SuiteCatalog &catalog, const ExperimentConfig &config,
    const ProgressFn &progress);

/** Characterize one program for a fixed number of intervals. */
[[nodiscard]] std::vector<metrics::CharacteristicVector>
characterizeProgram(const isa::Program &program,
                    std::uint64_t interval_instructions,
                    std::uint32_t num_intervals);

/**
 * Save a characterization to CSV (creates parent directories). The file
 * is written to a ".tmp" sibling and atomically renamed into place, and
 * ends with a "#rows,<N>" footer that loadCharacterization verifies, so
 * a crashed or interrupted writer can never leave a truncated cache that
 * later loads as valid.
 */
void saveCharacterization(const std::string &path,
                          const CharacterizationResult &result);

/**
 * Load a characterization from CSV.
 * @return false when the file is missing, malformed, or truncated (the
 *         row-count footer is absent or disagrees with the data rows).
 */
[[nodiscard]] bool loadCharacterization(const std::string &path,
                                        CharacterizationResult &result);

/**
 * Characterize through the on-disk cache keyed by the config. On a cache
 * hit the observer still sees a Characterize Begin/End pair (timing the
 * load) but no Progress events.
 */
[[nodiscard]] CharacterizationResult characterizeWithCache(
    const workloads::SuiteCatalog &catalog, const ExperimentConfig &config,
    PipelineObserver *observer = nullptr);

/** Compatibility adapter for the legacy ProgressFn callback. */
[[nodiscard]] CharacterizationResult characterizeWithCache(
    const workloads::SuiteCatalog &catalog, const ExperimentConfig &config,
    const ProgressFn &progress);

} // namespace mica::core

#endif // MICAPHASE_CORE_CHARACTERIZE_HH
