/**
 * @file
 * Suite-level coverage / diversity / uniqueness analysis (paper section 5,
 * Figures 4-6). All three metrics are computed over all k clusters, not
 * just the prominent ones, exactly as in the paper.
 */

#ifndef MICAPHASE_CORE_SUITE_COMPARISON_HH
#define MICAPHASE_CORE_SUITE_COMPARISON_HH

#include <string>
#include <vector>

#include "core/phase_analysis.hh"

namespace mica::core {

/** Figures 4-6 data, one entry per suite group. */
struct SuiteComparison
{
    std::vector<std::string> suites;

    /** Figure 4: clusters (of k) containing at least one suite interval. */
    std::vector<std::size_t> coverage;

    /**
     * Figure 5: per suite, cumulative fraction of the suite's intervals
     * covered by its heaviest 1..k clusters (clusters sorted by the
     * suite's own share, descending).
     */
    std::vector<std::vector<double>> cumulative;

    /**
     * Figure 6: fraction of the suite's intervals inside clusters whose
     * members all belong to this suite (benchmark- or suite-specific).
     */
    std::vector<double> uniqueness;

    /** Clusters needed to reach the given cumulative coverage. */
    [[nodiscard]] std::size_t clustersToCover(std::size_t suite,
                                              double fraction) const;

    /** Index of a suite name; throws std::out_of_range when unknown. */
    [[nodiscard]] std::size_t indexOf(std::string_view suite) const;
};

/** Compute the suite comparison from a finished phase analysis. */
[[nodiscard]] SuiteComparison compareSuites(
    const CharacterizationResult &chars, const SampledDataset &sampled,
    const PhaseAnalysis &analysis);

} // namespace mica::core

#endif // MICAPHASE_CORE_SUITE_COMPARISON_HH
