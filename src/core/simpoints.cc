#include "core/simpoints.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>

#include "stats/kmeans.hh"
#include "stats/pca.hh"
#include "workloads/workload.hh"

namespace mica::core {

SimPointSelection
selectSimPoints(const CharacterizationResult &chars,
                std::uint32_t benchmark, std::size_t max_points,
                std::uint64_t seed)
{
    if (max_points == 0)
        throw std::invalid_argument("selectSimPoints: max_points == 0");

    // Gather the benchmark's intervals.
    std::vector<std::uint32_t> interval_ids;
    stats::Matrix data(0, 0);
    for (std::uint32_t i = 0; i < chars.intervals.size(); ++i) {
        if (chars.intervals[i].benchmark != benchmark)
            continue;
        interval_ids.push_back(i);
        data.appendRow(chars.intervals[i].values);
    }
    if (interval_ids.empty())
        throw std::invalid_argument("selectSimPoints: unknown benchmark");

    SimPointSelection out;
    out.benchmark = benchmark;

    // Single-interval benchmarks: the interval is the simulation point.
    if (interval_ids.size() == 1) {
        out.points.push_back({interval_ids[0], 1.0});
        out.estimation_error = 0.0;
        out.simulated_fraction = 1.0;
        return out;
    }

    // Cluster in this benchmark's own rescaled PCA space.
    const stats::Matrix reduced = stats::rescaledPcaSpace(data);
    stats::KMeans::Options km;
    km.k = std::min(max_points, interval_ids.size());
    km.restarts = 3;
    km.seed = seed;
    // Bit-identical to the naive scan (see stats/distance.hh), so the
    // pruned engine is safe to use for simulation-point selection too.
    km.pruning = true;
    const auto clustering = stats::KMeans::run(reduced, km);
    const auto reps = clustering.representatives(reduced);

    const double n = static_cast<double>(interval_ids.size());
    for (std::size_t c = 0; c < clustering.centers.rows(); ++c) {
        if (clustering.sizes[c] == 0)
            continue;
        out.points.push_back(
            {interval_ids[reps[c]],
             static_cast<double>(clustering.sizes[c]) / n});
    }
    out.simulated_fraction =
        static_cast<double>(out.points.size()) / n;

    // Estimation error: weighted representatives vs the true average.
    metrics::CharacteristicVector truth{};
    metrics::CharacteristicVector estimate{};
    for (std::size_t r = 0; r < data.rows(); ++r) {
        auto row = data.row(r);
        for (std::size_t c = 0; c < metrics::kNumCharacteristics; ++c)
            truth[c] += row[c] / n;
    }
    for (const SimulationPoint &p : out.points)
        for (std::size_t c = 0; c < metrics::kNumCharacteristics; ++c)
            estimate[c] += chars.intervals[p.interval].values[c] * p.weight;

    double total_err = 0.0;
    std::size_t counted = 0;
    for (std::size_t c = 0; c < metrics::kNumCharacteristics; ++c) {
        if (std::fabs(truth[c]) < 1e-6)
            continue;
        total_err += std::fabs(estimate[c] - truth[c]) /
                     std::fabs(truth[c]);
        ++counted;
    }
    out.estimation_error =
        counted ? total_err / static_cast<double>(counted) : 0.0;
    return out;
}

std::vector<SuiteSimPointSummary>
crossBenchmarkSimPoints(const CharacterizationResult &chars,
                        const SampledDataset &sampled,
                        const PhaseAnalysis &analysis,
                        std::size_t per_benchmark_budget)
{
    // Suite list in canonical-then-appearance order (same rule as
    // compareSuites).
    std::vector<std::string> suites;
    for (const std::string &name : workloads::SuiteCatalog::suiteNames())
        if (std::find(chars.benchmark_suites.begin(),
                      chars.benchmark_suites.end(),
                      name) != chars.benchmark_suites.end())
            suites.push_back(name);
    for (const std::string &suite : chars.benchmark_suites)
        if (std::find(suites.begin(), suites.end(), suite) == suites.end())
            suites.push_back(suite);

    std::vector<SuiteSimPointSummary> out;
    for (const std::string &suite : suites) {
        SuiteSimPointSummary summary;
        summary.suite = suite;

        // Clusters touched by the suite + rows per cluster.
        std::map<std::size_t, std::size_t> cluster_rows;
        std::size_t suite_rows = 0;
        std::set<std::uint32_t> members;
        for (std::size_t r = 0; r < sampled.benchmark_of_row.size(); ++r) {
            const std::uint32_t b = sampled.benchmark_of_row[r];
            if (chars.benchmark_suites[b] != suite)
                continue;
            ++cluster_rows[analysis.clustering.assignment[r]];
            ++suite_rows;
            members.insert(b);
        }

        summary.shared_points = cluster_rows.size();
        summary.isolated_points = members.size() * per_benchmark_budget;

        // Points for 90% coverage: heaviest clusters first.
        std::vector<std::size_t> sizes;
        for (const auto &[cluster, rows] : cluster_rows)
            sizes.push_back(rows);
        std::sort(sizes.begin(), sizes.end(), std::greater<>());
        std::size_t acc = 0;
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            acc += sizes[i];
            if (static_cast<double>(acc) >= 0.9 *
                static_cast<double>(suite_rows)) {
                summary.shared_points_90 = i + 1;
                break;
            }
        }
        out.push_back(summary);
    }
    return out;
}

} // namespace mica::core
