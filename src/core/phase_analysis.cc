#include "core/phase_analysis.hh"

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "stats/pca.hh"

namespace mica::core {

double
ClusterSummary::benchmarkFraction(std::uint32_t benchmark,
                                  std::size_t rows_per_benchmark) const
{
    if (rows_per_benchmark == 0)
        return 0.0;
    for (const auto &[b, count] : benchmark_counts)
        if (b == benchmark)
            return static_cast<double>(count) /
                   static_cast<double>(rows_per_benchmark);
    return 0.0;
}

double
PhaseAnalysis::prominentCoverage() const
{
    double total = 0.0;
    for (std::size_t i = 0; i < num_prominent && i < clusters.size(); ++i)
        total += clusters[i].weight;
    return total;
}

namespace {

/** Normalize -> PCA -> retain sd > threshold -> rescale. */
void
reduceDimensions(const SampledDataset &sampled,
                 const ExperimentConfig &config, PhaseAnalysis &out)
{
    stats::Pca::Options pca_opts;
    pca_opts.min_stddev = config.pca_min_stddev;
    pca_opts.normalize_input = true;
    pca_opts.threads = config.threads;
    out.pca = stats::Pca::fit(sampled.data, pca_opts);
    out.pca_components = out.pca.numComponents();
    out.pca_explained = out.pca.explainedVarianceFraction();
    out.reduced = out.pca.transformRescaled(sampled.data);
}

/** Fill out.clusters / num_prominent from out.reduced + out.clustering. */
void
summarizeClusters(const SampledDataset &sampled,
                  const CharacterizationResult &chars,
                  const ExperimentConfig &config, PhaseAnalysis &out)
{
    // Summarize every cluster.
    const std::size_t k = out.clustering.centers.rows();
    const std::size_t n = sampled.data.rows();
    const auto reps = out.clustering.representatives(out.reduced);

    std::vector<ClusterSummary> summaries(k);
    std::vector<std::map<std::uint32_t, std::size_t>> counts(k);
    for (std::size_t row = 0; row < n; ++row) {
        const std::size_t c = out.clustering.assignment[row];
        ++counts[c][sampled.benchmark_of_row[row]];
    }
    for (std::size_t c = 0; c < k; ++c) {
        ClusterSummary &s = summaries[c];
        s.cluster = c;
        s.weight = static_cast<double>(out.clustering.sizes[c]) /
                   static_cast<double>(n);
        s.representative_row = reps[c];
        for (const auto &[bench, cnt] : counts[c])
            s.benchmark_counts.emplace_back(bench, cnt);
        std::sort(s.benchmark_counts.begin(), s.benchmark_counts.end(),
                  [](const auto &a, const auto &b) {
                      return a.second > b.second;
                  });

        std::set<std::string> suites;
        for (const auto &[bench, cnt] : s.benchmark_counts)
            suites.insert(chars.benchmark_suites[bench]);
        if (s.benchmark_counts.size() <= 1)
            s.kind = ClusterKind::BenchmarkSpecific;
        else if (suites.size() == 1)
            s.kind = ClusterKind::SuiteSpecific;
        else
            s.kind = ClusterKind::Mixed;
    }

    std::sort(summaries.begin(), summaries.end(),
              [](const ClusterSummary &a, const ClusterSummary &b) {
                  if (a.weight != b.weight)
                      return a.weight > b.weight;
                  return a.cluster < b.cluster;
              });
    out.clusters = std::move(summaries);
    out.num_prominent = std::min(config.num_prominent, out.clusters.size());
}

} // namespace

PhaseAnalysis
analyzePhases(const SampledDataset &sampled,
              const CharacterizationResult &chars,
              const ExperimentConfig &config, PipelineObserver *observer)
{
    if (sampled.data.rows() == 0)
        throw std::invalid_argument("analyzePhases: empty data");

    PhaseAnalysis out;
    {
        StageScope scope(observer, Stage::Pca, sampled.data.rows());
        reduceDimensions(sampled, config, out);
    }

    // Cluster with several random restarts; highest BIC wins.
    {
        StageScope scope(observer, Stage::KMeans, config.kmeans_k);
        stats::KMeans::Options km;
        km.k = config.kmeans_k;
        km.restarts = config.kmeans_restarts;
        km.seed = config.seed ^ 0xC1u;
        km.init = stats::KMeans::Init::Random;
        km.threads = config.threads;
        km.pruning = config.kmeans_pruning;
        out.clustering = stats::KMeans::run(out.reduced, km);
    }

    summarizeClusters(sampled, chars, config, out);
    return out;
}

PhaseAnalysis
analyzePhasesWithClustering(const SampledDataset &sampled,
                            const CharacterizationResult &chars,
                            const ExperimentConfig &config,
                            stats::KMeansResult clustering,
                            PipelineObserver *observer)
{
    if (sampled.data.rows() == 0)
        throw std::invalid_argument("analyzePhases: empty data");
    if (clustering.assignment.size() != sampled.data.rows())
        throw std::invalid_argument(
            "analyzePhasesWithClustering: clustering/data size mismatch");

    PhaseAnalysis out;
    {
        StageScope scope(observer, Stage::Pca, sampled.data.rows());
        reduceDimensions(sampled, config, out);
    }
    out.clustering = std::move(clustering);
    summarizeClusters(sampled, chars, config, out);
    return out;
}

stats::Matrix
prominentPhaseMatrix(const SampledDataset &sampled,
                     const PhaseAnalysis &analysis)
{
    stats::Matrix out(0, 0);
    for (std::size_t i = 0; i < analysis.num_prominent; ++i) {
        const std::size_t row = analysis.clusters[i].representative_row;
        out.appendRow(sampled.data.row(row));
    }
    return out;
}

std::string_view
clusterKindName(ClusterKind kind)
{
    switch (kind) {
      case ClusterKind::BenchmarkSpecific: return "benchmark-specific";
      case ClusterKind::SuiteSpecific: return "suite-specific";
      case ClusterKind::Mixed: return "mixed";
    }
    return "?";
}

void
saveClustering(const std::string &path,
               const stats::KMeansResult &clustering)
{
    const std::filesystem::path fs_path(path);
    if (fs_path.has_parent_path())
        std::filesystem::create_directories(fs_path.parent_path());

    // Same hardening as saveCharacterization: write a temporary sibling
    // and rename into place so a crashed writer can never leave a partial
    // cache entry behind, and close with a row-count footer that
    // loadClustering verifies — a torn copy loads as a miss.
    const std::string tmp_path = path + ".tmp";
    {
        std::ofstream out(tmp_path);
        if (!out)
            throw std::runtime_error("saveClustering: cannot write " +
                                     tmp_path);
        out.precision(17);
        out << clustering.centers.rows() << "," << clustering.centers.cols()
            << "," << clustering.assignment.size() << ","
            << clustering.inertia << "," << clustering.bic << ","
            << clustering.iterations << "\n";
        for (std::size_t c = 0; c < clustering.centers.rows(); ++c) {
            for (std::size_t d = 0; d < clustering.centers.cols(); ++d)
                out << (d ? "," : "") << clustering.centers(c, d);
            out << "\n";
        }
        for (std::size_t i = 0; i < clustering.assignment.size(); ++i)
            out << (i ? "," : "") << clustering.assignment[i];
        out << "\n";
        out << "#rows," << clustering.assignment.size() << "\n";
        out.flush();
        if (!out)
            throw std::runtime_error("saveClustering: write failed: " +
                                     tmp_path);
    }
    std::filesystem::rename(tmp_path, path);
}

bool
loadClustering(const std::string &path, stats::KMeansResult &clustering)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string line;
    if (!std::getline(in, line))
        return false;
    std::istringstream header(line);
    std::size_t k = 0, d = 0, n = 0;
    char sep = 0;
    double inertia = 0.0, bic = 0.0;
    int iterations = 0;
    header >> k >> sep >> d >> sep >> n >> sep >> inertia >> sep >> bic >>
        sep >> iterations;
    if (!header || k == 0 || n == 0)
        return false;

    stats::KMeansResult loaded;
    loaded.centers = stats::Matrix(k, d);
    loaded.inertia = inertia;
    loaded.bic = bic;
    loaded.iterations = iterations;
    for (std::size_t c = 0; c < k; ++c) {
        if (!std::getline(in, line))
            return false;
        std::istringstream row(line);
        for (std::size_t j = 0; j < d; ++j) {
            std::string field;
            if (!std::getline(row, field, ','))
                return false;
            loaded.centers(c, j) = std::stod(field);
        }
    }
    if (!std::getline(in, line))
        return false;
    std::istringstream arow(line);
    loaded.assignment.reserve(n);
    loaded.sizes.assign(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
        std::string field;
        if (!std::getline(arow, field, ','))
            return false;
        const std::size_t a = std::stoul(field);
        if (a >= k)
            return false;
        loaded.assignment.push_back(a);
        ++loaded.sizes[a];
    }

    // Footer: "#rows,<N>" must follow the assignment row and match it, and
    // nothing may follow the footer — otherwise the file is torn (e.g. a
    // pre-footer-era cache or an interrupted non-atomic copy) and must be
    // treated as a miss.
    if (!std::getline(in, line) || line.rfind("#rows,", 0) != 0)
        return false;
    std::size_t footer_rows = 0;
    const char *first = line.data() + 6;
    const char *last = line.data() + line.size();
    const auto [ptr, ec] = std::from_chars(first, last, footer_rows);
    if (ec != std::errc{} || ptr != last || footer_rows != n)
        return false;
    while (std::getline(in, line))
        if (!line.empty())
            return false;
    clustering = std::move(loaded);
    return true;
}

} // namespace mica::core
