/**
 * @file
 * Interval sampling (paper section 3.4): select a fixed number of intervals
 * per benchmark, with replacement when a benchmark is shorter, so that every
 * benchmark carries equal weight in the downstream analysis regardless of
 * its dynamic instruction count or its number of inputs.
 */

#ifndef MICAPHASE_CORE_SAMPLING_HH
#define MICAPHASE_CORE_SAMPLING_HH

#include <cstdint>
#include <vector>

#include "core/characterize.hh"
#include "stats/matrix.hh"

namespace mica::core {

/** The sampled data set fed into PCA/clustering. */
struct SampledDataset
{
    /** n x 69 matrix of sampled interval characteristics. */
    stats::Matrix data;
    /** Benchmark index per row. */
    std::vector<std::uint32_t> benchmark_of_row;
    /** Index of the source interval (into CharacterizationResult). */
    std::vector<std::uint32_t> source_interval;
};

/**
 * Sample per_benchmark intervals per benchmark, uniformly with
 * replacement, deterministically under the seed.
 */
[[nodiscard]] SampledDataset sampleIntervals(
    const CharacterizationResult &chars, std::uint32_t per_benchmark,
    std::uint64_t seed);

/**
 * The no-sampling baseline used by the sampling ablation: every interval
 * appears exactly once (benchmarks then weigh in proportion to their
 * dynamic length, which is what sampling is designed to prevent).
 */
[[nodiscard]] SampledDataset allIntervals(
    const CharacterizationResult &chars);

} // namespace mica::core

#endif // MICAPHASE_CORE_SAMPLING_HH
