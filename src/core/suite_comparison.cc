#include "core/suite_comparison.hh"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "workloads/workload.hh"

namespace mica::core {

std::size_t
SuiteComparison::clustersToCover(std::size_t suite, double fraction) const
{
    const auto &curve = cumulative.at(suite);
    for (std::size_t i = 0; i < curve.size(); ++i)
        if (curve[i] >= fraction)
            return i + 1;
    return curve.size();
}

std::size_t
SuiteComparison::indexOf(std::string_view suite) const
{
    for (std::size_t i = 0; i < suites.size(); ++i)
        if (suites[i] == suite)
            return i;
    throw std::out_of_range("SuiteComparison: unknown suite " +
                            std::string(suite));
}

SuiteComparison
compareSuites(const CharacterizationResult &chars,
              const SampledDataset &sampled, const PhaseAnalysis &analysis)
{
    SuiteComparison out;
    // Suites present in the data, listed in canonical order first so the
    // full experiment reports match the paper's figure order; suites
    // outside the canonical list (e.g. synthetic test data) follow in
    // order of first appearance.
    for (const std::string &name : workloads::SuiteCatalog::suiteNames())
        if (std::find(chars.benchmark_suites.begin(),
                      chars.benchmark_suites.end(),
                      name) != chars.benchmark_suites.end())
            out.suites.push_back(name);
    for (const std::string &suite : chars.benchmark_suites)
        if (std::find(out.suites.begin(), out.suites.end(), suite) ==
            out.suites.end())
            out.suites.push_back(suite);

    const std::size_t num_suites = out.suites.size();
    const std::size_t k = analysis.clustering.centers.rows();

    // Suite index per benchmark.
    std::vector<std::size_t> suite_of_benchmark(chars.benchmark_ids.size());
    for (std::size_t b = 0; b < chars.benchmark_suites.size(); ++b)
        suite_of_benchmark[b] = out.indexOf(chars.benchmark_suites[b]);

    // Count rows per (cluster, suite).
    std::vector<std::vector<std::size_t>> cluster_suite_rows(
        k, std::vector<std::size_t>(num_suites, 0));
    std::vector<std::size_t> suite_rows(num_suites, 0);
    for (std::size_t row = 0; row < sampled.benchmark_of_row.size();
         ++row) {
        const std::size_t c = analysis.clustering.assignment[row];
        const std::size_t s =
            suite_of_benchmark[sampled.benchmark_of_row[row]];
        ++cluster_suite_rows[c][s];
        ++suite_rows[s];
    }

    // Figure 4: coverage.
    out.coverage.assign(num_suites, 0);
    for (std::size_t c = 0; c < k; ++c)
        for (std::size_t s = 0; s < num_suites; ++s)
            if (cluster_suite_rows[c][s] > 0)
                ++out.coverage[s];

    // Figure 5: cumulative coverage per suite.
    out.cumulative.assign(num_suites, {});
    for (std::size_t s = 0; s < num_suites; ++s) {
        std::vector<double> shares;
        shares.reserve(k);
        for (std::size_t c = 0; c < k; ++c)
            shares.push_back(
                suite_rows[s] > 0
                    ? static_cast<double>(cluster_suite_rows[c][s]) /
                          static_cast<double>(suite_rows[s])
                    : 0.0);
        std::sort(shares.begin(), shares.end(), std::greater<>());
        double acc = 0.0;
        auto &curve = out.cumulative[s];
        curve.reserve(k);
        for (double share : shares) {
            acc += share;
            curve.push_back(std::min(acc, 1.0));
        }
    }

    // Figure 6: uniqueness — rows in clusters exclusive to the suite.
    out.uniqueness.assign(num_suites, 0.0);
    for (std::size_t c = 0; c < k; ++c) {
        std::size_t populated = 0;
        std::size_t owner = 0;
        for (std::size_t s = 0; s < num_suites; ++s) {
            if (cluster_suite_rows[c][s] > 0) {
                ++populated;
                owner = s;
            }
        }
        if (populated == 1)
            out.uniqueness[owner] +=
                static_cast<double>(cluster_suite_rows[c][owner]);
    }
    for (std::size_t s = 0; s < num_suites; ++s)
        if (suite_rows[s] > 0)
            out.uniqueness[s] /= static_cast<double>(suite_rows[s]);

    return out;
}

} // namespace mica::core
