/**
 * @file
 * Simulation-point selection — the paper's main *application* of the
 * phase-level characterization (section 5.3 and related work [8, 24]).
 *
 * Two flavours are implemented:
 *
 *  - Per-benchmark selection ("SimPoint" style, Sherwood et al.): cluster
 *    a single benchmark's intervals and keep one representative per
 *    cluster, weighted by cluster size. Full-benchmark metrics are then
 *    estimated as the weighted average of the representatives.
 *
 *  - Cross-benchmark selection (Eeckhout et al., IISWC 2005): reuse the
 *    global phase clustering so one representative can stand in for
 *    phases shared by *several* benchmarks — fewer total simulation
 *    points for a whole suite, which is exactly the simulation-time
 *    argument the paper's section 5.3 makes.
 */

#ifndef MICAPHASE_CORE_SIMPOINTS_HH
#define MICAPHASE_CORE_SIMPOINTS_HH

#include <cstdint>
#include <vector>

#include "core/phase_analysis.hh"

namespace mica::core {

/** One selected simulation point. */
struct SimulationPoint
{
    std::uint32_t interval = 0; ///< index into the characterization
    double weight = 0.0;        ///< fraction of the benchmark it stands for
};

/** Per-benchmark simulation points plus their estimation error. */
struct SimPointSelection
{
    std::uint32_t benchmark = 0;
    std::vector<SimulationPoint> points;

    /**
     * Mean relative error, over the 69 characteristics, of estimating the
     * benchmark's average behaviour from the weighted simulation points
     * (characteristics whose true mean is ~0 are skipped).
     */
    double estimation_error = 0.0;

    /** Fraction of intervals that need simulating (points / intervals). */
    double simulated_fraction = 0.0;
};

/**
 * SimPoint-style per-benchmark selection: cluster the benchmark's own
 * intervals into at most max_points groups (k-means on the rescaled PCA
 * space of that benchmark) and keep the centroid-nearest interval per
 * group.
 */
[[nodiscard]] SimPointSelection selectSimPoints(
    const CharacterizationResult &chars, std::uint32_t benchmark,
    std::size_t max_points, std::uint64_t seed);

/** Summary of cross-benchmark selection for one suite. */
struct SuiteSimPointSummary
{
    std::string suite;
    /** Distinct global clusters the suite touches = points needed when
     * representatives are shared across benchmarks. */
    std::size_t shared_points = 0;
    /** Sum of per-benchmark points when every benchmark is simulated in
     * isolation with the same per-benchmark budget. */
    std::size_t isolated_points = 0;
    /** Points needed to cover the given fraction of the suite. */
    std::size_t shared_points_90 = 0;
};

/**
 * Cross-benchmark selection over a finished phase analysis: for each
 * suite, how many simulation points are needed when phases shared across
 * benchmarks are simulated only once (paper section 5.3: CPU2006 needs
 * only slightly more points than CPU2000; domain-specific suites need
 * very few).
 */
[[nodiscard]] std::vector<SuiteSimPointSummary> crossBenchmarkSimPoints(
    const CharacterizationResult &chars, const SampledDataset &sampled,
    const PhaseAnalysis &analysis, std::size_t per_benchmark_budget);

} // namespace mica::core

#endif // MICAPHASE_CORE_SIMPOINTS_HH
