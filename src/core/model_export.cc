#include "core/model_export.hh"

namespace mica::core {

namespace {

model::ClusterKind
toModelKind(ClusterKind kind)
{
    switch (kind) {
      case ClusterKind::BenchmarkSpecific:
        return model::ClusterKind::BenchmarkSpecific;
      case ClusterKind::SuiteSpecific:
        return model::ClusterKind::SuiteSpecific;
      case ClusterKind::Mixed:
        return model::ClusterKind::Mixed;
    }
    return model::ClusterKind::Mixed;
}

} // namespace

model::PhaseModel
buildPhaseModel(const ExperimentOutputs &outputs)
{
    const ExperimentConfig &config = outputs.config;
    const PhaseAnalysis &analysis = outputs.analysis;
    const std::size_t k = analysis.clustering.centers.rows();

    model::PhaseModel m;
    m.analysis_key = config.analysisKey();
    m.interval_instructions = config.interval_instructions;
    m.samples_per_benchmark = config.samples_per_benchmark;
    m.interval_scale = config.interval_scale;
    m.pca_min_stddev = config.pca_min_stddev;
    m.seed = config.seed;
    m.training_rows = outputs.sampled.data.rows();

    m.benchmark_ids = outputs.characterization.benchmark_ids;
    m.benchmark_suites = outputs.characterization.benchmark_suites;
    m.suites = outputs.comparison.suites;

    m.normalize_input = analysis.pca.normalizeInput();
    m.norm_mean = analysis.pca.inputStats().mean;
    m.norm_stddev = analysis.pca.inputStats().stddev;

    m.pca_explained = analysis.pca_explained;
    m.eigenvalues = analysis.pca.eigenvalues();
    m.loadings = analysis.pca.loadings();
    m.rescale_sd = analysis.pca.scoreStdDevs();

    m.centers = analysis.clustering.centers;
    m.cluster_sizes.reserve(k);
    for (std::size_t size : analysis.clustering.sizes)
        m.cluster_sizes.push_back(size);
    // ClusterSummaries are weight-sorted; kinds live in cluster-id order.
    m.cluster_kinds.assign(k, model::ClusterKind::Mixed);
    for (const ClusterSummary &s : analysis.clusters)
        m.cluster_kinds[s.cluster] = toModelKind(s.kind);

    // Per-(cluster, suite) training rows, in the comparison's suite order
    // — the counts behind Figures 4-6, frozen so trainingCoverage() and
    // assessWorkload() work from the artifact alone.
    const auto &chars = outputs.characterization;
    std::vector<std::size_t> suite_of_benchmark(chars.benchmark_ids.size());
    for (std::size_t b = 0; b < chars.benchmark_suites.size(); ++b)
        suite_of_benchmark[b] =
            outputs.comparison.indexOf(chars.benchmark_suites[b]);
    m.suite_rows.assign(k * m.suites.size(), 0);
    for (std::size_t row = 0;
         row < outputs.sampled.benchmark_of_row.size(); ++row) {
        const std::size_t c = analysis.clustering.assignment[row];
        const std::size_t s =
            suite_of_benchmark[outputs.sampled.benchmark_of_row[row]];
        ++m.suite_rows[c * m.suites.size() + s];
    }

    m.prominent.reserve(analysis.num_prominent);
    for (std::size_t i = 0; i < analysis.num_prominent; ++i) {
        const ClusterSummary &s = analysis.clusters[i];
        model::ProminentPhase ph;
        ph.cluster = static_cast<std::uint32_t>(s.cluster);
        ph.weight = s.weight;
        ph.representative_row = s.representative_row;
        m.prominent.push_back(ph);
    }
    m.prominent_raw = prominentPhaseMatrix(outputs.sampled, analysis);

    m.validate();
    return m;
}

model::PhaseModel
buildPhaseModel(const ExperimentOutputs &outputs, const ga::GaResult &keys)
{
    model::PhaseModel m = buildPhaseModel(outputs);
    m.key_characteristics.reserve(keys.selected.size());
    for (std::size_t idx : keys.selected)
        m.key_characteristics.push_back(static_cast<std::uint32_t>(idx));
    m.ga_fitness = keys.fitness;
    m.validate();
    return m;
}

} // namespace mica::core
