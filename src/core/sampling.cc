#include "core/sampling.hh"

#include <stdexcept>

#include "obs/trace.hh"
#include "stats/rng.hh"

namespace mica::core {

SampledDataset
sampleIntervals(const CharacterizationResult &chars,
                std::uint32_t per_benchmark, std::uint64_t seed)
{
    if (per_benchmark == 0)
        throw std::invalid_argument("sampleIntervals: per_benchmark == 0");

    const obs::Span span("sample.intervals", "sample");

    // Group interval indices by benchmark.
    std::vector<std::vector<std::uint32_t>> by_benchmark(
        chars.benchmark_ids.size());
    for (std::size_t i = 0; i < chars.intervals.size(); ++i)
        by_benchmark[chars.intervals[i].benchmark].push_back(
            static_cast<std::uint32_t>(i));

    SampledDataset out;
    out.data = stats::Matrix(
        chars.benchmark_ids.size() * per_benchmark,
        metrics::kNumCharacteristics);
    stats::Rng rng(seed);
    std::size_t row = 0;
    for (std::size_t b = 0; b < by_benchmark.size(); ++b) {
        const auto &pool = by_benchmark[b];
        if (pool.empty())
            throw std::runtime_error(
                "sampleIntervals: benchmark with no intervals: " +
                chars.benchmark_ids[b]);
        for (std::uint32_t s = 0; s < per_benchmark; ++s) {
            const std::uint32_t pick =
                pool[static_cast<std::size_t>(rng.nextBelow(pool.size()))];
            const auto &values = chars.intervals[pick].values;
            auto dst = out.data.row(row);
            std::copy(values.begin(), values.end(), dst.begin());
            out.benchmark_of_row.push_back(
                static_cast<std::uint32_t>(b));
            out.source_interval.push_back(pick);
            ++row;
        }
    }
    obs::count("sample.rows", static_cast<double>(row));
    return out;
}

SampledDataset
allIntervals(const CharacterizationResult &chars)
{
    SampledDataset out;
    out.data =
        stats::Matrix(chars.intervals.size(), metrics::kNumCharacteristics);
    for (std::size_t i = 0; i < chars.intervals.size(); ++i) {
        const auto &values = chars.intervals[i].values;
        auto dst = out.data.row(i);
        std::copy(values.begin(), values.end(), dst.begin());
        out.benchmark_of_row.push_back(chars.intervals[i].benchmark);
        out.source_interval.push_back(static_cast<std::uint32_t>(i));
    }
    return out;
}

} // namespace mica::core
