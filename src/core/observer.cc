#include "core/observer.hh"

#include "obs/trace.hh"

namespace mica::core {

std::string_view
stageName(Stage stage)
{
    switch (stage) {
      case Stage::Verify: return "verify";
      case Stage::Characterize: return "characterize";
      case Stage::Sample: return "sample";
      case Stage::Pca: return "pca";
      case Stage::KMeans: return "kmeans";
      case Stage::Compare: return "compare";
      case Stage::FeatureSelect: return "ga";
      case Stage::ModelExport: return "model";
    }
    return "unknown";
}

std::string_view
stageSpanName(Stage stage)
{
    switch (stage) {
      case Stage::Verify: return "pipeline.verify";
      case Stage::Characterize: return "pipeline.characterize";
      case Stage::Sample: return "pipeline.sample";
      case Stage::Pca: return "pipeline.pca";
      case Stage::KMeans: return "pipeline.kmeans";
      case Stage::Compare: return "pipeline.compare";
      case Stage::FeatureSelect: return "pipeline.ga";
      case Stage::ModelExport: return "pipeline.model";
    }
    return "pipeline.unknown";
}

void
ProgressObserverAdapter::onStage(const StageEvent &event)
{
    if (!fn_ || event.stage != Stage::Characterize ||
        event.kind != StageEvent::Kind::Progress) {
        return;
    }
    fn_(std::string(event.item), event.done, event.total);
}

void
ObserverList::add(PipelineObserver *observer)
{
    if (observer != nullptr)
        observers_.push_back(observer);
}

void
ObserverList::onStage(const StageEvent &event)
{
    for (PipelineObserver *observer : observers_)
        observer->onStage(event);
}

void
TracingObserver::onStage(const StageEvent &event)
{
    obs::TraceSession *session = obs::TraceSession::active();
    if (session == nullptr)
        return;
    const auto index = static_cast<std::size_t>(event.stage);
    switch (event.kind) {
      case StageEvent::Kind::Begin:
        begin_us_[index] = session->nowMicros();
        break;
      case StageEvent::Kind::Progress:
        session->addCounter("pipeline.progress_events", 1.0);
        break;
      case StageEvent::Kind::End:
        session->recordSpan(stageSpanName(event.stage), "pipeline",
                            begin_us_[index], session->nowMicros(),
                            obs::currentThreadId(), 0);
        break;
    }
}

StageScope::StageScope(PipelineObserver *observer, Stage stage,
                       std::size_t total)
    : observer_(observer), stage_(stage), total_(total),
      t0_(std::chrono::steady_clock::now())
{
    if (observer_ == nullptr)
        return;
    StageEvent event;
    event.stage = stage_;
    event.kind = StageEvent::Kind::Begin;
    event.total = total_;
    observer_->onStage(event);
}

StageScope::~StageScope()
{
    if (observer_ == nullptr)
        return;
    StageEvent event;
    event.stage = stage_;
    event.kind = StageEvent::Kind::End;
    event.done = total_;
    event.total = total_;
    event.elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - t0_);
    observer_->onStage(event);
}

} // namespace mica::core
