/**
 * @file
 * Bridge from a finished experiment to the frozen model artifact: collects
 * everything model::PhaseModel needs (normalization stats, PCA basis,
 * rescale factors, cluster model, per-suite composition, prominent-phase
 * summaries, optional GA keys) out of ExperimentOutputs. The model library
 * itself deliberately does not depend on core; this is the one place that
 * knows both sides.
 */

#ifndef MICAPHASE_CORE_MODEL_EXPORT_HH
#define MICAPHASE_CORE_MODEL_EXPORT_HH

#include "core/pipeline.hh"
#include "model/phase_model.hh"

namespace mica::core {

/**
 * Freeze a finished experiment into a PhaseModel (GA section left empty).
 * The model's projection of outputs.sampled.data is bit-identical to
 * outputs.analysis.reduced and .clustering.assignment — the keystone
 * guarantee tests/test_model.cc asserts at threads 1/2/4.
 */
[[nodiscard]] model::PhaseModel buildPhaseModel(
    const ExperimentOutputs &outputs);

/** Same, with GA-selected key characteristics embedded. */
[[nodiscard]] model::PhaseModel buildPhaseModel(
    const ExperimentOutputs &outputs, const ga::GaResult &keys);

} // namespace mica::core

#endif // MICAPHASE_CORE_MODEL_EXPORT_HH
