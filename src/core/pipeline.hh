/**
 * @file
 * One-call experiment driver tying the whole methodology together, plus
 * the helpers the figure binaries use to turn analysis results into
 * kiviat panels and key-characteristic reports.
 */

#ifndef MICAPHASE_CORE_PIPELINE_HH
#define MICAPHASE_CORE_PIPELINE_HH

#include <span>

#include "core/characterize.hh"
#include "core/phase_analysis.hh"
#include "core/sampling.hh"
#include "core/suite_comparison.hh"
#include "ga/feature_select.hh"
#include "viz/kiviat.hh"

namespace mica::core {

/** Everything a figure binary needs. */
struct ExperimentOutputs
{
    ExperimentConfig config;
    CharacterizationResult characterization;
    SampledDataset sampled;
    PhaseAnalysis analysis;
    SuiteComparison comparison;
};

/**
 * Statically verify every program of every registered benchmark (all
 * inputs) with the analysis subsystem. Throws std::runtime_error naming
 * the offending benchmark when any program has Error-level diagnostics.
 * runFullExperiment calls this before characterizing, so malformed
 * generator output is rejected even when the characterization itself is
 * served from the on-disk cache.
 */
void verifyCatalog(const workloads::SuiteCatalog &catalog);

/**
 * Run verify -> characterize (cached) -> sample -> analyze -> compare.
 *
 * When config.model_path is non-empty, the finished analysis is
 * additionally frozen into a model::PhaseModel and saved there (the
 * ModelExport stage; see docs/MODEL.md). Like tracing, this is an output
 * step only and never affects the numerics or cache keys.
 *
 * Every stage reports typed StageEvents to the observer (may be null);
 * when config.trace_path is non-empty the run is additionally wrapped in
 * an obs::TraceScope and a TracingObserver, exporting Chrome trace-event
 * JSON plus a metrics summary on return. Tracing and observation never
 * touch the numerics: traced and untraced runs are bit-identical.
 *
 * Deterministic for a given config — including config.threads: the knob
 * (0 = hardware concurrency, any site capped at its work-item count; see
 * ExperimentConfig::threads) fans the characterization, k-means, GA and
 * PCA stages out over the shared thread pool, and every stage reduces
 * fixed-boundary partials in a fixed order, so cluster assignments,
 * GA-selected features and retained PCs are bit-identical whether the
 * pipeline runs on 1 thread or 64.
 */
[[nodiscard]] ExperimentOutputs runFullExperiment(
    const ExperimentConfig &config, PipelineObserver *observer = nullptr);

/**
 * Compatibility adapter for the legacy ProgressFn callback (receives one
 * call per characterized benchmark, nothing else). New code should pass
 * a PipelineObserver instead.
 */
[[nodiscard]] ExperimentOutputs runFullExperiment(
    const ExperimentConfig &config, const ProgressFn &progress);

/**
 * Run the GA over the prominent phases to select the key characteristics
 * (paper Table 2: 12 characteristics at ~0.8 correlation). Emits
 * FeatureSelect stage events on the observer (may be null).
 */
[[nodiscard]] ga::GaResult selectKeyCharacteristics(
    const ExperimentOutputs &outputs, std::size_t count = 12,
    PipelineObserver *observer = nullptr);

/**
 * Axis statistics (min / mean +- sd / max per key characteristic) over the
 * prominent phase representatives — the kiviat ring scales.
 */
[[nodiscard]] std::vector<viz::AxisStats> kiviatAxes(
    const ExperimentOutputs &outputs,
    std::span<const std::size_t> key_characteristics);

/**
 * Build the kiviat panel (values, pie slices, caption) for one cluster.
 * min_caption_fraction: benchmarks below this share of their own execution
 * are folded into an "other" line, as in the paper's plots.
 */
[[nodiscard]] viz::KiviatPanel kiviatPanelFor(
    const ExperimentOutputs &outputs, const ClusterSummary &cluster,
    std::span<const std::size_t> key_characteristics,
    double min_caption_fraction = 0.01);

} // namespace mica::core

#endif // MICAPHASE_CORE_PIPELINE_HH
