/**
 * @file
 * Structured pipeline observation: every stage of the experiment pipeline
 * (verify, characterize, sample, PCA, k-means, suite comparison, GA key-
 * characteristic selection) reports typed StageEvents to a
 * PipelineObserver — begin/end with durations, plus per-item progress
 * where a stage iterates over benchmarks.
 *
 * This replaces the bare `ProgressFn` callback that used to be the only
 * hook into the pipeline. ProgressFn remains available strictly as a
 * compatibility adapter (ProgressObserverAdapter); new code should
 * implement PipelineObserver. The obs tracing layer plugs in as just
 * another observer (TracingObserver), which is how a traced
 * runFullExperiment gets its per-stage spans.
 *
 * Threading: Begin/End events for a stage are emitted from the thread
 * driving that stage; Progress events may arrive from worker threads but
 * are serialized (never concurrent with each other or with the stage's
 * Begin/End). The `item` string_view is only valid for the duration of
 * the callback.
 */

#ifndef MICAPHASE_CORE_OBSERVER_HH
#define MICAPHASE_CORE_OBSERVER_HH

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace mica::core {

/** The pipeline stages an observer can see. */
enum class Stage : std::uint8_t
{
    Verify = 0,    ///< static verification of every catalog program
    Characterize,  ///< VM + MICA profiler over the catalog (or cache load)
    Sample,        ///< per-benchmark interval sampling
    Pca,           ///< normalize -> PCA -> rescale
    KMeans,        ///< clustering with BIC restarts
    Compare,       ///< suite coverage / diversity / uniqueness
    FeatureSelect, ///< GA key-characteristic selection
    ModelExport,   ///< freezing + serializing the PhaseModel artifact
};

inline constexpr std::size_t kNumStages = 8;

/** Short stable name, e.g. "characterize". */
[[nodiscard]] std::string_view stageName(Stage stage);

/** Span name the tracing layer uses, e.g. "pipeline.characterize". */
[[nodiscard]] std::string_view stageSpanName(Stage stage);

/** One typed pipeline event. */
struct StageEvent
{
    enum class Kind : std::uint8_t
    {
        Begin,    ///< stage started (total set when known)
        Progress, ///< one item finished (done/total/item set)
        End,      ///< stage finished (elapsed set)
    };

    Stage stage = Stage::Verify;
    Kind kind = Kind::Begin;
    std::size_t done = 0;  ///< items finished so far (Progress)
    std::size_t total = 0; ///< total items (0 when not meaningful)
    /** Current item id, e.g. "SPECint2006/gcc" (Progress only). */
    std::string_view item{};
    /** Stage duration (End only). */
    std::chrono::microseconds elapsed{0};
};

/** Interface every pipeline stage reports into. */
class PipelineObserver
{
  public:
    virtual ~PipelineObserver() = default;
    virtual void onStage(const StageEvent &event) = 0;
};

/**
 * Legacy progress callback: benchmark id, finished count, total count.
 * Kept only so existing callers compile; wraps into the observer API via
 * ProgressObserverAdapter. New code should implement PipelineObserver.
 */
using ProgressFn =
    std::function<void(const std::string &, std::size_t, std::size_t)>;

/**
 * Compatibility adapter: forwards Characterize Progress events to a
 * ProgressFn, preserving the legacy callback's exact semantics (one call
 * per characterized benchmark; nothing on cache hits). All other events
 * are dropped.
 */
class ProgressObserverAdapter final : public PipelineObserver
{
  public:
    explicit ProgressObserverAdapter(ProgressFn fn) : fn_(std::move(fn)) {}
    void onStage(const StageEvent &event) override;

  private:
    ProgressFn fn_;
};

/** Fan-out to several observers (non-owning), in add() order. */
class ObserverList final : public PipelineObserver
{
  public:
    void add(PipelineObserver *observer);
    [[nodiscard]] bool empty() const { return observers_.empty(); }
    void onStage(const StageEvent &event) override;

  private:
    std::vector<PipelineObserver *> observers_;
};

/**
 * Observer that mirrors stage Begin/End pairs into the active
 * obs::TraceSession as "pipeline.<stage>" spans. No-op when tracing is
 * disabled. Progress events are counted ("pipeline.progress_events").
 */
class TracingObserver final : public PipelineObserver
{
  public:
    void onStage(const StageEvent &event) override;

  private:
    std::array<std::uint64_t, kNumStages> begin_us_{};
};

/**
 * RAII Begin/End emitter used by the stage implementations: emits Begin
 * on construction and End (with the measured duration) on destruction.
 * No-op when the observer is null.
 */
class StageScope
{
  public:
    StageScope(PipelineObserver *observer, Stage stage,
               std::size_t total = 0);
    ~StageScope();

    StageScope(const StageScope &) = delete;
    StageScope &operator=(const StageScope &) = delete;

    /** Adjust the total after construction (emitted with End). */
    void setTotal(std::size_t total) { total_ = total; }

  private:
    PipelineObserver *observer_;
    Stage stage_;
    std::size_t total_;
    std::chrono::steady_clock::time_point t0_;
};

} // namespace mica::core

#endif // MICAPHASE_CORE_OBSERVER_HH
