/**
 * @file
 * Minimal SVG document builder used by the kiviat and pie-chart renderers.
 * Deliberately tiny: shapes are appended in paint order and serialized as
 * standalone SVG text.
 */

#ifndef MICAPHASE_VIZ_SVG_HH
#define MICAPHASE_VIZ_SVG_HH

#include <string>
#include <vector>

namespace mica::viz {

/** A 2D point in SVG user units. */
struct Point
{
    double x = 0.0;
    double y = 0.0;
};

/** SVG document under construction. */
class SvgDocument
{
  public:
    SvgDocument(double width, double height);

    void line(Point a, Point b, const std::string &stroke,
              double stroke_width = 1.0);
    void circle(Point center, double radius, const std::string &fill,
                const std::string &stroke = "none");
    void polygon(const std::vector<Point> &points, const std::string &fill,
                 const std::string &stroke, double fill_opacity = 1.0);
    void polyline(const std::vector<Point> &points,
                  const std::string &stroke, double stroke_width = 1.0);
    /** Pie-slice wedge between two angles (radians, 0 = +x, ccw). */
    void wedge(Point center, double radius, double a0, double a1,
               const std::string &fill);
    void text(Point at, const std::string &content, double font_size,
              const std::string &anchor = "start",
              const std::string &fill = "#333333");
    void rect(Point top_left, double w, double h, const std::string &fill);

    /** Serialize the document. */
    [[nodiscard]] std::string str() const;

    /** Serialize and write to a file; throws std::runtime_error on I/O
     * failure. */
    void writeFile(const std::string &path) const;

    [[nodiscard]] double width() const { return width_; }
    [[nodiscard]] double height() const { return height_; }

  private:
    double width_;
    double height_;
    std::vector<std::string> elements_;
};

/** Escape XML-special characters in text content. */
[[nodiscard]] std::string escapeXml(const std::string &text);

} // namespace mica::viz

#endif // MICAPHASE_VIZ_SVG_HH
