#include "viz/svg.hh"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mica::viz {

namespace {

std::string
fmt(double v)
{
    std::ostringstream os;
    os.precision(2);
    os << std::fixed << v;
    return os.str();
}

} // namespace

std::string
escapeXml(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '&': out += "&amp;"; break;
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '"': out += "&quot;"; break;
          default: out += c; break;
        }
    }
    return out;
}

SvgDocument::SvgDocument(double width, double height)
    : width_(width), height_(height)
{
}

void
SvgDocument::line(Point a, Point b, const std::string &stroke,
                  double stroke_width)
{
    std::ostringstream os;
    os << "<line x1=\"" << fmt(a.x) << "\" y1=\"" << fmt(a.y) << "\" x2=\""
       << fmt(b.x) << "\" y2=\"" << fmt(b.y) << "\" stroke=\"" << stroke
       << "\" stroke-width=\"" << fmt(stroke_width) << "\"/>";
    elements_.push_back(os.str());
}

void
SvgDocument::circle(Point center, double radius, const std::string &fill,
                    const std::string &stroke)
{
    std::ostringstream os;
    os << "<circle cx=\"" << fmt(center.x) << "\" cy=\"" << fmt(center.y)
       << "\" r=\"" << fmt(radius) << "\" fill=\"" << fill << "\" stroke=\""
       << stroke << "\"/>";
    elements_.push_back(os.str());
}

void
SvgDocument::polygon(const std::vector<Point> &points,
                     const std::string &fill, const std::string &stroke,
                     double fill_opacity)
{
    std::ostringstream os;
    os << "<polygon points=\"";
    for (const Point &p : points)
        os << fmt(p.x) << "," << fmt(p.y) << " ";
    os << "\" fill=\"" << fill << "\" stroke=\"" << stroke
       << "\" fill-opacity=\"" << fmt(fill_opacity) << "\"/>";
    elements_.push_back(os.str());
}

void
SvgDocument::polyline(const std::vector<Point> &points,
                      const std::string &stroke, double stroke_width)
{
    std::ostringstream os;
    os << "<polyline points=\"";
    for (const Point &p : points)
        os << fmt(p.x) << "," << fmt(p.y) << " ";
    os << "\" fill=\"none\" stroke=\"" << stroke << "\" stroke-width=\""
       << fmt(stroke_width) << "\"/>";
    elements_.push_back(os.str());
}

void
SvgDocument::wedge(Point c, double r, double a0, double a1,
                   const std::string &fill)
{
    const Point p0{c.x + r * std::cos(a0), c.y - r * std::sin(a0)};
    const Point p1{c.x + r * std::cos(a1), c.y - r * std::sin(a1)};
    const int large_arc = (a1 - a0) > 3.14159265358979 ? 1 : 0;
    std::ostringstream os;
    os << "<path d=\"M " << fmt(c.x) << " " << fmt(c.y) << " L " << fmt(p0.x)
       << " " << fmt(p0.y) << " A " << fmt(r) << " " << fmt(r) << " 0 "
       << large_arc << " 0 " << fmt(p1.x) << " " << fmt(p1.y)
       << " Z\" fill=\"" << fill << "\" stroke=\"#ffffff\""
       << " stroke-width=\"0.5\"/>";
    elements_.push_back(os.str());
}

void
SvgDocument::text(Point at, const std::string &content, double font_size,
                  const std::string &anchor, const std::string &fill)
{
    std::ostringstream os;
    os << "<text x=\"" << fmt(at.x) << "\" y=\"" << fmt(at.y)
       << "\" font-size=\"" << fmt(font_size)
       << "\" font-family=\"sans-serif\" text-anchor=\"" << anchor
       << "\" fill=\"" << fill << "\">" << escapeXml(content) << "</text>";
    elements_.push_back(os.str());
}

void
SvgDocument::rect(Point top_left, double w, double h,
                  const std::string &fill)
{
    std::ostringstream os;
    os << "<rect x=\"" << fmt(top_left.x) << "\" y=\"" << fmt(top_left.y)
       << "\" width=\"" << fmt(w) << "\" height=\"" << fmt(h)
       << "\" fill=\"" << fill << "\"/>";
    elements_.push_back(os.str());
}

std::string
SvgDocument::str() const
{
    std::ostringstream os;
    os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
       << fmt(width_) << "\" height=\"" << fmt(height_) << "\" viewBox=\"0 0 "
       << fmt(width_) << " " << fmt(height_) << "\">\n";
    for (const std::string &el : elements_)
        os << "  " << el << "\n";
    os << "</svg>\n";
    return os.str();
}

void
SvgDocument::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("SvgDocument: cannot write " + path);
    out << str();
}

} // namespace mica::viz
