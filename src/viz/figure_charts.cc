#include "viz/figure_charts.hh"

#include <algorithm>
#include <sstream>

namespace mica::viz {

namespace {

const char *const kSeriesPalette[] = {
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
    "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
};
constexpr std::size_t kSeriesPaletteSize =
    sizeof(kSeriesPalette) / sizeof(kSeriesPalette[0]);

std::string
formatValue(double v, bool percent)
{
    std::ostringstream os;
    os.precision(percent ? 1 : 4);
    if (percent)
        os << std::fixed << v * 100.0 << "%";
    else
        os << v;
    return os.str();
}

} // namespace

SvgDocument
renderBarChartSvg(const std::string &title, const std::vector<Bar> &bars,
                  const ChartOptions &opts)
{
    SvgDocument doc(opts.width, opts.height);
    doc.rect({0, 0}, opts.width, opts.height, "#ffffff");
    doc.text({10, 20}, title, 13, "start", "#000000");

    double max_value = 0.0;
    for (const Bar &bar : bars)
        max_value = std::max(max_value, bar.value);
    if (max_value <= 0.0)
        max_value = 1.0;

    const double label_w = 130.0;
    const double value_w = 70.0;
    const double plot_w = opts.width - label_w - value_w - 20.0;
    const double top = 36.0;
    const double row_h =
        bars.empty() ? 0.0
                     : (opts.height - top - 10.0) /
                           static_cast<double>(bars.size());

    for (std::size_t i = 0; i < bars.size(); ++i) {
        const double y = top + row_h * static_cast<double>(i);
        const double w = plot_w * bars[i].value / max_value;
        doc.text({label_w - 6.0, y + row_h * 0.65}, bars[i].label, 11,
                 "end", "#333333");
        doc.rect({label_w, y + row_h * 0.15}, w, row_h * 0.7,
                 kSeriesPalette[i % kSeriesPaletteSize]);
        doc.text({label_w + w + 6.0, y + row_h * 0.65},
                 formatValue(bars[i].value, opts.percent), 10, "start",
                 "#333333");
    }
    return doc;
}

SvgDocument
renderLineChartSvg(const std::string &title,
                   const std::vector<Series> &series,
                   const ChartOptions &opts)
{
    SvgDocument doc(opts.width, opts.height);
    doc.rect({0, 0}, opts.width, opts.height, "#ffffff");
    doc.text({10, 20}, title, 13, "start", "#000000");

    std::size_t n = 0;
    double max_y = 0.0;
    for (const Series &s : series) {
        n = std::max(n, s.values.size());
        for (double v : s.values)
            max_y = std::max(max_y, v);
    }
    if (n < 2 || max_y <= 0.0)
        return doc;

    const double left = 50.0, right = 150.0, top = 36.0, bottom = 30.0;
    const double plot_w = opts.width - left - right;
    const double plot_h = opts.height - top - bottom;

    // Axes + gridlines at quarter heights.
    doc.line({left, top}, {left, top + plot_h}, "#888888");
    doc.line({left, top + plot_h}, {left + plot_w, top + plot_h},
             "#888888");
    for (int g = 0; g <= 4; ++g) {
        const double frac = static_cast<double>(g) / 4.0;
        const double y = top + plot_h * (1.0 - frac);
        doc.line({left, y}, {left + plot_w, y}, "#eeeeee", 0.5);
        doc.text({left - 6.0, y + 3.0},
                 formatValue(max_y * frac, opts.percent), 9, "end",
                 "#666666");
    }

    for (std::size_t si = 0; si < series.size(); ++si) {
        const auto &values = series[si].values;
        if (values.size() < 2)
            continue;
        std::vector<Point> pts;
        for (std::size_t i = 0; i < values.size(); ++i) {
            const double x = left + plot_w * static_cast<double>(i) /
                                 static_cast<double>(n - 1);
            const double y =
                top + plot_h * (1.0 - std::clamp(values[i] / max_y, 0.0,
                                                 1.0));
            pts.push_back({x, y});
        }
        const char *color = kSeriesPalette[si % kSeriesPaletteSize];
        doc.polyline(pts, color, 1.5);
        doc.text({left + plot_w + 8.0,
                  top + 14.0 * static_cast<double>(si + 1)},
                 series[si].name, 10, "start", color);
    }
    doc.text({left + plot_w / 2.0, opts.height - 8.0},
             "clusters (1.." + std::to_string(n) + ")", 10, "middle",
             "#666666");
    return doc;
}

} // namespace mica::viz
