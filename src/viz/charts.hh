/**
 * @file
 * Terminal-friendly charts and CSV emission for the experiment harness:
 * ASCII bar charts (Figures 4 and 6), ASCII multi-series curves (Figure 5)
 * and CSV writers so results can be re-plotted externally.
 */

#ifndef MICAPHASE_VIZ_CHARTS_HH
#define MICAPHASE_VIZ_CHARTS_HH

#include <string>
#include <vector>

namespace mica::viz {

/** One bar of a bar chart. */
struct Bar
{
    std::string label;
    double value = 0.0;
};

/** ASCII horizontal bar chart; values are scaled to the widest bar. */
[[nodiscard]] std::string asciiBarChart(const std::string &title,
                                        const std::vector<Bar> &bars,
                                        int width = 50,
                                        bool percent = false);

/** One named series of y-values over a shared integer x-axis 1..n. */
struct Series
{
    std::string name;
    std::vector<double> values;
};

/**
 * ASCII multi-series curve plot (y in [0, 1] expected); each series is
 * drawn with its own glyph. Used for the cumulative-coverage curves.
 */
[[nodiscard]] std::string asciiCurves(const std::string &title,
                                      const std::vector<Series> &series,
                                      int plot_width = 64,
                                      int plot_height = 20);

/** Write a CSV file: header + rows. Throws std::runtime_error on I/O. */
void writeCsv(const std::string &path,
              const std::vector<std::string> &header,
              const std::vector<std::vector<std::string>> &rows);

} // namespace mica::viz

#endif // MICAPHASE_VIZ_CHARTS_HH
