/**
 * @file
 * Kiviat (radar) diagrams for prominent phase behaviours, plus the
 * benchmark pie charts shown next to them (paper section 3.8, Figures
 * 2-3). Rings mark min, mean - sd, mean, mean + sd and max of each axis
 * over the whole phase set, matching the paper's plot convention.
 */

#ifndef MICAPHASE_VIZ_KIVIAT_HH
#define MICAPHASE_VIZ_KIVIAT_HH

#include <string>
#include <vector>

#include "viz/svg.hh"

namespace mica::viz {

/** Per-axis scaling statistics (over all plotted phases). */
struct AxisStats
{
    std::string name;
    double min = 0.0;
    double mean_minus_sd = 0.0;
    double mean = 0.0;
    double mean_plus_sd = 0.0;
    double max = 1.0;
};

/** A pie-chart slice: which benchmark and what share of the cluster. */
struct PieSlice
{
    std::string label;
    double fraction = 0.0; ///< share of the cluster's weight
};

/** One kiviat panel: a phase's key-characteristic values + its pie. */
struct KiviatPanel
{
    std::string title;          ///< e.g. "weight: 4.87%"
    std::vector<double> values; ///< one per axis, raw characteristic units
    std::vector<PieSlice> slices;
    std::vector<std::string> caption_lines; ///< benchmark list text
};

/** Rendering options. */
struct KiviatOptions
{
    double panel_size = 220.0; ///< square panel edge, SVG units
    int columns = 5;           ///< panels per row in a grid rendering
    bool draw_axis_labels = true;
};

/** Render one panel (kiviat + pie side by side) into a fresh document. */
[[nodiscard]] SvgDocument renderKiviatPanel(const KiviatPanel &panel,
                                            const std::vector<AxisStats>
                                                &axes,
                                            const KiviatOptions &opts);

/** Render a grid of panels (one SVG, as in the paper's Figures 2-3). */
[[nodiscard]] SvgDocument renderKiviatGrid(
    const std::string &title, const std::vector<KiviatPanel> &panels,
    const std::vector<AxisStats> &axes, const KiviatOptions &opts);

/**
 * Normalize a raw axis value to a [0, 1] radius using the axis min/max.
 * Values outside the range clamp.
 */
[[nodiscard]] double axisRadius(const AxisStats &axis, double value);

/**
 * ASCII rendering of one kiviat panel (one bar line per axis), for
 * terminal-friendly output in the bench harness.
 */
[[nodiscard]] std::string renderAsciiKiviat(const KiviatPanel &panel,
                                            const std::vector<AxisStats>
                                                &axes,
                                            int bar_width = 40);

} // namespace mica::viz

#endif // MICAPHASE_VIZ_KIVIAT_HH
