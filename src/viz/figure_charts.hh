/**
 * @file
 * SVG renderings of the paper's figure styles: horizontal bar charts
 * (Figures 4 and 6) and multi-series line charts (Figures 1 and 5), built
 * on the same SvgDocument substrate as the kiviat plots.
 */

#ifndef MICAPHASE_VIZ_FIGURE_CHARTS_HH
#define MICAPHASE_VIZ_FIGURE_CHARTS_HH

#include "viz/charts.hh"
#include "viz/svg.hh"

namespace mica::viz {

/** Options shared by the SVG chart renderers. */
struct ChartOptions
{
    double width = 640.0;
    double height = 360.0;
    bool percent = false; ///< format values as percentages
};

/** Horizontal bar chart (one bar per suite, Figure 4/6 style). */
[[nodiscard]] SvgDocument renderBarChartSvg(const std::string &title,
                                            const std::vector<Bar> &bars,
                                            const ChartOptions &opts);

/**
 * Multi-series line chart over an implicit x-axis 1..n (Figure 1/5
 * style). y values are plotted on [0, max].
 */
[[nodiscard]] SvgDocument renderLineChartSvg(
    const std::string &title, const std::vector<Series> &series,
    const ChartOptions &opts);

} // namespace mica::viz

#endif // MICAPHASE_VIZ_FIGURE_CHARTS_HH
