#include "viz/charts.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mica::viz {

std::string
asciiBarChart(const std::string &title, const std::vector<Bar> &bars,
              int width, bool percent)
{
    std::ostringstream os;
    os << title << "\n";
    double max_value = 0.0;
    std::size_t label_width = 0;
    for (const Bar &bar : bars) {
        max_value = std::max(max_value, bar.value);
        label_width = std::max(label_width, bar.label.size());
    }
    if (max_value <= 0.0)
        max_value = 1.0;
    for (const Bar &bar : bars) {
        const int filled = static_cast<int>(
            std::lround(bar.value / max_value * width));
        os << "  ";
        os.width(static_cast<std::streamsize>(label_width));
        os << std::left << bar.label << " |";
        for (int i = 0; i < width; ++i)
            os << (i < filled ? '#' : ' ');
        os << "| ";
        if (percent) {
            os.precision(1);
            os << std::fixed << bar.value * 100.0 << "%";
            os.unsetf(std::ios::fixed);
            os.precision(6);
        } else {
            os << bar.value;
        }
        os << "\n";
    }
    return os.str();
}

std::string
asciiCurves(const std::string &title, const std::vector<Series> &series,
            int plot_width, int plot_height)
{
    std::ostringstream os;
    os << title << "\n";
    if (series.empty())
        return os.str();

    static const char glyphs[] = "*+ox#@%&";
    std::size_t n = 0;
    for (const Series &s : series)
        n = std::max(n, s.values.size());
    if (n == 0)
        return os.str();

    // Grid initialized to spaces; row 0 is the top (y == 1.0).
    std::vector<std::string> grid(
        static_cast<std::size_t>(plot_height),
        std::string(static_cast<std::size_t>(plot_width), ' '));

    for (std::size_t si = 0; si < series.size(); ++si) {
        const char glyph = glyphs[si % (sizeof(glyphs) - 1)];
        const auto &vals = series[si].values;
        for (int col = 0; col < plot_width; ++col) {
            // Map column to x index (log-ish emphasis on the left would be
            // nicer, but linear keeps the axis readable).
            const std::size_t idx = std::min<std::size_t>(
                vals.size() - 1,
                static_cast<std::size_t>(
                    static_cast<double>(col) / (plot_width - 1) *
                    static_cast<double>(n - 1)));
            if (idx >= vals.size())
                continue;
            const double y = std::clamp(vals[idx], 0.0, 1.0);
            const int row = plot_height - 1 -
                static_cast<int>(std::lround(y * (plot_height - 1)));
            grid[static_cast<std::size_t>(row)]
                [static_cast<std::size_t>(col)] = glyph;
        }
    }

    for (int row = 0; row < plot_height; ++row) {
        const double y =
            1.0 - static_cast<double>(row) / (plot_height - 1);
        os << "  ";
        os.precision(2);
        os << std::fixed << y;
        os.unsetf(std::ios::fixed);
        os << " |" << grid[static_cast<std::size_t>(row)] << "|\n";
    }
    os << "       +";
    for (int i = 0; i < plot_width; ++i)
        os << '-';
    os << "+  (x: 1.." << n << " clusters)\n";
    for (std::size_t si = 0; si < series.size(); ++si)
        os << "    " << glyphs[si % (sizeof(glyphs) - 1)] << " "
           << series[si].name << "\n";
    return os.str();
}

void
writeCsv(const std::string &path, const std::vector<std::string> &header,
         const std::vector<std::vector<std::string>> &rows)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("writeCsv: cannot open " + path);
    for (std::size_t i = 0; i < header.size(); ++i)
        out << (i ? "," : "") << header[i];
    out << "\n";
    for (const auto &row : rows) {
        for (std::size_t i = 0; i < row.size(); ++i)
            out << (i ? "," : "") << row[i];
        out << "\n";
    }
}

} // namespace mica::viz
