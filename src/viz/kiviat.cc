#include "viz/kiviat.hh"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <sstream>
#include <stdexcept>

namespace mica::viz {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/** Categorical palette for pie slices. */
const char *const kPalette[] = {
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
    "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
};
constexpr std::size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);

Point
polar(Point center, double radius, double angle)
{
    return {center.x + radius * std::cos(angle),
            center.y - radius * std::sin(angle)};
}

/** Draw one kiviat into doc at the given center/radius. */
void
drawKiviat(SvgDocument &doc, const KiviatPanel &panel,
           const std::vector<AxisStats> &axes, Point center, double radius,
           bool labels)
{
    const std::size_t n = axes.size();
    if (panel.values.size() != n)
        throw std::invalid_argument("drawKiviat: axis/value count mismatch");

    auto angle_of = [&](std::size_t i) {
        return std::numbers::pi / 2.0 +
               kTwoPi * static_cast<double>(i) / static_cast<double>(n);
    };

    // Rings: min (center), mean-sd, mean, mean+sd, max (outer). Ring radii
    // are per-axis since each axis has its own scale; we draw them as
    // polygons connecting per-axis radii.
    const auto ring = [&](double AxisStats::*field, const char *color) {
        std::vector<Point> pts;
        for (std::size_t i = 0; i < n; ++i) {
            const double v = axes[i].*field;
            pts.push_back(polar(center, radius * axisRadius(axes[i], v),
                                angle_of(i)));
        }
        doc.polygon(pts, "none", color, 0.0);
    };
    // Outer boundary.
    std::vector<Point> outer;
    for (std::size_t i = 0; i < n; ++i)
        outer.push_back(polar(center, radius, angle_of(i)));
    doc.polygon(outer, "none", "#999999", 0.0);
    ring(&AxisStats::mean_minus_sd, "#cccccc");
    ring(&AxisStats::mean, "#bbbbbb");
    ring(&AxisStats::mean_plus_sd, "#cccccc");

    // Axis spokes.
    for (std::size_t i = 0; i < n; ++i)
        doc.line(center, polar(center, radius, angle_of(i)), "#dddddd",
                 0.5);

    // The phase polygon.
    std::vector<Point> shape;
    for (std::size_t i = 0; i < n; ++i) {
        const double r = radius * axisRadius(axes[i], panel.values[i]);
        shape.push_back(polar(center, r, angle_of(i)));
    }
    doc.polygon(shape, "#555555", "#222222", 0.75);

    if (labels) {
        for (std::size_t i = 0; i < n; ++i) {
            const Point p = polar(center, radius + 6.0, angle_of(i));
            const std::string anchor =
                p.x < center.x - 2 ? "end"
                : p.x > center.x + 2 ? "start" : "middle";
            doc.text(p, axes[i].name, 6.0, anchor, "#666666");
        }
    }
}

/** Draw the benchmark share pie next to the kiviat. */
void
drawPie(SvgDocument &doc, const std::vector<PieSlice> &slices, Point center,
        double radius)
{
    double angle = std::numbers::pi / 2.0;
    for (std::size_t i = 0; i < slices.size(); ++i) {
        const double span = kTwoPi * std::clamp(slices[i].fraction, 0.0,
                                                1.0);
        // SVG arcs cannot express a full circle as one wedge; clamp just
        // below to keep single-benchmark clusters rendering correctly.
        const double a1 = angle + std::min(span, kTwoPi - 1e-4);
        doc.wedge(center, radius, angle, a1,
                  kPalette[i % kPaletteSize]);
        angle = a1;
    }
}

} // namespace

double
axisRadius(const AxisStats &axis, double value)
{
    const double span = axis.max - axis.min;
    if (span <= 0.0)
        return 0.5;
    return std::clamp((value - axis.min) / span, 0.0, 1.0);
}

SvgDocument
renderKiviatPanel(const KiviatPanel &panel,
                  const std::vector<AxisStats> &axes,
                  const KiviatOptions &opts)
{
    const double s = opts.panel_size;
    SvgDocument doc(2.0 * s, s + 20.0 * (panel.caption_lines.size() + 1));
    doc.text({6.0, 12.0}, panel.title, 10.0, "start", "#000000");
    drawKiviat(doc, panel, axes, {s * 0.5, s * 0.55}, s * 0.36,
               opts.draw_axis_labels);
    drawPie(doc, panel.slices, {s * 1.5, s * 0.45}, s * 0.28);
    double y = s + 8.0;
    for (const std::string &line : panel.caption_lines) {
        doc.text({6.0, y}, line, 8.0, "start", "#333333");
        y += 11.0;
    }
    return doc;
}

SvgDocument
renderKiviatGrid(const std::string &title,
                 const std::vector<KiviatPanel> &panels,
                 const std::vector<AxisStats> &axes,
                 const KiviatOptions &opts)
{
    const int cols = std::max(1, opts.columns);
    const double s = opts.panel_size;
    const double cell_w = 2.0 * s + 10.0;
    const double cell_h = s + 70.0;
    const int rows =
        static_cast<int>((panels.size() + cols - 1) / cols);
    SvgDocument doc(cell_w * cols + 20.0, cell_h * rows + 40.0);
    doc.text({10.0, 20.0}, title, 14.0, "start", "#000000");

    for (std::size_t p = 0; p < panels.size(); ++p) {
        const int r = static_cast<int>(p) / cols;
        const int c = static_cast<int>(p) % cols;
        const double ox = 10.0 + c * cell_w;
        const double oy = 30.0 + r * cell_h;
        doc.text({ox, oy + 10.0}, panels[p].title, 9.0, "start",
                 "#000000");
        drawKiviat(doc, panels[p], axes,
                   {ox + s * 0.5, oy + 20.0 + s * 0.45}, s * 0.34,
                   opts.draw_axis_labels);
        drawPie(doc, panels[p].slices, {ox + s * 1.5, oy + 20.0 + s * 0.4},
                s * 0.26);
        double y = oy + 20.0 + s * 0.85;
        for (std::size_t l = 0;
             l < panels[p].caption_lines.size() && l < 4; ++l) {
            doc.text({ox + s * 1.1, y}, panels[p].caption_lines[l], 7.0,
                     "start", "#333333");
            y += 9.0;
        }
    }
    return doc;
}

std::string
renderAsciiKiviat(const KiviatPanel &panel,
                  const std::vector<AxisStats> &axes, int bar_width)
{
    std::ostringstream os;
    os << panel.title << "\n";
    for (std::size_t i = 0; i < axes.size(); ++i) {
        const double r = axisRadius(axes[i], panel.values[i]);
        const int filled = static_cast<int>(std::lround(r * bar_width));
        os << "  ";
        os.width(24);
        os << std::left << axes[i].name;
        os << " |";
        for (int b = 0; b < bar_width; ++b)
            os << (b < filled ? '#' : ' ');
        os << "| ";
        os.precision(4);
        os << panel.values[i] << "\n";
    }
    for (const PieSlice &slice : panel.slices) {
        os << "    " << slice.label << ": ";
        os.precision(1);
        os << std::fixed << slice.fraction * 100.0 << "%\n";
        os.unsetf(std::ios::fixed);
        os.precision(6);
    }
    return os.str();
}

} // namespace mica::viz
