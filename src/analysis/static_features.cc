#include "analysis/static_features.hh"

#include <algorithm>
#include <sstream>

#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"

namespace mica::analysis {

namespace {

constexpr std::string_view kGroupNames[kNumOpGroups] = {
    "int_arith", "int_mul",  "int_div",  "int_logic", "int_shift",
    "int_cmp",   "fp_arith", "fp_mul",   "fp_div",    "fp_sqrt",
    "fp_cmp",    "fp_cvt",   "load",     "store",     "cond_branch",
    "jump",      "other",
};

} // namespace

std::vector<std::string>
StaticFeatures::featureNames()
{
    std::vector<std::string> names = {
        "static_instructions", "basic_blocks",     "cfg_edges",
        "natural_loops",       "max_loop_depth",   "avg_block_size",
        "branch_density",      "mem_density",      "fp_density",
    };
    for (std::string_view g : kGroupNames)
        names.push_back("static_mix_" + std::string(g));
    names.push_back("max_int_pressure");
    names.push_back("max_fp_pressure");
    return names;
}

std::vector<double>
StaticFeatures::toVector() const
{
    std::vector<double> v = {
        static_cast<double>(num_instructions),
        static_cast<double>(num_blocks),
        static_cast<double>(num_edges),
        static_cast<double>(num_loops),
        static_cast<double>(max_loop_depth),
        avg_block_size,
        branch_density,
        mem_density,
        fp_density,
    };
    v.insert(v.end(), group_mix.begin(), group_mix.end());
    v.push_back(static_cast<double>(max_int_pressure));
    v.push_back(static_cast<double>(max_fp_pressure));
    return v;
}

std::string
StaticFeatures::toString() const
{
    std::ostringstream os;
    os.precision(3);
    os << num_instructions << " instructions in " << num_blocks
       << " blocks (" << num_edges << " edges), " << num_loops
       << " loops (max depth " << max_loop_depth << ")\n"
       << "densities: branch " << branch_density << ", mem " << mem_density
       << ", fp " << fp_density << "; avg block " << avg_block_size
       << " instrs\n"
       << "register pressure: " << max_int_pressure << " int, "
       << max_fp_pressure << " fp\n"
       << "static mix:";
    for (std::size_t g = 0; g < kNumOpGroups; ++g)
        if (group_mix[g] > 0.0)
            os << " " << kGroupNames[g] << "=" << group_mix[g];
    os << "\n";
    return os.str();
}

StaticFeatures
staticFeatures(const isa::Program &program)
{
    StaticFeatures f;
    f.num_instructions = program.code.size();
    if (program.code.empty())
        return f;

    const Cfg cfg = buildCfg(program);
    f.num_blocks = cfg.blocks.size();
    f.num_edges = cfg.edges.size();
    f.avg_block_size = static_cast<double>(f.num_instructions) /
        static_cast<double>(f.num_blocks);

    std::size_t control = 0, mem = 0, fp = 0;
    for (const isa::Instruction &in : program.code) {
        const isa::OpcodeInfo &info = in.info();
        ++f.group_mix[static_cast<std::size_t>(info.group)];
        if (isa::isControl(in.op))
            ++control;
        if (isa::isLoad(in.op) || isa::isStore(in.op))
            ++mem;
        if (isa::isFpOp(in.op))
            ++fp;
    }
    const double n = static_cast<double>(f.num_instructions);
    for (double &g : f.group_mix)
        g /= n;
    f.branch_density = static_cast<double>(control) / n;
    f.mem_density = static_cast<double>(mem) / n;
    f.fp_density = static_cast<double>(fp) / n;

    const DominatorTree doms = computeDominators(cfg);
    const std::vector<NaturalLoop> loops = findNaturalLoops(cfg, doms);
    f.num_loops = loops.size();
    for (const NaturalLoop &loop : loops)
        f.max_loop_depth = std::max(f.max_loop_depth, loop.depth);

    const Liveness live = computeLiveness(cfg);
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        if (!cfg.reachable[b])
            continue;
        f.max_int_pressure =
            std::max(f.max_int_pressure, intRegCount(live.in[b]));
        f.max_fp_pressure =
            std::max(f.max_fp_pressure, fpRegCount(live.in[b]));
    }
    return f;
}

} // namespace mica::analysis
