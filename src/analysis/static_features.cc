#include "analysis/static_features.hh"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"
#include "analysis/mem_access.hh"
#include "analysis/value_range.hh"

namespace mica::analysis {

namespace {

constexpr std::string_view kGroupNames[kNumOpGroups] = {
    "int_arith", "int_mul",  "int_div",  "int_logic", "int_shift",
    "int_cmp",   "fp_arith", "fp_mul",   "fp_div",    "fp_sqrt",
    "fp_cmp",    "fp_cvt",   "load",     "store",     "cond_branch",
    "jump",      "other",
};

/** Dynamic mix-bin names, in midx::Mix* order. */
constexpr std::string_view kMixBinNames[kNumMixBins] = {
    "mem_read", "mem_write", "control",  "cond_branch", "call",
    "return",   "int_arith", "int_mul",  "int_div",     "int_logic",
    "int_shift","int_cmp",   "fp_arith", "fp_mul",      "fp_div",
    "fp_sqrt",  "fp_cmp",    "fp_cvt",   "move",        "nop_other",
};

constexpr std::string_view kStrideNames[kV2StrideClasses] = {
    "invariant", "unit", "small", "large", "irregular",
};

/** Loop-depth weight, capped so deep synthetic nests cannot overflow. */
double
depthWeight(std::size_t depth)
{
    return std::pow(kLoopWeight, static_cast<double>(std::min<std::size_t>(
        depth, 6)));
}

/**
 * Add an instruction to the weighted mix, mirroring the profiler's slot
 * logic exactly (mica/profiler.cc MicaProfiler::onInstruction): memory
 * first, then control with its subclass, then move, then the group.
 */
void
addToMix(const isa::Instruction &in, double w,
         std::array<double, kNumMixBins> &mix)
{
    using isa::OpGroup;
    enum : std::size_t
    {
        MemRead, MemWrite, Control, CondBranch, Call, Return, IntArith,
        IntMul, IntDiv, IntLogic, IntShift, IntCmp, FpArith, FpMul,
        FpDiv, FpSqrt, FpCmp, FpCvt, Move, NopOther,
    };
    const bool load = isa::isLoad(in.op);
    const bool store = isa::isStore(in.op);
    if (load)
        mix[MemRead] += w;
    if (store)
        mix[MemWrite] += w;
    if (isa::isControl(in.op)) {
        mix[Control] += w;
        if (isa::isCondBranch(in.op))
            mix[CondBranch] += w;
        else if (in.isCall())
            mix[Call] += w;
        else if (in.isReturn())
            mix[Return] += w;
    } else if (!load && !store) {
        if (in.isMove()) {
            mix[Move] += w;
            return;
        }
        switch (in.info().group) {
          case OpGroup::IntArith: mix[IntArith] += w; break;
          case OpGroup::IntMul: mix[IntMul] += w; break;
          case OpGroup::IntDiv: mix[IntDiv] += w; break;
          case OpGroup::IntLogic: mix[IntLogic] += w; break;
          case OpGroup::IntShift: mix[IntShift] += w; break;
          case OpGroup::IntCmp: mix[IntCmp] += w; break;
          case OpGroup::FpArith: mix[FpArith] += w; break;
          case OpGroup::FpMul: mix[FpMul] += w; break;
          case OpGroup::FpDiv: mix[FpDiv] += w; break;
          case OpGroup::FpSqrt: mix[FpSqrt] += w; break;
          case OpGroup::FpCmp: mix[FpCmp] += w; break;
          case OpGroup::FpCvt: mix[FpCvt] += w; break;
          default: mix[NopOther] += w; break;
        }
    }
}

} // namespace

std::vector<std::string>
StaticFeatures::featureNames()
{
    std::vector<std::string> names = {
        "static_instructions", "basic_blocks",     "cfg_edges",
        "natural_loops",       "max_loop_depth",   "avg_block_size",
        "branch_density",      "mem_density",      "fp_density",
    };
    for (std::string_view g : kGroupNames)
        names.push_back("static_mix_" + std::string(g));
    names.push_back("max_int_pressure");
    names.push_back("max_fp_pressure");
    return names;
}

std::vector<double>
StaticFeatures::toVector() const
{
    std::vector<double> v = {
        static_cast<double>(num_instructions),
        static_cast<double>(num_blocks),
        static_cast<double>(num_edges),
        static_cast<double>(num_loops),
        static_cast<double>(max_loop_depth),
        avg_block_size,
        branch_density,
        mem_density,
        fp_density,
    };
    v.insert(v.end(), group_mix.begin(), group_mix.end());
    v.push_back(static_cast<double>(max_int_pressure));
    v.push_back(static_cast<double>(max_fp_pressure));
    return v;
}

std::string
StaticFeatures::toString() const
{
    std::ostringstream os;
    os.precision(3);
    os << num_instructions << " instructions in " << num_blocks
       << " blocks (" << num_edges << " edges), " << num_loops
       << " loops (max depth " << max_loop_depth << ")\n"
       << "densities: branch " << branch_density << ", mem " << mem_density
       << ", fp " << fp_density << "; avg block " << avg_block_size
       << " instrs\n"
       << "register pressure: " << max_int_pressure << " int, "
       << max_fp_pressure << " fp\n"
       << "static mix:";
    for (std::size_t g = 0; g < kNumOpGroups; ++g)
        if (group_mix[g] > 0.0)
            os << " " << kGroupNames[g] << "=" << group_mix[g];
    os << "\n";
    return os.str();
}

StaticFeatures
staticFeatures(const isa::Program &program)
{
    StaticFeatures f;
    f.num_instructions = program.code.size();
    if (program.code.empty())
        return f;

    const Cfg cfg = buildCfg(program);
    f.num_blocks = cfg.blocks.size();
    f.num_edges = cfg.edges.size();
    f.avg_block_size = static_cast<double>(f.num_instructions) /
        static_cast<double>(f.num_blocks);

    std::size_t control = 0, mem = 0, fp = 0;
    for (const isa::Instruction &in : program.code) {
        const isa::OpcodeInfo &info = in.info();
        ++f.group_mix[static_cast<std::size_t>(info.group)];
        if (isa::isControl(in.op))
            ++control;
        if (isa::isLoad(in.op) || isa::isStore(in.op))
            ++mem;
        if (isa::isFpOp(in.op))
            ++fp;
    }
    const double n = static_cast<double>(f.num_instructions);
    for (double &g : f.group_mix)
        g /= n;
    f.branch_density = static_cast<double>(control) / n;
    f.mem_density = static_cast<double>(mem) / n;
    f.fp_density = static_cast<double>(fp) / n;

    const DominatorTree doms = computeDominators(cfg);
    const std::vector<NaturalLoop> loops = findNaturalLoops(cfg, doms);
    f.num_loops = loops.size();
    for (const NaturalLoop &loop : loops)
        f.max_loop_depth = std::max(f.max_loop_depth, loop.depth);

    const Liveness live = computeLiveness(cfg);
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        if (!cfg.reachable[b])
            continue;
        f.max_int_pressure =
            std::max(f.max_int_pressure, intRegCount(live.in[b]));
        f.max_fp_pressure =
            std::max(f.max_fp_pressure, fpRegCount(live.in[b]));
    }
    return f;
}

std::vector<std::string>
StaticFeaturesV2::featureNames()
{
    std::vector<std::string> names = StaticFeatures::featureNames();
    for (std::string_view bin : kMixBinNames)
        names.push_back("wmix_" + std::string(bin));
    for (std::string_view cls : kStrideNames)
        names.push_back("wload_stride_" + std::string(cls));
    for (std::string_view cls : kStrideNames)
        names.push_back("wstore_stride_" + std::string(cls));
    names.push_back("est_ilp");
    names.push_back("est_data_footprint");
    names.push_back("loop_carried_frac");
    return names;
}

std::vector<double>
StaticFeaturesV2::toVector() const
{
    std::vector<double> v = base.toVector();
    v.insert(v.end(), mix.begin(), mix.end());
    v.insert(v.end(), load_stride_mix.begin(), load_stride_mix.end());
    v.insert(v.end(), store_stride_mix.begin(), store_stride_mix.end());
    v.push_back(est_ilp);
    v.push_back(est_data_footprint);
    v.push_back(loop_carried_frac);
    return v;
}

StaticFeaturesV2
staticFeaturesV2(const isa::Program &program)
{
    StaticFeaturesV2 f;
    f.base = staticFeatures(program);
    if (program.code.empty())
        return f;

    const Cfg cfg = buildCfg(program);
    const DominatorTree doms = computeDominators(cfg);
    const std::vector<NaturalLoop> loops = findNaturalLoops(cfg, doms);
    const ValueRanges ranges = computeValueRanges(cfg);
    const MemAccessAnalysis mem = analyzeMemAccess(cfg, loops, ranges);
    f.analysis_transfers = ranges.transfers;

    // Innermost loop depth per block, for the execution-frequency weights.
    std::vector<std::size_t> block_depth(cfg.blocks.size(), 0);
    for (const NaturalLoop &loop : loops)
        for (std::size_t b : loop.blocks)
            block_depth[b] = std::max(block_depth[b], loop.depth);

    // Weighted instruction mix and intra-block dependence height. The
    // dependence walk tracks, per register slot, the chain depth of its
    // in-block producer; an instruction's depth is one past its deepest
    // input, and the block's critical path is the deepest instruction.
    double total_weight = 0.0;
    double weighted_instrs = 0.0;
    double weighted_critical = 0.0;
    std::array<double, 64> slot_depth{};
    for (std::size_t b : cfg.rpo) {
        const double w = depthWeight(block_depth[b]);
        slot_depth.fill(0.0);
        double critical = 0.0;
        for (std::size_t i = cfg.blocks[b].first; i <= cfg.blocks[b].last;
             ++i) {
            const isa::Instruction &in = program.code[i];
            addToMix(in, w, f.mix);
            total_weight += w;

            double depth = 0.0;
            for (const isa::RegOperand &reg : in.sources()) {
                if (reg.file == isa::RegOperand::File::Int &&
                    reg.index == isa::kRegZero)
                    continue;
                if (reg.index >= 32)
                    continue;
                const std::size_t slot =
                    (reg.file == isa::RegOperand::File::Fp ? 32u : 0u) +
                    reg.index;
                depth = std::max(depth, slot_depth[slot]);
            }
            depth += 1.0;
            critical = std::max(critical, depth);
            if (in.hasDest() && in.dest().index < 32) {
                const std::size_t slot =
                    (in.dest().file == isa::RegOperand::File::Fp ? 32u
                                                                 : 0u) +
                    in.dest().index;
                slot_depth[slot] = depth;
            }
        }
        weighted_instrs +=
            w * static_cast<double>(cfg.blocks[b].size());
        weighted_critical += w * critical;
    }
    if (total_weight > 0.0)
        for (double &bin : f.mix)
            bin /= total_weight;
    if (weighted_critical > 0.0)
        f.est_ilp = weighted_instrs / weighted_critical;

    // Weighted stride mixes and the footprint/dependence summaries.
    double load_weight = 0.0, store_weight = 0.0;
    const double footprint_cap =
        static_cast<double>(program.data.size()) +
        static_cast<double>(1ull << 20); // data segment + default stack
    double footprint = 0.0;
    for (const MemAccess &access : mem.accesses) {
        const double w = depthWeight(access.loop_depth);
        auto &mix = access.is_store ? f.store_stride_mix
                                    : f.load_stride_mix;
        mix[static_cast<std::size_t>(access.stride_class)] += w;
        (access.is_store ? store_weight : load_weight) += w;
        footprint += access.footprint == MemAccess::kUnknownFootprint
            ? footprint_cap
            : std::min(static_cast<double>(access.footprint),
                       footprint_cap);
    }
    if (load_weight > 0.0)
        for (double &cls : f.load_stride_mix)
            cls /= load_weight;
    if (store_weight > 0.0)
        for (double &cls : f.store_stride_mix)
            cls /= store_weight;
    f.est_data_footprint = std::min(footprint, footprint_cap);

    if (!mem.accesses.empty()) {
        std::unordered_set<std::size_t> carried;
        for (const LoopDependence &dep : mem.dependences) {
            if (dep.distance_known && dep.distance != 0) {
                carried.insert(dep.store_instr);
                carried.insert(dep.other_instr);
            }
        }
        f.loop_carried_frac = static_cast<double>(carried.size()) /
            static_cast<double>(mem.accesses.size());
    }
    return f;
}

} // namespace mica::analysis
