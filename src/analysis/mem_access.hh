/**
 * @file
 * Static memory-access analysis: per-access stride classification, a
 * loop-nest-aware footprint estimate, and loop-carried dependence
 * detection over the natural loops of the CFG.
 *
 * The dynamic characterization measures the *observed* stride distribution
 * of every workload (mica/metrics.hh indices 37..54); this analysis derives
 * its static counterpart from the program text alone. An access through a
 * basic or one-level-derived induction variable of its innermost loop gets
 * the induction step as its static stride; a base register never written
 * inside the loop is a loop-invariant (stride-0) access; everything else is
 * irregular. Strides bucket into the same unit/small/large classes the
 * paper uses for its stride CDFs, which is what makes the static and
 * dynamic distributions comparable in BENCH_static_analysis.json.
 *
 * Dependences are an estimate, not a proof: same-induction-variable pairs
 * with offsets a whole number of steps apart are reported with their exact
 * iteration distance; other pairs fall back to interval overlap of the
 * value-range addresses (may-dependence) or disjointness (independence).
 */

#ifndef MICAPHASE_ANALYSIS_MEM_ACCESS_HH
#define MICAPHASE_ANALYSIS_MEM_ACCESS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"
#include "analysis/value_range.hh"

namespace mica::analysis {

/** Static stride classification of one memory access. */
enum class StrideClass : std::uint8_t
{
    Invariant, ///< address loop-invariant (or constant outside loops)
    Unit,      ///< |stride| == access size: dense sequential
    Small,     ///< |stride| <= 64 bytes: within a typical cache line pair
    Large,     ///< provable stride beyond 64 bytes
    Irregular, ///< no provable per-iteration stride
};

constexpr std::size_t kNumStrideClasses = 5;

/** Printable name of a stride class ("unit", "irregular", ...). */
[[nodiscard]] const char *strideClassName(StrideClass cls);

/** One static load or store site of a reachable block. */
struct MemAccess
{
    std::size_t instr = 0;      ///< instruction index
    bool is_store = false;
    std::uint8_t mem_bytes = 0; ///< access width
    /** Innermost natural loop containing the access, or kNoLoop. */
    std::size_t loop = kNoLoop;
    std::size_t loop_depth = 0; ///< 0 outside loops
    StrideClass stride_class = StrideClass::Irregular;
    bool stride_known = false;
    std::int64_t stride = 0;    ///< bytes per iteration when stride_known
    /** Value-range interval of the effective address at the access. */
    Interval address;
    /** Upper bound on the byte span the site can touch (address interval
     *  width + access size), or kUnknownFootprint when unbounded. */
    std::uint64_t footprint = 0;

    static constexpr std::size_t kNoLoop = static_cast<std::size_t>(-1);
    static constexpr std::uint64_t kUnknownFootprint =
        static_cast<std::uint64_t>(-1);
};

/** One detected (or possible) dependence between accesses of a loop. */
struct LoopDependence
{
    std::size_t loop = 0;      ///< index into the natural-loop vector
    std::size_t store_instr = 0;
    std::size_t other_instr = 0; ///< the dependent load or store
    /** True when the iteration distance is provable. */
    bool distance_known = false;
    /** Iterations between the dependent accesses (0 = same iteration,
     *  loop-carried otherwise); valid when distance_known. */
    std::int64_t distance = 0;
};

/** Result of the static memory analysis of one program. */
struct MemAccessAnalysis
{
    /** All loads/stores of reachable blocks in program order. */
    std::vector<MemAccess> accesses;
    std::vector<LoopDependence> dependences;
    /** Access count per StrideClass (index by static_cast). */
    std::array<std::size_t, kNumStrideClasses> stride_histogram{};
    /** Number of dependences with distance_known && distance != 0. */
    std::size_t loop_carried = 0;
};

/**
 * Run the analysis. `loops` must come from findNaturalLoops over the same
 * CFG and `ranges` from computeValueRanges; both are borrowed.
 */
[[nodiscard]] MemAccessAnalysis
analyzeMemAccess(const Cfg &cfg, const std::vector<NaturalLoop> &loops,
                 const ValueRanges &ranges);

} // namespace mica::analysis

#endif // MICAPHASE_ANALYSIS_MEM_ACCESS_HH
