/**
 * @file
 * Interval value-range propagation over the integer register file, hosted
 * on the generic dataflow engine (analysis/engine.hh).
 *
 * Every reachable block gets, at entry and exit, one interval [lo, hi] per
 * integer register that *contains* every value the register can hold there
 * on any execution — the transfer functions fold constants with the exact
 * VM arithmetic (isa/semantics.hh) and over-approximate everything else, so
 * the result is sound: a fact proven from these intervals (e.g. "this
 * address lies wholly outside every segment") holds on the real machine.
 *
 * Two edge transfers sharpen and protect the fixpoint:
 *  - ReturnSite edges havoc the registers the callee may write (a memoized
 *    flood over the callee body); without this the call-bypass edge would
 *    smuggle pre-call values past the callee, which is unsound.
 *  - Taken/Fallthrough edges of conditional branches intersect the operand
 *    intervals with the branch condition, the classic refinement that makes
 *    loop bounds visible to the memory analysis.
 *
 * The interval lattice has enormous height, so the transfer applies a
 * widening operator after a small number of input changes per block; the
 * engine's termination bound then holds with the widened height.
 */

#ifndef MICAPHASE_ANALYSIS_VALUE_RANGE_HH
#define MICAPHASE_ANALYSIS_VALUE_RANGE_HH

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "analysis/cfg.hh"

namespace mica::analysis {

/** A closed signed-64-bit interval; empty when lo > hi. */
struct Interval
{
    std::int64_t lo = std::numeric_limits<std::int64_t>::max();
    std::int64_t hi = std::numeric_limits<std::int64_t>::min();

    bool operator==(const Interval &) const = default;

    [[nodiscard]] static constexpr Interval
    full()
    {
        return {std::numeric_limits<std::int64_t>::min(),
                std::numeric_limits<std::int64_t>::max()};
    }
    [[nodiscard]] static constexpr Interval empty() { return {}; }
    [[nodiscard]] static constexpr Interval
    constant(std::int64_t v)
    {
        return {v, v};
    }

    [[nodiscard]] bool isEmpty() const { return lo > hi; }
    [[nodiscard]] bool isConstant() const { return lo == hi; }
    [[nodiscard]] bool
    contains(std::int64_t v) const
    {
        return lo <= v && v <= hi;
    }
    /** Smallest interval containing both (empty is the identity). */
    [[nodiscard]] Interval hull(const Interval &other) const;
};

/** Interval evaluation of one integer ALU opcode (isa::isIntAlu), exact on
 *  singletons, over-approximate otherwise. Empty operands yield empty. */
[[nodiscard]] Interval intervalAlu(isa::Opcode op, Interval a, Interval b);

/** Per-block abstract state: one interval per integer register. */
struct RegIntervals
{
    std::array<Interval, 32> regs;

    bool operator==(const RegIntervals &) const = default;
};

/** Value-range fixpoint of one program. */
struct ValueRanges
{
    std::vector<RegIntervals> in;  ///< at block entry
    std::vector<RegIntervals> out; ///< at block exit
    std::size_t transfers = 0;     ///< engine diagnostics
    bool converged = true;

    /**
     * Interval of integer register `reg` just before instruction `instr`
     * executes, derived by replaying the block prefix from the entry state.
     * Full for instructions of unreachable blocks.
     */
    [[nodiscard]] Interval atUse(const Cfg &cfg, std::size_t instr,
                                 std::uint8_t reg) const;
};

[[nodiscard]] ValueRanges computeValueRanges(const Cfg &cfg);

} // namespace mica::analysis

#endif // MICAPHASE_ANALYSIS_VALUE_RANGE_HH
