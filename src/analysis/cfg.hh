/**
 * @file
 * Control-flow graph construction over a loaded SRISC program.
 *
 * The CFG is built at the binary level, directly from isa::Program: leaders
 * are detected from static branch/jump targets, instructions are grouped
 * into maximal basic blocks, and edges record how control can flow between
 * them. Calls are modelled with both a call edge (into the callee entry)
 * and a return-site edge (to the instruction after the call), the standard
 * flat-binary summarization; returns and other indirect jumps have no
 * static successors beyond the address-taken candidates recovered from the
 * data segment (label tables emitted for jalr dispatch).
 */

#ifndef MICAPHASE_ANALYSIS_CFG_HH
#define MICAPHASE_ANALYSIS_CFG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace mica::analysis {

/** How an edge leaves its source block. */
enum class EdgeKind : std::uint8_t
{
    Fallthrough, ///< non-control flow into the next leader, or branch-not-taken
    Taken,       ///< conditional branch taken
    Jump,        ///< unconditional jal x0
    Call,        ///< jal/jalr with a live link register, into the callee
    ReturnSite,  ///< from a call block to the instruction after the call
    Indirect,    ///< jalr to an address-taken candidate block
};

/** One CFG edge (block ids are indices into Cfg::blocks). */
struct Edge
{
    std::size_t from = 0;
    std::size_t to = 0;
    EdgeKind kind = EdgeKind::Fallthrough;
};

/** A maximal straight-line instruction sequence. */
struct BasicBlock
{
    std::size_t first = 0; ///< index of the first instruction (inclusive)
    std::size_t last = 0;  ///< index of the last instruction (inclusive)
    std::vector<std::size_t> succs; ///< successor block ids (deduplicated)
    std::vector<std::size_t> preds; ///< predecessor block ids
    bool ends_in_return = false;   ///< terminator is jalr x0, ra
    bool ends_in_indirect = false; ///< terminator is a non-return jalr
    bool falls_off_end = false;    ///< control can run past the last instr

    [[nodiscard]] std::size_t size() const { return last - first + 1; }
};

/** The control-flow graph of one program. */
struct Cfg
{
    const isa::Program *program = nullptr;
    std::vector<BasicBlock> blocks;        ///< in program order
    std::vector<Edge> edges;               ///< all edges with their kind
    std::vector<std::size_t> block_of_instr; ///< instr index -> block id
    /**
     * Blocks whose address appears as an aligned 64-bit word in the data
     * segment (candidate jalr dispatch targets).
     */
    std::vector<std::size_t> address_taken;
    /** Reachable blocks in reverse postorder (entry first). */
    std::vector<std::size_t> rpo;
    /** reachable[b]: block b is reachable from the entry block. */
    std::vector<bool> reachable;

    /** Block containing the entry point (always block 0 for nonempty code). */
    [[nodiscard]] std::size_t entryBlock() const { return 0; }

    /** pc of the first instruction of block b. */
    [[nodiscard]] std::uint64_t blockPc(std::size_t b) const
    {
        return program->pcOf(blocks[b].first);
    }

    /** Multi-line textual dump ("block 3 [0x10020..0x10038] -> 4, 7"). */
    [[nodiscard]] std::string toString() const;
};

/**
 * Build the CFG of a program. An empty program yields an empty CFG.
 * Branch/jump targets that fall outside the code segment (a verifier
 * error) simply contribute no edge, so construction never fails.
 *
 * The Cfg borrows the program; it must outlive the returned graph
 * (hence the deleted rvalue overload).
 */
[[nodiscard]] Cfg buildCfg(const isa::Program &program);
Cfg buildCfg(isa::Program &&) = delete;

} // namespace mica::analysis

#endif // MICAPHASE_ANALYSIS_CFG_HH
