/**
 * @file
 * Static program verifier / linter for SRISC programs.
 *
 * verify() runs the CFG + dataflow analyses over a Program and returns a
 * Report of severity-tagged diagnostics, each carrying the pc and the
 * disassembly of the offending instruction. The workload generators are
 * required to produce programs with zero Error-level diagnostics; the
 * characterization pipeline enforces that before any program reaches the
 * VM (see core/characterize.cc).
 *
 * The diagnostic catalog is documented in docs/ANALYSIS.md.
 */

#ifndef MICAPHASE_ANALYSIS_VERIFIER_HH
#define MICAPHASE_ANALYSIS_VERIFIER_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "isa/program.hh"

namespace mica::analysis {

/** Diagnostic severity. Error means the program must not be executed. */
enum class Severity : std::uint8_t
{
    Warning, ///< likely generator bug; the VM still executes it soundly
    Error,   ///< malformed program (traps, unencodable, or misleading)
};

/** Diagnostic classes the verifier can emit. */
enum class Check : std::uint8_t
{
    EmptyProgram,          ///< no instructions at all
    BadRegisterIndex,      ///< operand register index >= 32
    ImmediateOutOfRange,   ///< imm does not fit kImmBits
    ShiftAmountOutOfRange, ///< immediate shift amount outside [0, 63]
    BranchTargetOutOfRange,///< branch/jump target outside code or unaligned
    CodeSegmentAccess,     ///< resolvable load/store hits the code segment
    MemAccessOutOfSegment, ///< resolvable address outside data and stack
    MisalignedAccess,      ///< resolvable address not size-aligned
    UseBeforeDef,          ///< read that no register definition reaches
    UnreachableBlock,      ///< basic block unreachable from the entry
    ReturnWithoutLink,     ///< ret reachable with the link register unset
    FallsOffEnd,           ///< control can run past the last instruction
    InfiniteLoop,          ///< natural loop with no exit edge
    MaybeUseBeforeDef,     ///< read defined on some paths but not all
    DeadStore,             ///< register write overwritten unread in-block
    DiscardedValue,        ///< value-producing instruction targets x0
    ConstantBranch,        ///< branch condition provably always/never taken
    RangeProvenOutOfSegment, ///< address interval wholly outside segments
    RangeProvenMisaligned, ///< address interval proves misalignment
    EmptyInfiniteLoop,     ///< exitless loop with no observable effect
};

/** Number of diagnostic classes (for histogram arrays). */
constexpr std::size_t kNumChecks =
    static_cast<std::size_t>(Check::EmptyInfiniteLoop) + 1;

/** Printable names ("use-before-def", "error"). */
[[nodiscard]] std::string_view checkName(Check check);
[[nodiscard]] std::string_view severityName(Severity severity);

/** One finding. */
struct Diagnostic
{
    Check check = Check::EmptyProgram;
    Severity severity = Severity::Error;
    std::size_t instr_index = 0; ///< offending instruction (when applicable)
    std::uint64_t pc = 0;        ///< its pc (block-start pc for block checks)
    /**
     * Basic-block id of the offending instruction. Block ids are stable:
     * blocks are numbered in program order by the CFG builder, so the same
     * program always yields the same ids (machine-readable consumers like
     * `mica_lint --json` key on them).
     */
    std::size_t block = 0;
    /** Instruction offset within the block (0 = block leader). */
    std::size_t block_offset = 0;
    std::string message;         ///< human-readable detail with disassembly

    /** "error: branch-target-out-of-range @0x10008 [bb2+1]: ..." */
    [[nodiscard]] std::string toString() const;
};

/** Verifier knobs. */
struct Options
{
    /**
     * Accept programs designed to run forever under an external
     * instruction budget (every generated workload: the phase scheduler
     * loops its schedule without a Halt). Suppresses InfiniteLoop.
     */
    bool allow_nonterminating = false;
    /** Bytes below stack_top treated as valid stack. */
    std::uint64_t stack_reserve = 1ull << 20;
};

/** Verification result. */
struct Report
{
    std::vector<Diagnostic> diagnostics;

    [[nodiscard]] std::size_t errorCount() const;
    [[nodiscard]] std::size_t warningCount() const;
    /** True when no Error-level diagnostic was produced. */
    [[nodiscard]] bool ok() const { return errorCount() == 0; }
    /** True when a diagnostic of the given class was produced. */
    [[nodiscard]] bool has(Check check) const;
    /** All findings, one per line. */
    [[nodiscard]] std::string toString() const;
};

/** Statically verify a program. Never throws; findings go to the report. */
[[nodiscard]] Report verify(const isa::Program &program,
                            const Options &options = {});

} // namespace mica::analysis

#endif // MICAPHASE_ANALYSIS_VERIFIER_HH
