#include "analysis/reaching_defs.hh"

#include <array>

#include "analysis/engine.hh"
#include "isa/opcode.hh"

namespace mica::analysis {

namespace {

using isa::Instruction;
using isa::RegOperand;

/** Dense bitvector with the word count fixed at construction. */
using BitVec = std::vector<std::uint64_t>;

bool
testBit(const BitVec &v, std::size_t bit)
{
    return (v[bit / 64] >> (bit % 64)) & 1;
}

void
setBit(BitVec &v, std::size_t bit)
{
    v[bit / 64] |= std::uint64_t{1} << (bit % 64);
}

/** Register slot 0..63 (x-file then f-file) of an operand. */
std::size_t
regSlot(const RegOperand &reg)
{
    return (reg.file == RegOperand::File::Fp ? 32u : 0u) + reg.index;
}

struct ReachingProblem
{
    using Value = BitVec;
    static constexpr Direction kDirection = Direction::Forward;

    const std::vector<BitVec> *gen = nullptr;
    const std::vector<BitVec> *kill = nullptr;
    BitVec boundary_defs;
    std::size_t words = 0;
    std::size_t num_defs = 0;

    [[nodiscard]] Value identity() const { return BitVec(words, 0); }
    [[nodiscard]] Value boundary() const { return boundary_defs; }
    void
    join(Value &into, const Value &from, std::size_t) const
    {
        for (std::size_t w = 0; w < words; ++w)
            into[w] |= from[w];
    }
    [[nodiscard]] Value
    transfer(const Cfg &, std::size_t block, const Value &in) const
    {
        Value out = in;
        for (std::size_t w = 0; w < words; ++w)
            out[w] = (out[w] & ~(*kill)[block][w]) | (*gen)[block][w];
        return out;
    }
    [[nodiscard]] std::size_t latticeHeight() const { return num_defs; }
};

} // namespace

bool
ReachingDefs::reachesBlock(std::size_t d, std::size_t b) const
{
    return testBit(in[b], d);
}

ReachingDefs
computeReachingDefs(const Cfg &cfg)
{
    ReachingDefs result;
    if (cfg.blocks.empty())
        return result;
    const isa::Program &program = *cfg.program;

    // Definition sites: VM-reset pseudo-defs first (x0, sp), then every
    // register write in program order. defs_of_slot groups them per
    // register for kill computation.
    std::array<std::vector<std::size_t>, 64> defs_of_slot;
    const auto add_def = [&](std::size_t instr, RegOperand reg) {
        defs_of_slot[regSlot(reg)].push_back(result.defs.size());
        result.defs.push_back({instr, reg});
    };
    add_def(DefSite::kVmReset, {RegOperand::File::Int, isa::kRegZero});
    add_def(DefSite::kVmReset, {RegOperand::File::Int, isa::kRegSp});
    for (std::size_t i = 0; i < program.code.size(); ++i) {
        const Instruction &in = program.code[i];
        if (in.hasDest())
            add_def(i, in.dest());
    }

    const std::size_t num_defs = result.defs.size();
    const std::size_t words = (num_defs + 63) / 64;
    const std::size_t num_blocks = cfg.blocks.size();

    // Per-block gen (last in-block def per register survives) and kill
    // (every def of a register the block writes, except the surviving one).
    std::vector<BitVec> gen(num_blocks, BitVec(words, 0));
    std::vector<BitVec> kill(num_blocks, BitVec(words, 0));
    // def site index of instruction i, parallel to program order.
    std::vector<std::size_t> def_at(program.code.size(), DefSite::kVmReset);
    for (std::size_t d = 2; d < num_defs; ++d)
        def_at[result.defs[d].instr] = d;
    {
        std::array<std::size_t, 64> current{};
        for (std::size_t b = 0; b < num_blocks; ++b) {
            current.fill(DefSite::kVmReset);
            for (std::size_t i = cfg.blocks[b].first;
                 i <= cfg.blocks[b].last; ++i) {
                const Instruction &in = program.code[i];
                if (in.hasDest())
                    current[regSlot(in.dest())] = def_at[i];
            }
            for (std::size_t slot = 0; slot < 64; ++slot) {
                const std::size_t surviving = current[slot];
                if (surviving == DefSite::kVmReset)
                    continue;
                setBit(gen[b], surviving);
                for (std::size_t d : defs_of_slot[slot])
                    if (d != surviving)
                        setBit(kill[b], d);
            }
        }
    }

    ReachingProblem problem;
    problem.gen = &gen;
    problem.kill = &kill;
    problem.words = words;
    problem.num_defs = num_defs;
    problem.boundary_defs.assign(words, 0);
    setBit(problem.boundary_defs, 0); // x0 reset
    setBit(problem.boundary_defs, 1); // sp reset

    auto fixpoint = solveDataflow(cfg, problem);
    result.transfers = fixpoint.transfers;
    result.in = std::move(fixpoint.in);
    for (std::size_t b = 0; b < num_blocks; ++b)
        if (!cfg.reachable[b])
            result.in[b].assign(words, 0);

    // Use-def chains: walk each reachable block tracking, per register,
    // the in-block defining site (or the block-entry bitvector fallback).
    result.used.assign(num_defs, false);
    std::array<std::size_t, 64> local_def{};
    for (std::size_t b : cfg.rpo) {
        local_def.fill(DefSite::kVmReset);
        for (std::size_t i = cfg.blocks[b].first; i <= cfg.blocks[b].last;
             ++i) {
            const Instruction &in = program.code[i];
            for (const RegOperand &reg : in.sources()) {
                if (reg.file == RegOperand::File::Int &&
                    reg.index == isa::kRegZero)
                    continue; // hard-wired zero: no producer
                if (reg.index >= isa::kNumIntRegs)
                    continue; // malformed operand (verifier error)
                UseSite use;
                use.instr = i;
                use.reg = reg;
                const std::size_t slot = regSlot(reg);
                if (local_def[slot] != DefSite::kVmReset) {
                    use.defs.push_back(local_def[slot]);
                } else {
                    for (std::size_t d : defs_of_slot[slot])
                        if (testBit(result.in[b], d))
                            use.defs.push_back(d);
                }
                for (std::size_t d : use.defs)
                    result.used[d] = true;
                result.uses.push_back(std::move(use));
            }
            if (in.hasDest())
                local_def[regSlot(in.dest())] = def_at[i];
        }
    }
    return result;
}

} // namespace mica::analysis
