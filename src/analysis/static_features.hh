/**
 * @file
 * Static, microarchitecture-independent program features.
 *
 * Where the MICA profiler measures a program's *dynamic* instruction
 * stream, these features summarize the program *text* via the CFG and
 * liveness: static opcode-class mix, control-flow structure (blocks,
 * branch density, loop count and nesting), and a register-pressure
 * estimate. They complement the 69 dynamic characteristics with a
 * signature that needs no simulation, in the spirit of static loop-based
 * workload analysis (see PAPERS.md).
 */

#ifndef MICAPHASE_ANALYSIS_STATIC_FEATURES_HH
#define MICAPHASE_ANALYSIS_STATIC_FEATURES_HH

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "isa/opcode.hh"
#include "isa/program.hh"

namespace mica::analysis {

/** Number of OpGroup values (isa::OpGroup::Other is the last). */
constexpr std::size_t kNumOpGroups =
    static_cast<std::size_t>(isa::OpGroup::Other) + 1;

/** Static signature of one program. */
struct StaticFeatures
{
    std::size_t num_instructions = 0;
    std::size_t num_blocks = 0;      ///< basic blocks
    std::size_t num_edges = 0;       ///< CFG edges
    std::size_t num_loops = 0;       ///< natural loops
    std::size_t max_loop_depth = 0;  ///< deepest nesting (0 = no loops)
    double avg_block_size = 0.0;     ///< instructions per basic block
    double branch_density = 0.0;     ///< control transfers / instruction
    double mem_density = 0.0;        ///< loads+stores / instruction
    double fp_density = 0.0;         ///< fp operations / instruction
    /** Fraction of static instructions per operation group. */
    std::array<double, kNumOpGroups> group_mix{};
    /** Max integer / fp registers simultaneously live at a block entry. */
    int max_int_pressure = 0;
    int max_fp_pressure = 0;

    /** Names for toVector(), in order (for CSV headers). */
    [[nodiscard]] static std::vector<std::string> featureNames();
    /** Flattened feature vector matching featureNames(). */
    [[nodiscard]] std::vector<double> toVector() const;
    /** Human-readable multi-line summary. */
    [[nodiscard]] std::string toString() const;
};

/** Extract the static signature of a program. */
[[nodiscard]] StaticFeatures staticFeatures(const isa::Program &program);

/** Number of dynamic instruction-mix bins (mica/metrics.hh midx::Mix*). */
constexpr std::size_t kNumMixBins = 20;

/** Number of static stride classes (mem_access.hh StrideClass). */
constexpr std::size_t kV2StrideClasses = 5;

/**
 * Static counterparts of the dynamic MICA features, for the
 * static-vs-dynamic validation in BENCH_static_analysis.json.
 *
 * Three groups mirror the dynamic characterization directly:
 *  - `mix`: the 20 instruction-mix bins classified with the *same* slot
 *    logic as the profiler (mica/profiler.cc), so the two distributions
 *    are bin-for-bin comparable;
 *  - `load_stride_mix` / `store_stride_mix`: distribution of static
 *    memory accesses over the stride classes of the static memory
 *    analysis, the counterpart of the dynamic stride CDFs;
 *  - `est_ilp`: instructions per dependence-chain step along the
 *    intra-block register use-def critical path, the static analogue of
 *    the windowed dynamic ILP metrics.
 *
 * All three are loop-nest weighted: an instruction at loop depth d counts
 * kLoopWeight^d times, approximating its dynamic execution frequency from
 * structure alone (a block inside two nested loops runs roughly
 * iterations^2 times as often as straight-line code).
 */
struct StaticFeaturesV2
{
    StaticFeatures base;

    /** Loop-weighted static instruction mix over the dynamic mix bins. */
    std::array<double, kNumMixBins> mix{};
    /** Loop-weighted static load/store distribution per stride class. */
    std::array<double, kV2StrideClasses> load_stride_mix{};
    std::array<double, kV2StrideClasses> store_stride_mix{};
    /** Estimated ILP from the intra-block dependence height (>= 1 for
     *  nonempty programs). */
    double est_ilp = 0.0;
    /** Upper-bound estimate of the touched data bytes (finite access
     *  footprints summed, capped at the addressable segments). */
    double est_data_footprint = 0.0;
    /** Fraction of static accesses involved in a provable loop-carried
     *  dependence. */
    double loop_carried_frac = 0.0;
    /** Transfer applications the underlying fixpoints needed (engine
     *  cost diagnostics for the bench table). */
    std::size_t analysis_transfers = 0;

    /** Names for toVector(), in order. */
    [[nodiscard]] static std::vector<std::string> featureNames();
    /** Flattened vector matching featureNames() (base features first). */
    [[nodiscard]] std::vector<double> toVector() const;
};

/** Per-depth execution-frequency weight base used by StaticFeaturesV2. */
constexpr double kLoopWeight = 8.0;

/** Extract the v2 static signature (runs the full analysis stack). */
[[nodiscard]] StaticFeaturesV2
staticFeaturesV2(const isa::Program &program);

} // namespace mica::analysis

#endif // MICAPHASE_ANALYSIS_STATIC_FEATURES_HH
