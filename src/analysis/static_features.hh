/**
 * @file
 * Static, microarchitecture-independent program features.
 *
 * Where the MICA profiler measures a program's *dynamic* instruction
 * stream, these features summarize the program *text* via the CFG and
 * liveness: static opcode-class mix, control-flow structure (blocks,
 * branch density, loop count and nesting), and a register-pressure
 * estimate. They complement the 69 dynamic characteristics with a
 * signature that needs no simulation, in the spirit of static loop-based
 * workload analysis (see PAPERS.md).
 */

#ifndef MICAPHASE_ANALYSIS_STATIC_FEATURES_HH
#define MICAPHASE_ANALYSIS_STATIC_FEATURES_HH

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "isa/opcode.hh"
#include "isa/program.hh"

namespace mica::analysis {

/** Number of OpGroup values (isa::OpGroup::Other is the last). */
constexpr std::size_t kNumOpGroups =
    static_cast<std::size_t>(isa::OpGroup::Other) + 1;

/** Static signature of one program. */
struct StaticFeatures
{
    std::size_t num_instructions = 0;
    std::size_t num_blocks = 0;      ///< basic blocks
    std::size_t num_edges = 0;       ///< CFG edges
    std::size_t num_loops = 0;       ///< natural loops
    std::size_t max_loop_depth = 0;  ///< deepest nesting (0 = no loops)
    double avg_block_size = 0.0;     ///< instructions per basic block
    double branch_density = 0.0;     ///< control transfers / instruction
    double mem_density = 0.0;        ///< loads+stores / instruction
    double fp_density = 0.0;         ///< fp operations / instruction
    /** Fraction of static instructions per operation group. */
    std::array<double, kNumOpGroups> group_mix{};
    /** Max integer / fp registers simultaneously live at a block entry. */
    int max_int_pressure = 0;
    int max_fp_pressure = 0;

    /** Names for toVector(), in order (for CSV headers). */
    [[nodiscard]] static std::vector<std::string> featureNames();
    /** Flattened feature vector matching featureNames(). */
    [[nodiscard]] std::vector<double> toVector() const;
    /** Human-readable multi-line summary. */
    [[nodiscard]] std::string toString() const;
};

/** Extract the static signature of a program. */
[[nodiscard]] StaticFeatures staticFeatures(const isa::Program &program);

} // namespace mica::analysis

#endif // MICAPHASE_ANALYSIS_STATIC_FEATURES_HH
