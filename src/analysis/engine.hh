/**
 * @file
 * Generic monotone-framework dataflow engine over the SRISC CFG.
 *
 * A dataflow problem is a type providing
 *
 *   using Value = ...;                    // one lattice element per block
 *   static constexpr Direction kDirection;
 *   Value identity() const;               // the join identity (bottom for
 *                                         // may-analyses, top for musts);
 *                                         // also the resting value of
 *                                         // unreachable blocks
 *   Value boundary() const;               // facts holding at the program
 *                                         // boundary (entry for forward,
 *                                         // exit for backward); joined into
 *                                         // the entry/exit block's input
 *   void join(Value &into, const Value &from, std::size_t block);
 *   Value transfer(const Cfg &, std::size_t block, const Value &in);
 *   std::size_t latticeHeight() const;    // max strict ascents of one
 *                                         // block's Value
 *
 * and optionally
 *
 *   void transferEdge(const Cfg &, const Edge &, Value &) const;
 *
 * which rewrites the value flowing along one specific edge before it is
 * joined (used for call-return havoc and branch-condition refinement in the
 * value-range analysis).
 *
 * The solver is a deterministic round-robin worklist: blocks are visited in
 * reverse postorder (postorder for backward problems), only pending blocks
 * are re-evaluated, and a block's transfer runs only when its joined input
 * actually changed. With monotone transfers over a lattice of height H this
 * gives the classic termination bound of at most H + 1 transfer
 * applications per reachable block; the solver enforces it with a hard cap
 * and reports `converged = false` if a (buggy, non-monotone) problem
 * exceeds it, rather than looping forever. Results are a pure function of
 * the CFG — no iteration-order or thread-count dependence.
 */

#ifndef MICAPHASE_ANALYSIS_ENGINE_HH
#define MICAPHASE_ANALYSIS_ENGINE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "analysis/cfg.hh"

namespace mica::analysis {

/** Direction a dataflow problem propagates facts in. */
enum class Direction : std::uint8_t
{
    Forward,  ///< along CFG edges, entry to exit
    Backward, ///< against CFG edges, exit to entry
};

/** Fixpoint of one dataflow problem. */
template <typename Problem>
struct DataflowResult
{
    using Value = typename Problem::Value;

    std::vector<Value> in;  ///< facts at block entry
    std::vector<Value> out; ///< facts at block exit
    /** Number of transfer-function applications until the fixpoint. */
    std::size_t transfers = 0;
    /** False only if the hard iteration cap fired (non-monotone problem). */
    bool converged = true;
};

namespace detail {

template <typename Problem>
concept HasEdgeTransfer = requires(const Problem &p, const Cfg &cfg,
                                   const Edge &e,
                                   typename Problem::Value &v) {
    p.transferEdge(cfg, e, v);
};

} // namespace detail

/**
 * Solve a dataflow problem to its least fixpoint. Unreachable blocks keep
 * the identity value in both `in` and `out`. The problem object may carry
 * mutable state (e.g. widening counters); it is taken by reference.
 */
template <typename Problem>
DataflowResult<Problem>
solveDataflow(const Cfg &cfg, Problem &problem)
{
    constexpr bool forward = Problem::kDirection == Direction::Forward;
    using Value = typename Problem::Value;

    DataflowResult<Problem> result;
    const std::size_t n = cfg.blocks.size();
    result.in.assign(n, problem.identity());
    result.out.assign(n, problem.identity());
    if (n == 0)
        return result;

    // Visit order: RPO for forward problems, postorder for backward.
    std::vector<std::size_t> order = cfg.rpo;
    if (!forward)
        std::reverse(order.begin(), order.end());

    // Incoming edges per block in flow direction, for edge transfers.
    // (source out-value, edge) pairs; deterministic: cfg.edges order.
    struct Incoming
    {
        std::size_t source;
        const Edge *edge;
    };
    std::vector<std::vector<Incoming>> incoming(n);
    for (const Edge &edge : cfg.edges) {
        const std::size_t dst = forward ? edge.to : edge.from;
        const std::size_t src = forward ? edge.from : edge.to;
        incoming[dst].push_back({src, &edge});
    }

    // The block whose input receives the boundary value: the entry block
    // forward; backward, every block without successors (returns, halt,
    // unresolved indirect jumps all end the program path).
    const auto takes_boundary = [&](std::size_t b) {
        if (forward)
            return b == cfg.entryBlock();
        return cfg.blocks[b].succs.empty();
    };

    std::vector<char> pending(n, 0);
    std::vector<char> seen(n, 0);
    for (std::size_t b : order)
        pending[b] = 1;

    // Hard termination cap: H + 1 transfers per reachable block, doubled
    // for slack (the bound is exact only for strictly monotone problems).
    const std::size_t cap =
        2 * order.size() * (problem.latticeHeight() + 1) + 16;

    bool any_pending = true;
    while (any_pending) {
        any_pending = false;
        for (std::size_t b : order) {
            if (!pending[b])
                continue;
            pending[b] = 0;

            Value input = problem.identity();
            if (takes_boundary(b))
                problem.join(input, problem.boundary(), b);
            for (const Incoming &inc : incoming[b]) {
                // The out-value of an unreachable source is the identity;
                // joining it is a no-op, so no reachability filter needed.
                const Value *source_value =
                    forward ? &result.out[inc.source]
                            : &result.in[inc.source];
                if constexpr (detail::HasEdgeTransfer<Problem>) {
                    Value along = *source_value;
                    problem.transferEdge(cfg, *inc.edge, along);
                    problem.join(input, along, b);
                } else {
                    problem.join(input, *source_value, b);
                }
            }

            Value &stored_input = forward ? result.in[b] : result.out[b];
            if (seen[b] && input == stored_input)
                continue; // same input, same transfer: nothing to do
            stored_input = input;

            Value output = problem.transfer(cfg, b, stored_input);
            ++result.transfers;
            Value &stored_output = forward ? result.out[b] : result.in[b];
            const bool changed = !seen[b] || !(output == stored_output);
            seen[b] = 1;
            if (!changed)
                continue;
            stored_output = std::move(output);
            const std::vector<std::size_t> &next =
                forward ? cfg.blocks[b].succs : cfg.blocks[b].preds;
            for (std::size_t s : next) {
                pending[s] = 1;
                any_pending = true;
            }
            if (result.transfers >= cap) {
                result.converged = false;
                return result;
            }
        }
    }
    return result;
}

} // namespace mica::analysis

#endif // MICAPHASE_ANALYSIS_ENGINE_HH
