/**
 * @file
 * Reaching definitions with use-def chains, hosted on the generic dataflow
 * engine (analysis/engine.hh).
 *
 * A definition site is one instruction that writes a register. The forward
 * gen/kill bitvector fixpoint computes, per basic block, which definition
 * sites can reach the block entry on some path; a second in-block pass
 * derives the use-def chain of every register use: the exact set of
 * definitions whose value the use may observe. Two synthetic "VM reset"
 * definitions model the registers the machine defines at boot (x0 and the
 * stack pointer), so an empty chain means *no* definition — not even the
 * reset — reaches the use: a proven use-before-def.
 *
 * The verifier consumes the chains for use-before-def (empty chain) and
 * dead-store detection (a definition no use observes); the static memory
 * analysis uses them to find single-definition induction steps.
 */

#ifndef MICAPHASE_ANALYSIS_REACHING_DEFS_HH
#define MICAPHASE_ANALYSIS_REACHING_DEFS_HH

#include <cstdint>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"

namespace mica::analysis {

/** One definition site. */
struct DefSite
{
    /** Defining instruction index, or kVmReset for the boot pseudo-defs. */
    std::size_t instr = 0;
    isa::RegOperand reg; ///< the register written

    static constexpr std::size_t kVmReset = static_cast<std::size_t>(-1);
};

/** One register use and the definitions that may reach it. */
struct UseSite
{
    std::size_t instr = 0;   ///< reading instruction index
    isa::RegOperand reg;     ///< the register read
    /** Indices into ReachingDefs::defs of the reaching definitions,
     *  ascending. Empty = proven use-before-def. */
    std::vector<std::size_t> defs;
};

/** Reaching-definitions fixpoint plus derived chains. */
struct ReachingDefs
{
    /** All definition sites: the VM-reset pseudo-defs first, then every
     *  register-writing instruction in program order. */
    std::vector<DefSite> defs;
    /** All register uses of reachable blocks in program order (x0 reads
     *  excluded — the hard-wired zero has no meaningful producer). */
    std::vector<UseSite> uses;
    /** defs-reaching-block-entry bitvector per block, one bit per defs[i];
     *  unreachable blocks are all-zero. */
    std::vector<std::vector<std::uint64_t>> in;
    /** used[d]: some reachable use observes defs[d]. */
    std::vector<bool> used;
    /** Transfer applications the fixpoint needed (engine diagnostics). */
    std::size_t transfers = 0;

    /** True when bit d is set in the block-entry vector of block b. */
    [[nodiscard]] bool reachesBlock(std::size_t d, std::size_t b) const;
};

[[nodiscard]] ReachingDefs computeReachingDefs(const Cfg &cfg);

} // namespace mica::analysis

#endif // MICAPHASE_ANALYSIS_REACHING_DEFS_HH
