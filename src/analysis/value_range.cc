#include "analysis/value_range.hh"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "analysis/dataflow.hh"
#include "analysis/engine.hh"
#include "isa/semantics.hh"

namespace mica::analysis {

namespace {

using isa::Instruction;
using isa::Opcode;

constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

/** [lo, hi] if the 128-bit bounds fit in int64, else the full interval
 *  (wraparound could split the range, so full is the sound fallback). */
Interval
fitOrFull(__int128 lo, __int128 hi)
{
    if (lo < kMin || hi > kMax)
        return Interval::full();
    return {static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)};
}

Interval
intervalAdd(const Interval &a, const Interval &b)
{
    return fitOrFull(static_cast<__int128>(a.lo) + b.lo,
                     static_cast<__int128>(a.hi) + b.hi);
}

Interval
intervalSub(const Interval &a, const Interval &b)
{
    return fitOrFull(static_cast<__int128>(a.lo) - b.hi,
                     static_cast<__int128>(a.hi) - b.lo);
}

Interval
intervalMul(const Interval &a, const Interval &b)
{
    const __int128 p[4] = {static_cast<__int128>(a.lo) * b.lo,
                           static_cast<__int128>(a.lo) * b.hi,
                           static_cast<__int128>(a.hi) * b.lo,
                           static_cast<__int128>(a.hi) * b.hi};
    return fitOrFull(std::min({p[0], p[1], p[2], p[3]}),
                     std::max({p[0], p[1], p[2], p[3]}));
}

/** Quotient corners are extreme for a positive divisor (truncated division
 *  is monotone in the dividend and anti-monotone in divisor magnitude). */
Interval
intervalDivPos(const Interval &a, const Interval &b)
{
    const std::int64_t q[4] = {a.lo / b.lo, a.lo / b.hi, a.hi / b.lo,
                               a.hi / b.hi};
    return {std::min({q[0], q[1], q[2], q[3]}),
            std::max({q[0], q[1], q[2], q[3]})};
}

Interval
intervalShift(Opcode op, const Interval &a, std::int64_t amount)
{
    const auto s = static_cast<unsigned>(amount & 63);
    switch (op) {
      case Opcode::Sll:
      case Opcode::Slli:
        return fitOrFull(static_cast<__int128>(a.lo) << s,
                         static_cast<__int128>(a.hi) << s);
      case Opcode::Srl:
      case Opcode::Srli:
        // Logical shift reinterprets negatives as huge unsigned values.
        if (a.lo < 0)
            return Interval::full();
        return {a.lo >> s, a.hi >> s};
      case Opcode::Sra:
      case Opcode::Srai:
        return {a.lo >> s, a.hi >> s};
      default:
        return Interval::full();
    }
}

Interval
intervalCompare(Opcode op, const Interval &a, const Interval &b)
{
    const bool unsigned_cmp = op == Opcode::Sltu;
    if (!unsigned_cmp || (a.lo >= 0 && b.lo >= 0)) {
        if (a.hi < b.lo)
            return Interval::constant(1);
        if (a.lo >= b.hi)
            return Interval::constant(0);
    }
    return {0, 1};
}

} // namespace

Interval
Interval::hull(const Interval &other) const
{
    if (isEmpty())
        return other;
    if (other.isEmpty())
        return *this;
    return {std::min(lo, other.lo), std::max(hi, other.hi)};
}

Interval
intervalAlu(Opcode op, Interval a, Interval b)
{
    if (a.isEmpty() || b.isEmpty())
        return Interval::empty();
    if (a.isConstant() && b.isConstant())
        return Interval::constant(isa::evalIntAlu(op, a.lo, b.lo));
    switch (op) {
      case Opcode::Add:
      case Opcode::Addi:
        return intervalAdd(a, b);
      case Opcode::Sub:
        return intervalSub(a, b);
      case Opcode::Mul:
        return intervalMul(a, b);
      case Opcode::Div:
        return b.lo > 0 ? intervalDivPos(a, b) : Interval::full();
      case Opcode::Rem:
        // For a positive divisor, |a rem b| <= min(|a|, b - 1) and the
        // result keeps the dividend's sign.
        if (b.lo > 0)
            return {std::max(-(b.hi - 1), std::min(a.lo, std::int64_t{0})),
                    std::min(b.hi - 1, std::max(a.hi, std::int64_t{0}))};
        return Interval::full();
      case Opcode::And:
      case Opcode::Andi:
        if (a.lo >= 0 || b.lo >= 0) {
            // A non-negative operand caps the result at its own maximum.
            std::int64_t cap = kMax;
            if (a.lo >= 0)
                cap = std::min(cap, a.hi);
            if (b.lo >= 0)
                cap = std::min(cap, b.hi);
            return {0, cap};
        }
        return Interval::full();
      case Opcode::Or:
      case Opcode::Ori:
      case Opcode::Xor:
      case Opcode::Xori:
        if (a.lo >= 0 && b.lo >= 0) {
            // Bitwise results stay below the next power of two.
            const auto width = static_cast<unsigned>(std::bit_width(
                static_cast<std::uint64_t>(std::max(a.hi, b.hi))));
            const std::int64_t cap = width >= 63
                ? kMax
                : (std::int64_t{1} << width) - 1;
            const std::int64_t lo =
                (op == Opcode::Or || op == Opcode::Ori)
                ? std::max(a.lo, b.lo) // or can only set bits
                : 0;
            return {lo, cap};
        }
        return Interval::full();
      case Opcode::Sll:
      case Opcode::Slli:
      case Opcode::Srl:
      case Opcode::Srli:
      case Opcode::Sra:
      case Opcode::Srai:
        if (b.isConstant() && b.lo >= 0 && b.lo <= 63)
            return intervalShift(op, a, b.lo);
        return Interval::full();
      case Opcode::Slt:
      case Opcode::Slti:
      case Opcode::Sltu:
        return intervalCompare(op, a, b);
      default:
        return Interval::full();
    }
}

namespace {

/** State after one instruction executes on `state` (in-place). */
void
applyInstruction(const isa::Program &program, std::size_t index,
                 RegIntervals &state)
{
    const Instruction &in = program.code[index];
    if (!in.hasDest() || in.dest().file != isa::RegOperand::File::Int)
        return;
    const std::uint8_t rd = in.dest().index;

    Interval value = Interval::full();
    const isa::Format format = in.info().format;
    if (isa::isIntAlu(in.op)) {
        const Interval a = in.rs1 < 32 ? state.regs[in.rs1]
                                       : Interval::full();
        const Interval b = isa::usesImmOperand(in.op)
            ? Interval::constant(in.imm)
            : (in.rs2 < 32 ? state.regs[in.rs2] : Interval::full());
        value = intervalAlu(in.op, a, b);
    } else if (format == isa::Format::Load) {
        // Sign-extending loads bound the result by the access width.
        switch (in.op) {
          case Opcode::Lb: value = {-128, 127}; break;
          case Opcode::Lh: value = {-32768, 32767}; break;
          case Opcode::Lw: value = {INT32_MIN, INT32_MAX}; break;
          default: break; // Ld: full
        }
    } else if (format == isa::Format::FCmp) {
        value = {0, 1};
    } else if (format == isa::Format::Jal || format == isa::Format::Jalr) {
        // The link register receives the exact return address.
        value = Interval::constant(
            static_cast<std::int64_t>(program.pcOf(index) +
                                      isa::kInstrBytes));
    }
    // CvtFI and anything unrecognised: full.
    state.regs[rd] = value;
}

/** Intersect the operand intervals of a conditional branch with the
 *  outcome along one edge. Each clamp is individually sound, so any clamp
 *  that would empty an interval is simply skipped (an infeasible edge then
 *  propagates over-approximate values, which is still sound). x0 is never
 *  refined. */
void
refineBranch(const Instruction &branch, bool taken, RegIntervals &state)
{
    const std::uint8_t r1 = branch.rs1;
    const std::uint8_t r2 = branch.rs2;
    if (r1 >= 32 || r2 >= 32)
        return;
    Interval a = state.regs[r1];
    Interval b = state.regs[r2];
    if (a.isEmpty() || b.isEmpty())
        return;

    // Canonicalize to the predicate that holds along this edge.
    enum class Pred { Eq, Ne, Lt, Ge };
    Pred pred{};
    bool signed_ok = true;
    switch (branch.op) {
      case Opcode::Beq: pred = taken ? Pred::Eq : Pred::Ne; break;
      case Opcode::Bne: pred = taken ? Pred::Ne : Pred::Eq; break;
      case Opcode::Blt: pred = taken ? Pred::Lt : Pred::Ge; break;
      case Opcode::Bge: pred = taken ? Pred::Ge : Pred::Lt; break;
      case Opcode::Bltu:
        pred = taken ? Pred::Lt : Pred::Ge;
        signed_ok = a.lo >= 0 && b.lo >= 0;
        break;
      case Opcode::Bgeu:
        pred = taken ? Pred::Ge : Pred::Lt;
        signed_ok = a.lo >= 0 && b.lo >= 0;
        break;
      default:
        return;
    }
    if (!signed_ok)
        return; // unsigned order over possibly-negative values: no clamp

    switch (pred) {
      case Pred::Eq: {
        const Interval meet{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
        if (!meet.isEmpty())
            a = b = meet;
        break;
      }
      case Pred::Ne:
        if (b.isConstant() && !a.isConstant()) {
            if (a.lo == b.lo)
                ++a.lo;
            else if (a.hi == b.lo)
                --a.hi;
        } else if (a.isConstant() && !b.isConstant()) {
            if (b.lo == a.lo)
                ++b.lo;
            else if (b.hi == a.lo)
                --b.hi;
        }
        break;
      case Pred::Lt: // a < b
        if (b.hi != kMin && a.hi > b.hi - 1 && a.lo <= b.hi - 1)
            a.hi = b.hi - 1;
        if (a.lo != kMax && b.lo < a.lo + 1 && b.hi >= a.lo + 1)
            b.lo = a.lo + 1;
        break;
      case Pred::Ge: // a >= b
        if (a.lo < b.lo && a.hi >= b.lo)
            a.lo = b.lo;
        if (b.hi > a.hi && b.lo <= a.hi)
            b.hi = a.hi;
        break;
    }
    if (r1 != isa::kRegZero && !a.isEmpty())
        state.regs[r1] = a;
    if (r2 != isa::kRegZero && !b.isEmpty())
        state.regs[r2] = b;
}

/** Input changes per block before widening kicks in. */
constexpr std::size_t kWideningDelay = 3;

struct ValueRangeProblem
{
    using Value = RegIntervals;
    static constexpr Direction kDirection = Direction::Forward;

    const Cfg *cfg = nullptr;

    // Widening state: per-block accumulated (possibly widened) input and
    // the number of times the input changed.
    std::vector<Value> wide_in;
    std::vector<std::size_t> input_changes;
    // Memoized per-call-block havoc mask (registers the callee may write).
    mutable std::unordered_map<std::size_t, RegMask> havoc_cache;

    explicit ValueRangeProblem(const Cfg &graph) : cfg(&graph)
    {
        Value empty_state;
        empty_state.regs.fill(Interval::empty());
        wide_in.assign(graph.blocks.size(), empty_state);
        input_changes.assign(graph.blocks.size(), 0);
    }

    [[nodiscard]] Value
    identity() const
    {
        Value v;
        v.regs.fill(Interval::empty());
        return v;
    }

    [[nodiscard]] Value
    boundary() const
    {
        // The VM zero-fills the register file; sp additionally holds the
        // stack top, which [0, stack_top] over-approximates... but the
        // exact singleton is known, so use it.
        Value v;
        v.regs.fill(Interval::constant(0));
        v.regs[isa::kRegSp] = Interval::constant(
            static_cast<std::int64_t>(cfg->program->stack_top));
        return v;
    }

    void
    join(Value &into, const Value &from, std::size_t) const
    {
        for (std::size_t r = 0; r < 32; ++r)
            into.regs[r] = into.regs[r].hull(from.regs[r]);
    }

    void
    transferEdge(const Cfg &graph, const Edge &edge, Value &v) const
    {
        const BasicBlock &src = graph.blocks[edge.from];
        if (edge.kind == EdgeKind::ReturnSite) {
            havocCalleeWrites(graph, edge.from, v);
        } else if (edge.kind == EdgeKind::Taken ||
                   edge.kind == EdgeKind::Fallthrough) {
            const Instruction &last = graph.program->code[src.last];
            if (isa::isCondBranch(last.op))
                refineBranch(last, edge.kind == EdgeKind::Taken, v);
        }
    }

    [[nodiscard]] Value
    transfer(const Cfg &graph, std::size_t block, const Value &in)
    {
        // Widen against the accumulated input once the block's input has
        // changed often enough (loop-carried growth): any still-growing
        // bound jumps to the lattice extreme, bounding the ascent.
        Value effective = in;
        if (!(wide_in[block] == in)) {
            if (++input_changes[block] > kWideningDelay) {
                for (std::size_t r = 0; r < 32; ++r) {
                    Interval &acc = wide_in[block].regs[r];
                    const Interval &now = effective.regs[r];
                    if (acc.isEmpty() || now.isEmpty())
                        continue;
                    // The widened value must contain the accumulated one
                    // (acc ∇ now ⊒ acc) or the ascent can restart from a
                    // transiently-narrowed input and never settle.
                    Interval widened = now.hull(acc);
                    if (now.lo < acc.lo)
                        widened.lo = kMin;
                    if (now.hi > acc.hi)
                        widened.hi = kMax;
                    effective.regs[r] = widened;
                }
            }
            wide_in[block] = effective;
        }

        Value out = effective;
        for (std::size_t i = graph.blocks[block].first;
             i <= graph.blocks[block].last; ++i)
            applyInstruction(*graph.program, i, out);
        out.regs[isa::kRegZero] = Interval::constant(0);
        return out;
    }

    /** Per-register ascent bound after widening: each bound moves at most
     *  kWideningDelay + 2 times (delay growths, one widening jump, slack). */
    [[nodiscard]] std::size_t
    latticeHeight() const
    {
        return 2 * 32 * (kWideningDelay + 2);
    }

  private:
    void
    havocCalleeWrites(const Cfg &graph, std::size_t call_block,
                      Value &v) const
    {
        RegMask mask;
        const auto cached = havoc_cache.find(call_block);
        if (cached != havoc_cache.end()) {
            mask = cached->second;
        } else {
            mask = calleeMayWrite(graph, call_block);
            havoc_cache.emplace(call_block, mask);
        }
        for (std::size_t r = 1; r < 32; ++r)
            if (mask & (RegMask{1} << r))
                v.regs[r] = Interval::full();
    }

    /** Union of registers any block reachable from the callee entry may
     *  write; all-ones when the callee is unknown or escapes through an
     *  unresolved indirect jump. */
    [[nodiscard]] static RegMask
    calleeMayWrite(const Cfg &graph, std::size_t call_block)
    {
        std::size_t callee = static_cast<std::size_t>(-1);
        for (const Edge &edge : graph.edges)
            if (edge.from == call_block && edge.kind == EdgeKind::Call)
                callee = edge.to;
        if (callee == static_cast<std::size_t>(-1))
            return ~RegMask{0}; // unknown target: havoc everything

        std::vector<char> visited(graph.blocks.size(), 0);
        std::vector<std::size_t> work{callee};
        RegMask mask = 0;
        while (!work.empty()) {
            const std::size_t b = work.back();
            work.pop_back();
            if (visited[b])
                continue;
            visited[b] = 1;
            const BasicBlock &bb = graph.blocks[b];
            for (std::size_t i = bb.first; i <= bb.last; ++i)
                mask |= writeMask(graph.program->code[i]);
            if (bb.ends_in_indirect && !bb.ends_in_return &&
                graph.address_taken.empty())
                return ~RegMask{0}; // escapes analysis: havoc everything
            for (std::size_t s : bb.succs)
                work.push_back(s);
        }
        return mask;
    }
};

} // namespace

Interval
ValueRanges::atUse(const Cfg &cfg, std::size_t instr, std::uint8_t reg) const
{
    if (reg >= 32)
        return Interval::full();
    const std::size_t b = cfg.block_of_instr[instr];
    if (!cfg.reachable[b])
        return Interval::full();
    RegIntervals state = in[b];
    for (std::size_t i = cfg.blocks[b].first; i < instr; ++i)
        applyInstruction(*cfg.program, i, state);
    const Interval value = state.regs[reg];
    // An empty interval can only arise from joining nothing (no feasible
    // path); report full so callers never "prove" facts from it.
    return value.isEmpty() ? Interval::full() : value;
}

ValueRanges
computeValueRanges(const Cfg &cfg)
{
    ValueRanges result;
    if (cfg.blocks.empty())
        return result;
    ValueRangeProblem problem(cfg);
    auto fixpoint = solveDataflow(cfg, problem);
    result.in = std::move(fixpoint.in);
    result.out = std::move(fixpoint.out);
    result.transfers = fixpoint.transfers;
    result.converged = fixpoint.converged;
    return result;
}

} // namespace mica::analysis
