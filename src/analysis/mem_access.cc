#include "analysis/mem_access.hh"

#include <algorithm>
#include <optional>

#include "isa/opcode.hh"

namespace mica::analysis {

namespace {

using isa::Instruction;
using isa::Opcode;

constexpr std::size_t kNoLoop = MemAccess::kNoLoop;

/** Per-loop induction-variable facts for the 32 integer registers. */
struct LoopIvs
{
    /** step[r]: provable per-iteration increment of register r (basic or
     *  one-level-derived induction variable). */
    std::array<std::optional<std::int64_t>, 32> step;
    /** defs[r]: number of instructions in the loop body writing r. */
    std::array<std::size_t, 32> defs{};
    /** def_instr[r]: the writing instruction when defs[r] == 1. */
    std::array<std::size_t, 32> def_instr{};
};

/** True when the loop body never writes integer register r (x0 included:
 *  writes to it are discarded and produce no definition). */
bool
invariantInLoop(const LoopIvs &ivs, std::uint8_t r)
{
    return r < 32 && ivs.defs[r] == 0;
}

/** The singleton value of register r just before instruction i, if any. */
std::optional<std::int64_t>
singletonAt(const Cfg &cfg, const ValueRanges &ranges, std::size_t i,
            std::uint8_t r)
{
    const Interval v = ranges.atUse(cfg, i, r);
    if (v.isConstant())
        return v.lo;
    return std::nullopt;
}

std::optional<std::int64_t>
mulStep(std::int64_t step, std::int64_t factor)
{
    const __int128 wide = static_cast<__int128>(step) * factor;
    if (wide < std::numeric_limits<std::int64_t>::min() ||
        wide > std::numeric_limits<std::int64_t>::max())
        return std::nullopt;
    return static_cast<std::int64_t>(wide);
}

LoopIvs
findInductionVariables(const Cfg &cfg, const ValueRanges &ranges,
                       const NaturalLoop &loop)
{
    const isa::Program &program = *cfg.program;
    LoopIvs ivs;
    for (std::size_t b : loop.blocks) {
        for (std::size_t i = cfg.blocks[b].first; i <= cfg.blocks[b].last;
             ++i) {
            const Instruction &in = program.code[i];
            if (!in.hasDest() ||
                in.dest().file != isa::RegOperand::File::Int)
                continue;
            const std::uint8_t rd = in.dest().index;
            if (++ivs.defs[rd] == 1)
                ivs.def_instr[rd] = i;
        }
    }

    // Basic induction variables: the unique in-loop definition of r is
    // r += c (addi, or add/sub against a loop-invariant singleton).
    for (std::size_t r = 0; r < 32; ++r) {
        if (ivs.defs[r] != 1)
            continue;
        const Instruction &in = program.code[ivs.def_instr[r]];
        if (in.op == Opcode::Addi && in.rs1 == r) {
            ivs.step[r] = in.imm;
        } else if ((in.op == Opcode::Add || in.op == Opcode::Sub)) {
            const bool r_first = in.rs1 == r;
            const std::uint8_t other = r_first ? in.rs2 : in.rs1;
            if ((r_first || (in.op == Opcode::Add && in.rs2 == r)) &&
                other != r && invariantInLoop(ivs, other)) {
                const auto c = singletonAt(cfg, ranges, ivs.def_instr[r],
                                           other);
                if (c && in.op == Opcode::Add)
                    ivs.step[r] = *c;
                else if (c) // Sub: negate, guarding -INT64_MIN
                    ivs.step[r] = mulStep(*c, -1);
            }
        }
    }

    // One level of derived induction variables: d = f(basic IV) with the
    // unique in-loop definition of d an affine function of the IV.
    for (std::size_t d = 0; d < 32; ++d) {
        if (ivs.defs[d] != 1 || ivs.step[d])
            continue;
        const std::size_t i = ivs.def_instr[d];
        const Instruction &in = program.code[i];
        const auto base_step =
            [&](std::uint8_t r) -> std::optional<std::int64_t> {
            return r < 32 && r != d ? ivs.step[r] : std::nullopt;
        };
        switch (in.op) {
          case Opcode::Addi:
            ivs.step[d] = base_step(in.rs1);
            break;
          case Opcode::Add:
            if (base_step(in.rs1) && invariantInLoop(ivs, in.rs2))
                ivs.step[d] = base_step(in.rs1);
            else if (base_step(in.rs2) && invariantInLoop(ivs, in.rs1))
                ivs.step[d] = base_step(in.rs2);
            break;
          case Opcode::Sub:
            if (base_step(in.rs1) && invariantInLoop(ivs, in.rs2))
                ivs.step[d] = base_step(in.rs1);
            break;
          case Opcode::Slli:
            if (base_step(in.rs1) && in.imm >= 0 && in.imm <= 62) {
                const auto scaled =
                    mulStep(*base_step(in.rs1),
                            std::int64_t{1} << in.imm);
                if (scaled)
                    ivs.step[d] = scaled;
            }
            break;
          case Opcode::Mul: {
            const bool iv_first = base_step(in.rs1).has_value();
            const std::uint8_t iv = iv_first ? in.rs1 : in.rs2;
            const std::uint8_t other = iv_first ? in.rs2 : in.rs1;
            if (base_step(iv) && invariantInLoop(ivs, other)) {
                const auto c = singletonAt(cfg, ranges, i, other);
                if (c) {
                    const auto scaled = mulStep(*base_step(iv), *c);
                    if (scaled)
                        ivs.step[d] = scaled;
                }
            }
            break;
          }
          default:
            break;
        }
    }
    return ivs;
}

StrideClass
classifyStride(std::int64_t stride, std::uint8_t mem_bytes)
{
    if (stride == 0)
        return StrideClass::Invariant;
    const std::uint64_t mag = stride < 0
        ? -static_cast<std::uint64_t>(stride)
        : static_cast<std::uint64_t>(stride);
    if (mag == mem_bytes)
        return StrideClass::Unit;
    if (mag <= 64)
        return StrideClass::Small;
    return StrideClass::Large;
}

/** [imm_a, imm_a + bytes_a) overlaps [imm_b, imm_b + bytes_b). */
bool
offsetsOverlap(std::int64_t a, std::uint8_t bytes_a, std::int64_t b,
               std::uint8_t bytes_b)
{
    return a < b + static_cast<std::int64_t>(bytes_b) &&
        b < a + static_cast<std::int64_t>(bytes_a);
}

bool
intervalsOverlap(const Interval &a, const Interval &b)
{
    return a.lo <= b.hi && b.lo <= a.hi;
}

} // namespace

const char *
strideClassName(StrideClass cls)
{
    switch (cls) {
      case StrideClass::Invariant: return "invariant";
      case StrideClass::Unit: return "unit";
      case StrideClass::Small: return "small";
      case StrideClass::Large: return "large";
      case StrideClass::Irregular: return "irregular";
    }
    return "?";
}

MemAccessAnalysis
analyzeMemAccess(const Cfg &cfg, const std::vector<NaturalLoop> &loops,
                 const ValueRanges &ranges)
{
    MemAccessAnalysis result;
    if (cfg.blocks.empty())
        return result;
    const isa::Program &program = *cfg.program;

    std::vector<LoopIvs> loop_ivs;
    loop_ivs.reserve(loops.size());
    for (const NaturalLoop &loop : loops)
        loop_ivs.push_back(findInductionVariables(cfg, ranges, loop));

    // Innermost containing loop per block: deepest wins, smallest body
    // breaks ties (a loop nested in an equal-depth sibling cannot happen,
    // but merged headers can produce equal depths).
    std::vector<std::size_t> innermost(cfg.blocks.size(), kNoLoop);
    for (std::size_t l = 0; l < loops.size(); ++l) {
        for (std::size_t b : loops[l].blocks) {
            const std::size_t cur = innermost[b];
            if (cur == kNoLoop || loops[l].depth > loops[cur].depth ||
                (loops[l].depth == loops[cur].depth &&
                 loops[l].blocks.size() < loops[cur].blocks.size()))
                innermost[b] = l;
        }
    }

    for (std::size_t b : cfg.rpo) {
        for (std::size_t i = cfg.blocks[b].first; i <= cfg.blocks[b].last;
             ++i) {
            const Instruction &in = program.code[i];
            const isa::OpcodeInfo &info = in.info();
            if (info.mem_bytes == 0)
                continue;

            MemAccess access;
            access.instr = i;
            access.is_store = isa::isStore(in.op);
            access.mem_bytes = info.mem_bytes;
            access.loop = innermost[b];
            access.loop_depth =
                access.loop == kNoLoop ? 0 : loops[access.loop].depth;

            // Effective address interval: base register range + immediate.
            const Interval base = ranges.atUse(cfg, i, in.rs1);
            access.address = intervalAlu(Opcode::Addi, base,
                                         Interval::constant(in.imm));

            if (access.loop != kNoLoop) {
                const LoopIvs &ivs = loop_ivs[access.loop];
                if (in.rs1 < 32 && ivs.step[in.rs1]) {
                    access.stride_known = true;
                    access.stride = *ivs.step[in.rs1];
                    access.stride_class =
                        classifyStride(access.stride, access.mem_bytes);
                } else if (invariantInLoop(ivs, in.rs1)) {
                    access.stride_known = true;
                    access.stride = 0;
                    access.stride_class = StrideClass::Invariant;
                }
            } else if (base.isConstant()) {
                access.stride_known = true;
                access.stride = 0;
                access.stride_class = StrideClass::Invariant;
            }

            const Interval &addr = access.address;
            if (addr.isEmpty() || addr == Interval::full()) {
                access.footprint = MemAccess::kUnknownFootprint;
            } else {
                const std::uint64_t width =
                    static_cast<std::uint64_t>(addr.hi) -
                    static_cast<std::uint64_t>(addr.lo);
                access.footprint =
                    width > MemAccess::kUnknownFootprint - access.mem_bytes
                    ? MemAccess::kUnknownFootprint
                    : width + access.mem_bytes;
            }

            ++result.stride_histogram[static_cast<std::size_t>(
                access.stride_class)];
            result.accesses.push_back(access);
        }
    }

    // Dependence estimate per loop. Same-base-register pairs with a known
    // stride get an exact iteration distance; other pairs fall back to
    // address-interval overlap.
    for (std::size_t l = 0; l < loops.size(); ++l) {
        std::vector<const MemAccess *> members;
        for (const MemAccess &access : result.accesses)
            if (access.loop == l)
                members.push_back(&access);

        for (std::size_t x = 0; x < members.size(); ++x) {
            for (std::size_t y = x + 1; y < members.size(); ++y) {
                const MemAccess &a = *members[x];
                const MemAccess &c = *members[y];
                if (!a.is_store && !c.is_store)
                    continue;
                const MemAccess &store = a.is_store ? a : c;
                const MemAccess &other = a.is_store ? c : a;

                const Instruction &sa = program.code[store.instr];
                const Instruction &so = program.code[other.instr];
                const bool same_base = sa.rs1 == so.rs1;

                if (same_base && store.stride_known && other.stride_known &&
                    store.stride == other.stride) {
                    const std::int64_t s = store.stride;
                    const std::int64_t delta = sa.imm - so.imm;
                    if (s == 0) {
                        // Loop-invariant base: dependent iff the static
                        // offsets overlap; the address repeats every
                        // iteration, so a store-first pair is a
                        // same-iteration dependence, otherwise it carries
                        // to the next iteration.
                        if (offsetsOverlap(sa.imm, store.mem_bytes, so.imm,
                                           other.mem_bytes)) {
                            result.dependences.push_back(
                                {l, store.instr, other.instr, true,
                                 store.instr < other.instr ? 0 : 1});
                        }
                    } else if (delta % s == 0) {
                        const std::int64_t distance = delta / s;
                        result.dependences.push_back(
                            {l, store.instr, other.instr, true,
                             distance < 0 ? -distance : distance});
                    }
                    // Offsets a non-multiple of the stride apart never
                    // collide exactly; partial overlap within one access
                    // width is below this estimate's resolution.
                    continue;
                }

                if (!store.address.isEmpty() && !other.address.isEmpty() &&
                    !(store.address == Interval::full()) &&
                    !(other.address == Interval::full()) &&
                    intervalsOverlap(store.address, other.address)) {
                    result.dependences.push_back(
                        {l, store.instr, other.instr, false, 0});
                }
            }
        }
    }

    for (const LoopDependence &dep : result.dependences)
        if (dep.distance_known && dep.distance != 0)
            ++result.loop_carried;
    return result;
}

} // namespace mica::analysis
