/**
 * @file
 * Register-mask dataflow analyses over the SRISC CFG: dominators, natural
 * loops, possibly-assigned registers (union over paths, used for
 * use-before-def detection), definitely-assigned registers (intersection
 * over paths, used for maybe-use-before-def), and live registers. The
 * fixpoints are computed by the generic engine in analysis/engine.hh; the
 * richer analyses (reaching definitions with use-def chains, value ranges,
 * static memory behaviour) live in their own headers on the same engine.
 *
 * Register sets are bitmasks over both register files: bit i (0..31) is
 * integer register xi, bit 32+i is floating-point register fi.
 */

#ifndef MICAPHASE_ANALYSIS_DATAFLOW_HH
#define MICAPHASE_ANALYSIS_DATAFLOW_HH

#include <cstdint>
#include <vector>

#include "analysis/cfg.hh"
#include "isa/instruction.hh"

namespace mica::analysis {

/** Bitmask over both register files (x0..x31 then f0..f31). */
using RegMask = std::uint64_t;

/** Bit of one register operand. */
[[nodiscard]] constexpr RegMask
regBit(isa::RegOperand reg)
{
    const unsigned shift =
        reg.file == isa::RegOperand::File::Fp ? 32u + reg.index : reg.index;
    return RegMask{1} << shift;
}

/** Registers the VM defines at reset: x0 (hard-wired) and the stack
 *  pointer. The boundary fact of every definedness analysis. */
[[nodiscard]] RegMask vmEntryDefs();

/** Mask of the registers an instruction reads. */
[[nodiscard]] RegMask readMask(const isa::Instruction &instr);

/** Mask of the register an instruction writes (0 when none). */
[[nodiscard]] RegMask writeMask(const isa::Instruction &instr);

/** Number of set bits in the x-file / f-file halves of a mask. */
[[nodiscard]] int intRegCount(RegMask mask);
[[nodiscard]] int fpRegCount(RegMask mask);

/**
 * Immediate dominators of every reachable block, computed with the
 * Cooper–Harvey–Kennedy iterative algorithm over the reverse postorder.
 */
struct DominatorTree
{
    /** idom[b]: immediate dominator block id; entry points at itself.
     *  Unreachable blocks hold kNone. */
    std::vector<std::size_t> idom;
    static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

    /** True when a dominates b (reflexive). */
    [[nodiscard]] bool dominates(std::size_t a, std::size_t b) const;
};

[[nodiscard]] DominatorTree computeDominators(const Cfg &cfg);

/** One natural loop (back edge latch -> header, header dominates latch). */
struct NaturalLoop
{
    std::size_t header = 0;
    std::size_t latch = 0;             ///< source of the back edge
    std::vector<std::size_t> blocks;   ///< loop body incl. header, sorted
    std::size_t depth = 1;             ///< 1 = outermost
    /**
     * True when some edge leaves the loop body. Call edges do not count
     * (a returning callee resumes inside the loop) but indirect jumps and
     * a reachable Halt do.
     */
    bool has_exit = false;

    [[nodiscard]] bool contains(std::size_t block) const;
};

/**
 * All natural loops, one per back edge, sorted by header block id. Loops
 * sharing a header are merged. Nesting depth is derived from body
 * containment.
 */
[[nodiscard]] std::vector<NaturalLoop>
findNaturalLoops(const Cfg &cfg, const DominatorTree &doms);

/**
 * Possibly-assigned registers: for every reachable block, the union over
 * all entry paths of registers written before block entry (plus the
 * registers the VM defines at reset: x0 and the stack pointer). A read of
 * a register absent from this set is a use that no definition can reach
 * on any path — the use-before-def signal consumed by the verifier.
 */
struct PossibleDefs
{
    std::vector<RegMask> in;  ///< at block entry
    std::vector<RegMask> out; ///< at block exit
};

[[nodiscard]] PossibleDefs computePossibleDefs(const Cfg &cfg);

/**
 * Definitely-assigned registers: for every reachable block, the
 * intersection over all entry paths of registers written before block
 * entry (plus the VM-defined x0 and stack pointer). A read of a register
 * in PossibleDefs but absent here is defined on some paths only — the
 * maybe-use-before-def signal.
 */
struct MustDefs
{
    std::vector<RegMask> in;  ///< at block entry
    std::vector<RegMask> out; ///< at block exit
};

[[nodiscard]] MustDefs computeMustDefs(const Cfg &cfg);

/** Classic backward liveness: registers whose value may still be read. */
struct Liveness
{
    std::vector<RegMask> in;  ///< live at block entry
    std::vector<RegMask> out; ///< live at block exit
};

[[nodiscard]] Liveness computeLiveness(const Cfg &cfg);

} // namespace mica::analysis

#endif // MICAPHASE_ANALYSIS_DATAFLOW_HH
