#include "analysis/cfg.hh"

#include <algorithm>
#include <sstream>

namespace mica::analysis {

using isa::Instruction;
using isa::Opcode;

namespace {

/** Static branch/jal target pc, when the instruction has one. */
bool
staticTarget(const isa::Program &program, std::size_t index,
             std::uint64_t &target)
{
    const Instruction &in = program.code[index];
    const isa::Format format = in.info().format;
    if (format != isa::Format::Branch && format != isa::Format::Jal)
        return false;
    target = program.pcOf(index) + static_cast<std::uint64_t>(in.imm);
    return true;
}

/** True when the instruction ends a basic block. */
bool
isTerminator(const Instruction &in)
{
    return isa::isControl(in.op) || in.op == Opcode::Halt;
}

} // namespace

Cfg
buildCfg(const isa::Program &program)
{
    Cfg cfg;
    cfg.program = &program;
    const std::size_t n = program.code.size();
    if (n == 0)
        return cfg;

    // Pass 1: leaders. Instruction 0, every static control-transfer target
    // inside the code segment, and every instruction after a terminator.
    std::vector<bool> leader(n, false);
    leader[0] = true;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t target = 0;
        if (staticTarget(program, i, target) && program.containsPc(target))
            leader[program.indexOf(target)] = true;
        if (isTerminator(program.code[i]) && i + 1 < n)
            leader[i + 1] = true;
    }

    // Address-taken candidates: aligned 64-bit words in the data segment
    // whose value is a valid instruction pc. ProgramBuilder emits label
    // tables this way for jalr dispatch, so these are the recoverable
    // indirect-jump targets.
    std::vector<std::size_t> taken_instrs;
    for (std::size_t off = 0; off + 8 <= program.data.size(); off += 8) {
        std::uint64_t word = 0;
        for (int b = 7; b >= 0; --b)
            word = (word << 8) | program.data[off + b];
        if (program.containsPc(word)) {
            const std::size_t idx = program.indexOf(word);
            leader[idx] = true;
            taken_instrs.push_back(idx);
        }
    }

    // Pass 2: group into blocks.
    cfg.block_of_instr.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        if (leader[i]) {
            BasicBlock bb;
            bb.first = i;
            cfg.blocks.push_back(bb);
        }
        cfg.block_of_instr[i] = cfg.blocks.size() - 1;
        cfg.blocks.back().last = i;
    }

    std::sort(taken_instrs.begin(), taken_instrs.end());
    taken_instrs.erase(
        std::unique(taken_instrs.begin(), taken_instrs.end()),
        taken_instrs.end());
    for (std::size_t idx : taken_instrs)
        cfg.address_taken.push_back(cfg.block_of_instr[idx]);

    // Pass 3: edges.
    auto add_edge = [&cfg](std::size_t from, std::size_t to, EdgeKind kind) {
        cfg.edges.push_back({from, to, kind});
        auto &succs = cfg.blocks[from].succs;
        if (std::find(succs.begin(), succs.end(), to) == succs.end())
            succs.push_back(to);
        auto &preds = cfg.blocks[to].preds;
        if (std::find(preds.begin(), preds.end(), from) == preds.end())
            preds.push_back(from);
    };

    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        BasicBlock &bb = cfg.blocks[b];
        const std::size_t t = bb.last;
        const Instruction &in = program.code[t];
        const bool has_next = t + 1 < n;

        std::uint64_t target = 0;
        const bool target_in_code =
            staticTarget(program, t, target) && program.containsPc(target);
        const auto target_block = [&]() {
            return cfg.block_of_instr[program.indexOf(target)];
        };

        if (isa::isCondBranch(in.op)) {
            if (target_in_code)
                add_edge(b, target_block(), EdgeKind::Taken);
            if (has_next)
                add_edge(b, b + 1, EdgeKind::Fallthrough);
            else
                bb.falls_off_end = true;
        } else if (in.op == Opcode::Jal) {
            if (in.rd == isa::kRegZero) {
                if (target_in_code)
                    add_edge(b, target_block(), EdgeKind::Jump);
            } else {
                // Call: edge into the callee plus the return-site edge
                // (the callee's ret resumes at the next instruction).
                if (target_in_code)
                    add_edge(b, target_block(), EdgeKind::Call);
                if (has_next)
                    add_edge(b, b + 1, EdgeKind::ReturnSite);
                else
                    bb.falls_off_end = true;
            }
        } else if (in.op == Opcode::Jalr) {
            if (in.isReturn()) {
                bb.ends_in_return = true;
            } else {
                bb.ends_in_indirect = true;
                for (std::size_t cand : cfg.address_taken)
                    add_edge(b, cand,
                             in.rd == isa::kRegZero ? EdgeKind::Indirect
                                                    : EdgeKind::Call);
                if (in.rd != isa::kRegZero) {
                    if (has_next)
                        add_edge(b, b + 1, EdgeKind::ReturnSite);
                    else
                        bb.falls_off_end = true;
                }
            }
        } else if (in.op == Opcode::Halt) {
            // No successors.
        } else {
            if (has_next)
                add_edge(b, b + 1, EdgeKind::Fallthrough);
            else
                bb.falls_off_end = true;
        }
    }

    // Pass 4: reachability and reverse postorder from the entry block.
    cfg.reachable.assign(cfg.blocks.size(), false);
    std::vector<std::size_t> post;
    post.reserve(cfg.blocks.size());
    // Iterative DFS; state tracks the next successor index to visit.
    std::vector<std::pair<std::size_t, std::size_t>> stack;
    stack.emplace_back(cfg.entryBlock(), 0);
    cfg.reachable[cfg.entryBlock()] = true;
    while (!stack.empty()) {
        auto &[b, next] = stack.back();
        if (next < cfg.blocks[b].succs.size()) {
            const std::size_t s = cfg.blocks[b].succs[next++];
            if (!cfg.reachable[s]) {
                cfg.reachable[s] = true;
                stack.emplace_back(s, 0);
            }
        } else {
            post.push_back(b);
            stack.pop_back();
        }
    }
    cfg.rpo.assign(post.rbegin(), post.rend());
    return cfg;
}

std::string
Cfg::toString() const
{
    std::ostringstream os;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        const BasicBlock &bb = blocks[b];
        os << "block " << b << " [0x" << std::hex << program->pcOf(bb.first)
           << "..0x" << program->pcOf(bb.last) << std::dec << "] ("
           << bb.size() << (bb.size() == 1 ? " instr)" : " instrs)");
        if (!reachable[b])
            os << " unreachable";
        if (bb.ends_in_return)
            os << " ret";
        if (bb.ends_in_indirect)
            os << " indirect";
        if (!bb.succs.empty()) {
            os << " ->";
            for (std::size_t s : bb.succs)
                os << " " << s;
        }
        os << "\n";
        for (std::size_t i = bb.first; i <= bb.last; ++i)
            os << "  0x" << std::hex << program->pcOf(i) << std::dec
               << ":  " << program->code[i].disassemble() << "\n";
    }
    return os.str();
}

} // namespace mica::analysis
