#include "analysis/verifier.hh"

#include <algorithm>
#include <optional>
#include <sstream>

#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"

namespace mica::analysis {

using isa::Instruction;
using isa::Opcode;

std::string_view
checkName(Check check)
{
    switch (check) {
      case Check::EmptyProgram: return "empty-program";
      case Check::BadRegisterIndex: return "bad-register-index";
      case Check::ImmediateOutOfRange: return "immediate-out-of-range";
      case Check::ShiftAmountOutOfRange: return "shift-amount-out-of-range";
      case Check::BranchTargetOutOfRange:
        return "branch-target-out-of-range";
      case Check::CodeSegmentAccess: return "code-segment-access";
      case Check::MemAccessOutOfSegment: return "mem-access-out-of-segment";
      case Check::MisalignedAccess: return "misaligned-access";
      case Check::UseBeforeDef: return "use-before-def";
      case Check::UnreachableBlock: return "unreachable-block";
      case Check::ReturnWithoutLink: return "return-without-link";
      case Check::FallsOffEnd: return "falls-off-end";
      case Check::InfiniteLoop: return "infinite-loop";
    }
    return "unknown";
}

std::string_view
severityName(Severity severity)
{
    return severity == Severity::Error ? "error" : "warning";
}

std::string
Diagnostic::toString() const
{
    std::ostringstream os;
    os << severityName(severity) << ": " << checkName(check) << " @0x"
       << std::hex << pc << std::dec << ": " << message;
    return os.str();
}

std::size_t
Report::errorCount() const
{
    return static_cast<std::size_t>(
        std::count_if(diagnostics.begin(), diagnostics.end(),
                      [](const Diagnostic &d) {
                          return d.severity == Severity::Error;
                      }));
}

std::size_t
Report::warningCount() const
{
    return diagnostics.size() - errorCount();
}

bool
Report::has(Check check) const
{
    return std::any_of(diagnostics.begin(), diagnostics.end(),
                       [check](const Diagnostic &d) {
                           return d.check == check;
                       });
}

std::string
Report::toString() const
{
    std::string out;
    for (const Diagnostic &d : diagnostics) {
        out += d.toString();
        out += '\n';
    }
    return out;
}

namespace {

/** Collects diagnostics with the program at hand for disassembly. */
class Verifier
{
  public:
    Verifier(const isa::Program &program, const Options &options)
        : program_(program), options_(options)
    {
    }

    Report run();

  private:
    void report(Check check, Severity severity, std::size_t index,
                const std::string &detail);
    void reportBlock(Check check, Severity severity, std::size_t index,
                     const std::string &detail);
    void checkOperands(std::size_t index);
    void checkControlTargets(std::size_t index);
    void checkMemAccess(std::size_t index, std::uint64_t addr);

    /**
     * Statically known integer register values: a register qualifies when
     * exactly one reachable definition exists program-wide and it is a
     * load-immediate (addi rd, x0, imm). Single-definition constants
     * cover the generators' base-pointer idiom; anything reassigned
     * (loop counters, strided pointers) stays unresolved.
     */
    void resolveConstants(const Cfg &cfg);
    [[nodiscard]] std::optional<std::uint64_t>
    baseValue(std::uint8_t reg) const;

    const isa::Program &program_;
    const Options &options_;
    Report out_;
    std::vector<std::optional<std::int64_t>> const_value_;
    std::vector<int> def_count_;
};

void
Verifier::report(Check check, Severity severity, std::size_t index,
                 const std::string &detail)
{
    Diagnostic d;
    d.check = check;
    d.severity = severity;
    d.instr_index = index;
    d.pc = program_.pcOf(index);
    d.message = "`" + program_.code[index].disassemble() + "`: " + detail;
    out_.diagnostics.push_back(std::move(d));
}

void
Verifier::reportBlock(Check check, Severity severity, std::size_t index,
                      const std::string &detail)
{
    Diagnostic d;
    d.check = check;
    d.severity = severity;
    d.instr_index = index;
    d.pc = program_.pcOf(index);
    d.message = detail;
    out_.diagnostics.push_back(std::move(d));
}

void
Verifier::checkOperands(std::size_t index)
{
    const Instruction &in = program_.code[index];

    // Operand model from OpcodeInfo: sources()/dest() enumerate exactly
    // the fields the instruction's format uses.
    for (const isa::RegOperand &reg : in.sources())
        if (reg.index >= isa::kNumIntRegs)
            report(Check::BadRegisterIndex, Severity::Error, index,
                   "source register index " + std::to_string(reg.index) +
                       " out of range");
    if (in.hasDest() && in.dest().index >= isa::kNumIntRegs)
        report(Check::BadRegisterIndex, Severity::Error, index,
               "destination register index " +
                   std::to_string(in.dest().index) + " out of range");

    if (in.imm < isa::kImmMin || in.imm > isa::kImmMax)
        report(Check::ImmediateOutOfRange, Severity::Error, index,
               "immediate " + std::to_string(in.imm) + " does not fit " +
                   std::to_string(isa::kImmBits) + " bits");

    if ((in.op == Opcode::Slli || in.op == Opcode::Srli ||
         in.op == Opcode::Srai) &&
        (in.imm < 0 || in.imm > 63))
        report(Check::ShiftAmountOutOfRange, Severity::Warning, index,
               "shift amount " + std::to_string(in.imm) +
                   " outside [0, 63] (the VM masks it)");
}

void
Verifier::checkControlTargets(std::size_t index)
{
    const Instruction &in = program_.code[index];
    const isa::Format format = in.info().format;

    if (format == isa::Format::Branch || format == isa::Format::Jal) {
        const std::uint64_t target =
            program_.pcOf(index) + static_cast<std::uint64_t>(in.imm);
        if (!program_.containsPc(target)) {
            std::ostringstream os;
            os << "target 0x" << std::hex << target << std::dec
               << (target % isa::kInstrBytes != 0
                       ? " is not 8-byte aligned"
                       : " is outside the code segment");
            report(Check::BranchTargetOutOfRange, Severity::Error, index,
                   os.str());
        }
    } else if (format == isa::Format::Jalr) {
        // Only resolvable when the base register is a known constant.
        if (const auto base = baseValue(in.rs1)) {
            const std::uint64_t target =
                *base + static_cast<std::uint64_t>(in.imm);
            if (!program_.containsPc(target)) {
                std::ostringstream os;
                os << "indirect target 0x" << std::hex << target
                   << std::dec << " is not an instruction address";
                report(Check::BranchTargetOutOfRange, Severity::Error,
                       index, os.str());
            }
        }
    }
}

void
Verifier::checkMemAccess(std::size_t index, std::uint64_t addr)
{
    const Instruction &in = program_.code[index];
    const unsigned size = in.info().mem_bytes;
    const bool is_store = isa::isStore(in.op);

    const std::uint64_t code_end =
        program_.code_base + program_.code.size() * isa::kInstrBytes;
    const std::uint64_t data_end = program_.data_base + program_.data.size();
    const std::uint64_t stack_lo =
        program_.stack_top > options_.stack_reserve
            ? program_.stack_top - options_.stack_reserve
            : 0;

    std::ostringstream os;
    os << (is_store ? "store to 0x" : "load from 0x") << std::hex << addr
       << std::dec << " (" << size << " bytes)";

    if (addr < code_end && addr + size > program_.code_base) {
        report(Check::CodeSegmentAccess, Severity::Error, index,
               os.str() + " hits the code segment");
        return;
    }
    const bool in_data = addr >= program_.data_base && addr + size <= data_end;
    const bool in_stack =
        addr >= stack_lo && addr + size <= program_.stack_top;
    if (!in_data && !in_stack) {
        std::ostringstream seg;
        seg << " is outside the data segment [0x" << std::hex
            << program_.data_base << ", 0x" << data_end
            << ") and the stack";
        report(Check::MemAccessOutOfSegment, Severity::Error, index,
               os.str() + seg.str());
        return;
    }
    if (size > 1 && addr % size != 0)
        report(Check::MisalignedAccess, Severity::Warning, index,
               os.str() + " is not " + std::to_string(size) +
                   "-byte aligned");
}

void
Verifier::resolveConstants(const Cfg &cfg)
{
    const_value_.assign(isa::kNumIntRegs, std::nullopt);
    def_count_.assign(isa::kNumIntRegs, 0);
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        if (!cfg.reachable[b])
            continue;
        for (std::size_t i = cfg.blocks[b].first; i <= cfg.blocks[b].last;
             ++i) {
            const Instruction &in = program_.code[i];
            if (!in.hasDest() ||
                in.dest().file != isa::RegOperand::File::Int)
                continue;
            const std::uint8_t rd = in.dest().index;
            if (rd >= isa::kNumIntRegs)
                continue;
            ++def_count_[rd];
            if (in.op == Opcode::Addi && in.rs1 == isa::kRegZero)
                const_value_[rd] = in.imm;
            else
                const_value_[rd] = std::nullopt;
        }
    }
}

std::optional<std::uint64_t>
Verifier::baseValue(std::uint8_t reg) const
{
    if (reg == isa::kRegZero)
        return 0;
    if (reg < const_value_.size() && def_count_[reg] == 1 &&
        const_value_[reg])
        return static_cast<std::uint64_t>(*const_value_[reg]);
    return std::nullopt;
}

Report
Verifier::run()
{
    if (program_.code.empty()) {
        Diagnostic d;
        d.check = Check::EmptyProgram;
        d.severity = Severity::Error;
        d.pc = program_.code_base;
        d.message = "program has no instructions";
        out_.diagnostics.push_back(std::move(d));
        return std::move(out_);
    }

    const Cfg cfg = buildCfg(program_);
    resolveConstants(cfg);

    // Per-instruction encoding and target checks (all blocks: even dead
    // code must be well-formed enough to encode).
    for (std::size_t i = 0; i < program_.code.size(); ++i) {
        checkOperands(i);
        checkControlTargets(i);
    }

    // Unreachable blocks and falls-off-end.
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        const BasicBlock &bb = cfg.blocks[b];
        if (!cfg.reachable[b]) {
            reportBlock(Check::UnreachableBlock, Severity::Warning,
                        bb.first,
                        "basic block of " + std::to_string(bb.size()) +
                            " instructions is unreachable from the entry");
            continue;
        }
        if (bb.falls_off_end)
            report(Check::FallsOffEnd, Severity::Error, bb.last,
                   "control can run past the last instruction of the "
                   "code segment");
    }

    // Dataflow checks on reachable blocks.
    const PossibleDefs defs = computePossibleDefs(cfg);
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        if (!cfg.reachable[b])
            continue;
        RegMask defined = defs.in[b];
        for (std::size_t i = cfg.blocks[b].first; i <= cfg.blocks[b].last;
             ++i) {
            const Instruction &in = program_.code[i];
            // Before the use-before-def loop below marks ra as "seen".
            if (in.isReturn() &&
                (defined & (RegMask{1} << isa::kRegRa)) == 0)
                report(Check::ReturnWithoutLink, Severity::Error, i,
                       "return reachable with no definition of the link "
                       "register (would jump to pc 0)");
            for (const isa::RegOperand &reg : in.sources()) {
                if (reg.index >= isa::kNumIntRegs)
                    continue; // already a BadRegisterIndex error
                const RegMask bit = regBit(reg) & ~RegMask{1};
                if (bit != 0 && (defined & bit) == 0) {
                    const bool fp = reg.file == isa::RegOperand::File::Fp;
                    report(Check::UseBeforeDef, Severity::Warning, i,
                           std::string("read of ") +
                               std::string(fp ? isa::fpRegName(reg.index)
                                              : isa::intRegName(reg.index)) +
                               " which no definition reaches (the VM "
                               "zero-initializes it)");
                    defined |= bit; // report each register once per block
                }
            }
            // Statically resolvable memory accesses.
            if (isa::isLoad(in.op) || isa::isStore(in.op)) {
                if (const auto base = baseValue(in.rs1))
                    checkMemAccess(
                        i, *base + static_cast<std::uint64_t>(in.imm));
            }
            defined |= writeMask(in);
        }
    }

    // Guaranteed non-termination: a natural loop with no exit edge.
    if (!options_.allow_nonterminating) {
        const DominatorTree doms = computeDominators(cfg);
        for (const NaturalLoop &loop : findNaturalLoops(cfg, doms)) {
            if (loop.has_exit)
                continue;
            reportBlock(Check::InfiniteLoop, Severity::Error,
                        cfg.blocks[loop.header].first,
                        "natural loop of " +
                            std::to_string(loop.blocks.size()) +
                            " blocks has no exit edge (program cannot "
                            "terminate)");
        }
    }

    return std::move(out_);
}

} // namespace

Report
verify(const isa::Program &program, const Options &options)
{
    return Verifier(program, options).run();
}

} // namespace mica::analysis
