#include "analysis/verifier.hh"

#include <algorithm>
#include <optional>
#include <sstream>

#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"
#include "analysis/reaching_defs.hh"
#include "analysis/value_range.hh"
#include "isa/semantics.hh"

namespace mica::analysis {

using isa::Instruction;
using isa::Opcode;

std::string_view
checkName(Check check)
{
    switch (check) {
      case Check::EmptyProgram: return "empty-program";
      case Check::BadRegisterIndex: return "bad-register-index";
      case Check::ImmediateOutOfRange: return "immediate-out-of-range";
      case Check::ShiftAmountOutOfRange: return "shift-amount-out-of-range";
      case Check::BranchTargetOutOfRange:
        return "branch-target-out-of-range";
      case Check::CodeSegmentAccess: return "code-segment-access";
      case Check::MemAccessOutOfSegment: return "mem-access-out-of-segment";
      case Check::MisalignedAccess: return "misaligned-access";
      case Check::UseBeforeDef: return "use-before-def";
      case Check::UnreachableBlock: return "unreachable-block";
      case Check::ReturnWithoutLink: return "return-without-link";
      case Check::FallsOffEnd: return "falls-off-end";
      case Check::InfiniteLoop: return "infinite-loop";
      case Check::MaybeUseBeforeDef: return "maybe-use-before-def";
      case Check::DeadStore: return "dead-store";
      case Check::DiscardedValue: return "discarded-value";
      case Check::ConstantBranch: return "constant-branch";
      case Check::RangeProvenOutOfSegment:
        return "range-proven-out-of-segment";
      case Check::RangeProvenMisaligned: return "range-proven-misaligned";
      case Check::EmptyInfiniteLoop: return "empty-infinite-loop";
    }
    return "unknown";
}

std::string_view
severityName(Severity severity)
{
    return severity == Severity::Error ? "error" : "warning";
}

std::string
Diagnostic::toString() const
{
    std::ostringstream os;
    os << severityName(severity) << ": " << checkName(check) << " @0x"
       << std::hex << pc << std::dec << " [bb" << block << "+"
       << block_offset << "]: " << message;
    return os.str();
}

std::size_t
Report::errorCount() const
{
    return static_cast<std::size_t>(
        std::count_if(diagnostics.begin(), diagnostics.end(),
                      [](const Diagnostic &d) {
                          return d.severity == Severity::Error;
                      }));
}

std::size_t
Report::warningCount() const
{
    return diagnostics.size() - errorCount();
}

bool
Report::has(Check check) const
{
    return std::any_of(diagnostics.begin(), diagnostics.end(),
                       [check](const Diagnostic &d) {
                           return d.check == check;
                       });
}

std::string
Report::toString() const
{
    std::string out;
    for (const Diagnostic &d : diagnostics) {
        out += d.toString();
        out += '\n';
    }
    return out;
}

namespace {

/** Collects diagnostics with the program at hand for disassembly. */
class Verifier
{
  public:
    Verifier(const isa::Program &program, const Options &options)
        : program_(program), options_(options)
    {
    }

    Report run();

  private:
    void report(Check check, Severity severity, std::size_t index,
                const std::string &detail);
    void reportBlock(Check check, Severity severity, std::size_t index,
                     const std::string &detail);
    void checkOperands(std::size_t index);
    void checkControlTargets(std::size_t index);
    void checkMemAccess(std::size_t index, std::uint64_t addr);
    void checkRangeMemAccess(std::size_t index, const ValueRanges &ranges);
    void checkConstantBranch(std::size_t block, const ValueRanges &ranges);
    void checkDeadStores(const Cfg &cfg, const ReachingDefs &rdefs);
    void checkEmptyLoops(const Cfg &cfg,
                         const std::vector<NaturalLoop> &loops);

    /**
     * Statically known integer register values: a register qualifies when
     * exactly one reachable definition exists program-wide and it is a
     * load-immediate (addi rd, x0, imm). Single-definition constants
     * cover the generators' base-pointer idiom; anything reassigned
     * (loop counters, strided pointers) stays unresolved.
     */
    void resolveConstants(const Cfg &cfg);
    [[nodiscard]] std::optional<std::uint64_t>
    baseValue(std::uint8_t reg) const;

    const isa::Program &program_;
    const Options &options_;
    const Cfg *cfg_ = nullptr; ///< set for the lifetime of run()
    Report out_;
    std::vector<std::optional<std::int64_t>> const_value_;
    std::vector<int> def_count_;
};

void
Verifier::report(Check check, Severity severity, std::size_t index,
                 const std::string &detail)
{
    Diagnostic d;
    d.check = check;
    d.severity = severity;
    d.instr_index = index;
    d.pc = program_.pcOf(index);
    if (cfg_ && index < cfg_->block_of_instr.size()) {
        d.block = cfg_->block_of_instr[index];
        d.block_offset = index - cfg_->blocks[d.block].first;
    }
    d.message = "`" + program_.code[index].disassemble() + "`: " + detail;
    out_.diagnostics.push_back(std::move(d));
}

void
Verifier::reportBlock(Check check, Severity severity, std::size_t index,
                      const std::string &detail)
{
    Diagnostic d;
    d.check = check;
    d.severity = severity;
    d.instr_index = index;
    d.pc = program_.pcOf(index);
    if (cfg_ && index < cfg_->block_of_instr.size()) {
        d.block = cfg_->block_of_instr[index];
        d.block_offset = index - cfg_->blocks[d.block].first;
    }
    d.message = detail;
    out_.diagnostics.push_back(std::move(d));
}

void
Verifier::checkOperands(std::size_t index)
{
    const Instruction &in = program_.code[index];

    // Operand model from OpcodeInfo: sources()/dest() enumerate exactly
    // the fields the instruction's format uses.
    for (const isa::RegOperand &reg : in.sources())
        if (reg.index >= isa::kNumIntRegs)
            report(Check::BadRegisterIndex, Severity::Error, index,
                   "source register index " + std::to_string(reg.index) +
                       " out of range");
    if (in.hasDest() && in.dest().index >= isa::kNumIntRegs)
        report(Check::BadRegisterIndex, Severity::Error, index,
               "destination register index " +
                   std::to_string(in.dest().index) + " out of range");

    if (in.imm < isa::kImmMin || in.imm > isa::kImmMax)
        report(Check::ImmediateOutOfRange, Severity::Error, index,
               "immediate " + std::to_string(in.imm) + " does not fit " +
                   std::to_string(isa::kImmBits) + " bits");

    if ((in.op == Opcode::Slli || in.op == Opcode::Srli ||
         in.op == Opcode::Srai) &&
        (in.imm < 0 || in.imm > 63))
        report(Check::ShiftAmountOutOfRange, Severity::Warning, index,
               "shift amount " + std::to_string(in.imm) +
                   " outside [0, 63] (the VM masks it)");
}

void
Verifier::checkControlTargets(std::size_t index)
{
    const Instruction &in = program_.code[index];
    const isa::Format format = in.info().format;

    if (format == isa::Format::Branch || format == isa::Format::Jal) {
        const std::uint64_t target =
            program_.pcOf(index) + static_cast<std::uint64_t>(in.imm);
        if (!program_.containsPc(target)) {
            std::ostringstream os;
            os << "target 0x" << std::hex << target << std::dec
               << (target % isa::kInstrBytes != 0
                       ? " is not 8-byte aligned"
                       : " is outside the code segment");
            report(Check::BranchTargetOutOfRange, Severity::Error, index,
                   os.str());
        }
    } else if (format == isa::Format::Jalr) {
        // Only resolvable when the base register is a known constant.
        if (const auto base = baseValue(in.rs1)) {
            const std::uint64_t target =
                *base + static_cast<std::uint64_t>(in.imm);
            if (!program_.containsPc(target)) {
                std::ostringstream os;
                os << "indirect target 0x" << std::hex << target
                   << std::dec << " is not an instruction address";
                report(Check::BranchTargetOutOfRange, Severity::Error,
                       index, os.str());
            }
        }
    }
}

void
Verifier::checkMemAccess(std::size_t index, std::uint64_t addr)
{
    const Instruction &in = program_.code[index];
    const unsigned size = in.info().mem_bytes;
    const bool is_store = isa::isStore(in.op);

    const std::uint64_t code_end =
        program_.code_base + program_.code.size() * isa::kInstrBytes;
    const std::uint64_t data_end = program_.data_base + program_.data.size();
    const std::uint64_t stack_lo =
        program_.stack_top > options_.stack_reserve
            ? program_.stack_top - options_.stack_reserve
            : 0;

    std::ostringstream os;
    os << (is_store ? "store to 0x" : "load from 0x") << std::hex << addr
       << std::dec << " (" << size << " bytes)";

    if (addr < code_end && addr + size > program_.code_base) {
        report(Check::CodeSegmentAccess, Severity::Error, index,
               os.str() + " hits the code segment");
        return;
    }
    const bool in_data = addr >= program_.data_base && addr + size <= data_end;
    const bool in_stack =
        addr >= stack_lo && addr + size <= program_.stack_top;
    if (!in_data && !in_stack) {
        std::ostringstream seg;
        seg << " is outside the data segment [0x" << std::hex
            << program_.data_base << ", 0x" << data_end
            << ") and the stack";
        report(Check::MemAccessOutOfSegment, Severity::Error, index,
               os.str() + seg.str());
        return;
    }
    if (size > 1 && addr % size != 0)
        report(Check::MisalignedAccess, Severity::Warning, index,
               os.str() + " is not " + std::to_string(size) +
                   "-byte aligned");
}

/**
 * Value-range powered memory checks for accesses the single-definition
 * constant resolver could not handle. An address interval wholly outside
 * every segment proves a fault on all executions reaching the access
 * (the interval over-approximates the real address set); a singleton
 * interval additionally proves misalignment exactly.
 */
void
Verifier::checkRangeMemAccess(std::size_t index, const ValueRanges &ranges)
{
    const Instruction &in = program_.code[index];
    if (baseValue(in.rs1))
        return; // already covered by checkMemAccess
    const Interval base = ranges.atUse(*cfg_, index, in.rs1);
    const Interval addr =
        intervalAlu(Opcode::Addi, base, Interval::constant(in.imm));
    if (addr.isEmpty() || addr == Interval::full())
        return;
    const unsigned size = in.info().mem_bytes;

    if (addr.isConstant()) {
        const auto a = static_cast<std::uint64_t>(addr.lo);
        const std::uint64_t stack_lo =
            program_.stack_top > options_.stack_reserve
            ? program_.stack_top - options_.stack_reserve
            : 0;
        const bool in_data = a >= program_.data_base &&
            a + size <= program_.data_base + program_.data.size();
        const bool in_stack =
            a >= stack_lo && a + size <= program_.stack_top;
        if ((in_data || in_stack) && size > 1 && a % size != 0) {
            std::ostringstream os;
            os << "address 0x" << std::hex << a << std::dec
               << " (proven by value-range analysis) is not "
               << size << "-byte aligned";
            report(Check::RangeProvenMisaligned, Severity::Warning, index,
                   os.str());
        }
        if (in_data || in_stack)
            return;
    }

    // Whole-interval-outside proof. Valid memory lives in [0, 2^63), so a
    // wholly negative interval (huge unsigned addresses) is already out;
    // otherwise the non-negative part must miss code, data and stack.
    const auto overlaps = [size](std::int64_t lo, std::int64_t hi,
                                 std::uint64_t seg_lo,
                                 std::uint64_t seg_hi) {
        const auto ulo = static_cast<std::uint64_t>(std::max<std::int64_t>(
            lo, 0));
        const auto uhi = static_cast<std::uint64_t>(hi) + size;
        return ulo < seg_hi && seg_lo < uhi;
    };
    const std::uint64_t code_end =
        program_.code_base + program_.code.size() * isa::kInstrBytes;
    const std::uint64_t data_end =
        program_.data_base + program_.data.size();
    const std::uint64_t stack_lo =
        program_.stack_top > options_.stack_reserve
        ? program_.stack_top - options_.stack_reserve
        : 0;
    const bool outside = addr.hi < 0 ||
        (!overlaps(addr.lo, addr.hi, program_.code_base, code_end) &&
         !overlaps(addr.lo, addr.hi, program_.data_base, data_end) &&
         !overlaps(addr.lo, addr.hi, stack_lo, program_.stack_top));
    if (outside) {
        std::ostringstream os;
        os << (isa::isStore(in.op) ? "store" : "load")
           << " address range [0x" << std::hex << addr.lo << ", 0x"
           << addr.hi << std::dec
           << "] lies wholly outside every segment on all executions";
        report(Check::RangeProvenOutOfSegment, Severity::Error, index,
               os.str());
    }
}

void
Verifier::checkConstantBranch(std::size_t block, const ValueRanges &ranges)
{
    const BasicBlock &bb = cfg_->blocks[block];
    const Instruction &in = program_.code[bb.last];
    if (!isa::isCondBranch(in.op))
        return;
    const Interval a = ranges.atUse(*cfg_, bb.last, in.rs1);
    const Interval b = ranges.atUse(*cfg_, bb.last, in.rs2);

    std::optional<bool> outcome;
    if (a.isConstant() && b.isConstant()) {
        outcome = isa::evalBranch(in.op, a.lo, b.lo);
    } else {
        const bool unsigned_cmp =
            in.op == Opcode::Bltu || in.op == Opcode::Bgeu;
        if (!unsigned_cmp || (a.lo >= 0 && b.lo >= 0)) {
            switch (in.op) {
              case Opcode::Beq:
                if (a.hi < b.lo || b.hi < a.lo)
                    outcome = false; // disjoint: never equal
                break;
              case Opcode::Bne:
                if (a.hi < b.lo || b.hi < a.lo)
                    outcome = true;
                break;
              case Opcode::Blt:
              case Opcode::Bltu:
                if (a.hi < b.lo)
                    outcome = true;
                else if (a.lo >= b.hi)
                    outcome = false;
                break;
              case Opcode::Bge:
              case Opcode::Bgeu:
                if (a.lo >= b.hi)
                    outcome = true;
                else if (a.hi < b.lo)
                    outcome = false;
                break;
              default:
                break;
            }
        }
    }
    if (outcome)
        report(Check::ConstantBranch, Severity::Warning, bb.last,
               std::string("branch condition is statically ") +
                   (*outcome ? "always" : "never") +
                   " taken; the other edge is dead");
}

/**
 * A definition overwritten later in its own block with no use observing it
 * is dead on every execution. Cross-block unused definitions are *not*
 * reported: a value left for a path the analysis cannot follow (indirect
 * dispatch) or for the final machine state is not a bug.
 */
void
Verifier::checkDeadStores(const Cfg &cfg, const ReachingDefs &rdefs)
{
    for (std::size_t d = 0; d < rdefs.defs.size(); ++d) {
        const DefSite &site = rdefs.defs[d];
        if (site.instr == DefSite::kVmReset || rdefs.used[d])
            continue;
        const std::size_t block = cfg.block_of_instr[site.instr];
        if (!cfg.reachable[block])
            continue;
        // Overwritten later in the same block?
        bool overwritten = false;
        for (std::size_t i = site.instr + 1; i <= cfg.blocks[block].last;
             ++i) {
            const Instruction &in = program_.code[i];
            if (in.hasDest() && in.dest() == site.reg) {
                overwritten = true;
                break;
            }
        }
        if (overwritten)
            report(Check::DeadStore, Severity::Warning, site.instr,
                   std::string("value written to ") +
                       std::string(site.reg.file ==
                                           isa::RegOperand::File::Fp
                                       ? isa::fpRegName(site.reg.index)
                                       : isa::intRegName(site.reg.index)) +
                       " is overwritten in the same block before any use");
    }
}

void
Verifier::checkEmptyLoops(const Cfg &cfg,
                          const std::vector<NaturalLoop> &loops)
{
    for (const NaturalLoop &loop : loops) {
        if (loop.has_exit)
            continue;
        bool observable = false;
        for (std::size_t b : loop.blocks) {
            for (std::size_t i = cfg.blocks[b].first;
                 i <= cfg.blocks[b].last && !observable; ++i) {
                const Instruction &in = program_.code[i];
                observable = in.info().mem_bytes != 0 || in.isCall() ||
                    isa::isFpOp(in.op);
            }
            if (observable)
                break;
        }
        if (!observable)
            reportBlock(Check::EmptyInfiniteLoop, Severity::Warning,
                        cfg.blocks[loop.header].first,
                        "exitless loop of " +
                            std::to_string(loop.blocks.size()) +
                            " blocks performs no memory access, call or "
                            "fp work (spins forever doing nothing)");
    }
}

void
Verifier::resolveConstants(const Cfg &cfg)
{
    const_value_.assign(isa::kNumIntRegs, std::nullopt);
    def_count_.assign(isa::kNumIntRegs, 0);
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        if (!cfg.reachable[b])
            continue;
        for (std::size_t i = cfg.blocks[b].first; i <= cfg.blocks[b].last;
             ++i) {
            const Instruction &in = program_.code[i];
            if (!in.hasDest() ||
                in.dest().file != isa::RegOperand::File::Int)
                continue;
            const std::uint8_t rd = in.dest().index;
            if (rd >= isa::kNumIntRegs)
                continue;
            ++def_count_[rd];
            if (in.op == Opcode::Addi && in.rs1 == isa::kRegZero)
                const_value_[rd] = in.imm;
            else
                const_value_[rd] = std::nullopt;
        }
    }
}

std::optional<std::uint64_t>
Verifier::baseValue(std::uint8_t reg) const
{
    if (reg == isa::kRegZero)
        return 0;
    if (reg < const_value_.size() && def_count_[reg] == 1 &&
        const_value_[reg])
        return static_cast<std::uint64_t>(*const_value_[reg]);
    return std::nullopt;
}

Report
Verifier::run()
{
    if (program_.code.empty()) {
        Diagnostic d;
        d.check = Check::EmptyProgram;
        d.severity = Severity::Error;
        d.pc = program_.code_base;
        d.message = "program has no instructions";
        out_.diagnostics.push_back(std::move(d));
        return std::move(out_);
    }

    const Cfg cfg = buildCfg(program_);
    cfg_ = &cfg;
    resolveConstants(cfg);

    // Per-instruction encoding and target checks (all blocks: even dead
    // code must be well-formed enough to encode).
    for (std::size_t i = 0; i < program_.code.size(); ++i) {
        checkOperands(i);
        checkControlTargets(i);

        // A value-producing instruction whose integer destination field is
        // x0 computes a result the machine immediately discards. jal/jalr
        // x0 are the jump/return idioms and not reported.
        const Instruction &in = program_.code[i];
        const isa::Format format = in.info().format;
        const bool int_dest = format == isa::Format::RRR ||
            format == isa::Format::RRI || format == isa::Format::Load ||
            format == isa::Format::FCmp || format == isa::Format::CvtFI;
        if (int_dest && in.rd == isa::kRegZero)
            report(Check::DiscardedValue, Severity::Warning, i,
                   "result is written to x0 and discarded");
    }

    // Unreachable blocks and falls-off-end.
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        const BasicBlock &bb = cfg.blocks[b];
        if (!cfg.reachable[b]) {
            reportBlock(Check::UnreachableBlock, Severity::Warning,
                        bb.first,
                        "basic block of " + std::to_string(bb.size()) +
                            " instructions is unreachable from the entry");
            continue;
        }
        if (bb.falls_off_end)
            report(Check::FallsOffEnd, Severity::Error, bb.last,
                   "control can run past the last instruction of the "
                   "code segment");
    }

    // Dataflow checks on reachable blocks. Possible-defs (union over
    // paths) drives use-before-def; must-defs (intersection) additionally
    // flags reads defined on some paths but not all.
    const PossibleDefs defs = computePossibleDefs(cfg);
    const MustDefs must = computeMustDefs(cfg);
    const ValueRanges ranges = computeValueRanges(cfg);
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        if (!cfg.reachable[b])
            continue;
        RegMask defined = defs.in[b];
        RegMask always_defined = must.in[b];
        for (std::size_t i = cfg.blocks[b].first; i <= cfg.blocks[b].last;
             ++i) {
            const Instruction &in = program_.code[i];
            // Before the use-before-def loop below marks ra as "seen".
            if (in.isReturn() &&
                (defined & (RegMask{1} << isa::kRegRa)) == 0)
                report(Check::ReturnWithoutLink, Severity::Error, i,
                       "return reachable with no definition of the link "
                       "register (would jump to pc 0)");
            for (const isa::RegOperand &reg : in.sources()) {
                if (reg.index >= isa::kNumIntRegs)
                    continue; // already a BadRegisterIndex error
                const RegMask bit = regBit(reg) & ~RegMask{1};
                if (bit == 0)
                    continue;
                const bool fp = reg.file == isa::RegOperand::File::Fp;
                const std::string name(fp ? isa::fpRegName(reg.index)
                                          : isa::intRegName(reg.index));
                if ((defined & bit) == 0) {
                    report(Check::UseBeforeDef, Severity::Warning, i,
                           "read of " + name +
                               " which no definition reaches (the VM "
                               "zero-initializes it)");
                    defined |= bit; // report each register once per block
                    always_defined |= bit;
                } else if ((always_defined & bit) == 0) {
                    report(Check::MaybeUseBeforeDef, Severity::Warning, i,
                           "read of " + name +
                               " which is defined on some paths to this "
                               "point but not all");
                    always_defined |= bit; // once per register per block
                }
            }
            // Statically resolvable memory accesses, then the value-range
            // interval proof for everything the resolver cannot reach.
            if (isa::isLoad(in.op) || isa::isStore(in.op)) {
                if (const auto base = baseValue(in.rs1))
                    checkMemAccess(
                        i, *base + static_cast<std::uint64_t>(in.imm));
                else
                    checkRangeMemAccess(i, ranges);
            }
            defined |= writeMask(in);
            always_defined |= writeMask(in);
        }
        checkConstantBranch(b, ranges);
    }

    checkDeadStores(cfg, computeReachingDefs(cfg));

    // Loop-shape checks. A natural loop with no exit edge is an error
    // unless the caller expects nonterminating programs; an exitless loop
    // doing no observable work is suspect either way.
    const DominatorTree doms = computeDominators(cfg);
    const std::vector<NaturalLoop> loops = findNaturalLoops(cfg, doms);
    if (!options_.allow_nonterminating) {
        for (const NaturalLoop &loop : loops) {
            if (loop.has_exit)
                continue;
            reportBlock(Check::InfiniteLoop, Severity::Error,
                        cfg.blocks[loop.header].first,
                        "natural loop of " +
                            std::to_string(loop.blocks.size()) +
                            " blocks has no exit edge (program cannot "
                            "terminate)");
        }
    }
    checkEmptyLoops(cfg, loops);

    cfg_ = nullptr;
    return std::move(out_);
}

} // namespace

Report
verify(const isa::Program &program, const Options &options)
{
    return Verifier(program, options).run();
}

} // namespace mica::analysis
