#include "analysis/dataflow.hh"

#include <algorithm>
#include <bit>

#include "analysis/engine.hh"
#include "isa/opcode.hh"

namespace mica::analysis {

using isa::Instruction;

RegMask
vmEntryDefs()
{
    return RegMask{1} | (RegMask{1} << isa::kRegSp);
}

RegMask
readMask(const Instruction &instr)
{
    RegMask mask = 0;
    for (const isa::RegOperand &reg : instr.sources())
        mask |= regBit(reg);
    // x0 is hard-wired; reads of it carry no dataflow.
    return mask & ~RegMask{1};
}

RegMask
writeMask(const Instruction &instr)
{
    return instr.hasDest() ? regBit(instr.dest()) : 0;
}

int
intRegCount(RegMask mask)
{
    return std::popcount(mask & 0xffffffffULL);
}

int
fpRegCount(RegMask mask)
{
    return std::popcount(mask >> 32);
}

bool
DominatorTree::dominates(std::size_t a, std::size_t b) const
{
    while (true) {
        if (a == b)
            return true;
        if (b >= idom.size() || idom[b] == kNone || idom[b] == b)
            return false;
        b = idom[b];
    }
}

DominatorTree
computeDominators(const Cfg &cfg)
{
    DominatorTree doms;
    doms.idom.assign(cfg.blocks.size(), DominatorTree::kNone);
    if (cfg.blocks.empty())
        return doms;

    // Cooper–Harvey–Kennedy: iterate intersect() over reverse postorder.
    std::vector<std::size_t> rpo_index(cfg.blocks.size(),
                                       DominatorTree::kNone);
    for (std::size_t i = 0; i < cfg.rpo.size(); ++i)
        rpo_index[cfg.rpo[i]] = i;

    const std::size_t entry = cfg.entryBlock();
    doms.idom[entry] = entry;

    auto intersect = [&](std::size_t a, std::size_t b) {
        while (a != b) {
            while (rpo_index[a] > rpo_index[b])
                a = doms.idom[a];
            while (rpo_index[b] > rpo_index[a])
                b = doms.idom[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b : cfg.rpo) {
            if (b == entry)
                continue;
            std::size_t new_idom = DominatorTree::kNone;
            for (std::size_t p : cfg.blocks[b].preds) {
                if (doms.idom[p] == DominatorTree::kNone)
                    continue; // pred not processed / unreachable
                new_idom = new_idom == DominatorTree::kNone
                    ? p
                    : intersect(p, new_idom);
            }
            if (new_idom != DominatorTree::kNone &&
                doms.idom[b] != new_idom) {
                doms.idom[b] = new_idom;
                changed = true;
            }
        }
    }
    return doms;
}

bool
NaturalLoop::contains(std::size_t block) const
{
    return std::binary_search(blocks.begin(), blocks.end(), block);
}

std::vector<NaturalLoop>
findNaturalLoops(const Cfg &cfg, const DominatorTree &doms)
{
    std::vector<NaturalLoop> loops;
    for (const Edge &edge : cfg.edges) {
        if (!cfg.reachable[edge.from] || !cfg.reachable[edge.to])
            continue;
        if (!doms.dominates(edge.to, edge.from))
            continue; // not a back edge

        // Merge back edges sharing a header into one loop.
        NaturalLoop *loop = nullptr;
        for (NaturalLoop &l : loops)
            if (l.header == edge.to)
                loop = &l;
        if (!loop) {
            loops.push_back({});
            loop = &loops.back();
            loop->header = edge.to;
            loop->blocks = {edge.to};
        }
        loop->latch = edge.from;

        // Body: blocks reaching the latch without passing the header,
        // found by a reverse flood from the latch.
        std::vector<std::size_t> work{edge.from};
        auto insert_sorted = [&](std::size_t b) {
            const auto it =
                std::lower_bound(loop->blocks.begin(), loop->blocks.end(), b);
            if (it != loop->blocks.end() && *it == b)
                return false;
            loop->blocks.insert(it, b);
            return true;
        };
        while (!work.empty()) {
            const std::size_t b = work.back();
            work.pop_back();
            if (!insert_sorted(b))
                continue;
            for (std::size_t p : cfg.blocks[b].preds)
                if (cfg.reachable[p])
                    work.push_back(p);
        }
    }

    std::sort(loops.begin(), loops.end(),
              [](const NaturalLoop &a, const NaturalLoop &b) {
                  return a.header < b.header;
              });

    // Nesting depth: 1 + number of loops properly containing the header.
    for (NaturalLoop &inner : loops) {
        for (const NaturalLoop &outer : loops) {
            if (&inner != &outer && outer.contains(inner.header) &&
                inner.blocks.size() < outer.blocks.size())
                ++inner.depth;
        }
    }

    // Exit detection. Call edges return into the loop, so they are not
    // exits; returns, unresolved indirect terminators and Halt are.
    for (NaturalLoop &loop : loops) {
        for (std::size_t b : loop.blocks) {
            const BasicBlock &bb = cfg.blocks[b];
            if (bb.ends_in_return ||
                cfg.program->code[bb.last].op == isa::Opcode::Halt ||
                (bb.ends_in_indirect && cfg.address_taken.empty())) {
                loop.has_exit = true;
                break;
            }
        }
        if (loop.has_exit)
            continue;
        for (const Edge &edge : cfg.edges) {
            if (edge.kind == EdgeKind::Call)
                continue;
            if (loop.contains(edge.from) && !loop.contains(edge.to)) {
                loop.has_exit = true;
                break;
            }
        }
    }
    return loops;
}

namespace {

/** Per-block union of registers written, shared by the mask problems. */
std::vector<RegMask>
blockWriteMasks(const Cfg &cfg)
{
    std::vector<RegMask> gen(cfg.blocks.size(), 0);
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b)
        for (std::size_t i = cfg.blocks[b].first; i <= cfg.blocks[b].last;
             ++i)
            gen[b] |= writeMask(cfg.program->code[i]);
    return gen;
}

/**
 * Forward definedness over register masks, parameterized on the join:
 * union yields possible-defs (some path defines), intersection yields
 * must-defs (every path defines). Both share the no-kill transfer
 * out = in | gen (a write only ever adds definedness).
 */
template <bool kMust>
struct DefinednessProblem
{
    using Value = RegMask;
    static constexpr Direction kDirection = Direction::Forward;

    explicit DefinednessProblem(const Cfg &cfg) : gen(blockWriteMasks(cfg))
    {
    }

    [[nodiscard]] Value identity() const { return kMust ? ~RegMask{0} : 0; }
    [[nodiscard]] Value boundary() const { return vmEntryDefs(); }
    void
    join(Value &into, const Value &from, std::size_t) const
    {
        if constexpr (kMust)
            into &= from;
        else
            into |= from;
    }
    [[nodiscard]] Value
    transfer(const Cfg &, std::size_t block, const Value &in) const
    {
        return in | gen[block];
    }
    [[nodiscard]] std::size_t latticeHeight() const { return 64; }

    std::vector<RegMask> gen;
};

/** Backward liveness with the per-instruction kill/gen walk. */
struct LivenessProblem
{
    using Value = RegMask;
    static constexpr Direction kDirection = Direction::Backward;

    [[nodiscard]] Value identity() const { return 0; }
    [[nodiscard]] Value boundary() const { return 0; }
    void
    join(Value &into, const Value &from, std::size_t) const
    {
        into |= from;
    }
    [[nodiscard]] Value
    transfer(const Cfg &cfg, std::size_t block, const Value &out) const
    {
        RegMask in = out;
        for (std::size_t i = cfg.blocks[block].last + 1;
             i-- > cfg.blocks[block].first;) {
            const Instruction &instr = cfg.program->code[i];
            in &= ~writeMask(instr);
            in |= readMask(instr);
        }
        return in;
    }
    [[nodiscard]] std::size_t latticeHeight() const { return 64; }
};

} // namespace

PossibleDefs
computePossibleDefs(const Cfg &cfg)
{
    DefinednessProblem<false> problem(cfg);
    auto fixpoint = solveDataflow(cfg, problem);
    return {std::move(fixpoint.in), std::move(fixpoint.out)};
}

MustDefs
computeMustDefs(const Cfg &cfg)
{
    DefinednessProblem<true> problem(cfg);
    auto fixpoint = solveDataflow(cfg, problem);
    // Unreachable blocks rest at the intersection identity (all-defined);
    // clamp them to "nothing defined" so callers never mistake them for
    // proven facts.
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        if (!cfg.reachable[b]) {
            fixpoint.in[b] = 0;
            fixpoint.out[b] = 0;
        }
    }
    return {std::move(fixpoint.in), std::move(fixpoint.out)};
}

Liveness
computeLiveness(const Cfg &cfg)
{
    LivenessProblem problem;
    auto fixpoint = solveDataflow(cfg, problem);
    return {std::move(fixpoint.in), std::move(fixpoint.out)};
}

} // namespace mica::analysis
