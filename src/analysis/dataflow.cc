#include "analysis/dataflow.hh"

#include <algorithm>
#include <bit>

#include "isa/opcode.hh"

namespace mica::analysis {

using isa::Instruction;

RegMask
readMask(const Instruction &instr)
{
    RegMask mask = 0;
    for (const isa::RegOperand &reg : instr.sources())
        mask |= regBit(reg);
    // x0 is hard-wired; reads of it carry no dataflow.
    return mask & ~RegMask{1};
}

RegMask
writeMask(const Instruction &instr)
{
    return instr.hasDest() ? regBit(instr.dest()) : 0;
}

int
intRegCount(RegMask mask)
{
    return std::popcount(mask & 0xffffffffULL);
}

int
fpRegCount(RegMask mask)
{
    return std::popcount(mask >> 32);
}

bool
DominatorTree::dominates(std::size_t a, std::size_t b) const
{
    while (true) {
        if (a == b)
            return true;
        if (b >= idom.size() || idom[b] == kNone || idom[b] == b)
            return false;
        b = idom[b];
    }
}

DominatorTree
computeDominators(const Cfg &cfg)
{
    DominatorTree doms;
    doms.idom.assign(cfg.blocks.size(), DominatorTree::kNone);
    if (cfg.blocks.empty())
        return doms;

    // Cooper–Harvey–Kennedy: iterate intersect() over reverse postorder.
    std::vector<std::size_t> rpo_index(cfg.blocks.size(),
                                       DominatorTree::kNone);
    for (std::size_t i = 0; i < cfg.rpo.size(); ++i)
        rpo_index[cfg.rpo[i]] = i;

    const std::size_t entry = cfg.entryBlock();
    doms.idom[entry] = entry;

    auto intersect = [&](std::size_t a, std::size_t b) {
        while (a != b) {
            while (rpo_index[a] > rpo_index[b])
                a = doms.idom[a];
            while (rpo_index[b] > rpo_index[a])
                b = doms.idom[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b : cfg.rpo) {
            if (b == entry)
                continue;
            std::size_t new_idom = DominatorTree::kNone;
            for (std::size_t p : cfg.blocks[b].preds) {
                if (doms.idom[p] == DominatorTree::kNone)
                    continue; // pred not processed / unreachable
                new_idom = new_idom == DominatorTree::kNone
                    ? p
                    : intersect(p, new_idom);
            }
            if (new_idom != DominatorTree::kNone &&
                doms.idom[b] != new_idom) {
                doms.idom[b] = new_idom;
                changed = true;
            }
        }
    }
    return doms;
}

bool
NaturalLoop::contains(std::size_t block) const
{
    return std::binary_search(blocks.begin(), blocks.end(), block);
}

std::vector<NaturalLoop>
findNaturalLoops(const Cfg &cfg, const DominatorTree &doms)
{
    std::vector<NaturalLoop> loops;
    for (const Edge &edge : cfg.edges) {
        if (!cfg.reachable[edge.from] || !cfg.reachable[edge.to])
            continue;
        if (!doms.dominates(edge.to, edge.from))
            continue; // not a back edge

        // Merge back edges sharing a header into one loop.
        NaturalLoop *loop = nullptr;
        for (NaturalLoop &l : loops)
            if (l.header == edge.to)
                loop = &l;
        if (!loop) {
            loops.push_back({});
            loop = &loops.back();
            loop->header = edge.to;
            loop->blocks = {edge.to};
        }
        loop->latch = edge.from;

        // Body: blocks reaching the latch without passing the header,
        // found by a reverse flood from the latch.
        std::vector<std::size_t> work{edge.from};
        auto insert_sorted = [&](std::size_t b) {
            const auto it =
                std::lower_bound(loop->blocks.begin(), loop->blocks.end(), b);
            if (it != loop->blocks.end() && *it == b)
                return false;
            loop->blocks.insert(it, b);
            return true;
        };
        while (!work.empty()) {
            const std::size_t b = work.back();
            work.pop_back();
            if (!insert_sorted(b))
                continue;
            for (std::size_t p : cfg.blocks[b].preds)
                if (cfg.reachable[p])
                    work.push_back(p);
        }
    }

    std::sort(loops.begin(), loops.end(),
              [](const NaturalLoop &a, const NaturalLoop &b) {
                  return a.header < b.header;
              });

    // Nesting depth: 1 + number of loops properly containing the header.
    for (NaturalLoop &inner : loops) {
        for (const NaturalLoop &outer : loops) {
            if (&inner != &outer && outer.contains(inner.header) &&
                inner.blocks.size() < outer.blocks.size())
                ++inner.depth;
        }
    }

    // Exit detection. Call edges return into the loop, so they are not
    // exits; returns, unresolved indirect terminators and Halt are.
    for (NaturalLoop &loop : loops) {
        for (std::size_t b : loop.blocks) {
            const BasicBlock &bb = cfg.blocks[b];
            if (bb.ends_in_return ||
                cfg.program->code[bb.last].op == isa::Opcode::Halt ||
                (bb.ends_in_indirect && cfg.address_taken.empty())) {
                loop.has_exit = true;
                break;
            }
        }
        if (loop.has_exit)
            continue;
        for (const Edge &edge : cfg.edges) {
            if (edge.kind == EdgeKind::Call)
                continue;
            if (loop.contains(edge.from) && !loop.contains(edge.to)) {
                loop.has_exit = true;
                break;
            }
        }
    }
    return loops;
}

PossibleDefs
computePossibleDefs(const Cfg &cfg)
{
    PossibleDefs defs;
    defs.in.assign(cfg.blocks.size(), 0);
    defs.out.assign(cfg.blocks.size(), 0);
    if (cfg.blocks.empty())
        return defs;

    std::vector<RegMask> gen(cfg.blocks.size(), 0);
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b)
        for (std::size_t i = cfg.blocks[b].first; i <= cfg.blocks[b].last;
             ++i)
            gen[b] |= writeMask(cfg.program->code[i]);

    // At reset the VM defines x0 (hard-wired) and the stack pointer.
    const RegMask entry_mask =
        RegMask{1} | (RegMask{1} << isa::kRegSp);

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b : cfg.rpo) {
            RegMask in = b == cfg.entryBlock() ? entry_mask : 0;
            for (std::size_t p : cfg.blocks[b].preds)
                in |= defs.out[p];
            const RegMask out = in | gen[b];
            if (in != defs.in[b] || out != defs.out[b]) {
                defs.in[b] = in;
                defs.out[b] = out;
                changed = true;
            }
        }
    }
    return defs;
}

Liveness
computeLiveness(const Cfg &cfg)
{
    Liveness live;
    live.in.assign(cfg.blocks.size(), 0);
    live.out.assign(cfg.blocks.size(), 0);

    bool changed = true;
    while (changed) {
        changed = false;
        for (auto it = cfg.rpo.rbegin(); it != cfg.rpo.rend(); ++it) {
            const std::size_t b = *it;
            RegMask out = 0;
            for (std::size_t s : cfg.blocks[b].succs)
                out |= live.in[s];
            RegMask in = out;
            for (std::size_t i = cfg.blocks[b].last + 1;
                 i-- > cfg.blocks[b].first;) {
                const Instruction &instr = cfg.program->code[i];
                in &= ~writeMask(instr);
                in |= readMask(instr);
            }
            if (in != live.in[b] || out != live.out[b]) {
                live.in[b] = in;
                live.out[b] = out;
                changed = true;
            }
        }
    }
    return live;
}

} // namespace mica::analysis
