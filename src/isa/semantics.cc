#include "isa/semantics.hh"

#include <cassert>
#include <limits>

namespace mica::isa {

bool
isIntAlu(Opcode op)
{
    const Format format = opcodeInfo(op).format;
    return format == Format::RRR || format == Format::RRI;
}

bool
usesImmOperand(Opcode op)
{
    return opcodeInfo(op).format == Format::RRI;
}

std::int64_t
evalIntAlu(Opcode op, std::int64_t a, std::int64_t b)
{
    assert(isIntAlu(op) && "evalIntAlu: not an integer ALU opcode");
    const auto ua = static_cast<std::uint64_t>(a);
    const auto ub = static_cast<std::uint64_t>(b);
    switch (op) {
      case Opcode::Add:
      case Opcode::Addi:
        return static_cast<std::int64_t>(ua + ub);
      case Opcode::Sub:
        return static_cast<std::int64_t>(ua - ub);
      case Opcode::Mul:
        return static_cast<std::int64_t>(ua * ub);
      case Opcode::Div:
        // RISC-V semantics: x/0 == -1; overflow wraps to dividend.
        if (b == 0)
            return -1;
        if (a == std::numeric_limits<std::int64_t>::min() && b == -1)
            return a;
        return a / b;
      case Opcode::Rem:
        if (b == 0)
            return a;
        if (a == std::numeric_limits<std::int64_t>::min() && b == -1)
            return 0;
        return a % b;
      case Opcode::And:
      case Opcode::Andi:
        return a & b;
      case Opcode::Or:
      case Opcode::Ori:
        return a | b;
      case Opcode::Xor:
      case Opcode::Xori:
        return a ^ b;
      case Opcode::Sll:
      case Opcode::Slli:
        return static_cast<std::int64_t>(ua << (ub & 63));
      case Opcode::Srl:
      case Opcode::Srli:
        return static_cast<std::int64_t>(ua >> (ub & 63));
      case Opcode::Sra:
      case Opcode::Srai:
        return a >> (ub & 63);
      case Opcode::Slt:
      case Opcode::Slti:
        return a < b ? 1 : 0;
      case Opcode::Sltu:
        return ua < ub ? 1 : 0;
      default:
        assert(false && "evalIntAlu: unhandled ALU opcode");
        return 0;
    }
}

bool
evalBranch(Opcode op, std::int64_t a, std::int64_t b)
{
    const auto ua = static_cast<std::uint64_t>(a);
    const auto ub = static_cast<std::uint64_t>(b);
    switch (op) {
      case Opcode::Beq: return a == b;
      case Opcode::Bne: return a != b;
      case Opcode::Blt: return a < b;
      case Opcode::Bge: return a >= b;
      case Opcode::Bltu: return ua < ub;
      case Opcode::Bgeu: return ua >= ub;
      default:
        assert(false && "evalBranch: not a conditional branch");
        return false;
    }
}

std::int64_t
secondAluOperand(const Instruction &instr, std::int64_t rs2_value)
{
    return usesImmOperand(instr.op) ? instr.imm : rs2_value;
}

} // namespace mica::isa
