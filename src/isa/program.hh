/**
 * @file
 * A loadable SRISC program image: code, initial data, and load addresses.
 */

#ifndef MICAPHASE_ISA_PROGRAM_HH
#define MICAPHASE_ISA_PROGRAM_HH

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace mica::isa {

/** Default segment load addresses used by generated programs. */
constexpr std::uint64_t kDefaultCodeBase = 0x0000000000010000ULL;
constexpr std::uint64_t kDefaultDataBase = 0x0000000001000000ULL;
constexpr std::uint64_t kDefaultStackTop = 0x00000000f0000000ULL;

/** A complete program image ready to load into the VM. */
struct Program
{
    std::string name;
    std::vector<Instruction> code;
    std::vector<std::uint8_t> data;

    std::uint64_t code_base = kDefaultCodeBase;
    std::uint64_t data_base = kDefaultDataBase;
    std::uint64_t stack_top = kDefaultStackTop;

    /** Entry point (pc of the first executed instruction). */
    [[nodiscard]] std::uint64_t entry() const { return code_base; }

    /** pc of instruction index i. */
    [[nodiscard]] std::uint64_t
    pcOf(std::size_t index) const
    {
        return code_base + index * kInstrBytes;
    }

    /** Instruction index of a pc; pc must be in range and aligned. */
    [[nodiscard]] std::size_t
    indexOf(std::uint64_t pc) const
    {
        assert(containsPc(pc) &&
               "Program::indexOf: pc out of range or unaligned");
        return static_cast<std::size_t>((pc - code_base) / kInstrBytes);
    }

    /** True when pc addresses an instruction of this program. */
    [[nodiscard]] bool
    containsPc(std::uint64_t pc) const
    {
        return pc >= code_base && pc < code_base + code.size() * kInstrBytes
            && (pc - code_base) % kInstrBytes == 0;
    }
};

} // namespace mica::isa

#endif // MICAPHASE_ISA_PROGRAM_HH
