/**
 * @file
 * SRISC instruction representation, binary encoding and operand model.
 *
 * Instructions are 8 bytes, encoded as
 *   [63:52] opcode | [51:46] rd | [45:40] rs1 | [39:34] rs2 | [33:0] imm
 * with a 34-bit sign-extended immediate. The decoded form is what the VM
 * executes and what the instrumentation layer observes.
 */

#ifndef MICAPHASE_ISA_INSTRUCTION_HH
#define MICAPHASE_ISA_INSTRUCTION_HH

#include <cassert>
#include <cstdint>
#include <string>

#include "isa/opcode.hh"

namespace mica::isa {

/** Immediate field width in the binary encoding. */
constexpr int kImmBits = 34;
constexpr std::int64_t kImmMax = (1LL << (kImmBits - 1)) - 1;
constexpr std::int64_t kImmMin = -(1LL << (kImmBits - 1));

/** A register operand, tagged with its register file. */
struct RegOperand
{
    enum class File : std::uint8_t { Int, Fp };

    File file = File::Int;
    std::uint8_t index = 0;

    bool operator==(const RegOperand &) const = default;
};

/** Fixed-capacity list of register operands (an instruction reads <= 3). */
struct RegList
{
    RegOperand regs[3];
    std::uint8_t count = 0;

    void
    push(RegOperand::File file, std::uint8_t index)
    {
        assert(count < sizeof(regs) / sizeof(regs[0]) &&
               "RegList::push: more than 3 register operands");
        regs[count++] = {file, index};
    }

    const RegOperand *begin() const { return regs; }
    const RegOperand *end() const { return regs + count; }
};

/** One decoded SRISC instruction. */
struct Instruction
{
    Opcode op = Opcode::Nop;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::int64_t imm = 0;

    bool operator==(const Instruction &) const = default;

    /** Metadata shorthand. */
    [[nodiscard]] const OpcodeInfo &info() const { return opcodeInfo(op); }

    /**
     * Register source operands actually read by this instruction, in
     * operand order, with x0 reads included (the VM reads it as zero; the
     * characterization counts it as an operand just like MICA counts
     * explicit x86 operands).
     */
    [[nodiscard]] RegList sources() const;

    /** Register destination, if any. Writes to x0 are discarded. */
    [[nodiscard]] bool hasDest() const;
    [[nodiscard]] RegOperand dest() const;

    /** True if this is a call (writes the link register). */
    [[nodiscard]] bool isCall() const;

    /** True if this is a return (indirect jump through the link register,
     * discarding the link result). */
    [[nodiscard]] bool isReturn() const;

    /** True for register/immediate moves (addi rd, x0, imm and fmov). */
    [[nodiscard]] bool isMove() const;

    /** Disassemble to text ("add x3, x4, x5"). */
    [[nodiscard]] std::string disassemble() const;
};

/**
 * Encode to the 64-bit binary form.
 * Throws std::out_of_range when a field does not fit.
 */
[[nodiscard]] std::uint64_t encode(const Instruction &instr);

/**
 * Decode from the 64-bit binary form.
 * Throws std::invalid_argument for an unknown opcode field.
 */
[[nodiscard]] Instruction decode(std::uint64_t word);

} // namespace mica::isa

#endif // MICAPHASE_ISA_INSTRUCTION_HH
