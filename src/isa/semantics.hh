/**
 * @file
 * Executable semantics accessors for the integer subset of SRISC.
 *
 * The VM (vm/cpu.cc) is the authoritative interpreter; these helpers expose
 * the exact same arithmetic to static analyses that need to fold constants
 * or evaluate branch conditions without instantiating a Cpu: the value-range
 * propagation and the verifier's resolvable-address checks. Keeping the two
 * in lockstep is a correctness requirement — a static "proof" computed with
 * semantics that diverge from the VM would be no proof at all — so
 * tests/test_value_range.cc cross-checks evalIntAlu against vm::Cpu for
 * every foldable opcode.
 */

#ifndef MICAPHASE_ISA_SEMANTICS_HH
#define MICAPHASE_ISA_SEMANTICS_HH

#include <cstdint>

#include "isa/instruction.hh"
#include "isa/opcode.hh"

namespace mica::isa {

/**
 * True when the opcode is an integer ALU operation whose result is a pure
 * function of its integer operands (formats RRR and RRI). These are the
 * opcodes evalIntAlu can fold.
 */
[[nodiscard]] bool isIntAlu(Opcode op);

/** True when the opcode takes its second operand from the immediate field
 *  (format RRI) rather than from rs2. */
[[nodiscard]] bool usesImmOperand(Opcode op);

/**
 * Evaluate an integer ALU opcode exactly as the VM does: RISC-V division
 * conventions (x/0 == -1, INT64_MIN / -1 wraps to the dividend; x%0 == x),
 * shift amounts masked to 6 bits, two's-complement wraparound throughout.
 * `b` is the rs2 value for RRR opcodes and the immediate for RRI opcodes.
 * Precondition: isIntAlu(op).
 */
[[nodiscard]] std::int64_t evalIntAlu(Opcode op, std::int64_t a,
                                      std::int64_t b);

/**
 * Evaluate a conditional-branch comparison (Beq..Bgeu) on concrete operand
 * values; returns the taken outcome. Precondition: isCondBranch(op).
 */
[[nodiscard]] bool evalBranch(Opcode op, std::int64_t a, std::int64_t b);

/**
 * The second ALU operand of an instruction under the RRR/RRI split:
 * the immediate for RRI opcodes, otherwise the provided rs2 value.
 */
[[nodiscard]] std::int64_t secondAluOperand(const Instruction &instr,
                                            std::int64_t rs2_value);

} // namespace mica::isa

#endif // MICAPHASE_ISA_SEMANTICS_HH
