#include "isa/opcode.hh"

#include <array>
#include <cassert>

namespace mica::isa {

namespace {

constexpr std::size_t kNumOpcodes =
    static_cast<std::size_t>(Opcode::NumOpcodes);

constexpr std::array<OpcodeInfo, kNumOpcodes> kOpcodeTable = {{
    // mnemonic, format, group, mem_bytes
    {"add",    Format::RRR,    OpGroup::IntArith,   0}, // Add
    {"sub",    Format::RRR,    OpGroup::IntArith,   0}, // Sub
    {"mul",    Format::RRR,    OpGroup::IntMul,     0}, // Mul
    {"div",    Format::RRR,    OpGroup::IntDiv,     0}, // Div
    {"rem",    Format::RRR,    OpGroup::IntDiv,     0}, // Rem
    {"and",    Format::RRR,    OpGroup::IntLogic,   0}, // And
    {"or",     Format::RRR,    OpGroup::IntLogic,   0}, // Or
    {"xor",    Format::RRR,    OpGroup::IntLogic,   0}, // Xor
    {"sll",    Format::RRR,    OpGroup::IntShift,   0}, // Sll
    {"srl",    Format::RRR,    OpGroup::IntShift,   0}, // Srl
    {"sra",    Format::RRR,    OpGroup::IntShift,   0}, // Sra
    {"slt",    Format::RRR,    OpGroup::IntCmp,     0}, // Slt
    {"sltu",   Format::RRR,    OpGroup::IntCmp,     0}, // Sltu
    {"addi",   Format::RRI,    OpGroup::IntArith,   0}, // Addi
    {"andi",   Format::RRI,    OpGroup::IntLogic,   0}, // Andi
    {"ori",    Format::RRI,    OpGroup::IntLogic,   0}, // Ori
    {"xori",   Format::RRI,    OpGroup::IntLogic,   0}, // Xori
    {"slli",   Format::RRI,    OpGroup::IntShift,   0}, // Slli
    {"srli",   Format::RRI,    OpGroup::IntShift,   0}, // Srli
    {"srai",   Format::RRI,    OpGroup::IntShift,   0}, // Srai
    {"slti",   Format::RRI,    OpGroup::IntCmp,     0}, // Slti
    {"lb",     Format::Load,   OpGroup::Load,       1}, // Lb
    {"lh",     Format::Load,   OpGroup::Load,       2}, // Lh
    {"lw",     Format::Load,   OpGroup::Load,       4}, // Lw
    {"ld",     Format::Load,   OpGroup::Load,       8}, // Ld
    {"sb",     Format::Store,  OpGroup::Store,      1}, // Sb
    {"sh",     Format::Store,  OpGroup::Store,      2}, // Sh
    {"sw",     Format::Store,  OpGroup::Store,      4}, // Sw
    {"sd",     Format::Store,  OpGroup::Store,      8}, // Sd
    {"fld",    Format::FLoad,  OpGroup::Load,       8}, // Fld
    {"fsd",    Format::FStore, OpGroup::Store,      8}, // Fsd
    {"fadd",   Format::FRRR,   OpGroup::FpArith,    0}, // Fadd
    {"fsub",   Format::FRRR,   OpGroup::FpArith,    0}, // Fsub
    {"fmul",   Format::FRRR,   OpGroup::FpMul,      0}, // Fmul
    {"fdiv",   Format::FRRR,   OpGroup::FpDiv,      0}, // Fdiv
    {"fsqrt",  Format::FRR,    OpGroup::FpSqrt,     0}, // Fsqrt
    {"fmadd",  Format::FMA,    OpGroup::FpMul,      0}, // Fmadd
    {"fneg",   Format::FRR,    OpGroup::FpArith,    0}, // Fneg
    {"fabs",   Format::FRR,    OpGroup::FpArith,    0}, // Fabs
    {"fmov",   Format::FRR,    OpGroup::Other,      0}, // Fmov
    {"fcmplt", Format::FCmp,   OpGroup::FpCmp,      0}, // Fcmplt
    {"fcmple", Format::FCmp,   OpGroup::FpCmp,      0}, // Fcmple
    {"fcmpeq", Format::FCmp,   OpGroup::FpCmp,      0}, // Fcmpeq
    {"cvtif",  Format::CvtIF,  OpGroup::FpCvt,      0}, // Cvtif
    {"cvtfi",  Format::CvtFI,  OpGroup::FpCvt,      0}, // Cvtfi
    {"beq",    Format::Branch, OpGroup::CondBranch, 0}, // Beq
    {"bne",    Format::Branch, OpGroup::CondBranch, 0}, // Bne
    {"blt",    Format::Branch, OpGroup::CondBranch, 0}, // Blt
    {"bge",    Format::Branch, OpGroup::CondBranch, 0}, // Bge
    {"bltu",   Format::Branch, OpGroup::CondBranch, 0}, // Bltu
    {"bgeu",   Format::Branch, OpGroup::CondBranch, 0}, // Bgeu
    {"jal",    Format::Jal,    OpGroup::Jump,       0}, // Jal
    {"jalr",   Format::Jalr,   OpGroup::Jump,       0}, // Jalr
    {"nop",    Format::None,   OpGroup::Other,      0}, // Nop
    {"halt",   Format::None,   OpGroup::Other,      0}, // Halt
}};

constexpr std::array<std::string_view, kNumIntRegs> kIntRegNames = {
    "x0",  "x1",  "x2",  "x3",  "x4",  "x5",  "x6",  "x7",
    "x8",  "x9",  "x10", "x11", "x12", "x13", "x14", "x15",
    "x16", "x17", "x18", "x19", "x20", "x21", "x22", "x23",
    "x24", "x25", "x26", "x27", "x28", "x29", "x30", "x31",
};

constexpr std::array<std::string_view, kNumFpRegs> kFpRegNames = {
    "f0",  "f1",  "f2",  "f3",  "f4",  "f5",  "f6",  "f7",
    "f8",  "f9",  "f10", "f11", "f12", "f13", "f14", "f15",
    "f16", "f17", "f18", "f19", "f20", "f21", "f22", "f23",
    "f24", "f25", "f26", "f27", "f28", "f29", "f30", "f31",
};

} // namespace

const OpcodeInfo &
opcodeInfo(Opcode op)
{
    const auto idx = static_cast<std::size_t>(op);
    assert(idx < kNumOpcodes);
    return kOpcodeTable[idx];
}

std::string_view
mnemonic(Opcode op)
{
    return opcodeInfo(op).mnemonic;
}

Opcode
opcodeFromMnemonic(std::string_view name)
{
    for (std::size_t i = 0; i < kNumOpcodes; ++i)
        if (kOpcodeTable[i].mnemonic == name)
            return static_cast<Opcode>(i);
    return Opcode::NumOpcodes;
}

std::string_view
intRegName(std::uint8_t index)
{
    // Total on purpose: the verifier disassembles malformed instructions
    // whose register fields may be out of range.
    if (index >= kNumIntRegs)
        return "x??";
    return kIntRegNames[index];
}

std::string_view
fpRegName(std::uint8_t index)
{
    if (index >= kNumFpRegs)
        return "f??";
    return kFpRegNames[index];
}

bool
isCondBranch(Opcode op)
{
    return opcodeInfo(op).group == OpGroup::CondBranch;
}

bool
isControl(Opcode op)
{
    const OpGroup g = opcodeInfo(op).group;
    return g == OpGroup::CondBranch || g == OpGroup::Jump;
}

bool
isLoad(Opcode op)
{
    return opcodeInfo(op).group == OpGroup::Load;
}

bool
isStore(Opcode op)
{
    return opcodeInfo(op).group == OpGroup::Store;
}

bool
isFpOp(Opcode op)
{
    switch (opcodeInfo(op).group) {
      case OpGroup::FpArith:
      case OpGroup::FpMul:
      case OpGroup::FpDiv:
      case OpGroup::FpSqrt:
      case OpGroup::FpCmp:
      case OpGroup::FpCvt:
        return true;
      default:
        return op == Opcode::Fld || op == Opcode::Fsd ||
               op == Opcode::Fmov;
    }
}

} // namespace mica::isa
