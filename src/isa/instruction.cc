#include "isa/instruction.hh"

#include <sstream>
#include <stdexcept>

namespace mica::isa {

namespace {

using File = RegOperand::File;

} // namespace

RegList
Instruction::sources() const
{
    RegList out;
    switch (info().format) {
      case Format::None:
        break;
      case Format::RRR:
        out.push(File::Int, rs1);
        out.push(File::Int, rs2);
        break;
      case Format::RRI:
        out.push(File::Int, rs1);
        break;
      case Format::Load:
      case Format::FLoad:
        out.push(File::Int, rs1);
        break;
      case Format::Store:
        out.push(File::Int, rs1);
        out.push(File::Int, rs2);
        break;
      case Format::FStore:
        out.push(File::Int, rs1);
        out.push(File::Fp, rs2);
        break;
      case Format::FRRR:
        out.push(File::Fp, rs1);
        out.push(File::Fp, rs2);
        break;
      case Format::FRR:
        out.push(File::Fp, rs1);
        break;
      case Format::FMA:
        out.push(File::Fp, rd); // accumulator is read-modify-write
        out.push(File::Fp, rs1);
        out.push(File::Fp, rs2);
        break;
      case Format::FCmp:
        out.push(File::Fp, rs1);
        out.push(File::Fp, rs2);
        break;
      case Format::CvtIF:
        out.push(File::Int, rs1);
        break;
      case Format::CvtFI:
        out.push(File::Fp, rs1);
        break;
      case Format::Branch:
        out.push(File::Int, rs1);
        out.push(File::Int, rs2);
        break;
      case Format::Jal:
        break;
      case Format::Jalr:
        out.push(File::Int, rs1);
        break;
    }
    return out;
}

bool
Instruction::hasDest() const
{
    switch (info().format) {
      case Format::None:
      case Format::Store:
      case Format::FStore:
      case Format::Branch:
        return false;
      case Format::Jal:
      case Format::Jalr:
      case Format::RRR:
      case Format::RRI:
      case Format::Load:
      case Format::FCmp:
      case Format::CvtFI:
        return rd != kRegZero; // integer x0 writes are discarded
      default:
        return true; // fp destinations always materialize
    }
}

RegOperand
Instruction::dest() const
{
    switch (info().format) {
      case Format::FLoad:
      case Format::FRRR:
      case Format::FRR:
      case Format::FMA:
      case Format::CvtIF:
        return {File::Fp, rd};
      default:
        return {File::Int, rd};
    }
}

bool
Instruction::isCall() const
{
    return (op == Opcode::Jal || op == Opcode::Jalr) && rd == kRegRa;
}

bool
Instruction::isReturn() const
{
    return op == Opcode::Jalr && rd == kRegZero && rs1 == kRegRa;
}

bool
Instruction::isMove() const
{
    return op == Opcode::Fmov ||
           (op == Opcode::Addi && rs1 == kRegZero) ||
           (op == Opcode::Add &&
            (rs1 == kRegZero || rs2 == kRegZero));
}

std::string
Instruction::disassemble() const
{
    std::ostringstream os;
    os << mnemonic(op);
    const auto pad = [&]() { os << " "; };
    switch (info().format) {
      case Format::None:
        break;
      case Format::RRR:
        pad();
        os << intRegName(rd) << ", " << intRegName(rs1) << ", "
           << intRegName(rs2);
        break;
      case Format::RRI:
        pad();
        os << intRegName(rd) << ", " << intRegName(rs1) << ", " << imm;
        break;
      case Format::Load:
        pad();
        os << intRegName(rd) << ", " << imm << "(" << intRegName(rs1) << ")";
        break;
      case Format::Store:
        pad();
        os << intRegName(rs2) << ", " << imm << "(" << intRegName(rs1)
           << ")";
        break;
      case Format::FLoad:
        pad();
        os << fpRegName(rd) << ", " << imm << "(" << intRegName(rs1) << ")";
        break;
      case Format::FStore:
        pad();
        os << fpRegName(rs2) << ", " << imm << "(" << intRegName(rs1)
           << ")";
        break;
      case Format::FRRR:
        pad();
        os << fpRegName(rd) << ", " << fpRegName(rs1) << ", "
           << fpRegName(rs2);
        break;
      case Format::FRR:
        pad();
        os << fpRegName(rd) << ", " << fpRegName(rs1);
        break;
      case Format::FMA:
        pad();
        os << fpRegName(rd) << ", " << fpRegName(rs1) << ", "
           << fpRegName(rs2);
        break;
      case Format::FCmp:
        pad();
        os << intRegName(rd) << ", " << fpRegName(rs1) << ", "
           << fpRegName(rs2);
        break;
      case Format::CvtIF:
        pad();
        os << fpRegName(rd) << ", " << intRegName(rs1);
        break;
      case Format::CvtFI:
        pad();
        os << intRegName(rd) << ", " << fpRegName(rs1);
        break;
      case Format::Branch:
        pad();
        os << intRegName(rs1) << ", " << intRegName(rs2) << ", " << imm;
        break;
      case Format::Jal:
        pad();
        os << intRegName(rd) << ", " << imm;
        break;
      case Format::Jalr:
        pad();
        os << intRegName(rd) << ", " << intRegName(rs1) << ", " << imm;
        break;
    }
    return os.str();
}

std::uint64_t
encode(const Instruction &instr)
{
    if (static_cast<std::uint16_t>(instr.op) >=
        static_cast<std::uint16_t>(Opcode::NumOpcodes))
        throw std::out_of_range("encode: invalid opcode");
    if (instr.rd >= kNumIntRegs || instr.rs1 >= kNumIntRegs ||
        instr.rs2 >= kNumIntRegs)
        throw std::out_of_range("encode: register index out of range");
    if (instr.imm < kImmMin || instr.imm > kImmMax)
        throw std::out_of_range("encode: immediate out of range");

    const std::uint64_t imm_field =
        static_cast<std::uint64_t>(instr.imm) & ((1ULL << kImmBits) - 1);
    return (static_cast<std::uint64_t>(instr.op) << 52) |
           (static_cast<std::uint64_t>(instr.rd) << 46) |
           (static_cast<std::uint64_t>(instr.rs1) << 40) |
           (static_cast<std::uint64_t>(instr.rs2) << 34) |
           imm_field;
}

Instruction
decode(std::uint64_t word)
{
    Instruction instr;
    const std::uint64_t op_field = word >> 52;
    if (op_field >= static_cast<std::uint64_t>(Opcode::NumOpcodes))
        throw std::invalid_argument("decode: unknown opcode field");
    instr.op = static_cast<Opcode>(op_field);
    instr.rd = static_cast<std::uint8_t>((word >> 46) & 0x3f);
    instr.rs1 = static_cast<std::uint8_t>((word >> 40) & 0x3f);
    instr.rs2 = static_cast<std::uint8_t>((word >> 34) & 0x3f);
    if (instr.rd >= kNumIntRegs || instr.rs1 >= kNumIntRegs ||
        instr.rs2 >= kNumIntRegs)
        throw std::invalid_argument("decode: register index out of range");

    std::uint64_t imm = word & ((1ULL << kImmBits) - 1);
    // Sign-extend the 34-bit immediate.
    if (imm & (1ULL << (kImmBits - 1)))
        imm |= ~((1ULL << kImmBits) - 1);
    instr.imm = static_cast<std::int64_t>(imm);
    return instr;
}

} // namespace mica::isa
