/**
 * @file
 * Opcode set and static metadata of the SRISC mini-ISA.
 *
 * SRISC is the synthetic RISC instruction set our benchmark programs are
 * written in. It stands in for the x86 binaries of the paper's (licensed)
 * benchmark suites: the characterization methodology only consumes the
 * dynamic instruction stream's microarchitecture-independent properties
 * (operation classes, register operands, memory addresses, branch outcomes),
 * all of which SRISC exposes.
 *
 * The ISA is deliberately RISC-V-flavoured: 32 integer registers (x0 wired
 * to zero), 32 floating-point registers, byte-addressed memory and 8-byte
 * fixed-width instructions.
 */

#ifndef MICAPHASE_ISA_OPCODE_HH
#define MICAPHASE_ISA_OPCODE_HH

#include <cstdint>
#include <string_view>

namespace mica::isa {

/** Number of integer and floating-point architectural registers. */
constexpr int kNumIntRegs = 32;
constexpr int kNumFpRegs = 32;

/** Conventional register roles used by generated code. */
constexpr std::uint8_t kRegZero = 0; ///< hard-wired zero
constexpr std::uint8_t kRegRa = 1;   ///< return address (link register)
constexpr std::uint8_t kRegSp = 2;   ///< stack pointer

/** Size of one encoded instruction in bytes (fixed width). */
constexpr std::uint64_t kInstrBytes = 8;

/** All SRISC opcodes. */
enum class Opcode : std::uint16_t
{
    // Integer register-register ALU.
    Add, Sub, Mul, Div, Rem, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu,
    // Integer register-immediate ALU.
    Addi, Andi, Ori, Xori, Slli, Srli, Srai, Slti,
    // Integer loads (sign-extending) and stores.
    Lb, Lh, Lw, Ld, Sb, Sh, Sw, Sd,
    // Floating-point load/store (64-bit IEEE double).
    Fld, Fsd,
    // Floating-point arithmetic.
    Fadd, Fsub, Fmul, Fdiv, Fsqrt, Fmadd, Fneg, Fabs, Fmov,
    // Floating-point compares (write an integer register).
    Fcmplt, Fcmple, Fcmpeq,
    // Conversions between the register files.
    Cvtif, ///< fd = (double)rs1
    Cvtfi, ///< rd = (int64)fs1, truncating
    // Control transfer.
    Beq, Bne, Blt, Bge, Bltu, Bgeu, Jal, Jalr,
    // Miscellaneous.
    Nop, Halt,

    NumOpcodes,
};

/** Operand/encoding format of an opcode. */
enum class Format : std::uint8_t
{
    None,   ///< no operands (nop, halt)
    RRR,    ///< rd, rs1, rs2 — all integer
    RRI,    ///< rd, rs1, imm — integer
    Load,   ///< rd, imm(rs1) — integer destination
    Store,  ///< rs2, imm(rs1) — integer source
    FLoad,  ///< fd, imm(rs1)
    FStore, ///< fs2, imm(rs1)
    FRRR,   ///< fd, fs1, fs2
    FRR,    ///< fd, fs1
    FMA,    ///< fd, fs1, fs2 with fd read-modify-write
    FCmp,   ///< rd(int), fs1, fs2
    CvtIF,  ///< fd, rs1(int)
    CvtFI,  ///< rd(int), fs1
    Branch, ///< rs1, rs2, imm (pc-relative byte offset)
    Jal,    ///< rd, imm (pc-relative byte offset)
    Jalr,   ///< rd, rs1, imm (absolute indirect)
};

/** Primary operation group used by the instruction-mix characterization. */
enum class OpGroup : std::uint8_t
{
    IntArith, IntMul, IntDiv, IntLogic, IntShift, IntCmp,
    FpArith, FpMul, FpDiv, FpSqrt, FpCmp, FpCvt,
    Load, Store, CondBranch, Jump, Other,
};

/** Static metadata describing one opcode. */
struct OpcodeInfo
{
    std::string_view mnemonic;
    Format format;
    OpGroup group;
    std::uint8_t mem_bytes; ///< access size; 0 for non-memory instructions
};

/** Metadata lookup; valid for every opcode below NumOpcodes. */
[[nodiscard]] const OpcodeInfo &opcodeInfo(Opcode op);

/** Mnemonic lookup helper. */
[[nodiscard]] std::string_view mnemonic(Opcode op);

/** Reverse lookup: mnemonic to opcode; returns NumOpcodes when unknown. */
[[nodiscard]] Opcode opcodeFromMnemonic(std::string_view name);

/** Printable name of integer register i ("x0".."x31"). */
[[nodiscard]] std::string_view intRegName(std::uint8_t index);

/** Printable name of floating-point register i ("f0".."f31"). */
[[nodiscard]] std::string_view fpRegName(std::uint8_t index);

/** True for conditional branch opcodes. */
[[nodiscard]] bool isCondBranch(Opcode op);

/** True for any control-transfer opcode (branches, jal, jalr). */
[[nodiscard]] bool isControl(Opcode op);

/** True when the opcode reads memory. */
[[nodiscard]] bool isLoad(Opcode op);

/** True when the opcode writes memory. */
[[nodiscard]] bool isStore(Opcode op);

/** True for floating-point operations (including fp loads/stores/cmp/cvt). */
[[nodiscard]] bool isFpOp(Opcode op);

} // namespace mica::isa

#endif // MICAPHASE_ISA_OPCODE_HH
