/**
 * @file
 * Tests for the obs tracing/metrics subsystem and the PipelineObserver
 * API: span balance and nesting, counter/gauge accumulation, export
 * formats, disabled-session no-ops, observer event ordering, and the
 * traced-pipeline determinism guarantee.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hh"
#include "obs/trace.hh"

namespace {

using namespace mica;

/** Count non-overlapping occurrences of `needle` in `haystack`. */
std::size_t
countOccurrences(const std::string &haystack, const std::string &needle)
{
    std::size_t count = 0;
    for (std::size_t pos = haystack.find(needle);
         pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        ++count;
    return count;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(Obs, DisabledSpansAreNoOps)
{
    ASSERT_EQ(obs::TraceSession::active(), nullptr)
        << "no session may leak in from another test";
    {
        const obs::Span span("should.not.record", "test");
        obs::count("should.not.count");
        obs::gauge("should.not.gauge", 1.0);
    }
    // Activate a session afterwards: nothing from above may appear.
    const auto session = obs::TraceSession::create();
    session->activate();
    session->deactivate();
    EXPECT_TRUE(session->spans().empty());
    EXPECT_TRUE(session->counters().empty());
}

TEST(Obs, SpanNestingDepthAndThreadIds)
{
    const auto session = obs::TraceSession::create();
    session->activate();
    {
        const obs::Span outer("outer", "test");
        {
            const obs::Span inner("inner", "test");
        }
    }
    std::thread other([]() { const obs::Span t("other-thread", "test"); });
    other.join();
    session->deactivate();

    const auto spans = session->spans();
    ASSERT_EQ(spans.size(), 3u);

    const obs::SpanRecord *outer = nullptr, *inner = nullptr,
                          *threaded = nullptr;
    for (const auto &s : spans) {
        if (s.name == "outer")
            outer = &s;
        else if (s.name == "inner")
            inner = &s;
        else if (s.name == "other-thread")
            threaded = &s;
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    ASSERT_NE(threaded, nullptr);

    EXPECT_EQ(inner->depth, outer->depth + 1);
    EXPECT_EQ(inner->tid, outer->tid);
    EXPECT_NE(threaded->tid, outer->tid);
    EXPECT_LE(outer->begin_us, inner->begin_us);
    EXPECT_LE(inner->end_us, outer->end_us);
}

TEST(Obs, CountersAccumulateExactly)
{
    const auto session = obs::TraceSession::create();
    session->activate();
    for (int i = 0; i < 10; ++i)
        obs::count("test.ticks");
    obs::count("test.weighted", 2.5);
    obs::count("test.weighted", 0.5);
    session->deactivate();

    EXPECT_DOUBLE_EQ(session->counter("test.ticks"), 10.0);
    EXPECT_DOUBLE_EQ(session->counter("test.weighted"), 3.0);
    EXPECT_DOUBLE_EQ(session->counter("test.never"), 0.0);
}

TEST(Obs, GaugeTracksLastAndMax)
{
    const auto session = obs::TraceSession::create();
    session->activate();
    obs::gauge("test.depth", 3.0);
    obs::gauge("test.depth", 7.0);
    obs::gauge("test.depth", 2.0);
    session->deactivate();

    const auto gauges = session->gauges();
    ASSERT_EQ(gauges.count("test.depth"), 1u);
    EXPECT_DOUBLE_EQ(gauges.at("test.depth").last, 2.0);
    EXPECT_DOUBLE_EQ(gauges.at("test.depth").max, 7.0);
}

TEST(Obs, ChromeTraceBalancedAndWellFormed)
{
    const auto session = obs::TraceSession::create();
    session->activate();
    {
        const obs::Span a("alpha", "test");
        const obs::Span b("beta", "test");
    }
    session->deactivate();

    const std::string json = session->chromeTraceJson();
    EXPECT_EQ(countOccurrences(json, "\"ph\": \"B\""), 2u);
    EXPECT_EQ(countOccurrences(json, "\"ph\": \"E\""), 2u);
    EXPECT_EQ(countOccurrences(json, "\"name\": \"alpha\""), 2u);
    EXPECT_EQ(countOccurrences(json, "\"name\": \"beta\""), 2u);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    // Crude structural check: braces/brackets balance.
    long depth = 0;
    for (char c : json) {
        if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(Obs, MetricsJsonAggregatesSpansAndCounters)
{
    const auto session = obs::TraceSession::create();
    session->activate();
    {
        const obs::Span a("work", "pool");
    }
    {
        const obs::Span b("work", "pool");
    }
    obs::count("tasks", 2.0);
    session->deactivate();

    const std::string json = session->metricsJson();
    EXPECT_NE(json.find("\"wall_us\""), std::string::npos);
    EXPECT_NE(json.find("\"work\": {\"count\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"tasks\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"workers\""), std::string::npos);
    EXPECT_NE(json.find("\"utilization\""), std::string::npos);
}

TEST(Obs, TraceScopeWritesBothFilesAndRestoresDisabled)
{
    const std::string dir = "/tmp/micaphase_obs_scope";
    std::filesystem::remove_all(dir);
    const std::string trace_path = dir + "/trace.json";

    ASSERT_EQ(obs::TraceSession::active(), nullptr);
    {
        obs::TraceScope scope(trace_path);
        ASSERT_TRUE(scope.enabled());
        ASSERT_NE(obs::TraceSession::active(), nullptr);
        const obs::Span span("scoped", "test");
    }
    EXPECT_EQ(obs::TraceSession::active(), nullptr);

    EXPECT_TRUE(std::filesystem::exists(trace_path));
    EXPECT_TRUE(
        std::filesystem::exists(dir + "/trace.metrics.json"));
    EXPECT_NE(readFile(trace_path).find("scoped"), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(Obs, EmptyPathDisablesTraceScope)
{
    obs::TraceScope scope("");
    EXPECT_FALSE(scope.enabled());
    EXPECT_EQ(obs::TraceSession::active(), nullptr);
}

TEST(Obs, MetricsPathDerivation)
{
    EXPECT_EQ(obs::TraceScope::metricsPathFor("out/t.json"),
              "out/t.metrics.json");
    EXPECT_EQ(obs::TraceScope::metricsPathFor("trace"),
              "trace.metrics.json");
}

/** Small pipeline config shared by the observer/trace pipeline tests. */
core::ExperimentConfig
miniConfig()
{
    core::ExperimentConfig cfg;
    cfg.interval_instructions = 2000;
    cfg.interval_scale = 0.02;
    cfg.samples_per_benchmark = 20;
    cfg.kmeans_k = 24;
    cfg.kmeans_restarts = 2;
    cfg.num_prominent = 12;
    cfg.cache_dir.clear();
    return cfg;
}

/** Observer recording every event it sees. */
struct RecordingObserver final : core::PipelineObserver
{
    struct Seen
    {
        core::Stage stage;
        core::StageEvent::Kind kind;
        std::size_t done;
        std::size_t total;
        std::string item;
    };
    std::vector<Seen> events;

    void
    onStage(const core::StageEvent &event) override
    {
        events.push_back({event.stage, event.kind, event.done, event.total,
                          std::string(event.item)});
    }
};

TEST(Observer, ReceivesAllStagesInOrder)
{
    auto cfg = miniConfig();
    RecordingObserver rec;
    const auto out = core::runFullExperiment(cfg, &rec);
    (void)core::selectKeyCharacteristics(out, 4, &rec);

    using K = core::StageEvent::Kind;
    // Begin/End pairs arrive in pipeline order.
    std::vector<core::Stage> begin_order, end_order;
    for (const auto &e : rec.events) {
        if (e.kind == K::Begin)
            begin_order.push_back(e.stage);
        if (e.kind == K::End)
            end_order.push_back(e.stage);
    }
    const std::vector<core::Stage> expected = {
        core::Stage::Verify,  core::Stage::Characterize,
        core::Stage::Sample,  core::Stage::Pca,
        core::Stage::KMeans,  core::Stage::Compare,
        core::Stage::FeatureSelect,
    };
    EXPECT_EQ(begin_order, expected);
    EXPECT_EQ(end_order, expected);

    // Characterize emits one Progress per benchmark, with ids.
    std::size_t progress = 0;
    for (const auto &e : rec.events)
        if (e.kind == K::Progress) {
            EXPECT_EQ(e.stage, core::Stage::Characterize);
            EXPECT_FALSE(e.item.empty());
            ++progress;
        }
    EXPECT_EQ(progress, out.characterization.benchmark_ids.size());
}

TEST(Observer, ProgressAdapterForwardsCharacterizeOnly)
{
    core::ProgressFn fn;
    std::vector<std::string> ids;
    fn = [&](const std::string &id, std::size_t done, std::size_t total) {
        ids.push_back(id + "/" + std::to_string(done) + "/" +
                      std::to_string(total));
    };
    core::ProgressObserverAdapter adapter(std::move(fn));

    core::StageEvent event;
    event.stage = core::Stage::Characterize;
    event.kind = core::StageEvent::Kind::Progress;
    event.done = 1;
    event.total = 2;
    event.item = "SuiteA/x";
    adapter.onStage(event);

    event.kind = core::StageEvent::Kind::Begin; // dropped
    adapter.onStage(event);
    event.stage = core::Stage::Pca; // dropped
    event.kind = core::StageEvent::Kind::Progress;
    adapter.onStage(event);

    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(ids[0], "SuiteA/x/1/2");
}

TEST(Observer, StageNamesAreStable)
{
    EXPECT_EQ(core::stageName(core::Stage::Characterize), "characterize");
    EXPECT_EQ(core::stageName(core::Stage::FeatureSelect), "ga");
    EXPECT_EQ(core::stageSpanName(core::Stage::KMeans), "pipeline.kmeans");
    EXPECT_EQ(core::stageSpanName(core::Stage::Verify), "pipeline.verify");
}

TEST(ObsPipeline, TracedRunEmitsStageSpansAndStaysDeterministic)
{
    const std::string dir = "/tmp/micaphase_obs_pipeline";
    std::filesystem::remove_all(dir);

    // Untraced single-threaded reference.
    auto base = miniConfig();
    base.threads = 1;
    const auto reference = core::runFullExperiment(base);

    // Traced, multi-threaded run.
    auto traced_cfg = miniConfig();
    traced_cfg.threads = 4;
    traced_cfg.trace_path = dir + "/pipeline_trace.json";
    const auto traced = core::runFullExperiment(traced_cfg);

    // Bit-identical results: tracing and threading change nothing.
    ASSERT_EQ(traced.analysis.clustering.assignment,
              reference.analysis.clustering.assignment);
    EXPECT_EQ(traced.analysis.clustering.bic,
              reference.analysis.clustering.bic);
    EXPECT_EQ(traced.analysis.pca_components,
              reference.analysis.pca_components);
    EXPECT_EQ(traced.comparison.coverage, reference.comparison.coverage);
    EXPECT_EQ(traced.comparison.uniqueness,
              reference.comparison.uniqueness);

    // The exported trace has spans for all six pipeline stages plus the
    // thread-pool task spans; the metrics summary reports pool workers.
    const std::string trace = readFile(traced_cfg.trace_path);
    for (const char *name :
         {"pipeline.verify", "pipeline.characterize", "pipeline.sample",
          "pipeline.pca", "pipeline.kmeans", "pipeline.compare",
          "pool.task", "kmeans.run", "pca.fit"})
        EXPECT_NE(trace.find(name), std::string::npos)
            << "missing span: " << name;
    EXPECT_EQ(countOccurrences(trace, "\"ph\": \"B\""),
              countOccurrences(trace, "\"ph\": \"E\""));

    const std::string metrics =
        readFile(obs::TraceScope::metricsPathFor(traced_cfg.trace_path));
    EXPECT_NE(metrics.find("\"workers\""), std::string::npos);
    EXPECT_NE(metrics.find("\"kmeans.restarts\""), std::string::npos);
    EXPECT_NE(metrics.find("\"characterize.intervals\""),
              std::string::npos);

    EXPECT_EQ(obs::TraceSession::active(), nullptr)
        << "runFullExperiment must deactivate its session";
    std::filesystem::remove_all(dir);
}

} // namespace
