/**
 * @file
 * Tests for the synthetic kernel library: every kernel must emit a
 * well-formed subroutine that runs trap-free, and the headline kernels
 * must exhibit the behavioural signature they are designed for.
 */

#include <gtest/gtest.h>

#include <functional>

#include "mica/profiler.hh"
#include "vm/cpu.hh"
#include "workloads/kernels.hh"

namespace {

using namespace mica;
namespace m = metrics::midx;
using workloads::Label;
using workloads::ProgramBuilder;

/** Wrap a kernel subroutine in a driver loop and profile one interval. */
metrics::CharacteristicVector
profileKernel(
    const std::function<Label(ProgramBuilder &, stats::Rng &)> &emit,
    std::uint64_t budget = 40000, std::uint64_t seed = 7)
{
    ProgramBuilder pb("kernel");
    stats::Rng rng(seed);
    Label main = pb.newLabel();
    pb.jump(main);
    Label entry = emit(pb, rng);
    pb.bind(main);
    Label top = pb.newLabel();
    pb.bind(top);
    pb.call(entry);
    pb.jump(top);

    vm::Cpu cpu(pb.build());
    profiler::MicaProfiler prof(budget);
    const auto run = cpu.run(budget, &prof);
    EXPECT_EQ(run.reason, vm::StopReason::InstructionLimit)
        << "kernel trapped";
    EXPECT_EQ(prof.intervals().size(), 1u);
    return prof.intervals().at(0);
}

// --- Every kernel family runs trap-free (parameterized smoke test). ---

struct KernelCase
{
    const char *name;
    std::function<Label(ProgramBuilder &, stats::Rng &)> emit;
};

class KernelSmokeTest : public ::testing::TestWithParam<KernelCase>
{
};

TEST_P(KernelSmokeTest, RunsTrapFree)
{
    const auto v = profileKernel(GetParam().emit);
    double mix_total = v[m::MixMemRead] + v[m::MixMemWrite];
    for (std::size_t i = m::MixControl; i <= m::MixNopOther; ++i)
        mix_total += v[i];
    EXPECT_GT(mix_total, 0.5) << "implausible instruction mix";
    EXPECT_GT(v[m::Ilp32], 0.0);
}

const KernelCase kKernelCases[] = {
    {"stream_triad_fp",
     [](ProgramBuilder &pb, stats::Rng &) {
         return emitStream(pb, {});
     }},
    {"stream_dot_int",
     [](ProgramBuilder &pb, stats::Rng &) {
         workloads::StreamParams p;
         p.mode = workloads::StreamParams::Mode::Dot;
         p.fp = false;
         return emitStream(pb, p);
     }},
    {"stream_copy_strided",
     [](ProgramBuilder &pb, stats::Rng &) {
         workloads::StreamParams p;
         p.mode = workloads::StreamParams::Mode::Copy;
         p.stride = 8;
         return emitStream(pb, p);
     }},
    {"stencil",
     [](ProgramBuilder &pb, stats::Rng &) {
         return emitStencil2D(pb, {});
     }},
    {"matmul",
     [](ProgramBuilder &pb, stats::Rng &rng) {
         return emitMatMul(pb, {}, rng);
     }},
    {"conv_fp",
     [](ProgramBuilder &pb, stats::Rng &rng) {
         return emitConv2D(pb, {}, rng);
     }},
    {"conv_int",
     [](ProgramBuilder &pb, stats::Rng &rng) {
         workloads::ConvParams p;
         p.fp = false;
         return emitConv2D(pb, p, rng);
     }},
    {"fir",
     [](ProgramBuilder &pb, stats::Rng &rng) {
         return emitFir(pb, {}, rng);
     }},
    {"fir_parallel",
     [](ProgramBuilder &pb, stats::Rng &rng) {
         workloads::FirParams p;
         p.parallel = 2;
         return emitFir(pb, p, rng);
     }},
    {"iir",
     [](ProgramBuilder &pb, stats::Rng &rng) {
         return emitIir(pb, {}, rng);
     }},
    {"fft",
     [](ProgramBuilder &pb, stats::Rng &rng) {
         return emitFftPass(pb, {}, rng);
     }},
    {"fp_math",
     [](ProgramBuilder &pb, stats::Rng &rng) {
         return emitFpMath(pb, {}, rng);
     }},
    {"reduce_int",
     [](ProgramBuilder &pb, stats::Rng &) {
         return emitReduceChain(pb, {});
     }},
    {"reduce_fp",
     [](ProgramBuilder &pb, stats::Rng &) {
         workloads::ReduceChainParams p;
         p.fp = true;
         return emitReduceChain(pb, p);
     }},
    {"pointer_chase",
     [](ProgramBuilder &pb, stats::Rng &rng) {
         return emitPointerChase(pb, {}, rng);
     }},
    {"hash_probe",
     [](ProgramBuilder &pb, stats::Rng &rng) {
         return emitHashProbe(pb, {}, rng);
     }},
    {"hash_probe_update",
     [](ProgramBuilder &pb, stats::Rng &rng) {
         workloads::HashProbeParams p;
         p.update = true;
         return emitHashProbe(pb, p, rng);
     }},
    {"gather",
     [](ProgramBuilder &pb, stats::Rng &rng) {
         return emitGather(pb, {}, rng);
     }},
    {"gather_scatter",
     [](ProgramBuilder &pb, stats::Rng &rng) {
         workloads::GatherParams p;
         p.scatter = true;
         return emitGather(pb, p, rng);
     }},
    {"histogram",
     [](ProgramBuilder &pb, stats::Rng &rng) {
         return emitHistogram(pb, {}, rng);
     }},
    {"tree_walk",
     [](ProgramBuilder &pb, stats::Rng &rng) {
         return emitTreeWalk(pb, {}, rng);
     }},
    {"sort_pass",
     [](ProgramBuilder &pb, stats::Rng &rng) {
         return emitSortPass(pb, {}, rng);
     }},
    {"random_branch",
     [](ProgramBuilder &pb, stats::Rng &) {
         return emitRandomBranch(pb, {});
     }},
    {"random_branch_pattern",
     [](ProgramBuilder &pb, stats::Rng &) {
         workloads::RandomBranchParams p;
         p.pattern_bits = 6;
         return emitRandomBranch(pb, p);
     }},
    {"code_bloat",
     [](ProgramBuilder &pb, stats::Rng &rng) {
         return emitCodeBloat(pb, {}, rng);
     }},
    {"code_bloat_sequential",
     [](ProgramBuilder &pb, stats::Rng &rng) {
         workloads::CodeBloatParams p;
         p.sequential = true;
         p.fp_fraction = 0.5;
         return emitCodeBloat(pb, p, rng);
     }},
    {"string_match",
     [](ProgramBuilder &pb, stats::Rng &rng) {
         return emitStringMatch(pb, {}, rng);
     }},
    {"smith_waterman",
     [](ProgramBuilder &pb, stats::Rng &rng) {
         return emitSmithWaterman(pb, {}, rng);
     }},
    {"profile_hmm",
     [](ProgramBuilder &pb, stats::Rng &rng) {
         return emitProfileHmm(pb, {}, rng);
     }},
    {"dct",
     [](ProgramBuilder &pb, stats::Rng &rng) {
         return emitDct8x8(pb, {}, rng);
     }},
    {"sad",
     [](ProgramBuilder &pb, stats::Rng &rng) {
         return emitSad(pb, {}, rng);
     }},
    {"quantize",
     [](ProgramBuilder &pb, stats::Rng &rng) {
         return emitQuantize(pb, {}, rng);
     }},
};

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelSmokeTest,
                         ::testing::ValuesIn(kKernelCases),
                         [](const auto &info) {
                             return std::string(info.param.name);
                         });

// --- Signature checks for the headline kernels. ---

TEST(KernelSignature, StreamFpTriadIsFpAndMemoryHeavy)
{
    const auto v = profileKernel([](ProgramBuilder &pb, stats::Rng &) {
        return emitStream(pb, {});
    });
    EXPECT_GT(v[m::MixMemRead], 0.15);
    EXPECT_GT(v[m::MixMemWrite], 0.05);
    EXPECT_GT(v[m::MixFpArith] + v[m::MixFpMul], 0.15);
    // Default unroll of 2 advances each static load by 16 bytes.
    EXPECT_LT(v[m::LocalLoadStride8], 0.1);
    EXPECT_GT(v[m::LocalLoadStride64], 0.9);
}

TEST(KernelSignature, PointerChaseIsSerialAndLoadHeavy)
{
    const auto chase = profileKernel([](ProgramBuilder &pb,
                                        stats::Rng &rng) {
        workloads::PointerChaseParams p;
        p.payload = false;
        return emitPointerChase(pb, p, rng);
    });
    const auto stream = profileKernel([](ProgramBuilder &pb, stats::Rng &) {
        return emitStream(pb, {});
    });
    EXPECT_GT(chase[m::MixMemRead], 0.3);
    EXPECT_LT(chase[m::Ilp256], stream[m::Ilp256])
        << "dependent loads must limit ILP vs streaming";
    // Random node order: global strides mostly large.
    EXPECT_LT(chase[m::GlobalLoadStride64], 0.3);
}

TEST(KernelSignature, HistogramIsStoreHeavyWithSmallFootprint)
{
    const auto v = profileKernel([](ProgramBuilder &pb, stats::Rng &rng) {
        return emitHistogram(pb, {}, rng);
    });
    EXPECT_GT(v[m::MixMemWrite], 0.09);
    EXPECT_LT(v[m::DataFootprint4K], 4.0);
}

TEST(KernelSignature, RandomBranchTakenRateTracksThreshold)
{
    for (std::uint32_t thresh : {64u, 128u, 192u}) {
        const auto v = profileKernel(
            [thresh](ProgramBuilder &pb, stats::Rng &) {
                workloads::RandomBranchParams p;
                p.taken_threshold = thresh;
                p.branches = 4096;
                return emitRandomBranch(pb, p);
            },
            60000);
        // Two of the three branches in the loop follow the threshold (the
        // loop back-edge is nearly always taken); expected rate is
        // (2*(t/256) + 1) / 3.
        const double expected = (2.0 * thresh / 256.0 + 1.0) / 3.0;
        EXPECT_NEAR(v[m::BranchTakenRate], expected, 0.06)
            << "threshold " << thresh;
    }
}

TEST(KernelSignature, RandomBranchIsUnpredictablePatternIsNot)
{
    const auto random = profileKernel([](ProgramBuilder &pb, stats::Rng &) {
        workloads::RandomBranchParams p;
        p.pattern_bits = 0;
        return emitRandomBranch(pb, p);
    });
    const auto pattern = profileKernel([](ProgramBuilder &pb,
                                          stats::Rng &) {
        workloads::RandomBranchParams p;
        p.pattern_bits = 4;
        return emitRandomBranch(pb, p);
    });
    EXPECT_GT(random[m::PpmGag12], pattern[m::PpmGag12] + 0.05);
    EXPECT_LT(pattern[m::PpmGag12], 0.1)
        << "period-16 pattern is predictable with 12 bits of history";
}

TEST(KernelSignature, CodeBloatFootprintGrowsWithBlocks)
{
    const auto small = profileKernel([](ProgramBuilder &pb,
                                        stats::Rng &rng) {
        workloads::CodeBloatParams p;
        p.blocks = 32;
        return emitCodeBloat(pb, p, rng);
    });
    const auto large = profileKernel([](ProgramBuilder &pb,
                                        stats::Rng &rng) {
        workloads::CodeBloatParams p;
        p.blocks = 512;
        return emitCodeBloat(pb, p, rng);
    });
    EXPECT_GT(large[m::InstrFootprint64B],
              2.0 * small[m::InstrFootprint64B]);
    EXPECT_GT(large[m::MixCall], 0.01);
    EXPECT_GT(large[m::MixReturn], 0.01);
}

TEST(KernelSignature, ReduceChainHasMinimalIlp)
{
    const auto v = profileKernel([](ProgramBuilder &pb, stats::Rng &) {
        workloads::ReduceChainParams p;
        p.length = 16384;
        return emitReduceChain(pb, p);
    });
    EXPECT_LT(v[m::Ilp256], 2.5);
}

TEST(KernelSignature, StringMatchUsesByteStrides)
{
    const auto v = profileKernel([](ProgramBuilder &pb, stats::Rng &rng) {
        return emitStringMatch(pb, {}, rng);
    });
    EXPECT_GT(v[m::LocalLoadStride8], 0.9);
    EXPECT_GT(v[m::MixCondBranch], 0.1);
}

TEST(KernelSignature, SmithWatermanBranchesAreDataDependent)
{
    const auto v = profileKernel([](ProgramBuilder &pb, stats::Rng &rng) {
        return emitSmithWaterman(pb, {}, rng);
    }, 60000);
    // Match/mismatch and max-selection branches over random sequences:
    // clearly worse than a fully regular loop.
    EXPECT_GT(v[m::PpmGag12], 0.02);
    EXPECT_GT(v[m::MixCondBranch], 0.1);
}

TEST(KernelSignature, IirIsSerialFp)
{
    const auto iir = profileKernel([](ProgramBuilder &pb, stats::Rng &rng) {
        return emitIir(pb, {}, rng);
    });
    EXPECT_GT(iir[m::MixFpMul] + iir[m::MixFpArith] + iir[m::MixMove],
              0.3);
    EXPECT_LT(iir[m::Ilp256], 8.0);
}

TEST(KernelSignature, GatherHasIrregularGlobalStrides)
{
    const auto v = profileKernel([](ProgramBuilder &pb, stats::Rng &rng) {
        workloads::GatherParams p;
        p.log2_range = 14;
        return emitGather(pb, p, rng);
    });
    EXPECT_LT(v[m::GlobalLoadStride512], 0.8);
}

TEST(KernelSignature, DeterministicEmission)
{
    auto build = [] {
        ProgramBuilder pb("k");
        stats::Rng rng(99);
        Label main = pb.newLabel();
        pb.jump(main);
        (void)emitSortPass(pb, {}, rng);
        pb.bind(main);
        pb.halt();
        return pb.build();
    };
    const auto a = build();
    const auto b = build();
    ASSERT_EQ(a.code.size(), b.code.size());
    for (std::size_t i = 0; i < a.code.size(); ++i)
        ASSERT_EQ(a.code[i], b.code[i]);
    EXPECT_EQ(a.data, b.data);
}

} // namespace
