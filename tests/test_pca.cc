/**
 * @file
 * Unit tests for PCA and the rescaled PCA space construction.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/pca.hh"
#include "stats/rng.hh"
#include "stats/summary.hh"

namespace {

using mica::stats::Matrix;
using mica::stats::Pca;

/** Data with one dominant direction plus small noise. */
Matrix
correlatedData(std::size_t n, std::size_t p, mica::stats::Rng &rng)
{
    Matrix m(n, p);
    for (std::size_t r = 0; r < n; ++r) {
        const double t = rng.nextGaussian();
        for (std::size_t c = 0; c < p; ++c)
            m(r, c) = t * (1.0 + static_cast<double>(c)) +
                      0.01 * rng.nextGaussian();
    }
    return m;
}

TEST(Pca, EmptyThrows)
{
    Matrix m;
    EXPECT_THROW((void)Pca::fit(m), std::invalid_argument);
}

TEST(Pca, SingleDominantComponent)
{
    mica::stats::Rng rng(1);
    const Matrix m = correlatedData(300, 5, rng);
    const Pca pca = Pca::fit(m);
    // All columns are scalar multiples of one factor: one component.
    EXPECT_EQ(pca.numComponents(), 1u);
    EXPECT_GT(pca.explainedVarianceFraction(), 0.99);
}

TEST(Pca, EigenvaluesDescending)
{
    mica::stats::Rng rng(2);
    Matrix m(200, 6);
    for (std::size_t r = 0; r < 200; ++r)
        for (std::size_t c = 0; c < 6; ++c)
            m(r, c) = rng.nextGaussian() * (1.0 + static_cast<double>(c));
    const Pca pca = Pca::fit(m);
    for (std::size_t i = 0; i + 1 < pca.eigenvalues().size(); ++i)
        EXPECT_GE(pca.eigenvalues()[i], pca.eigenvalues()[i + 1] - 1e-12);
}

TEST(Pca, IndependentColumnsKeepAllSignificantComponents)
{
    mica::stats::Rng rng(3);
    Matrix m(2000, 4);
    for (std::size_t r = 0; r < 2000; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            m(r, c) = rng.nextGaussian();
    Pca::Options opts;
    opts.min_stddev = 0.5; // all normalized components have sd ~1
    const Pca pca = Pca::fit(m, opts);
    EXPECT_EQ(pca.numComponents(), 4u);
}

TEST(Pca, MaxComponentsBound)
{
    mica::stats::Rng rng(4);
    Matrix m(100, 6);
    for (std::size_t r = 0; r < 100; ++r)
        for (std::size_t c = 0; c < 6; ++c)
            m(r, c) = rng.nextGaussian();
    Pca::Options opts;
    opts.min_stddev = 0.0;
    opts.max_components = 2;
    const Pca pca = Pca::fit(m, opts);
    EXPECT_EQ(pca.numComponents(), 2u);
}

TEST(Pca, MinComponentsFloor)
{
    mica::stats::Rng rng(5);
    const Matrix m = correlatedData(100, 4, rng);
    Pca::Options opts;
    opts.min_components = 3;
    const Pca pca = Pca::fit(m, opts);
    EXPECT_GE(pca.numComponents(), 3u);
}

TEST(Pca, TransformShape)
{
    mica::stats::Rng rng(6);
    const Matrix m = correlatedData(50, 4, rng);
    const Pca pca = Pca::fit(m);
    const Matrix scores = pca.transform(m);
    EXPECT_EQ(scores.rows(), 50u);
    EXPECT_EQ(scores.cols(), pca.numComponents());
}

TEST(Pca, TransformWidthMismatchThrows)
{
    mica::stats::Rng rng(7);
    const Matrix m = correlatedData(50, 4, rng);
    const Pca pca = Pca::fit(m);
    Matrix wrong(10, 3);
    EXPECT_THROW((void)pca.transform(wrong), std::invalid_argument);
}

TEST(Pca, RescaledSpaceHasUnitVariance)
{
    mica::stats::Rng rng(8);
    Matrix m(500, 5);
    for (std::size_t r = 0; r < 500; ++r) {
        const double t = rng.nextGaussian();
        const double u = rng.nextGaussian();
        m(r, 0) = t;
        m(r, 1) = t + 0.3 * u;
        m(r, 2) = u;
        m(r, 3) = rng.nextGaussian();
        m(r, 4) = 2.0 * t - u + 0.1 * rng.nextGaussian();
    }
    Pca::Options opts;
    opts.min_stddev = 0.3;
    const Pca pca = Pca::fit(m, opts);
    const Matrix rescaled = pca.transformRescaled(m);
    const auto cs = mica::stats::columnStats(rescaled);
    for (std::size_t c = 0; c < rescaled.cols(); ++c)
        EXPECT_NEAR(cs.stddev[c], 1.0, 1e-6) << "component " << c;
}

TEST(Pca, ComponentsAreUncorrelated)
{
    mica::stats::Rng rng(9);
    Matrix m(800, 4);
    for (std::size_t r = 0; r < 800; ++r) {
        const double t = rng.nextGaussian();
        m(r, 0) = t + 0.5 * rng.nextGaussian();
        m(r, 1) = -t + 0.5 * rng.nextGaussian();
        m(r, 2) = rng.nextGaussian();
        m(r, 3) = 0.7 * t + rng.nextGaussian();
    }
    Pca::Options opts;
    opts.min_stddev = 0.1;
    const Pca pca = Pca::fit(m, opts);
    const Matrix scores = pca.transform(m);
    for (std::size_t a = 0; a < scores.cols(); ++a)
        for (std::size_t b = a + 1; b < scores.cols(); ++b) {
            const auto ca = scores.col(a);
            const auto cb = scores.col(b);
            EXPECT_NEAR(mica::stats::pearson(ca, cb), 0.0, 1e-6)
                << "components " << a << ", " << b;
        }
}

TEST(Pca, ExplainedVarianceFractionInUnitRange)
{
    mica::stats::Rng rng(10);
    const Matrix m = correlatedData(100, 6, rng);
    const Pca pca = Pca::fit(m);
    EXPECT_GT(pca.explainedVarianceFraction(), 0.0);
    EXPECT_LE(pca.explainedVarianceFraction(), 1.0 + 1e-12);
}

TEST(Pca, RescaledPcaSpaceHelperMatches)
{
    mica::stats::Rng rng(11);
    const Matrix m = correlatedData(60, 4, rng);
    const Matrix a = mica::stats::rescaledPcaSpace(m);
    const Matrix b = Pca::fit(m).transformRescaled(m);
    EXPECT_LT(a.maxAbsDiff(b), 1e-12);
}

TEST(Pca, DeterministicAcrossRuns)
{
    mica::stats::Rng rng(12);
    const Matrix m = correlatedData(80, 5, rng);
    const Matrix a = mica::stats::rescaledPcaSpace(m);
    const Matrix b = mica::stats::rescaledPcaSpace(m);
    EXPECT_EQ(a.maxAbsDiff(b), 0.0);
}

} // namespace
